// Deterministic pseudo-random generation for workloads, tests, and benches.
#ifndef TEMPSPEC_UTIL_RANDOM_H_
#define TEMPSPEC_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>

namespace tempspec {

/// \brief Seeded PRNG wrapper so every workload/test is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  /// \brief Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// \brief Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// \brief Bernoulli trial with probability p of returning true.
  bool OneIn(double p) { return NextDouble() < p; }

  /// \brief Exponentially distributed value with the given mean (>= 0).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// \brief Normally distributed value.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// \brief Zipf-like skewed rank in [0, n): rank r with weight 1/(r+1)^theta.
  int64_t Zipf(int64_t n, double theta);

  /// \brief Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_UTIL_RANDOM_H_
