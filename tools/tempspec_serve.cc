// tempspec_serve: the network query daemon.
//
// One process serving, on a single port:
//   - POST /query            query_lang / DDL statements over HTTP
//   - TSP1 binary frames     the same statements over the frame protocol
//                            (net/frame.h), with optional per-query
//                            deadlines in the frame header
//   - /metrics /metrics/history /varz /healthz /debug/events /debug/traces
//     /debug/health          the telemetry plane (net/telemetry_endpoints.h)
//
// Statements execute against a QueryService (catalog/query_service.h): a
// data directory holds schemas.sql plus one backlog directory per relation,
// so killing the daemon and restarting it recovers both schemas and data
// through the WAL.
//
// Flags (each with a TEMPSPEC_SERVE_* environment fallback):
//   --addr=A                bind address        (TEMPSPEC_SERVE_ADDR, 127.0.0.1)
//   --port=N                port, 0 = ephemeral (TEMPSPEC_SERVE_PORT, 7437)
//   --data-dir=D            persistence root    (TEMPSPEC_SERVE_DATA_DIR,
//                                                empty = in-memory)
//   --portfile=P            write the bound port here (TEMPSPEC_SERVE_PORTFILE)
//   --max-inflight=N        admission-control cap     (TEMPSPEC_SERVE_MAX_INFLIGHT)
//   --workers=N             statement worker threads  (TEMPSPEC_SERVE_WORKERS)
//   --default-deadline-ms=N applied when a request has none, 0 = unlimited
//   --max-deadline-ms=N     clamp for client deadlines, 0 = no clamp
//   --history-ms=N          metrics time-series sampling period; 0 disables
//                           (TEMPSPEC_SERVE_HISTORY_MS). The sampler tick
//                           also drives the SLO watchdog.
//   --slo=r=ms,...          declared p99 objectives per relation, e.g.
//                           --slo=ledger=50,sessions=20
//                           (TEMPSPEC_SERVE_SLO); surfaced via
//                           /debug/health and SHOW HEALTH
//
// SIGINT/SIGTERM stop the daemon gracefully: in-flight statements are
// cancelled through their deadlines' TraceContexts, completions drain, and
// the storage layer is left consistent. TEMPSPEC_FLIGHT_DUMP=path installs
// the fatal-signal flight-recorder dump (obs/flight_recorder.h), so even a
// crash leaves a black-box trace behind.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "catalog/query_service.h"
#include "net/server.h"
#include "net/telemetry_endpoints.h"
#include "obs/flight_recorder.h"
#include "obs/history.h"
#include "obs/slo.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

const char* EnvOr(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : fallback;
}

uint64_t ParseU64Or(const char* text, uint64_t fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(text, &end, 10);
  return end == text ? fallback : static_cast<uint64_t>(parsed);
}

struct ServeConfig {
  std::string addr = "127.0.0.1";
  uint16_t port = 7437;
  std::string data_dir;
  std::string portfile;
  uint64_t max_inflight = 8;
  uint64_t workers = 2;
  uint64_t default_deadline_ms = 0;
  uint64_t max_deadline_ms = 60 * 1000;
  uint64_t history_ms = 0;
  std::string slo_spec;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--addr=A] [--port=N] [--data-dir=D] [--portfile=P]\n"
      "          [--max-inflight=N] [--workers=N]\n"
      "          [--default-deadline-ms=N] [--max-deadline-ms=N]\n"
      "          [--history-ms=N] [--slo=relation=p99ms,...]\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, ServeConfig* config) {
  config->addr = EnvOr("TEMPSPEC_SERVE_ADDR", config->addr.c_str());
  config->port = static_cast<uint16_t>(
      ParseU64Or(std::getenv("TEMPSPEC_SERVE_PORT"), config->port));
  config->data_dir = EnvOr("TEMPSPEC_SERVE_DATA_DIR", "");
  config->portfile = EnvOr("TEMPSPEC_SERVE_PORTFILE", "");
  config->max_inflight = ParseU64Or(
      std::getenv("TEMPSPEC_SERVE_MAX_INFLIGHT"), config->max_inflight);
  config->workers =
      ParseU64Or(std::getenv("TEMPSPEC_SERVE_WORKERS"), config->workers);
  config->history_ms = ParseU64Or(std::getenv("TEMPSPEC_SERVE_HISTORY_MS"),
                                  config->history_ms);
  config->slo_spec = EnvOr("TEMPSPEC_SERVE_SLO", "");

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--addr") {
      config->addr = value;
    } else if (key == "--port") {
      config->port = static_cast<uint16_t>(ParseU64Or(value.c_str(), 0));
    } else if (key == "--data-dir") {
      config->data_dir = value;
    } else if (key == "--portfile") {
      config->portfile = value;
    } else if (key == "--max-inflight") {
      config->max_inflight = ParseU64Or(value.c_str(), 8);
    } else if (key == "--workers") {
      config->workers = ParseU64Or(value.c_str(), 2);
    } else if (key == "--default-deadline-ms") {
      config->default_deadline_ms = ParseU64Or(value.c_str(), 0);
    } else if (key == "--max-deadline-ms") {
      config->max_deadline_ms = ParseU64Or(value.c_str(), 0);
    } else if (key == "--history-ms") {
      config->history_ms = ParseU64Or(value.c_str(), 0);
    } else if (key == "--slo") {
      config->slo_spec = value;
    } else if (key == "--help" || key == "-h") {
      Usage(argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", key.c_str());
      Usage(argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServeConfig config;
  if (!ParseArgs(argc, argv, &config)) return 2;

  // The telemetry plane shares this process: slowlog thresholds, trace
  // retention, and the fatal-signal flight dump all honor their usual env.
  tempspec::SlowQueryLog::Instance().ConfigureFromEnv();
  tempspec::RetainedTraces::Instance().ConfigureFromEnv();
  tempspec::FlightRecorder::MaybeInstallFromEnv();

  // The health plane: declared objectives plus the sampler thread that
  // feeds /metrics/history and re-evaluates the SLO watchdog every tick.
  if (!config.slo_spec.empty() &&
      !tempspec::SloRegistry::Instance().DeclareFromSpec(config.slo_spec)) {
    std::fprintf(stderr, "tempspec_serve: bad --slo entry in '%s'\n",
                 config.slo_spec.c_str());
    return 2;
  }
  if (config.history_ms > 0) {
    tempspec::MetricsHistory::Instance().Start(
        config.history_ms, [] { tempspec::SloRegistry::Instance().Evaluate(); });
  }

  tempspec::QueryServiceOptions service_options;
  service_options.data_dir = config.data_dir;
  tempspec::QueryService service(service_options);
  tempspec::Status opened = service.Open();
  if (!opened.ok()) {
    std::fprintf(stderr, "tempspec_serve: cannot open data dir '%s': %s\n",
                 config.data_dir.c_str(), opened.ToString().c_str());
    return 1;
  }
  if (!config.data_dir.empty()) {
    std::fprintf(stderr, "tempspec_serve: recovered %zu relation(s) from %s\n",
                 service.RelationNames().size(), config.data_dir.c_str());
  }

  tempspec::ServerOptions server_options;
  server_options.bind_address = config.addr;
  server_options.port = config.port;
  server_options.max_inflight = static_cast<size_t>(config.max_inflight);
  server_options.worker_threads = static_cast<size_t>(config.workers);
  server_options.default_deadline_ms = config.default_deadline_ms;
  server_options.max_deadline_ms = config.max_deadline_ms;
  tempspec::NetServer server(std::move(server_options));
  tempspec::RegisterTelemetryEndpoints(&server);
  server.SetStatementHandler(
      [&service](const std::string& statement, tempspec::TraceContext* trace) {
        return service.Execute(statement, trace);
      });

  tempspec::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "tempspec_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!config.portfile.empty()) {
    std::ofstream out(config.portfile, std::ios::trunc);
    out << server.port() << "\n";
  }
  std::fprintf(stderr, "tempspec_serve: listening on %s:%u%s%s\n",
               config.addr.c_str(), server.port(),
               config.data_dir.empty() ? " (in-memory)" : ", data dir ",
               config.data_dir.c_str());

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGPIPE, SIG_IGN);  // broken clients surface as write errors
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "tempspec_serve: shutting down\n");
  tempspec::MetricsHistory::Instance().Stop();
  server.Stop();
  return 0;
}
