#!/usr/bin/env python3
"""Prometheus text-exposition (0.0.4) validator for the /metrics endpoint.

Usage:
    tools/check_metrics_text.py metrics.txt [more.txt ...]
    curl -s localhost:9464/metrics | tools/check_metrics_text.py -

Checks the subset of the exposition grammar the exporter emits:
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* (labels: [a-zA-Z_][a-zA-Z0-9_]*);
  * every sample line parses as `name[{labels}] value` with a finite value;
  * every sample is preceded by a # HELP and a # TYPE comment for its metric
    family, TYPE is one of counter/gauge/histogram, and a family is declared
    at most once;
  * histogram families carry `le`-labelled _bucket samples with
    non-decreasing cumulative counts, a final le="+Inf" bucket equal to
    _count, and both _sum and _count samples. Bucket series are grouped
    by their full label set minus `le`, so one family may carry many
    labeled series (tempspec_query_latency{relation,kind,protocol}) and
    each is validated independently.

Exits nonzero with a per-file report on the first violation so CI can gate
on a live scrape. Stdlib only — no third-party dependencies.
"""
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>-?\d+))?$")
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')
TYPES = ("counter", "gauge", "histogram")
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def fail(path, lineno, msg):
    print(f"{path}:{lineno}: FAIL: {msg}")
    return False


def family_of(name, types):
    """The declared family a sample belongs to: histogram samples append
    _bucket/_sum/_count to the family name."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        base = name[:-len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) == "histogram":
            return base
    return None


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return math.inf if text == "+Inf" else (-math.inf if text == "-Inf"
                                                else math.nan)
    try:
        return float(text)
    except ValueError:
        return None


def series_name(family, key):
    if not key:
        return family
    return family + "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


def check_text(path, text):
    helped, types = set(), {}
    # (family, labels-minus-le) -> list of (lineno, le, cumulative_count);
    # (family, labels) -> (lineno, _count value); family -> suffixes seen.
    buckets, counts, seen_suffixes = {}, {}, {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not NAME_RE.match(parts[2]):
                return fail(path, lineno, f"malformed HELP line: {line!r}")
            if parts[2] in helped:
                return fail(path, lineno, f"duplicate HELP for {parts[2]}")
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not NAME_RE.match(parts[2]):
                return fail(path, lineno, f"malformed TYPE line: {line!r}")
            name, kind = parts[2], parts[3]
            if kind not in TYPES:
                return fail(path, lineno, f"unknown TYPE {kind!r} for {name}")
            if name in types:
                return fail(path, lineno, f"duplicate TYPE for {name}")
            if name not in helped:
                return fail(path, lineno, f"TYPE for {name} precedes its HELP")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal and skipped

        m = SAMPLE_RE.match(line)
        if not m:
            return fail(path, lineno, f"unparseable sample line: {line!r}")
        name = m.group("name")
        value = parse_value(m.group("value"))
        if value is None:
            return fail(path, lineno,
                        f"non-numeric value {m.group('value')!r} for {name}")
        labels = {}
        if m.group("labels") is not None:
            for part in filter(None, m.group("labels").split(",")):
                lm = LABEL_RE.match(part.strip())
                if not lm:
                    return fail(path, lineno, f"malformed label {part!r}")
                labels[lm.group("key")] = lm.group("val")

        family = family_of(name, types)
        if family is None:
            return fail(path, lineno,
                        f"sample {name} has no preceding # TYPE declaration")
        samples += 1
        if types[family] == "histogram":
            seen_suffixes.setdefault(family, set())
            key = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    return fail(path, lineno, f"{name} sample lacks an le label")
                le = parse_value(labels["le"])
                if le is None:
                    return fail(path, lineno,
                                f"non-numeric le {labels['le']!r} on {name}")
                buckets.setdefault((family, key), []).append((lineno, le, value))
                seen_suffixes[family].add("_bucket")
            elif name.endswith("_sum"):
                seen_suffixes[family].add("_sum")
            elif name.endswith("_count"):
                seen_suffixes[family].add("_count")
                if (family, key) in counts:
                    return fail(path, lineno,
                                f"duplicate _count for "
                                f"{series_name(family, key)}")
                counts[(family, key)] = (lineno, value)
        elif types[family] in ("counter",) and value < 0:
            return fail(path, lineno, f"negative counter {name}")

    if samples == 0:
        return fail(path, 0, "no samples at all")

    for family, suffixes in seen_suffixes.items():
        missing = {"_bucket", "_sum", "_count"} - suffixes
        if missing:
            return fail(path, 0,
                        f"histogram {family} lacks {sorted(missing)} samples")
    for (family, key), series in buckets.items():
        label = series_name(family, key)
        les = [le for _, le, _ in series]
        if sorted(les) != les or len(set(les)) != len(les):
            return fail(path, series[0][0],
                        f"histogram {label} le bounds not strictly increasing")
        values = [v for _, _, v in series]
        if any(b < a for a, b in zip(values, values[1:])):
            return fail(path, series[0][0],
                        f"histogram {label} cumulative counts decrease")
        if not les or les[-1] != math.inf:
            return fail(path, series[0][0],
                        f"histogram {label} lacks a le=\"+Inf\" bucket")
        count = counts.get((family, key))
        if count is None:
            return fail(path, series[0][0],
                        f"histogram {label} has buckets but no _count sample")
        if values[-1] != count[1]:
            return fail(path, series[0][0],
                        f"histogram {label}: +Inf bucket {values[-1]} != "
                        f"_count {count[1]}")
    for (family, key), (lineno, _) in counts.items():
        if (family, key) not in buckets:
            return fail(path, lineno,
                        f"histogram {series_name(family, key)} has a _count "
                        f"but no _bucket samples")

    print(f"{path}: OK ({len(types)} metric famil"
          f"{'y' if len(types) == 1 else 'ies'}, {samples} sample(s))")
    return True


def check_file(path):
    if path == "-":
        return check_text("<stdin>", sys.stdin.read())
    try:
        with open(path, "r", encoding="utf-8") as f:
            return check_text(path, f.read())
    except OSError as e:
        return fail(path, 0, f"unreadable: {e}")


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    ok = all([check_file(p) for p in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
