#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace tempspec {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseSize(std::string_view s, size_t* out) {
  if (s.empty() || s.size() > 18) return false;
  size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

size_t HttpParser::Feed(const char* data, size_t len) {
  size_t consumed = 0;
  while (consumed < len && state_ != State::kComplete &&
         state_ != State::kError) {
    if (state_ == State::kBody) {
      const size_t want = body_expected_ - request_.body.size();
      const size_t take = std::min(want, len - consumed);
      request_.body.append(data + consumed, take);
      consumed += take;
      if (request_.body.size() == body_expected_) state_ = State::kComplete;
      continue;
    }

    // Line-oriented states: accumulate until '\n'.
    const char* nl = static_cast<const char*>(
        std::memchr(data + consumed, '\n', len - consumed));
    const size_t take = nl == nullptr
                            ? len - consumed
                            : static_cast<size_t>(nl - (data + consumed)) + 1;
    line_buf_.append(data + consumed, take);
    consumed += take;

    const size_t cap = state_ == State::kRequestLine
                           ? limits_.max_request_line_bytes
                           : limits_.max_header_bytes - header_bytes_;
    if (line_buf_.size() > cap) {
      Fail(431, state_ == State::kRequestLine ? "request line too long"
                                              : "headers too large");
      break;
    }
    if (nl == nullptr) break;  // partial line: wait for more bytes

    std::string_view line(line_buf_);
    line.remove_suffix(1);  // '\n'
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    if (state_ == State::kRequestLine) {
      // Tolerate leading blank lines between pipelined requests (RFC 9112).
      if (line.empty()) {
        line_buf_.clear();
        continue;
      }
      if (!ParseRequestLine(line)) break;
      state_ = State::kHeaders;
    } else {  // kHeaders
      header_bytes_ += line_buf_.size();
      if (line.empty()) {
        FinishHeaders();
        line_buf_.clear();
        continue;
      }
      if (!ParseHeaderLine(line)) break;
    }
    line_buf_.clear();
  }
  return consumed;
}

void HttpParser::Fail(int code, std::string reason) {
  state_ = State::kError;
  error_code_ = code;
  error_reason_ = std::move(reason);
}

bool HttpParser::ParseRequestLine(std::string_view line) {
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    Fail(400, "malformed request line");
    return false;
  }
  request_.method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = std::string(line.substr(sp2 + 1));
  if (request_.method.empty() || target.empty()) {
    Fail(400, "malformed request line");
    return false;
  }
  if (request_.version != "HTTP/1.0" && request_.version != "HTTP/1.1") {
    Fail(505, "unsupported HTTP version");
    return false;
  }
  if (target[0] != '/') {
    Fail(400, "target must be origin-form");
    return false;
  }
  const size_t q = target.find('?');
  if (q == std::string_view::npos) {
    request_.target = std::string(target);
  } else {
    request_.target = std::string(target.substr(0, q));
    request_.query = std::string(target.substr(q + 1));
  }
  return true;
}

bool HttpParser::ParseHeaderLine(std::string_view line) {
  if (request_.headers.size() >= limits_.max_headers) {
    Fail(431, "too many headers");
    return false;
  }
  const size_t colon = line.find(':');
  // Leading whitespace would be obs-fold continuation; reject rather than
  // splice (request smuggling vector).
  if (colon == 0 || colon == std::string_view::npos || line[0] == ' ' ||
      line[0] == '\t') {
    Fail(400, "malformed header");
    return false;
  }
  std::string_view name = line.substr(0, colon);
  if (name.back() == ' ' || name.back() == '\t') {
    Fail(400, "whitespace before header colon");
    return false;
  }
  request_.headers.emplace_back(std::string(name),
                                std::string(TrimSpace(line.substr(colon + 1))));
  return true;
}

void HttpParser::FinishHeaders() {
  // Transfer-Encoding is never accepted: with no chunked decoder, honoring
  // Content-Length alongside it is exactly the smuggling ambiguity.
  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    Fail(400, "Transfer-Encoding not supported");
    return;
  }
  const std::string* cl = request_.FindHeader("Content-Length");
  if (cl == nullptr) {
    state_ = State::kComplete;
    return;
  }
  size_t expected = 0;
  if (!ParseSize(TrimSpace(*cl), &expected)) {
    Fail(400, "malformed Content-Length");
    return;
  }
  if (expected > limits_.max_body_bytes) {
    Fail(413, "body too large");
    return;
  }
  body_expected_ = expected;
  state_ = expected == 0 ? State::kComplete : State::kBody;
}

void HttpParser::Reset() {
  state_ = State::kRequestLine;
  line_buf_.clear();
  header_bytes_ = 0;
  body_expected_ = 0;
  error_code_ = 0;
  error_reason_.clear();
  request_ = HttpRequest{};
}

const char* HttpReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string BuildHttpResponse(int code, std::string_view content_type,
                              std::string_view body, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                    HttpReasonPhrase(code) + "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace tempspec
