// Time-stamp column encodings.
//
// Regular relations (Section 3.2/3.3) restrict stamps to integral multiples
// of a time unit; storing the small multiplier k instead of a 64-bit chronon
// count is the storage win the Advisor recommends (EncodingAdvice::
// kDeltaUnit). bench_e8_regular measures the effect against raw encoding.
#ifndef TEMPSPEC_STORAGE_ENCODING_H_
#define TEMPSPEC_STORAGE_ENCODING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "timex/time_point.h"
#include "util/result.h"

namespace tempspec {

/// \brief LEB128 variable-length unsigned integer.
void PutVarint(uint64_t v, std::string* out);
Result<uint64_t> GetVarint(std::string_view* in);

/// \brief ZigZag mapping so small negative deltas stay small.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// \brief Encodes a column of time-stamps as raw little-endian 64-bit values.
std::string EncodeTimestampsRaw(std::span<const TimePoint> stamps);
Result<std::vector<TimePoint>> DecodeTimestampsRaw(std::string_view data);

/// \brief Delta encoding: first stamp raw, then zigzag-varint deltas.
std::string EncodeTimestampsDelta(std::span<const TimePoint> stamps);
Result<std::vector<TimePoint>> DecodeTimestampsDelta(std::string_view data);

/// \brief Unit-multiple encoding for regular columns: stores the unit, the
/// anchor, and the zigzag-varint multiplier deltas. Fails when a stamp is
/// not congruent to the anchor modulo the unit — i.e. when the declared
/// regularity does not actually hold.
Result<std::string> EncodeTimestampsUnit(std::span<const TimePoint> stamps,
                                         int64_t unit_micros);
Result<std::vector<TimePoint>> DecodeTimestampsUnit(std::string_view data);

}  // namespace tempspec

#endif  // TEMPSPEC_STORAGE_ENCODING_H_
