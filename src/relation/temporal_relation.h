// TemporalRelation: the bitemporal relation engine of Section 2, with
// intensional enforcement of declared temporal specializations (Section 3).
//
// A relation is a sequence of historical states indexed by transaction time.
// Updates are:
//   Insert        — a new element enters the current state at a fresh,
//                   system-generated transaction time.
//   LogicalDelete — the element's existence interval [tt_b, tt_d) closes;
//                   nothing is physically removed.
//   Modify        — per Section 2, a logical deletion plus an insertion with
//                   a *fresh element surrogate*, both indexed by the single
//                   transaction time of the modifying transaction.
//
// Queries over transaction time (rollback) and valid time (timeslice) are in
// src/query; this class exposes the raw state-reconstruction primitives.
//
// Concurrent-access contract (for the morsel-parallel execution layer): the
// relation is single-writer. All const member functions — elements(),
// StateAt(), the index accessors, GetElement(), PartitionOf(), GetStats() —
// are safe to call from any number of threads simultaneously, PROVIDED no
// thread is concurrently executing a non-const member (Insert*, Modify,
// LogicalDelete, VacuumBefore, Checkpoint). The span returned by elements()
// and any ResultSet built over it are invalidated by every mutation, exactly
// like an iterator. The engine does no internal locking; interleaving
// readers with a writer is the caller's responsibility.
#ifndef TEMPSPEC_RELATION_TEMPORAL_RELATION_H_
#define TEMPSPEC_RELATION_TEMPORAL_RELATION_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "index/append_index.h"
#include "index/interval_index.h"
#include "model/element.h"
#include "model/schema.h"
#include "relation/stamp_store.h"
#include "spec/drift.h"
#include "spec/specialization.h"
#include "storage/backlog.h"
#include "storage/snapshot.h"
#include "timex/clock.h"
#include "util/result.h"

namespace tempspec {

class ThreadPool;

/// \brief How the relation treats valid stamps that are finer than the
/// schema's valid-time granularity (Section 2 gives each relation its own
/// granularity; whether the system snaps or rejects finer stamps is an
/// engine policy).
enum class GranularityPolicy : uint8_t {
  kIgnore,    // store stamps as supplied (granularity used semantically only)
  kTruncate,  // snap stamps to the granule start before storing
  kReject,    // refuse misaligned stamps
};

/// \brief Construction options for a relation.
struct RelationOptions {
  SchemaPtr schema;
  SpecializationSet specializations;
  /// Transaction-time stamp source; when null the relation owns a
  /// LogicalClock starting at the epoch with a 1s step.
  std::shared_ptr<TransactionClock> clock;
  /// Storage for the backlog; empty directory = in-memory only.
  BacklogStore::Options storage;
  /// Materialize a rollback snapshot every N operations (0 = disabled).
  size_t snapshot_interval = 0;
  GranularityPolicy granularity_policy = GranularityPolicy::kIgnore;
};

/// \brief A bitemporal relation with declared specializations.
class TemporalRelation {
 public:
  /// \brief Opens (and, when the storage directory holds a backlog,
  /// recovers) a relation. The declared specializations are validated
  /// against the schema and against any recovered extension.
  static Result<std::unique_ptr<TemporalRelation>> Open(RelationOptions options);

  const Schema& schema() const { return *schema_; }
  const SpecializationSet& specializations() const { return specs_; }
  TransactionClock& clock() { return *clock_; }
  BacklogStore& backlog() { return *backlog_; }
  const BacklogStore& backlog() const { return *backlog_; }
  SnapshotManager* snapshots() { return snapshots_.get(); }
  const SnapshotManager* snapshots() const { return snapshots_.get(); }

  // -- Updates ---------------------------------------------------------------

  /// \brief Inserts an event-stamped fact; returns the element surrogate.
  Result<ElementSurrogate> InsertEvent(ObjectSurrogate object, TimePoint vt,
                                       Tuple attributes);

  /// \brief Inserts an interval-stamped fact.
  Result<ElementSurrogate> InsertInterval(ObjectSurrogate object, TimePoint vt_begin,
                                          TimePoint vt_end, Tuple attributes);

  /// \brief Inserts with an explicit ValidTime (kind must match the schema).
  Result<ElementSurrogate> Insert(ObjectSurrogate object, ValidTime valid,
                                  Tuple attributes);

  /// \brief Logically deletes a current element.
  Status LogicalDelete(ElementSurrogate surrogate);

  /// \brief Modification per Section 2: logical delete + insert with a fresh
  /// surrogate, sharing one transaction time. Returns the new surrogate.
  Result<ElementSurrogate> Modify(ElementSurrogate surrogate, ValidTime new_valid,
                                  Tuple new_attributes);

  // -- State access ----------------------------------------------------------

  /// \brief Every element ever stored, in insertion order.
  std::span<const Element> elements() const { return elements_; }
  size_t size() const { return elements_.size(); }

  Result<Element> GetElement(ElementSurrogate surrogate) const;

  /// \brief The historical state at transaction time tt (rollback
  /// primitive); uses the snapshot cache when enabled. With a pool, the
  /// snapshot path copies elements morsel-parallel (identical results).
  std::vector<Element> StateAt(TimePoint tt) const;
  std::vector<Element> StateAt(TimePoint tt, ThreadPool* pool) const;

  /// \brief The current state.
  std::vector<Element> CurrentState() const;

  /// \brief The life-line of one object: its elements in insertion order
  /// (the per-surrogate partition of Section 2).
  std::vector<const Element*> PartitionOf(ObjectSurrogate object) const;

  /// \brief Distinct object surrogates, in first-appearance order.
  std::vector<ObjectSurrogate> Objects() const;

  /// \brief Transaction time of the last applied operation.
  TimePoint LastTransactionTime() const { return clock_->Last(); }

  // -- Indexes ---------------------------------------------------------------

  /// \brief Positions of elements by insertion transaction time (always
  /// maintainable as append-only: transaction time is monotone).
  const AppendOnlyIndex& transaction_index() const { return tt_index_; }

  /// \brief Interval index over valid time (events indexed as unit-chronon
  /// intervals).
  const IntervalIndex& valid_index() const { return valid_index_; }

  /// \brief Columnar copy of every element's stamps, position-aligned with
  /// elements(): the input of the vectorized scan kernels (query/kernels.h).
  /// Maintained through every mutation and rebuilt on recovery and vacuum
  /// like the other derived structures.
  const StampStore& stamps() const { return stamps_; }

  // -- Integrity ------------------------------------------------------------

  /// \brief Re-validates the full extension against the declared
  /// specializations (batch semantics, including deletion anchors).
  Status CheckExtension() const;

  /// \brief Persists in-memory backlog operations (durable relations).
  Status Checkpoint() { return backlog_->Checkpoint(); }

  /// \brief Physical deletion: discards every element whose existence
  /// interval ended at or before `horizon` (it is invisible to any rollback
  /// at or after the horizon). Rollback queries older than the horizon are
  /// no longer answerable — this deliberately trades the paper's
  /// keep-everything semantics for space, as production systems must.
  /// Indexes, partitions, the backlog (compacted, durably when applicable),
  /// and the snapshot cache are rebuilt. Returns the number of elements
  /// removed. Constraint-checker state is preserved: future updates must
  /// still be consistent with the full (pre-vacuum) history.
  Result<size_t> VacuumBefore(TimePoint horizon);

  /// \brief Point-in-time specialization-drift state: declared vs observed
  /// kind, Figure-1 pane occupancy, violation count (see spec/drift.h). In
  /// a TEMPSPEC_METRICS=OFF tree the monitor never observes anything, so
  /// the report shows zero stamps.
  DriftReport DriftState() const { return drift_.Report(); }

  /// \brief Cheap DRIFTED check (declared specialization with observed
  /// violations): the optimizer consults this per plan to fall back to the
  /// general strategy when the declaration is no longer trustworthy.
  bool IsDrifted() const { return drift_.Drifted(); }

  /// \brief Storage and population statistics.
  struct Stats {
    size_t elements = 0;          // every element ever stored
    size_t current_elements = 0;  // not logically deleted
    size_t objects = 0;           // distinct object surrogates
    size_t backlog_operations = 0;
    size_t backlog_bytes = 0;     // encoded size of all operations
    TimePoint first_transaction = TimePoint::Max();
    TimePoint last_transaction = TimePoint::Min();
  };
  Stats GetStats() const;

 private:
  explicit TemporalRelation(RelationOptions options);

  Result<ElementSurrogate> InsertAt(TimePoint tt, ObjectSurrogate object,
                                    ValidTime valid, Tuple attributes);
  Status LogicalDeleteAt(TimePoint tt, ElementSurrogate surrogate);
  Status ApplyRecoveredEntries();
  void IndexElement(const Element& e, size_t position);

  SchemaPtr schema_;
  SpecializationSet specs_;
  std::shared_ptr<TransactionClock> clock_;
  std::unique_ptr<BacklogStore> backlog_;
  std::unique_ptr<SnapshotManager> snapshots_;
  ConstraintChecker checker_;
  RelationDriftMonitor drift_;
  size_t snapshot_interval_ = 0;
  GranularityPolicy granularity_policy_ = GranularityPolicy::kIgnore;
  SurrogateGenerator surrogates_;

  std::vector<Element> elements_;  // authoritative bitemporal store
  std::unordered_map<ElementSurrogate, size_t> by_surrogate_;
  std::unordered_map<ObjectSurrogate, std::vector<size_t>> partitions_;
  std::vector<ObjectSurrogate> object_order_;
  AppendOnlyIndex tt_index_;
  IntervalIndex valid_index_;
  StampStore stamps_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_RELATION_TEMPORAL_RELATION_H_
