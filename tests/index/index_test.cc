#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "index/append_index.h"
#include "index/btree.h"
#include "index/interval_index.h"
#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::T;

TEST(BTreeTest, EmptyTree) {
  BTreeIndex tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Lookup(5).empty());
  EXPECT_TRUE(tree.Range(0, 100).empty());
}

TEST(BTreeTest, InsertAndLookup) {
  BTreeIndex tree;
  tree.Insert(5, 50);
  tree.Insert(3, 30);
  tree.Insert(7, 70);
  EXPECT_EQ(tree.Lookup(3), std::vector<uint64_t>{30});
  EXPECT_EQ(tree.Lookup(4), std::vector<uint64_t>{});
  EXPECT_EQ(tree.Range(3, 5), (std::vector<uint64_t>{30, 50}));
}

TEST(BTreeTest, DuplicateKeys) {
  BTreeIndex tree;
  for (uint64_t i = 0; i < 500; ++i) tree.Insert(42, i);
  for (uint64_t i = 0; i < 500; ++i) tree.Insert(43, 1000 + i);
  EXPECT_EQ(tree.Lookup(42).size(), 500u);
  EXPECT_EQ(tree.Lookup(43).size(), 500u);
  EXPECT_EQ(tree.Range(42, 43).size(), 1000u);
}

TEST(BTreeTest, SplitsKeepTreeBalanced) {
  BTreeIndex tree;
  const int n = 100000;
  for (int i = 0; i < n; ++i) tree.Insert(i, static_cast<uint64_t>(i) * 2);
  EXPECT_EQ(tree.size(), static_cast<size_t>(n));
  // Height of a 64-fanout tree over 1e5 keys stays small.
  EXPECT_LE(tree.height(), 4u);
  EXPECT_EQ(tree.Lookup(99999), std::vector<uint64_t>{199998});
  EXPECT_EQ(tree.Lookup(0), std::vector<uint64_t>{0});
}

TEST(BTreeTest, ScanEarlyStop) {
  BTreeIndex tree;
  for (int i = 0; i < 1000; ++i) tree.Insert(i, i);
  int visited = 0;
  tree.Scan(100, 900, [&](int64_t, uint64_t) {
    ++visited;
    return visited < 10;
  });
  EXPECT_EQ(visited, 10);
}

TEST(BTreePropertyTest, MatchesReferenceMultimap) {
  Random rng(3);
  BTreeIndex tree;
  std::multimap<int64_t, uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    const int64_t key = rng.Uniform(-500, 500);
    const uint64_t value = static_cast<uint64_t>(i);
    tree.Insert(key, value);
    reference.emplace(key, value);
  }
  for (int trial = 0; trial < 200; ++trial) {
    int64_t lo = rng.Uniform(-600, 600);
    int64_t hi = lo + rng.Uniform(0, 200);
    auto got = tree.Range(lo, hi);
    std::vector<uint64_t> expected;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      expected.push_back(it->second);
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "range [" << lo << ", " << hi << "]";
  }
}

TEST(IntervalIndexTest, StabAndOverlap) {
  IntervalIndex index;
  index.Insert(T(0), T(10), 1);
  index.Insert(T(5), T(15), 2);
  index.Insert(T(20), T(30), 3);

  auto stab = index.Stab(T(7));
  std::sort(stab.begin(), stab.end());
  EXPECT_EQ(stab, (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(index.Stab(T(10)).size() == 1);  // half-open: 10 not in [0,10)
  EXPECT_TRUE(index.Stab(T(30)).empty());

  auto overlap = index.Overlapping(T(8), T(21));
  std::sort(overlap.begin(), overlap.end());
  EXPECT_EQ(overlap, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_TRUE(index.Overlapping(T(15), T(20)).empty());
}

TEST(IntervalIndexTest, CompactPreservesAnswers) {
  IntervalIndex index;
  for (int i = 0; i < 10; ++i) index.Insert(T(i * 10), T(i * 10 + 5), i);
  const auto before = index.Stab(T(42));
  index.Compact();
  EXPECT_EQ(index.delta_size(), 0u);
  EXPECT_EQ(index.Stab(T(42)), before);
}

TEST(IntervalIndexPropertyTest, MatchesLinearScan) {
  Random rng(9);
  IntervalIndex index;
  struct Iv {
    int64_t b, e;
    uint64_t v;
  };
  std::vector<Iv> reference;
  for (int i = 0; i < 5000; ++i) {
    const int64_t b = rng.Uniform(0, 10000);
    const int64_t e = b + rng.Uniform(1, 500);
    index.Insert(T(b), T(e), static_cast<uint64_t>(i));
    reference.push_back(Iv{b, e, static_cast<uint64_t>(i)});

    if (i % 500 == 0) {
      const int64_t q = rng.Uniform(0, 10000);
      auto got = index.Stab(T(q));
      std::vector<uint64_t> expected;
      for (const auto& iv : reference) {
        if (iv.b <= q && q < iv.e) expected.push_back(iv.v);
      }
      std::sort(got.begin(), got.end());
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(got, expected) << "stab " << q << " after " << i;

      const int64_t lo = rng.Uniform(0, 10000);
      const int64_t hi = lo + rng.Uniform(1, 1000);
      auto got_ov = index.Overlapping(T(lo), T(hi));
      std::vector<uint64_t> expected_ov;
      for (const auto& iv : reference) {
        if (iv.b < hi && lo < iv.e) expected_ov.push_back(iv.v);
      }
      std::sort(got_ov.begin(), got_ov.end());
      std::sort(expected_ov.begin(), expected_ov.end());
      ASSERT_EQ(got_ov, expected_ov);
    }
  }
}

TEST(AppendIndexTest, AppendAndRange) {
  AppendOnlyIndex index;
  ASSERT_OK(index.Append(T(10), 1));
  ASSERT_OK(index.Append(T(20), 2));
  ASSERT_OK(index.Append(T(20), 3));  // duplicates allowed
  ASSERT_OK(index.Append(T(30), 4));
  EXPECT_EQ(index.Range(T(15), T(25)), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(index.Lookup(T(20)).size(), 2u);
  EXPECT_TRUE(index.Range(T(31), T(40)).empty());
  EXPECT_TRUE(index.Range(T(25), T(15)).empty());  // inverted range
}

TEST(AppendIndexTest, RejectsOutOfOrder) {
  AppendOnlyIndex index;
  ASSERT_OK(index.Append(T(10), 1));
  EXPECT_TRUE(index.Append(T(5), 2).IsInvalidArgument());
  // The violating append left no trace.
  EXPECT_EQ(index.size(), 1u);
  ASSERT_OK(index.Append(T(10), 3));  // equal keys fine
}

TEST(AppendIndexTest, Bounds) {
  AppendOnlyIndex index;
  for (int i = 0; i < 100; ++i) ASSERT_OK(index.Append(T(i * 2), i));
  EXPECT_EQ(index.LowerBound(T(10)), 5u);
  EXPECT_EQ(index.LowerBound(T(11)), 6u);
  EXPECT_EQ(index.UpperBound(T(10)), 6u);
  EXPECT_EQ(index.KeyAt(5), T(10));
  EXPECT_EQ(index.ValueAt(5), 5u);
}

}  // namespace
}  // namespace tempspec
