#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tempspec {

Result<std::unique_ptr<DiskManager>> DiskManager::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open '", path, "': ", std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat '", path, "': ", std::strerror(err));
  }
  if (st.st_size % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("file '", path, "' size ", st.st_size,
                              " is not a multiple of the page size");
  }
  const uint64_t pages = static_cast<uint64_t>(st.st_size) / kPageSize;
  return std::unique_ptr<DiskManager>(new DiskManager(path, fd, pages));
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> DiskManager::AllocatePage() {
  Page zero;
  zero.Zero();
  const PageId id = page_count_;
  TS_RETURN_NOT_OK(WritePageInternal(id, zero));
  page_count_ = id + 1;
  return id;
}

Status DiskManager::ReadPage(PageId id, Page* out) const {
  if (id >= page_count_) {
    return Status::OutOfRange("page ", id, " beyond end of file (", page_count_,
                              " pages)");
  }
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pread(fd_, out->data, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("short read of page ", id, " from '", path_, "'");
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const Page& page) {
  if (id >= page_count_) {
    return Status::OutOfRange("page ", id, " beyond end of file (", page_count_,
                              " pages); AllocatePage first");
  }
  return WritePageInternal(id, page);
}

Status DiskManager::WritePageInternal(PageId id, const Page& page) {
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pwrite(fd_, page.data, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("short write of page ", id, " to '", path_, "'");
  }
  return Status::OK();
}

Status DiskManager::Truncate() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("truncate failed on '", path_, "': ",
                           std::strerror(errno));
  }
  page_count_ = 0;
  return Status::OK();
}

Status DiskManager::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed on '", path_, "': ",
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace tempspec
