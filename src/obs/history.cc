#include "obs/history.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace tempspec {

namespace {

uint64_t NowUnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string HistorySample::ToJson() const {
  std::string out = "{\"unix_micros\":" + std::to_string(unix_micros);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, digest] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(digest.count) + ",\"sum\":" +
           std::to_string(digest.sum) + ",\"p50\":" +
           std::to_string(digest.p50) + ",\"p99\":" +
           std::to_string(digest.p99) + '}';
  }
  out += "}}";
  return out;
}

MetricsHistory& MetricsHistory::Instance() {
  static MetricsHistory* instance = new MetricsHistory();
  return *instance;
}

void MetricsHistory::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  if (ring_.size() > capacity_) {
    ring_.erase(ring_.begin(),
                ring_.begin() + static_cast<long>(ring_.size() - capacity_));
  }
}

size_t MetricsHistory::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void MetricsHistory::SampleOnce() {
  const MetricsSnapshot snapshot = MetricsRegistry::Instance().Scrape();
  HistorySample sample;
  sample.unix_micros = NowUnixMicros();
  sample.counters = snapshot.counters;
  sample.gauges = snapshot.gauges;
  for (const auto& [name, histogram] : snapshot.histograms) {
    HistorySample::HistogramDigest digest;
    digest.count = histogram.count;
    digest.sum = histogram.sum;
    digest.p50 = histogram.Percentile(0.50);
    digest.p99 = histogram.Percentile(0.99);
    sample.histograms.emplace(name, digest);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  if (ring_.size() >= capacity_) ring_.erase(ring_.begin());
  ring_.push_back(std::move(sample));
  ++total_samples_;
}

void MetricsHistory::Start(uint64_t interval_ms,
                           std::function<void()> on_sample) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_ || interval_ms == 0) return;
    running_ = true;
    stop_requested_ = false;
    interval_ms_ = interval_ms;
    on_sample_ = std::move(on_sample);
  }
  sampler_ = std::thread(&MetricsHistory::Run, this);
}

void MetricsHistory::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  on_sample_ = {};
}

bool MetricsHistory::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

uint64_t MetricsHistory::interval_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return interval_ms_;
}

void MetricsHistory::Run() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    SampleOnce();
    std::function<void()> hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      hook = on_sample_;
    }
    if (hook) hook();
  }
}

std::vector<HistorySample> MetricsHistory::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

uint64_t MetricsHistory::TotalSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_samples_;
}

std::string MetricsHistory::RenderJsonl(size_t limit) const {
  std::vector<HistorySample> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = limit == 0 ? ring_.size() : std::min(limit, ring_.size());
    entries.assign(ring_.end() - static_cast<long>(n), ring_.end());
  }
  std::string out;
  for (const HistorySample& sample : entries) {
    out += sample.ToJson();
    out += '\n';
  }
  return out;
}

void MetricsHistory::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_samples_ = 0;
}

}  // namespace tempspec
