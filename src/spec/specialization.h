// SpecializationSet and ConstraintChecker: the bridge between the taxonomy
// and the relation engine.
//
// A SpecializationSet is the designer's declaration of the time semantics of
// one relation — any combination of isolated-event types (per valid anchor
// for interval relations), inter-event orderings/regularity, and interval
// properties. The ConstraintChecker enforces the declaration intensionally:
// every update that would produce an extension violating any declared
// property is rejected (Section 3: "for a relation schema to have a
// particular type, all its possible (non-empty) extensions must satisfy the
// definition of the type").
#ifndef TEMPSPEC_SPEC_SPECIALIZATION_H_
#define TEMPSPEC_SPEC_SPECIALIZATION_H_

#include <span>
#include <string>
#include <vector>

#include "model/element.h"
#include "model/schema.h"
#include "spec/event_spec.h"
#include "spec/interevent_spec.h"
#include "spec/interinterval_spec.h"
#include "spec/interval_spec.h"

namespace tempspec {

/// \brief A declared combination of specializations for one relation.
class SpecializationSet {
 public:
  SpecializationSet() = default;

  /// \brief Isolated-event type for an event relation (Section 3.1).
  SpecializationSet& AddEvent(EventSpecialization spec) {
    event_specs_.push_back(std::move(spec));
    return *this;
  }
  /// \brief Isolated-event type applied to an endpoint of an interval
  /// relation (Section 3.3), e.g. vt_e-retroactive.
  SpecializationSet& AddAnchoredEvent(AnchoredEventSpec spec) {
    anchored_specs_.push_back(std::move(spec));
    return *this;
  }
  /// \brief Inter-event ordering (Section 3.2).
  SpecializationSet& AddOrdering(OrderingSpec spec) {
    orderings_.push_back(spec);
    return *this;
  }
  /// \brief Inter-event regularity (Section 3.2).
  SpecializationSet& AddRegularity(RegularitySpec spec) {
    regularities_.push_back(spec);
    return *this;
  }
  /// \brief Inter-interval ordering (Section 3.4).
  SpecializationSet& AddIntervalOrdering(IntervalOrderingSpec spec) {
    interval_orderings_.push_back(spec);
    return *this;
  }
  /// \brief Successive transaction time X (Section 3.4).
  SpecializationSet& AddSuccessive(SuccessiveSpec spec) {
    successive_.push_back(spec);
    return *this;
  }
  /// \brief Interval regularity (Section 3.3).
  SpecializationSet& AddIntervalRegularity(IntervalRegularitySpec spec) {
    interval_regularities_.push_back(spec);
    return *this;
  }

  const std::vector<EventSpecialization>& event_specs() const {
    return event_specs_;
  }
  const std::vector<AnchoredEventSpec>& anchored_specs() const {
    return anchored_specs_;
  }
  const std::vector<OrderingSpec>& orderings() const { return orderings_; }
  const std::vector<RegularitySpec>& regularities() const { return regularities_; }
  const std::vector<IntervalOrderingSpec>& interval_orderings() const {
    return interval_orderings_;
  }
  const std::vector<SuccessiveSpec>& successive() const { return successive_; }
  const std::vector<IntervalRegularitySpec>& interval_regularities() const {
    return interval_regularities_;
  }

  bool empty() const {
    return event_specs_.empty() && anchored_specs_.empty() && orderings_.empty() &&
           regularities_.empty() && interval_orderings_.empty() &&
           successive_.empty() && interval_regularities_.empty();
  }

  /// \brief Checks that the declared properties fit the relation kind (event
  /// specs on event relations, anchored/interval specs on interval
  /// relations) and that no two declared bands are contradictory (an
  /// insertion-anchored band pair with empty intersection can never admit an
  /// element).
  Status ValidateFor(const Schema& schema) const;

  /// \brief One declaration per line.
  std::string ToString() const;

 private:
  std::vector<EventSpecialization> event_specs_;
  std::vector<AnchoredEventSpec> anchored_specs_;
  std::vector<OrderingSpec> orderings_;
  std::vector<RegularitySpec> regularities_;
  std::vector<IntervalOrderingSpec> interval_orderings_;
  std::vector<SuccessiveSpec> successive_;
  std::vector<IntervalRegularitySpec> interval_regularities_;
};

/// \brief Stateful intensional enforcement of a SpecializationSet.
///
/// Feed OnInsert for every insertion (in transaction-time order; the
/// relation's clock guarantees monotone stamps) and OnLogicalDelete when an
/// element's tt_d is set. Inter-element properties are enforced online for
/// the insertion anchor; deletion-anchored isolated properties are enforced
/// at deletion time.
class ConstraintChecker {
 public:
  ConstraintChecker(const SpecializationSet& specs, Granularity granularity);

  /// \brief Checks a prospective insertion. Does not mutate state on error,
  /// so a rejected element can be corrected and retried.
  Status OnInsert(const Element& e);

  /// \brief Checks a prospective logical deletion (e.tt_end must be set).
  Status OnLogicalDelete(const Element& e) const;

  /// \brief Batch verification of a full extension against every declared
  /// property (including deletion anchors); used on recovery and by tests.
  Status CheckExtension(std::span<const Element> elements) const;

  void Reset();

 private:
  const SpecializationSet specs_;
  Granularity granularity_;
  std::vector<OnlineOrderingChecker> ordering_checkers_;
  std::vector<OnlineRegularityChecker> regularity_checkers_;
  std::vector<OnlineIntervalChecker> interval_checkers_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_SPEC_SPECIALIZATION_H_
