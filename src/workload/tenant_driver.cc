#include "workload/tenant_driver.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "timex/calendar.h"

namespace tempspec {

namespace {

constexpr int64_t kSec = 1000000;
constexpr int64_t kMin = 60 * kSec;
constexpr int64_t kHour = 60 * kMin;
constexpr int64_t kDay = 24 * kHour;
constexpr int64_t kWeek = 7 * kDay;

// Assignments start two days past the epoch so vt_begin stays ahead of the
// relation clock (one tick per mutation from the epoch) for any plausible
// run length — VT_BEGIN PREDICTIVE requires vt_begin >= tt.
constexpr int64_t kAssignmentBase = 2 * kDay;
constexpr uint64_t kEmployees = 8;
constexpr uint64_t kObjects = 16;

// Every third orders write is a delete of a previously acked order.
constexpr uint64_t kDeleteEvery = 3;

}  // namespace

TenantDriver::TenantDriver(const TenantOptions& options, SimEndpoint* endpoint)
    : options_(options),
      endpoint_(endpoint),
      client_([&] {
        ClientOptions c;
        c.host = endpoint->host;
        c.protocol = options.protocol;
        return c;
      }()),
      rng_(options.seed),
      employee_weeks_(kEmployees + 1, 0) {
  report_.relation = ScenarioRelationName(options_.scenario);
  report_.application = ScenarioApplication(options_.scenario);
}

std::string TenantDriver::CreateStatement(Scenario scenario) {
  switch (scenario) {
    case Scenario::kProcessMonitoring:
      return "CREATE EVENT RELATION plant_temperatures (sensor INT64 KEY, "
             "celsius DOUBLE) GRANULARITY 1s WITH DELAYED RETROACTIVE 1min, "
             "RETROACTIVELY BOUNDED 2h";
    case Scenario::kDegenerateMonitoring:
      return "CREATE EVENT RELATION reactor_samples (sensor INT64 KEY, "
             "level DOUBLE) GRANULARITY 1d WITH DEGENERATE";
    case Scenario::kPayroll:
      return "CREATE EVENT RELATION payroll_deposits (employee INT64 KEY, "
             "amount DOUBLE) GRANULARITY 1s WITH EARLY STRONGLY PREDICTIVELY "
             "BOUNDED 3d 7d";
    case Scenario::kAssignments:
      return "CREATE INTERVAL RELATION assignments (employee INT64 KEY, "
             "project STRING) GRANULARITY 1h WITH VT_BEGIN PREDICTIVE, "
             "STRICT VALID INTERVAL REGULAR 1w, CONTIGUOUS PER SURROGATE";
    case Scenario::kAccounting:
      return "CREATE EVENT RELATION ledger (account INT64 KEY, "
             "amount DOUBLE) GRANULARITY 1s WITH STRONGLY BOUNDED 5d 2d";
    case Scenario::kOrders:
      return "CREATE EVENT RELATION orders (customer INT64 KEY, "
             "total DOUBLE) GRANULARITY 1s WITH PREDICTIVELY BOUNDED 30d";
    case Scenario::kArchaeology:
      return "CREATE INTERVAL RELATION strata (square INT64 KEY, "
             "depth DOUBLE) GRANULARITY 1h WITH NONINCREASING";
    case Scenario::kGeneral:
      return "CREATE EVENT RELATION general_events (id INT64 KEY, "
             "v DOUBLE) GRANULARITY 1s";
  }
  return "";
}

std::string TenantDriver::FmtTime(int64_t micros) const {
  return "'" + FormatTimePoint(TimePoint::FromMicros(micros)) + "'";
}

std::string TenantDriver::NextWriteStatement(bool* is_delete) {
  *is_delete = false;
  const std::string rel = report_.relation;
  // Upper bound on the stamp the engine will assign this mutation.
  const int64_t tt = static_cast<int64_t>(ticks_) * kSec;
  const uint64_t object = static_cast<uint64_t>(rng_.Uniform(1, kObjects));
  char value[32];
  std::snprintf(value, sizeof(value), "%.2f", 10.0 + rng_.NextDouble() * 80.0);
  ++write_index_;

  switch (options_.scenario) {
    case Scenario::kProcessMonitoring: {
      // Transmission delay well inside [1min, 2h]: margin absorbs any
      // prediction drift.
      const int64_t delay = rng_.Uniform(300, 3600) * kSec;
      probe_us_ = tt - delay;
      return "INSERT INTO " + rel + " OBJECT " + std::to_string(object) +
             " VALUES (" + std::to_string(object) + ", " + value +
             ") VALID AT " + FmtTime(probe_us_);
    }
    case Scenario::kDegenerateMonitoring: {
      // Same chronon as the stamp at 1d granularity: the stamp's day start.
      probe_us_ = (tt / kDay) * kDay;
      return "INSERT INTO " + rel + " OBJECT " + std::to_string(object) +
             " VALUES (" + std::to_string(object) + ", " + value +
             ") VALID AT " + FmtTime(probe_us_);
    }
    case Scenario::kPayroll: {
      const int64_t lead = rng_.Uniform(3 * 86400 + 7200, 7 * 86400 - 7200);
      probe_us_ = tt + lead * kSec;
      return "INSERT INTO " + rel + " OBJECT " + std::to_string(object) +
             " VALUES (" + std::to_string(object) + ", " + value +
             ") VALID AT " + FmtTime(probe_us_);
    }
    case Scenario::kAssignments: {
      // Round-robin employees; each employee's weeks are consecutive, so
      // per-surrogate intervals stay contiguous and exactly one week long.
      next_employee_ = next_employee_ % kEmployees + 1;
      const uint64_t week = employee_weeks_[next_employee_]++;
      const int64_t begin =
          kAssignmentBase + static_cast<int64_t>(week) * kWeek;
      probe_us_ = begin;
      return "INSERT INTO " + rel + " OBJECT " +
             std::to_string(next_employee_) + " VALUES (" +
             std::to_string(next_employee_) + ", 'project-" +
             std::to_string(week % 5) + "') VALID FROM " + FmtTime(begin) +
             " TO " + FmtTime(begin + kWeek);
    }
    case Scenario::kAccounting: {
      int64_t offset;
      if (drifting()) {
        // Hostile: a month past the declared 2-day predictive bound.
        offset = 30 * 86400;
      } else {
        offset = rng_.Uniform(-5 * 86400 + 7200, 2 * 86400 - 7200);
      }
      probe_us_ = tt + offset * kSec;
      return "INSERT INTO " + rel + " OBJECT " + std::to_string(object) +
             " VALUES (" + std::to_string(object) + ", " + value +
             ") VALID AT " + FmtTime(probe_us_);
    }
    case Scenario::kOrders: {
      if (write_index_ % kDeleteEvery == 0 && !pending_order_ids_.empty()) {
        *is_delete = true;
        const uint64_t id = pending_order_ids_.front();
        pending_order_ids_.erase(pending_order_ids_.begin());
        return "DELETE FROM " + rel + " WHERE ID " + std::to_string(id);
      }
      const int64_t offset = rng_.Uniform(-60 * 86400, 30 * 86400 - 7200);
      probe_us_ = tt + offset * kSec;
      return "INSERT INTO " + rel + " OBJECT " + std::to_string(object) +
             " VALUES (" + std::to_string(object) + ", " + value +
             ") VALID AT " + FmtTime(probe_us_);
    }
    case Scenario::kArchaeology: {
      // Excavation reaches progressively earlier one-hour layers; interval
      // begins are strictly decreasing (pre-epoch instants are fine).
      const int64_t layer = static_cast<int64_t>(strata_layer_++);
      const int64_t begin = -(layer + 1) * kHour;
      probe_us_ = begin;
      return "INSERT INTO " + rel + " OBJECT " + std::to_string(object) +
             " VALUES (" + std::to_string(object) + ", " + value +
             ") VALID FROM " + FmtTime(begin) + " TO " +
             FmtTime(begin + kHour);
    }
    case Scenario::kGeneral: {
      const int64_t offset = rng_.Uniform(-7200, 7200);
      probe_us_ = tt + offset * kSec;
      return "INSERT INTO " + rel + " OBJECT " + std::to_string(object) +
             " VALUES (" + std::to_string(object) + ", " + value +
             ") VALID AT " + FmtTime(probe_us_);
    }
  }
  return "CURRENT " + rel;
}

std::string TenantDriver::NextReadStatement() {
  const std::string rel = report_.relation;
  switch (read_index_++ % 3) {
    case 0:
      return "CURRENT " + rel;
    case 1:
      return "TIMESLICE " + rel + " AT " + FmtTime(probe_us_);
    default:
      return "RANGE " + rel + " FROM " + FmtTime(probe_us_ - kDay) + " TO " +
             FmtTime(probe_us_ + kDay);
  }
}

bool TenantDriver::EnsureConnected() {
  while (!endpoint_->stop.load(std::memory_order_relaxed)) {
    const uint64_t generation =
        endpoint_->generation.load(std::memory_order_acquire);
    if (client_.connected() && generation == connected_generation_) {
      return true;
    }
    const int port = endpoint_->port.load(std::memory_order_acquire);
    if (port > 0 &&
        client_.Connect(static_cast<uint16_t>(port)).ok()) {
      connected_generation_ = generation;
      if (ever_connected_) ++report_.reconnects;
      ever_connected_ = true;
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

void TenantDriver::RetainErrorDetail(const char* op, const WireReply& reply) {
  if (report_.error_details.size() >= TenantReport::kMaxErrorDetails) return;
  std::string detail = std::string(op) + " " +
                       WireOutcomeToString(reply.outcome) + ": " +
                       reply.body.substr(0, TenantReport::kErrorDetailBytes);
  // One log line per detail: strip the body's own newlines.
  for (char& c : detail) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  report_.error_details.push_back(std::move(detail));
}

void TenantDriver::RecordWrite(const WireReply& reply, bool is_delete) {
  switch (reply.outcome) {
    case WireOutcome::kOk:
      ++ticks_;
      ++report_.requests_counted;
      if (is_delete) {
        ++report_.acked_deletes;
      } else {
        ++report_.acked_inserts;
        if (options_.scenario == Scenario::kOrders) {
          unsigned long long id = 0;
          if (std::sscanf(reply.body.c_str(), "inserted element %llu", &id) ==
              1) {
            pending_order_ids_.push_back(id);
          }
        }
      }
      break;
    case WireOutcome::kClientError:
      // The statement reached the engine and was refused there — the
      // relation clock still ticked.
      ++ticks_;
      ++report_.requests_counted;
      ++report_.constraint_rejections;
      RetainErrorDetail("write", reply);
      if (drifting()) {
        ++report_.drift_rejections;
        drift_rejections_observed_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case WireOutcome::kDeadline:
      // Dispatched (so counted by the server) but its effect is unknown.
      ++ticks_;
      ++report_.requests_counted;
      ++report_.deadline_exceeded;
      if (is_delete) {
        ++report_.ambiguous_deletes;
      } else {
        ++report_.ambiguous_inserts;
      }
      break;
    case WireOutcome::kServerError:
      ++ticks_;
      ++report_.requests_counted;
      ++report_.server_errors;
      RetainErrorDetail("write", reply);
      if (is_delete) {
        ++report_.ambiguous_deletes;
      } else {
        ++report_.ambiguous_inserts;
      }
      break;
    case WireOutcome::kTransport:
      // The send may never have arrived, or the reply may have been lost
      // after execution: ambiguous for both the element count and the
      // server's request counter.
      ++ticks_;
      ++report_.transport_errors;
      if (is_delete) {
        ++report_.ambiguous_deletes;
      } else {
        ++report_.ambiguous_inserts;
      }
      break;
    case WireOutcome::kRejected:
      // Handled by the retry loop in Run; only the final give-up lands here.
      ++report_.admission_rejections;
      break;
  }
}

void TenantDriver::RecordRead(const WireReply& reply) {
  switch (reply.outcome) {
    case WireOutcome::kOk:
      ++report_.reads_ok;
      ++report_.requests_counted;
      break;
    case WireOutcome::kClientError:
    case WireOutcome::kServerError:
      ++report_.read_errors;
      ++report_.requests_counted;
      RetainErrorDetail("read", reply);
      break;
    case WireOutcome::kDeadline:
      ++report_.deadline_exceeded;
      ++report_.read_errors;
      ++report_.requests_counted;
      break;
    case WireOutcome::kTransport:
      ++report_.transport_errors;
      break;
    case WireOutcome::kRejected:
      ++report_.admission_rejections;
      break;
  }
}

void TenantDriver::Run() {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  uint64_t op_index = 0;
  const int ops_per_cycle = options_.reads_per_write + 1;

  while (!endpoint_->stop.load(std::memory_order_relaxed)) {
    if (options_.max_ops > 0 && op_index >= options_.max_ops) break;
    if (!EnsureConnected()) break;

    // Paced (open-loop style) arrival: each op has a fixed slot on the
    // schedule; if the server is slow we run behind and latency — measured
    // from the slot — grows, instead of the arrival rate quietly dropping.
    Clock::time_point arrival = Clock::now();
    if (options_.paced_rate_per_s > 0) {
      const auto slot =
          start + std::chrono::microseconds(static_cast<int64_t>(
                      static_cast<double>(op_index) * 1e6 /
                      options_.paced_rate_per_s));
      if (slot > arrival) {
        std::this_thread::sleep_until(slot);
      }
      arrival = slot;
    }

    if (options_.drift_after_ops > 0 && op_index >= options_.drift_after_ops) {
      drift_.store(true, std::memory_order_relaxed);
    }
    const bool is_write = op_index % ops_per_cycle == 0;
    bool is_delete = false;
    const std::string statement = is_write
                                      ? NextWriteStatement(&is_delete)
                                      : NextReadStatement();

    const Clock::time_point sent = Clock::now();
    WireReply reply = client_.Execute(statement, options_.deadline_ms);
    while (reply.outcome == WireOutcome::kRejected &&
           !endpoint_->stop.load(std::memory_order_relaxed)) {
      // Admission rejections provably never executed: retry the identical
      // statement (the predicted stamp is unchanged).
      ++report_.admission_rejections;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      reply = client_.Execute(statement, options_.deadline_ms);
    }
    const Clock::time_point done = Clock::now();

    if (reply.outcome == WireOutcome::kRejected) {
      // Only reachable when the run was stopped mid-retry.
      ++report_.admission_rejections;
    } else {
      const Clock::time_point measured_from =
          options_.paced_rate_per_s > 0 ? arrival : sent;
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(done -
                                                               measured_from)
              .count());
      if (reply.outcome != WireOutcome::kTransport) {
        (is_write ? report_.write_latency_ns : report_.read_latency_ns)
            .push_back(ns);
      }
      if (is_write) {
        RecordWrite(reply, is_delete);
      } else {
        RecordRead(reply);
      }
    }
    ++op_index;
    ops_completed_.store(op_index, std::memory_order_relaxed);

    if (options_.think_time_us > 0 && options_.paced_rate_per_s <= 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.think_time_us));
    }
  }
  client_.Close();
}

uint64_t TenantDriver::MinLiveElements() const {
  const uint64_t inserted = report_.acked_inserts;
  const uint64_t removed = report_.acked_deletes + report_.ambiguous_deletes;
  return inserted > removed ? inserted - removed : 0;
}

uint64_t TenantDriver::MaxLiveElements() const {
  const uint64_t inserted = report_.acked_inserts + report_.ambiguous_inserts;
  const uint64_t removed = report_.acked_deletes;
  return inserted > removed ? inserted - removed : 0;
}

}  // namespace tempspec
