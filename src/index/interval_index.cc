#include "index/interval_index.h"

#include <algorithm>

namespace tempspec {

void IntervalIndex::Insert(TimePoint begin, TimePoint end, uint64_t value) {
  delta_.push_back(Entry{begin.micros(), end.micros(), value});
  // Merge once the linear-scan cost of the delta approaches the logarithmic
  // core cost; /8 keeps rebuilds amortized-cheap.
  if (delta_.size() > 64 && delta_.size() * 8 > core_.size()) Rebuild();
}

void IntervalIndex::Compact() {
  if (!delta_.empty()) Rebuild();
}

void IntervalIndex::Rebuild() {
  core_.insert(core_.end(), delta_.begin(), delta_.end());
  delta_.clear();
  std::sort(core_.begin(), core_.end(),
            [](const Entry& a, const Entry& b) { return a.begin < b.begin; });
  max_end_.assign(core_.size(), 0);
  if (!core_.empty()) BuildMaxEnd(0, core_.size());
}

void IntervalIndex::BuildMaxEnd(size_t lo, size_t hi) {
  if (lo >= hi) return;
  const size_t mid = lo + (hi - lo) / 2;
  int64_t m = core_[mid].end;
  if (mid > lo) {
    BuildMaxEnd(lo, mid);
    m = std::max(m, max_end_[lo + (mid - lo) / 2]);
  }
  if (mid + 1 < hi) {
    BuildMaxEnd(mid + 1, hi);
    m = std::max(m, max_end_[mid + 1 + (hi - mid - 1) / 2]);
  }
  max_end_[mid] = m;
}

void IntervalIndex::OverlapCore(size_t lo, size_t hi, int64_t qlo, int64_t qhi,
                                std::vector<uint64_t>* out) const {
  if (lo >= hi || qlo >= qhi) return;
  const size_t mid = lo + (hi - lo) / 2;
  if (max_end_[mid] <= qlo) return;
  OverlapCore(lo, mid, qlo, qhi, out);
  const Entry& e = core_[mid];
  if (e.begin < qhi && qlo < e.end) out->push_back(e.value);
  if (e.begin < qhi) OverlapCore(mid + 1, hi, qlo, qhi, out);
}

void IntervalIndex::SortHits(std::vector<uint64_t>* out,
                             size_t core_hits) const {
  // Core hits come out in begin order, not value order; the delta is scanned
  // in insertion order, which in practice (positions appended by the
  // relation) is already ascending. Sort whichever half needs it, then merge
  // — cheaper than one big sort when either half is pre-sorted, and it gives
  // callers the value-ascending contract without a per-query sort of theirs.
  auto mid = out->begin() + static_cast<std::ptrdiff_t>(core_hits);
  if (!std::is_sorted(out->begin(), mid)) std::sort(out->begin(), mid);
  if (!std::is_sorted(mid, out->end())) std::sort(mid, out->end());
  std::inplace_merge(out->begin(), mid, out->end());
}

std::vector<uint64_t> IntervalIndex::Stab(TimePoint tp) const {
  std::vector<uint64_t> out;
  const int64_t p = tp.micros();
  OverlapCore(0, core_.size(), p, p + 1, &out);
  const size_t core_hits = out.size();
  for (const Entry& e : delta_) {
    if (e.begin <= p && p < e.end) out.push_back(e.value);
  }
  SortHits(&out, core_hits);
  return out;
}

std::vector<uint64_t> IntervalIndex::Overlapping(TimePoint lo, TimePoint hi) const {
  std::vector<uint64_t> out;
  OverlapCore(0, core_.size(), lo.micros(), hi.micros(), &out);
  const size_t core_hits = out.size();
  for (const Entry& e : delta_) {
    if (e.begin < hi.micros() && lo.micros() < e.end) out.push_back(e.value);
  }
  SortHits(&out, core_hits);
  return out;
}

}  // namespace tempspec
