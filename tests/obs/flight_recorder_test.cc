// Tests for the black-box flight recorder: slot round-trips, ring wrap,
// detail truncation, JSONL serialization (parsed with testing_json.h), the
// multi-writer seqlock protocol under a concurrent drain (the TSan job runs
// this), the dump-to-file path the crash harness uses, and the
// TEMPSPEC_FLIGHTRECORDER compile flag in both directions.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "storage/backlog.h"
#include "testing.h"
#include "testing_json.h"

namespace tempspec {
namespace {

using testing::JsonParser;
using testing::JsonValue;
using testing::MakeEventElement;
using testing::T;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("tempspec_flight_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(FlightRecorderTest, RecordAndSnapshotRoundTrip) {
  FlightRecorder rec(64);
  rec.Record(FlightCategory::kWal, FlightCode::kWalAppend, 7, 123, "first");
  rec.Record(FlightCategory::kPage, FlightCode::kPageWrite, 3, 4096, "");
  rec.Record(FlightCategory::kFault, FlightCode::kFaultInject, -2, 1,
             "wal.append");
  ASSERT_EQ(rec.head(), 3u);

  const std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].category, FlightCategory::kWal);
  EXPECT_EQ(events[0].code, FlightCode::kWalAppend);
  EXPECT_EQ(events[0].arg0, 7);
  EXPECT_EQ(events[0].arg1, 123);
  EXPECT_EQ(events[0].detail, "first");
  EXPECT_EQ(events[0].thread_id, ThisThreadFlightId());

  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].detail, "");
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[2].arg0, -2) << "negative args must survive the packing";
  EXPECT_EQ(events[2].detail, "wal.append");
  EXPECT_LE(events[0].nanos, events[1].nanos);
  EXPECT_LE(events[1].nanos, events[2].nanos);
}

TEST(FlightRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(64).capacity(), 64u);
  EXPECT_EQ(FlightRecorder(100).capacity(), 128u);
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u) << "floor of two slots";
}

TEST(FlightRecorderTest, DetailTruncatesAtInlineBudget) {
  FlightRecorder rec(64);
  const std::string long_detail(2 * kFlightDetailBytes, 'x');
  rec.Record(FlightCategory::kAdvisor, FlightCode::kAdvisorNote, 0, 0,
             long_detail);
  const std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail, std::string(kFlightDetailBytes, 'x'));
}

TEST(FlightRecorderTest, WrapKeepsTheMostRecentEvents) {
  FlightRecorder rec(64);
  for (int64_t i = 0; i < 200; ++i) {
    rec.Record(FlightCategory::kWal, FlightCode::kWalAppend, i, 0, "");
  }
  EXPECT_EQ(rec.head(), 200u);
  const std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 64u) << "exactly one ring of events resident";
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 136 + i) << "contiguous tail, oldest first";
    EXPECT_EQ(events[i].arg0, static_cast<int64_t>(136 + i));
  }
}

TEST(FlightRecorderTest, JsonlParsesWithExpectedSchema) {
  FlightRecorder rec(64);
  rec.Record(FlightCategory::kWal, FlightCode::kWalAppend, 7, 123, "plain");
  rec.Record(FlightCategory::kFault, FlightCode::kFaultInject, -5, 2,
             "we\"ird\\detail\n\x01");
  const std::string jsonl = rec.ToJsonl();

  std::vector<std::string> lines;
  size_t start = 0;
  while (start < jsonl.size()) {
    const size_t nl = jsonl.find('\n', start);
    ASSERT_NE(nl, std::string::npos) << "every event line ends in newline";
    lines.push_back(jsonl.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);

  ASSERT_OK_AND_ASSIGN(JsonValue first, JsonParser::Parse(lines[0]));
  EXPECT_EQ(first.at("seq").number, "0");
  EXPECT_EQ(first.at("category").string, "wal");
  EXPECT_EQ(first.at("code").string, "wal.append");
  EXPECT_EQ(first.at("arg0").number, "7");
  EXPECT_EQ(first.at("arg1").number, "123");
  EXPECT_EQ(first.at("detail").string, "plain");
  EXPECT_FALSE(first.at("nanos").number.empty());
  EXPECT_FALSE(first.at("tid").number.empty());

  // Hostile detail bytes must be escaped, not break the line format.
  ASSERT_OK_AND_ASSIGN(JsonValue second, JsonParser::Parse(lines[1]));
  EXPECT_EQ(second.at("category").string, "fault");
  EXPECT_EQ(second.at("code").string, "fault.inject");
  EXPECT_EQ(second.at("arg0").number, "-5");
  EXPECT_EQ(second.at("detail").string, "we\"ird\\detail\n\x01");
}

TEST(FlightRecorderTest, DumpToFileMatchesSnapshot) {
  TempDir dir;
  FlightRecorder rec(64);
  rec.Record(FlightCategory::kCheckpoint, FlightCode::kCheckpointBegin, 10, 20,
             "");
  rec.Record(FlightCategory::kCheckpoint, FlightCode::kCheckpointEnd, 20, 0,
             "");
  const std::string path = dir.path() + "/flight.jsonl";
  ASSERT_OK(rec.DumpToFile(path));

  // The signal-safe writer and the allocating writer must agree on the
  // schema: the dump parses line by line with identical field values.
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  const std::vector<FlightEvent> events = rec.Snapshot();
  std::string line;
  size_t n = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(n, events.size());
    ASSERT_OK_AND_ASSIGN(JsonValue v, JsonParser::Parse(line));
    EXPECT_EQ(v.at("seq").number, std::to_string(events[n].seq));
    EXPECT_EQ(v.at("category").string,
              FlightCategoryToString(events[n].category));
    EXPECT_EQ(v.at("code").string, FlightCodeToString(events[n].code));
    EXPECT_EQ(v.at("arg0").number, std::to_string(events[n].arg0));
    EXPECT_EQ(v.at("arg1").number, std::to_string(events[n].arg1));
    ++n;
  }
  EXPECT_EQ(n, events.size());
}

TEST(FlightRecorderTest, DumpToFileRejectsUnwritablePath) {
  FlightRecorder rec(64);
  rec.Record(FlightCategory::kWal, FlightCode::kWalAppend, 0, 0, "");
  EXPECT_NOT_OK(rec.DumpToFile("/nonexistent-dir/flight.jsonl"));
}

TEST(FlightRecorderTest, MultiWriterStressWithConcurrentDrain) {
  // 8 writers hammer a deliberately small ring (every record wraps) while a
  // drainer snapshots continuously. The seqlock contract under test: every
  // delivered event is internally consistent (arg1 == 2*arg0 + 1 — a torn
  // slot would mix two writers' payloads), seqs are strictly increasing
  // within a drain, and nothing is delivered twice. The TSan CI job runs
  // this test to prove the all-atomic slot layout is race-free.
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 2000;
  FlightRecorder rec(256);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> unordered{0};
  std::atomic<uint64_t> drains{0};

  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<FlightEvent> events = rec.Snapshot();
      uint64_t prev_seq = 0;
      bool have_prev = false;
      for (const FlightEvent& e : events) {
        if (e.arg1 != 2 * e.arg0 + 1) torn.fetch_add(1);
        if (have_prev && e.seq <= prev_seq) unordered.fetch_add(1);
        prev_seq = e.seq;
        have_prev = true;
      }
      drains.fetch_add(1);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&rec, t] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        const int64_t arg0 = t * kPerThread + i;
        rec.Record(FlightCategory::kPage, FlightCode::kPageWrite, arg0,
                   2 * arg0 + 1, "stress");
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  drainer.join();

  EXPECT_EQ(torn.load(), 0u) << "a torn slot was delivered";
  EXPECT_EQ(unordered.load(), 0u) << "drain order must follow claim order";
  EXPECT_GT(drains.load(), 0u);
  EXPECT_EQ(rec.head(), static_cast<uint64_t>(kThreads) * kPerThread);

  // Quiesced: the final drain sees one full ring of committed events with
  // contiguous seqs and per-thread ids stamped in.
  const std::vector<FlightEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), rec.capacity());
  std::set<uint32_t> tids;
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, rec.head() - rec.capacity() + i);
    EXPECT_EQ(events[i].arg1, 2 * events[i].arg0 + 1);
    EXPECT_EQ(events[i].detail, "stress");
    tids.insert(events[i].thread_id);
  }
  EXPECT_GE(tids.size(), 1u);
}

TEST(FlightRecorderTest, ThreadIdsAreSmallAndDistinct) {
  const uint32_t mine = ThisThreadFlightId();
  EXPECT_EQ(ThisThreadFlightId(), mine) << "stable within a thread";
  uint32_t other = mine;
  std::thread([&other] { other = ThisThreadFlightId(); }).join();
  EXPECT_NE(other, mine);
}

// --- Compile-flag discipline, both directions -------------------------------

TEST(FlightRecorderCompileFlagTest, MacroMatchesCompiledInFlag) {
  FlightRecorder& rec = FlightRecorder::Instance();
  const uint64_t before = rec.head();
  TS_FLIGHT(FlightCategory::kWal, FlightCode::kWalAppend, 1, 2, "unit");
  if (FlightRecorderCompiledIn()) {
    EXPECT_EQ(rec.head(), before + 1);
  } else {
    EXPECT_EQ(rec.head(), before) << "TS_FLIGHT must compile to nothing";
  }
}

TEST(FlightRecorderCompileFlagTest, EngineWorkloadRecordsIffCompiledIn) {
  // Drive a real durable workload through the storage stack. In a
  // TEMPSPEC_FLIGHTRECORDER tree the process-wide ring must pick up WAL and
  // checkpoint events from the engine call sites; in an OFF tree the
  // identical workload must leave the ring untouched (zero overhead means
  // zero events, not fewer events).
  TempDir dir;
  const uint64_t before = FlightRecorder::Instance().head();

  BacklogStore::Options options;
  options.directory = dir.path();
  ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
  for (int64_t i = 0; i < 8; ++i) {
    BacklogEntry e;
    e.op = BacklogOpType::kInsert;
    e.tt = T(10 + i);
    e.element = MakeEventElement(T(10 + i), T(5 + i),
                                 static_cast<ElementSurrogate>(i + 1), 1);
    ASSERT_OK(store->Append(e));
  }
  ASSERT_OK(store->Checkpoint());

  const uint64_t after = FlightRecorder::Instance().head();
  if (FlightRecorderCompiledIn()) {
    EXPECT_GT(after, before);
    bool saw_wal_append = false;
    bool saw_checkpoint_end = false;
    for (const FlightEvent& e : FlightRecorder::Instance().Snapshot()) {
      if (e.seq < before) continue;
      if (e.code == FlightCode::kWalAppend) saw_wal_append = true;
      if (e.code == FlightCode::kCheckpointEnd) saw_checkpoint_end = true;
    }
    EXPECT_TRUE(saw_wal_append);
    EXPECT_TRUE(saw_checkpoint_end);
  } else {
    EXPECT_EQ(after, before);
    EXPECT_EQ(FlightRecorder::Instance().head(), 0u)
        << "nothing in this binary records when the flag is off";
  }
}

}  // namespace
}  // namespace tempspec
