#include "query/plan.h"

namespace tempspec {

const char* ExecutionStrategyToString(ExecutionStrategy s) {
  switch (s) {
    case ExecutionStrategy::kFullScan:
      return "full scan";
    case ExecutionStrategy::kValidIndex:
      return "valid-time interval index";
    case ExecutionStrategy::kTransactionWindow:
      return "transaction-time window scan";
    case ExecutionStrategy::kRollbackEquivalence:
      return "rollback equivalence (degenerate)";
    case ExecutionStrategy::kMonotoneBinarySearch:
      return "monotone binary search";
  }
  return "unknown";
}

const char* ScanKernelToToken(ScanKernel k) {
  switch (k) {
    case ScanKernel::kRowAtATime:
      return "row_at_a_time";
    case ScanKernel::kGeneric:
      return "generic_columnar";
    case ScanKernel::kDegenerate:
      return "degenerate_columnar";
    case ScanKernel::kBanded:
      return "banded_columnar";
    case ScanKernel::kMonotone:
      return "monotone_columnar";
    case ScanKernel::kExistence:
      return "existence_columnar";
  }
  return "unknown";
}

const char* ExecutionStrategyToToken(ExecutionStrategy s) {
  switch (s) {
    case ExecutionStrategy::kFullScan:
      return "full_scan";
    case ExecutionStrategy::kValidIndex:
      return "valid_index";
    case ExecutionStrategy::kTransactionWindow:
      return "transaction_window";
    case ExecutionStrategy::kRollbackEquivalence:
      return "rollback_equivalence";
    case ExecutionStrategy::kMonotoneBinarySearch:
      return "monotone_binary_search";
  }
  return "unknown";
}

}  // namespace tempspec
