#include "storage/encoding.h"

#include "storage/serde.h"

namespace tempspec {

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> GetVarint(std::string_view* in) {
  uint64_t v = 0;
  int shift = 0;
  while (!in->empty()) {
    const uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    if (shift >= 64) break;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::Corruption("truncated varint");
}

std::string EncodeTimestampsRaw(std::span<const TimePoint> stamps) {
  std::string out;
  Encoder enc(&out);
  enc.PutU32(static_cast<uint32_t>(stamps.size()));
  for (TimePoint tp : stamps) enc.PutTimePoint(tp);
  return out;
}

Result<std::vector<TimePoint>> DecodeTimestampsRaw(std::string_view data) {
  Decoder dec(data);
  TS_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  std::vector<TimePoint> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TS_ASSIGN_OR_RETURN(TimePoint tp, dec.GetTimePoint());
    out.push_back(tp);
  }
  return out;
}

std::string EncodeTimestampsDelta(std::span<const TimePoint> stamps) {
  std::string out;
  Encoder enc(&out);
  enc.PutU32(static_cast<uint32_t>(stamps.size()));
  int64_t prev = 0;
  for (size_t i = 0; i < stamps.size(); ++i) {
    const int64_t micros = stamps[i].micros();
    if (i == 0) {
      enc.PutI64(micros);
    } else {
      PutVarint(ZigZagEncode(micros - prev), &out);
    }
    prev = micros;
  }
  return out;
}

Result<std::vector<TimePoint>> DecodeTimestampsDelta(std::string_view data) {
  Decoder dec(data);
  TS_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  std::vector<TimePoint> out;
  out.reserve(n);
  if (n == 0) return out;
  TS_ASSIGN_OR_RETURN(int64_t first, dec.GetI64());
  out.push_back(TimePoint::FromMicros(first));
  std::string_view rest = data.substr(data.size() - dec.remaining());
  int64_t prev = first;
  for (uint32_t i = 1; i < n; ++i) {
    TS_ASSIGN_OR_RETURN(uint64_t zz, GetVarint(&rest));
    prev += ZigZagDecode(zz);
    out.push_back(TimePoint::FromMicros(prev));
  }
  return out;
}

Result<std::string> EncodeTimestampsUnit(std::span<const TimePoint> stamps,
                                         int64_t unit_micros) {
  if (unit_micros <= 0) {
    return Status::InvalidArgument("unit must be positive");
  }
  std::string out;
  Encoder enc(&out);
  enc.PutU32(static_cast<uint32_t>(stamps.size()));
  enc.PutI64(unit_micros);
  int64_t prev_k = 0;
  for (size_t i = 0; i < stamps.size(); ++i) {
    const int64_t micros = stamps[i].micros();
    if (i == 0) {
      enc.PutI64(micros);  // anchor
      prev_k = 0;
      continue;
    }
    const int64_t distance = micros - stamps[0].micros();
    if (distance % unit_micros != 0) {
      return Status::InvalidArgument(
          "stamp ", stamps[i].ToString(), " is not a multiple of ",
          unit_micros, "us from the anchor — declared regularity violated");
    }
    const int64_t k = distance / unit_micros;
    PutVarint(ZigZagEncode(k - prev_k), &out);
    prev_k = k;
  }
  return out;
}

Result<std::vector<TimePoint>> DecodeTimestampsUnit(std::string_view data) {
  Decoder dec(data);
  TS_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  TS_ASSIGN_OR_RETURN(int64_t unit, dec.GetI64());
  std::vector<TimePoint> out;
  out.reserve(n);
  if (n == 0) return out;
  TS_ASSIGN_OR_RETURN(int64_t anchor, dec.GetI64());
  out.push_back(TimePoint::FromMicros(anchor));
  std::string_view rest = data.substr(data.size() - dec.remaining());
  int64_t prev_k = 0;
  for (uint32_t i = 1; i < n; ++i) {
    TS_ASSIGN_OR_RETURN(uint64_t zz, GetVarint(&rest));
    prev_k += ZigZagDecode(zz);
    out.push_back(TimePoint::FromMicros(anchor + prev_k * unit));
  }
  return out;
}

}  // namespace tempspec
