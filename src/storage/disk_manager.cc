#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/flight_recorder.h"
#include "util/failpoint.h"

namespace tempspec {

Status FsyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open directory '", dir, "' for fsync: ",
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("directory fsync failed on '", dir, "': ",
                           std::strerror(err));
  }
  return Status::OK();
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open '", path, "': ", std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat '", path, "': ", std::strerror(err));
  }
  const uint64_t pages = static_cast<uint64_t>(st.st_size) / kPageSize;
  if (st.st_size % kPageSize != 0) {
    // A trailing partial page is what a crash mid-extension leaves behind;
    // discard the torn tail rather than refusing the whole file. (Records on
    // complete pages are CRC-guarded by the layer above.)
    if (::ftruncate(fd, static_cast<off_t>(pages * kPageSize)) != 0) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("cannot truncate torn page off '", path, "': ",
                             std::strerror(err));
    }
  }
  return std::unique_ptr<DiskManager>(new DiskManager(path, fd, pages));
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> DiskManager::AllocatePage() {
  Page zero;
  zero.Zero();
  const PageId id = page_count_;
  TS_RETURN_NOT_OK(WritePageInternal(id, zero));
  page_count_ = id + 1;
  return id;
}

Status DiskManager::ReadPageOnce(PageId id, Page* out) const {
#ifdef TEMPSPEC_FAILPOINTS
  if (FailpointRegistry& registry = FailpointRegistry::Instance();
      registry.active()) {
    TS_RETURN_NOT_OK(registry.OnRead("disk.read_page"));
  }
#endif
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  ssize_t n = ::pread(fd_, out->data, kPageSize, offset);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("short read of page ", id, " from '", path_, "'");
  }
  TS_FLIGHT(FlightCategory::kPage, FlightCode::kPageRead, id, 0, "");
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, Page* out) const {
  if (id >= page_count_) {
    return Status::OutOfRange("page ", id, " beyond end of file (", page_count_,
                              " pages)");
  }
  Status st = Status::OK();
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    if (attempt > 0) IoRetryBackoff(attempt);
    st = ReadPageOnce(id, out);
    if (st.ok() || !st.IsIOError()) break;
  }
  return st;
}

Status DiskManager::WritePage(PageId id, const Page& page) {
  if (id >= page_count_) {
    return Status::OutOfRange("page ", id, " beyond end of file (", page_count_,
                              " pages); AllocatePage first");
  }
  return WritePageInternal(id, page);
}

Status DiskManager::WritePageOnce(PageId id, const Page& page) {
  const char* src = page.data;
  size_t want = kPageSize;
  Status injected = Status::OK();
#ifdef TEMPSPEC_FAILPOINTS
  Page scratch;
  if (FailpointRegistry& registry = FailpointRegistry::Instance();
      registry.active()) {
    // Corrupting faults mutate the buffer; work on a copy so only the disk
    // image is damaged, never the caller's in-memory frame.
    std::memcpy(scratch.data, page.data, kPageSize);
    FailpointRegistry::WriteDecision decision =
        registry.OnWrite("disk.write_page", scratch.data, kPageSize);
    src = scratch.data;
    want = decision.write_len;
    injected = std::move(decision.after);
  }
#endif
  const off_t offset = static_cast<off_t>(id) * kPageSize;
  size_t done = 0;
  while (done < want) {
    ssize_t n = ::pwrite(fd_, src + done, want - done,
                         offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write of page ", id, " to '", path_, "' failed: ",
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  if (!injected.ok()) return injected;
  TS_FLIGHT(FlightCategory::kPage, FlightCode::kPageWrite, id, done, "");
  return Status::OK();
}

Status DiskManager::WritePageInternal(PageId id, const Page& page) {
  // pwrite at a fixed offset is idempotent, so transient failures (even
  // partial ones) are safe to retry.
  Status st = Status::OK();
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    if (attempt > 0) IoRetryBackoff(attempt);
    st = WritePageOnce(id, page);
    if (st.ok() || !st.IsIOError()) break;
  }
  return st;
}

Status DiskManager::SyncOnce() {
#ifdef TEMPSPEC_FAILPOINTS
  if (FailpointRegistry& registry = FailpointRegistry::Instance();
      registry.active()) {
    FailpointRegistry::SyncDecision decision = registry.OnSync("disk.sync");
    if (!decision.after.ok()) return std::move(decision.after);
    if (decision.skip) return Status::OK();
  }
#endif
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync failed on '", path_, "': ",
                           std::strerror(errno));
  }
  TS_FLIGHT(FlightCategory::kPage, FlightCode::kDiskSync, page_count_, 0, "");
  return Status::OK();
}

Status DiskManager::Sync() {
  Status st = Status::OK();
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    if (attempt > 0) IoRetryBackoff(attempt);
    st = SyncOnce();
    if (st.ok() || !st.IsIOError()) break;
  }
  return st;
}

Status DiskManager::TruncateToPages(uint64_t pages) {
  if (pages > page_count_) {
    return Status::OutOfRange("cannot truncate '", path_, "' to ", pages,
                              " pages: file has only ", page_count_);
  }
  if (::ftruncate(fd_, static_cast<off_t>(pages * kPageSize)) != 0) {
    return Status::IOError("truncate failed on '", path_, "': ",
                           std::strerror(errno));
  }
  page_count_ = pages;
  // The new length must itself be durable: a quarantining truncation that a
  // crash rolls back would resurrect the damaged pages *after* new data has
  // been appended over the range.
  return Sync();
}

Status DiskManager::RenameTo(const std::string& new_path) {
  if (::rename(path_.c_str(), new_path.c_str()) != 0) {
    return Status::IOError("cannot rename '", path_, "' to '", new_path,
                           "': ", std::strerror(errno));
  }
  TS_RETURN_NOT_OK(FsyncParentDirectory(new_path));
  path_ = new_path;
  return Status::OK();
}

}  // namespace tempspec
