#include "spec/band.h"

#include <gtest/gtest.h>

#include "testing.h"

namespace tempspec {
namespace {

using testing::Civil;
using testing::T;

TEST(BandTest, UnrestrictedContainsEverything) {
  const Band all = Band::All();
  EXPECT_TRUE(all.IsUnrestricted());
  EXPECT_TRUE(all.Contains(T(0), T(1000000)));
  EXPECT_TRUE(all.Contains(T(1000000), T(-1000000)));
}

TEST(BandTest, AtMostClosedAndOpen) {
  const Band retro = Band::AtMost(Duration::Zero());
  EXPECT_TRUE(retro.Contains(T(100), T(100)));  // closed: on the line
  EXPECT_TRUE(retro.Contains(T(100), T(50)));
  EXPECT_FALSE(retro.Contains(T(100), T(101)));

  const Band strict = Band::AtMost(Duration::Zero(), /*open=*/true);
  EXPECT_FALSE(strict.Contains(T(100), T(100)));
  EXPECT_TRUE(strict.Contains(T(100), T(99)));
}

TEST(BandTest, AtLeastWithOffset) {
  const Band early = Band::AtLeast(Duration::Days(3));
  EXPECT_TRUE(early.Contains(T(0), T(0) + Duration::Days(3)));
  EXPECT_TRUE(early.Contains(T(0), T(0) + Duration::Days(10)));
  EXPECT_FALSE(early.Contains(T(0), T(0) + Duration::Days(2)));
}

TEST(BandTest, BetweenBand) {
  const Band b = Band::Between(-Duration::Hours(2), Duration::Hours(1));
  EXPECT_TRUE(b.Contains(T(10000), T(10000)));
  EXPECT_TRUE(b.Contains(T(10000), T(10000) - Duration::Hours(2)));
  EXPECT_TRUE(b.Contains(T(10000), T(10000) + Duration::Hours(1)));
  EXPECT_FALSE(b.Contains(T(10000), T(10000) - Duration::Hours(3)));
  EXPECT_FALSE(b.Contains(T(10000), T(10000) + Duration::Hours(2)));
}

TEST(BandTest, CalendricBoundUsesCalendarArithmetic) {
  // vt <= tt - 1 month, evaluated at a 29-day February anchor.
  const Band b = Band::AtMost(-Duration::Months(1));
  const TimePoint tt = Civil(1992, 3, 29);
  EXPECT_TRUE(b.Contains(tt, Civil(1992, 2, 29)));
  EXPECT_FALSE(b.Contains(tt, Civil(1992, 3, 1)));
}

TEST(BandTest, EmptinessDetection) {
  EXPECT_EQ(Band::Between(Duration::Seconds(10), Duration::Seconds(5)).IsEmpty(),
            std::optional<bool>(true));
  EXPECT_EQ(Band::Between(Duration::Seconds(5), Duration::Seconds(10)).IsEmpty(),
            std::optional<bool>(false));
  EXPECT_EQ(Band::Exactly(Duration::Zero()).IsEmpty(),
            std::optional<bool>(false));
  // Same offset but one side open: empty.
  EXPECT_EQ(Band::Between(Duration::Zero(), Duration::Zero(), true, false)
                .IsEmpty(),
            std::optional<bool>(true));
  EXPECT_EQ(Band::All().IsEmpty(), std::optional<bool>(false));
}

TEST(BandTest, SubsetOfDecidableCases) {
  const Band retro = Band::AtMost(Duration::Zero());
  const Band delayed = Band::AtMost(-Duration::Seconds(30));
  const Band strongly = Band::Between(-Duration::Seconds(30), Duration::Zero());
  const Band all = Band::All();

  EXPECT_EQ(delayed.SubsetOf(retro), std::optional<bool>(true));
  EXPECT_EQ(retro.SubsetOf(delayed), std::optional<bool>(false));
  EXPECT_EQ(strongly.SubsetOf(retro), std::optional<bool>(true));
  EXPECT_EQ(strongly.SubsetOf(delayed), std::optional<bool>(false));
  EXPECT_EQ(retro.SubsetOf(all), std::optional<bool>(true));
  EXPECT_EQ(all.SubsetOf(retro), std::optional<bool>(false));
  EXPECT_EQ(retro.SubsetOf(retro), std::optional<bool>(true));
}

TEST(BandTest, SubsetOfOpennessMatters) {
  const Band closed = Band::AtMost(Duration::Zero(), false);
  const Band open = Band::AtMost(Duration::Zero(), true);
  EXPECT_EQ(open.SubsetOf(closed), std::optional<bool>(true));
  EXPECT_EQ(closed.SubsetOf(open), std::optional<bool>(false));
}

TEST(BandTest, CalendricComparisonsAreThreeValued) {
  // One month (28..31 days) vs 30 days: indeterminate.
  EXPECT_EQ(CompareOffsets(Duration::Months(1), Duration::Days(30)),
            std::nullopt);
  // One month vs 40 days: decidable.
  EXPECT_EQ(CompareOffsets(Duration::Months(1), Duration::Days(40)),
            std::optional<int>(-1));
  EXPECT_EQ(CompareOffsets(Duration::Months(1), Duration::Days(20)),
            std::optional<int>(1));
  EXPECT_EQ(CompareOffsets(Duration::Months(1), Duration::Months(1)),
            std::optional<int>(0));

  const Band month = Band::AtMost(-Duration::Months(1));
  const Band days30 = Band::AtMost(-Duration::Days(30));
  EXPECT_EQ(month.SubsetOf(days30), std::nullopt);
}

TEST(BandTest, IntersectTightensBothSides) {
  const Band a = Band::AtLeast(-Duration::Days(5));
  const Band b = Band::AtMost(Duration::Days(2));
  const Band both = a.Intersect(b);
  EXPECT_TRUE(both.Contains(T(0), T(0)));
  EXPECT_FALSE(both.Contains(T(0), T(0) - Duration::Days(6)));
  EXPECT_FALSE(both.Contains(T(0), T(0) + Duration::Days(3)));

  const Band tighter = both.Intersect(Band::AtMost(Duration::Days(1)));
  EXPECT_FALSE(tighter.Contains(T(0), T(0) + Duration::Days(2)));
  EXPECT_TRUE(tighter.Contains(T(0), T(0) + Duration::Days(1)));
}

TEST(BandTest, ToStringShapes) {
  EXPECT_EQ(Band::All().ToString(), "(-inf, +inf)");
  EXPECT_EQ(Band::AtMost(Duration::Zero()).ToString(), "(-inf, +0]");
  EXPECT_EQ(Band::AtLeast(Duration::Seconds(30), true).ToString(),
            "(+30s, +inf)");
  EXPECT_EQ(
      Band::Between(-Duration::Seconds(30), Duration::Zero()).ToString(),
      "[-30s, +0]");
}

}  // namespace
}  // namespace tempspec
