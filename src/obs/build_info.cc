#include "obs/build_info.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/failpoint.h"

namespace tempspec {

std::string BuildConfigJson() {
  std::string out = "{\"metrics_enabled\":";
  out += MetricsCompiledIn() ? "1" : "0";
  out += ",\"failpoints_enabled\":";
  out += FailpointsCompiledIn() ? "1" : "0";
  out += ",\"flightrecorder_enabled\":";
  out += FlightRecorderCompiledIn() ? "1" : "0";
#ifdef TEMPSPEC_SANITIZE_NAME
  out += ",\"sanitizers\":\"" + JsonEscape(TEMPSPEC_SANITIZE_NAME) + "\"";
#else
  out += ",\"sanitizers\":\"\"";
#endif
  out += ",\"compiler\":\"" + JsonEscape(__VERSION__) + "\"}";
  return out;
}

}  // namespace tempspec
