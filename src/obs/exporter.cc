#include "obs/exporter.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "net/server.h"
#include "net/telemetry_endpoints.h"
#include "obs/flight_recorder.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace tempspec {

namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
}

bool IsNameChar(char c) { return IsNameStartChar(c) || (c >= '0' && c <= '9'); }

// HELP text escaping per the exposition format: backslash and newline only.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendHeader(std::string& out, const std::string& name,
                  const std::string& original, const char* type) {
  out += "# HELP " + name + " tempspec metric " + EscapeHelp(original) + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

uint64_t NowUnixMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

const char* GetEnv(const char* name) { return std::getenv(name); }

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = GetEnv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<uint64_t>(parsed);
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  if (!IsNameStartChar(name[0])) out += '_';
  for (char c : name) {
    out += IsNameChar(c) ? c : '_';
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = SanitizeMetricName(name);
    AppendHeader(out, prom, name, "counter");
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = SanitizeMetricName(name);
    AppendHeader(out, prom, name, "gauge");
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = SanitizeMetricName(name);
    AppendHeader(out, prom, name, "histogram");
    uint64_t cumulative = 0;
    for (const auto& [bucket, count] : hist.buckets) {
      cumulative += count;
      out += prom + "_bucket{le=\"" +
             std::to_string(HistogramBucketUpperBound(bucket)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + "\n";
    out += prom + "_sum " + std::to_string(hist.sum) + "\n";
    out += prom + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabeledPrometheusText(
    const std::vector<LabeledSeries>& series) {
  if (series.empty()) return "";
  const char* kFamily = "tempspec_query_latency";
  std::string out;
  out += std::string("# HELP ") + kFamily +
         " per-query wall micros by relation, specialization kind, and "
         "protocol\n";
  out += std::string("# TYPE ") + kFamily + " histogram\n";
  for (const LabeledSeries& s : series) {
    const std::string labels = "relation=\"" + EscapeLabelValue(s.relation) +
                               "\",kind=\"" + EscapeLabelValue(s.kind) +
                               "\",protocol=\"" + EscapeLabelValue(s.protocol) +
                               "\"";
    uint64_t cumulative = 0;
    for (const auto& [bucket, count] : s.latency.buckets) {
      cumulative += count;
      out += std::string(kFamily) + "_bucket{" + labels + ",le=\"" +
             std::to_string(HistogramBucketUpperBound(bucket)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += std::string(kFamily) + "_bucket{" + labels + ",le=\"+Inf\"} " +
           std::to_string(s.latency.count) + "\n";
    out += std::string(kFamily) + "_sum{" + labels + "} " +
           std::to_string(s.latency.sum) + "\n";
    out += std::string(kFamily) + "_count{" + labels + "} " +
           std::to_string(s.latency.count) + "\n";
  }
  return out;
}

TelemetryExporter::TelemetryExporter(ExporterOptions options)
    : options_(std::move(options)) {}

TelemetryExporter::~TelemetryExporter() { Stop(); }

Status TelemetryExporter::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("exporter already running on port ",
                                 bound_port_.load());
  }
  ServerOptions server_options;
  server_options.bind_address = options_.bind_address;
  server_options.port = options_.port;
  // Telemetry handlers run on the loop thread; the workers only exist for
  // statement execution, which a bare exporter never sees.
  server_options.worker_threads = 1;
  auto server = std::make_unique<NetServer>(std::move(server_options));
  RegisterTelemetryEndpoints(server.get());
  TS_RETURN_NOT_OK(server->Start());

  server_ = std::move(server);
  bound_port_.store(server_->port(), std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  if (!options_.snapshot_path.empty() && options_.snapshot_period_ms > 0) {
    snapshot_thread_ = std::thread([this] { WriteSnapshots(); });
  }
  return Status::OK();
}

void TelemetryExporter::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  server_->Stop();
  server_.reset();
  running_.store(false, std::memory_order_release);
}

void TelemetryExporter::WriteSnapshots() {
  // Sleep in short slices so Stop() never waits a full period.
  uint64_t elapsed_ms = options_.snapshot_period_ms;  // write once at startup
  while (!stopping_.load(std::memory_order_acquire)) {
    if (elapsed_ms >= options_.snapshot_period_ms) {
      elapsed_ms = 0;
      std::ofstream out(options_.snapshot_path, std::ios::app);
      if (out) {
        out << "{\"unix_micros\":" << NowUnixMicros() << ",\"metrics\":"
            << MetricsRegistry::Instance().Scrape().ToJson() << "}\n";
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    elapsed_ms += 20;
  }
}

std::unique_ptr<TelemetryExporter> TelemetryExporter::MaybeStartFromEnv() {
  SlowQueryLog::Instance().ConfigureFromEnv();
  RetainedTraces::Instance().ConfigureFromEnv();
  FlightRecorder::MaybeInstallFromEnv();
  const char* port_env = GetEnv("TEMPSPEC_EXPORTER_PORT");
  if (port_env == nullptr || *port_env == '\0') return nullptr;

  ExporterOptions options;
  options.port = static_cast<uint16_t>(EnvU64("TEMPSPEC_EXPORTER_PORT", 9464));
  if (const char* addr = GetEnv("TEMPSPEC_EXPORTER_ADDR")) {
    if (*addr != '\0') options.bind_address = addr;
  }
  if (const char* snap = GetEnv("TEMPSPEC_EXPORTER_SNAPSHOT")) {
    options.snapshot_path = snap;
  }
  options.snapshot_period_ms =
      EnvU64("TEMPSPEC_EXPORTER_SNAPSHOT_MS", options.snapshot_period_ms);

  auto exporter = std::make_unique<TelemetryExporter>(std::move(options));
  Status s = exporter->Start();
  if (!s.ok()) {
    std::fprintf(stderr, "tempspec exporter disabled: %s\n",
                 s.ToString().c_str());
    return nullptr;
  }
  if (const char* portfile = GetEnv("TEMPSPEC_EXPORTER_PORTFILE")) {
    if (*portfile != '\0') {
      std::ofstream out(portfile, std::ios::trunc);
      out << exporter->port() << "\n";
    }
  }
  return exporter;
}

void TelemetryExporter::LingerFromEnv() {
  uint64_t linger_ms = EnvU64("TEMPSPEC_EXPORTER_LINGER_MS", 0);
  if (linger_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
}

}  // namespace tempspec
