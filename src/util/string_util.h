// Small string helpers shared across modules.
#ifndef TEMPSPEC_UTIL_STRING_UTIL_H_
#define TEMPSPEC_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tempspec {

/// \brief Splits on a single-character delimiter; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// \brief Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// \brief Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// \brief True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace tempspec

#endif  // TEMPSPEC_UTIL_STRING_UTIL_H_
