#include "model/schema.h"

#include <unordered_set>

namespace tempspec {

const char* AttributeRoleToString(AttributeRole role) {
  switch (role) {
    case AttributeRole::kTimeInvariantKey:
      return "TIME_INVARIANT_KEY";
    case AttributeRole::kTimeInvariant:
      return "TIME_INVARIANT";
    case AttributeRole::kTimeVarying:
      return "TIME_VARYING";
    case AttributeRole::kUserDefinedTime:
      return "USER_DEFINED_TIME";
  }
  return "UNKNOWN";
}

Result<SchemaPtr> Schema::Make(std::string relation_name,
                               std::vector<AttributeDef> attributes,
                               ValidTimeKind valid_kind,
                               Granularity valid_granularity,
                               Granularity transaction_granularity) {
  if (relation_name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  std::unordered_set<std::string> seen;
  for (const auto& a : attributes) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute names must be non-empty");
    }
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: '", a.name, "'");
    }
    if (a.type == ValueType::kNull) {
      return Status::InvalidArgument("attribute '", a.name,
                                     "' must have a concrete type");
    }
    if (a.role == AttributeRole::kUserDefinedTime && a.type != ValueType::kTime) {
      return Status::InvalidArgument("user-defined-time attribute '", a.name,
                                     "' must have TIME type");
    }
  }
  return SchemaPtr(new Schema(std::move(relation_name), std::move(attributes),
                              valid_kind, valid_granularity,
                              transaction_granularity));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '", name, "' in relation '",
                          relation_name_, "'");
}

std::vector<size_t> Schema::IndicesWithRole(AttributeRole role) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].role == role) out.push_back(i);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = relation_name_;
  out += IsEventRelation() ? " [event" : " [interval";
  out += ", vt-gran=" + valid_granularity_.ToString();
  out += ", tt-gran=" + transaction_granularity_.ToString();
  out += "] (";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace tempspec
