// Labeled latency family: bounded label interning, series eviction on
// relation drop, overflow collapse, and the labeled Prometheus rendering.
// The guard this suite exists for: create/drop churn over a process
// lifetime must never grow the label table or the /metrics scrape beyond
// the live-relation count.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exporter.h"
#include "obs/metrics.h"

namespace tempspec {
namespace {

TEST(LabelDimTest, InternReleaseRecyclesIds) {
  LabelDim dim(/*capacity=*/2);
  const uint32_t a = dim.Intern("alpha");
  const uint32_t b = dim.Intern("beta");
  EXPECT_NE(a, LabelDim::kOverflowId);
  EXPECT_NE(b, LabelDim::kOverflowId);
  EXPECT_NE(a, b);
  EXPECT_EQ(dim.Intern("alpha"), a);  // idempotent
  EXPECT_EQ(dim.LiveCount(), 2u);

  // Full table: a third value collapses into the overflow bucket.
  EXPECT_EQ(dim.Intern("gamma"), LabelDim::kOverflowId);
  EXPECT_EQ(dim.ValueOf(LabelDim::kOverflowId), "other");

  // Releasing frees the slot for the next value — bounded forever.
  dim.Release("alpha");
  EXPECT_EQ(dim.LiveCount(), 1u);
  const uint32_t c = dim.Intern("gamma");
  EXPECT_NE(c, LabelDim::kOverflowId);
  EXPECT_EQ(dim.ValueOf(c), "gamma");
  // The recycled id no longer resolves to the released value.
  EXPECT_EQ(dim.ValueOf(a), a == c ? "gamma" : "other");
}

TEST(LabelDimTest, ReleaseOfUnknownValueIsANoOp) {
  LabelDim dim(/*capacity=*/2);
  dim.Intern("alpha");
  dim.Release("never_interned");
  dim.Release("other");
  EXPECT_EQ(dim.LiveCount(), 1u);
}

class QueryLatencyFamilyTest : public ::testing::Test {
 protected:
  void SetUp() override { QueryLatencyFamily::Instance().Reset(); }
  void TearDown() override { QueryLatencyFamily::Instance().Reset(); }
};

TEST_F(QueryLatencyFamilyTest, ScrapeIsSortedAndCarriesObservations) {
  auto& family = QueryLatencyFamily::Instance();
  family.Observe("ledger", "banded_columnar", "http", 120);
  family.Observe("assignments", "insert", "tsp1", 40);
  family.Observe("ledger", "banded_columnar", "http", 900);

  const std::vector<LabeledSeries> series = family.Scrape();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].relation, "assignments");
  EXPECT_EQ(series[1].relation, "ledger");
  EXPECT_EQ(series[1].kind, "banded_columnar");
  EXPECT_EQ(series[1].protocol, "http");
  EXPECT_EQ(series[1].latency.count, 2u);
  EXPECT_EQ(series[1].latency.sum, 1020u);
}

TEST_F(QueryLatencyFamilyTest, CreateDropChurnStaysBounded) {
  auto& family = QueryLatencyFamily::Instance();
  // Ten process lifetimes' worth of create/observe/drop churn: the label
  // table and series map must track only what is live, never what ever
  // existed.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 200; ++i) {
      const std::string rel =
          "churn_" + std::to_string(round) + "_" + std::to_string(i);
      family.Observe(rel, "insert", "http", 10);
      family.Observe(rel, "generic_columnar", "http", 25);
      EXPECT_LE(family.LiveRelationLabels(),
                QueryLatencyFamily::kRelationCapacity);
      family.ReleaseRelation(rel);
    }
  }
  EXPECT_EQ(family.LiveRelationLabels(), 0u);
  EXPECT_EQ(family.SeriesCount(), 0u);
  EXPECT_TRUE(family.Scrape().empty());
}

TEST_F(QueryLatencyFamilyTest, OverflowCollapsesIntoOtherSeries) {
  auto& family = QueryLatencyFamily::Instance();
  const size_t beyond = QueryLatencyFamily::kRelationCapacity + 16;
  for (size_t i = 0; i < beyond; ++i) {
    family.Observe("rel_" + std::to_string(i), "insert", "http", 5);
  }
  // Live labels are capped; the spill shares one "other" series, so the
  // scrape stays O(capacity) no matter how many relations exist.
  EXPECT_EQ(family.LiveRelationLabels(), QueryLatencyFamily::kRelationCapacity);
  uint64_t other_count = 0;
  size_t named = 0;
  for (const LabeledSeries& s : family.Scrape()) {
    if (s.relation == "other") {
      other_count += s.latency.count;
    } else {
      ++named;
    }
  }
  EXPECT_EQ(named, QueryLatencyFamily::kRelationCapacity);
  EXPECT_EQ(other_count, beyond - QueryLatencyFamily::kRelationCapacity);
}

TEST_F(QueryLatencyFamilyTest, LabeledPrometheusRenderingIsWellFormed) {
  auto& family = QueryLatencyFamily::Instance();
  family.Observe("ledger", "row_at_a_time", "http", 100);
  family.Observe("ledger", "row_at_a_time", "http", 100000);
  family.Observe("orders", "insert", "tsp1", 7);

  const std::string text = RenderLabeledPrometheusText(family.Scrape());
  EXPECT_NE(text.find("# TYPE tempspec_query_latency histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("tempspec_query_latency_bucket{relation=\"ledger\","
                "kind=\"row_at_a_time\",protocol=\"http\","),
      std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("tempspec_query_latency_count{relation=\"orders\","
                      "kind=\"insert\",protocol=\"tsp1\"} 1"),
            std::string::npos);

  // Cumulative buckets are monotone within each series.
  std::istringstream lines(text);
  std::string line;
  std::string current_series;
  long long prev = -1;
  while (std::getline(lines, line)) {
    const size_t bucket = line.find("_bucket{");
    if (bucket == std::string::npos) continue;
    const size_t le = line.find(",le=\"");
    ASSERT_NE(le, std::string::npos) << line;
    const std::string series_key = line.substr(0, le);
    if (series_key != current_series) {
      current_series = series_key;
      prev = -1;
    }
    const long long value = std::atoll(line.substr(line.rfind(' ')).c_str());
    EXPECT_GE(value, prev) << line;
    prev = value;
  }
}

TEST(LabeledRenderingTest, EmptyFamilyRendersNothing) {
  EXPECT_EQ(RenderLabeledPrometheusText({}), "");
}

TEST(LabeledRenderingTest, LabelValuesAreEscaped) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

}  // namespace
}  // namespace tempspec
