#include "storage/serde.h"

#include <array>
#include <cstring>

namespace tempspec {

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

Status Decoder::Need(size_t n) const {
  if (in_.size() < n) {
    return Status::Corruption("decoder underflow: need ", n, " bytes, have ",
                              in_.size());
  }
  return Status::OK();
}

Result<uint8_t> Decoder::GetU8() {
  TS_RETURN_NOT_OK(Need(1));
  uint8_t v = static_cast<uint8_t>(in_[0]);
  in_.remove_prefix(1);
  return v;
}

Result<uint32_t> Decoder::GetU32() {
  TS_RETURN_NOT_OK(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in_[i])) << (8 * i);
  }
  in_.remove_prefix(4);
  return v;
}

Result<uint64_t> Decoder::GetU64() {
  TS_RETURN_NOT_OK(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in_[i])) << (8 * i);
  }
  in_.remove_prefix(8);
  return v;
}

Result<int64_t> Decoder::GetI64() {
  TS_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> Decoder::GetDouble() {
  TS_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> Decoder::GetString() {
  TS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  TS_RETURN_NOT_OK(Need(len));
  std::string s(in_.substr(0, len));
  in_.remove_prefix(len);
  return s;
}

Result<TimePoint> Decoder::GetTimePoint() {
  TS_ASSIGN_OR_RETURN(int64_t micros, GetI64());
  return TimePoint::FromMicros(micros);
}

void EncodeValue(const Value& v, Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      enc->PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt64:
      enc->PutI64(v.AsInt64());
      break;
    case ValueType::kDouble:
      enc->PutDouble(v.AsDouble());
      break;
    case ValueType::kString:
      enc->PutString(v.AsString());
      break;
    case ValueType::kTime:
      enc->PutTimePoint(v.AsTime());
      break;
  }
}

Result<Value> DecodeValue(Decoder* dec) {
  TS_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      TS_ASSIGN_OR_RETURN(uint8_t b, dec->GetU8());
      return Value(b != 0);
    }
    case ValueType::kInt64: {
      TS_ASSIGN_OR_RETURN(int64_t v, dec->GetI64());
      return Value(v);
    }
    case ValueType::kDouble: {
      TS_ASSIGN_OR_RETURN(double v, dec->GetDouble());
      return Value(v);
    }
    case ValueType::kString: {
      TS_ASSIGN_OR_RETURN(std::string s, dec->GetString());
      return Value(std::move(s));
    }
    case ValueType::kTime: {
      TS_ASSIGN_OR_RETURN(TimePoint tp, dec->GetTimePoint());
      return Value(tp);
    }
  }
  return Status::Corruption("unknown value type tag ", static_cast<int>(tag));
}

void EncodeTuple(const Tuple& t, Encoder* enc) {
  enc->PutU32(static_cast<uint32_t>(t.size()));
  for (const Value& v : t.values()) EncodeValue(v, enc);
}

Result<Tuple> DecodeTuple(Decoder* dec) {
  TS_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  std::vector<Value> values;
  values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TS_ASSIGN_OR_RETURN(Value v, DecodeValue(dec));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

void EncodeElement(const Element& e, Encoder* enc) {
  enc->PutU64(e.element_surrogate);
  enc->PutU64(e.object_surrogate);
  enc->PutTimePoint(e.tt_begin);
  enc->PutTimePoint(e.tt_end);
  enc->PutU8(e.valid.is_event() ? 0 : 1);
  enc->PutTimePoint(e.valid.begin());
  enc->PutTimePoint(e.valid.end());
  EncodeTuple(e.attributes, enc);
}

Result<Element> DecodeElement(Decoder* dec) {
  Element e;
  TS_ASSIGN_OR_RETURN(e.element_surrogate, dec->GetU64());
  TS_ASSIGN_OR_RETURN(e.object_surrogate, dec->GetU64());
  TS_ASSIGN_OR_RETURN(e.tt_begin, dec->GetTimePoint());
  TS_ASSIGN_OR_RETURN(e.tt_end, dec->GetTimePoint());
  TS_ASSIGN_OR_RETURN(uint8_t kind, dec->GetU8());
  TS_ASSIGN_OR_RETURN(TimePoint vb, dec->GetTimePoint());
  TS_ASSIGN_OR_RETURN(TimePoint ve, dec->GetTimePoint());
  if (kind == 0) {
    e.valid = ValidTime::Event(vb);
  } else {
    e.valid = ValidTime::IntervalUnchecked(vb, ve);
  }
  TS_ASSIGN_OR_RETURN(e.attributes, DecodeTuple(dec));
  return e;
}

uint32_t Crc32(std::string_view data) {
  static const auto kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char ch : data) {
    crc = kTable[(crc ^ ch) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace tempspec
