// Blocking query client for the network plane — the production counterpart
// of the deliberately-independent test client in tests/net/net_test_client.h.
//
// One QueryClient owns one TCP connection and speaks one protocol on it:
// HTTP/1.1 keep-alive POST /query, or TSP1 binary frames (net/frame.h) with
// the optional per-request deadline carried in the frame header (over HTTP,
// in the X-Tempspec-Deadline-Ms header). Replies are classified into a
// protocol-independent outcome taxonomy so callers — the tenant driver, the
// simulator's reconciliation pass — can write one control flow for both
// protocols:
//
//   kOk          200 / kResult: the statement executed; body is its output.
//   kRejected    503 / kRejected: admission control turned the request away
//                before execution — the statement never reached the engine
//                (no transaction-time stamp was burned). Retryable.
//   kDeadline    the deadline expired (504; over TSP1, a kError whose text
//                begins "Deadline exceeded"). For a write this is ambiguous:
//                the statement may or may not have executed.
//   kClientError the engine parsed-and-refused: bad statement, unknown
//                relation, or a specialization-enforcement rejection
//                (4xx; over TSP1, "Invalid argument" / "Constraint
//                violation" / "Not found" / ... error text).
//   kServerError anything else the server answered (5xx / other kError).
//   kTransport   the connection failed; nothing is known about the request.
//
// The client retries nothing by itself except through ExecuteRetrying,
// which re-sends only on kRejected — the one outcome that provably did not
// execute.
#ifndef TEMPSPEC_NET_CLIENT_H_
#define TEMPSPEC_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "util/result.h"

namespace tempspec {

enum class ClientProtocol { kHttp, kTsp1 };

enum class WireOutcome {
  kOk,
  kRejected,
  kDeadline,
  kClientError,
  kServerError,
  kTransport,
};

const char* WireOutcomeToString(WireOutcome outcome);

struct WireReply {
  WireOutcome outcome = WireOutcome::kTransport;
  /// HTTP status code (0 over TSP1 — the frame protocol has no code).
  int http_code = 0;
  /// Statement output on kOk; the server's error text otherwise.
  std::string body;

  bool ok() const { return outcome == WireOutcome::kOk; }
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  ClientProtocol protocol = ClientProtocol::kHttp;
  /// Bound on every blocking read so a dead server surfaces as kTransport
  /// instead of a hang.
  int recv_timeout_ms = 30000;
  /// Send a client-generated 128-bit trace id + per-request span id with
  /// every statement (X-Tempspec-Trace header / TSP1 trace frame prefix) so
  /// server-side slowlog and retained-trace entries join to this request.
  bool propagate_trace = true;
};

class QueryClient {
 public:
  explicit QueryClient(ClientOptions options) : options_(std::move(options)) {}
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// \brief (Re)connects, closing any existing socket first. The port may
  /// differ from the last connect — a restarted daemon on an ephemeral port
  /// is the expected client lifecycle under crash recovery.
  Status Connect(uint16_t port = 0);

  bool connected() const { return fd_ >= 0; }
  void Close();

  const ClientOptions& options() const { return options_; }

  /// \brief One statement, one reply, on the configured protocol.
  /// `deadline_ms` 0 leaves the server's default deadline in force.
  WireReply Execute(const std::string& statement, uint64_t deadline_ms = 0);

  /// \brief Execute with bounded retry on admission rejection (the only
  /// outcome that provably never executed). `rejections`, when non-null, is
  /// incremented once per rejected attempt. After max_attempts rejections
  /// the last kRejected reply is returned.
  WireReply ExecuteRetrying(const std::string& statement,
                            uint64_t deadline_ms = 0, int max_attempts = 200,
                            int* rejections = nullptr);

  /// \brief HTTP GET against the same port (the telemetry endpoints:
  /// /metrics, /varz, /healthz). Always speaks HTTP regardless of the
  /// configured statement protocol, on a short-lived second connection so
  /// a TSP1 client can scrape too.
  Result<std::string> Get(const std::string& target);

  /// \brief The 128-bit trace id sent with the most recent Execute(), as 32
  /// lowercase hex chars ("" before the first request or with propagation
  /// off). The simulator greps server-side slowlog/trace output for this.
  const std::string& last_trace_id() const { return last_trace_id_; }
  uint64_t last_span_id() const { return span_id_; }

 private:
  /// Rolls a fresh trace id + span id for the next request.
  void NextTrace();
  WireReply ExecuteHttp(const std::string& statement, uint64_t deadline_ms);
  WireReply ExecuteFrame(const std::string& statement, uint64_t deadline_ms);
  bool SendAll(int fd, const std::string& bytes);
  bool Fill(int fd, std::string* buffer);
  /// Reads one HTTP response off `fd` into code/body; false on transport
  /// failure. Consumes exactly one response from `buffer`.
  bool ReadHttpResponse(int fd, std::string* buffer, int* code,
                        std::string* body);

  ClientOptions options_;
  int fd_ = -1;
  std::string buffered_;
  FrameDecoder decoder_;
  uint64_t trace_hi_ = 0;
  uint64_t trace_lo_ = 0;
  uint64_t span_id_ = 0;
  std::string last_trace_id_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_NET_CLIENT_H_
