// Wire-protocol battery for the TSP1 frame codec (net/frame.h): exact
// round-trips, delivery-fragmentation invariance, and a seeded fuzz of the
// malformed-stream space — truncations, oversized lengths, corrupt headers,
// flipped payload bits — every one of which must surface as a clean decoder
// error (or a wait-for-more-bytes), never a crash or a silently wrong frame.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

Frame MakeFrame(FrameType type, std::string payload,
                std::optional<uint64_t> deadline = std::nullopt) {
  Frame frame;
  frame.type = type;
  frame.payload = std::move(payload);
  if (deadline.has_value()) {
    frame.flags = kFrameFlagDeadline;
    frame.deadline_millis = *deadline;
  }
  return frame;
}

// Feeds `wire` to a decoder in the given fragment sizes and drains it.
std::vector<Frame> DecodeAll(const std::string& wire, size_t fragment) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  size_t fed = 0;
  while (fed < wire.size()) {
    const size_t n = std::min(fragment, wire.size() - fed);
    decoder.Feed(wire.data() + fed, n);
    fed += n;
    while (true) {
      Result<std::optional<Frame>> next = decoder.Next();
      EXPECT_OK(next.status());
      if (!next.ok() || !next.ValueOrDie().has_value()) break;
      frames.push_back(std::move(*next.ValueOrDie()));
    }
  }
  return frames;
}

void ExpectSameFrame(const Frame& want, const Frame& got) {
  EXPECT_EQ(static_cast<int>(want.type), static_cast<int>(got.type));
  EXPECT_EQ(want.flags, got.flags);
  EXPECT_EQ(want.deadline_millis, got.deadline_millis);
  EXPECT_EQ(want.payload, got.payload);
}

TEST(FrameRoundTripTest, PlainAndDeadlineFramesRoundTrip) {
  for (const Frame& frame :
       {MakeFrame(FrameType::kQuery, "CURRENT r"),
        MakeFrame(FrameType::kQuery, "", /*deadline=*/0),
        MakeFrame(FrameType::kQuery, "TIMESLICE r AT '1992-01-01'",
                  /*deadline=*/12345),
        MakeFrame(FrameType::kResult, std::string(100000, 'x')),
        MakeFrame(FrameType::kPing, std::string("\x00\xff\x31PST", 5)),
        MakeFrame(FrameType::kError, "Boom")}) {
    std::string wire;
    EncodeFrame(frame, &wire);
    std::vector<Frame> decoded = DecodeAll(wire, wire.size());
    ASSERT_EQ(decoded.size(), 1u);
    ExpectSameFrame(frame, decoded[0]);
  }
}

TEST(FrameRoundTripTest, DeliveryFragmentationIsInvisible) {
  // Pipelined frames split at every granularity — including byte-at-a-time —
  // decode to the identical sequence.
  std::vector<Frame> sent;
  Random rng(/*seed=*/1992);
  std::string wire;
  for (int i = 0; i < 17; ++i) {
    Frame frame = MakeFrame(
        FrameType::kQuery, rng.NextString(static_cast<size_t>(rng.Uniform(0, 300))),
        rng.OneIn(0.5) ? std::optional<uint64_t>(
                             static_cast<uint64_t>(rng.Uniform(0, 1 << 30)))
                       : std::nullopt);
    EncodeFrame(frame, &wire);
    sent.push_back(std::move(frame));
  }
  for (const size_t fragment : {size_t{1}, size_t{2}, size_t{7}, size_t{16},
                                size_t{64}, size_t{1021}, wire.size()}) {
    std::vector<Frame> decoded = DecodeAll(wire, fragment);
    ASSERT_EQ(decoded.size(), sent.size()) << "fragment=" << fragment;
    for (size_t i = 0; i < sent.size(); ++i) {
      ExpectSameFrame(sent[i], decoded[i]);
    }
  }
}

TEST(FrameDecoderTest, TruncatedFrameIsWaitNotError) {
  std::string wire;
  EncodeFrame(MakeFrame(FrameType::kQuery, "CURRENT r"), &wire);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    Result<std::optional<Frame>> next = decoder.Next();
    ASSERT_TRUE(next.ok()) << "cut=" << cut << ": "
                           << next.status().ToString();
    EXPECT_FALSE(next.ValueOrDie().has_value()) << "cut=" << cut;
  }
}

TEST(FrameDecoderTest, BadMagicPoisons) {
  std::string wire;
  EncodeFrame(MakeFrame(FrameType::kQuery, "x"), &wire);
  wire[0] ^= 0x01;
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  EXPECT_NOT_OK(decoder.Next().status());
  // Poisoned stays poisoned, even when pristine bytes follow.
  std::string clean;
  EncodeFrame(MakeFrame(FrameType::kPing, "y"), &clean);
  decoder.Feed(clean.data(), clean.size());
  EXPECT_NOT_OK(decoder.Next().status());
}

TEST(FrameDecoderTest, UnknownTypeFlagsAndReservedBitsAreRejected) {
  const auto mutate_header = [](size_t offset, char value) {
    std::string wire;
    EncodeFrame(MakeFrame(FrameType::kQuery, "payload"), &wire);
    wire[offset] = value;
    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    return decoder.Next().status();
  };
  EXPECT_NOT_OK(mutate_header(4, 0));     // type below range
  EXPECT_NOT_OK(mutate_header(4, 99));    // type above range
  EXPECT_NOT_OK(mutate_header(5, 0x40));  // unknown flag bit
  EXPECT_NOT_OK(mutate_header(6, 1));     // reserved must be zero
}

TEST(FrameDecoderTest, OversizedLengthIsRejectedBeforeBuffering) {
  // A header advertising a payload beyond the cap must fail immediately —
  // not wait for gigabytes that will never arrive.
  std::string wire;
  EncodeFrame(MakeFrame(FrameType::kQuery, "x"), &wire);
  const uint32_t huge = 512 * 1024 * 1024;
  std::memcpy(&wire[8], &huge, sizeof(huge));
  FrameDecoder decoder(/*max_payload_bytes=*/1024);
  decoder.Feed(wire.data(), kFrameHeaderBytes);  // header only
  EXPECT_NOT_OK(decoder.Next().status());
}

TEST(FrameDecoderTest, PayloadCorruptionFailsTheCrc) {
  std::string wire;
  EncodeFrame(MakeFrame(FrameType::kQuery, "CURRENT relation"), &wire);
  wire[kFrameHeaderBytes + 3] ^= 0x20;
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  const Status status = decoder.Next().status();
  EXPECT_NOT_OK(status);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST(FrameDecoderTest, DeadlineFlagWithTinyPayloadIsRejected) {
  // flags say "payload starts with a u64 deadline" but the payload cannot
  // hold one.
  std::string wire;
  EncodeFrame(MakeFrame(FrameType::kQuery, "abc"), &wire);
  wire[5] = static_cast<char>(kFrameFlagDeadline);  // 3-byte payload
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  EXPECT_NOT_OK(decoder.Next().status());
}

// Seeded fuzz: random corruptions of valid streams. Every outcome must be
// "ok frames", "wait for more", or "clean poison" — assertions inside the
// decoder (or ASan, in the sanitizer jobs) catch everything else.
TEST(FrameFuzzTest, RandomCorruptionsNeverCrashTheDecoder) {
  Random rng(/*seed=*/0xF7A3E);
  for (int iter = 0; iter < 400; ++iter) {
    std::string wire;
    const int frames = static_cast<int>(rng.Uniform(1, 4));
    for (int i = 0; i < frames; ++i) {
      EncodeFrame(
          MakeFrame(static_cast<FrameType>(rng.Uniform(1, 6)),
                    rng.NextString(static_cast<size_t>(rng.Uniform(0, 200))),
                    rng.OneIn(0.3)
                        ? std::optional<uint64_t>(static_cast<uint64_t>(
                              rng.Uniform(0, 1000000)))
                        : std::nullopt),
          &wire);
    }
    // Corrupt: flip bytes, truncate, or splice garbage.
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      const int flips = static_cast<int>(rng.Uniform(1, 8));
      for (int i = 0; i < flips; ++i) {
        wire[static_cast<size_t>(rng.Uniform(
            0, static_cast<int64_t>(wire.size()) - 1))] ^=
            static_cast<char>(rng.Uniform(1, 255));
      }
    } else if (dice < 0.7) {
      wire.resize(static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(wire.size()))));
    } else {
      wire.insert(static_cast<size_t>(rng.Uniform(
                      0, static_cast<int64_t>(wire.size()))),
                  rng.NextString(static_cast<size_t>(rng.Uniform(1, 64))));
    }

    FrameDecoder decoder;
    size_t fed = 0;
    bool poisoned = false;
    while (fed < wire.size() && !poisoned) {
      const size_t n = std::min(
          static_cast<size_t>(rng.Uniform(1, 97)), wire.size() - fed);
      decoder.Feed(wire.data() + fed, n);
      fed += n;
      while (true) {
        Result<std::optional<Frame>> next = decoder.Next();
        if (!next.ok()) {
          poisoned = true;
          // Poison must be sticky.
          EXPECT_NOT_OK(decoder.Next().status());
          break;
        }
        if (!next.ValueOrDie().has_value()) break;
        // Any decoded frame must satisfy the wire invariants.
        const Frame& frame = next.ValueOrDie().value();
        EXPECT_TRUE(IsValidFrameType(static_cast<uint8_t>(frame.type)));
        EXPECT_EQ(frame.flags & ~kFrameFlagDeadline, 0);
      }
    }
  }
}

}  // namespace
}  // namespace tempspec
