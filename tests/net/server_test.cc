// Protocol and policy battery for NetServer (net/server.h), driven over real
// sockets against scripted statement handlers: HTTP and TSP1 frame
// round-trips, keep-alive and pipelining, admission control (503/kRejected),
// deadline propagation and enforcement (504), client-disconnect
// cancellation, and clean rejection of malformed input on both protocols.
#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/frame.h"
#include "net/net_test_client.h"
#include "testing.h"

namespace tempspec {
namespace {

using namespace std::chrono_literals;
using testing::QueryFrame;
using testing::TestClient;
using testing::WaitFor;

class NetServerTest : public ::testing::Test {
 protected:
  /// Starts a server on an ephemeral port with the given options + handler.
  void StartServer(ServerOptions options, NetServer::StatementHandler handler) {
    options.bind_address = "127.0.0.1";
    options.port = 0;
    server_ = std::make_unique<NetServer>(std::move(options));
    if (handler) server_->SetStatementHandler(std::move(handler));
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<NetServer> server_;
};

TEST_F(NetServerTest, HttpQueryRoundTrip) {
  StartServer({}, [](const std::string& statement, TraceContext*) {
    return Result<std::string>("echo: " + statement);
  });
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  TestClient::HttpReply reply = client.PostQuery("CURRENT readings");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.code, 200);
  EXPECT_EQ(reply.body, "echo: CURRENT readings");
  EXPECT_EQ(server_->Stats().requests, 1u);
}

TEST_F(NetServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  std::atomic<int> calls{0};
  StartServer({}, [&calls](const std::string& statement, TraceContext*) {
    calls.fetch_add(1);
    return Result<std::string>("#" + statement);
  });
  TestClient client(server_->port());
  for (int i = 0; i < 5; ++i) {
    TestClient::HttpReply reply = client.PostQuery(std::to_string(i));
    ASSERT_TRUE(reply.ok) << "request " << i;
    EXPECT_EQ(reply.code, 200);
    EXPECT_EQ(reply.body, "#" + std::to_string(i));
  }
  EXPECT_EQ(calls.load(), 5);
  EXPECT_EQ(server_->Stats().connections_accepted, 1u);
}

TEST_F(NetServerTest, PipelinedHttpRequestsAnswerInOrder) {
  StartServer({}, [](const std::string& statement, TraceContext*) {
    return Result<std::string>("r:" + statement);
  });
  TestClient client(server_->port());
  // Both requests hit the socket before either response is read; the server
  // must serialize per-connection and answer in order.
  std::string two;
  for (const char* payload : {"a", "b"}) {
    two += "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\n";
    two += payload;
  }
  ASSERT_TRUE(client.Send(two));
  TestClient::HttpReply first = client.ReadHttpResponse();
  TestClient::HttpReply second = client.ReadHttpResponse();
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.body, "r:a");
  EXPECT_EQ(second.body, "r:b");
}

TEST_F(NetServerTest, StatementErrorsMapToHttpCodes) {
  StartServer({}, [](const std::string& statement, TraceContext*) {
    if (statement == "missing") {
      return Result<std::string>(Status::NotFound("no such relation"));
    }
    if (statement == "bad") {
      return Result<std::string>(Status::InvalidArgument("parse error"));
    }
    return Result<std::string>(Status::Internal("boom"));
  });
  TestClient client(server_->port());
  EXPECT_EQ(client.PostQuery("missing").code, 404);
  EXPECT_EQ(client.PostQuery("bad").code, 400);
  EXPECT_EQ(client.PostQuery("other").code, 500);
}

TEST_F(NetServerTest, PostToUnknownTargetIs404) {
  StartServer({}, [](const std::string&, TraceContext*) {
    return Result<std::string>("unreachable");
  });
  TestClient client(server_->port());
  ASSERT_TRUE(client.Send(
      "POST /nope HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nx"));
  EXPECT_EQ(client.ReadHttpResponse().code, 404);
}

TEST_F(NetServerTest, QueryWithoutHandlerIs404) {
  StartServer({}, nullptr);
  TestClient client(server_->port());
  EXPECT_EQ(client.PostQuery("CURRENT r").code, 404);
}

TEST_F(NetServerTest, MalformedHttpRejectedAndCounted) {
  StartServer({}, [](const std::string&, TraceContext*) {
    return Result<std::string>("ok");
  });
  TestClient client(server_->port());
  ASSERT_TRUE(client.Send("complete garbage\r\n\r\n"));
  TestClient::HttpReply reply = client.ReadHttpResponse();
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.code, 400);
  EXPECT_TRUE(WaitFor([&] { return server_->Stats().protocol_errors >= 1; }));

  // A request line that parses but claims an unsupported version is 505.
  TestClient version_client(server_->port());
  ASSERT_TRUE(version_client.Send("GET /metrics HTTP/3.0\r\n\r\n"));
  TestClient::HttpReply version_reply = version_client.ReadHttpResponse();
  ASSERT_TRUE(version_reply.ok);
  EXPECT_EQ(version_reply.code, 505);
}

TEST_F(NetServerTest, FrameQueryAndPingRoundTrip) {
  StartServer({}, [](const std::string& statement, TraceContext*) {
    return Result<std::string>("echo: " + statement);
  });
  TestClient client(server_->port());
  ASSERT_TRUE(client.SendFrame(QueryFrame("TIMESLICE r AT '1992-01-01'")));
  ASSERT_OK_AND_ASSIGN(Frame result, client.ReadFrame());
  EXPECT_EQ(result.type, FrameType::kResult);
  EXPECT_EQ(result.payload, "echo: TIMESLICE r AT '1992-01-01'");

  Frame ping;
  ping.type = FrameType::kPing;
  ping.payload = "liveness";
  ASSERT_TRUE(client.SendFrame(ping));
  ASSERT_OK_AND_ASSIGN(Frame pong, client.ReadFrame());
  EXPECT_EQ(pong.type, FrameType::kPong);
  EXPECT_EQ(pong.payload, "liveness");
}

TEST_F(NetServerTest, FrameStatementErrorCarriesStatusName) {
  StartServer({}, [](const std::string&, TraceContext*) {
    return Result<std::string>(Status::InvalidArgument("parse error at 'x'"));
  });
  TestClient client(server_->port());
  ASSERT_TRUE(client.SendFrame(QueryFrame("garbage")));
  ASSERT_OK_AND_ASSIGN(Frame error, client.ReadFrame());
  EXPECT_EQ(error.type, FrameType::kError);
  EXPECT_NE(error.payload.find("parse error"), std::string::npos)
      << error.payload;
}

TEST_F(NetServerTest, CorruptFrameClosesConnectionAndCounts) {
  StartServer({}, [](const std::string&, TraceContext*) {
    return Result<std::string>("ok");
  });
  TestClient client(server_->port());
  std::string wire;
  EncodeFrame(QueryFrame("x"), &wire);
  wire[12] ^= 0x5A;  // break the CRC
  ASSERT_TRUE(client.Send(wire));
  // The server answers with one kError frame explaining the corruption,
  // then tears the connection down (framing is unrecoverable).
  ASSERT_OK_AND_ASSIGN(Frame error, client.ReadFrame());
  EXPECT_EQ(error.type, FrameType::kError);
  EXPECT_NE(error.payload.find("CRC"), std::string::npos) << error.payload;
  EXPECT_EQ(client.ReadToEof(), "");
  EXPECT_TRUE(WaitFor([&] { return server_->Stats().protocol_errors >= 1; }));
}

TEST_F(NetServerTest, AdmissionControlRejectsExcessLoad) {
  // One permit; the first statement parks in the handler until released, so
  // every concurrent request must be refused up front: HTTP 503 with
  // Retry-After semantics, kRejected on the frame protocol.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  ServerOptions options;
  options.max_inflight = 1;
  options.worker_threads = 2;
  StartServer(options, [&](const std::string&, TraceContext*) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return Result<std::string>("done");
  });

  TestClient blocker(server_->port());
  ASSERT_TRUE(blocker.Send(
      "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\nslow"));
  ASSERT_TRUE(WaitFor([&] { return entered.load() == 1; }));

  TestClient refused_http(server_->port());
  TestClient::HttpReply reply = refused_http.PostQuery("fast");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.code, 503);

  TestClient refused_frame(server_->port());
  ASSERT_TRUE(refused_frame.SendFrame(QueryFrame("fast")));
  ASSERT_OK_AND_ASSIGN(Frame rejection, refused_frame.ReadFrame());
  EXPECT_EQ(rejection.type, FrameType::kRejected);

  EXPECT_GE(server_->Stats().requests_rejected, 2u);
  EXPECT_EQ(entered.load(), 1);  // rejected statements never ran

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  TestClient::HttpReply unblocked = blocker.ReadHttpResponse();
  ASSERT_TRUE(unblocked.ok);
  EXPECT_EQ(unblocked.code, 200);

  // With the permit back, new statements are admitted again.
  TestClient after(server_->port());
  EXPECT_EQ(after.PostQuery("fast").code, 200);
}

TEST_F(NetServerTest, ClientDeadlineIsArmedOnTheTrace) {
  std::atomic<bool> saw_deadline{false};
  StartServer({}, [&](const std::string&, TraceContext* trace) {
    saw_deadline.store(trace != nullptr && trace->has_deadline());
    return Result<std::string>("ok");
  });
  TestClient client(server_->port());
  EXPECT_EQ(
      client.PostQuery("q", "X-Tempspec-Deadline-Ms: 5000\r\n").code, 200);
  EXPECT_TRUE(saw_deadline.load());

  // Frame-protocol deadline prefix arms the same way.
  saw_deadline.store(false);
  TestClient frame_client(server_->port());
  ASSERT_TRUE(frame_client.SendFrame(
      QueryFrame("q", /*deadline_ms=*/5000, /*with_deadline=*/true)));
  ASSERT_OK_AND_ASSIGN(Frame result, frame_client.ReadFrame());
  EXPECT_EQ(result.type, FrameType::kResult);
  EXPECT_TRUE(saw_deadline.load());
}

TEST_F(NetServerTest, DefaultDeadlineAppliesWhenClientSendsNone) {
  std::atomic<bool> saw_deadline{false};
  ServerOptions options;
  options.default_deadline_ms = 30000;
  StartServer(options, [&](const std::string&, TraceContext* trace) {
    saw_deadline.store(trace != nullptr && trace->has_deadline());
    return Result<std::string>("ok");
  });
  TestClient client(server_->port());
  EXPECT_EQ(client.PostQuery("q").code, 200);
  EXPECT_TRUE(saw_deadline.load());
}

TEST_F(NetServerTest, ExpiredDeadlineCancelsTheStatementMidFlight) {
  // The handler simulates a long scan that polls at morsel boundaries: it
  // runs until the armed deadline fires, then reports DeadlineExceeded —
  // which must reach the HTTP client as 504 and bump the counter. The
  // cooperative loop is bounded so a cancellation bug fails, not hangs.
  StartServer({}, [](const std::string&, TraceContext* trace) {
    for (int morsel = 0; morsel < 20000; ++morsel) {
      if (trace != nullptr && trace->CancellationRequested()) {
        return Result<std::string>(Status::DeadlineExceeded(
            "query cancelled after ", morsel, " morsel(s)"));
      }
      std::this_thread::sleep_for(1ms);
    }
    return Result<std::string>("ran to completion");
  });
  TestClient client(server_->port());
  TestClient::HttpReply reply =
      client.PostQuery("long scan", "X-Tempspec-Deadline-Ms: 50\r\n");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.code, 504);
  EXPECT_NE(reply.body.find("cancelled"), std::string::npos) << reply.body;
  EXPECT_EQ(server_->Stats().deadline_exceeded, 1u);
}

TEST_F(NetServerTest, ClientDeadlineIsClampedToServerMax) {
  // max_deadline_ms=50 must override the client's 1-hour deadline: the
  // cancellation still fires within the bounded loop below.
  ServerOptions options;
  options.max_deadline_ms = 50;
  StartServer(options, [](const std::string&, TraceContext* trace) {
    for (int morsel = 0; morsel < 20000; ++morsel) {
      if (trace != nullptr && trace->CancellationRequested()) {
        return Result<std::string>(
            Status::DeadlineExceeded("cancelled at morsel ", morsel));
      }
      std::this_thread::sleep_for(1ms);
    }
    return Result<std::string>("ran to completion");
  });
  TestClient client(server_->port());
  TestClient::HttpReply reply =
      client.PostQuery("long scan", "X-Tempspec-Deadline-Ms: 3600000\r\n");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.code, 504);
}

TEST_F(NetServerTest, DisconnectingClientCancelsItsStatement) {
  std::atomic<bool> entered{false};
  std::atomic<bool> cancelled{false};
  StartServer({}, [&](const std::string&, TraceContext* trace) {
    entered.store(true);
    for (int i = 0; i < 20000; ++i) {
      if (trace != nullptr && trace->CancellationRequested()) {
        cancelled.store(true);
        return Result<std::string>(Status::DeadlineExceeded("cancelled"));
      }
      std::this_thread::sleep_for(1ms);
    }
    return Result<std::string>("ran to completion");
  });
  {
    TestClient client(server_->port());
    ASSERT_TRUE(client.Send(
        "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nq"));
    ASSERT_TRUE(WaitFor([&] { return entered.load(); }));
  }  // client destructor closes the socket mid-query
  EXPECT_TRUE(WaitFor([&] { return cancelled.load(); }));
}

TEST_F(NetServerTest, TelemetryNeverPassesAdmission) {
  // With the lone permit held by a parked statement, /healthz via a
  // registered handler must still answer: loop-thread endpoints bypass
  // admission by design.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};

  ServerOptions options;
  options.bind_address = "127.0.0.1";
  options.port = 0;
  options.max_inflight = 1;
  server_ = std::make_unique<NetServer>(std::move(options));
  server_->AddHttpHandler("/healthz",
                          [](const HttpRequest&, NetServer::HttpResponse* out) {
                            out->body = "ok\n";
                          });
  server_->SetStatementHandler([&](const std::string&, TraceContext*) {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    return Result<std::string>("done");
  });
  ASSERT_OK(server_->Start());

  TestClient blocker(server_->port());
  ASSERT_TRUE(blocker.Send(
      "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nq"));
  ASSERT_TRUE(WaitFor([&] { return entered.load() >= 1; }));

  TestClient health(server_->port());
  ASSERT_TRUE(health.Send("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"));
  TestClient::HttpReply reply = health.ReadHttpResponse();
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.code, 200);
  EXPECT_EQ(reply.body, "ok\n");

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  EXPECT_EQ(blocker.ReadHttpResponse().code, 200);
}

TEST_F(NetServerTest, MaxConnectionsRefusesFurtherAccepts) {
  ServerOptions options;
  options.max_connections = 2;
  StartServer(options, [](const std::string&, TraceContext*) {
    return Result<std::string>("ok");
  });
  TestClient first(server_->port());
  TestClient second(server_->port());
  ASSERT_EQ(first.PostQuery("a").code, 200);  // both fully established
  ASSERT_EQ(second.PostQuery("b").code, 200);

  TestClient third(server_->port());
  // The server accepts then immediately closes; the read sees EOF without
  // any response bytes.
  EXPECT_EQ(third.ReadToEof(), "");
  EXPECT_TRUE(
      WaitFor([&] { return server_->Stats().connections_refused >= 1; }));
}

TEST_F(NetServerTest, StopCancelsParkedStatements) {
  std::atomic<bool> entered{false};
  std::atomic<bool> cancelled{false};
  StartServer({}, [&](const std::string&, TraceContext* trace) {
    entered.store(true);
    for (int i = 0; i < 20000; ++i) {
      if (trace != nullptr && trace->CancellationRequested()) {
        cancelled.store(true);
        return Result<std::string>(Status::DeadlineExceeded("cancelled"));
      }
      std::this_thread::sleep_for(1ms);
    }
    return Result<std::string>("ran to completion");
  });
  TestClient client(server_->port());
  ASSERT_TRUE(client.Send(
      "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: 1\r\n\r\nq"));
  ASSERT_TRUE(WaitFor([&] { return entered.load(); }));
  server_->Stop();  // must cancel the in-flight statement, not wait 20s
  EXPECT_TRUE(cancelled.load());
}

}  // namespace
}  // namespace tempspec
