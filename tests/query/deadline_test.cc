// Deadline and cancellation semantics through the real executor: an armed
// (or already-fired) deadline on the query's TraceContext must cut a long
// scan at a morsel boundary — rows_scanned strictly below the relation's
// population — and surface as Status::DeadlineExceeded, never as a quietly
// truncated result set. This is the engine half of the server's per-query
// deadline contract (net/server.h); the wire half lives in
// tests/net/server_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "catalog/query_lang.h"
#include "catalog/query_service.h"
#include "obs/trace.h"
#include "testing.h"
#include "timex/calendar.h"

namespace tempspec {
namespace {

using testing::Civil;
using namespace std::chrono_literals;

constexpr int kPopulation = 20000;

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<LogicalClock>(Civil(1992, 2, 3, 10, 0),
                                            Duration::Seconds(1));
    RelationOptions base;
    base.clock = clock_;
    TemporalRelation* rel =
        catalog_
            .CreateRelationFromDdl(
                "CREATE EVENT RELATION big (sensor INT64 KEY, v DOUBLE) "
                "GRANULARITY 1s",
                base)
            .ValueOrDie();
    for (int i = 0; i < kPopulation; ++i) {
      ASSERT_OK(rel->InsertEvent(1, clock_->Peek(),
                                 Tuple{int64_t{1}, 1.0 * i})
                    .status());
    }
  }

  Catalog catalog_;
  std::shared_ptr<LogicalClock> clock_;
};

TEST_F(DeadlineTest, UnconstrainedScanRunsToCompletion) {
  TraceContext trace;
  ASSERT_OK_AND_ASSIGN(QueryOutput out,
                       ExecuteQuery(catalog_, "CURRENT big", &trace));
  EXPECT_EQ(out.elements.size(), static_cast<size_t>(kPopulation));
  EXPECT_EQ(out.stats.scan_aborts, 0u);
}

TEST_F(DeadlineTest, FarDeadlineDoesNotFalselyCancel) {
  TraceContext trace;
  trace.ArmDeadlineAfterMicros(60ull * 1000 * 1000);
  ASSERT_OK_AND_ASSIGN(QueryOutput out,
                       ExecuteQuery(catalog_, "CURRENT big", &trace));
  EXPECT_EQ(out.elements.size(), static_cast<size_t>(kPopulation));
}

TEST_F(DeadlineTest, ExpiredDeadlineAbortsTheScanMidFlight) {
  // Deadline already in the past when the scan starts: the executor must
  // notice at the first morsel boundary it reaches, abandon the remaining
  // morsels, and report DeadlineExceeded — with strictly fewer rows scanned
  // than the relation holds, proving the scan did not run to completion.
  TraceContext trace;
  trace.ArmDeadlineAfterMicros(1);
  while (!trace.CancellationRequested()) {
    std::this_thread::sleep_for(100us);
  }
  const Status status = ExecuteQuery(catalog_, "CURRENT big", &trace).status();
  ASSERT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_GT(trace.counter("scan_aborts"), 0u);
  EXPECT_LT(trace.counter("rows_scanned"), static_cast<uint64_t>(kPopulation));
  EXPECT_EQ(trace.attr("cancelled"), "true");
}

TEST_F(DeadlineTest, ExplicitCancelAbortsTheScan) {
  TraceContext trace;
  trace.RequestCancel();
  const Status status = ExecuteQuery(catalog_, "CURRENT big", &trace).status();
  ASSERT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_LT(trace.counter("rows_scanned"), static_cast<uint64_t>(kPopulation));
}

TEST_F(DeadlineTest, CancelFromAnotherThreadMidScan) {
  // The server's actual shape: the event loop cancels from a different
  // thread while a worker executes. Repeated scans race against a cancel
  // landing at an arbitrary point; whatever the interleaving, the outcome
  // must be either a complete result or a clean DeadlineExceeded — and once
  // the flag is up, the next scan must abort.
  TraceContext trace;
  std::atomic<bool> go{false};
  std::thread canceller([&] {
    while (!go.load()) std::this_thread::yield();
    std::this_thread::sleep_for(200us);
    trace.RequestCancel();
  });
  go.store(true);
  Status last = Status::OK();
  // Bounded: the cancel lands within a few hundred micros, each scan takes
  // a bounded time, so a handful of iterations always suffices.
  for (int i = 0; i < 1000 && !trace.CancellationRequested(); ++i) {
    last = ExecuteQuery(catalog_, "CURRENT big", &trace).status();
    if (!last.ok()) break;
  }
  canceller.join();
  const Status after = ExecuteQuery(catalog_, "CURRENT big", &trace).status();
  ASSERT_TRUE(after.IsDeadlineExceeded()) << after.ToString();
  if (!last.ok()) {
    EXPECT_TRUE(last.IsDeadlineExceeded()) << last.ToString();
  }
}

TEST_F(DeadlineTest, QueryServiceSurfacesCancellation) {
  // Same contract one layer up, through the daemon's execution path.
  QueryServiceOptions options;  // in-memory
  QueryService service(options);
  ASSERT_OK(service.Open());
  ASSERT_OK(service
                .Execute(
                    "CREATE EVENT RELATION svc (sensor INT64 KEY, v DOUBLE) "
                    "GRANULARITY 1s",
                    nullptr)
                .status());
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(service
                  .Execute("INSERT INTO svc OBJECT 1 VALUES (1, " +
                               std::to_string(i) +
                               ".0) VALID AT '1992-02-03 10:00:00'",
                           nullptr)
                  .status());
  }
  TraceContext ok_trace;
  ASSERT_OK_AND_ASSIGN(std::string report,
                       service.Execute("CURRENT svc", &ok_trace));
  EXPECT_NE(report.find("500 element(s)"), std::string::npos) << report;

  TraceContext cancelled;
  cancelled.RequestCancel();
  const Status status = service.Execute("CURRENT svc", &cancelled).status();
  ASSERT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
}

}  // namespace
}  // namespace tempspec
