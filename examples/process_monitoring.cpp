// Process monitoring end-to-end: a delayed-retroactive sensor relation with
// durable storage, crash recovery, and specialization-aware timeslices.
//
// This is the paper's flagship retroactive example: "the monitoring of
// temperatures during a chemical experiment ... measurements are recorded in
// the temporal relation after they are valid, due to transmission delays."
#include <filesystem>
#include <iostream>

#include "query/executor.h"
#include "spec/inference.h"
#include "workload/workloads.h"

using namespace tempspec;

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tempspec_monitoring_example")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  WorkloadConfig config;
  config.num_objects = 16;     // sensors
  config.ops_per_object = 240; // samples per sensor (4 hours at 1/min)
  config.storage_directory = dir;
  config.snapshot_interval = 512;

  const Duration min_delay = Duration::Seconds(30);
  const Duration max_delay = Duration::Seconds(120);

  // -- Ingest with durability.
  {
    auto scenario =
        MakeProcessMonitoring(config, min_delay, max_delay, Duration::Minutes(1))
            .ValueOrDie();
    GenerateProcessMonitoring(config, min_delay, max_delay, Duration::Minutes(1),
                              &scenario)
        .Check();
    scenario->Checkpoint().Check();
    std::cout << "Ingested " << scenario->size() << " samples from "
              << config.num_objects << " sensors into " << dir << "\n";
    std::cout << "Backlog bytes: " << scenario->backlog().EncodedBytes() << "\n\n";
  }  // process "crashes" here: relation object destroyed

  // -- Recover and query.
  auto scenario =
      MakeProcessMonitoring(config, min_delay, max_delay, Duration::Minutes(1))
          .ValueOrDie();
  std::cout << "Recovered " << scenario->size()
            << " samples; revalidating the declared specializations: "
            << scenario->CheckExtension().ToString() << "\n\n";

  // What does the data itself say? (Design-time inference.)
  const RelationProfile profile =
      InferProfile(scenario->elements(), ValidTimeKind::kEvent,
                   scenario->schema().valid_granularity());
  std::cout << profile.Report() << "\n";

  // Specialization-aware timeslice vs. the naive baseline.
  QueryExecutor exec(*scenario.relation);
  const Element& probe = scenario->elements()[scenario->size() / 2];
  QueryStats fast_stats, slow_stats;
  auto fast = exec.Timeslice(probe.valid.at(), &fast_stats);
  PlanChoice scan{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
  auto slow = exec.TimesliceWith(scan, probe.valid.at(), &slow_stats);

  const PlanChoice plan = exec.optimizer().PlanTimeslice(probe.valid.at());
  std::cout << "Timeslice at " << probe.valid.at().ToString() << ":\n";
  std::cout << "  optimized (" << ExecutionStrategyToString(plan.strategy)
            << "): " << fast.size() << " results, " << fast_stats.elements_examined
            << " elements examined\n";
  std::cout << "  naive scan: " << slow.size() << " results, "
            << slow_stats.elements_examined << " elements examined\n";
  std::cout << "  reduction: "
            << (slow_stats.elements_examined /
                std::max<uint64_t>(1, fast_stats.elements_examined))
            << "x fewer elements touched\n";

  std::filesystem::remove_all(dir);
  return 0;
}
