// Golden tests locking the published shape of Figures 2-5.
//
// lattice_test.cc proves the machine-checkable implications behind the
// edges; this file locks the figures themselves: the exact node sets, the
// exact edge sets (including which edges are derivable vs asserted), golden
// LUB/GLB tables computed over the order, and the completeness accounting
// (eleven specialized event types + the general type). Any drift in the
// lattice constructors — a dropped edge, a renamed node, a changed edge
// kind — fails here with the offending edge named.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "spec/enumeration.h"
#include "spec/event_spec.h"
#include "spec/lattice.h"
#include "testing.h"

namespace tempspec {
namespace {

using EdgeSet = std::set<std::pair<std::string, std::string>>;

EdgeSet Edges(const SpecLattice& lattice) {
  EdgeSet out;
  for (const auto& e : lattice.edges()) out.insert({e.parent, e.child});
  return out;
}

void ExpectSameEdges(const SpecLattice& lattice, const EdgeSet& expected,
                     const char* figure) {
  const EdgeSet actual = Edges(lattice);
  for (const auto& e : expected) {
    EXPECT_TRUE(actual.count(e))
        << figure << " lost edge " << e.first << " -> " << e.second;
  }
  for (const auto& e : actual) {
    EXPECT_TRUE(expected.count(e))
        << figure << " grew edge " << e.first << " -> " << e.second;
  }
  EXPECT_EQ(actual.size(), expected.size()) << figure;
}

/// \brief Least upper bounds of {a, b}: the minimal elements (most
/// specialized) of the set of common ancestors, a node counting as its own
/// ancestor. A unique LUB is how the catalog picks "the" coarsest common
/// specialization two declarations share.
std::vector<std::string> LeastUpperBounds(const SpecLattice& l,
                                          const std::string& a,
                                          const std::string& b) {
  std::vector<std::string> common;
  for (const auto& n : l.nodes()) {
    if (l.IsDescendant(n, a) && l.IsDescendant(n, b)) common.push_back(n);
  }
  std::vector<std::string> minimal;
  for (const auto& n : common) {
    bool has_lower = false;
    for (const auto& m : common) {
      if (m != n && l.IsDescendant(n, m)) has_lower = true;
    }
    if (!has_lower) minimal.push_back(n);
  }
  std::sort(minimal.begin(), minimal.end());
  return minimal;
}

/// \brief Greatest lower bounds: maximal elements of the common descendants.
std::vector<std::string> GreatestLowerBounds(const SpecLattice& l,
                                             const std::string& a,
                                             const std::string& b) {
  std::vector<std::string> common;
  for (const auto& n : l.nodes()) {
    if (l.IsDescendant(a, n) && l.IsDescendant(b, n)) common.push_back(n);
  }
  std::vector<std::string> maximal;
  for (const auto& n : common) {
    bool has_higher = false;
    for (const auto& m : common) {
      if (m != n && l.IsDescendant(m, n)) has_higher = true;
    }
    if (!has_higher) maximal.push_back(n);
  }
  std::sort(maximal.begin(), maximal.end());
  return maximal;
}

std::vector<std::string> V(std::initializer_list<std::string> names) {
  std::vector<std::string> out(names);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LatticeGoldenTest, Figure2EventTaxonomyEdges) {
  const SpecLattice& l = SpecLattice::EventTaxonomy();
  const EdgeSet expected = {
      {"general", "undetermined"},
      {"undetermined", "retroactively bounded"},
      {"undetermined", "predictively bounded"},
      {"retroactively bounded", "predictive"},
      {"retroactively bounded", "strongly bounded"},
      {"predictively bounded", "strongly bounded"},
      {"predictively bounded", "retroactive"},
      {"predictive", "early predictive"},
      {"predictive", "strongly predictively bounded"},
      {"strongly bounded", "strongly predictively bounded"},
      {"strongly bounded", "strongly retroactively bounded"},
      {"retroactive", "strongly retroactively bounded"},
      {"retroactive", "delayed retroactive"},
      {"early predictive", "early strongly predictively bounded"},
      {"strongly predictively bounded", "early strongly predictively bounded"},
      {"strongly predictively bounded", "degenerate"},
      {"strongly retroactively bounded", "degenerate"},
      {"strongly retroactively bounded",
       "delayed strongly retroactively bounded"},
      {"delayed retroactive", "delayed strongly retroactively bounded"},
  };
  ExpectSameEdges(l, expected, "Figure 2");
  EXPECT_EQ(l.nodes().size(), 14u);
  EXPECT_EQ(l.Roots(), (std::vector<std::string>{"general"}));
  // The sinks of the event taxonomy: nothing specializes past these.
  EXPECT_EQ(V({"degenerate", "delayed strongly retroactively bounded",
               "early strongly predictively bounded"}),
            V({l.Leaves()[0], l.Leaves()[1], l.Leaves()[2]}));
  ASSERT_EQ(l.Leaves().size(), 3u);
  // Every edge of Figure 2 is band containment, hence derivable.
  for (const auto& e : l.edges()) {
    EXPECT_EQ(e.kind, SpecLattice::EdgeKind::kDerivable)
        << e.parent << " -> " << e.child;
  }
}

TEST(LatticeGoldenTest, Figure2LubGlbTable) {
  const SpecLattice& l = SpecLattice::EventTaxonomy();
  // Golden meet/join table for the pairs the paper discusses. The event
  // taxonomy is a genuine lattice on these pairs: every LUB/GLB is unique.
  EXPECT_EQ(LeastUpperBounds(l, "retroactive", "predictive"),
            V({"undetermined"}));
  EXPECT_EQ(GreatestLowerBounds(l, "retroactive", "predictive"),
            V({"degenerate"}));
  EXPECT_EQ(GreatestLowerBounds(l, "retroactively bounded",
                                "predictively bounded"),
            V({"strongly bounded"}));
  EXPECT_EQ(LeastUpperBounds(l, "strongly retroactively bounded",
                             "strongly predictively bounded"),
            V({"strongly bounded"}));
  EXPECT_EQ(GreatestLowerBounds(l, "strongly retroactively bounded",
                                "strongly predictively bounded"),
            V({"degenerate"}));
  EXPECT_EQ(GreatestLowerBounds(l, "delayed retroactive",
                                "strongly retroactively bounded"),
            V({"delayed strongly retroactively bounded"}));
  EXPECT_EQ(LeastUpperBounds(l, "early predictive",
                             "strongly predictively bounded"),
            V({"predictive"}));
  EXPECT_EQ(GreatestLowerBounds(l, "early predictive",
                                "strongly predictively bounded"),
            V({"early strongly predictively bounded"}));
  EXPECT_EQ(LeastUpperBounds(l, "delayed retroactive", "early predictive"),
            V({"undetermined"}));
  // Top and bottom behave as identity elements.
  EXPECT_EQ(LeastUpperBounds(l, "general", "degenerate"), V({"general"}));
  EXPECT_EQ(GreatestLowerBounds(l, "general", "degenerate"),
            V({"degenerate"}));
}

TEST(LatticeGoldenTest, Figure2CoversTheEnumeratedTaxonomy) {
  // Completeness: the lattice carries a node for the general type and for
  // each of the eleven specialized types of the Section 3.1 theorem (the
  // twelve Figure 1 panes), plus degenerate and the undetermined junction.
  const SpecLattice& l = SpecLattice::EventTaxonomy();
  std::set<std::string> pane_names;
  for (const auto& region : EnumerateEventRegions()) {
    pane_names.insert(EventSpecKindToString(region.kind));
  }
  EXPECT_EQ(pane_names.size(), 12u);
  for (const auto& name : pane_names) {
    EXPECT_TRUE(l.HasNode(name)) << "no lattice node for pane type " << name;
  }
  EXPECT_TRUE(l.HasNode("degenerate"));
  // 12 pane types + degenerate + the undetermined junction = 14 nodes.
  EXPECT_EQ(l.nodes().size(), pane_names.size() + 2);
}

TEST(LatticeGoldenTest, Figure3InterEventOrderings) {
  const SpecLattice& l = SpecLattice::InterEventOrderings();
  const EdgeSet expected = {
      {"general", "globally non-decreasing"},
      {"general", "globally non-increasing"},
      {"globally non-decreasing", "globally sequential"},
  };
  ExpectSameEdges(l, expected, "Figure 3");
  EXPECT_EQ(l.nodes().size(), 4u);
  EXPECT_EQ(LeastUpperBounds(l, "globally non-decreasing",
                             "globally non-increasing"),
            V({"general"}));
  // The orderings have no common specialization: their meet is empty.
  EXPECT_TRUE(GreatestLowerBounds(l, "globally non-decreasing",
                                  "globally non-increasing")
                  .empty());
}

TEST(LatticeGoldenTest, Figure4InterEventRegularity) {
  const SpecLattice& l = SpecLattice::InterEventRegularity();
  const EdgeSet expected = {
      {"general", "transaction time event regular"},
      {"general", "valid time event regular"},
      {"transaction time event regular",
       "strict transaction time event regular"},
      {"valid time event regular", "strict valid time event regular"},
      {"transaction time event regular", "temporal event regular"},
      {"valid time event regular", "temporal event regular"},
      {"temporal event regular", "strict temporal event regular"},
      {"strict transaction time event regular",
       "strict temporal event regular"},
      {"strict valid time event regular", "strict temporal event regular"},
  };
  ExpectSameEdges(l, expected, "Figure 4");
  EXPECT_EQ(l.nodes().size(), 7u);
  EXPECT_EQ(GreatestLowerBounds(l, "transaction time event regular",
                                "valid time event regular"),
            V({"temporal event regular"}));
  EXPECT_EQ(GreatestLowerBounds(l, "strict transaction time event regular",
                                "strict valid time event regular"),
            V({"strict temporal event regular"}));
  EXPECT_EQ(LeastUpperBounds(l, "strict transaction time event regular",
                             "strict valid time event regular"),
            V({"general"}));
  EXPECT_EQ(l.Leaves(), (std::vector<std::string>{
                            "strict temporal event regular"}));
}

TEST(LatticeGoldenTest, Figure5InterIntervalTaxonomy) {
  const SpecLattice& l = SpecLattice::InterIntervalTaxonomy();
  // The Allen relations whose endpoint constraints force begins
  // non-decreasing / ends non-increasing (re-derived in
  // interinterval_test.cc); st-during is constrained by neither and hangs
  // from the root.
  const EdgeSet expected = {
      {"general", "globally non-decreasing"},
      {"general", "globally non-increasing"},
      {"globally non-decreasing", "st-before"},
      {"globally non-decreasing", "globally contiguous (st-meets)"},
      {"globally non-decreasing", "st-overlaps"},
      {"globally non-decreasing", "st-starts"},
      {"globally non-decreasing", "st-equals"},
      {"globally non-decreasing", "st-started-by"},
      {"globally non-decreasing", "st-contains"},
      {"globally non-decreasing", "st-finished-by"},
      {"globally non-increasing", "st-equals"},
      {"globally non-increasing", "st-after"},
      {"globally non-increasing", "st-met-by"},
      {"globally non-increasing", "st-overlapped-by"},
      {"globally non-increasing", "st-started-by"},
      {"globally non-increasing", "st-contains"},
      {"globally non-increasing", "st-finished-by"},
      {"globally non-increasing", "st-finishes"},
      {"general", "st-during"},
      {"st-before", "globally sequential"},
      {"globally non-decreasing", "globally sequential"},
  };
  ExpectSameEdges(l, expected, "Figure 5");
  EXPECT_EQ(l.nodes().size(), 17u);
  EXPECT_EQ(l.Roots(), (std::vector<std::string>{"general"}));
  // Exactly one edge depends on the paper's strict reading of `before`:
  // sequential-under-st-before. Everything else is derivable.
  std::vector<std::pair<std::string, std::string>> asserted;
  for (const auto& e : l.edges()) {
    if (e.kind == SpecLattice::EdgeKind::kAsserted) {
      asserted.push_back({e.parent, e.child});
    }
  }
  ASSERT_EQ(asserted.size(), 1u);
  EXPECT_EQ(asserted[0],
            (std::pair<std::string, std::string>{"st-before",
                                                 "globally sequential"}));
  // The doubly-constrained st-relations sit under both orderings.
  for (const char* both : {"st-equals", "st-started-by", "st-contains",
                           "st-finished-by"}) {
    EXPECT_EQ(LeastUpperBounds(l, both, both), V({both}));
    EXPECT_TRUE(l.IsDescendant("globally non-decreasing", both)) << both;
    EXPECT_TRUE(l.IsDescendant("globally non-increasing", both)) << both;
  }
  EXPECT_EQ(GreatestLowerBounds(l, "globally non-decreasing",
                                "globally non-increasing"),
            V({"st-contains", "st-equals", "st-finished-by",
               "st-started-by"}));
}

TEST(LatticeGoldenTest, AncestorClosureMatchesEdgeReachability) {
  // AncestorsOf is how the catalog expands a declared property into every
  // inherited one; pin it against an independent reachability computation
  // over the golden edges.
  for (const SpecLattice* l :
       {&SpecLattice::EventTaxonomy(), &SpecLattice::InterEventOrderings(),
        &SpecLattice::InterEventRegularity(),
        &SpecLattice::InterIntervalTaxonomy()}) {
    for (const auto& node : l->nodes()) {
      std::set<std::string> expected;
      // Fixed-point closure over the raw edge list.
      bool changed = true;
      std::set<std::string> frontier{node};
      while (changed) {
        changed = false;
        for (const auto& e : l->edges()) {
          if ((frontier.count(e.child) || expected.count(e.child)) &&
              expected.insert(e.parent).second) {
            changed = true;
          }
        }
      }
      expected.erase(node);
      const auto got = l->AncestorsOf(node);
      EXPECT_EQ(std::set<std::string>(got.begin(), got.end()), expected)
          << node;
    }
  }
}

}  // namespace
}  // namespace tempspec
