#!/usr/bin/env bash
# End-to-end smoke check for the black-box flight recorder: start the
# ddl_tour example with the exporter and the crash-dump handler enabled,
# scrape /debug/events and /debug/traces off the live process, then kill it
# with SIGABRT and validate the JSONL dump the fatal-signal handler wrote
# with tools/check_flight_json.py. This proves the whole chain — engine
# instrumentation -> ring -> signal handler -> parseable black box — on a
# real dying process, which no unit test can.
#
# Usage: tools/flight_smoke.sh [build_dir]   (default: build)
set -u

BUILD_DIR="${1:-build}"
TOUR="$BUILD_DIR/examples/ddl_tour"
CHECKER="$(dirname "$0")/check_flight_json.py"

if [ ! -x "$TOUR" ]; then
  echo "no ddl_tour binary at $TOUR (build with the default CMake config first)" >&2
  exit 2
fi

OUT_DIR="$(mktemp -d)"
PORT_FILE="$OUT_DIR/port"
DUMP_FILE="$OUT_DIR/flight.jsonl"
cleanup() {
  [ -n "${TOUR_PID:-}" ] && kill -9 "$TOUR_PID" 2>/dev/null
  rm -rf "$OUT_DIR"
}
trap cleanup EXIT

TEMPSPEC_EXPORTER_PORT=0 \
TEMPSPEC_EXPORTER_PORTFILE="$PORT_FILE" \
TEMPSPEC_EXPORTER_LINGER_MS=60000 \
TEMPSPEC_FLIGHT_DUMP="$DUMP_FILE" \
    "$TOUR" > "$OUT_DIR/tour.out" 2>&1 &
TOUR_PID=$!

port=""
for _ in $(seq 1 100); do
  if [ -s "$PORT_FILE" ]; then
    port="$(cat "$PORT_FILE")"
    break
  fi
  if ! kill -0 "$TOUR_PID" 2>/dev/null; then
    echo "ddl_tour exited before binding the exporter:" >&2
    cat "$OUT_DIR/tour.out" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "exporter never wrote its port file" >&2
  exit 1
fi

# A flight-recorder-OFF tree has nothing to dump; report and pass so the
# script is safe to run in any build configuration.
flight_on="$(curl -sf "http://127.0.0.1:$port/varz" |
  python3 -c "import json,sys; print(json.load(sys.stdin)['build']['flightrecorder_enabled'])")"
if [ "$flight_on" != "1" ]; then
  echo "flight smoke: SKIP (flightrecorder_enabled=$flight_on in this build)"
  exit 0
fi

failures=0

# The live-process surfaces: both /debug endpoints must serve line-delimited
# JSON, and the tour's workload must have left events in the ring.
if ! curl -sf "http://127.0.0.1:$port/debug/events" -o "$OUT_DIR/events.jsonl"; then
  echo "/debug/events: FAIL: curl error"
  failures=$((failures + 1))
else
  python3 "$CHECKER" --min-events 1 "$OUT_DIR/events.jsonl" \
    || failures=$((failures + 1))
fi

if ! curl -sf "http://127.0.0.1:$port/debug/traces" -o "$OUT_DIR/traces.jsonl"; then
  echo "/debug/traces: FAIL: curl error"
  failures=$((failures + 1))
elif ! python3 - "$OUT_DIR/traces.jsonl" <<'EOF'
import json, sys
with open(sys.argv[1], encoding="utf-8") as f:
    for lineno, line in enumerate(f, start=1):
        t = json.loads(line)
        assert "trace_id" in t and "trace" in t, f"line {lineno}: bad shape"
print("traces: OK")
EOF
then
  echo "/debug/traces: FAIL: invalid JSONL"
  failures=$((failures + 1))
fi

# Kill the live instance mid-linger and demand a parseable black box.
kill -ABRT "$TOUR_PID"
wait "$TOUR_PID" 2>/dev/null
TOUR_PID=""
if [ ! -s "$DUMP_FILE" ]; then
  echo "crash dump: FAIL: handler wrote no dump at $DUMP_FILE"
  failures=$((failures + 1))
else
  python3 "$CHECKER" --min-events 1 "$DUMP_FILE" || failures=$((failures + 1))
fi

if [ $failures -ne 0 ]; then
  echo "flight smoke: $failures failure(s)"
  exit 1
fi
echo "flight smoke: live /debug endpoints and the SIGABRT dump all validate"
