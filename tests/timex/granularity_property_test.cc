// Property sweep: granule-partition invariants hold for every supported
// granularity, including calendric ones, across random instants.
#include <gtest/gtest.h>

#include <cctype>

#include "spec/band.h"
#include "testing.h"
#include "timex/granularity.h"
#include "util/random.h"

namespace tempspec {
namespace {

class GranularityPropertyTest : public ::testing::TestWithParam<Granularity> {};

TEST_P(GranularityPropertyTest, TruncateIsIdempotentFloor) {
  const Granularity g = GetParam();
  Random rng(37);
  for (int i = 0; i < 2000; ++i) {
    // ±80 years around the epoch, microsecond resolution.
    const TimePoint t = TimePoint::FromMicros(
        rng.Uniform(-2'500'000'000LL, 2'500'000'000LL) * 1000 +
        rng.Uniform(0, 999));
    const TimePoint floor = g.Truncate(t);
    // Floor property.
    EXPECT_LE(floor, t) << g.ToString() << " at " << t.ToString();
    // Idempotence.
    EXPECT_EQ(g.Truncate(floor), floor) << g.ToString();
    // t lies inside its granule.
    const TimePoint next = g.NextGranule(t);
    EXPECT_GT(next, t) << g.ToString();
    EXPECT_EQ(g.Truncate(TimePoint::FromMicros(next.micros() - 1)), floor)
        << g.ToString() << " at " << t.ToString();
  }
}

TEST_P(GranularityPropertyTest, CeilIsLeastUpperBoundary) {
  const Granularity g = GetParam();
  Random rng(41);
  for (int i = 0; i < 1000; ++i) {
    const TimePoint t =
        TimePoint::FromMicros(rng.Uniform(-2'000'000'000LL, 2'000'000'000LL) * 1000);
    const TimePoint ceil = g.Ceil(t);
    EXPECT_GE(ceil, t) << g.ToString();
    EXPECT_EQ(g.Truncate(ceil), ceil) << g.ToString();  // on a boundary
    // Least: no boundary strictly between t and ceil.
    if (ceil > t) {
      EXPECT_LT(g.Truncate(t), t) << g.ToString();
      EXPECT_EQ(g.NextGranule(t), ceil) << g.ToString();
    }
  }
}

TEST_P(GranularityPropertyTest, SameIsGranuleEquivalence) {
  const Granularity g = GetParam();
  Random rng(43);
  for (int i = 0; i < 1000; ++i) {
    const TimePoint a =
        TimePoint::FromMicros(rng.Uniform(-1'000'000'000LL, 1'000'000'000LL) * 1000);
    const TimePoint b =
        TimePoint::FromMicros(a.micros() + rng.Uniform(-5'000'000, 5'000'000));
    EXPECT_EQ(g.Same(a, b), g.Truncate(a) == g.Truncate(b)) << g.ToString();
    EXPECT_TRUE(g.Same(a, a));
    EXPECT_EQ(g.Same(a, b), g.Same(b, a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGranularities, GranularityPropertyTest,
    ::testing::Values(Granularity::Millisecond(), Granularity::Second(),
                      Granularity::Minute(), Granularity::Hour(),
                      Granularity::Day(), Granularity::Week(),
                      Granularity::Month(), Granularity::Year(),
                      Granularity(Granularity::Unit::kMinute, 15),
                      Granularity(Granularity::Unit::kMonth, 3)),
    [](const ::testing::TestParamInfo<Granularity>& info) {
      std::string name = info.param.ToString();
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

class BandPropertyTest : public ::testing::Test {};

Band RandomBand(Random* rng) {
  const int shape = static_cast<int>(rng->Uniform(0, 3));
  const int64_t a = rng->Uniform(-100, 100) * kMicrosPerSecond;
  const int64_t b = a + rng->Uniform(0, 200) * kMicrosPerSecond;
  const bool open_lo = rng->OneIn(0.3);
  const bool open_hi = rng->OneIn(0.3);
  switch (shape) {
    case 0:
      return Band::All();
    case 1:
      return Band::AtLeast(Duration::Micros(a), open_lo);
    case 2:
      return Band::AtMost(Duration::Micros(b), open_hi);
    default:
      return Band::Between(Duration::Micros(a), Duration::Micros(b), open_lo,
                           open_hi);
  }
}

// SubsetOf is sound: if A ⊆ B is reported, every member of A is in B.
TEST_F(BandPropertyTest, SubsetOfSoundness) {
  Random rng(47);
  for (int trial = 0; trial < 500; ++trial) {
    const Band a = RandomBand(&rng);
    const Band b = RandomBand(&rng);
    const auto subset = a.SubsetOf(b);
    ASSERT_TRUE(subset.has_value());  // fixed offsets: always decidable
    const TimePoint tt = testing::T(rng.Uniform(-1000, 1000));
    for (int probe = 0; probe < 50; ++probe) {
      const TimePoint vt =
          tt + Duration::Micros(rng.Uniform(-250, 250) * kMicrosPerSecond);
      if (*subset && a.Contains(tt, vt)) {
        EXPECT_TRUE(b.Contains(tt, vt))
            << a.ToString() << " claimed subset of " << b.ToString();
      }
    }
  }
}

// SubsetOf is complete on a grid: if every grid member of A is in B over a
// wide probe range, SubsetOf must not report false (unless A has members
// outside the grid, which the band shapes here cannot).
TEST_F(BandPropertyTest, IntersectIsConjunction) {
  Random rng(53);
  for (int trial = 0; trial < 500; ++trial) {
    const Band a = RandomBand(&rng);
    const Band b = RandomBand(&rng);
    const Band both = a.Intersect(b);
    const TimePoint tt = testing::T(rng.Uniform(-1000, 1000));
    for (int probe = 0; probe < 50; ++probe) {
      const TimePoint vt =
          tt + Duration::Micros(rng.Uniform(-250, 250) * kMicrosPerSecond);
      EXPECT_EQ(both.Contains(tt, vt), a.Contains(tt, vt) && b.Contains(tt, vt))
          << a.ToString() << " ∩ " << b.ToString() << " = " << both.ToString();
    }
  }
}

}  // namespace
}  // namespace tempspec
