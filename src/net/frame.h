// TSP1: the length-prefixed binary frame protocol of the query daemon.
//
// Every frame is a fixed 16-byte little-endian header followed by the
// payload:
//
//   offset  size  field
//   0       4     magic        0x31505354 ("TSP1" as ASCII bytes on the wire)
//   4       1     type         FrameType below
//   5       1     flags        bit 0: payload begins with a u64 LE deadline
//                              (milliseconds, relative to receipt)
//                              bit 1: payload carries a 24-byte trace prefix
//                              (trace id hi, trace id lo, span id — u64 LE
//                              each) after the deadline prefix, if any
//   6       2     reserved     must be 0
//   8       4     payload_len  bytes following the header (caps enforced)
//   12      4     payload_crc  CRC-32 (storage/serde.h Crc32) of the payload
//
// A kQuery payload is one query_lang/DDL statement in UTF-8; kResult carries
// the statement's output verbatim; kError a one-line error string prefixed
// with the canonical status-code name; kRejected means admission control
// refused the request before execution (back off and retry). kPing/kPong are
// liveness no-ops that skip the worker pool entirely.
//
// The decoder is incremental and hostile-input-safe: any malformed header
// (bad magic, unknown type, nonzero reserved bits, oversized payload) or a
// CRC mismatch poisons the decoder with an error Status — the connection is
// then torn down, because after framing is lost resynchronization is
// guesswork. Truncated frames are simply incomplete, never errors.
#ifndef TEMPSPEC_NET_FRAME_H_
#define TEMPSPEC_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>

#include "util/result.h"

namespace tempspec {

constexpr uint32_t kFrameMagic = 0x31505354;  // "TSP1" little-endian
constexpr size_t kFrameHeaderBytes = 16;
constexpr uint8_t kFrameFlagDeadline = 0x01;
constexpr uint8_t kFrameFlagTrace = 0x02;
/// \brief Wire size of the trace prefix (trace_hi, trace_lo, span_id).
constexpr size_t kFrameTracePrefixBytes = 24;

enum class FrameType : uint8_t {
  kQuery = 1,
  kResult = 2,
  kError = 3,
  kPing = 4,
  kPong = 5,
  kRejected = 6,
};

/// \brief True for the values EncodeFrame/FrameDecoder accept.
bool IsValidFrameType(uint8_t type);

/// \brief One decoded (or to-be-encoded) frame. `deadline_millis` is
/// meaningful only when flags has kFrameFlagDeadline, the trace triple only
/// when flags has kFrameFlagTrace; both prefixes are split out of `payload`
/// by the decoder and re-attached by the encoder (deadline first).
struct Frame {
  FrameType type = FrameType::kQuery;
  uint8_t flags = 0;
  uint64_t deadline_millis = 0;
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  std::string payload;

  bool has_deadline() const { return (flags & kFrameFlagDeadline) != 0; }
  bool has_trace() const { return (flags & kFrameFlagTrace) != 0; }
};

/// \brief Appends the wire form of `frame` to `out` (header, optional
/// deadline prefix, payload; CRC computed over both).
void EncodeFrame(const Frame& frame, std::string* out);

/// \brief Incremental frame decoder for one connection's byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload_bytes = 1 * 1024 * 1024)
      : max_payload_bytes_(max_payload_bytes) {}

  /// \brief Appends raw bytes from the socket.
  void Feed(const char* data, size_t len) { buffer_.append(data, len); }

  /// \brief Extracts the next complete frame: a frame when one is fully
  /// buffered, nullopt when more bytes are needed, or an error Status on a
  /// malformed stream (the decoder stays poisoned; close the connection).
  Result<std::optional<Frame>> Next();

  /// \brief Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buffer_.size() - offset_; }

 private:
  size_t max_payload_bytes_;
  std::string buffer_;
  size_t offset_ = 0;  // consumed prefix of buffer_
  Status poisoned_ = Status::OK();
};

}  // namespace tempspec

#endif  // TEMPSPEC_NET_FRAME_H_
