// Shared helpers for the tempspec test suite.
#ifndef TEMPSPEC_TESTS_TESTING_H_
#define TEMPSPEC_TESTS_TESTING_H_

#include <gtest/gtest.h>

#include <string>

#include "model/element.h"
#include "timex/calendar.h"
#include "timex/duration.h"
#include "timex/time_point.h"
#include "util/result.h"
#include "util/status.h"

#define ASSERT_OK(expr)                                              \
  do {                                                               \
    const ::tempspec::Status _st = (expr);                           \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                         \
  } while (false)

#define EXPECT_OK(expr)                                              \
  do {                                                               \
    const ::tempspec::Status _st = (expr);                           \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                         \
  } while (false)

#define ASSERT_NOT_OK(expr)                                          \
  do {                                                               \
    const ::tempspec::Status _st = (expr);                           \
    ASSERT_FALSE(_st.ok()) << "expected failure, got OK";            \
  } while (false)

#define EXPECT_NOT_OK(expr)                                          \
  do {                                                               \
    const ::tempspec::Status _st = (expr);                           \
    EXPECT_FALSE(_st.ok()) << "expected failure, got OK";            \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                             \
  ASSERT_OK_AND_ASSIGN_IMPL(TS_CONCAT(_r_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(r, lhs, rexpr)                     \
  auto r = (rexpr);                                                  \
  ASSERT_TRUE(r.ok()) << r.status().ToString();                      \
  lhs = std::move(r).ValueOrDie()

namespace tempspec {
namespace testing {

/// \brief Shorthand instant: seconds since the Unix epoch.
inline TimePoint T(int64_t seconds) { return TimePoint::FromSeconds(seconds); }

/// \brief Shorthand civil instant.
inline TimePoint Civil(int32_t y, int32_t mo, int32_t d, int32_t h = 0,
                       int32_t mi = 0, int32_t s = 0) {
  return FromCivil(CivilDateTime{y, mo, d, h, mi, s, 0});
}

/// \brief Builds a minimal event element for spec-level tests.
inline Element MakeEventElement(TimePoint tt, TimePoint vt,
                                ElementSurrogate id = 1,
                                ObjectSurrogate object = 1) {
  Element e;
  e.element_surrogate = id;
  e.object_surrogate = object;
  e.tt_begin = tt;
  e.tt_end = TimePoint::Max();
  e.valid = ValidTime::Event(vt);
  return e;
}

/// \brief Builds a minimal interval element.
inline Element MakeIntervalElement(TimePoint tt, TimePoint vb, TimePoint ve,
                                   ElementSurrogate id = 1,
                                   ObjectSurrogate object = 1) {
  Element e;
  e.element_surrogate = id;
  e.object_surrogate = object;
  e.tt_begin = tt;
  e.tt_end = TimePoint::Max();
  e.valid = ValidTime::IntervalUnchecked(vb, ve);
  return e;
}

}  // namespace testing
}  // namespace tempspec

#endif  // TEMPSPEC_TESTS_TESTING_H_
