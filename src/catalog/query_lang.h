// Query statements over catalog relations — the three query classes of
// Section 1, as text:
//
//   CURRENT <relation>
//   TIMESLICE <relation> AT '1992-02-03 10:30:00'
//   RANGE <relation> FROM '1992-02-01' TO '1992-03-01'
//   ROLLBACK <relation> TO '1992-02-03 10:30:00'
//   TIMESLICE <relation> AT '...' AS OF '...'      (bitemporal)
//   EXPLAIN TIMESLICE <relation> AT '...'          (plan only)
//   EXPLAIN ANALYZE <query>                        (execute + trace span)
//
// write statements (single-writer: callers serialize per relation, see
// relation/temporal_relation.h):
//
//   INSERT INTO <relation> OBJECT <n> VALUES (v1, ...) VALID AT '<t>'
//   INSERT INTO <relation> OBJECT <n> VALUES (v1, ...)
//       VALID FROM '<t>' TO '<t>'
//   DELETE FROM <relation> WHERE ID <n>
//
// Values are positional against the schema: quoted strings/times, bare
// numbers, TRUE/FALSE, NULL. The VALID clause kind must match the
// relation's stamp kind (event vs interval). INSERT reports the new
// element surrogate; DELETE closes the element's existence interval.
//
// plus introspection statements over the telemetry plane:
//
//   SHOW SLOW QUERIES [LIMIT n]       (the retained slow-query ring, newest
//                                      last, one JSON line per entry)
//   SHOW SPECIALIZATION <relation>    (declared vs observed kind, Figure-1
//                                      pane occupancy, drift state)
//   SHOW FLIGHT RECORDER [LIMIT n]    (the flight-recorder event ring,
//                                      newest last, one JSON line per event)
//   SHOW TRACES [LIMIT n]             (the retained trace-span ring, newest
//                                      last; spans join slowlog entries by
//                                      trace_id)
//   SHOW HEALTH                       (every declared SLO re-evaluated now,
//                                      one JSON verdict per objective)
//   SHOW HISTORY [LIMIT n]            (the metrics time-series ring, newest
//                                      last, one JSON sample per line)
//
// EXPLAIN ANALYZE runs the query with a trace span attached and returns the
// span as single-line JSON in QueryOutput::trace_json (strategy, counters,
// pages touched, per-stage timings) instead of the result rows. In a
// TEMPSPEC_METRICS tree every executed statement additionally carries a
// span that feeds the process-wide SlowQueryLog when its wall time crosses
// the slowlog threshold.
//
// Time literals are single-quoted "YYYY-MM-DD[ HH:MM[:SS[.ffffff]]]".
#ifndef TEMPSPEC_CATALOG_QUERY_LANG_H_
#define TEMPSPEC_CATALOG_QUERY_LANG_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/plan.h"

namespace tempspec {

/// \brief Result of executing one query statement.
struct QueryOutput {
  std::vector<Element> elements;  // empty for EXPLAIN
  QueryStats stats;
  /// Set for planned (timeslice/range) queries and EXPLAIN.
  std::string plan_description;
  bool explain_only = false;
  /// EXPLAIN ANALYZE: the executed query's trace span as single-line JSON.
  std::string trace_json;
  bool analyze = false;
  /// SHOW statements: the rendered report (ToString() returns it verbatim).
  std::string report;
  /// The relation the statement touched ("" for SHOW): the labeled latency
  /// family (obs/metrics.h) records {relation, kind, protocol} from it.
  std::string relation;

  /// \brief Tabular rendering (element per line).
  std::string ToString() const;
};

class TraceContext;

/// \brief Parses and executes one statement against the catalog.
Result<QueryOutput> ExecuteQuery(const Catalog& catalog,
                                 const std::string& statement);

/// \brief As above, with a caller-owned trace carrying deadline and
/// cancellation state (obs/trace.h). The trace is attached to the executor
/// for every executed statement, the executor polls it at morsel
/// boundaries, and a statement whose scan was cut short by cancellation
/// returns Deadline exceeded instead of a silently truncated result.
Result<QueryOutput> ExecuteQuery(const Catalog& catalog,
                                 const std::string& statement,
                                 TraceContext* trace);

/// \brief True when the statement's leading verb mutates state (INSERT,
/// DELETE, CREATE, DROP) — callers use this to pick shared vs exclusive
/// access to the catalog before execution.
bool IsWriteStatement(const std::string& statement);

}  // namespace tempspec

#endif  // TEMPSPEC_CATALOG_QUERY_LANG_H_
