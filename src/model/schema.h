// Relation schemas with the paper's attribute roles.
//
// Section 2 distinguishes, within an element: time-invariant attribute values
// (notably the time-invariant key), time-varying attribute values, and
// user-defined times (date/time-valued attributes with no system-interpreted
// semantics). The schema also fixes the valid-time stamp kind (event vs
// interval) and the relation's time-stamp granularities.
#ifndef TEMPSPEC_MODEL_SCHEMA_H_
#define TEMPSPEC_MODEL_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/value.h"
#include "timex/granularity.h"
#include "util/result.h"

namespace tempspec {

/// \brief Role of an explicit (non-time-stamp) attribute.
enum class AttributeRole : uint8_t {
  kTimeInvariantKey,  // e.g. a social security or account number
  kTimeInvariant,     // e.g. race: never changes but is not the key
  kTimeVarying,       // e.g. salary, title, temperature
  kUserDefinedTime,   // date/time-valued, no system-interpreted semantics
};

const char* AttributeRoleToString(AttributeRole role);

/// \brief Kind of the valid time-stamp of every element in a relation.
enum class ValidTimeKind : uint8_t {
  kEvent,     // a single instant: the fact happened at vt
  kInterval,  // [vt_b, vt_e): the fact held throughout
};

struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kNull;
  AttributeRole role = AttributeRole::kTimeVarying;
};

/// \brief Immutable schema of a temporal relation.
class Schema {
 public:
  /// \brief Validates and builds a schema. Rules: attribute names non-empty
  /// and unique; user-defined-time attributes must have TIME type.
  static Result<std::shared_ptr<const Schema>> Make(
      std::string relation_name, std::vector<AttributeDef> attributes,
      ValidTimeKind valid_kind, Granularity valid_granularity = Granularity(),
      Granularity transaction_granularity = Granularity());

  const std::string& relation_name() const { return relation_name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t num_attributes() const { return attributes_.size(); }
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }

  /// \brief Index of the named attribute, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  /// \brief Indices of attributes with the given role.
  std::vector<size_t> IndicesWithRole(AttributeRole role) const;

  ValidTimeKind valid_kind() const { return valid_kind_; }
  bool IsEventRelation() const { return valid_kind_ == ValidTimeKind::kEvent; }
  bool IsIntervalRelation() const { return valid_kind_ == ValidTimeKind::kInterval; }

  /// \brief Granularity of the valid time-stamps (Section 2: per-relation).
  Granularity valid_granularity() const { return valid_granularity_; }
  /// \brief Granularity of the transaction time-stamps.
  Granularity transaction_granularity() const { return transaction_granularity_; }

  std::string ToString() const;

 private:
  Schema(std::string relation_name, std::vector<AttributeDef> attributes,
         ValidTimeKind valid_kind, Granularity valid_granularity,
         Granularity transaction_granularity)
      : relation_name_(std::move(relation_name)),
        attributes_(std::move(attributes)),
        valid_kind_(valid_kind),
        valid_granularity_(valid_granularity),
        transaction_granularity_(transaction_granularity) {}

  std::string relation_name_;
  std::vector<AttributeDef> attributes_;
  ValidTimeKind valid_kind_;
  Granularity valid_granularity_;
  Granularity transaction_granularity_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace tempspec

#endif  // TEMPSPEC_MODEL_SCHEMA_H_
