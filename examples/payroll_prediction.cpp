// Direct-deposit payroll: the paper's predictive example.
//
// "salary payments ... are recorded before the time the funds become
// accessible to employees, resulting in a predictive relation. ... The
// company wants the checks to be valid on the first of the month, but it
// wants also to make the tape to be sent to the bank as late as possible,
// generally at most one week before. In addition, the bank needs the tape at
// least three days in advance." — early strongly predictively bounded(3d, 7d).
#include <iostream>

#include "query/executor.h"
#include "timex/calendar.h"
#include "workload/workloads.h"

using namespace tempspec;

int main() {
  WorkloadConfig config;
  config.num_objects = 25;    // employees
  config.ops_per_object = 3;  // February through April 1992
  auto scenario = MakePayroll(config).ValueOrDie();
  GeneratePayroll(config, &scenario).Check();

  std::cout << "Payroll relation: " << scenario->size() << " deposits\n";
  std::cout << "Declared:\n" << scenario->specializations().ToString() << "\n";

  // The declared band makes a prediction queryable BEFORE it is valid: "what
  // deposits are scheduled to hit on April 1, 1992?" — asked in late March.
  const TimePoint apr1 = FromCivil(CivilDateTime{1992, 4, 1, 0, 0, 0, 0});
  const TimePoint may1 = FromCivil(CivilDateTime{1992, 5, 1, 0, 0, 0, 0});
  QueryExecutor exec(*scenario.relation);
  QueryStats stats;
  auto scheduled = exec.Timeslice(apr1, &stats);
  const PlanChoice plan = exec.optimizer().PlanTimeslice(apr1);
  std::cout << "Deposits valid on " << apr1.ToString() << ": "
            << scheduled.size() << "\n";
  std::cout << "  strategy: " << ExecutionStrategyToString(plan.strategy) << "\n";
  std::cout << "  tt window: " << plan.tt_window.ToString() << "\n";
  std::cout << "  elements examined: " << stats.elements_examined << " of "
            << scenario->size() << "\n\n";

  // The band also rejects operational mistakes: a tape cut ten days early.
  auto clock = scenario.clock;
  clock->SetTo(may1 - Duration::Days(10));
  auto too_early =
      scenario->InsertEvent(1, may1, Tuple{int64_t{1}, 3100.0});
  std::cout << "Cutting the May tape 10 days early:\n  "
            << too_early.status().ToString() << "\n";

  // A tape cut five days ahead is accepted. (The transaction clock only
  // moves forward, so the demo proceeds in transaction-time order.)
  clock->SetTo(may1 - Duration::Days(5));
  auto ok = scenario->InsertEvent(3, may1, Tuple{int64_t{3}, 3100.0});
  std::cout << "Cutting it 5 days ahead: "
            << (ok.ok() ? "accepted" : ok.status().ToString()) << "\n";

  // And a tape cut two days before payday (the bank needs three).
  clock->SetTo(may1 - Duration::Days(2));
  auto too_late =
      scenario->InsertEvent(2, may1, Tuple{int64_t{2}, 3100.0});
  std::cout << "Cutting the May tape 2 days before payday:\n  "
            << too_late.status().ToString() << "\n";
  return 0;
}
