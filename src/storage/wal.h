// Write-ahead log: durable, CRC-guarded, append-only record stream.
//
// The backlog store writes every operation here before applying it; recovery
// replays the log. A torn tail (partial record, CRC mismatch) terminates
// replay cleanly — standard crash semantics.
#ifndef TEMPSPEC_STORAGE_WAL_H_
#define TEMPSPEC_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "util/result.h"

namespace tempspec {

enum class SyncMode : uint8_t {
  kNone,      // rely on the OS page cache (fastest, weakest)
  kEveryN,    // fsync every N appends
  kAlways,    // fsync per append
};

/// \brief Append-only log file with CRC-checked records.
class WriteAheadLog {
 public:
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     SyncMode mode = SyncMode::kNone,
                                                     uint32_t sync_every = 64);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// \brief Appends a record; returns its LSN (sequential from 0).
  Result<uint64_t> Append(std::string_view payload);

  Status Sync();

  /// \brief Replays all intact records from the beginning. Returns the
  /// number of records delivered.
  Result<uint64_t> Replay(
      const std::function<Status(uint64_t lsn, std::string_view payload)>& fn);

  /// \brief Discards the log contents (after a checkpoint has persisted
  /// everything elsewhere). LSNs continue from where they were.
  Status Reset();

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  WriteAheadLog(std::string path, int fd, SyncMode mode, uint32_t sync_every)
      : path_(std::move(path)), fd_(fd), mode_(mode), sync_every_(sync_every) {}

  std::string path_;
  int fd_;
  SyncMode mode_;
  uint32_t sync_every_;
  uint32_t appends_since_sync_ = 0;
  uint64_t next_lsn_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace tempspec

#endif  // TEMPSPEC_STORAGE_WAL_H_
