#include "query/algebra.h"

#include <gtest/gtest.h>

#include "testing.h"

namespace tempspec {
namespace {

using testing::MakeEventElement;
using testing::MakeIntervalElement;
using testing::T;

Element WithAttrs(Element e, Tuple attrs) {
  e.attributes = std::move(attrs);
  return e;
}

TEST(CoalesceTest, MergesMeetingAndOverlapping) {
  std::vector<Element> input = {
      WithAttrs(MakeIntervalElement(T(1), T(0), T(10), 1, 7), Tuple{"on"}),
      WithAttrs(MakeIntervalElement(T(2), T(10), T(20), 2, 7), Tuple{"on"}),
      WithAttrs(MakeIntervalElement(T(3), T(15), T(30), 3, 7), Tuple{"on"}),
      WithAttrs(MakeIntervalElement(T(4), T(40), T(50), 4, 7), Tuple{"on"}),
  };
  ASSERT_OK_AND_ASSIGN(auto out, Coalesce(input));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].valid.begin(), T(0));
  EXPECT_EQ(out[0].valid.end(), T(30));
  EXPECT_EQ(out[0].tt_begin, T(1));  // earliest insertion stamp survives
  EXPECT_EQ(out[1].valid.begin(), T(40));
}

TEST(CoalesceTest, DistinguishesObjectsAndValues) {
  std::vector<Element> input = {
      WithAttrs(MakeIntervalElement(T(1), T(0), T(10), 1, 1), Tuple{"on"}),
      WithAttrs(MakeIntervalElement(T(2), T(10), T(20), 2, 2), Tuple{"on"}),
      WithAttrs(MakeIntervalElement(T(3), T(10), T(20), 3, 1), Tuple{"off"}),
  };
  ASSERT_OK_AND_ASSIGN(auto out, Coalesce(input));
  EXPECT_EQ(out.size(), 3u);  // different objects / different values
}

TEST(CoalesceTest, DeletedElementsPassThrough) {
  Element deleted = WithAttrs(MakeIntervalElement(T(1), T(0), T(10), 1, 1),
                              Tuple{"on"});
  deleted.tt_end = T(5);
  std::vector<Element> input = {
      deleted,
      WithAttrs(MakeIntervalElement(T(6), T(5), T(15), 2, 1), Tuple{"on"}),
  };
  ASSERT_OK_AND_ASSIGN(auto out, Coalesce(input));
  EXPECT_EQ(out.size(), 2u);
}

TEST(CoalesceTest, RejectsEvents) {
  std::vector<Element> input = {MakeEventElement(T(1), T(0))};
  EXPECT_FALSE(Coalesce(input).ok());
}

TEST(TemporalJoinTest, IntervalIntersection) {
  std::vector<Element> assignments = {
      WithAttrs(MakeIntervalElement(T(1), T(0), T(100), 1, 7), Tuple{"apollo"}),
  };
  std::vector<Element> offices = {
      WithAttrs(MakeIntervalElement(T(2), T(50), T(200), 2, 7), Tuple{"bldg-3"}),
      WithAttrs(MakeIntervalElement(T(3), T(150), T(250), 3, 7), Tuple{"bldg-9"}),
      WithAttrs(MakeIntervalElement(T(4), T(0), T(10), 4, 8), Tuple{"bldg-1"}),
  };
  auto joined = TemporalJoin(assignments, offices);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].object, 7u);
  EXPECT_EQ(joined[0].valid.begin(), T(50));
  EXPECT_EQ(joined[0].valid.end(), T(100));
  EXPECT_EQ(joined[0].left.at(0).AsString(), "apollo");
  EXPECT_EQ(joined[0].right.at(0).AsString(), "bldg-3");
}

TEST(TemporalJoinTest, EventAndMixedStamps) {
  std::vector<Element> events = {
      WithAttrs(MakeEventElement(T(1), T(60), 1, 7), Tuple{int64_t{42}}),
      WithAttrs(MakeEventElement(T(2), T(500), 2, 7), Tuple{int64_t{43}}),
  };
  std::vector<Element> intervals = {
      WithAttrs(MakeIntervalElement(T(3), T(0), T(100), 3, 7), Tuple{"ctx"}),
  };
  auto joined = TemporalJoin(events, intervals);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_TRUE(joined[0].valid.is_event());
  EXPECT_EQ(joined[0].valid.at(), T(60));

  // Event-to-event requires equal stamps.
  std::vector<Element> other = {
      WithAttrs(MakeEventElement(T(4), T(60), 4, 7), Tuple{"x"}),
      WithAttrs(MakeEventElement(T(5), T(61), 5, 7), Tuple{"y"}),
  };
  EXPECT_EQ(TemporalJoin(events, other).size(), 1u);
}

TEST(TemporalJoinTest, DeletedElementsExcluded) {
  Element dead = WithAttrs(MakeIntervalElement(T(1), T(0), T(100), 1, 7),
                           Tuple{"gone"});
  dead.tt_end = T(2);
  std::vector<Element> left = {dead};
  std::vector<Element> right = {
      WithAttrs(MakeIntervalElement(T(3), T(0), T(100), 2, 7), Tuple{"here"}),
  };
  EXPECT_TRUE(TemporalJoin(left, right).empty());
}

TEST(RestrictProjectTest, Basics) {
  std::vector<Element> input = {
      WithAttrs(MakeEventElement(T(1), T(0), 1), Tuple{int64_t{5}, "a"}),
      WithAttrs(MakeEventElement(T(2), T(1), 2), Tuple{int64_t{9}, "b"}),
  };
  auto big = Restrict(input, [](const Tuple& t) { return t.at(0).AsInt64() > 6; });
  ASSERT_EQ(big.size(), 1u);
  EXPECT_EQ(big[0].attributes.at(1).AsString(), "b");

  ASSERT_OK_AND_ASSIGN(auto projected, Project(input, {1}));
  EXPECT_EQ(projected[0].attributes.size(), 1u);
  EXPECT_EQ(projected[0].attributes.at(0).AsString(), "a");
  EXPECT_FALSE(Project(input, {5}).ok());
}

TEST(ValidCoverageTest, ComputesCoveredFraction) {
  std::vector<Element> input = {
      MakeIntervalElement(T(1), T(0), T(25), 1, 1),
      MakeIntervalElement(T(2), T(20), T(50), 2, 1),  // overlaps previous
      MakeIntervalElement(T(3), T(75), T(100), 3, 1),
  };
  ASSERT_OK_AND_ASSIGN(double cover, ValidCoverage(input, T(0), T(100)));
  EXPECT_DOUBLE_EQ(cover, 0.75);
  ASSERT_OK_AND_ASSIGN(double partial, ValidCoverage(input, T(90), T(110)));
  EXPECT_DOUBLE_EQ(partial, 0.5);
  EXPECT_FALSE(ValidCoverage(input, T(10), T(10)).ok());
}

}  // namespace
}  // namespace tempspec
