// Append-only time index for monotone relations.
//
// Section 3.1: "At the implementation level, a degenerate temporal relation
// can be advantageously treated as a rollback relation due to the fact that
// relations are append-only and elements are entered in time-stamp order."
// When a relation is degenerate, sequential, or non-decreasing, its stamps
// arrive sorted, so the index is just the array itself plus binary search —
// no tree maintenance, perfect locality.
#ifndef TEMPSPEC_INDEX_APPEND_INDEX_H_
#define TEMPSPEC_INDEX_APPEND_INDEX_H_

#include <cstdint>
#include <vector>

#include "timex/time_point.h"
#include "util/result.h"

namespace tempspec {

/// \brief Sorted append-only index: keys must arrive in non-decreasing order.
class AppendOnlyIndex {
 public:
  /// \brief Appends a key/value pair; rejects out-of-order keys (a violation
  /// of the specialization that justified this index).
  Status Append(TimePoint key, uint64_t value);

  /// \brief Values with key in [lo, hi] (inclusive), via binary search.
  std::vector<uint64_t> Range(TimePoint lo, TimePoint hi) const;

  /// \brief Values with the exact key.
  std::vector<uint64_t> Lookup(TimePoint key) const { return Range(key, key); }

  /// \brief Position of the first key >= `key` (for replay cursors).
  size_t LowerBound(TimePoint key) const;
  /// \brief Position of the first key > `key`.
  size_t UpperBound(TimePoint key) const;

  uint64_t ValueAt(size_t pos) const { return values_[pos]; }
  TimePoint KeyAt(size_t pos) const { return TimePoint::FromMicros(keys_[pos]); }
  size_t size() const { return keys_.size(); }

 private:
  std::vector<int64_t> keys_;
  std::vector<uint64_t> values_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_INDEX_APPEND_INDEX_H_
