#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/optimizer.h"
#include "testing.h"
#include "util/random.h"
#include "workload/workloads.h"

namespace tempspec {
namespace {

using testing::T;

// --- Optimizer plan selection ------------------------------------------------

SchemaPtr EventSchema() {
  return Schema::Make("r",
                      {AttributeDef{"id", ValueType::kInt64,
                                    AttributeRole::kTimeInvariantKey}},
                      ValidTimeKind::kEvent, Granularity::Second())
      .ValueOrDie();
}

TEST(OptimizerTest, GeneralRelationUsesValidIndex) {
  SpecializationSet specs;
  SchemaPtr schema = EventSchema();
  Optimizer opt(specs, *schema);
  EXPECT_EQ(opt.PlanTimeslice(T(100)).strategy, ExecutionStrategy::kValidIndex);
}

TEST(OptimizerTest, DegenerateUsesRollbackEquivalence) {
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Degenerate());
  SchemaPtr schema = EventSchema();
  Optimizer opt(specs, *schema);
  const PlanChoice plan = opt.PlanTimeslice(T(100));
  EXPECT_EQ(plan.strategy, ExecutionStrategy::kRollbackEquivalence);
  // The window is the granule containing the query point.
  EXPECT_EQ(plan.tt_window.begin(), T(100));
  EXPECT_EQ(plan.tt_window.end(), T(101));
  EXPECT_NE(plan.rationale.find("degenerate"), std::string::npos);
}

TEST(OptimizerTest, BandedRelationGetsTransactionWindow) {
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::DelayedRetroactive(Duration::Seconds(30))
                     .ValueOrDie());
  specs.AddEvent(EventSpecialization::RetroactivelyBounded(Duration::Seconds(120))
                     .ValueOrDie());
  SchemaPtr schema = EventSchema();
  Optimizer opt(specs, *schema);
  const PlanChoice plan = opt.PlanTimeslice(T(1000));
  EXPECT_EQ(plan.strategy, ExecutionStrategy::kTransactionWindow);
  // vt - tt in [-120s, -30s]  =>  tt in [vt + 30s, vt + 120s].
  EXPECT_EQ(plan.tt_window.begin(), T(1030));
  EXPECT_EQ(plan.tt_window.end(), TimePoint::FromMicros(T(1120).micros() + 1));
}

TEST(OptimizerTest, CalendricBandsAreSkipped) {
  SpecializationSet specs;
  specs.AddEvent(
      EventSpecialization::RetroactivelyBounded(Duration::Months(1)).ValueOrDie());
  SchemaPtr schema = EventSchema();
  Optimizer opt(specs, *schema);
  // A calendric window would be anchor-dependent: fall back to the index.
  EXPECT_EQ(opt.PlanTimeslice(T(100)).strategy, ExecutionStrategy::kValidIndex);
  EXPECT_FALSE(opt.CombinedFixedBand().has_value());
}

TEST(OptimizerTest, MonotoneUsesBinarySearch) {
  SpecializationSet specs;
  specs.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  SchemaPtr schema = EventSchema();
  Optimizer opt(specs, *schema);
  EXPECT_EQ(opt.PlanTimeslice(T(100)).strategy,
            ExecutionStrategy::kMonotoneBinarySearch);
  EXPECT_TRUE(opt.ValidTimesMonotone());
  // Per-surrogate ordering does not make the global array monotone.
  SpecializationSet per_obj;
  per_obj.AddOrdering(
      OrderingSpec(OrderingKind::kNonDecreasing, SpecScope::kPerObjectSurrogate));
  Optimizer opt2(per_obj, *schema);
  EXPECT_FALSE(opt2.ValidTimesMonotone());
}

TEST(OptimizerTest, BandBeatsMonotoneInLadder) {
  SpecializationSet specs;
  specs.AddOrdering(OrderingSpec(OrderingKind::kSequential));
  specs.AddEvent(
      EventSpecialization::StronglyRetroactivelyBounded(Duration::Seconds(60))
          .ValueOrDie());
  SchemaPtr schema = EventSchema();
  Optimizer opt(specs, *schema);
  EXPECT_EQ(opt.PlanTimeslice(T(100)).strategy,
            ExecutionStrategy::kTransactionWindow);
}

TEST(OptimizerTest, IntervalRelationAnchoredBandsDeriveWindow) {
  SchemaPtr schema =
      Schema::Make("spans",
                   {AttributeDef{"id", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey}},
                   ValidTimeKind::kInterval, Granularity::Second())
          .ValueOrDie();
  // Intervals are recorded after they end (vt_e retroactive, within 60s) and
  // begin at most 1h before recording.
  SpecializationSet specs;
  specs.AddAnchoredEvent(AnchoredEventSpec(
      EventSpecialization::StronglyRetroactivelyBounded(Duration::Seconds(60))
          .ValueOrDie(),
      ValidAnchor::kEnd));
  specs.AddAnchoredEvent(AnchoredEventSpec(
      EventSpecialization::RetroactivelyBounded(Duration::Hours(1)).ValueOrDie(),
      ValidAnchor::kBegin));
  Optimizer opt(specs, *schema);
  const PlanChoice plan = opt.PlanTimeslice(T(10000));
  ASSERT_EQ(plan.strategy, ExecutionStrategy::kTransactionWindow);
  // vt_e - tt ∈ [-60s, 0] gives tt >= q - 0; vt_b - tt ∈ [-1h, inf) gives
  // tt <= q + 1h.
  EXPECT_EQ(plan.tt_window.begin(), T(10000));
  EXPECT_EQ(plan.tt_window.end(),
            TimePoint::FromMicros(T(10000 + 3600).micros() + 1));
}

TEST(OptimizerTest, IntervalWindowStrategyMatchesScan) {
  SchemaPtr schema =
      Schema::Make("sessions",
                   {AttributeDef{"id", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey}},
                   ValidTimeKind::kInterval, Granularity::Second())
          .ValueOrDie();
  RelationOptions options;
  options.schema = schema;
  auto clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  options.clock = clock;
  // Sessions recorded when they end (vt_e within 10s of tt), lasting at most
  // ~2h (vt_b no more than 2h before tt).
  options.specializations.AddAnchoredEvent(AnchoredEventSpec(
      EventSpecialization::StronglyRetroactivelyBounded(Duration::Seconds(10))
          .ValueOrDie(),
      ValidAnchor::kEnd));
  options.specializations.AddAnchoredEvent(AnchoredEventSpec(
      EventSpecialization::RetroactivelyBounded(Duration::Hours(2)).ValueOrDie(),
      ValidAnchor::kBegin));
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  Random rng(19);
  for (int i = 0; i < 2000; ++i) {
    const int64_t end = 10000 + i * 30 + rng.Uniform(0, 5);
    const int64_t begin = end - rng.Uniform(60, 7000);
    clock->SetTo(T(end + rng.Uniform(0, 9)));
    ASSERT_OK(
        rel->InsertInterval(i % 8, T(begin), T(end), Tuple{int64_t{i % 8}})
            .status());
  }
  QueryExecutor exec(*rel);
  PlanChoice scan{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
  for (int64_t q : {10000, 20000, 40000, 65000}) {
    const PlanChoice plan = exec.optimizer().PlanTimeslice(T(q));
    ASSERT_EQ(plan.strategy, ExecutionStrategy::kTransactionWindow) << q;
    QueryStats fast_stats, slow_stats;
    const auto fast = exec.TimesliceWith(plan, T(q), &fast_stats);
    const auto slow = exec.TimesliceWith(scan, T(q), &slow_stats);
    EXPECT_EQ(fast.size(), slow.size()) << q;
    EXPECT_LT(fast_stats.elements_examined, slow_stats.elements_examined) << q;
  }
}

// --- Executor: every strategy returns identical results ----------------------

class StrategyEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadConfig config;
    config.num_objects = 8;
    config.ops_per_object = 60;
    ASSERT_OK_AND_ASSIGN(
        scenario_, MakeProcessMonitoring(config, Duration::Seconds(30),
                                         Duration::Seconds(120),
                                         Duration::Minutes(1)));
    ASSERT_OK(GenerateProcessMonitoring(config, Duration::Seconds(30),
                                        Duration::Seconds(120),
                                        Duration::Minutes(1), &scenario_));
  }
  ScenarioRelation scenario_;
};

TEST_F(StrategyEquivalenceTest, AllTimesliceStrategiesAgree) {
  QueryExecutor exec(*scenario_.relation);
  // Deliberately run every strategy, not just the planned one.
  const Optimizer& opt = exec.optimizer();
  ASSERT_TRUE(opt.CombinedFixedBand().has_value());

  for (const Element& probe : scenario_.relation->elements()) {
    if (probe.element_surrogate % 17 != 0) continue;  // sample some points
    const TimePoint vt = probe.valid.at();

    PlanChoice scan{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
    PlanChoice index{ExecutionStrategy::kValidIndex, TimeInterval::All(), ""};
    const PlanChoice window = opt.PlanTimeslice(vt);
    ASSERT_EQ(window.strategy, ExecutionStrategy::kTransactionWindow);

    auto sorted_ids = [](std::vector<Element> v) {
      std::vector<ElementSurrogate> ids;
      for (const auto& e : v) ids.push_back(e.element_surrogate);
      std::sort(ids.begin(), ids.end());
      return ids;
    };
    const auto a = sorted_ids(exec.TimesliceWith(scan, vt));
    const auto b = sorted_ids(exec.TimesliceWith(index, vt));
    const auto c = sorted_ids(exec.TimesliceWith(window, vt));
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    EXPECT_FALSE(a.empty());
  }
}

TEST_F(StrategyEquivalenceTest, WindowExaminesFewerElements) {
  QueryExecutor exec(*scenario_.relation);
  const TimePoint vt = scenario_.relation->elements()[100].valid.at();
  QueryStats scan_stats, window_stats;
  PlanChoice scan{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
  exec.TimesliceWith(scan, vt, &scan_stats);
  exec.Timeslice(vt, &window_stats);
  EXPECT_EQ(scan_stats.elements_examined, scenario_.relation->size());
  EXPECT_LT(window_stats.elements_examined, scan_stats.elements_examined / 4);
  EXPECT_EQ(scan_stats.results, window_stats.results);
}

TEST(ExecutorTest, CurrentAndRollbackQueries) {
  RelationOptions options;
  options.schema = EventSchema();
  auto clock = std::make_shared<LogicalClock>(T(100), Duration::Seconds(10));
  options.clock = clock;
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  ASSERT_OK_AND_ASSIGN(ElementSurrogate a,
                       rel->InsertEvent(1, T(90), Tuple{int64_t{1}}));
  ASSERT_OK(rel->InsertEvent(2, T(95), Tuple{int64_t{2}}).status());
  ASSERT_OK(rel->LogicalDelete(a));

  QueryExecutor exec(*rel);
  EXPECT_EQ(exec.Current().size(), 1u);
  EXPECT_EQ(exec.Rollback(T(105)).size(), 1u);
  EXPECT_EQ(exec.Rollback(T(115)).size(), 2u);
  EXPECT_EQ(exec.Rollback(T(125)).size(), 1u);
}

TEST(ExecutorTest, TimesliceAsOfBitemporal) {
  RelationOptions options;
  options.schema = EventSchema();
  auto clock = std::make_shared<LogicalClock>(T(100), Duration::Seconds(10));
  options.clock = clock;
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  // Fact about vt=50 stored at tt=100, corrected (deleted) at tt=110.
  ASSERT_OK_AND_ASSIGN(ElementSurrogate a,
                       rel->InsertEvent(1, T(50), Tuple{int64_t{1}}));
  ASSERT_OK(rel->LogicalDelete(a));

  QueryExecutor exec(*rel);
  // As believed at tt=105: the fact exists.
  EXPECT_EQ(exec.TimesliceAsOf(T(50), T(105)).size(), 1u);
  // As believed now: it does not.
  EXPECT_EQ(exec.TimesliceAsOf(T(50), T(200)).size(), 0u);
}

TEST(ExecutorTest, MonotoneBinarySearchCorrectness) {
  RelationOptions options;
  options.schema = EventSchema();
  auto clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  options.clock = clock;
  options.specializations.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  Random rng(3);
  int64_t vt = 0;
  for (int i = 0; i < 500; ++i) {
    vt += rng.Uniform(0, 3);
    ASSERT_OK(rel->InsertEvent(1, T(vt), Tuple{int64_t{1}}).status());
  }
  QueryExecutor exec(*rel);
  ASSERT_EQ(exec.optimizer().PlanTimeslice(T(0)).strategy,
            ExecutionStrategy::kMonotoneBinarySearch);
  PlanChoice scan{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
  for (int64_t q : {0, 5, 100, 250, 600, 10000}) {
    QueryStats fast_stats;
    const auto fast = exec.Timeslice(T(q), &fast_stats);
    const auto slow = exec.TimesliceWith(scan, T(q));
    EXPECT_EQ(fast.size(), slow.size()) << "q=" << q;
    EXPECT_LE(fast_stats.elements_examined, fast.size() + 1);
  }
  // Range queries too.
  const auto fast = exec.ValidRange(T(100), T(200));
  const auto slow = exec.ValidRangeWith(scan, T(100), T(200));
  EXPECT_EQ(fast.size(), slow.size());
}

TEST(ExecutorTest, DegenerateRollbackEquivalence) {
  WorkloadConfig config;
  config.num_objects = 4;
  config.ops_per_object = 50;
  ASSERT_OK_AND_ASSIGN(auto scenario,
                       MakeDegenerateMonitoring(config, Duration::Seconds(10)));
  ASSERT_OK(GenerateDegenerateMonitoring(config, Duration::Seconds(10), &scenario));
  QueryExecutor exec(*scenario.relation);
  const TimePoint vt = scenario.relation->elements()[25].valid.at();
  QueryStats stats;
  const auto result = exec.Timeslice(vt, &stats);
  EXPECT_EQ(result.size(), 1u);
  // Only the one granule's worth of elements examined.
  EXPECT_LE(stats.elements_examined, 2u);
  PlanChoice scan{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
  EXPECT_EQ(exec.TimesliceWith(scan, vt).size(), result.size());
}

}  // namespace
}  // namespace tempspec
