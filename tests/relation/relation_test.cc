#include "relation/temporal_relation.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "testing.h"

namespace tempspec {
namespace {

using testing::T;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("tempspec_rel_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

SchemaPtr EventSchema(const std::string& name = "measurements") {
  return Schema::Make(name,
                      {AttributeDef{"sensor", ValueType::kInt64,
                                    AttributeRole::kTimeInvariantKey},
                       AttributeDef{"value", ValueType::kDouble,
                                    AttributeRole::kTimeVarying}},
                      ValidTimeKind::kEvent, Granularity::Second())
      .ValueOrDie();
}

RelationOptions BaseOptions(std::shared_ptr<LogicalClock>* clock_out = nullptr) {
  RelationOptions options;
  options.schema = EventSchema();
  auto clock = std::make_shared<LogicalClock>(T(1000), Duration::Seconds(10));
  if (clock_out) *clock_out = clock;
  options.clock = clock;
  return options;
}

TEST(RelationTest, InsertAssignsStampsAndSurrogates) {
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(ElementSurrogate a,
                       rel->InsertEvent(1, T(900), Tuple{int64_t{1}, 20.5}));
  ASSERT_OK_AND_ASSIGN(ElementSurrogate b,
                       rel->InsertEvent(1, T(950), Tuple{int64_t{1}, 21.0}));
  EXPECT_NE(a, b);
  ASSERT_OK_AND_ASSIGN(Element ea, rel->GetElement(a));
  EXPECT_EQ(ea.tt_begin, T(1000));
  EXPECT_TRUE(ea.IsCurrent());
  ASSERT_OK_AND_ASSIGN(Element eb, rel->GetElement(b));
  EXPECT_EQ(eb.tt_begin, T(1010));
  EXPECT_EQ(rel->size(), 2u);
}

TEST(RelationTest, SchemaValidation) {
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(BaseOptions()));
  // Wrong arity.
  EXPECT_FALSE(rel->InsertEvent(1, T(1), Tuple{int64_t{1}}).ok());
  // Wrong type.
  EXPECT_FALSE(rel->InsertEvent(1, T(1), Tuple{int64_t{1}, "nope"}).ok());
  // Interval stamp into an event relation.
  EXPECT_FALSE(rel->InsertInterval(1, T(1), T(2), Tuple{int64_t{1}, 1.0}).ok());
  EXPECT_EQ(rel->size(), 0u);
}

TEST(RelationTest, LogicalDeleteClosesExistenceInterval) {
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(ElementSurrogate id,
                       rel->InsertEvent(1, T(900), Tuple{int64_t{1}, 1.0}));
  ASSERT_OK(rel->LogicalDelete(id));
  ASSERT_OK_AND_ASSIGN(Element e, rel->GetElement(id));
  EXPECT_FALSE(e.IsCurrent());
  EXPECT_EQ(e.tt_end, T(1010));
  // Double delete rejected; missing element rejected.
  EXPECT_TRUE(rel->LogicalDelete(id).IsInvalidArgument());
  EXPECT_TRUE(rel->LogicalDelete(9999).IsNotFound());
}

TEST(RelationTest, ModifySharesOneTransactionTime) {
  // Section 2: a modification is a logical delete plus an insert with a
  // fresh surrogate, both indexed by the SAME transaction time.
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(ElementSurrogate old_id,
                       rel->InsertEvent(1, T(900), Tuple{int64_t{1}, 1.0}));
  ASSERT_OK_AND_ASSIGN(
      ElementSurrogate new_id,
      rel->Modify(old_id, ValidTime::Event(T(905)), Tuple{int64_t{1}, 2.0}));
  EXPECT_NE(new_id, old_id);
  ASSERT_OK_AND_ASSIGN(Element old_e, rel->GetElement(old_id));
  ASSERT_OK_AND_ASSIGN(Element new_e, rel->GetElement(new_id));
  EXPECT_EQ(old_e.tt_end, new_e.tt_begin);
  // Exactly one historical state boundary: before it the old element, after
  // it the new one.
  const TimePoint boundary = new_e.tt_begin;
  auto before = rel->StateAt(TimePoint::FromMicros(boundary.micros() - 1));
  auto after = rel->StateAt(boundary);
  ASSERT_EQ(before.size(), 1u);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(before[0].element_surrogate, old_id);
  EXPECT_EQ(after[0].element_surrogate, new_id);
}

TEST(RelationTest, RollbackStatesFollowHistory) {
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(ElementSurrogate a,
                       rel->InsertEvent(1, T(900), Tuple{int64_t{1}, 1.0}));
  ASSERT_OK(rel->InsertEvent(2, T(910), Tuple{int64_t{2}, 2.0}).status());
  ASSERT_OK(rel->LogicalDelete(a));
  // tts: 1000, 1010, 1020.
  EXPECT_EQ(rel->StateAt(T(999)).size(), 0u);
  EXPECT_EQ(rel->StateAt(T(1000)).size(), 1u);
  EXPECT_EQ(rel->StateAt(T(1010)).size(), 2u);
  EXPECT_EQ(rel->StateAt(T(1020)).size(), 1u);
  EXPECT_EQ(rel->CurrentState().size(), 1u);
}

TEST(RelationTest, PerSurrogatePartitions) {
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(BaseOptions()));
  ASSERT_OK(rel->InsertEvent(7, T(900), Tuple{int64_t{7}, 1.0}).status());
  ASSERT_OK(rel->InsertEvent(8, T(901), Tuple{int64_t{8}, 2.0}).status());
  ASSERT_OK(rel->InsertEvent(7, T(902), Tuple{int64_t{7}, 3.0}).status());
  EXPECT_EQ(rel->Objects(), (std::vector<ObjectSurrogate>{7, 8}));
  const auto lifeline = rel->PartitionOf(7);
  ASSERT_EQ(lifeline.size(), 2u);
  EXPECT_EQ(lifeline[0]->valid.at(), T(900));
  EXPECT_EQ(lifeline[1]->valid.at(), T(902));
  EXPECT_TRUE(rel->PartitionOf(99).empty());
}

TEST(RelationTest, ConstraintRejectionLeavesNoTrace) {
  RelationOptions options = BaseOptions();
  options.specializations.AddEvent(EventSpecialization::Retroactive());
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  ASSERT_OK(rel->InsertEvent(1, T(900), Tuple{int64_t{1}, 1.0}).status());
  // Future valid time violates retroactivity.
  auto result = rel->InsertEvent(1, T(5000), Tuple{int64_t{1}, 2.0});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsConstraintViolation());
  EXPECT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->backlog().size(), 1u);
  // Relation remains usable.
  EXPECT_OK(rel->InsertEvent(1, T(950), Tuple{int64_t{1}, 3.0}).status());
  EXPECT_OK(rel->CheckExtension());
}

TEST(RelationTest, DeclaredSpecsValidatedAtOpen) {
  RelationOptions options = BaseOptions();
  options.specializations.AddEvent(EventSpecialization::Retroactive());
  options.specializations.AddEvent(
      EventSpecialization::EarlyPredictive(Duration::Days(1)).ValueOrDie());
  EXPECT_FALSE(TemporalRelation::Open(std::move(options)).ok());
}

TEST(RelationTest, TransactionIndexIsAppendOnly) {
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(BaseOptions()));
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK(rel->InsertEvent(1, T(i), Tuple{int64_t{1}, 0.0}).status());
  }
  EXPECT_EQ(rel->transaction_index().size(), 50u);
  // tt range [1000, 1090] covers the first 10 inserts.
  EXPECT_EQ(rel->transaction_index().Range(T(1000), T(1090)).size(), 10u);
}

TEST(RelationTest, ValidIndexAnswersStabs) {
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(BaseOptions()));
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(rel->InsertEvent(1, T(500 + i), Tuple{int64_t{1}, 0.0}).status());
  }
  EXPECT_EQ(rel->valid_index().Stab(T(507)).size(), 1u);
  EXPECT_EQ(rel->valid_index().Stab(T(499)).size(), 0u);
}

TEST(RelationTest, DurableRecoveryRestoresEverything) {
  TempDir dir;
  std::shared_ptr<LogicalClock> clock;
  ElementSurrogate deleted_id = 0;
  {
    RelationOptions options = BaseOptions(&clock);
    options.storage.directory = dir.path();
    options.specializations.AddEvent(EventSpecialization::Retroactive());
    ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
    ASSERT_OK_AND_ASSIGN(deleted_id,
                         rel->InsertEvent(1, T(900), Tuple{int64_t{1}, 1.0}));
    ASSERT_OK(rel->InsertEvent(2, T(950), Tuple{int64_t{2}, 2.0}).status());
    ASSERT_OK(rel->LogicalDelete(deleted_id));
    ASSERT_OK(rel->Checkpoint());
    ASSERT_OK(rel->InsertEvent(3, T(1015), Tuple{int64_t{3}, 3.0}).status());
    // No checkpoint for the last insert: it must recover from the WAL.
  }
  RelationOptions options = BaseOptions();
  options.storage.directory = dir.path();
  options.specializations.AddEvent(EventSpecialization::Retroactive());
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  EXPECT_EQ(rel->size(), 3u);
  ASSERT_OK_AND_ASSIGN(Element e, rel->GetElement(deleted_id));
  EXPECT_FALSE(e.IsCurrent());
  EXPECT_EQ(rel->CurrentState().size(), 2u);
  EXPECT_OK(rel->CheckExtension());
  // New inserts continue beyond recovered stamps and surrogates.
  ASSERT_OK_AND_ASSIGN(ElementSurrogate next,
                       rel->InsertEvent(4, T(1020), Tuple{int64_t{4}, 4.0}));
  EXPECT_GT(next, 3u);
  ASSERT_OK_AND_ASSIGN(Element ne, rel->GetElement(next));
  EXPECT_GT(ne.tt_begin, T(1030));
}

TEST(RelationTest, RecoveryEnforcesConstraintsOnNewInserts) {
  TempDir dir;
  {
    RelationOptions options = BaseOptions();
    options.storage.directory = dir.path();
    options.specializations.AddOrdering(
        OrderingSpec(OrderingKind::kNonDecreasing));
    ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
    ASSERT_OK(rel->InsertEvent(1, T(500), Tuple{int64_t{1}, 1.0}).status());
  }
  RelationOptions options = BaseOptions();
  options.storage.directory = dir.path();
  options.specializations.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  // The online checker state was rebuilt from the recovered extension:
  // a valid time before 500 is rejected.
  EXPECT_FALSE(rel->InsertEvent(1, T(400), Tuple{int64_t{1}, 2.0}).ok());
  EXPECT_OK(rel->InsertEvent(1, T(600), Tuple{int64_t{1}, 3.0}).status());
}

TEST(RelationTest, SnapshotRollbackMatchesScan) {
  RelationOptions options = BaseOptions();
  options.snapshot_interval = 16;
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  std::vector<ElementSurrogate> ids;
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK_AND_ASSIGN(
        ElementSurrogate id,
        rel->InsertEvent(i % 5, T(i), Tuple{int64_t{i % 5}, 0.0}));
    ids.push_back(id);
    if (i % 3 == 0 && i > 0) ASSERT_OK(rel->LogicalDelete(ids[i / 2]));
  }
  ASSERT_NE(rel->snapshots(), nullptr);
  EXPECT_GT(rel->snapshots()->snapshot_count(), 0u);
  // Compare snapshot-backed StateAt with a manual scan.
  for (int64_t tt : {1000, 1500, 2000, 2500, 5000}) {
    auto fast = rel->StateAt(T(tt));
    size_t expected = 0;
    for (const Element& e : rel->elements()) {
      if (e.ExistsAt(T(tt))) ++expected;
    }
    EXPECT_EQ(fast.size(), expected) << "tt=" << tt;
  }
}

TEST(RelationTest, StatsReflectPopulation) {
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(BaseOptions()));
  ASSERT_OK_AND_ASSIGN(ElementSurrogate a,
                       rel->InsertEvent(1, T(900), Tuple{int64_t{1}, 1.0}));
  ASSERT_OK(rel->InsertEvent(2, T(910), Tuple{int64_t{2}, 2.0}).status());
  ASSERT_OK(rel->LogicalDelete(a));
  const auto stats = rel->GetStats();
  EXPECT_EQ(stats.elements, 2u);
  EXPECT_EQ(stats.current_elements, 1u);
  EXPECT_EQ(stats.objects, 2u);
  EXPECT_EQ(stats.backlog_operations, 3u);
  EXPECT_GT(stats.backlog_bytes, 0u);
  EXPECT_EQ(stats.first_transaction, T(1000));
  EXPECT_EQ(stats.last_transaction, T(1020));
}

TEST(RelationTest, VacuumRemovesDeadHistory) {
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(BaseOptions()));
  // tts: inserts at 1000,1010,1020; deletes at 1030 (a), 1040 (b).
  ASSERT_OK_AND_ASSIGN(ElementSurrogate a,
                       rel->InsertEvent(1, T(900), Tuple{int64_t{1}, 1.0}));
  ASSERT_OK_AND_ASSIGN(ElementSurrogate b,
                       rel->InsertEvent(2, T(905), Tuple{int64_t{2}, 2.0}));
  ASSERT_OK_AND_ASSIGN(ElementSurrogate c,
                       rel->InsertEvent(3, T(910), Tuple{int64_t{3}, 3.0}));
  ASSERT_OK(rel->LogicalDelete(a));
  ASSERT_OK(rel->LogicalDelete(b));

  // Horizon between the two deletions: only `a` is fully dead before it.
  ASSERT_OK_AND_ASSIGN(size_t removed, rel->VacuumBefore(T(1035)));
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_TRUE(rel->GetElement(a).status().IsNotFound());
  EXPECT_OK(rel->GetElement(b).status());
  EXPECT_OK(rel->GetElement(c).status());

  // Rollback at/after the horizon is unchanged: at 1035 only b and c lived.
  EXPECT_EQ(rel->StateAt(T(1035)).size(), 2u);
  EXPECT_EQ(rel->StateAt(T(1045)).size(), 1u);
  EXPECT_EQ(rel->CurrentState().size(), 1u);
  // Indexes were rebuilt consistently.
  EXPECT_EQ(rel->transaction_index().size(), 2u);
  EXPECT_EQ(rel->valid_index().Stab(T(905)).size(), 1u);
  EXPECT_EQ(rel->valid_index().Stab(T(900)).size(), 0u);
  // A second vacuum with nothing to do is a no-op.
  ASSERT_OK_AND_ASSIGN(size_t again, rel->VacuumBefore(T(1035)));
  EXPECT_EQ(again, 0u);
  // New updates still work after the rebuild.
  EXPECT_OK(rel->InsertEvent(4, T(950), Tuple{int64_t{4}, 4.0}).status());
}

TEST(RelationTest, VacuumRebuildsSnapshotCache) {
  RelationOptions options = BaseOptions();
  options.snapshot_interval = 8;
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  std::vector<ElementSurrogate> ids;
  for (int i = 0; i < 60; ++i) {
    ASSERT_OK_AND_ASSIGN(ElementSurrogate id,
                         rel->InsertEvent(i % 4, T(i), Tuple{int64_t{i % 4}, 0.0}));
    ids.push_back(id);
  }
  for (int i = 0; i < 20; ++i) ASSERT_OK(rel->LogicalDelete(ids[i]));
  const TimePoint horizon = rel->LastTransactionTime();
  ASSERT_OK_AND_ASSIGN(size_t removed, rel->VacuumBefore(horizon));
  EXPECT_EQ(removed, 20u);
  // The snapshot cache was rebuilt over the compacted backlog: StateAt
  // matches a manual scan at stamps after the horizon.
  ASSERT_NE(rel->snapshots(), nullptr);
  for (const TimePoint tt : {horizon, TimePoint::FromMicros(horizon.micros() + 1)}) {
    size_t expected = 0;
    for (const Element& e : rel->elements()) {
      if (e.ExistsAt(tt)) ++expected;
    }
    EXPECT_EQ(rel->StateAt(tt).size(), expected);
    EXPECT_EQ(expected, 40u);
  }
}

TEST(RelationTest, VacuumDurableSurvivesReopen) {
  TempDir dir;
  ElementSurrogate dead = 0, alive = 0;
  {
    RelationOptions options = BaseOptions();
    options.storage.directory = dir.path();
    ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
    ASSERT_OK_AND_ASSIGN(dead,
                         rel->InsertEvent(1, T(900), Tuple{int64_t{1}, 1.0}));
    ASSERT_OK_AND_ASSIGN(alive,
                         rel->InsertEvent(2, T(905), Tuple{int64_t{2}, 2.0}));
    ASSERT_OK(rel->LogicalDelete(dead));
    ASSERT_OK(rel->Checkpoint());
    ASSERT_OK_AND_ASSIGN(size_t removed,
                         rel->VacuumBefore(TimePoint::Max()));
    EXPECT_EQ(removed, 1u);
  }
  RelationOptions options = BaseOptions();
  options.storage.directory = dir.path();
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  EXPECT_EQ(rel->size(), 1u);
  EXPECT_TRUE(rel->GetElement(dead).status().IsNotFound());
  EXPECT_OK(rel->GetElement(alive).status());
}

TEST(RelationTest, IntervalRelationEndToEnd) {
  RelationOptions options;
  options.schema =
      Schema::Make("assignments",
                   {AttributeDef{"emp", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey}},
                   ValidTimeKind::kInterval, Granularity::Second())
          .ValueOrDie();
  options.clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  options.specializations.AddSuccessive(
      SuccessiveSpec::Contiguous(SpecScope::kPerObjectSurrogate));
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  ASSERT_OK(rel->InsertInterval(1, T(100), T(200), Tuple{int64_t{1}}).status());
  ASSERT_OK(rel->InsertInterval(1, T(200), T(300), Tuple{int64_t{1}}).status());
  // Gap: rejected by the contiguity constraint.
  EXPECT_FALSE(rel->InsertInterval(1, T(350), T(400), Tuple{int64_t{1}}).ok());
  // Event stamp into an interval relation: rejected.
  EXPECT_FALSE(rel->Insert(1, ValidTime::Event(T(300)), Tuple{int64_t{1}}).ok());
  EXPECT_EQ(rel->size(), 2u);
}

}  // namespace
}  // namespace tempspec
