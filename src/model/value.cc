#include "model/value.h"

#include <sstream>

namespace tempspec {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kTime:
      return "TIME";
  }
  return "UNKNOWN";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      std::ostringstream ss;
      ss << AsDouble();
      return ss.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
    case ValueType::kTime:
      return AsTime().ToString();
  }
  return "?";
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kBool:
      return 1 + 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
    case ValueType::kTime:
      return 1 + 8;
    case ValueType::kString:
      return 1 + 4 + AsString().size();
  }
  return 1;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace tempspec
