// BufferPool eviction under write pressure, and its interaction with crash
// recovery: with a tiny pool and large records, a single checkpoint batch
// spans more pages than the pool holds, so dirty pages are written back by
// *eviction* — before FlushAll, and long before the WAL reset. The recovery
// protocol must not care when a dirty page reached disk, only that the WAL
// reset comes after all of them: every entry is either on a CRC-valid page
// or still in the WAL, whatever interleaving the eviction policy produced.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "storage/backlog.h"
#include "testing_crash.h"
#include "util/failpoint.h"

namespace tempspec {
namespace testing {
namespace {

constexpr uint64_t kTriggers = 200;
constexpr size_t kNumOps = 120;
constexpr size_t kCheckpointEvery = 30;
constexpr uint64_t kSeedBase = 0xB0FFEE;
// Records average ~500 bytes: a 30-op checkpoint batch needs ~3 pages, more
// than the 2-frame pool, so writeback-by-eviction happens mid-checkpoint.
constexpr size_t kPoolPages = 2;
constexpr size_t kPayloadBytes = 900;

uint64_t TrialSeed(uint64_t trigger) { return kSeedBase ^ (trigger * 1000003ull); }

// Sanity (no faults): the tiny pool really does evict dirty pages during
// checkpoints, and a cleanly closed store still recovers byte-identically.
TEST(BufferPoolCrashTest, EvictionUnderWritePressure) {
  FailpointRegistry::Instance().DisarmAll();
  CrashTempDir dir;
  const std::vector<BacklogEntry> ops =
      MakeCrashWorkload(kSeedBase, kNumOps, kPayloadBytes);

  BacklogStore::Options options;
  options.directory = dir.path();
  options.sync_mode = SyncMode::kEveryN;
  options.sync_every = 8;
  options.buffer_pool_pages = kPoolPages;

  {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<BacklogStore> store,
                         BacklogStore::Open(options));
    for (size_t i = 0; i < ops.size(); ++i) {
      ASSERT_OK(store->Append(ops[i]));
      if ((i + 1) % kCheckpointEvery == 0) ASSERT_OK(store->Checkpoint());
    }
    ASSERT_OK(store->Checkpoint());
    EXPECT_GT(store->buffer_pool()->evictions(), 0u)
        << "the workload never overflowed the pool; this suite is not "
           "exercising eviction writeback at all";
  }

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<BacklogStore> store,
                       BacklogStore::Open(options));
  ASSERT_EQ(store->entries().size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    ASSERT_EQ(store->entries()[i].Encode(), ops[i].Encode()) << "op " << i;
  }
}

// Crash sweep over the page-write path while evictions interleave with the
// checkpoint: whichever page the crash lands on (evicted early or flushed
// late), recovery must hold the prefix + checkpoint-floor contract.
TEST(BufferPoolCrashTest, CrashDuringEvictionWriteback) {
  CrashStrategy s;
  s.name = "eviction-writeback-crash";
  s.site = "disk.write_page";
  s.kind = FaultKind::kShortWrite;
  s.pool_pages = kPoolPages;
  s.payload_bytes = kPayloadBytes;

  FailpointRegistry::Instance().ResetCounters();
  size_t crashed_trials = 0;
  for (uint64_t trigger = 0; trigger < kTriggers; ++trigger) {
    SCOPED_TRACE("trigger=" + std::to_string(trigger));
    TrialOutcome out;
    RunBacklogCrashTrial(s, trigger, TrialSeed(trigger), kNumOps,
                         kCheckpointEvery, &out);
    if (::testing::Test::HasFatalFailure()) return;
    if (out.crashed) ++crashed_trials;
  }
  EXPECT_GT(crashed_trials, 0u);
  const FaultCounters c = PrintFaultSummary("eviction-writeback-crash");
  EXPECT_GT(c.injected, 0u);
  EXPECT_GT(c.short_writes, 0u);
}

}  // namespace
}  // namespace testing
}  // namespace tempspec
