// Query plans: how a temporal query will be executed, and why.
//
// The paper's central systems claim is that specialization semantics, "when
// captured by an appropriately extended database system, may be used for
// selecting appropriate storage structures, indexing techniques, and query
// processing strategies." The optimizer here turns a declared
// SpecializationSet into an execution strategy for the three query classes
// of Section 1: current, historical (timeslice), and rollback queries.
#ifndef TEMPSPEC_QUERY_PLAN_H_
#define TEMPSPEC_QUERY_PLAN_H_

#include <cstdint>
#include <string>

#include "timex/interval.h"

namespace tempspec {

enum class ExecutionStrategy : uint8_t {
  /// Examine every element.
  kFullScan,
  /// Probe the valid-time interval index.
  kValidIndex,
  /// Derive a transaction-time window from the declared band and range-scan
  /// the (always monotone) transaction-time index.
  kTransactionWindow,
  /// Degenerate relations: valid time equals transaction time (within the
  /// granularity), so a timeslice IS a rollback — answered on the
  /// append-only store.
  kRollbackEquivalence,
  /// Non-decreasing / sequential relations: valid times are sorted in
  /// insertion order, so binary search directly on the element array.
  kMonotoneBinarySearch,
};

const char* ExecutionStrategyToString(ExecutionStrategy s);

/// \brief Stable snake_case token for metric names and trace attributes
/// (e.g. "valid_index"), as opposed to the prose ToString form.
const char* ExecutionStrategyToToken(ExecutionStrategy s);

/// \brief How the candidate range of a strategy is scanned: row-at-a-time
/// over Element objects, or one of the branch-free columnar kernels over the
/// relation's StampStore (query/kernels.h). Each specialized kernel is the
/// vectorized form of one Figure-1 pane family — it reads only the stamp
/// columns that pane leaves underived.
enum class ScanKernel : uint8_t {
  /// Walk std::vector<Element> with a per-row predicate (the baseline, and
  /// the only option for non-contiguous candidates such as index probes).
  kRowAtATime,
  /// Generic two-half-plane columnar predicate: both vt columns plus the
  /// existence column. Correct for every relation; the fallback under drift.
  kGeneric,
  /// Degenerate pane (vt = tt): inside the granule-aligned tt window a
  /// single vt column decides membership.
  kDegenerate,
  /// Bounded/determined panes (fixed vt - tt band): events only, so vt_end
  /// is derivable (at + 1) and its column is skipped entirely.
  kBanded,
  /// Non-decreasing/sequential panes: the vt_start column is sorted, so the
  /// vt tests collapse into a binary-searched subrange and the scan tests
  /// existence only.
  kMonotone,
  /// Current/rollback queries: existence columns only, no valid-time test.
  kExistence,
};

const char* ScanKernelToToken(ScanKernel k);

/// \brief The optimizer's decision for one query.
struct PlanChoice {
  ExecutionStrategy strategy = ExecutionStrategy::kFullScan;
  /// For kTransactionWindow / kRollbackEquivalence: the transaction-time
  /// window guaranteed (by the declared band) to contain every match.
  TimeInterval tt_window = TimeInterval::All();
  /// Human-readable justification naming the specialization used.
  std::string rationale;
  /// Scan kernel for the strategy's candidate range. Defaults to the
  /// row-at-a-time walk so hand-built plans (tests, naive baselines) keep
  /// the pre-columnar behavior.
  ScanKernel kernel = ScanKernel::kRowAtATime;
};

/// \brief Execution counters for measuring strategy effectiveness.
///
/// Time is reported on two distinct axes that a parallel scan pulls apart:
/// `wall_micros` is elapsed time observed by the caller, while `cpu_micros`
/// sums the time each morsel spent scanning across all workers. Serially
/// cpu <= wall (the scan is one slice of the elapsed time); under
/// parallelism cpu typically exceeds wall — that gap IS the speedup. The
/// former `elapsed_micros` field conflated the two under Merge(), adding
/// per-worker durations into a field documented as wall-clock.
struct QueryStats {
  uint64_t elements_examined = 0;
  uint64_t index_probes = 0;
  uint64_t results = 0;
  /// Wall-clock time spent inside the executor, in microseconds. Merge()
  /// adds wall times, so a merged value only stays wall-clock when the
  /// merged queries ran back-to-back (per-morsel partials merge into
  /// cpu_micros instead, never into this field).
  uint64_t wall_micros = 0;
  /// Summed per-morsel scan time across all workers, in microseconds.
  uint64_t cpu_micros = 0;
  /// Morsels dispatched; 1 per query when the scan ran serially.
  uint64_t morsels_executed = 0;
  /// Selectivity pair for the scan itself: candidate rows run through the
  /// scan predicate, and rows that passed it. Unlike elements_examined
  /// (which counts plan-level candidates), these are incremented by the
  /// collect loop, so rows_matched / rows_scanned is the measured kernel
  /// selectivity EXPLAIN ANALYZE reports.
  uint64_t rows_scanned = 0;
  uint64_t rows_matched = 0;
  /// Morsels abandoned because cancellation (explicit, or via an armed
  /// deadline on the attached TraceContext) was observed at a morsel
  /// boundary. Non-zero iff the scan was cut short; the result set is then a
  /// subset of the candidates, not the full answer.
  uint64_t scan_aborts = 0;

  /// \brief Accumulates another query's counters (per-worker or per-query
  /// aggregation; all counters are additive).
  void Merge(const QueryStats& other) {
    elements_examined += other.elements_examined;
    index_probes += other.index_probes;
    results += other.results;
    wall_micros += other.wall_micros;
    cpu_micros += other.cpu_micros;
    morsels_executed += other.morsels_executed;
    rows_scanned += other.rows_scanned;
    rows_matched += other.rows_matched;
    scan_aborts += other.scan_aborts;
  }
};

}  // namespace tempspec

#endif  // TEMPSPEC_QUERY_PLAN_H_
