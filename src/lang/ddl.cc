#include "lang/ddl.h"

#include <cctype>
#include <vector>

#include "allen/allen.h"
#include "spec/inference.h"
#include "util/string_util.h"

namespace tempspec {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer: upper-cased words, duration-ish literals, punctuation.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kWord, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;  // words upper-cased; raw for punctuation
  std::string raw;   // original spelling (identifiers, durations)
};

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < input.size()) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(' || c == ')' || c == ',' || c == ';') {
      out.push_back(Token{Token::Kind::kPunct, std::string(1, c), std::string(1, c)});
      ++i;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '+' ||
        c == '-') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_' || input[j] == '+' || input[j] == '-')) {
        ++j;
      }
      const std::string raw = input.substr(i, j - i);
      std::string upper = raw;
      for (auto& ch : upper) ch = static_cast<char>(std::toupper(
          static_cast<unsigned char>(ch)));
      out.push_back(Token{Token::Kind::kWord, upper, raw});
      i = j;
      continue;
    }
    return Status::InvalidArgument("unexpected character '", std::string(1, c),
                                   "' in DDL");
  }
  out.push_back(Token{Token::Kind::kEnd, "", ""});
  return out;
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().kind == Token::Kind::kEnd; }

  bool TryEat(const std::string& word) {
    if (Peek().kind == Token::Kind::kWord && Peek().text == word) {
      ++pos_;
      return true;
    }
    if (Peek().kind == Token::Kind::kPunct && Peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Eat(const std::string& word) {
    if (TryEat(word)) return Status::OK();
    return Status::InvalidArgument("expected '", word, "' but found '",
                                   Peek().raw.empty() ? "<end>" : Peek().raw,
                                   "'");
  }

  Result<std::string> EatIdentifier(const char* what) {
    if (Peek().kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected ", what, " but found '",
                                     Peek().raw, "'");
    }
    std::string raw = Peek().raw;
    ++pos_;
    return raw;
  }

  Result<Duration> EatDuration() {
    if (Peek().kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected a duration but found '",
                                     Peek().raw, "'");
    }
    TS_ASSIGN_OR_RETURN(Duration d, Duration::Parse(Peek().raw));
    ++pos_;
    return d;
  }

  Result<Granularity> EatGranularity() {
    if (Peek().kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected a granularity but found '",
                                     Peek().raw, "'");
    }
    TS_ASSIGN_OR_RETURN(Granularity g, ParseGranularity(Peek().raw));
    ++pos_;
    return g;
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Pieces
// ---------------------------------------------------------------------------

Result<ValueType> ParseType(const std::string& word) {
  if (word == "INT64" || word == "INT" || word == "BIGINT") return ValueType::kInt64;
  if (word == "DOUBLE" || word == "FLOAT" || word == "REAL") return ValueType::kDouble;
  if (word == "STRING" || word == "TEXT" || word == "VARCHAR") return ValueType::kString;
  if (word == "BOOL" || word == "BOOLEAN") return ValueType::kBool;
  if (word == "TIME" || word == "TIMESTAMP") return ValueType::kTime;
  return Status::InvalidArgument("unknown attribute type '", word, "'");
}

Result<MappingFunction> ParseDeterminedBy(Cursor* cur) {
  TS_RETURN_NOT_OK(cur->Eat("BY"));
  if (cur->TryEat("TT")) {
    TS_RETURN_NOT_OK(cur->Eat("PLUS"));
    TS_ASSIGN_OR_RETURN(Duration d, cur->EatDuration());
    return MappingFunction::Offset(d);
  }
  if (cur->TryEat("FLOOR")) {
    TS_RETURN_NOT_OK(cur->Eat("("));
    TS_ASSIGN_OR_RETURN(Granularity g, cur->EatGranularity());
    TS_RETURN_NOT_OK(cur->Eat(")"));
    Duration offset = Duration::Zero();
    if (cur->TryEat("PLUS")) {
      TS_ASSIGN_OR_RETURN(offset, cur->EatDuration());
    }
    return MappingFunction::TruncateThenOffset(g, offset);
  }
  if (cur->TryEat("NEXT")) {
    TS_RETURN_NOT_OK(cur->Eat("("));
    TS_ASSIGN_OR_RETURN(Granularity g, cur->EatGranularity());
    TS_RETURN_NOT_OK(cur->Eat(","));
    TS_ASSIGN_OR_RETURN(Duration phase, cur->EatDuration());
    TS_RETURN_NOT_OK(cur->Eat(")"));
    return MappingFunction::NextPhase(g, phase);
  }
  return Status::InvalidArgument(
      "DETERMINED BY expects TT PLUS <d>, FLOOR(<g>), or NEXT(<g>, <d>)");
}

// Parses the event-type words (after any DELETION / VT_* prefixes); returns
// nullopt if the cursor does not start an event type.
Result<std::optional<EventSpecialization>> TryParseEventType(Cursor* cur) {
  auto wrap = [](Result<EventSpecialization> r)
      -> Result<std::optional<EventSpecialization>> {
    TS_RETURN_NOT_OK(r.status());
    return std::optional<EventSpecialization>(std::move(r).ValueOrDie());
  };

  if (cur->TryEat("RETROACTIVE")) {
    return std::optional<EventSpecialization>(EventSpecialization::Retroactive());
  }
  if (cur->TryEat("PREDICTIVE")) {
    return std::optional<EventSpecialization>(EventSpecialization::Predictive());
  }
  if (cur->TryEat("DEGENERATE")) {
    return std::optional<EventSpecialization>(EventSpecialization::Degenerate());
  }
  if (cur->Peek().text == "DELAYED" && cur->Peek(1).text == "RETROACTIVE") {
    cur->TryEat("DELAYED");
    cur->TryEat("RETROACTIVE");
    TS_ASSIGN_OR_RETURN(Duration d, cur->EatDuration());
    return wrap(EventSpecialization::DelayedRetroactive(d));
  }
  if (cur->Peek().text == "DELAYED" && cur->Peek(1).text == "STRONGLY") {
    cur->TryEat("DELAYED");
    cur->TryEat("STRONGLY");
    TS_RETURN_NOT_OK(cur->Eat("RETROACTIVELY"));
    TS_RETURN_NOT_OK(cur->Eat("BOUNDED"));
    TS_ASSIGN_OR_RETURN(Duration d1, cur->EatDuration());
    TS_ASSIGN_OR_RETURN(Duration d2, cur->EatDuration());
    return wrap(EventSpecialization::DelayedStronglyRetroactivelyBounded(d1, d2));
  }
  if (cur->Peek().text == "EARLY" && cur->Peek(1).text == "PREDICTIVE") {
    cur->TryEat("EARLY");
    cur->TryEat("PREDICTIVE");
    TS_ASSIGN_OR_RETURN(Duration d, cur->EatDuration());
    return wrap(EventSpecialization::EarlyPredictive(d));
  }
  if (cur->Peek().text == "EARLY" && cur->Peek(1).text == "STRONGLY") {
    cur->TryEat("EARLY");
    cur->TryEat("STRONGLY");
    TS_RETURN_NOT_OK(cur->Eat("PREDICTIVELY"));
    TS_RETURN_NOT_OK(cur->Eat("BOUNDED"));
    TS_ASSIGN_OR_RETURN(Duration d1, cur->EatDuration());
    TS_ASSIGN_OR_RETURN(Duration d2, cur->EatDuration());
    return wrap(EventSpecialization::EarlyStronglyPredictivelyBounded(d1, d2));
  }
  if (cur->TryEat("RETROACTIVELY")) {
    TS_RETURN_NOT_OK(cur->Eat("BOUNDED"));
    TS_ASSIGN_OR_RETURN(Duration d, cur->EatDuration());
    return wrap(EventSpecialization::RetroactivelyBounded(d));
  }
  if (cur->TryEat("PREDICTIVELY")) {
    TS_RETURN_NOT_OK(cur->Eat("BOUNDED"));
    TS_ASSIGN_OR_RETURN(Duration d, cur->EatDuration());
    return wrap(EventSpecialization::PredictivelyBounded(d));
  }
  if (cur->Peek().text == "STRONGLY") {
    cur->TryEat("STRONGLY");
    if (cur->TryEat("RETROACTIVELY")) {
      TS_RETURN_NOT_OK(cur->Eat("BOUNDED"));
      TS_ASSIGN_OR_RETURN(Duration d, cur->EatDuration());
      return wrap(EventSpecialization::StronglyRetroactivelyBounded(d));
    }
    if (cur->TryEat("PREDICTIVELY")) {
      TS_RETURN_NOT_OK(cur->Eat("BOUNDED"));
      TS_ASSIGN_OR_RETURN(Duration d, cur->EatDuration());
      return wrap(EventSpecialization::StronglyPredictivelyBounded(d));
    }
    TS_RETURN_NOT_OK(cur->Eat("BOUNDED"));
    TS_ASSIGN_OR_RETURN(Duration d1, cur->EatDuration());
    TS_ASSIGN_OR_RETURN(Duration d2, cur->EatDuration());
    return wrap(EventSpecialization::StronglyBounded(d1, d2));
  }
  return std::optional<EventSpecialization>();
}

SpecScope ParseScopeSuffix(Cursor* cur) {
  if (cur->Peek().text == "PER" && cur->Peek(1).text == "SURROGATE") {
    cur->TryEat("PER");
    cur->TryEat("SURROGATE");
    return SpecScope::kPerObjectSurrogate;
  }
  return SpecScope::kPerRelation;
}

Status ParseWithClause(Cursor* cur, const Schema& schema,
                       SpecializationSet* specs) {
  // Prefixes.
  TransactionAnchor tt_anchor = TransactionAnchor::kInsertion;
  std::optional<ValidAnchor> vt_anchor;
  if (cur->TryEat("DELETION")) tt_anchor = TransactionAnchor::kDeletion;
  if (cur->TryEat("VT_BEGIN")) vt_anchor = ValidAnchor::kBegin;
  else if (cur->TryEat("VT_END")) vt_anchor = ValidAnchor::kEnd;

  // Event types (possibly with DETERMINED BY suffix).
  TS_ASSIGN_OR_RETURN(auto event_spec, TryParseEventType(cur));
  if (!event_spec && cur->TryEat("DETERMINED")) {
    // Standalone DETERMINED BY ... = general determined.
    event_spec = EventSpecialization::General();
    TS_ASSIGN_OR_RETURN(MappingFunction m, ParseDeterminedBy(cur));
    event_spec = event_spec->Determined(std::move(m));
  } else if (event_spec && cur->TryEat("DETERMINED")) {
    TS_ASSIGN_OR_RETURN(MappingFunction m, ParseDeterminedBy(cur));
    event_spec = event_spec->Determined(std::move(m));
  }
  if (event_spec) {
    EventSpecialization spec = event_spec->WithAnchor(tt_anchor);
    if (schema.IsEventRelation()) {
      if (vt_anchor.has_value()) {
        return Status::InvalidArgument(
            "VT_BEGIN/VT_END apply only to interval relations");
      }
      specs->AddEvent(std::move(spec));
    } else {
      specs->AddAnchoredEvent(AnchoredEventSpec(
          std::move(spec), vt_anchor.value_or(ValidAnchor::kBoth)));
    }
    return Status::OK();
  }
  if (vt_anchor.has_value() || tt_anchor == TransactionAnchor::kDeletion) {
    return Status::InvalidArgument(
        "DELETION/VT_BEGIN/VT_END prefixes require an event-type clause");
  }

  // Orderings.
  if (cur->TryEat("NONDECREASING")) {
    const SpecScope scope = ParseScopeSuffix(cur);
    if (schema.IsEventRelation()) {
      specs->AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing, scope));
    } else {
      specs->AddIntervalOrdering(
          IntervalOrderingSpec(IntervalOrderingKind::kNonDecreasing, scope));
    }
    return Status::OK();
  }
  if (cur->TryEat("NONINCREASING")) {
    const SpecScope scope = ParseScopeSuffix(cur);
    if (schema.IsEventRelation()) {
      specs->AddOrdering(OrderingSpec(OrderingKind::kNonIncreasing, scope));
    } else {
      specs->AddIntervalOrdering(
          IntervalOrderingSpec(IntervalOrderingKind::kNonIncreasing, scope));
    }
    return Status::OK();
  }
  if (cur->TryEat("SEQUENTIAL")) {
    const SpecScope scope = ParseScopeSuffix(cur);
    if (schema.IsEventRelation()) {
      specs->AddOrdering(OrderingSpec(OrderingKind::kSequential, scope));
    } else {
      specs->AddIntervalOrdering(
          IntervalOrderingSpec(IntervalOrderingKind::kSequential, scope));
    }
    return Status::OK();
  }
  if (cur->TryEat("CONTIGUOUS")) {
    specs->AddSuccessive(SuccessiveSpec::Contiguous(ParseScopeSuffix(cur)));
    return Status::OK();
  }
  if (cur->TryEat("SUCCESSIVE")) {
    const bool inverse = cur->TryEat("INVERSE");
    TS_ASSIGN_OR_RETURN(std::string name, cur->EatIdentifier("an Allen relation"));
    TS_ASSIGN_OR_RETURN(AllenRelation rel, ParseAllenRelation(ToLower(name)));
    const SpecScope scope = ParseScopeSuffix(cur);
    specs->AddSuccessive(SuccessiveSpec(rel, scope, inverse));
    return Status::OK();
  }

  // Regularity.
  const bool strict = cur->TryEat("STRICT");
  std::optional<RegularityDimension> dim;
  if (cur->TryEat("TRANSACTION")) dim = RegularityDimension::kTransactionTime;
  else if (cur->TryEat("VALID")) dim = RegularityDimension::kValidTime;
  else if (cur->TryEat("TEMPORAL")) dim = RegularityDimension::kTemporal;
  if (dim.has_value()) {
    const bool interval = cur->TryEat("INTERVAL");
    TS_RETURN_NOT_OK(cur->Eat("REGULAR"));
    TS_ASSIGN_OR_RETURN(Duration unit, cur->EatDuration());
    const SpecScope scope = ParseScopeSuffix(cur);
    if (interval) {
      const auto idim = static_cast<IntervalRegularityDimension>(
          static_cast<int>(*dim));
      TS_ASSIGN_OR_RETURN(auto spec,
                          IntervalRegularitySpec::Make(idim, unit, strict, scope));
      specs->AddIntervalRegularity(spec);
    } else {
      TS_ASSIGN_OR_RETURN(auto spec,
                          RegularitySpec::Make(*dim, unit, strict, scope));
      specs->AddRegularity(spec);
    }
    return Status::OK();
  }
  if (strict) {
    return Status::InvalidArgument(
        "STRICT must precede TRANSACTION/VALID/TEMPORAL ... REGULAR");
  }
  return Status::InvalidArgument("unrecognized specialization clause near '",
                                 cur->Peek().raw, "'");
}

}  // namespace

Result<ParsedRelation> ParseCreateRelation(const std::string& statement) {
  TS_ASSIGN_OR_RETURN(auto tokens, Tokenize(statement));
  Cursor cur(std::move(tokens));

  TS_RETURN_NOT_OK(cur.Eat("CREATE"));
  ValidTimeKind kind;
  if (cur.TryEat("EVENT")) {
    kind = ValidTimeKind::kEvent;
  } else if (cur.TryEat("INTERVAL")) {
    kind = ValidTimeKind::kInterval;
  } else {
    return Status::InvalidArgument("expected EVENT or INTERVAL after CREATE");
  }
  TS_RETURN_NOT_OK(cur.Eat("RELATION"));
  TS_ASSIGN_OR_RETURN(std::string name, cur.EatIdentifier("a relation name"));

  TS_RETURN_NOT_OK(cur.Eat("("));
  std::vector<AttributeDef> attrs;
  while (!cur.TryEat(")")) {
    TS_ASSIGN_OR_RETURN(std::string attr_name,
                        cur.EatIdentifier("an attribute name"));
    TS_ASSIGN_OR_RETURN(std::string type_word,
                        cur.EatIdentifier("an attribute type"));
    std::string upper = type_word;
    for (auto& ch : upper) {
      ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    TS_ASSIGN_OR_RETURN(ValueType type, ParseType(upper));
    AttributeRole role = AttributeRole::kTimeVarying;
    if (cur.TryEat("KEY")) role = AttributeRole::kTimeInvariantKey;
    else if (cur.TryEat("INVARIANT")) role = AttributeRole::kTimeInvariant;
    else if (cur.TryEat("USERTIME")) role = AttributeRole::kUserDefinedTime;
    attrs.push_back(AttributeDef{attr_name, type, role});
    if (!cur.TryEat(",")) {
      TS_RETURN_NOT_OK(cur.Eat(")"));
      break;
    }
  }

  Granularity granularity;
  if (cur.TryEat("GRANULARITY")) {
    TS_ASSIGN_OR_RETURN(granularity, cur.EatGranularity());
  }

  TS_ASSIGN_OR_RETURN(SchemaPtr schema,
                      Schema::Make(name, std::move(attrs), kind, granularity));

  SpecializationSet specs;
  if (cur.TryEat("WITH")) {
    do {
      TS_RETURN_NOT_OK(ParseWithClause(&cur, *schema, &specs));
    } while (cur.TryEat(","));
  }
  cur.TryEat(";");
  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing tokens after statement: '",
                                   cur.Peek().raw, "'");
  }

  TS_RETURN_NOT_OK(specs.ValidateFor(*schema));
  return ParsedRelation{std::move(schema), std::move(specs)};
}

namespace {

std::string TypeWord(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kTime:
      return "TIME";
    case ValueType::kNull:
      break;
  }
  return "?";
}

std::string EventClause(const EventSpecialization& spec) {
  const Band& band = spec.band();
  auto neg = [](const BandBound& b) { return (-b.offset).ToString(); };
  auto pos = [](const BandBound& b) { return b.offset.ToString(); };
  std::string out;
  switch (spec.kind()) {
    case EventSpecKind::kGeneral:
      out = "";
      break;
    case EventSpecKind::kRetroactive:
      out = "RETROACTIVE";
      break;
    case EventSpecKind::kDelayedRetroactive:
      out = "DELAYED RETROACTIVE " + neg(*band.upper());
      break;
    case EventSpecKind::kPredictive:
      out = "PREDICTIVE";
      break;
    case EventSpecKind::kEarlyPredictive:
      out = "EARLY PREDICTIVE " + pos(*band.lower());
      break;
    case EventSpecKind::kRetroactivelyBounded:
      out = "RETROACTIVELY BOUNDED " + neg(*band.lower());
      break;
    case EventSpecKind::kPredictivelyBounded:
      out = "PREDICTIVELY BOUNDED " + pos(*band.upper());
      break;
    case EventSpecKind::kStronglyRetroactivelyBounded:
      out = "STRONGLY RETROACTIVELY BOUNDED " + neg(*band.lower());
      break;
    case EventSpecKind::kDelayedStronglyRetroactivelyBounded:
      out = "DELAYED STRONGLY RETROACTIVELY BOUNDED " + neg(*band.upper()) +
            " " + neg(*band.lower());
      break;
    case EventSpecKind::kStronglyPredictivelyBounded:
      out = "STRONGLY PREDICTIVELY BOUNDED " + pos(*band.upper());
      break;
    case EventSpecKind::kEarlyStronglyPredictivelyBounded:
      out = "EARLY STRONGLY PREDICTIVELY BOUNDED " + pos(*band.lower()) + " " +
            pos(*band.upper());
      break;
    case EventSpecKind::kStronglyBounded:
      out = "STRONGLY BOUNDED " + neg(*band.lower()) + " " + pos(*band.upper());
      break;
    case EventSpecKind::kDegenerate:
      out = "DEGENERATE";
      break;
  }
  if (spec.IsDetermined()) {
    const std::string mapping = spec.mapping()->ToDdlClause();
    if (!mapping.empty()) out = out.empty() ? mapping : out + " " + mapping;
  }
  if (spec.anchor() == TransactionAnchor::kDeletion) {
    out = out.empty() ? "DELETION" : "DELETION " + out;
  }
  return out;
}

}  // namespace

std::string ToDdl(const Schema& schema, const SpecializationSet& specs) {
  std::string out = "CREATE ";
  out += schema.IsEventRelation() ? "EVENT" : "INTERVAL";
  out += " RELATION " + schema.relation_name() + " (\n";
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    const AttributeDef& a = schema.attribute(i);
    out += "    " + a.name + " " + TypeWord(a.type);
    switch (a.role) {
      case AttributeRole::kTimeInvariantKey:
        out += " KEY";
        break;
      case AttributeRole::kTimeInvariant:
        out += " INVARIANT";
        break;
      case AttributeRole::kUserDefinedTime:
        out += " USERTIME";
        break;
      case AttributeRole::kTimeVarying:
        break;
    }
    if (i + 1 < schema.num_attributes()) out += ",";
    out += "\n";
  }
  out += ") GRANULARITY " + schema.valid_granularity().ToString();

  std::vector<std::string> clauses;
  for (const auto& s : specs.event_specs()) {
    std::string c = EventClause(s);
    if (c.empty() && !s.IsDetermined()) continue;
    clauses.push_back(c);
  }
  for (const auto& a : specs.anchored_specs()) {
    std::string prefix;
    if (a.valid_anchor() == ValidAnchor::kBegin) prefix = "VT_BEGIN ";
    if (a.valid_anchor() == ValidAnchor::kEnd) prefix = "VT_END ";
    clauses.push_back(prefix + EventClause(a.spec()));
  }
  auto scope_suffix = [](SpecScope s) {
    return s == SpecScope::kPerObjectSurrogate ? std::string(" PER SURROGATE")
                                               : std::string();
  };
  for (const auto& o : specs.orderings()) {
    const char* word = o.kind() == OrderingKind::kNonDecreasing ? "NONDECREASING"
                       : o.kind() == OrderingKind::kNonIncreasing
                           ? "NONINCREASING"
                           : "SEQUENTIAL";
    clauses.push_back(word + scope_suffix(o.scope()));
  }
  for (const auto& o : specs.interval_orderings()) {
    const char* word =
        o.kind() == IntervalOrderingKind::kNonDecreasing  ? "NONDECREASING"
        : o.kind() == IntervalOrderingKind::kNonIncreasing ? "NONINCREASING"
                                                           : "SEQUENTIAL";
    clauses.push_back(word + scope_suffix(o.scope()));
  }
  for (const auto& s : specs.successive()) {
    if (s.relation() == AllenRelation::kMeets) {
      clauses.push_back("CONTIGUOUS" + scope_suffix(s.scope()));
    } else {
      std::string name = AllenRelationToString(s.relation());
      for (auto& ch : name) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      // met-by etc. round-trip through the tokenizer's dash support.
      clauses.push_back("SUCCESSIVE " + name + scope_suffix(s.scope()));
    }
  }
  auto dim_word = [](int dim) {
    return dim == 0 ? "TRANSACTION" : (dim == 1 ? "VALID" : "TEMPORAL");
  };
  for (const auto& r : specs.regularities()) {
    std::string c = r.strict() ? "STRICT " : "";
    c += dim_word(static_cast<int>(r.dimension()));
    c += " REGULAR " + r.unit().ToString();
    clauses.push_back(c + scope_suffix(r.scope()));
  }
  for (const auto& r : specs.interval_regularities()) {
    std::string c = r.strict() ? "STRICT " : "";
    c += dim_word(static_cast<int>(r.dimension()));
    c += " INTERVAL REGULAR " + r.unit().ToString();
    clauses.push_back(c + scope_suffix(r.scope()));
  }

  if (!clauses.empty()) {
    out += "\nWITH ";
    out += Join(clauses, ",\n     ");
  }
  out += ";";
  return out;
}

namespace {

// Suggested bounds are human-facing: widen the observed band outward to
// whole seconds (a declaration must admit at least what was seen).
EventProfile RoundedOutward(const EventProfile& p) {
  EventProfile out = p;
  auto floor_s = [](int64_t us) {
    int64_t q = us / kMicrosPerSecond;
    if (us % kMicrosPerSecond != 0 && us < 0) --q;
    return q * kMicrosPerSecond;
  };
  out.min_offset_us = floor_s(p.min_offset_us);
  out.max_offset_us = p.max_offset_us == floor_s(p.max_offset_us)
                          ? p.max_offset_us
                          : floor_s(p.max_offset_us) + kMicrosPerSecond;
  out.tightest_band = Band::Between(Duration::Micros(out.min_offset_us),
                                    Duration::Micros(out.max_offset_us));
  if (!out.degenerate) {
    out.classified = EventSpecialization::ClassifyBand(out.tightest_band);
  }
  return out;
}

}  // namespace

std::string SuggestDdl(const RelationProfile& profile, const Schema& schema) {
  SpecializationSet specs;

  auto add_regularity = [&](const RegularityProfile& reg, SpecScope scope) {
    // Any extension is trivially "regular" with its gcd unit; only units of
    // at least one second are worth declaring.
    if (reg.temporal_regular && reg.temporal_unit_us >= kMicrosPerSecond) {
      auto r = RegularitySpec::Make(RegularityDimension::kTemporal,
                                    Duration::Micros(reg.temporal_unit_us),
                                    reg.temporal_strict, scope);
      if (r.ok()) specs.AddRegularity(std::move(r).ValueOrDie());
      return;  // temporal subsumes both dimensions
    }
    if (reg.tt_unit_us >= kMicrosPerSecond) {
      auto r = RegularitySpec::Make(RegularityDimension::kTransactionTime,
                                    Duration::Micros(reg.tt_unit_us),
                                    reg.tt_strict, scope);
      if (r.ok()) specs.AddRegularity(std::move(r).ValueOrDie());
    }
    if (reg.vt_unit_us >= kMicrosPerSecond) {
      auto r = RegularitySpec::Make(RegularityDimension::kValidTime,
                                    Duration::Micros(reg.vt_unit_us),
                                    reg.vt_strict, scope);
      if (r.ok()) specs.AddRegularity(std::move(r).ValueOrDie());
    }
  };

  if (schema.IsEventRelation()) {
    if (profile.event.applicable) {
      auto spec = SpecFromProfile(
          profile.event.determined_by ? profile.event
                                      : RoundedOutward(profile.event));
      if (spec.ok() && (spec->kind() != EventSpecKind::kGeneral ||
                        spec->IsDetermined())) {
        specs.AddEvent(std::move(spec).ValueOrDie());
      }
    }
    if (profile.global_ordering.sequential) {
      specs.AddOrdering(OrderingSpec(OrderingKind::kSequential));
    } else if (profile.global_ordering.non_decreasing) {
      specs.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
    } else if (profile.global_ordering.non_increasing) {
      specs.AddOrdering(OrderingSpec(OrderingKind::kNonIncreasing));
    } else if (profile.per_surrogate_ordering.sequential) {
      specs.AddOrdering(
          OrderingSpec(OrderingKind::kSequential, SpecScope::kPerObjectSurrogate));
    } else if (profile.per_surrogate_ordering.non_decreasing) {
      specs.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing,
                                     SpecScope::kPerObjectSurrogate));
    }
    add_regularity(profile.regularity, SpecScope::kPerRelation);
  } else {
    auto anchored = [&](const EventProfile& p, ValidAnchor anchor) {
      if (!p.applicable) return;
      auto spec = SpecFromProfile(p.determined_by ? p : RoundedOutward(p));
      if (spec.ok() && spec->kind() != EventSpecKind::kGeneral) {
        specs.AddAnchoredEvent(AnchoredEventSpec(std::move(spec).ValueOrDie(),
                                                 anchor));
      }
    };
    anchored(profile.event, ValidAnchor::kBegin);
    anchored(profile.event_end, ValidAnchor::kEnd);
    if (profile.global_ordering.non_decreasing) {
      specs.AddIntervalOrdering(
          IntervalOrderingSpec(IntervalOrderingKind::kNonDecreasing));
    }
    if (profile.global_ordering.non_increasing) {
      specs.AddIntervalOrdering(
          IntervalOrderingSpec(IntervalOrderingKind::kNonIncreasing));
    }
    if (profile.interval.successive.size() == 1) {
      specs.AddSuccessive(
          SuccessiveSpec(*profile.interval.successive.begin()));
    }
    if (profile.interval.applicable &&
        profile.interval.valid_duration_unit_us >= kMicrosPerSecond) {
      auto r = IntervalRegularitySpec::Make(
          IntervalRegularityDimension::kValidTime,
          Duration::Micros(profile.interval.valid_duration_unit_us),
          profile.interval.valid_strict);
      if (r.ok()) specs.AddIntervalRegularity(std::move(r).ValueOrDie());
    }
  }
  return ToDdl(schema, specs);
}

}  // namespace tempspec
