// Typed attribute values.
#ifndef TEMPSPEC_MODEL_VALUE_H_
#define TEMPSPEC_MODEL_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

#include "timex/time_point.h"

namespace tempspec {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kTime = 5,  // a user-defined time (Section 2): an ordinary attribute whose
              // domain happens to be dates/times; no system-interpreted
              // semantics.
};

const char* ValueTypeToString(ValueType type);

/// \brief A dynamically typed attribute value.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  Value(bool v) : repr_(v) {}                   // NOLINT(runtime/explicit)
  Value(int64_t v) : repr_(v) {}                // NOLINT(runtime/explicit)
  Value(int v) : repr_(static_cast<int64_t>(v)) {}  // NOLINT(runtime/explicit)
  Value(double v) : repr_(v) {}                 // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)
  Value(TimePoint v) : repr_(v) {}              // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  ValueType type() const { return static_cast<ValueType>(repr_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  TimePoint AsTime() const { return std::get<TimePoint>(repr_); }

  std::string ToString() const;

  friend bool operator==(const Value&, const Value&) = default;
  /// \brief Total order within a type; nulls first, cross-type by type tag.
  friend bool operator<(const Value& a, const Value& b) { return a.repr_ < b.repr_; }

  /// \brief Approximate heap + inline footprint in bytes (for storage stats).
  size_t ByteSize() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, TimePoint> repr_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace tempspec

#endif  // TEMPSPEC_MODEL_VALUE_H_
