// Property test for the Figure 1 region semantics (Section 3.1).
//
// The twelve panes of Figure 1 are bands of the offset vt - tt. This test
// drives randomized (tt, vt) event streams against a brute-force oracle that
// re-implements region membership from first principles — plain integer
// arithmetic on the offset against each boundary line — and asserts that
// every event_spec checker (the EventSpecialization factories, Band::Contains
// and ClassifyBand) agrees with the oracle on every stamp pair, across at
// least a thousand seeded streams. Streams deliberately mix uniform offsets
// with exact boundary hits (0, ±Δ_small, ±Δ_large) and off-by-one-chronon
// neighbours so the closed-bound (<=) reading of assumption 4 is pinned.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "spec/band.h"
#include "spec/enumeration.h"
#include "spec/event_spec.h"
#include "testing.h"
#include "testing_spec.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::SpecForKind;
using testing::T;

constexpr int kStreams = 1000;
constexpr int kPairsPerStream = 16;

const Duration kDeltaSmall = Duration::Seconds(30);
const Duration kDeltaLarge = Duration::Seconds(90);

/// \brief Brute-force Figure 1 membership: checks the offset vt - tt against
/// each boundary line of the band with raw int64 arithmetic. Independent of
/// Band::Contains (which routes fixed offsets through TimePoint addition).
bool OracleContains(const Band& band, TimePoint tt, TimePoint vt) {
  const int64_t offset = vt.micros() - tt.micros();
  if (band.lower().has_value()) {
    const int64_t lo = band.lower()->offset.micros();
    if (band.lower()->open ? offset <= lo : offset < lo) return false;
  }
  if (band.upper().has_value()) {
    const int64_t hi = band.upper()->offset.micros();
    if (band.upper()->open ? offset >= hi : offset > hi) return false;
  }
  return true;
}

/// \brief One random offset, biased toward the interesting boundaries.
int64_t NextOffsetMicros(Random& rng) {
  // The boundary offsets of the enumeration, in chronons.
  static const int64_t kEdges[] = {
      0,
      kDeltaSmall.micros(),  -kDeltaSmall.micros(),
      kDeltaLarge.micros(),  -kDeltaLarge.micros(),
  };
  switch (rng.Uniform(0, 3)) {
    case 0:  // exact boundary hit
      return kEdges[rng.Uniform(0, 4)];
    case 1:  // one chronon off a boundary
      return kEdges[rng.Uniform(0, 4)] + (rng.OneIn(0.5) ? 1 : -1);
    default:  // uniform across and beyond the banded range
      return rng.Uniform(-3 * kDeltaLarge.micros(), 3 * kDeltaLarge.micros());
  }
}

struct RegionSpec {
  EnumeratedRegion region;
  EventSpecialization spec;
};

std::vector<RegionSpec> BuildRegionSpecs() {
  std::vector<RegionSpec> out;
  for (const EnumeratedRegion& region :
       EnumerateEventRegions(kDeltaSmall, kDeltaLarge)) {
    auto spec = SpecForKind(region.kind, kDeltaSmall, kDeltaLarge);
    spec.status().Check();
    out.push_back(RegionSpec{region, std::move(spec).ValueOrDie()});
  }
  return out;
}

TEST(EventRegionPropertyTest, FactoriesReproduceEnumeratedBands) {
  // The factory instance for each pane's kind must produce exactly the
  // enumerated representative band — this is what lets the stream test below
  // speak about "the" checker for a region.
  const auto specs = BuildRegionSpecs();
  ASSERT_EQ(specs.size(), 12u);
  for (const RegionSpec& rs : specs) {
    EXPECT_EQ(rs.spec.band(), rs.region.band)
        << EventSpecKindToString(rs.region.kind) << ": factory band "
        << rs.spec.band().ToString() << " vs enumerated "
        << rs.region.band.ToString();
    EXPECT_EQ(rs.spec.kind(), rs.region.kind);
    EXPECT_EQ(EventSpecialization::ClassifyBand(rs.region.band), rs.region.kind)
        << rs.region.band.ToString();
  }
}

TEST(EventRegionPropertyTest, RandomStreamsAgreeWithOracle) {
  const auto specs = BuildRegionSpecs();
  ASSERT_EQ(specs.size(), 12u);
  uint64_t pairs_checked = 0;
  for (int stream = 0; stream < kStreams; ++stream) {
    Random rng(0x5eed0000 + static_cast<uint64_t>(stream));
    // Each stream is an event history: transaction times march forward,
    // valid times scatter around them by the random offset.
    int64_t tt_micros = rng.Uniform(0, 1'000'000) * 1'000'000;
    for (int i = 0; i < kPairsPerStream; ++i) {
      tt_micros += rng.Uniform(1, 120) * 1'000'000;
      const TimePoint tt = TimePoint::FromMicros(tt_micros);
      const TimePoint vt = TimePoint::FromMicros(tt_micros + NextOffsetMicros(rng));
      ++pairs_checked;
      int member_count = 0;
      for (const RegionSpec& rs : specs) {
        const bool oracle = OracleContains(rs.region.band, tt, vt);
        member_count += oracle ? 1 : 0;
        ASSERT_EQ(rs.spec.Satisfies(tt, vt), oracle)
            << "stream " << stream << " pair " << i << " offset "
            << (vt.micros() - tt.micros()) << "us vs "
            << EventSpecKindToString(rs.region.kind) << " "
            << rs.region.band.ToString();
        ASSERT_EQ(rs.region.band.Contains(tt, vt), oracle)
            << "Band::Contains disagrees with the oracle on "
            << rs.region.band.ToString();
      }
      // Figure 1 covers the plane: the general pane contains every pair, so
      // membership is never empty.
      ASSERT_GE(member_count, 1);
    }
  }
  ASSERT_GE(pairs_checked, uint64_t{kStreams} * kPairsPerStream);
}

TEST(EventRegionPropertyTest, SatisfiesRespectsDecidableImplications) {
  // If region A's band is (decidably) a subset of region B's band, then every
  // stamp pair satisfying A's checker must satisfy B's. Sampled over the same
  // randomized streams: a cheap consistency proof of Implies/SubsetOf against
  // the pointwise semantics.
  const auto specs = BuildRegionSpecs();
  struct Implication {
    size_t narrow, wide;
  };
  std::vector<Implication> implications;
  for (size_t a = 0; a < specs.size(); ++a) {
    for (size_t b = 0; b < specs.size(); ++b) {
      if (a == b) continue;
      const auto subset = specs[a].region.band.SubsetOf(specs[b].region.band);
      if (subset.has_value() && *subset) implications.push_back({a, b});
    }
  }
  // The taxonomy is a lattice, not an antichain: plenty of decidable edges.
  ASSERT_GE(implications.size(), 11u);
  Random rng(777);
  for (int trial = 0; trial < 4000; ++trial) {
    const int64_t tt_micros = rng.Uniform(0, 1'000'000) * 1'000'000;
    const TimePoint tt = TimePoint::FromMicros(tt_micros);
    const TimePoint vt = TimePoint::FromMicros(tt_micros + NextOffsetMicros(rng));
    for (const Implication& imp : implications) {
      if (specs[imp.narrow].spec.Satisfies(tt, vt)) {
        ASSERT_TRUE(specs[imp.wide].spec.Satisfies(tt, vt))
            << EventSpecKindToString(specs[imp.narrow].region.kind)
            << " ⊆ " << EventSpecKindToString(specs[imp.wide].region.kind)
            << " violated at offset " << (vt.micros() - tt.micros()) << "us";
      }
    }
  }
}

TEST(EventRegionPropertyTest, EnumerationIsTheCompletenessTheorem) {
  // 1 zero-line + 6 one-line + 5 two-line regions, all classifying to
  // distinct kinds: the Section 3.1 theorem, restated over the test deltas.
  const auto regions = EnumerateEventRegions(kDeltaSmall, kDeltaLarge);
  ASSERT_EQ(regions.size(), 12u);
  int zero = 0, one = 0, two = 0;
  std::set<EventSpecKind> kinds;
  for (const auto& r : regions) {
    kinds.insert(r.kind);
    if (r.construction.rfind("zero", 0) == 0) ++zero;
    if (r.construction.rfind("one", 0) == 0) ++one;
    if (r.construction.rfind("two", 0) == 0) ++two;
  }
  EXPECT_EQ(zero, 1);
  EXPECT_EQ(one, 6);
  EXPECT_EQ(two, 5);
  EXPECT_EQ(kinds.size(), 12u);
  EXPECT_TRUE(kinds.count(EventSpecKind::kGeneral));
  // Degenerate (vt = tt exactly) is the one taxonomy kind with no pane of its
  // own: (2)+(2) collapses to a single line, so the diagonal is the
  // intersection of the two kind-(2) half-planes rather than a region.
  EXPECT_FALSE(kinds.count(EventSpecKind::kDegenerate));
}

}  // namespace
}  // namespace tempspec
