#include "index/append_index.h"

#include <algorithm>

namespace tempspec {

Status AppendOnlyIndex::Append(TimePoint key, uint64_t value) {
  if (!keys_.empty() && key.micros() < keys_.back()) {
    return Status::InvalidArgument(
        "append-only index requires non-decreasing keys: ", key.ToString(),
        " after ", TimePoint::FromMicros(keys_.back()).ToString());
  }
  keys_.push_back(key.micros());
  values_.push_back(value);
  return Status::OK();
}

size_t AppendOnlyIndex::LowerBound(TimePoint key) const {
  return static_cast<size_t>(
      std::lower_bound(keys_.begin(), keys_.end(), key.micros()) - keys_.begin());
}

size_t AppendOnlyIndex::UpperBound(TimePoint key) const {
  return static_cast<size_t>(
      std::upper_bound(keys_.begin(), keys_.end(), key.micros()) - keys_.begin());
}

std::vector<uint64_t> AppendOnlyIndex::Range(TimePoint lo, TimePoint hi) const {
  std::vector<uint64_t> out;
  if (lo > hi) return out;
  for (size_t i = LowerBound(lo), end = UpperBound(hi); i < end; ++i) {
    out.push_back(values_[i]);
  }
  return out;
}

}  // namespace tempspec
