// Structured slow-query log.
//
// EXPLAIN ANALYZE shows the trace of a query you *chose* to inspect; the
// slow-query log catches the ones you didn't. Every completed query span
// whose wall time meets a configurable threshold is recorded — the full
// TraceContext::ToJson() line plus the statement text — into a fixed-size
// ring (newest wins, oldest evicted), and optionally appended to a JSONL
// sink file. The ring is queryable in-engine via the query language's
// `SHOW SLOW QUERIES [LIMIT n]`.
//
// Concurrency: Record() and snapshots take one mutex. This is deliberately
// not the sharded-counter design — the slowlog is off the per-element hot
// path (at most one Record per *query*, and only for slow ones), so a mutex
// ring is simpler and keeps entries ordered.
//
// Compile-out contract: like the exporter, the class always compiles; the
// engine call site (query_lang's record hook) is wrapped in
// TS_METRICS_ONLY, so a TEMPSPEC_METRICS=OFF tree never records and the
// slowlog observes nothing through engine paths.
#ifndef TEMPSPEC_OBS_SLOWLOG_H_
#define TEMPSPEC_OBS_SLOWLOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tempspec {

class TraceContext;

/// \brief One retained slow query.
struct SlowQueryEntry {
  /// Monotone per-process sequence number (1-based; total recorded count).
  uint64_t sequence = 0;
  /// The span's process-unique trace id (TraceContext::trace_id()); joins
  /// the entry to its retained span in /debug/traces.
  uint64_t trace_id = 0;
  /// Capture time, unix epoch microseconds.
  uint64_t unix_micros = 0;
  /// Span wall time — the value that crossed the threshold.
  uint64_t wall_micros = 0;
  /// The statement as the user wrote it ("" for programmatic queries).
  std::string statement;
  /// How the statement arrived: "http" / "tsp1" (the server request span's
  /// protocol attribute), "" for embedded/programmatic queries.
  std::string protocol;
  /// Remote "ip:port" for server-side entries, "" otherwise.
  std::string peer;
  /// The client's 128-bit wire trace id as 32 hex chars, "" when the
  /// request carried none (join key against client-side logs).
  std::string wire_trace;
  /// The span's single-line JSON (TraceContext::ToJson()).
  std::string trace_json;

  /// \brief The entry as one JSON line (the sink format):
  /// {"sequence":..,"trace_id":..,"unix_micros":..,"wall_micros":..,
  ///  "statement":"...","protocol":"...","peer":"...","wire_trace":"...",
  ///  "trace":{...}} (protocol/peer/wire_trace omitted when empty).
  std::string ToJson() const;
};

/// \brief Fixed-size ring of slow-query entries with an optional JSONL sink.
class SlowQueryLog {
 public:
  /// \brief Process-wide instance (what the engine hook and SHOW use).
  /// Freestanding instances are used by tests.
  static SlowQueryLog& Instance();

  explicit SlowQueryLog(size_t capacity = 128) : capacity_(capacity) {}

  /// \brief Wall-time threshold in microseconds; spans strictly below it are
  /// ignored. 0 records every completed span (useful in tests and tours);
  /// UINT64_MAX disables recording. Default: 10ms.
  void SetThresholdMicros(uint64_t threshold);
  uint64_t threshold_micros() const;

  /// \brief Redirects the JSONL sink ("" = ring only). Entries are appended
  /// as they are recorded; the file is opened per write (append mode), so
  /// rotation by rename works.
  void SetSinkPath(std::string path);

  /// \brief Ring capacity; shrinking drops the oldest entries.
  void SetCapacity(size_t capacity);

  /// \brief Applies TEMPSPEC_SLOWLOG_MICROS / TEMPSPEC_SLOWLOG_PATH /
  /// TEMPSPEC_SLOWLOG_CAPACITY when set (called by
  /// TelemetryExporter::MaybeStartFromEnv).
  void ConfigureFromEnv();

  /// \brief Considers one completed span; records it if wall time meets the
  /// threshold. Ends the span if the caller has not.
  void Record(TraceContext& trace, const std::string& statement);

  /// \brief The retained entries, oldest first.
  std::vector<SlowQueryEntry> Entries() const;

  /// \brief Total recorded (not retained) count.
  uint64_t TotalRecorded() const;

  /// \brief Empties the ring and resets the sequence (tests).
  void Clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t threshold_micros_ = 10000;
  uint64_t sequence_ = 0;
  std::string sink_path_;
  std::vector<SlowQueryEntry> ring_;  // oldest first
};

}  // namespace tempspec

#endif  // TEMPSPEC_OBS_SLOWLOG_H_
