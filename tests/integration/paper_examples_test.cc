// Integration tests that walk, one by one, the application examples the
// paper uses to motivate each specialization — each test cites the prose it
// reproduces and exercises the full engine path (declaration, enforcement,
// query planning).
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "query/executor.h"
#include "testing.h"
#include "timex/calendar.h"

namespace tempspec {
namespace {

using testing::Civil;
using testing::T;

RelationOptions Base(SchemaPtr schema, std::shared_ptr<LogicalClock>* clock,
                     TimePoint start = Civil(1992, 1, 1)) {
  RelationOptions options;
  options.schema = std::move(schema);
  *clock = std::make_shared<LogicalClock>(start, Duration::Seconds(1));
  options.clock = *clock;
  return options;
}

SchemaPtr EventSchema(const std::string& name,
                      Granularity gran = Granularity::Second()) {
  return Schema::Make(name,
                      {AttributeDef{"id", ValueType::kInt64,
                                    AttributeRole::kTimeInvariantKey},
                       AttributeDef{"v", ValueType::kDouble,
                                    AttributeRole::kTimeVarying}},
                      ValidTimeKind::kEvent, gran)
      .ValueOrDie();
}

// §1: "in the monitoring of temperatures during a chemical experiment,
// temperature measurements are recorded in the temporal relation after they
// are valid, due to transmission delays. The resulting relation is termed
// retroactive."
TEST(PaperExamples, Section1ChemicalMonitoringIsRetroactive) {
  std::shared_ptr<LogicalClock> clock;
  RelationOptions options = Base(EventSchema("temperatures"), &clock);
  options.specializations.AddEvent(EventSpecialization::Retroactive());
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();

  const TimePoint measured = clock->Peek() - Duration::Seconds(45);
  EXPECT_OK(rel->InsertEvent(1, measured, Tuple{int64_t{1}, 21.5}).status());
  // A measurement "from the future" cannot be a transmission delay.
  EXPECT_FALSE(rel->InsertEvent(1, clock->Peek() + Duration::Minutes(5),
                                Tuple{int64_t{1}, 22.0})
                   .ok());
}

// §3.1: "a particular set-up for the sampling of temperatures may result in
// delays that always exceed 30 seconds. This gives rise to a delayed
// retroactive relation."
TEST(PaperExamples, Section31ThirtySecondSamplingDelay) {
  std::shared_ptr<LogicalClock> clock;
  RelationOptions options = Base(EventSchema("sampled"), &clock);
  options.specializations.AddEvent(
      EventSpecialization::DelayedRetroactive(Duration::Seconds(30)).ValueOrDie());
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();
  EXPECT_OK(rel->InsertEvent(1, clock->Peek() - Duration::Seconds(31),
                             Tuple{int64_t{1}, 0.0})
                .status());
  EXPECT_FALSE(rel->InsertEvent(1, clock->Peek() - Duration::Seconds(29),
                                Tuple{int64_t{1}, 0.0})
                   .ok());
}

// §3.1: the project-assignment relation — "While assignments may be recorded
// arbitrarily into the future, an assignment is required to be recorded in
// the database no later than one month after it is effective."
TEST(PaperExamples, Section31AssignmentsRetroactivelyBoundedOneMonth) {
  std::shared_ptr<LogicalClock> clock;
  RelationOptions options = Base(EventSchema("assignment_events"), &clock,
                                 Civil(1992, 3, 29));
  options.specializations.AddEvent(
      EventSpecialization::RetroactivelyBounded(Duration::Months(1)).ValueOrDie());
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();
  // Effective Feb 29, recorded Mar 29 00:00:00: exactly one (calendric)
  // month late — admitted on the boundary.
  EXPECT_OK(rel->InsertEvent(1, Civil(1992, 2, 29), Tuple{int64_t{1}, 0.0})
                .status());
  // Arbitrarily far in the future: fine.
  EXPECT_OK(rel->InsertEvent(1, Civil(1999, 1, 1), Tuple{int64_t{1}, 0.0})
                .status());
  // Effective Feb 28, recorded Mar 29+: more than one month late.
  EXPECT_FALSE(
      rel->InsertEvent(1, Civil(1992, 2, 28), Tuple{int64_t{1}, 0.0}).ok());
}

// §3.1: "transactions concerning future months are made to a separate
// relation" — the accounting relation is strongly bounded.
TEST(PaperExamples, Section31AccountingStronglyBounded) {
  std::shared_ptr<LogicalClock> clock;
  RelationOptions options = Base(EventSchema("ledger"), &clock);
  options.specializations.AddEvent(
      EventSpecialization::StronglyBounded(Duration::Days(5), Duration::Days(2))
          .ValueOrDie());
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();
  EXPECT_OK(rel->InsertEvent(1, clock->Peek() - Duration::Days(3),
                             Tuple{int64_t{1}, -42.0})
                .status());
  EXPECT_FALSE(rel->InsertEvent(1, clock->Peek() - Duration::Days(6),
                                Tuple{int64_t{1}, -42.0})
                   .ok());
  EXPECT_FALSE(rel->InsertEvent(1, clock->Peek() + Duration::Days(3),
                                Tuple{int64_t{1}, -42.0})
                   .ok());
}

// §3.1: "an order database in which pending orders, constrained by company
// policy to be no more than 30 days in the future, are stored along with
// previously filled orders."
TEST(PaperExamples, Section31OrdersPredictivelyBounded) {
  std::shared_ptr<LogicalClock> clock;
  RelationOptions options = Base(EventSchema("orders"), &clock);
  options.specializations.AddEvent(
      EventSpecialization::PredictivelyBounded(Duration::Days(30)).ValueOrDie());
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();
  EXPECT_OK(rel->InsertEvent(1, clock->Peek() - Duration::Days(400),
                             Tuple{int64_t{1}, 0.0})
                .status());  // ancient filled order
  EXPECT_OK(rel->InsertEvent(1, clock->Peek() + Duration::Days(29),
                             Tuple{int64_t{1}, 0.0})
                .status());  // pending, within policy
  EXPECT_FALSE(rel->InsertEvent(1, clock->Peek() + Duration::Days(31),
                                Tuple{int64_t{1}, 0.0})
                   .ok());
}

// §3.1: "a relation is predictively determined if it is valid from the next
// closest 8:00 a.m. Such a relation might be relevant in banking
// applications for deposits that are not effective until the start of the
// next business day."
TEST(PaperExamples, Section31BankDepositsPredictivelyDetermined) {
  std::shared_ptr<LogicalClock> clock;
  RelationOptions options =
      Base(EventSchema("deposits"), &clock, Civil(1992, 2, 3, 14, 30));
  options.specializations.AddEvent(EventSpecialization::Predictive().Determined(
      MappingFunction::NextPhase(Granularity::Day(), Duration::Hours(8))));
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();
  EXPECT_OK(rel->InsertEvent(1, Civil(1992, 2, 4, 8, 0), Tuple{int64_t{1}, 100.0})
                .status());
  EXPECT_FALSE(
      rel->InsertEvent(1, Civil(1992, 2, 4, 12, 0), Tuple{int64_t{1}, 100.0})
          .ok());
}

// §3.2: "an archeological relation that records information about
// progressively earlier periods uncovered as excavation proceeds" is
// globally non-increasing.
TEST(PaperExamples, Section32ArchaeologyNonIncreasing) {
  std::shared_ptr<LogicalClock> clock;
  RelationOptions options = Base(EventSchema("findings"), &clock);
  options.specializations.AddOrdering(OrderingSpec(OrderingKind::kNonIncreasing));
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();
  EXPECT_OK(rel->InsertEvent(1, Civil(1400, 1, 1), Tuple{int64_t{1}, 0.0})
                .status());
  EXPECT_OK(rel->InsertEvent(1, Civil(900, 1, 1), Tuple{int64_t{1}, 0.0})
                .status());
  EXPECT_FALSE(
      rel->InsertEvent(1, Civil(1200, 1, 1), Tuple{int64_t{1}, 0.0}).ok());
}

// §3.3: "a relation recording new hires and terminations that observes a
// company policy that all such hires and terminations be effective on
// either the first or the fifteenth of each month" — the 1st/15th grid is
// calendric, so the declaration here uses the 1-day unit that the policy's
// span lengths are multiples of.
TEST(PaperExamples, Section33EmploymentSpansDayRegular) {
  RelationOptions options;
  options.schema =
      Schema::Make("employment",
                   {AttributeDef{"employee", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey}},
                   ValidTimeKind::kInterval, Granularity::Day())
          .ValueOrDie();
  std::shared_ptr<LogicalClock> clock =
      std::make_shared<LogicalClock>(Civil(1992, 6, 1), Duration::Hours(1));
  options.clock = clock;
  options.specializations.AddIntervalRegularity(
      IntervalRegularitySpec::Make(IntervalRegularityDimension::kValidTime,
                                   Duration::Days(1))
          .ValueOrDie());
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();
  EXPECT_OK(rel->InsertInterval(1, Civil(1992, 1, 1), Civil(1992, 1, 15),
                                Tuple{int64_t{1}})
                .status());
  EXPECT_FALSE(rel->InsertInterval(2, Civil(1992, 1, 1),
                                   Civil(1992, 1, 15, 12, 0), Tuple{int64_t{2}})
                   .ok());
}

// §3.4: weekly assignments, recorded over the weekend — per surrogate
// sequential; recorded each Thursday — per surrogate non-decreasing but NOT
// sequential.
TEST(PaperExamples, Section34WeekendVsThursdayRecording) {
  auto make = [](auto add_specs) {
    RelationOptions options;
    options.schema =
        Schema::Make("weekly",
                     {AttributeDef{"employee", ValueType::kInt64,
                                   AttributeRole::kTimeInvariantKey}},
                     ValidTimeKind::kInterval, Granularity::Hour())
            .ValueOrDie();
    auto clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
    options.clock = clock;
    add_specs(&options.specializations);
    return std::make_pair(
        TemporalRelation::Open(std::move(options)).ValueOrDie(), clock);
  };

  {
    // Weekend recording: tt between the previous week's end and the next
    // week's start — sequential holds.
    auto [rel, clock] = make([](SpecializationSet* s) {
      s->AddIntervalOrdering(IntervalOrderingSpec(
          IntervalOrderingKind::kSequential, SpecScope::kPerObjectSurrogate));
    });
    clock->SetTo(T(90));
    ASSERT_OK(rel->InsertInterval(1, T(100), T(200), Tuple{int64_t{1}}).status());
    clock->SetTo(T(205));
    EXPECT_OK(rel->InsertInterval(1, T(210), T(310), Tuple{int64_t{1}}).status());
  }
  {
    // Thursday recording: tt inside the current week — sequential fails,
    // non-decreasing holds.
    auto [rel, clock] = make([](SpecializationSet* s) {
      s->AddIntervalOrdering(IntervalOrderingSpec(
          IntervalOrderingKind::kSequential, SpecScope::kPerObjectSurrogate));
    });
    clock->SetTo(T(90));
    ASSERT_OK(rel->InsertInterval(1, T(100), T(200), Tuple{int64_t{1}}).status());
    clock->SetTo(T(150));  // mid-week
    EXPECT_FALSE(
        rel->InsertInterval(1, T(200), T(300), Tuple{int64_t{1}}).ok());
  }
  {
    auto [rel, clock] = make([](SpecializationSet* s) {
      s->AddIntervalOrdering(IntervalOrderingSpec(
          IntervalOrderingKind::kNonDecreasing, SpecScope::kPerObjectSurrogate));
    });
    clock->SetTo(T(90));
    ASSERT_OK(rel->InsertInterval(1, T(100), T(200), Tuple{int64_t{1}}).status());
    clock->SetTo(T(150));
    EXPECT_OK(rel->InsertInterval(1, T(200), T(300), Tuple{int64_t{1}}).status());
  }
}

// §3.1 (implementation level): "a degenerate temporal relation can be
// advantageously treated as a rollback relation" — and §4's Postgres note:
// rollback relations with valid-time examples ARE temporal relations. A
// degenerate relation answers both query classes identically.
TEST(PaperExamples, Section4DegenerateRollbackEqualsTimeslice) {
  std::shared_ptr<LogicalClock> clock;
  RelationOptions options = Base(EventSchema("postgres_style"), &clock);
  options.specializations.AddEvent(EventSpecialization::Degenerate());
  auto rel = TemporalRelation::Open(std::move(options)).ValueOrDie();
  for (int i = 0; i < 50; ++i) {
    const TimePoint now = clock->Peek();
    ASSERT_OK(rel->InsertEvent(1, now, Tuple{int64_t{1}, 1.0 * i}).status());
  }
  QueryExecutor exec(*rel);
  for (size_t i = 5; i < 50; i += 7) {
    const Element& probe = rel->elements()[i];
    // The facts valid at vt are exactly the facts stored at vt... visible in
    // the rollback state at that stamp.
    const auto slice = exec.Timeslice(probe.valid.at());
    ASSERT_EQ(slice.size(), 1u);
    const auto state = exec.Rollback(probe.tt_begin);
    EXPECT_EQ(state.size(), i + 1);  // append-only growth
    EXPECT_EQ(slice[0].element_surrogate, probe.element_surrogate);
  }
}

}  // namespace
}  // namespace tempspec
