#include "query/plan.h"

namespace tempspec {

const char* ExecutionStrategyToString(ExecutionStrategy s) {
  switch (s) {
    case ExecutionStrategy::kFullScan:
      return "full scan";
    case ExecutionStrategy::kValidIndex:
      return "valid-time interval index";
    case ExecutionStrategy::kTransactionWindow:
      return "transaction-time window scan";
    case ExecutionStrategy::kRollbackEquivalence:
      return "rollback equivalence (degenerate)";
    case ExecutionStrategy::kMonotoneBinarySearch:
      return "monotone binary search";
  }
  return "unknown";
}

}  // namespace tempspec
