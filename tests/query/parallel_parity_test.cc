// Strategy-parity property test for the morsel-parallel execution layer.
//
// The engine's determinism guarantee: for every ExecutionStrategy, serial and
// parallel execution return identical, position-ordered results — the same
// positions, the same elements, byte for byte. This test drives randomized
// workloads (event and interval relations) through every strategy under a
// serial executor, a parallel executor with tiny morsels (forcing many
// morsels even at test sizes), and a parallel executor with default knobs,
// and asserts exact equality. Built with -DTEMPSPEC_SANITIZE=thread this is
// also the race-check for the ThreadPool and the per-morsel buffers.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "query/executor.h"
#include "storage/snapshot.h"
#include "testing.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/workloads.h"

namespace tempspec {
namespace {

using testing::T;

bool SameElement(const Element& a, const Element& b) {
  return a.element_surrogate == b.element_surrogate &&
         a.object_surrogate == b.object_surrogate && a.tt_begin == b.tt_begin &&
         a.tt_end == b.tt_end && a.valid == b.valid &&
         a.attributes == b.attributes;
}

void ExpectIdentical(const ResultSet& serial, const ResultSet& parallel,
                     const char* what) {
  ASSERT_EQ(serial.positions(), parallel.positions()) << what;
  const std::vector<Element> a = serial.Materialize();
  ThreadPool pool(4);
  const std::vector<Element> b = parallel.Materialize(&pool);
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(SameElement(a[i], b[i])) << what << " element " << i;
  }
}

/// \brief All executors over one relation: serial, parallel with morsels
/// small enough that every strategy fans out, and parallel with defaults.
struct ExecutorTriple {
  explicit ExecutorTriple(const TemporalRelation& rel)
      : pool(4),
        serial(rel, ExecutorOptions{.pool = nullptr}),
        tiny_morsels(rel, ExecutorOptions{.pool = &pool,
                                          .morsel_size = 61,
                                          .parallel_cutoff = 1}),
        defaults(rel, ExecutorOptions{.pool = &pool}) {}
  ThreadPool pool;
  QueryExecutor serial;
  QueryExecutor tiny_morsels;
  QueryExecutor defaults;
};

void CheckAllStrategiesAtPoint(ExecutorTriple& exec, TimePoint vt,
                               TimePoint range_hi, TimePoint as_of) {
  // Every strategy that is executable regardless of declared specialization,
  // plus whatever the optimizer actually picked.
  std::vector<PlanChoice> plans = {
      PlanChoice{ExecutionStrategy::kFullScan, TimeInterval::All(), ""},
      PlanChoice{ExecutionStrategy::kValidIndex, TimeInterval::All(), ""},
      exec.serial.optimizer().PlanTimeslice(vt),
  };
  for (const PlanChoice& plan : plans) {
    const char* what = ExecutionStrategyToString(plan.strategy);
    ExpectIdentical(exec.serial.TimesliceSetWith(plan, vt),
                    exec.tiny_morsels.TimesliceSetWith(plan, vt), what);
    ExpectIdentical(exec.serial.TimesliceSetWith(plan, vt),
                    exec.defaults.TimesliceSetWith(plan, vt), what);
    ExpectIdentical(exec.serial.ValidRangeSetWith(plan, vt, range_hi),
                    exec.tiny_morsels.ValidRangeSetWith(plan, vt, range_hi),
                    what);
  }
  ExpectIdentical(exec.serial.TimesliceSet(vt),
                  exec.tiny_morsels.TimesliceSet(vt), "planned timeslice");
  ExpectIdentical(exec.serial.CurrentSet(), exec.tiny_morsels.CurrentSet(),
                  "current");
  ExpectIdentical(exec.serial.RollbackSet(as_of),
                  exec.tiny_morsels.RollbackSet(as_of), "rollback");
  ExpectIdentical(exec.serial.TimesliceAsOfSet(vt, as_of),
                  exec.tiny_morsels.TimesliceAsOfSet(vt, as_of), "as-of");
}

TEST(ParallelParityTest, EventRelationBandedStrategies) {
  WorkloadConfig config;
  config.num_objects = 16;
  config.ops_per_object = 200;  // 3200 elements
  ASSERT_OK_AND_ASSIGN(
      auto scenario, MakeProcessMonitoring(config, Duration::Seconds(30),
                                           Duration::Seconds(120),
                                           Duration::Minutes(1)));
  ASSERT_OK(GenerateProcessMonitoring(config, Duration::Seconds(30),
                                      Duration::Seconds(120),
                                      Duration::Minutes(1), &scenario));
  ExecutorTriple exec(*scenario.relation);
  ASSERT_TRUE(exec.serial.optimizer().CombinedFixedBand().has_value());

  Random rng(101);
  const auto elements = scenario->elements();
  for (int trial = 0; trial < 24; ++trial) {
    const Element& probe =
        elements[static_cast<size_t>(rng.Uniform(0, elements.size() - 1))];
    const TimePoint vt = probe.valid.at();
    const TimePoint hi = vt + Duration::Seconds(rng.Uniform(1, 900));
    const TimePoint as_of = probe.tt_begin + Duration::Seconds(rng.Uniform(0, 50));
    CheckAllStrategiesAtPoint(exec, vt, hi, as_of);
  }
}

TEST(ParallelParityTest, EventRelationMonotoneStrategy) {
  RelationOptions options;
  options.schema =
      Schema::Make("mono",
                   {AttributeDef{"id", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey}},
                   ValidTimeKind::kEvent, Granularity::Second())
          .ValueOrDie();
  options.clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  options.specializations.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  Random rng(7);
  int64_t vt = 0;
  for (int i = 0; i < 2000; ++i) {
    vt += rng.Uniform(0, 3);
    ASSERT_OK(rel->InsertEvent(i % 5 + 1, T(vt), Tuple{int64_t{i}}).status());
  }
  ExecutorTriple exec(*rel);
  ASSERT_EQ(exec.serial.optimizer().PlanTimeslice(T(0)).strategy,
            ExecutionStrategy::kMonotoneBinarySearch);
  for (int trial = 0; trial < 16; ++trial) {
    const TimePoint q = T(rng.Uniform(0, vt + 10));
    CheckAllStrategiesAtPoint(exec, q, q + Duration::Seconds(rng.Uniform(1, 200)),
                              T(rng.Uniform(0, 2000)));
  }
}

TEST(ParallelParityTest, IntervalRelationStrategies) {
  WorkloadConfig config;
  config.num_objects = 8;
  config.ops_per_object = 256;  // 2048 interval elements
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeAssignments(config));
  ASSERT_OK(GenerateAssignments(config, &scenario));
  ExecutorTriple exec(*scenario.relation);

  Random rng(55);
  const auto elements = scenario->elements();
  for (int trial = 0; trial < 16; ++trial) {
    const Element& probe =
        elements[static_cast<size_t>(rng.Uniform(0, elements.size() - 1))];
    const TimePoint vt = probe.valid.begin();
    const TimePoint hi = probe.valid.end() + Duration::Days(rng.Uniform(0, 30));
    CheckAllStrategiesAtPoint(exec, vt, hi,
                              probe.tt_begin + Duration::Hours(1));
  }
}

TEST(ParallelParityTest, ColumnarBitmapMorselPathMatchesSerial) {
  // The columnar kernels emit per-morsel selection bitmaps that drain into
  // private buffers concatenated in morsel order; under TSan this is the
  // race-check for that path (each worker writes only its morsel's buffer
  // and StampStore columns are read-only during queries). Forces the
  // generic kernel onto full scans with tiny morsels, and runs the planned
  // degenerate path (degenerate_columnar inside a granule-aligned window)
  // the same way.
  RelationOptions options;
  options.schema =
      Schema::Make("bitmap",
                   {AttributeDef{"id", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey}},
                   ValidTimeKind::kEvent, Granularity::Second())
          .ValueOrDie();
  auto clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  options.clock = clock;
  options.specializations.AddEvent(EventSpecialization::Degenerate());
  ASSERT_OK_AND_ASSIGN(auto rel, TemporalRelation::Open(std::move(options)));
  Random rng(77);
  for (int i = 0; i < 3000; ++i) {
    auto s = rel->InsertEvent(i % 7, clock->Peek(), Tuple{int64_t{i}});
    ASSERT_OK(s.status());
    // Close some stamps so the bitmaps exercise the existence half too.
    if (rng.Uniform(0, 9) == 0) ASSERT_OK(rel->LogicalDelete(s.ValueOrDie()));
  }
  ExecutorTriple exec(*rel);
  ASSERT_EQ(exec.serial.optimizer().PlanTimeslice(T(5)).kernel,
            ScanKernel::kDegenerate);

  PlanChoice generic{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
  generic.kernel = ScanKernel::kGeneric;
  for (int trial = 0; trial < 16; ++trial) {
    const TimePoint lo = T(rng.Uniform(0, 3000));
    const TimePoint hi = lo + Duration::Seconds(rng.Uniform(1, 400));
    ExpectIdentical(exec.serial.ValidRangeSetWith(generic, lo, hi),
                    exec.tiny_morsels.ValidRangeSetWith(generic, lo, hi),
                    "generic_columnar bitmap morsels");
    ExpectIdentical(exec.serial.ValidRangeSetWith(generic, lo, hi),
                    exec.defaults.ValidRangeSetWith(generic, lo, hi),
                    "generic_columnar default morsels");
    ExpectIdentical(exec.serial.ValidRangeSet(lo, hi),
                    exec.tiny_morsels.ValidRangeSet(lo, hi),
                    "degenerate_columnar bitmap morsels");
    ExpectIdentical(exec.serial.CurrentSet(), exec.tiny_morsels.CurrentSet(),
                    "existence_columnar bitmap morsels");
  }
}

TEST(ParallelParityTest, MaterializeAdaptersMatchSets) {
  WorkloadConfig config;
  config.num_objects = 8;
  config.ops_per_object = 128;
  ASSERT_OK_AND_ASSIGN(auto scenario,
                       MakeGeneral(config));
  ASSERT_OK(GenerateGeneral(config, Duration::Hours(2), &scenario));
  ThreadPool pool(3);
  QueryExecutor exec(*scenario.relation,
                     ExecutorOptions{.pool = &pool,
                                     .morsel_size = 37,
                                     .parallel_cutoff = 1});
  const TimePoint vt = scenario->elements()[100].valid.begin();
  const auto via_adapter = exec.Timeslice(vt);
  const auto via_set = exec.TimesliceSet(vt).Materialize();
  ASSERT_EQ(via_adapter.size(), via_set.size());
  for (size_t i = 0; i < via_adapter.size(); ++i) {
    ASSERT_TRUE(SameElement(via_adapter[i], via_set[i]));
  }
  // Zero-copy views index the same elements the adapter copied.
  const ResultSet set = exec.TimesliceSet(vt);
  for (size_t i = 0; i < set.size(); ++i) {
    ASSERT_TRUE(SameElement(set[i], via_adapter[i]));
  }
}

TEST(ParallelParityTest, SnapshotParallelReplayMatchesSerial) {
  WorkloadConfig config;
  config.num_objects = 16;
  config.ops_per_object = 256;
  config.snapshot_interval = 512;
  ASSERT_OK_AND_ASSIGN(
      auto scenario, MakeProcessMonitoring(config, Duration::Seconds(30),
                                           Duration::Seconds(120),
                                           Duration::Minutes(1)));
  ASSERT_OK(GenerateProcessMonitoring(config, Duration::Seconds(30),
                                      Duration::Seconds(120),
                                      Duration::Minutes(1), &scenario));
  ASSERT_NE(scenario->snapshots(), nullptr);
  ASSERT_GT(scenario->snapshots()->snapshot_count(), 0u);
  ThreadPool pool(4);
  Random rng(23);
  for (int trial = 0; trial < 12; ++trial) {
    const size_t i = static_cast<size_t>(rng.Uniform(0, scenario->size() - 1));
    const TimePoint tt = scenario->elements()[i].tt_begin;
    const auto serial = scenario->StateAt(tt);
    const auto parallel = scenario->StateAt(tt, &pool);
    ASSERT_EQ(serial.size(), parallel.size()) << "tt=" << tt.ToString();
    for (size_t k = 0; k < serial.size(); ++k) {
      ASSERT_TRUE(SameElement(serial[k], parallel[k])) << "tt=" << tt.ToString();
    }
    // Sorted-by-surrogate contract, and agreement with a manual scan.
    ASSERT_TRUE(std::is_sorted(serial.begin(), serial.end(),
                               [](const Element& a, const Element& b) {
                                 return a.element_surrogate < b.element_surrogate;
                               }));
    size_t expected = 0;
    for (const Element& e : scenario->elements()) {
      if (e.ExistsAt(tt)) ++expected;
    }
    ASSERT_EQ(serial.size(), expected);
  }
}

TEST(ParallelParityTest, StatsCountMorselsAndTime) {
  WorkloadConfig config;
  config.num_objects = 8;
  config.ops_per_object = 128;
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeGeneral(config));
  ASSERT_OK(GenerateGeneral(config, Duration::Hours(2), &scenario));
  ThreadPool pool(4);
  QueryExecutor parallel(*scenario.relation,
                         ExecutorOptions{.pool = &pool,
                                         .morsel_size = 64,
                                         .parallel_cutoff = 1});
  QueryExecutor serial(*scenario.relation, ExecutorOptions{.pool = nullptr});
  QueryStats ps, ss;
  const PlanChoice scan{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
  const TimePoint vt = scenario->elements()[17].valid.begin();
  parallel.TimesliceSetWith(scan, vt, &ps);
  serial.TimesliceSetWith(scan, vt, &ss);
  EXPECT_EQ(ss.morsels_executed, 1u);
  EXPECT_EQ(ps.morsels_executed, (scenario->size() + 63) / 64);
  EXPECT_EQ(ps.elements_examined, ss.elements_examined);
  EXPECT_EQ(ps.results, ss.results);
  // Wall-clock and summed per-morsel CPU time are tracked separately. A
  // serial query times its (single) scan loop inside the wall interval, so
  // cpu can never exceed wall. (At this size both may round to 0us — the
  // positive-clock assertions live in the large-workload test below.)
  EXPECT_LE(ss.cpu_micros, ss.wall_micros);
  // Merge must keep the two clocks apart — summing them into one figure was
  // the historical bug this guards against.
  QueryStats merged;
  merged.Merge(ps);
  merged.Merge(ss);
  EXPECT_EQ(merged.results, ps.results + ss.results);
  EXPECT_EQ(merged.morsels_executed,
            ps.morsels_executed + ss.morsels_executed);
  EXPECT_EQ(merged.wall_micros, ps.wall_micros + ss.wall_micros);
  EXPECT_EQ(merged.cpu_micros, ps.cpu_micros + ss.cpu_micros);
}

TEST(ParallelParityTest, WallClockBoundedBySummedMorselTimeUnderParallelism) {
  // The point of splitting QueryStats::wall_micros from cpu_micros: when
  // morsels genuinely overlap, the per-morsel durations sum to more than the
  // elapsed wall time — that surplus IS the parallel speedup. Overlap needs
  // real cores; on a single-CPU host the scheduler serializes morsels and
  // the inequality can legitimately fail, so there the test only checks that
  // both clocks tick and stay separate.
  WorkloadConfig config;
  config.num_objects = 16;
  config.ops_per_object = 4096;  // 65536 elements: several ms of scan
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeGeneral(config));
  ASSERT_OK(GenerateGeneral(config, Duration::Hours(2), &scenario));
  ThreadPool pool(4);
  QueryExecutor parallel(*scenario.relation,
                         ExecutorOptions{.pool = &pool,
                                         .morsel_size = 2048,
                                         .parallel_cutoff = 1});
  const PlanChoice scan{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
  const TimePoint vt = scenario->elements()[999].valid.begin();
  // Warm up the pool so thread spin-up does not land in the measured wall.
  { QueryStats warm; parallel.TimesliceSetWith(scan, vt, &warm); }

  if (std::thread::hardware_concurrency() >= 2) {
    bool overlapped = false;
    for (int trial = 0; trial < 10 && !overlapped; ++trial) {
      QueryStats ps;
      parallel.TimesliceSetWith(scan, vt, &ps);
      ASSERT_GT(ps.morsels_executed, 1u);
      overlapped = ps.wall_micros <= ps.cpu_micros;
    }
    EXPECT_TRUE(overlapped)
        << "no trial showed wall <= summed per-morsel time on a "
        << std::thread::hardware_concurrency() << "-core host";
  } else {
    QueryStats ps;
    parallel.TimesliceSetWith(scan, vt, &ps);
    EXPECT_GT(ps.morsels_executed, 1u);
    EXPECT_GT(ps.wall_micros, 0u);
    EXPECT_GT(ps.cpu_micros, 0u);
  }
}

}  // namespace
}  // namespace tempspec
