// Trace spans for queries and background work.
//
// A TraceContext is attached to one query execution (via ExecutorOptions) —
// or, since the flight-recorder PR, created locally by background work
// (recovery, checkpoint, compaction, vacuum) — and records what the metrics
// registry can only aggregate: which plan the optimizer chose for *this*
// query, how many elements it examined vs returned, how many buffer-pool
// pages it touched, and how long each stage took. query_lang's EXPLAIN
// ANALYZE surfaces the span as single-line JSON; completed spans are also
// sampled into the RetainedTraces ring below, so recent spans survive after
// the query returns and are joinable from slowlog entries by trace id.
//
// Unlike the TS_* metric macros, tracing is a runtime opt-in rather than a
// compile-time one: a query with no attached context pays only a null-pointer
// check, so the span machinery is always compiled in and works in
// TEMPSPEC_METRICS=OFF trees too.
#ifndef TEMPSPEC_OBS_TRACE_H_
#define TEMPSPEC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tempspec {

/// \brief One recorded stage of a span: (name, wall micros).
struct TraceStage {
  std::string name;
  uint64_t micros = 0;
};

/// \brief A single query's trace span. Not thread-safe: one context belongs
/// to one query execution, and the executor records into it only from the
/// calling thread (per-morsel work aggregates through QueryStats first).
///
/// Exception: the cancellation plumbing below IS thread-safe. A deadline or
/// cancel request may arrive from another thread (the server's event loop,
/// a disconnecting client) while the query runs; the executor polls
/// CancellationRequested() at morsel boundaries, so an in-flight long scan
/// stops within one morsel of the deadline instead of running to completion.
class TraceContext {
 public:
  TraceContext() = default;

  /// \brief Starts the span clock and names it (e.g. "query.timeslice").
  ///
  /// Nest-aware: a Begin() on a span that is already running (a server-owned
  /// request span reaching the executor, which names its own query span)
  /// keeps the outer clock and trace id, records the inner name as the
  /// "inner_span" attribute, and bumps a nesting depth so the matching
  /// End() does not finalize the outer span early.
  void Begin(std::string name);
  /// \brief Stops the span clock. Idempotent; ToJson() calls it if needed.
  /// Pops one nested Begin() first when the span is nested.
  void End();

  bool started() const { return started_; }
  const std::string& name() const { return name_; }
  uint64_t wall_micros() const { return wall_micros_; }
  /// \brief Process-unique id, assigned by Begin() (0 before). Stamped into
  /// ToJson() and slow-query entries so a slow query joins to its retained
  /// span in /debug/traces.
  uint64_t trace_id() const { return trace_id_; }

  // -- Wire trace identity (distributed tracing) -----------------------------

  /// \brief Adopts a client-generated 128-bit trace id plus the client's
  /// span id as this span's parent. Survives Begin(); stamped into ToJson()
  /// as "wire_trace"/"parent_span" so slowlog entries, retained traces, and
  /// EXPLAIN ANALYZE output all join to the client-observed request.
  void SetWireTrace(uint64_t hi, uint64_t lo, uint64_t parent_span_id);
  bool has_wire_trace() const { return wire_trace_set_; }
  uint64_t wire_trace_hi() const { return wire_trace_hi_; }
  uint64_t wire_trace_lo() const { return wire_trace_lo_; }
  uint64_t parent_span_id() const { return parent_span_id_; }
  /// \brief The 128-bit id as 32 lowercase hex chars ("" when unset).
  std::string WireTraceId() const;

  /// \brief Marks the span as owned by the network server, which records it
  /// into the slowlog/retained ring at response completion — query_lang must
  /// then not record the same span a second time mid-request.
  void SetServerOwned(bool owned) { server_owned_ = owned; }
  bool server_owned() const { return server_owned_; }

  /// \brief Sets a string attribute (last write wins), e.g. plan strategy.
  void SetAttr(const std::string& key, std::string value);
  /// \brief Adds to a numeric counter, e.g. elements_examined.
  void AddCounter(const std::string& key, uint64_t n);
  /// \brief Counter value, 0 when absent.
  uint64_t counter(const std::string& key) const;
  /// \brief Attribute value, "" when absent.
  const std::string& attr(const std::string& key) const;

  /// \brief Records a completed stage duration.
  void AddStage(std::string name, uint64_t micros);
  const std::vector<TraceStage>& stages() const { return stages_; }

  // -- Deadline & cancellation (thread-safe, unlike the rest of the span) ----

  /// \brief Arms an absolute steady-clock deadline. After it passes,
  /// CancellationRequested() returns true. Zero/default disarms.
  void ArmDeadline(std::chrono::steady_clock::time_point deadline);
  /// \brief Convenience: deadline = now + micros (0 disarms).
  void ArmDeadlineAfterMicros(uint64_t micros);
  /// \brief Requests cooperative cancellation (idempotent; any thread).
  void RequestCancel() { cancel_.store(true, std::memory_order_release); }
  /// \brief True when cancelled explicitly or the armed deadline has passed.
  /// Cheap enough for morsel-boundary polling: one relaxed load, plus a
  /// clock read only while a deadline is armed.
  bool CancellationRequested() const;
  bool has_deadline() const {
    return deadline_nanos_.load(std::memory_order_relaxed) != 0;
  }

  /// \brief RAII stage timer: times from construction to destruction and
  /// appends a TraceStage. Safe with a null context (no-op).
  class StageScope {
   public:
    StageScope(TraceContext* ctx, std::string name);
    ~StageScope();
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

   private:
    TraceContext* ctx_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
  };

  /// \brief Single-line JSON:
  /// {"span":"query.timeslice","trace_id":N,"wall_micros":N,
  ///  "attrs":{"strategy":"valid_index",...},
  ///  "counters":{"elements_examined":N,...},
  ///  "stages":[{"name":"plan","micros":N},...]}
  std::string ToJson() const;

 private:
  std::string name_;
  uint64_t trace_id_ = 0;
  uint64_t wire_trace_hi_ = 0;
  uint64_t wire_trace_lo_ = 0;
  uint64_t parent_span_id_ = 0;
  bool wire_trace_set_ = false;
  bool server_owned_ = false;
  int nest_depth_ = 0;
  bool started_ = false;
  bool ended_ = false;
  std::chrono::steady_clock::time_point start_;
  uint64_t wall_micros_ = 0;
  /// Cancellation state: a sticky flag plus an armed deadline as
  /// steady-clock nanoseconds since epoch (0 = no deadline). Atomics so the
  /// server's event loop can cancel a query the worker is executing.
  std::atomic<bool> cancel_{false};
  std::atomic<int64_t> deadline_nanos_{0};
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::pair<std::string, uint64_t>> counters_;
  std::vector<TraceStage> stages_;
};

/// \brief One retained completed span.
struct RetainedTrace {
  uint64_t trace_id = 0;
  uint64_t unix_micros = 0;  // retention time
  std::string span;          // span name (e.g. "background.vacuum")
  std::string json;          // TraceContext::ToJson() of the completed span
};

/// \brief Sampled retention ring for completed spans, so recent query and
/// background spans outlive the work that produced them. Mutex-guarded like
/// the slowlog — retention happens at most once per span, never on a
/// per-element path.
class RetainedTraces {
 public:
  /// \brief Process-wide instance (fed by query_lang and background work,
  /// read by /debug/traces and SHOW TRACES). Tests use free instances.
  static RetainedTraces& Instance();

  explicit RetainedTraces(size_t capacity = 128, uint64_t sample_every = 1)
      : capacity_(capacity), sample_every_(sample_every) {}

  /// \brief Ring capacity; shrinking drops the oldest spans.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  /// \brief Keeps 1 of every n completed spans (1 = keep all, 0 = disable
  /// retention entirely).
  void SetSampleEvery(uint64_t n);
  uint64_t sample_every() const;

  /// \brief Applies TEMPSPEC_TRACE_CAPACITY / TEMPSPEC_TRACE_SAMPLE when
  /// set (called by TelemetryExporter::MaybeStartFromEnv).
  void ConfigureFromEnv();

  /// \brief Considers one completed span (ends it if the caller has not)
  /// and retains it when the sampler selects it.
  void Record(TraceContext& trace);

  /// \brief The retained spans, oldest first.
  std::vector<RetainedTrace> Entries() const;

  /// \brief Completed spans offered / actually retained.
  uint64_t TotalSeen() const;
  uint64_t TotalRetained() const;

  /// \brief Empties the ring and resets the sampler (tests).
  void Clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t sample_every_;
  uint64_t seen_ = 0;
  uint64_t retained_ = 0;
  std::vector<RetainedTrace> ring_;  // oldest first
};

}  // namespace tempspec

#endif  // TEMPSPEC_OBS_TRACE_H_
