#include "spec/event_spec.h"

#include <gtest/gtest.h>

#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::Civil;
using testing::MakeEventElement;
using testing::T;

const Granularity kSec = Granularity::Second();

Status CheckPair(const EventSpecialization& spec, TimePoint tt, TimePoint vt) {
  return spec.CheckElement(MakeEventElement(tt, vt), kSec);
}

// --- Definitions from Section 3.1, one test per specialized type -----------

TEST(EventSpecTest, Retroactive) {
  const auto spec = EventSpecialization::Retroactive();
  EXPECT_OK(CheckPair(spec, T(100), T(50)));
  EXPECT_OK(CheckPair(spec, T(100), T(100)));  // vt <= tt, closed
  EXPECT_NOT_OK(CheckPair(spec, T(100), T(101)));
}

TEST(EventSpecTest, DelayedRetroactive) {
  ASSERT_OK_AND_ASSIGN(auto spec, EventSpecialization::DelayedRetroactive(
                                      Duration::Seconds(30)));
  EXPECT_OK(CheckPair(spec, T(100), T(70)));
  EXPECT_OK(CheckPair(spec, T(100), T(50)));
  EXPECT_NOT_OK(CheckPair(spec, T(100), T(71)));  // delay only 29s
  EXPECT_NOT_OK(CheckPair(spec, T(100), T(100)));
  // Δt must be positive.
  EXPECT_FALSE(EventSpecialization::DelayedRetroactive(Duration::Zero()).ok());
  EXPECT_FALSE(
      EventSpecialization::DelayedRetroactive(Duration::Seconds(-5)).ok());
}

TEST(EventSpecTest, Predictive) {
  const auto spec = EventSpecialization::Predictive();
  EXPECT_OK(CheckPair(spec, T(100), T(150)));
  EXPECT_OK(CheckPair(spec, T(100), T(100)));
  EXPECT_NOT_OK(CheckPair(spec, T(100), T(99)));
}

TEST(EventSpecTest, EarlyPredictive) {
  ASSERT_OK_AND_ASSIGN(auto spec,
                       EventSpecialization::EarlyPredictive(Duration::Days(3)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(3)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(5)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(2)));
}

TEST(EventSpecTest, RetroactivelyBounded) {
  ASSERT_OK_AND_ASSIGN(auto spec, EventSpecialization::RetroactivelyBounded(
                                      Duration::Days(30)));
  // "the valid time-stamp may exceed the transaction time-stamp": future
  // assignments may be recorded arbitrarily early.
  EXPECT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(400)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(30)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(31)));
  // Δt = 0 is allowed (degenerates to predictive).
  EXPECT_TRUE(EventSpecialization::RetroactivelyBounded(Duration::Zero()).ok());
}

TEST(EventSpecTest, PredictivelyBounded) {
  ASSERT_OK_AND_ASSIGN(auto spec, EventSpecialization::PredictivelyBounded(
                                      Duration::Days(30)));
  // Past and near-term future only (the pending-orders example).
  EXPECT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(1000)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(30)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(31)));
}

TEST(EventSpecTest, StronglyRetroactivelyBounded) {
  ASSERT_OK_AND_ASSIGN(auto spec,
                       EventSpecialization::StronglyRetroactivelyBounded(
                           Duration::Days(30)));
  EXPECT_OK(CheckPair(spec, T(0), T(0)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(30)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) + Duration::Seconds(1)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(31)));
}

TEST(EventSpecTest, DelayedStronglyRetroactivelyBounded) {
  // Assignments recorded at least 2 days and at most 1 month late.
  ASSERT_OK_AND_ASSIGN(
      auto spec, EventSpecialization::DelayedStronglyRetroactivelyBounded(
                     Duration::Days(2), Duration::Days(31)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(2)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(31)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(10)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(1)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(32)));
  // Requires Δt_min < Δt_max.
  EXPECT_FALSE(EventSpecialization::DelayedStronglyRetroactivelyBounded(
                   Duration::Days(5), Duration::Days(5))
                   .ok());
  EXPECT_FALSE(EventSpecialization::DelayedStronglyRetroactivelyBounded(
                   Duration::Days(6), Duration::Days(5))
                   .ok());
}

TEST(EventSpecTest, StronglyPredictivelyBounded) {
  ASSERT_OK_AND_ASSIGN(auto spec,
                       EventSpecialization::StronglyPredictivelyBounded(
                           Duration::Days(7)));
  EXPECT_OK(CheckPair(spec, T(0), T(0)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(7)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) - Duration::Seconds(1)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(8)));
}

TEST(EventSpecTest, EarlyStronglyPredictivelyBounded) {
  // The direct-deposit example: tape sent 3..7 days ahead.
  ASSERT_OK_AND_ASSIGN(
      auto spec, EventSpecialization::EarlyStronglyPredictivelyBounded(
                     Duration::Days(3), Duration::Days(7)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(3)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(7)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(2)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(8)));
}

TEST(EventSpecTest, StronglyBounded) {
  ASSERT_OK_AND_ASSIGN(auto spec, EventSpecialization::StronglyBounded(
                                      Duration::Days(5), Duration::Days(2)));
  EXPECT_OK(CheckPair(spec, T(0), T(0)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(5)));
  EXPECT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(2)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) - Duration::Days(6)));
  EXPECT_NOT_OK(CheckPair(spec, T(0), T(0) + Duration::Days(3)));
}

TEST(EventSpecTest, DegenerateUsesGranularity) {
  const auto spec = EventSpecialization::Degenerate();
  // Identical within one second.
  EXPECT_OK(spec.CheckElement(
      MakeEventElement(T(100) + Duration::Micros(100),
                       T(100) + Duration::Micros(900)),
      kSec));
  EXPECT_NOT_OK(spec.CheckElement(MakeEventElement(T(100), T(101)), kSec));
  // Coarser granularity admits bigger gaps.
  EXPECT_OK(spec.CheckElement(MakeEventElement(T(100), T(101)),
                              Granularity::Minute()));
}

TEST(EventSpecTest, CalendricBound) {
  // Recorded no later than one calendar month after becoming effective.
  ASSERT_OK_AND_ASSIGN(auto spec, EventSpecialization::RetroactivelyBounded(
                                      Duration::Months(1)));
  EXPECT_OK(CheckPair(spec, Civil(1992, 3, 29), Civil(1992, 2, 29)));
  EXPECT_NOT_OK(CheckPair(spec, Civil(1992, 3, 29), Civil(1992, 2, 28)));
}

// --- Open (<) variants, per completeness assumption 4 -----------------------

TEST(EventSpecTest, OpenVariantsExcludeTheBoundary) {
  const auto retro_open = EventSpecialization::Retroactive(/*open=*/true);
  EXPECT_OK(CheckPair(retro_open, T(100), T(99)));
  EXPECT_NOT_OK(CheckPair(retro_open, T(100), T(100)));  // vt < tt strictly

  const auto pred_open = EventSpecialization::Predictive(/*open=*/true);
  EXPECT_OK(CheckPair(pred_open, T(100), T(101)));
  EXPECT_NOT_OK(CheckPair(pred_open, T(100), T(100)));

  ASSERT_OK_AND_ASSIGN(auto delayed_open, EventSpecialization::DelayedRetroactive(
                                              Duration::Seconds(30), /*open=*/true));
  EXPECT_OK(CheckPair(delayed_open, T(100), T(69)));
  EXPECT_NOT_OK(CheckPair(delayed_open, T(100), T(70)));  // exactly 30s

  // Mixed: open specializes closed, never the reverse.
  EXPECT_EQ(retro_open.Implies(EventSpecialization::Retroactive()),
            std::optional<bool>(true));
  EXPECT_EQ(EventSpecialization::Retroactive().Implies(retro_open),
            std::optional<bool>(false));
}

// --- Anchors (insertion vs deletion, Section 3.1 preamble) -----------------

TEST(EventSpecTest, DeletionAnchorOnlyConstrainsDeletedElements) {
  const auto spec = EventSpecialization::Retroactive().WithAnchor(
      TransactionAnchor::kDeletion);
  // Current element (tt_d open): passes vacuously even with future vt.
  Element current = MakeEventElement(T(100), T(5000));
  EXPECT_OK(spec.CheckElement(current, kSec));
  // Deleted before the valid time: violates deletion-retroactive.
  Element deleted = MakeEventElement(T(100), T(5000));
  deleted.tt_end = T(200);
  EXPECT_NOT_OK(spec.CheckElement(deleted, kSec));
  // Deleted after the valid time: fine.
  deleted.tt_end = T(6000);
  EXPECT_OK(spec.CheckElement(deleted, kSec));
}

TEST(EventSpecTest, InsertionRetroactiveButNotDeletionRetroactive) {
  // "it is possible for a relation to be deletion retroactive but not
  // insertion retroactive" — the two anchors are independent.
  const auto ins = EventSpecialization::Retroactive();
  const auto del = EventSpecialization::Retroactive().WithAnchor(
      TransactionAnchor::kDeletion);
  Element e = MakeEventElement(T(100), T(150));
  e.tt_end = T(200);
  EXPECT_NOT_OK(ins.CheckElement(e, kSec));  // stored before valid
  EXPECT_OK(del.CheckElement(e, kSec));      // deleted after valid
}

// --- Determined relations ---------------------------------------------------

TEST(EventSpecTest, DeterminedRequiresExactMapping) {
  // m1(e) = tt + 10s.
  const auto spec = EventSpecialization::Predictive().Determined(
      MappingFunction::Offset(Duration::Seconds(10)));
  EXPECT_TRUE(spec.IsDetermined());
  EXPECT_OK(CheckPair(spec, T(100), T(110)));
  EXPECT_NOT_OK(CheckPair(spec, T(100), T(111)));  // obeys band, wrong mapping
  EXPECT_NOT_OK(CheckPair(spec, T(100), T(109)));
}

TEST(EventSpecTest, RetroactivelyDeterminedMappingMustObeyBand) {
  // "retroactively determined": m(e) <= tt. A mapping that yields future
  // stamps violates the type even when vt matches the mapping.
  const auto spec = EventSpecialization::Retroactive().Determined(
      MappingFunction::Offset(Duration::Seconds(10)));
  EXPECT_NOT_OK(CheckPair(spec, T(100), T(110)));
  const auto good = EventSpecialization::Retroactive().Determined(
      MappingFunction::Offset(Duration::Seconds(-60)));
  EXPECT_OK(CheckPair(good, T(100), T(40)));
}

TEST(EventSpecTest, DeterminedFromMostRecentHour) {
  // m2(e) = "valid from the beginning of the most recent hour".
  const auto spec = EventSpecialization::Retroactive().Determined(
      MappingFunction::TruncateThenOffset(Granularity::Hour()));
  const TimePoint tt = Civil(1992, 2, 3, 10, 42, 17);
  EXPECT_OK(CheckPair(spec, tt, Civil(1992, 2, 3, 10, 0, 0)));
  EXPECT_NOT_OK(CheckPair(spec, tt, Civil(1992, 2, 3, 9, 0, 0)));
}

TEST(EventSpecTest, PredictivelyDeterminedNextEightAM) {
  // m3(e) = "valid from the next closest 8:00 a.m." — bank deposits.
  const auto spec = EventSpecialization::Predictive().Determined(
      MappingFunction::NextPhase(Granularity::Day(), Duration::Hours(8)));
  EXPECT_OK(CheckPair(spec, Civil(1992, 2, 3, 14, 30), Civil(1992, 2, 4, 8, 0)));
  EXPECT_OK(CheckPair(spec, Civil(1992, 2, 3, 6, 0), Civil(1992, 2, 3, 8, 0)));
  // On the boundary maps to itself (inclusive by default).
  EXPECT_OK(CheckPair(spec, Civil(1992, 2, 3, 8, 0), Civil(1992, 2, 3, 8, 0)));
  EXPECT_NOT_OK(
      CheckPair(spec, Civil(1992, 2, 3, 14, 30), Civil(1992, 2, 4, 9, 0)));
}

// --- Implication (band containment) ----------------------------------------

TEST(EventSpecTest, ImplicationMatchesBandContainment) {
  ASSERT_OK_AND_ASSIGN(auto delayed, EventSpecialization::DelayedRetroactive(
                                         Duration::Seconds(30)));
  const auto retro = EventSpecialization::Retroactive();
  EXPECT_EQ(delayed.Implies(retro), std::optional<bool>(true));
  EXPECT_EQ(retro.Implies(delayed), std::optional<bool>(false));
  // Determined implies undetermined, not vice versa.
  const auto det =
      retro.Determined(MappingFunction::Offset(Duration::Seconds(-1)));
  EXPECT_EQ(det.Implies(retro), std::optional<bool>(true));
  EXPECT_EQ(retro.Implies(det), std::optional<bool>(false));
  // Different anchors never imply each other.
  EXPECT_EQ(retro.Implies(retro.WithAnchor(TransactionAnchor::kDeletion)),
            std::optional<bool>(false));
}

// --- ClassifyBand: every constructor round-trips to its kind ---------------

TEST(EventSpecTest, ClassifyBandRoundTrip) {
  const Duration d1 = Duration::Seconds(30);
  const Duration d2 = Duration::Seconds(90);
  EXPECT_EQ(EventSpecialization::ClassifyBand(Band::All()),
            EventSpecKind::kGeneral);
  EXPECT_EQ(
      EventSpecialization::ClassifyBand(EventSpecialization::Retroactive().band()),
      EventSpecKind::kRetroactive);
  EXPECT_EQ(EventSpecialization::ClassifyBand(
                EventSpecialization::DelayedRetroactive(d1)->band()),
            EventSpecKind::kDelayedRetroactive);
  EXPECT_EQ(
      EventSpecialization::ClassifyBand(EventSpecialization::Predictive().band()),
      EventSpecKind::kPredictive);
  EXPECT_EQ(EventSpecialization::ClassifyBand(
                EventSpecialization::EarlyPredictive(d1)->band()),
            EventSpecKind::kEarlyPredictive);
  EXPECT_EQ(EventSpecialization::ClassifyBand(
                EventSpecialization::RetroactivelyBounded(d1)->band()),
            EventSpecKind::kRetroactivelyBounded);
  EXPECT_EQ(EventSpecialization::ClassifyBand(
                EventSpecialization::PredictivelyBounded(d1)->band()),
            EventSpecKind::kPredictivelyBounded);
  EXPECT_EQ(EventSpecialization::ClassifyBand(
                EventSpecialization::StronglyRetroactivelyBounded(d1)->band()),
            EventSpecKind::kStronglyRetroactivelyBounded);
  EXPECT_EQ(
      EventSpecialization::ClassifyBand(
          EventSpecialization::DelayedStronglyRetroactivelyBounded(d1, d2)->band()),
      EventSpecKind::kDelayedStronglyRetroactivelyBounded);
  EXPECT_EQ(EventSpecialization::ClassifyBand(
                EventSpecialization::StronglyPredictivelyBounded(d1)->band()),
            EventSpecKind::kStronglyPredictivelyBounded);
  EXPECT_EQ(
      EventSpecialization::ClassifyBand(
          EventSpecialization::EarlyStronglyPredictivelyBounded(d1, d2)->band()),
      EventSpecKind::kEarlyStronglyPredictivelyBounded);
  EXPECT_EQ(EventSpecialization::ClassifyBand(
                EventSpecialization::StronglyBounded(d1, d2)->band()),
            EventSpecKind::kStronglyBounded);
  EXPECT_EQ(EventSpecialization::ClassifyBand(
                EventSpecialization::Degenerate().band()),
            EventSpecKind::kDegenerate);
}

// --- Property sweep: membership in the band equals the printed definition --

struct BandPropertyCase {
  const char* name;
  int64_t lo_us;  // INT64_MIN = unbounded
  int64_t hi_us;  // INT64_MAX = unbounded
};

class EventBandPropertyTest : public ::testing::TestWithParam<BandPropertyCase> {};

TEST_P(EventBandPropertyTest, BandMatchesDirectInequalities) {
  const auto& param = GetParam();
  Band band;
  if (param.lo_us == INT64_MIN) {
    band = Band::AtMost(Duration::Micros(param.hi_us));
  } else if (param.hi_us == INT64_MAX) {
    band = Band::AtLeast(Duration::Micros(param.lo_us));
  } else {
    band = Band::Between(Duration::Micros(param.lo_us),
                         Duration::Micros(param.hi_us));
  }
  Random rng(99);
  for (int i = 0; i < 3000; ++i) {
    const TimePoint tt = T(rng.Uniform(-1000, 1000));
    const TimePoint vt = tt + Duration::Micros(rng.Uniform(-5'000'000, 5'000'000));
    const int64_t off = vt.MicrosSince(tt);
    const bool expected =
        (param.lo_us == INT64_MIN || off >= param.lo_us) &&
        (param.hi_us == INT64_MAX || off <= param.hi_us);
    EXPECT_EQ(band.Contains(tt, vt), expected)
        << param.name << " offset=" << off;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EventBandPropertyTest,
    ::testing::Values(
        BandPropertyCase{"retroactive", INT64_MIN, 0},
        BandPropertyCase{"delayed", INT64_MIN, -2'000'000},
        BandPropertyCase{"predictive", 0, INT64_MAX},
        BandPropertyCase{"early", 2'000'000, INT64_MAX},
        BandPropertyCase{"retro-bounded", -3'000'000, INT64_MAX},
        BandPropertyCase{"pred-bounded", INT64_MIN, 3'000'000},
        BandPropertyCase{"strongly-retro", -3'000'000, 0},
        BandPropertyCase{"strongly-pred", 0, 3'000'000},
        BandPropertyCase{"strongly", -1'000'000, 2'000'000},
        BandPropertyCase{"delayed-strong", -4'000'000, -1'000'000},
        BandPropertyCase{"early-strong", 1'000'000, 4'000'000}));

}  // namespace
}  // namespace tempspec
