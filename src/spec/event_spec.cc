#include "spec/event_spec.h"

namespace tempspec {

namespace {

Status RequirePositive(Duration dt, const char* what) {
  if (!dt.IsPositive()) {
    return Status::InvalidArgument(what, " requires a positive bound, got ",
                                   dt.ToString());
  }
  return Status::OK();
}

Status RequireNonNegative(Duration dt, const char* what) {
  if (dt.IsNegative()) {
    return Status::InvalidArgument(what, " requires a non-negative bound, got ",
                                   dt.ToString());
  }
  return Status::OK();
}

}  // namespace

const char* EventSpecKindToString(EventSpecKind kind) {
  switch (kind) {
    case EventSpecKind::kGeneral:
      return "general";
    case EventSpecKind::kRetroactive:
      return "retroactive";
    case EventSpecKind::kDelayedRetroactive:
      return "delayed retroactive";
    case EventSpecKind::kPredictive:
      return "predictive";
    case EventSpecKind::kEarlyPredictive:
      return "early predictive";
    case EventSpecKind::kRetroactivelyBounded:
      return "retroactively bounded";
    case EventSpecKind::kPredictivelyBounded:
      return "predictively bounded";
    case EventSpecKind::kStronglyRetroactivelyBounded:
      return "strongly retroactively bounded";
    case EventSpecKind::kDelayedStronglyRetroactivelyBounded:
      return "delayed strongly retroactively bounded";
    case EventSpecKind::kStronglyPredictivelyBounded:
      return "strongly predictively bounded";
    case EventSpecKind::kEarlyStronglyPredictivelyBounded:
      return "early strongly predictively bounded";
    case EventSpecKind::kStronglyBounded:
      return "strongly bounded";
    case EventSpecKind::kDegenerate:
      return "degenerate";
  }
  return "unknown";
}

EventSpecialization EventSpecialization::General() {
  return EventSpecialization(EventSpecKind::kGeneral, Band::All());
}

EventSpecialization EventSpecialization::Retroactive(bool open) {
  return EventSpecialization(EventSpecKind::kRetroactive,
                             Band::AtMost(Duration::Zero(), open));
}

Result<EventSpecialization> EventSpecialization::DelayedRetroactive(Duration dt,
                                                                    bool open) {
  TS_RETURN_NOT_OK(RequirePositive(dt, "delayed retroactive"));
  return EventSpecialization(EventSpecKind::kDelayedRetroactive,
                             Band::AtMost(-dt, open));
}

EventSpecialization EventSpecialization::Predictive(bool open) {
  return EventSpecialization(EventSpecKind::kPredictive,
                             Band::AtLeast(Duration::Zero(), open));
}

Result<EventSpecialization> EventSpecialization::EarlyPredictive(Duration dt,
                                                                 bool open) {
  TS_RETURN_NOT_OK(RequirePositive(dt, "early predictive"));
  return EventSpecialization(EventSpecKind::kEarlyPredictive,
                             Band::AtLeast(dt, open));
}

Result<EventSpecialization> EventSpecialization::RetroactivelyBounded(Duration dt,
                                                                      bool open) {
  TS_RETURN_NOT_OK(RequireNonNegative(dt, "retroactively bounded"));
  return EventSpecialization(EventSpecKind::kRetroactivelyBounded,
                             Band::AtLeast(-dt, open));
}

Result<EventSpecialization> EventSpecialization::PredictivelyBounded(Duration dt,
                                                                     bool open) {
  TS_RETURN_NOT_OK(RequirePositive(dt, "predictively bounded"));
  return EventSpecialization(EventSpecKind::kPredictivelyBounded,
                             Band::AtMost(dt, open));
}

Result<EventSpecialization> EventSpecialization::StronglyRetroactivelyBounded(
    Duration dt) {
  TS_RETURN_NOT_OK(RequireNonNegative(dt, "strongly retroactively bounded"));
  return EventSpecialization(EventSpecKind::kStronglyRetroactivelyBounded,
                             Band::Between(-dt, Duration::Zero()));
}

Result<EventSpecialization>
EventSpecialization::DelayedStronglyRetroactivelyBounded(Duration dt_min,
                                                         Duration dt_max) {
  TS_RETURN_NOT_OK(
      RequireNonNegative(dt_min, "delayed strongly retroactively bounded"));
  auto cmp = CompareOffsets(dt_min, dt_max);
  if (!cmp || *cmp >= 0) {
    return Status::InvalidArgument(
        "delayed strongly retroactively bounded requires Δt_min < Δt_max, got ",
        dt_min.ToString(), " vs ", dt_max.ToString());
  }
  return EventSpecialization(EventSpecKind::kDelayedStronglyRetroactivelyBounded,
                             Band::Between(-dt_max, -dt_min));
}

Result<EventSpecialization> EventSpecialization::StronglyPredictivelyBounded(
    Duration dt) {
  TS_RETURN_NOT_OK(RequirePositive(dt, "strongly predictively bounded"));
  return EventSpecialization(EventSpecKind::kStronglyPredictivelyBounded,
                             Band::Between(Duration::Zero(), dt));
}

Result<EventSpecialization>
EventSpecialization::EarlyStronglyPredictivelyBounded(Duration dt_min,
                                                      Duration dt_max) {
  TS_RETURN_NOT_OK(
      RequirePositive(dt_min, "early strongly predictively bounded"));
  auto cmp = CompareOffsets(dt_min, dt_max);
  if (!cmp || *cmp >= 0) {
    return Status::InvalidArgument(
        "early strongly predictively bounded requires Δt_min < Δt_max, got ",
        dt_min.ToString(), " vs ", dt_max.ToString());
  }
  return EventSpecialization(EventSpecKind::kEarlyStronglyPredictivelyBounded,
                             Band::Between(dt_min, dt_max));
}

Result<EventSpecialization> EventSpecialization::StronglyBounded(Duration dt1,
                                                                 Duration dt2) {
  TS_RETURN_NOT_OK(RequireNonNegative(dt1, "strongly bounded"));
  TS_RETURN_NOT_OK(RequireNonNegative(dt2, "strongly bounded"));
  return EventSpecialization(EventSpecKind::kStronglyBounded,
                             Band::Between(-dt1, dt2));
}

EventSpecialization EventSpecialization::Degenerate() {
  return EventSpecialization(EventSpecKind::kDegenerate,
                             Band::Exactly(Duration::Zero()));
}

EventSpecKind EventSpecialization::ClassifyBand(const Band& band) {
  const auto& lo = band.lower();
  const auto& hi = band.upper();
  auto sign = [](const BandBound& b) {
    auto cmp = CompareOffsets(b.offset, Duration::Zero());
    return cmp.value_or(2);  // 2 = indeterminate calendric sign
  };
  if (!lo && !hi) return EventSpecKind::kGeneral;
  if (!lo) {
    const int s = sign(*hi);
    if (s < 0) return EventSpecKind::kDelayedRetroactive;
    if (s == 0) return EventSpecKind::kRetroactive;
    return EventSpecKind::kPredictivelyBounded;
  }
  if (!hi) {
    const int s = sign(*lo);
    if (s < 0) return EventSpecKind::kRetroactivelyBounded;
    if (s == 0) return EventSpecKind::kPredictive;
    return EventSpecKind::kEarlyPredictive;
  }
  const int slo = sign(*lo);
  const int shi = sign(*hi);
  if (slo == 0 && shi == 0) return EventSpecKind::kDegenerate;
  if (shi < 0) return EventSpecKind::kDelayedStronglyRetroactivelyBounded;
  if (slo > 0) return EventSpecKind::kEarlyStronglyPredictivelyBounded;
  if (shi == 0) return EventSpecKind::kStronglyRetroactivelyBounded;
  if (slo == 0) return EventSpecKind::kStronglyPredictivelyBounded;
  return EventSpecKind::kStronglyBounded;
}

EventSpecialization EventSpecialization::WithAnchor(TransactionAnchor anchor) const {
  EventSpecialization out = *this;
  out.anchor_ = anchor;
  if (out.mapping_) out.mapping_ = out.mapping_->WithAnchor(anchor);
  return out;
}

EventSpecialization EventSpecialization::Determined(MappingFunction m) const {
  EventSpecialization out = *this;
  out.mapping_ = m.WithAnchor(anchor_);
  return out;
}

bool EventSpecialization::Satisfies(TimePoint tt, TimePoint vt) const {
  return band_.Contains(tt, vt);
}

Status EventSpecialization::CheckElement(const Element& e,
                                         Granularity granularity) const {
  const TimePoint tt = AnchoredTransactionTime(e, anchor_);
  // A property relative to the deletion time constrains nothing until the
  // element is logically deleted.
  if (anchor_ == TransactionAnchor::kDeletion && tt.IsMax()) return Status::OK();
  const TimePoint vt = e.valid.at();

  if (mapping_) {
    const TimePoint expected = mapping_->Apply(e);
    if (vt != expected) {
      return Status::ConstraintViolation(
          "determined relation: vt ", vt.ToString(), " differs from mapping ",
          mapping_->ToString(), " = ", expected.ToString(), " for element #",
          e.element_surrogate);
    }
    // The mapping output itself must obey the band (e.g. "retroactively
    // determined": m(e) <= tt).
    if (kind_ != EventSpecKind::kDegenerate && !band_.Contains(tt, expected)) {
      return Status::ConstraintViolation(
          "determined relation: mapping value ", expected.ToString(),
          " escapes band ", band_.ToString(), " of ",
          EventSpecKindToString(kind_), " at tt ", tt.ToString());
    }
    if (kind_ != EventSpecKind::kDegenerate) return Status::OK();
  }

  if (kind_ == EventSpecKind::kDegenerate) {
    // Section 3.1: identical "within the selected granularity".
    if (!granularity.Same(tt, vt)) {
      return Status::ConstraintViolation(
          "degenerate relation: vt ", vt.ToString(), " and tt ", tt.ToString(),
          " differ beyond granularity ", granularity.ToString(),
          " for element #", e.element_surrogate);
    }
    return Status::OK();
  }

  if (!band_.Contains(tt, vt)) {
    return Status::ConstraintViolation(
        EventSpecKindToString(kind_), " relation: offset of vt ", vt.ToString(),
        " from ", TransactionAnchorToString(anchor_), " time ", tt.ToString(),
        " escapes band ", band_.ToString(), " for element #",
        e.element_surrogate);
  }
  return Status::OK();
}

std::optional<bool> EventSpecialization::Implies(
    const EventSpecialization& other) const {
  if (anchor_ != other.anchor_) return false;
  // A determined relation implies its undetermined counterpart, but not the
  // reverse; two determined types require band containment as well (we do not
  // attempt mapping-equivalence reasoning).
  if (other.IsDetermined() && !IsDetermined()) return false;
  return band_.SubsetOf(other.band_);
}

std::string EventSpecialization::ToString() const {
  std::string out = TransactionAnchorToString(anchor_);
  out += " ";
  out += EventSpecKindToString(kind_);
  if (mapping_) out += " determined {" + mapping_->ToString() + "}";
  out += " " + band_.ToString();
  return out;
}

}  // namespace tempspec
