// File-backed page storage.
#ifndef TEMPSPEC_STORAGE_DISK_MANAGER_H_
#define TEMPSPEC_STORAGE_DISK_MANAGER_H_

#include <memory>
#include <string>

#include "storage/page.h"
#include "util/result.h"

namespace tempspec {

/// \brief fsyncs the directory containing `path`, making renames and
/// truncations of directory entries durable.
Status FsyncParentDirectory(const std::string& path);

/// \brief Owns one data file as an array of pages.
///
/// Crash tolerance: Open() truncates a trailing partial page (the signature
/// of a crash mid-extension) instead of rejecting the file, and reads,
/// writes, and syncs retry transient IO errors with bounded backoff. In
/// failpoint builds (util/failpoint.h) every IO goes through the
/// "disk.read_page" / "disk.write_page" / "disk.sync" sites so tests can
/// inject torn writes, bit flips, and EIO deterministically.
class DiskManager {
 public:
  /// \brief Opens (creating if absent) the file at `path`.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path);

  ~DiskManager();
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// \brief Number of pages currently in the file.
  uint64_t page_count() const { return page_count_; }

  /// \brief Extends the file by one zeroed page; returns its id.
  Result<PageId> AllocatePage();

  Status ReadPage(PageId id, Page* out) const;
  Status WritePage(PageId id, const Page& page);

  /// \brief fsync.
  Status Sync();

  /// \brief Discards all pages. Any cached frames above this manager must
  /// be dropped by the caller first.
  Status Truncate() { return TruncateToPages(0); }

  /// \brief Shrinks the file to its first `pages` pages and fsyncs, so the
  /// cut cannot be forgotten by a later crash. Recovery uses this to
  /// quarantine a damaged page suffix: once truncated, a later append can
  /// never land beyond still-damaged pages. Cached frames for the dropped
  /// range must be discarded by the caller.
  Status TruncateToPages(uint64_t pages);

  /// \brief Atomically renames the backing file to `new_path` (same
  /// directory) and fsyncs the directory entry. The open descriptor keeps
  /// following the inode. Backlog compaction builds the next generation in
  /// a side file and adopts it with this.
  Status RenameTo(const std::string& new_path);

  const std::string& path() const { return path_; }

 private:
  DiskManager(std::string path, int fd, uint64_t page_count)
      : path_(std::move(path)), fd_(fd), page_count_(page_count) {}

  Status WritePageInternal(PageId id, const Page& page);
  Status WritePageOnce(PageId id, const Page& page);
  Status ReadPageOnce(PageId id, Page* out) const;
  Status SyncOnce();

  std::string path_;
  int fd_;
  uint64_t page_count_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_STORAGE_DISK_MANAGER_H_
