#include "storage/backlog.h"

#include <unordered_map>

#include "storage/page.h"
#include "storage/serde.h"

namespace tempspec {

namespace {
constexpr uint32_t kBacklogMagic = 0x544C4B42;  // "BKLT"
}  // namespace

std::string BacklogEntry::Encode() const {
  std::string out;
  Encoder enc(&out);
  enc.PutU8(static_cast<uint8_t>(op));
  enc.PutTimePoint(tt);
  if (op == BacklogOpType::kInsert) {
    EncodeElement(element, &enc);
  } else {
    enc.PutU64(target);
  }
  return out;
}

Result<BacklogEntry> BacklogEntry::Decode(std::string_view payload) {
  Decoder dec(payload);
  BacklogEntry entry;
  TS_ASSIGN_OR_RETURN(uint8_t op, dec.GetU8());
  if (op != static_cast<uint8_t>(BacklogOpType::kInsert) &&
      op != static_cast<uint8_t>(BacklogOpType::kLogicalDelete)) {
    return Status::Corruption("unknown backlog op ", static_cast<int>(op));
  }
  entry.op = static_cast<BacklogOpType>(op);
  TS_ASSIGN_OR_RETURN(entry.tt, dec.GetTimePoint());
  if (entry.op == BacklogOpType::kInsert) {
    TS_ASSIGN_OR_RETURN(entry.element, DecodeElement(&dec));
  } else {
    TS_ASSIGN_OR_RETURN(entry.target, dec.GetU64());
  }
  return entry;
}

Result<std::unique_ptr<BacklogStore>> BacklogStore::Open(Options options) {
  auto store = std::unique_ptr<BacklogStore>(new BacklogStore());
  if (options.directory.empty()) return store;

  TS_ASSIGN_OR_RETURN(store->disk_,
                      DiskManager::Open(options.directory + "/backlog.pages"));
  store->buffer_pool_pages_ = options.buffer_pool_pages;
  store->pool_ = std::make_unique<BufferPool>(store->disk_.get(),
                                              options.buffer_pool_pages);
  TS_RETURN_NOT_OK(store->RecoverFromPages());

  TS_ASSIGN_OR_RETURN(store->wal_,
                      WriteAheadLog::Open(options.directory + "/backlog.wal",
                                          options.sync_mode));
  // WAL holds the operations appended since the last checkpoint.
  auto replayed = store->wal_->Replay(
      [&](uint64_t, std::string_view payload) -> Status {
        TS_ASSIGN_OR_RETURN(BacklogEntry entry, BacklogEntry::Decode(payload));
        store->entries_.push_back(std::move(entry));
        return Status::OK();
      });
  TS_RETURN_NOT_OK(replayed.status());
  return store;
}

Status BacklogStore::RecoverFromPages() {
  if (disk_->page_count() == 0) {
    // Fresh file: create and flush the header page, so a process that exits
    // without ever checkpointing still leaves a well-formed file behind.
    {
      TS_ASSIGN_OR_RETURN(PageGuard header, pool_->Allocate());
      SlottedPage sp(header.mutable_page());
      sp.Init();
      std::string meta;
      Encoder enc(&meta);
      enc.PutU32(kBacklogMagic);
      enc.PutU64(0);
      TS_RETURN_NOT_OK(sp.Insert(meta).status());
    }
    return pool_->FlushAll();
  }

  TS_ASSIGN_OR_RETURN(PageGuard header, pool_->Fetch(0));
  Page page_copy = header.page();
  SlottedPage sp(&page_copy);
  TS_ASSIGN_OR_RETURN(std::string_view meta, sp.Get(0));
  Decoder dec(meta);
  TS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetU32());
  if (magic != kBacklogMagic) {
    return Status::Corruption("bad backlog page-file magic");
  }
  TS_ASSIGN_OR_RETURN(uint64_t persisted, dec.GetU64());

  uint64_t read = 0;
  for (PageId id = 1; id < disk_->page_count() && read < persisted; ++id) {
    TS_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(id));
    Page data_copy = guard.page();
    SlottedPage data(&data_copy);
    for (uint16_t slot = 0; slot < data.slot_count() && read < persisted; ++slot) {
      TS_ASSIGN_OR_RETURN(std::string_view record, data.Get(slot));
      TS_ASSIGN_OR_RETURN(BacklogEntry entry, BacklogEntry::Decode(record));
      entries_.push_back(std::move(entry));
      ++read;
    }
  }
  if (read != persisted) {
    return Status::Corruption("backlog page file claims ", persisted,
                              " entries but only ", read, " are readable");
  }
  persisted_entries_ = persisted;
  return Status::OK();
}

Status BacklogStore::Append(const BacklogEntry& entry) {
  if (wal_) {
    TS_RETURN_NOT_OK(wal_->Append(entry.Encode()).status());
  }
  entries_.push_back(entry);
  return Status::OK();
}

std::vector<Element> BacklogStore::MaterializeState(TimePoint tt) const {
  std::unordered_map<ElementSurrogate, Element> alive;
  for (const BacklogEntry& e : entries_) {
    if (e.tt > tt) break;  // entries are in transaction-time order
    if (e.op == BacklogOpType::kInsert) {
      alive.emplace(e.element.element_surrogate, e.element);
    } else {
      alive.erase(e.target);
    }
  }
  std::vector<Element> out;
  out.reserve(alive.size());
  for (auto& [id, element] : alive) out.push_back(std::move(element));
  return out;
}

std::vector<Element> BacklogStore::ReconstructElements() const {
  std::vector<Element> out;
  std::unordered_map<ElementSurrogate, size_t> index;
  for (const BacklogEntry& e : entries_) {
    if (e.op == BacklogOpType::kInsert) {
      index[e.element.element_surrogate] = out.size();
      out.push_back(e.element);
    } else {
      auto it = index.find(e.target);
      if (it != index.end()) out[it->second].tt_end = e.tt;
    }
  }
  return out;
}

Status BacklogStore::PersistRange(size_t begin, size_t end) {
  PageId current = disk_->page_count() > 1 ? disk_->page_count() - 1 : kInvalidPageId;
  for (size_t i = begin; i < end; ++i) {
    const std::string record = entries_[i].Encode();
    bool stored = false;
    if (current != kInvalidPageId) {
      TS_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(current));
      SlottedPage sp(guard.mutable_page());
      if (sp.Fits(record.size())) {
        TS_RETURN_NOT_OK(sp.Insert(record).status());
        stored = true;
      }
    }
    if (!stored) {
      TS_ASSIGN_OR_RETURN(PageGuard guard, pool_->Allocate());
      SlottedPage sp(guard.mutable_page());
      sp.Init();
      TS_RETURN_NOT_OK(sp.Insert(record).status());
      current = guard.id();
    }
  }
  return Status::OK();
}

Status BacklogStore::WriteHeader() {
  TS_ASSIGN_OR_RETURN(PageGuard header, pool_->Fetch(0));
  SlottedPage sp(header.mutable_page());
  sp.Init();
  std::string meta;
  Encoder enc(&meta);
  enc.PutU32(kBacklogMagic);
  enc.PutU64(persisted_entries_);
  return sp.Insert(meta).status();
}

Status BacklogStore::Checkpoint() {
  if (!wal_) return Status::OK();
  TS_RETURN_NOT_OK(PersistRange(persisted_entries_, entries_.size()));
  persisted_entries_ = entries_.size();

  // Rewrite the header, flush pages, then reset the WAL: the order matters —
  // an entry must never exist only in a reset WAL.
  TS_RETURN_NOT_OK(WriteHeader());
  TS_RETURN_NOT_OK(pool_->FlushAll());
  return wal_->Reset();
}

Status BacklogStore::ReplaceAll(std::vector<BacklogEntry> entries) {
  entries_ = std::move(entries);
  persisted_entries_ = 0;
  if (!wal_) return Status::OK();

  // Drop cached frames (they reference discarded pages), wipe the page
  // file, write the compacted history, and only then reset the WAL.
  pool_ = std::make_unique<BufferPool>(disk_.get(), buffer_pool_pages_);
  TS_RETURN_NOT_OK(disk_->Truncate());
  {
    TS_ASSIGN_OR_RETURN(PageGuard header, pool_->Allocate());
    SlottedPage sp(header.mutable_page());
    sp.Init();
    std::string meta;
    Encoder enc(&meta);
    enc.PutU32(kBacklogMagic);
    enc.PutU64(0);
    TS_RETURN_NOT_OK(sp.Insert(meta).status());
  }
  TS_RETURN_NOT_OK(PersistRange(0, entries_.size()));
  persisted_entries_ = entries_.size();
  TS_RETURN_NOT_OK(WriteHeader());
  TS_RETURN_NOT_OK(pool_->FlushAll());
  return wal_->Reset();
}

size_t BacklogStore::EncodedBytes() const {
  size_t total = 0;
  for (const auto& e : entries_) total += e.Encode().size();
  return total;
}

}  // namespace tempspec
