// Differential test: optimizer-chosen plans vs the naive full scan, once per
// enumerated specialization.
//
// For every pane of Figure 1 this builds a relation declaring exactly that
// specialization, loads it with a seeded event history confined to the
// pane's band, and answers timeslice and valid-range queries twice — with
// the plan the optimizer picks for the declared specialization, and with the
// always-available full scan. The two executions must return byte-identical
// position sets (the engine's strategy-interchangeability contract), and the
// specialized plan must never examine more elements than the naive one; for
// the doubly-bounded panes, whose transaction-time window is a fixed-width
// slice of the history, it must examine strictly fewer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/executor.h"
#include "spec/enumeration.h"
#include "testing.h"
#include "testing_spec.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::SpecForKind;
using testing::T;

constexpr int64_t kEvents = 1500;
constexpr int kTrialsPerRegion = 8;

const Duration kDeltaSmall = Duration::Seconds(30);
const Duration kDeltaLarge = Duration::Seconds(90);

/// \brief Offset range (whole seconds) guaranteed inside the region's band;
/// unbounded sides are clamped to ±120s.
std::pair<int64_t, int64_t> OffsetRangeSeconds(const Band& band) {
  int64_t lo = -120, hi = 120;
  if (band.lower().has_value()) lo = band.lower()->offset.micros() / 1'000'000;
  if (band.upper().has_value()) hi = band.upper()->offset.micros() / 1'000'000;
  return {lo, hi};
}

struct RegionRelation {
  EnumeratedRegion region;
  std::shared_ptr<LogicalClock> clock;
  std::unique_ptr<TemporalRelation> relation;
};

RegionRelation BuildRelationFor(const EnumeratedRegion& region, uint64_t seed) {
  RegionRelation out;
  out.region = region;
  out.clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  RelationOptions options;
  options.schema =
      Schema::Make("diff",
                   {AttributeDef{"id", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"v", ValueType::kDouble,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kEvent, Granularity::Second())
          .ValueOrDie();
  options.clock = out.clock;
  auto spec = SpecForKind(region.kind, kDeltaSmall, kDeltaLarge);
  spec.status().Check();
  options.specializations.AddEvent(std::move(spec).ValueOrDie());
  out.relation = TemporalRelation::Open(std::move(options)).ValueOrDie();

  Random rng(seed);
  const auto [lo, hi] = OffsetRangeSeconds(region.band);
  for (int64_t i = 0; i < kEvents; ++i) {
    const TimePoint tt = out.clock->Peek();
    const TimePoint vt = tt + Duration::Seconds(rng.Uniform(lo, hi));
    auto surrogate =
        out.relation->InsertEvent(i % 32, vt, Tuple{int64_t{i % 32}, 0.5});
    surrogate.status().Check();
    // Close ~1/8 of existence intervals so every differential below also
    // exercises the kernels' existence predicate (tt_end < MAX rows must
    // drop out of current-belief scans identically on both paths).
    if (rng.Uniform(0, 7) == 0) {
      out.relation->LogicalDelete(surrogate.ValueOrDie()).Check();
    }
  }
  return out;
}

void ExpectSameResults(const ResultSet& specialized, const ResultSet& naive,
                       const std::string& what) {
  ASSERT_EQ(specialized.positions(), naive.positions()) << what;
}

TEST(StrategyDifferentialTest, EveryEnumeratedSpecializationBeatsOrTiesNaive) {
  const PlanChoice naive_plan{ExecutionStrategy::kFullScan, TimeInterval::All(),
                              ""};
  uint64_t seed = 42;
  for (const EnumeratedRegion& region :
       EnumerateEventRegions(kDeltaSmall, kDeltaLarge)) {
    SCOPED_TRACE(std::string(EventSpecKindToString(region.kind)) + " " +
                 region.band.ToString());
    RegionRelation rr = BuildRelationFor(region, seed++);
    QueryExecutor exec(*rr.relation, ExecutorOptions{.pool = nullptr});
    const bool doubly_bounded =
        region.band.lower().has_value() && region.band.upper().has_value();

    Random rng(seed * 977);
    const auto& elements = rr.relation->elements();
    for (int trial = 0; trial < kTrialsPerRegion; ++trial) {
      // Probe at a stamp that has matches, and around it.
      const Element& probe =
          elements[static_cast<size_t>(rng.Uniform(0, kEvents - 1))];
      const TimePoint vt =
          probe.valid.at() + Duration::Seconds(rng.Uniform(-2, 2));

      const PlanChoice plan = exec.optimizer().PlanTimeslice(vt);
      QueryStats specialized_stats, naive_stats;
      const ResultSet specialized =
          exec.TimesliceSetWith(plan, vt, &specialized_stats);
      const ResultSet naive =
          exec.TimesliceSetWith(naive_plan, vt, &naive_stats);
      ExpectSameResults(specialized, naive,
                        std::string("timeslice under ") +
                            ExecutionStrategyToString(plan.strategy));
      EXPECT_EQ(naive_stats.elements_examined, static_cast<uint64_t>(kEvents));
      EXPECT_LE(specialized_stats.elements_examined,
                naive_stats.elements_examined)
          << ExecutionStrategyToString(plan.strategy);
      if (doubly_bounded) {
        // A fixed-width transaction window over a uniform 1 op/s history
        // touches a small fraction of kEvents.
        EXPECT_LT(specialized_stats.elements_examined,
                  naive_stats.elements_examined)
            << ExecutionStrategyToString(plan.strategy);
      }

      // Valid-range probes: the same contract for the range planner.
      const TimePoint hi = vt + Duration::Seconds(rng.Uniform(1, 300));
      const PlanChoice range_plan = exec.optimizer().PlanValidRange(vt, hi);
      QueryStats range_stats, range_naive_stats;
      ExpectSameResults(
          exec.ValidRangeSetWith(range_plan, vt, hi, &range_stats),
          exec.ValidRangeSetWith(naive_plan, vt, hi, &range_naive_stats),
          std::string("valid-range under ") +
              ExecutionStrategyToString(range_plan.strategy));
      EXPECT_LE(range_stats.elements_examined,
                range_naive_stats.elements_examined)
          << ExecutionStrategyToString(range_plan.strategy);
    }
  }
}

TEST(StrategyDifferentialTest, PlannerPicksTheBandStrategyWhenDeclared) {
  // Spot-check that the differential above is actually exercising distinct
  // strategies, not full scan against itself: every doubly-bounded pane must
  // plan a banded strategy, and the degenerate-free general pane must fall
  // back to the valid-time index.
  for (const EnumeratedRegion& region :
       EnumerateEventRegions(kDeltaSmall, kDeltaLarge)) {
    RegionRelation rr = BuildRelationFor(region, 7);
    QueryExecutor exec(*rr.relation, ExecutorOptions{.pool = nullptr});
    const PlanChoice plan = exec.optimizer().PlanTimeslice(T(600));
    SCOPED_TRACE(std::string(EventSpecKindToString(region.kind)) + " -> " +
                 ExecutionStrategyToString(plan.strategy));
    EXPECT_NE(plan.strategy, ExecutionStrategy::kFullScan);
    if (region.band.lower().has_value() && region.band.upper().has_value()) {
      EXPECT_TRUE(plan.strategy == ExecutionStrategy::kTransactionWindow ||
                  plan.strategy == ExecutionStrategy::kRollbackEquivalence)
          << ExecutionStrategyToString(plan.strategy);
    }
    if (region.kind == EventSpecKind::kGeneral) {
      EXPECT_EQ(plan.strategy, ExecutionStrategy::kValidIndex);
    }
  }
}

TEST(StrategyDifferentialTest, PlannerMapsEachPaneToItsKernel) {
  // The kernel is part of the plan contract: degenerate panes get the
  // single-column degenerate kernel, doubly-bounded panes the banded kernel
  // (event relations derive vt_end), unbounded-band panes fall through to
  // monotone/index like before, and the general pane keeps the row walk
  // (index probes are non-contiguous).
  for (const EnumeratedRegion& region :
       EnumerateEventRegions(kDeltaSmall, kDeltaLarge)) {
    RegionRelation rr = BuildRelationFor(region, 11);
    QueryExecutor exec(*rr.relation, ExecutorOptions{.pool = nullptr});
    const PlanChoice plan = exec.optimizer().PlanTimeslice(T(600));
    SCOPED_TRACE(std::string(EventSpecKindToString(region.kind)) + " -> " +
                 ScanKernelToToken(plan.kernel));
    switch (plan.strategy) {
      case ExecutionStrategy::kRollbackEquivalence:
        EXPECT_EQ(plan.kernel, ScanKernel::kDegenerate);
        break;
      case ExecutionStrategy::kTransactionWindow:
        EXPECT_EQ(plan.kernel, ScanKernel::kBanded);  // event relation
        break;
      case ExecutionStrategy::kMonotoneBinarySearch:
        EXPECT_EQ(plan.kernel, ScanKernel::kMonotone);
        break;
      case ExecutionStrategy::kValidIndex:
        EXPECT_EQ(plan.kernel, ScanKernel::kRowAtATime);
        break;
      case ExecutionStrategy::kFullScan:
        ADD_FAILURE() << "planner never plans a bare full scan";
        break;
    }
  }
}

TEST(StrategyDifferentialTest, EveryKernelMatchesTheRowWalkDifferentially) {
  // Forced-kernel differential: for every enumerated pane, run the same
  // randomized valid-range queries through (a) the row-at-a-time full scan,
  // (b) the generic columnar kernel on a full scan, and (c) the optimizer's
  // plan (pane kernel + narrowed candidates). All three must return
  // byte-identical position sets — including the ~1/8 logically deleted
  // rows, which exercise the existence half of each predicate. Current and
  // rollback views check the existence kernel the same way.
  const PlanChoice row_plan{ExecutionStrategy::kFullScan, TimeInterval::All(),
                            ""};
  PlanChoice generic_plan = row_plan;
  generic_plan.kernel = ScanKernel::kGeneric;

  uint64_t seed = 1789;
  for (const EnumeratedRegion& region :
       EnumerateEventRegions(kDeltaSmall, kDeltaLarge)) {
    SCOPED_TRACE(std::string(EventSpecKindToString(region.kind)) + " " +
                 region.band.ToString());
    RegionRelation rr = BuildRelationFor(region, seed++);
    QueryExecutor exec(*rr.relation, ExecutorOptions{.pool = nullptr});

    Random rng(seed * 131);
    const auto& elements = rr.relation->elements();
    for (int trial = 0; trial < kTrialsPerRegion; ++trial) {
      const Element& probe =
          elements[static_cast<size_t>(rng.Uniform(0, kEvents - 1))];
      const TimePoint lo =
          probe.valid.at() + Duration::Seconds(rng.Uniform(-30, 0));
      const TimePoint hi = lo + Duration::Seconds(rng.Uniform(1, 120));

      QueryStats ignored;
      const ResultSet row =
          exec.ValidRangeSetWith(row_plan, lo, hi, &ignored);
      const ResultSet generic =
          exec.ValidRangeSetWith(generic_plan, lo, hi, &ignored);
      const PlanChoice planned = exec.optimizer().PlanValidRange(lo, hi);
      const ResultSet specialized =
          exec.ValidRangeSetWith(planned, lo, hi, &ignored);
      ExpectSameResults(generic, row, "generic_columnar vs row walk");
      ExpectSameResults(
          specialized, row,
          std::string("kernel ") + ScanKernelToToken(planned.kernel) +
              " under " + ExecutionStrategyToString(planned.strategy));
    }

    // Existence kernel: CurrentSet/RollbackSet run existence_columnar; the
    // naive comparison re-derives both from the Element walk.
    const ResultSet current = exec.CurrentSet();
    std::vector<uint64_t> naive_current;
    for (size_t i = 0; i < elements.size(); ++i) {
      if (elements[i].IsCurrent()) naive_current.push_back(i);
    }
    EXPECT_EQ(current.positions(), naive_current) << "existence_columnar";

    const TimePoint mid =
        TimePoint::FromMicros(rr.relation->LastTransactionTime().micros() / 2);
    const ResultSet rollback = exec.RollbackSet(mid);
    std::vector<uint64_t> naive_rollback;
    for (size_t i = 0; i < elements.size(); ++i) {
      if (elements[i].ExistsAt(mid)) naive_rollback.push_back(i);
    }
    EXPECT_EQ(rollback.positions(), naive_rollback)
        << "existence_columnar as-of";
  }
}

}  // namespace
}  // namespace tempspec
