// Every scenario generator must (a) succeed against its own declared
// specializations — i.e. the constraint engine accepts the whole workload —
// and (b) be recognized by the inference engine, closing the loop between
// generation, enforcement, and design-time inference.
#include "workload/workloads.h"

#include <gtest/gtest.h>

#include "spec/inference.h"
#include "testing.h"

namespace tempspec {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.num_objects = 5;
  config.ops_per_object = 30;
  return config;
}

TEST(WorkloadTest, ProcessMonitoringSatisfiesAndInfers) {
  const WorkloadConfig config = SmallConfig();
  const Duration min_delay = Duration::Seconds(30);
  const Duration max_delay = Duration::Seconds(120);
  ASSERT_OK_AND_ASSIGN(
      auto scenario,
      MakeProcessMonitoring(config, min_delay, max_delay, Duration::Minutes(1)));
  ASSERT_OK(GenerateProcessMonitoring(config, min_delay, max_delay,
                                      Duration::Minutes(1), &scenario));
  EXPECT_EQ(scenario->size(), 150u);
  EXPECT_OK(scenario->CheckExtension());

  const RelationProfile profile =
      InferProfile(scenario->elements(), ValidTimeKind::kEvent,
                   scenario->schema().valid_granularity());
  // All offsets are storage delays within [-120s, -30s].
  EXPECT_LE(profile.event.max_offset_us, -30 * kMicrosPerSecond);
  EXPECT_GE(profile.event.min_offset_us, -120 * kMicrosPerSecond);
  EXPECT_EQ(profile.event.classified,
            EventSpecKind::kDelayedStronglyRetroactivelyBounded);
}

TEST(WorkloadTest, DegenerateMonitoringIsDegenerateAndRegular) {
  const WorkloadConfig config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(auto scenario,
                       MakeDegenerateMonitoring(config, Duration::Seconds(10)));
  ASSERT_OK(GenerateDegenerateMonitoring(config, Duration::Seconds(10), &scenario));
  EXPECT_OK(scenario->CheckExtension());
  const RelationProfile profile =
      InferProfile(scenario->elements(), ValidTimeKind::kEvent,
                   scenario->schema().valid_granularity());
  EXPECT_TRUE(profile.event.degenerate);
  EXPECT_TRUE(profile.regularity.temporal_regular);
  EXPECT_TRUE(profile.regularity.temporal_strict);
  EXPECT_EQ(profile.regularity.temporal_unit_us, 10 * kMicrosPerSecond);
  EXPECT_TRUE(profile.global_ordering.non_decreasing);
}

TEST(WorkloadTest, PayrollIsEarlyStronglyPredictivelyBounded) {
  const WorkloadConfig config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(auto scenario, MakePayroll(config));
  ASSERT_OK(GeneratePayroll(config, &scenario));
  EXPECT_OK(scenario->CheckExtension());
  const RelationProfile profile =
      InferProfile(scenario->elements(), ValidTimeKind::kEvent,
                   scenario->schema().valid_granularity());
  // Leads of 3..7 days.
  EXPECT_GE(profile.event.min_offset_us, 3 * kMicrosPerDay);
  EXPECT_LE(profile.event.max_offset_us, 7 * kMicrosPerDay);
  EXPECT_EQ(profile.event.classified,
            EventSpecKind::kEarlyStronglyPredictivelyBounded);
}

TEST(WorkloadTest, AssignmentsContiguousWeeklyIntervals) {
  const WorkloadConfig config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeAssignments(config));
  ASSERT_OK(GenerateAssignments(config, &scenario));
  EXPECT_OK(scenario->CheckExtension());
  const RelationProfile profile =
      InferProfile(scenario->elements(), ValidTimeKind::kInterval,
                   scenario->schema().valid_granularity());
  EXPECT_TRUE(profile.interval.valid_strict);
  EXPECT_EQ(profile.interval.valid_duration_unit_us,
            7 * kMicrosPerDay);
  EXPECT_TRUE(profile.per_surrogate_ordering.non_decreasing);
}

TEST(WorkloadTest, AccountingStaysWithinBounds) {
  const WorkloadConfig config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeAccounting(config));
  ASSERT_OK(GenerateAccounting(config, &scenario));
  EXPECT_OK(scenario->CheckExtension());
  const RelationProfile profile =
      InferProfile(scenario->elements(), ValidTimeKind::kEvent,
                   scenario->schema().valid_granularity());
  EXPECT_GE(profile.event.min_offset_us, -5 * kMicrosPerDay);
  EXPECT_LE(profile.event.max_offset_us, 2 * kMicrosPerDay);
  EXPECT_EQ(profile.event.classified, EventSpecKind::kStronglyBounded);
}

TEST(WorkloadTest, OrdersPredictivelyBounded) {
  const WorkloadConfig config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeOrders(config));
  ASSERT_OK(GenerateOrders(config, &scenario));
  EXPECT_OK(scenario->CheckExtension());
  const RelationProfile profile =
      InferProfile(scenario->elements(), ValidTimeKind::kEvent,
                   scenario->schema().valid_granularity());
  EXPECT_LE(profile.event.max_offset_us, 30 * kMicrosPerDay);
}

TEST(WorkloadTest, ArchaeologyNonIncreasingAndInverseMeets) {
  const WorkloadConfig config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeArchaeology(config));
  ASSERT_OK(GenerateArchaeology(config, &scenario));
  EXPECT_OK(scenario->CheckExtension());
  const RelationProfile profile =
      InferProfile(scenario->elements(), ValidTimeKind::kInterval,
                   scenario->schema().valid_granularity());
  EXPECT_TRUE(profile.global_ordering.non_increasing);
  EXPECT_EQ(profile.interval.successive.count(AllenRelation::kMetBy), 1u);
}

TEST(WorkloadTest, GeneralBaselineHasNoStructure) {
  const WorkloadConfig config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeGeneral(config));
  ASSERT_OK(GenerateGeneral(config, Duration::Hours(2), &scenario));
  const RelationProfile profile =
      InferProfile(scenario->elements(), ValidTimeKind::kEvent,
                   scenario->schema().valid_granularity());
  EXPECT_EQ(profile.event.classified, EventSpecKind::kStronglyBounded);
  EXPECT_FALSE(profile.global_ordering.non_decreasing);
  EXPECT_FALSE(profile.event.degenerate);
  EXPECT_FALSE(profile.event.determined_by.has_value());
}

TEST(WorkloadTest, BaselineModeSkipsDeclarations) {
  WorkloadConfig config = SmallConfig();
  config.declare_specializations = false;
  ASSERT_OK_AND_ASSIGN(
      auto scenario,
      MakeProcessMonitoring(config, Duration::Seconds(30), Duration::Seconds(120),
                            Duration::Minutes(1)));
  EXPECT_TRUE(scenario->specializations().empty());
}

TEST(WorkloadTest, GeneratorsAreDeterministic) {
  const WorkloadConfig config = SmallConfig();
  ASSERT_OK_AND_ASSIGN(auto s1, MakeAccounting(config));
  ASSERT_OK(GenerateAccounting(config, &s1));
  ASSERT_OK_AND_ASSIGN(auto s2, MakeAccounting(config));
  ASSERT_OK(GenerateAccounting(config, &s2));
  ASSERT_EQ(s1->size(), s2->size());
  for (size_t i = 0; i < s1->size(); ++i) {
    EXPECT_EQ(s1->elements()[i].valid, s2->elements()[i].valid);
    EXPECT_EQ(s1->elements()[i].tt_begin, s2->elements()[i].tt_begin);
  }
}

}  // namespace
}  // namespace tempspec
