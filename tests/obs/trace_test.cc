// Unit tests for TraceContext: span lifecycle, counters/attrs, stage scopes
// (including null-context safety), and the single-line JSON rendering that
// EXPLAIN ANALYZE returns verbatim.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "testing.h"
#include "testing_json.h"

namespace tempspec {
namespace {

TEST(TraceTest, SpanLifecycle) {
  TraceContext ctx;
  EXPECT_FALSE(ctx.started());
  ctx.Begin("query.timeslice");
  EXPECT_TRUE(ctx.started());
  EXPECT_EQ(ctx.name(), "query.timeslice");
  ctx.End();
  const uint64_t wall = ctx.wall_micros();
  ctx.End();  // idempotent: a second End must not extend the span
  EXPECT_EQ(ctx.wall_micros(), wall);
}

TEST(TraceTest, CountersAccumulateAndAttrsLastWriteWins) {
  TraceContext ctx;
  ctx.Begin("span");
  ctx.AddCounter("elements_examined", 10);
  ctx.AddCounter("elements_examined", 5);
  ctx.AddCounter("results", 3);
  EXPECT_EQ(ctx.counter("elements_examined"), 15u);
  EXPECT_EQ(ctx.counter("results"), 3u);
  EXPECT_EQ(ctx.counter("absent"), 0u);
  ctx.SetAttr("strategy", "full_scan");
  ctx.SetAttr("strategy", "valid_index");
  EXPECT_EQ(ctx.attr("strategy"), "valid_index");
  EXPECT_EQ(ctx.attr("absent"), "");
}

TEST(TraceTest, StageScopesRecordInOrder) {
  TraceContext ctx;
  ctx.Begin("span");
  {
    TraceContext::StageScope plan(&ctx, "plan");
  }
  {
    TraceContext::StageScope scan(&ctx, "scan");
  }
  ctx.AddStage("manual", 123);
  ASSERT_EQ(ctx.stages().size(), 3u);
  EXPECT_EQ(ctx.stages()[0].name, "plan");
  EXPECT_EQ(ctx.stages()[1].name, "scan");
  EXPECT_EQ(ctx.stages()[2].name, "manual");
  EXPECT_EQ(ctx.stages()[2].micros, 123u);
}

TEST(TraceTest, NullContextStageScopeIsNoop) {
  // The executor passes nullptr when no trace is attached; the scope must be
  // inert, not crash.
  TraceContext::StageScope scope(nullptr, "scan");
}

TEST(TraceTest, ToJsonShape) {
  TraceContext ctx;
  ctx.Begin("query.rollback");
  ctx.SetAttr("strategy", "full_scan");
  ctx.AddCounter("results", 7);
  ctx.AddStage("scan", 42);
  const std::string json = ctx.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos) << "single line";
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"span\":\"query.rollback\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_micros\":"), std::string::npos);
  EXPECT_NE(json.find("\"attrs\":{\"strategy\":\"full_scan\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\":{\"results\":7}"), std::string::npos);
  EXPECT_NE(json.find("\"stages\":[{\"name\":\"scan\",\"micros\":42}]"),
            std::string::npos);
  // ToJson finalizes a still-open span so the wall time is meaningful.
  EXPECT_GE(ctx.wall_micros(), 0u);
}

TEST(TraceTest, ToJsonRoundTripsHostileNamesAndValues) {
  // Span names, attr keys/values, and stage names all pass through
  // JsonEscape; anything the engine can put in them must survive a parse.
  const std::string nasty =
      "we\"ird\\span\twith\nnewline caf\xC3\xA9 \x01\x1f end";
  TraceContext ctx;
  ctx.Begin(nasty);
  ctx.SetAttr(nasty, nasty);
  ctx.AddCounter("results", 7);
  ctx.AddStage(nasty, 42);
  ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                       testing::JsonParser::Parse(ctx.ToJson()));
  EXPECT_EQ(v.at("span").string, nasty);
  EXPECT_EQ(v.at("attrs").at(nasty).string, nasty);
  EXPECT_EQ(v.at("counters").at("results").number, "7");
  ASSERT_EQ(v.at("stages").array.size(), 1u);
  EXPECT_EQ(v.at("stages").array[0].at("name").string, nasty);
}

}  // namespace
}  // namespace tempspec
