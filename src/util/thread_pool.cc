#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/metrics.h"

namespace tempspec {

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("TEMPSPEC_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t threads)
    : size_(threads == 0 ? DefaultThreadCount() : threads) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Global() {
  // Leaked so worker threads never race static destruction at exit.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ThreadPool::EnsureStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || size_ <= 1) return;
  started_ = true;
  workers_.reserve(size_ - 1);  // the caller is worker number `size_`
  for (size_t i = 1; i < size_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::RunMorsels(Job& job) {
  for (;;) {
    const size_t m = job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (m >= job.morsels) return;
    const size_t begin = m * job.grain;
    (*job.fn)(m, begin, std::min(job.n, begin + job.grain));
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock,
                  [&] { return stop_ || (job_ != nullptr && epoch_ != seen); });
    if (stop_) return;
    seen = epoch_;
    Job* job = job_;
    ++inflight_;
    lock.unlock();
    RunMorsels(*job);
    lock.lock();
    if (--inflight_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain, const MorselFn& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t morsels = (n + grain - 1) / grain;
  if (size_ <= 1 || morsels <= 1) {
    for (size_t m = 0; m < morsels; ++m) {
      const size_t begin = m * grain;
      fn(m, begin, std::min(n, begin + grain));
    }
    return;
  }

  EnsureStarted();
#ifdef TEMPSPEC_METRICS
  // queue_depth counts ParallelFor calls queued on or holding run_mu_; the
  // wait histogram is the queueing latency behind other jobs.
  TS_GAUGE_ADD("threadpool.queue_depth", 1);
  const auto queued_at = std::chrono::steady_clock::now();
#endif
  std::lock_guard<std::mutex> run_lock(run_mu_);
#ifdef TEMPSPEC_METRICS
  const auto started_at = std::chrono::steady_clock::now();
  TS_HISTOGRAM_OBSERVE(
      "threadpool.job_wait_micros",
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                started_at - queued_at)
                                .count()));
  TS_COUNTER_INC("threadpool.jobs");
  TS_COUNTER_ADD("threadpool.morsels", morsels);
#endif
  Job job;
  job.n = n;
  job.grain = grain;
  job.morsels = morsels;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++epoch_;
  }
  cv_work_.notify_all();
  RunMorsels(job);  // caller participates
  // The cursor is exhausted; retract the job so no worker picks it up late,
  // then wait for workers still draining their last morsel.
  std::unique_lock<std::mutex> lock(mu_);
  job_ = nullptr;
  cv_done_.wait(lock, [&] { return inflight_ == 0; });
#ifdef TEMPSPEC_METRICS
  lock.unlock();
  TS_HISTOGRAM_OBSERVE(
      "threadpool.job_run_micros",
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() - started_at)
                                .count()));
  TS_GAUGE_ADD("threadpool.queue_depth", -1);
#endif
}

}  // namespace tempspec
