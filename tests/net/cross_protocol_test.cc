// Cross-protocol equivalence: the HTTP /query plane and the TSP1 frame
// plane are two encodings of the same service, so the same statement must
// produce the same answer — byte-identical payloads for reads and EXPLAIN,
// and the same outcome taxonomy for every error class (200<->kResult,
// 400<->kError, 503<->kRejected). Also covers the production QueryClient
// (src/net/client.h) the simulator's tenant drivers speak through: its
// WireOutcome classification must agree across protocols too.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "catalog/query_service.h"
#include "net/client.h"
#include "net/net_test_client.h"
#include "net/server.h"
#include "testing.h"

namespace tempspec {
namespace {

using testing::ExecReply;
using testing::ExecuteStatement;
using testing::TestClient;

class CrossProtocolTest : public ::testing::Test {
 protected:
  void StartServer() {
    service_ = std::make_unique<QueryService>(QueryServiceOptions{});
    ASSERT_OK(service_->Open());
    ServerOptions options;
    options.bind_address = "127.0.0.1";
    options.port = 0;
    options.worker_threads = 2;
    server_ = std::make_unique<NetServer>(std::move(options));
    server_->SetStatementHandler(
        [this](const std::string& statement, TraceContext* trace) {
          return service_->Execute(statement, trace);
        });
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<QueryService> service_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(CrossProtocolTest, ReadsAreByteIdenticalAcrossProtocols) {
  StartServer();
  ASSERT_OK(service_
                ->Execute(
                    "CREATE EVENT RELATION xp (sensor INT64 KEY, v DOUBLE) "
                    "GRANULARITY 1s",
                    nullptr)
                .status());
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(service_
                  ->Execute("INSERT INTO xp OBJECT " + std::to_string(i + 1) +
                                " VALUES (" + std::to_string(i + 1) + ", " +
                                std::to_string(i) +
                                ".5) VALID AT '1970-01-01 00:00:0" +
                                std::to_string(i) + "'",
                            nullptr)
                  .status());
  }

  TestClient http(server_->port());
  TestClient tsp1(server_->port());
  ASSERT_TRUE(http.connected());
  ASSERT_TRUE(tsp1.connected());

  const std::string reads[] = {
      "CURRENT xp",
      "TIMESLICE xp AT '1970-01-01 00:00:03'",
      "TIMESLICE xp AT '1970-01-01 00:00:03' AS OF '1970-01-01 00:00:02'",
      "RANGE xp FROM '1970-01-01 00:00:01' TO '1970-01-01 00:00:04'",
      "SHOW SPECIALIZATION xp",
      "EXPLAIN TIMESLICE xp AT '1970-01-01 00:00:03'",
  };
  for (const std::string& statement : reads) {
    const ExecReply via_http = ExecuteStatement(http, statement,
                                                /*frames=*/false);
    const ExecReply via_tsp1 = ExecuteStatement(tsp1, statement,
                                                /*frames=*/true);
    ASSERT_TRUE(via_http.transport_ok) << statement;
    ASSERT_TRUE(via_tsp1.transport_ok) << statement;
    EXPECT_TRUE(via_http.accepted) << statement << ": " << via_http.body;
    EXPECT_TRUE(via_tsp1.accepted) << statement << ": " << via_tsp1.body;
    EXPECT_EQ(via_http.body, via_tsp1.body)
        << "protocols disagree on '" << statement << "'";
  }
}

TEST_F(CrossProtocolTest, ErrorTaxonomyMatchesAcrossProtocols) {
  StartServer();
  ASSERT_OK(service_
                ->Execute(
                    "CREATE EVENT RELATION xp (sensor INT64 KEY, v DOUBLE) "
                    "GRANULARITY 1d WITH DEGENERATE",
                    nullptr)
                .status());

  TestClient http(server_->port());
  TestClient tsp1(server_->port());
  ASSERT_TRUE(http.connected());
  ASSERT_TRUE(tsp1.connected());

  // Deterministic error payloads: parser and catalog errors mention no
  // relation clock, so the bodies must match byte for byte — modulo the
  // HTTP plane's deliberate trailing newline (curl-friendliness) and its
  // semantic status mapping (Not found rides 404 where TSP1 has only
  // kError). Both are protocol encodings of the same Status.
  const std::string deterministic_errors[] = {
      "FROB THE DATABASE",
      "CURRENT no_such_relation",
      "RANGE xp FROM '1970-01-05 00:00:00' TO '1970-01-02 00:00:00'",
  };
  for (const std::string& statement : deterministic_errors) {
    const ExecReply via_http = ExecuteStatement(http, statement,
                                                /*frames=*/false);
    const ExecReply via_tsp1 = ExecuteStatement(tsp1, statement,
                                                /*frames=*/true);
    ASSERT_TRUE(via_http.transport_ok) << statement;
    ASSERT_TRUE(via_tsp1.transport_ok) << statement;
    EXPECT_FALSE(via_http.accepted) << statement;
    EXPECT_FALSE(via_tsp1.accepted) << statement;
    EXPECT_GE(via_http.code, 400) << statement << ": " << via_http.body;
    EXPECT_LT(via_http.code, 500) << statement << ": " << via_http.body;
    std::string http_body = via_http.body;
    ASSERT_FALSE(http_body.empty()) << statement;
    ASSERT_EQ(http_body.back(), '\n') << statement << ": " << http_body;
    http_body.pop_back();
    EXPECT_EQ(http_body, via_tsp1.body)
        << "protocols disagree on '" << statement << "'";
  }

  // Constraint rejections embed the transaction-time stamp, which ticks on
  // every attempt — assert class equivalence instead of byte equality.
  const std::string drifted =
      "INSERT INTO xp OBJECT 1 VALUES (1, 1.0) VALID AT '1995-06-01 00:00:00'";
  const ExecReply via_http = ExecuteStatement(http, drifted, /*frames=*/false);
  const ExecReply via_tsp1 = ExecuteStatement(tsp1, drifted, /*frames=*/true);
  ASSERT_TRUE(via_http.transport_ok);
  ASSERT_TRUE(via_tsp1.transport_ok);
  EXPECT_EQ(via_http.code, 400) << via_http.body;
  EXPECT_EQ(via_tsp1.code, 400) << via_tsp1.body;
  EXPECT_EQ(via_http.body.rfind("Constraint violation", 0), 0u)
      << via_http.body;
  EXPECT_EQ(via_tsp1.body.rfind("Constraint violation", 0), 0u)
      << via_tsp1.body;
}

TEST_F(CrossProtocolTest, QueryClientClassifiesIdenticallyAcrossProtocols) {
  StartServer();
  ASSERT_OK(service_
                ->Execute(
                    "CREATE EVENT RELATION xp (sensor INT64 KEY, v DOUBLE) "
                    "GRANULARITY 1s",
                    nullptr)
                .status());
  ASSERT_OK(service_
                ->Execute(
                    "INSERT INTO xp OBJECT 1 VALUES (1, 2.5) "
                    "VALID AT '1970-01-01 00:00:00'",
                    nullptr)
                .status());

  for (ClientProtocol protocol :
       {ClientProtocol::kHttp, ClientProtocol::kTsp1}) {
    ClientOptions options;
    options.protocol = protocol;
    QueryClient client(options);
    ASSERT_OK(client.Connect(server_->port()));

    WireReply ok = client.Execute("CURRENT xp");
    EXPECT_EQ(ok.outcome, WireOutcome::kOk)
        << WireOutcomeToString(ok.outcome) << ": " << ok.body;
    EXPECT_NE(ok.body.find("1 element(s)"), std::string::npos) << ok.body;

    WireReply bad = client.Execute("FROB THE DATABASE");
    EXPECT_EQ(bad.outcome, WireOutcome::kClientError)
        << WireOutcomeToString(bad.outcome) << ": " << bad.body;

    WireReply missing = client.Execute("CURRENT no_such_relation");
    EXPECT_EQ(missing.outcome, WireOutcome::kClientError)
        << WireOutcomeToString(missing.outcome) << ": " << missing.body;

    // The connection survives errors: the next statement still executes.
    WireReply again = client.Execute("CURRENT xp");
    EXPECT_EQ(again.outcome, WireOutcome::kOk);
    EXPECT_EQ(again.body, ok.body);
    client.Close();
  }
}

}  // namespace
}  // namespace tempspec
