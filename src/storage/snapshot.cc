#include "storage/snapshot.h"

#include <algorithm>

namespace tempspec {

void SnapshotManager::Refresh() {
  const auto& entries = store_->entries();
  while (consumed_ < entries.size()) {
    const BacklogEntry& e = entries[consumed_];
    if (e.op == BacklogOpType::kInsert) {
      running_.emplace(e.element.element_surrogate, e.element);
    } else {
      running_.erase(e.target);
    }
    ++consumed_;
    if (consumed_ % interval_ == 0) {
      snapshots_.push_back(Snapshot{e.tt, consumed_, running_});
    }
  }
}

std::vector<Element> SnapshotManager::StateAt(TimePoint tt) const {
  // Latest snapshot whose covered transaction time is <= tt. Snapshot
  // positions and transaction times increase together.
  const Snapshot* base = nullptr;
  auto it = std::upper_bound(
      snapshots_.begin(), snapshots_.end(), tt,
      [](TimePoint t, const Snapshot& s) { return t < s.tt; });
  if (it != snapshots_.begin()) base = &*std::prev(it);

  std::unordered_map<ElementSurrogate, Element> state;
  size_t position = 0;
  if (base != nullptr) {
    state = base->state;
    position = base->position;
  }
  const auto& entries = store_->entries();
  for (size_t i = position; i < entries.size(); ++i) {
    const BacklogEntry& e = entries[i];
    if (e.tt > tt) break;
    if (e.op == BacklogOpType::kInsert) {
      state.emplace(e.element.element_surrogate, e.element);
    } else {
      state.erase(e.target);
    }
  }
  std::vector<Element> out;
  out.reserve(state.size());
  for (auto& [id, element] : state) out.push_back(element);
  return out;
}

size_t SnapshotManager::cached_elements() const {
  size_t total = running_.size();
  for (const auto& s : snapshots_) total += s.state.size();
  return total;
}

}  // namespace tempspec
