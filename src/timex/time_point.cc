#include "timex/time_point.h"

#include "timex/calendar.h"

namespace tempspec {

std::string TimePoint::ToString() const { return FormatTimePoint(*this); }

std::ostream& operator<<(std::ostream& os, TimePoint tp) {
  return os << tp.ToString();
}

}  // namespace tempspec
