#include "timex/granularity.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace tempspec {

namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t FixedUnitMicros(Granularity::Unit unit) {
  switch (unit) {
    case Granularity::Unit::kMicrosecond:
      return 1;
    case Granularity::Unit::kMillisecond:
      return 1000;
    case Granularity::Unit::kSecond:
      return kMicrosPerSecond;
    case Granularity::Unit::kMinute:
      return kMicrosPerMinute;
    case Granularity::Unit::kHour:
      return kMicrosPerHour;
    case Granularity::Unit::kDay:
      return kMicrosPerDay;
    case Granularity::Unit::kWeek:
      return kMicrosPerWeek;
    default:
      return 0;  // calendric
  }
}

}  // namespace

TimePoint Granularity::Truncate(TimePoint tp) const {
  if (tp.IsMin() || tp.IsMax()) return tp;
  if (!IsCalendric()) {
    const int64_t granule = FixedUnitMicros(unit_) * count_;
    return TimePoint::FromMicros(FloorDiv(tp.micros(), granule) * granule);
  }
  CivilDateTime c = ToCivil(tp);
  const int64_t monthsPerGranule = (unit_ == Unit::kMonth ? 1 : 12) * count_;
  int64_t linear = static_cast<int64_t>(c.year) * 12 + (c.month - 1);
  linear = FloorDiv(linear, monthsPerGranule) * monthsPerGranule;
  CivilDateTime start;
  start.year = static_cast<int32_t>(FloorDiv(linear, 12));
  start.month = static_cast<int32_t>(linear - static_cast<int64_t>(start.year) * 12) + 1;
  start.day = 1;
  return FromCivil(start);
}

TimePoint Granularity::Ceil(TimePoint tp) const {
  const TimePoint floor = Truncate(tp);
  return floor == tp ? tp : NextGranule(tp);
}

TimePoint Granularity::NextGranule(TimePoint tp) const {
  if (tp.IsMin() || tp.IsMax()) return tp;
  const TimePoint floor = Truncate(tp);
  return floor + AsDuration();
}

Duration Granularity::AsDuration() const {
  switch (unit_) {
    case Unit::kMonth:
      return Duration::Months(count_);
    case Unit::kYear:
      return Duration::Years(count_);
    default:
      return Duration::Micros(FixedUnitMicros(unit_) * count_);
  }
}

std::string Granularity::ToString() const {
  const char* name = "";
  switch (unit_) {
    case Unit::kMicrosecond:
      name = "us";
      break;
    case Unit::kMillisecond:
      name = "ms";
      break;
    case Unit::kSecond:
      name = "s";
      break;
    case Unit::kMinute:
      name = "min";
      break;
    case Unit::kHour:
      name = "h";
      break;
    case Unit::kDay:
      name = "day";
      break;
    case Unit::kWeek:
      name = "week";
      break;
    case Unit::kMonth:
      name = "month";
      break;
    case Unit::kYear:
      name = "year";
      break;
  }
  if (count_ == 1) return name;
  return std::to_string(count_) + name;
}

Result<Granularity> ParseGranularity(const std::string& text) {
  std::string s = ToLower(std::string(Trim(text)));
  size_t i = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
  int32_t count = 1;
  if (i > 0) count = std::atoi(s.substr(0, i).c_str());
  if (count < 1) return Status::InvalidArgument("granularity count must be >= 1");
  const std::string unit = s.substr(i);
  using U = Granularity::Unit;
  if (unit == "us" || unit == "microsecond") return Granularity(U::kMicrosecond, count);
  if (unit == "ms" || unit == "millisecond") return Granularity(U::kMillisecond, count);
  if (unit == "s" || unit == "sec" || unit == "second") return Granularity(U::kSecond, count);
  if (unit == "min" || unit == "minute") return Granularity(U::kMinute, count);
  if (unit == "h" || unit == "hour") return Granularity(U::kHour, count);
  if (unit == "day" || unit == "d") return Granularity(U::kDay, count);
  if (unit == "week" || unit == "w") return Granularity(U::kWeek, count);
  if (unit == "month" || unit == "mo") return Granularity(U::kMonth, count);
  if (unit == "year" || unit == "y") return Granularity(U::kYear, count);
  return Status::InvalidArgument("unknown granularity unit: '", unit, "'");
}

}  // namespace tempspec
