// Fixed-size thread pool with morsel-driven parallel-for.
//
// Execution model (morsel-driven, after Leis et al., "Morsel-Driven
// Parallelism"): a parallel loop over [0, n) is split into fixed-size
// contiguous morsels; workers claim morsels from a shared atomic cursor, so
// load-balancing is dynamic but each morsel is a contiguous, cache-friendly
// range processed by exactly one thread. The calling thread participates as
// a worker, so a pool of size 1 degenerates to a plain serial loop and no
// threads are ever spawned.
//
// The pool is lazy: worker threads start on the first parallel job, never at
// construction. Size defaults to the TEMPSPEC_THREADS environment variable
// when set, else std::thread::hardware_concurrency().
//
// Determinism contract: ParallelFor invokes `fn(morsel, begin, end)` with
// morsel indexes 0..ceil(n/grain)-1 covering [0, n) in order. Which thread
// runs which morsel is nondeterministic, but callers that write morsel-local
// outputs and concatenate them by morsel index obtain results byte-identical
// to a serial loop.
#ifndef TEMPSPEC_UTIL_THREAD_POOL_H_
#define TEMPSPEC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tempspec {

/// \brief Morsel callback: one contiguous chunk [begin, end) of the loop
/// domain, with its morsel ordinal (begin / grain).
using MorselFn = std::function<void(size_t morsel, size_t begin, size_t end)>;

/// \brief Fixed-size, lazily started worker pool.
class ThreadPool {
 public:
  /// \brief `threads` = 0 picks the default (TEMPSPEC_THREADS env override,
  /// else hardware_concurrency, floor 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Worker count, caller included (>= 1).
  size_t size() const { return size_; }

  /// \brief Runs `fn` over [0, n) in morsels of `grain`. Blocks until every
  /// morsel has completed. The caller participates as a worker. Safe to call
  /// from multiple threads (concurrent jobs are serialized). Must not be
  /// called reentrantly from inside a morsel.
  void ParallelFor(size_t n, size_t grain, const MorselFn& fn);

  /// \brief Process-wide shared pool (default-sized, lazily started).
  static ThreadPool& Global();

  /// \brief The default thread count: TEMPSPEC_THREADS when set and positive,
  /// else hardware_concurrency (floor 1).
  static size_t DefaultThreadCount();

 private:
  struct Job {
    size_t n = 0;
    size_t grain = 1;
    size_t morsels = 0;
    const MorselFn* fn = nullptr;
    std::atomic<size_t> cursor{0};
  };

  void EnsureStarted();
  void WorkerLoop();
  static void RunMorsels(Job& job);

  const size_t size_;

  std::mutex run_mu_;  // serializes concurrent ParallelFor callers

  std::mutex mu_;  // guards everything below
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  uint64_t epoch_ = 0;      // bumped per job so workers never run one twice
  size_t inflight_ = 0;     // workers currently inside RunMorsels
  bool started_ = false;
  bool stop_ = false;
};

}  // namespace tempspec

#endif  // TEMPSPEC_UTIL_THREAD_POOL_H_
