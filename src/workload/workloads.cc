#include "workload/workloads.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "timex/calendar.h"

namespace tempspec {

namespace {

// All scenarios play out in the paper's publication year.
TimePoint Epoch() { return FromCivil(CivilDateTime{1992, 1, 1, 0, 0, 0, 0}); }

// Canonical knobs for the scenarios whose specific entry points take extra
// parameters; the unified Scenario surface uses these.
constexpr int64_t kMonitoringMinDelaySecs = 30;
constexpr int64_t kMonitoringMaxDelaySecs = 120;
constexpr int64_t kMonitoringSampleSecs = 60;
constexpr int64_t kDegenerateSampleSecs = 10;
constexpr int64_t kGeneralSpreadHours = 2;

// The apply/render order: transaction time, stable on planning order.
void SortByTransactionTime(std::vector<PlannedInsert>* ops) {
  std::stable_sort(ops->begin(), ops->end(),
                   [](const PlannedInsert& a, const PlannedInsert& b) {
                     return a.tt < b.tt;
                   });
}

// Applies planned inserts in transaction-time order, steering the scenario's
// logical clock so each element is stored at its planned instant.
Status Apply(std::vector<PlannedInsert> ops, ScenarioRelation* scenario) {
  SortByTransactionTime(&ops);
  for (auto& op : ops) {
    scenario->clock->SetTo(op.tt);
    TS_RETURN_NOT_OK(scenario->relation
                         ->Insert(op.object, op.valid, std::move(op.attributes))
                         .status());
  }
  return Status::OK();
}

Result<ScenarioRelation> OpenScenario(const WorkloadConfig& config,
                                      SchemaPtr schema,
                                      SpecializationSet specs) {
  ScenarioRelation out;
  out.clock = std::make_shared<LogicalClock>(Epoch(), Duration::Seconds(1));
  RelationOptions options;
  options.schema = std::move(schema);
  if (config.declare_specializations) {
    options.specializations = std::move(specs);
  }
  options.clock = out.clock;
  options.storage.directory = config.storage_directory;
  options.snapshot_interval = config.snapshot_interval;
  TS_ASSIGN_OR_RETURN(out.relation, TemporalRelation::Open(std::move(options)));
  return out;
}

Result<SchemaPtr> MeasurementSchema(const std::string& name) {
  return Schema::Make(
      name,
      {AttributeDef{"sensor", ValueType::kInt64, AttributeRole::kTimeInvariantKey},
       AttributeDef{"reading", ValueType::kDouble, AttributeRole::kTimeVarying}},
      ValidTimeKind::kEvent, Granularity::Second(), Granularity::Second());
}

}  // namespace

// ---------------------------------------------------------------------------
// Process monitoring: delayed retroactive, retroactively bounded.
// ---------------------------------------------------------------------------

Result<ScenarioRelation> MakeProcessMonitoring(const WorkloadConfig& config,
                                               Duration min_delay,
                                               Duration max_delay,
                                               Duration sample_every) {
  (void)sample_every;
  TS_ASSIGN_OR_RETURN(SchemaPtr schema, MeasurementSchema("plant_temperatures"));
  SpecializationSet specs;
  TS_ASSIGN_OR_RETURN(auto delayed,
                      EventSpecialization::DelayedRetroactive(min_delay));
  TS_ASSIGN_OR_RETURN(auto bounded,
                      EventSpecialization::RetroactivelyBounded(max_delay));
  specs.AddEvent(delayed).AddEvent(bounded);
  return OpenScenario(config, schema, std::move(specs));
}

namespace {

Result<std::vector<PlannedInsert>> PlanProcessMonitoring(
    const WorkloadConfig& config, Duration min_delay, Duration max_delay,
    Duration sample_every) {
  Random rng(config.seed);
  const int64_t min_us = min_delay.micros();
  const int64_t max_us = max_delay.micros();
  if (max_us <= min_us) {
    return Status::InvalidArgument("max_delay must exceed min_delay");
  }
  std::vector<PlannedInsert> ops;
  ops.reserve(config.num_objects * config.ops_per_object);
  for (size_t sensor = 0; sensor < config.num_objects; ++sensor) {
    for (size_t i = 0; i < config.ops_per_object; ++i) {
      const TimePoint vt =
          Epoch() + sample_every * static_cast<int64_t>(i) +
          Duration::Millis(static_cast<int64_t>(sensor));  // offset per sensor
      // Keep one second of headroom below the declared upper bound so clock
      // collision nudges cannot escape the band.
      const int64_t delay =
          rng.Uniform(min_us, std::max(min_us, max_us - kMicrosPerSecond));
      PlannedInsert op;
      op.tt = vt + Duration::Micros(delay);
      op.valid = ValidTime::Event(vt);
      op.object = sensor + 1;
      op.attributes = Tuple{static_cast<int64_t>(sensor),
                            20.0 + 5.0 * rng.Gaussian(0.0, 1.0)};
      ops.push_back(std::move(op));
    }
  }
  return ops;
}

}  // namespace

Status GenerateProcessMonitoring(const WorkloadConfig& config, Duration min_delay,
                                 Duration max_delay, Duration sample_every,
                                 ScenarioRelation* scenario) {
  TS_ASSIGN_OR_RETURN(
      std::vector<PlannedInsert> ops,
      PlanProcessMonitoring(config, min_delay, max_delay, sample_every));
  return Apply(std::move(ops), scenario);
}

// ---------------------------------------------------------------------------
// Degenerate monitoring: vt = tt, strictly temporally regular.
// ---------------------------------------------------------------------------

Result<ScenarioRelation> MakeDegenerateMonitoring(const WorkloadConfig& config,
                                                  Duration sample_every) {
  TS_ASSIGN_OR_RETURN(SchemaPtr schema, MeasurementSchema("reactor_samples"));
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Degenerate());
  TS_ASSIGN_OR_RETURN(
      auto regular,
      RegularitySpec::Make(RegularityDimension::kTemporal, sample_every,
                           /*strict=*/true));
  specs.AddRegularity(regular);
  return OpenScenario(config, schema, std::move(specs));
}

namespace {

std::vector<PlannedInsert> PlanDegenerateMonitoring(const WorkloadConfig& config,
                                                    Duration sample_every) {
  Random rng(config.seed);
  const size_t total = config.num_objects * config.ops_per_object;
  std::vector<PlannedInsert> ops;
  ops.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    const TimePoint t = Epoch() + sample_every * static_cast<int64_t>(i);
    PlannedInsert op;
    op.tt = t;
    op.valid = ValidTime::Event(t);
    op.object = (i % config.num_objects) + 1;
    op.attributes = Tuple{static_cast<int64_t>(i % config.num_objects),
                          300.0 + rng.Gaussian(0.0, 2.0)};
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace

Status GenerateDegenerateMonitoring(const WorkloadConfig& config,
                                    Duration sample_every,
                                    ScenarioRelation* scenario) {
  return Apply(PlanDegenerateMonitoring(config, sample_every), scenario);
}

// ---------------------------------------------------------------------------
// Direct-deposit payroll: early strongly predictively bounded (3..7 days).
// ---------------------------------------------------------------------------

Result<ScenarioRelation> MakePayroll(const WorkloadConfig& config) {
  TS_ASSIGN_OR_RETURN(
      SchemaPtr schema,
      Schema::Make("payroll_deposits",
                   {AttributeDef{"employee", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"amount", ValueType::kDouble,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kEvent, Granularity::Second(),
                   Granularity::Second()));
  SpecializationSet specs;
  TS_ASSIGN_OR_RETURN(auto early,
                      EventSpecialization::EarlyStronglyPredictivelyBounded(
                          Duration::Days(3), Duration::Days(7)));
  specs.AddEvent(early);
  // All deposits are valid at the start of a month: calendric regularity.
  TS_ASSIGN_OR_RETURN(auto monthly,
                      RegularitySpec::Make(RegularityDimension::kValidTime,
                                           Duration::Months(1)));
  specs.AddRegularity(monthly);
  return OpenScenario(config, schema, std::move(specs));
}

namespace {

std::vector<PlannedInsert> PlanPayroll(const WorkloadConfig& config) {
  Random rng(config.seed);
  std::vector<PlannedInsert> ops;
  ops.reserve(config.num_objects * config.ops_per_object);
  for (size_t month = 0; month < config.ops_per_object; ++month) {
    // Deposits effective the 1st of month+1.
    const TimePoint valid =
        AddMonths(Epoch(), static_cast<int64_t>(month) + 1);
    for (size_t emp = 0; emp < config.num_objects; ++emp) {
      // Tape sent 3..7 days ahead; an hour of headroom on both sides.
      const int64_t lead = rng.Uniform(3 * kMicrosPerDay + kMicrosPerHour,
                                       7 * kMicrosPerDay - kMicrosPerHour);
      PlannedInsert op;
      op.tt = valid - Duration::Micros(lead);
      op.valid = ValidTime::Event(valid);
      op.object = emp + 1;
      op.attributes = Tuple{static_cast<int64_t>(emp),
                            3000.0 + 500.0 * rng.NextDouble()};
      ops.push_back(std::move(op));
    }
  }
  return ops;
}

}  // namespace

Status GeneratePayroll(const WorkloadConfig& config, ScenarioRelation* scenario) {
  return Apply(PlanPayroll(config), scenario);
}

// ---------------------------------------------------------------------------
// Weekly assignments (interval relation).
// ---------------------------------------------------------------------------

Result<ScenarioRelation> MakeAssignments(const WorkloadConfig& config) {
  TS_ASSIGN_OR_RETURN(
      SchemaPtr schema,
      Schema::Make("assignments",
                   {AttributeDef{"employee", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"project", ValueType::kString,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kInterval, Granularity::Hour(),
                   Granularity::Second()));
  SpecializationSet specs;
  // Assignments are recorded before the week begins: vt_b-predictive.
  specs.AddAnchoredEvent(
      AnchoredEventSpec(EventSpecialization::Predictive(), ValidAnchor::kBegin));
  // Every assignment spans exactly one week.
  TS_ASSIGN_OR_RETURN(
      auto weekly,
      IntervalRegularitySpec::Make(IntervalRegularityDimension::kValidTime,
                                   Duration::Weeks(1), /*strict=*/true));
  specs.AddIntervalRegularity(weekly);
  // Per employee, each week's assignment meets the next (contiguous).
  specs.AddSuccessive(SuccessiveSpec::Contiguous(SpecScope::kPerObjectSurrogate));
  specs.AddIntervalOrdering(IntervalOrderingSpec(
      IntervalOrderingKind::kNonDecreasing, SpecScope::kPerObjectSurrogate));
  return OpenScenario(config, schema, std::move(specs));
}

namespace {

std::vector<PlannedInsert> PlanAssignments(const WorkloadConfig& config) {
  Random rng(config.seed);
  static const char* kProjects[] = {"apollo", "borealis", "castor", "deimos"};
  std::vector<PlannedInsert> ops;
  ops.reserve(config.num_objects * config.ops_per_object);
  for (size_t emp = 0; emp < config.num_objects; ++emp) {
    for (size_t week = 0; week < config.ops_per_object; ++week) {
      const TimePoint begin = Epoch() + Duration::Weeks(static_cast<int64_t>(week));
      const TimePoint end = begin + Duration::Weeks(1);
      PlannedInsert op;
      // Recorded 1..3 days before the week begins (staggered per employee so
      // transaction times are distinct).
      op.tt = begin - Duration::Hours(rng.Uniform(24, 72)) -
              Duration::Micros(static_cast<int64_t>(emp));
      op.valid = ValidTime::IntervalUnchecked(begin, end);
      op.object = emp + 1;
      op.attributes = Tuple{static_cast<int64_t>(emp),
                            std::string(kProjects[rng.Uniform(0, 3)])};
      ops.push_back(std::move(op));
    }
  }
  return ops;
}

}  // namespace

Status GenerateAssignments(const WorkloadConfig& config,
                           ScenarioRelation* scenario) {
  return Apply(PlanAssignments(config), scenario);
}

// ---------------------------------------------------------------------------
// Accounting: strongly bounded (5 days back, 2 days ahead).
// ---------------------------------------------------------------------------

Result<ScenarioRelation> MakeAccounting(const WorkloadConfig& config) {
  TS_ASSIGN_OR_RETURN(
      SchemaPtr schema,
      Schema::Make("ledger",
                   {AttributeDef{"account", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"delta", ValueType::kDouble,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kEvent, Granularity::Second(),
                   Granularity::Second()));
  SpecializationSet specs;
  TS_ASSIGN_OR_RETURN(auto bounded, EventSpecialization::StronglyBounded(
                                        Duration::Days(5), Duration::Days(2)));
  specs.AddEvent(bounded);
  return OpenScenario(config, schema, std::move(specs));
}

namespace {

std::vector<PlannedInsert> PlanAccounting(const WorkloadConfig& config) {
  Random rng(config.seed);
  std::vector<PlannedInsert> ops;
  const size_t total = config.num_objects * config.ops_per_object;
  ops.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    const TimePoint tt = Epoch() + Duration::Minutes(static_cast<int64_t>(i) * 7);
    const int64_t offset = rng.Uniform(-(5 * kMicrosPerDay - kMicrosPerHour),
                                       2 * kMicrosPerDay - kMicrosPerHour);
    PlannedInsert op;
    op.tt = tt;
    op.valid = ValidTime::Event(tt + Duration::Micros(offset));
    op.object = (i % config.num_objects) + 1;
    op.attributes = Tuple{static_cast<int64_t>(i % config.num_objects),
                          rng.Gaussian(0.0, 100.0)};
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace

Status GenerateAccounting(const WorkloadConfig& config,
                          ScenarioRelation* scenario) {
  return Apply(PlanAccounting(config), scenario);
}

// ---------------------------------------------------------------------------
// Orders: predictively bounded (30 days).
// ---------------------------------------------------------------------------

Result<ScenarioRelation> MakeOrders(const WorkloadConfig& config) {
  TS_ASSIGN_OR_RETURN(
      SchemaPtr schema,
      Schema::Make("orders",
                   {AttributeDef{"customer", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"quantity", ValueType::kInt64,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kEvent, Granularity::Second(),
                   Granularity::Second()));
  SpecializationSet specs;
  TS_ASSIGN_OR_RETURN(auto bounded,
                      EventSpecialization::PredictivelyBounded(Duration::Days(30)));
  specs.AddEvent(bounded);
  return OpenScenario(config, schema, std::move(specs));
}

namespace {

std::vector<PlannedInsert> PlanOrders(const WorkloadConfig& config) {
  Random rng(config.seed);
  std::vector<PlannedInsert> ops;
  const size_t total = config.num_objects * config.ops_per_object;
  ops.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    const TimePoint tt = Epoch() + Duration::Minutes(static_cast<int64_t>(i) * 11);
    // Mostly already-filled orders (past), some pending at most 30 days out.
    const int64_t offset =
        rng.OneIn(0.7) ? -rng.Uniform(0, 60 * kMicrosPerDay)
                       : rng.Uniform(0, 30 * kMicrosPerDay - kMicrosPerHour);
    PlannedInsert op;
    op.tt = tt;
    op.valid = ValidTime::Event(tt + Duration::Micros(offset));
    op.object = (i % config.num_objects) + 1;
    op.attributes =
        Tuple{static_cast<int64_t>(i % config.num_objects), rng.Uniform(1, 500)};
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace

Status GenerateOrders(const WorkloadConfig& config, ScenarioRelation* scenario) {
  return Apply(PlanOrders(config), scenario);
}

// ---------------------------------------------------------------------------
// Archaeology: globally non-increasing strata, sti-meets chain.
// ---------------------------------------------------------------------------

Result<ScenarioRelation> MakeArchaeology(const WorkloadConfig& config) {
  TS_ASSIGN_OR_RETURN(
      SchemaPtr schema,
      Schema::Make("strata",
                   {AttributeDef{"square", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"artifact_count", ValueType::kInt64,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kInterval, Granularity::Day(),
                   Granularity::Second()));
  SpecializationSet specs;
  specs.AddIntervalOrdering(
      IntervalOrderingSpec(IntervalOrderingKind::kNonIncreasing));
  // Each newly uncovered stratum ends exactly where the previous began:
  // successive transaction time inverse meets.
  specs.AddSuccessive(SuccessiveSpec(AllenRelation::kMeets,
                                     SpecScope::kPerRelation, /*inverse=*/true));
  return OpenScenario(config, schema, std::move(specs));
}

namespace {

std::vector<PlannedInsert> PlanArchaeology(const WorkloadConfig& config) {
  Random rng(config.seed);
  std::vector<PlannedInsert> ops;
  const size_t total = config.num_objects * config.ops_per_object;
  ops.reserve(total);
  // Strata reach back from the epoch, one decade per layer.
  TimePoint layer_end = Epoch();
  const Duration layer = Duration::Days(3650);
  for (size_t i = 0; i < total; ++i) {
    const TimePoint layer_begin = layer_end - layer;
    PlannedInsert op;
    op.tt = Epoch() + Duration::Days(static_cast<int64_t>(i) * 7);  // weekly digs
    op.valid = ValidTime::IntervalUnchecked(layer_begin, layer_end);
    op.object = (i % config.num_objects) + 1;
    op.attributes =
        Tuple{static_cast<int64_t>(i % config.num_objects), rng.Uniform(0, 40)};
    ops.push_back(std::move(op));
    layer_end = layer_begin;
  }
  return ops;
}

}  // namespace

Status GenerateArchaeology(const WorkloadConfig& config,
                           ScenarioRelation* scenario) {
  return Apply(PlanArchaeology(config), scenario);
}

// ---------------------------------------------------------------------------
// General baseline.
// ---------------------------------------------------------------------------

Result<ScenarioRelation> MakeGeneral(const WorkloadConfig& config) {
  TS_ASSIGN_OR_RETURN(SchemaPtr schema, MeasurementSchema("general_events"));
  return OpenScenario(config, schema, SpecializationSet());
}

namespace {

std::vector<PlannedInsert> PlanGeneral(const WorkloadConfig& config,
                                       Duration spread) {
  Random rng(config.seed);
  std::vector<PlannedInsert> ops;
  const size_t total = config.num_objects * config.ops_per_object;
  ops.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    const TimePoint tt = Epoch() + Duration::Minutes(static_cast<int64_t>(i));
    const int64_t offset = rng.Uniform(-spread.micros(), spread.micros());
    PlannedInsert op;
    op.tt = tt;
    op.valid = ValidTime::Event(tt + Duration::Micros(offset));
    op.object = (i % config.num_objects) + 1;
    op.attributes = Tuple{static_cast<int64_t>(i % config.num_objects),
                          rng.Gaussian(0.0, 1.0)};
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace

Status GenerateGeneral(const WorkloadConfig& config, Duration spread,
                       ScenarioRelation* scenario) {
  return Apply(PlanGeneral(config, spread), scenario);
}

// ---------------------------------------------------------------------------
// Unified scenario surface.
// ---------------------------------------------------------------------------

const std::vector<Scenario>& SevenScenarios() {
  static const std::vector<Scenario> kSeven = {
      Scenario::kProcessMonitoring, Scenario::kDegenerateMonitoring,
      Scenario::kPayroll,           Scenario::kAssignments,
      Scenario::kAccounting,        Scenario::kOrders,
      Scenario::kArchaeology,
  };
  return kSeven;
}

const std::vector<Scenario>& AllScenarios() {
  static const std::vector<Scenario> kAll = [] {
    std::vector<Scenario> all = SevenScenarios();
    all.push_back(Scenario::kGeneral);
    return all;
  }();
  return kAll;
}

const char* ScenarioRelationName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kProcessMonitoring: return "plant_temperatures";
    case Scenario::kDegenerateMonitoring: return "reactor_samples";
    case Scenario::kPayroll: return "payroll_deposits";
    case Scenario::kAssignments: return "assignments";
    case Scenario::kAccounting: return "ledger";
    case Scenario::kOrders: return "orders";
    case Scenario::kArchaeology: return "strata";
    case Scenario::kGeneral: return "general_events";
  }
  return "unknown";
}

const char* ScenarioApplication(Scenario scenario) {
  switch (scenario) {
    case Scenario::kProcessMonitoring: return "chemical-plant monitoring";
    case Scenario::kDegenerateMonitoring: return "periodic sampling";
    case Scenario::kPayroll: return "direct-deposit payroll";
    case Scenario::kAssignments: return "employee assignments";
    case Scenario::kAccounting: return "accounting";
    case Scenario::kOrders: return "order entry";
    case Scenario::kArchaeology: return "archaeology";
    case Scenario::kGeneral: return "general baseline";
  }
  return "unknown";
}

Result<std::vector<PlannedInsert>> PlanScenario(Scenario scenario,
                                                const WorkloadConfig& config) {
  Result<std::vector<PlannedInsert>> planned = [&] {
    switch (scenario) {
      case Scenario::kProcessMonitoring:
        return PlanProcessMonitoring(
            config, Duration::Seconds(kMonitoringMinDelaySecs),
            Duration::Seconds(kMonitoringMaxDelaySecs),
            Duration::Seconds(kMonitoringSampleSecs));
      case Scenario::kDegenerateMonitoring:
        return Result<std::vector<PlannedInsert>>(PlanDegenerateMonitoring(
            config, Duration::Seconds(kDegenerateSampleSecs)));
      case Scenario::kPayroll:
        return Result<std::vector<PlannedInsert>>(PlanPayroll(config));
      case Scenario::kAssignments:
        return Result<std::vector<PlannedInsert>>(PlanAssignments(config));
      case Scenario::kAccounting:
        return Result<std::vector<PlannedInsert>>(PlanAccounting(config));
      case Scenario::kOrders:
        return Result<std::vector<PlannedInsert>>(PlanOrders(config));
      case Scenario::kArchaeology:
        return Result<std::vector<PlannedInsert>>(PlanArchaeology(config));
      case Scenario::kGeneral:
        return Result<std::vector<PlannedInsert>>(
            PlanGeneral(config, Duration::Hours(kGeneralSpreadHours)));
    }
    return Result<std::vector<PlannedInsert>>(
        Status::InvalidArgument("unknown scenario"));
  }();
  TS_RETURN_NOT_OK(planned.status());
  std::vector<PlannedInsert> ops = std::move(planned).ValueOrDie();
  SortByTransactionTime(&ops);
  return ops;
}

Result<ScenarioRelation> MakeScenario(Scenario scenario,
                                      const WorkloadConfig& config) {
  switch (scenario) {
    case Scenario::kProcessMonitoring:
      return MakeProcessMonitoring(config,
                                   Duration::Seconds(kMonitoringMinDelaySecs),
                                   Duration::Seconds(kMonitoringMaxDelaySecs),
                                   Duration::Seconds(kMonitoringSampleSecs));
    case Scenario::kDegenerateMonitoring:
      return MakeDegenerateMonitoring(config,
                                      Duration::Seconds(kDegenerateSampleSecs));
    case Scenario::kPayroll: return MakePayroll(config);
    case Scenario::kAssignments: return MakeAssignments(config);
    case Scenario::kAccounting: return MakeAccounting(config);
    case Scenario::kOrders: return MakeOrders(config);
    case Scenario::kArchaeology: return MakeArchaeology(config);
    case Scenario::kGeneral: return MakeGeneral(config);
  }
  return Status::InvalidArgument("unknown scenario");
}

Status GenerateScenario(Scenario scenario, const WorkloadConfig& config,
                        ScenarioRelation* scenario_relation) {
  TS_ASSIGN_OR_RETURN(std::vector<PlannedInsert> ops,
                      PlanScenario(scenario, config));
  return Apply(std::move(ops), scenario_relation);
}

namespace {

// Value literal in the form ParseValueLiteral accepts back. %.17g
// round-trips every double exactly, so the rendered stream is as
// deterministic as the plan it came from.
std::string RenderValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt64:
      return std::to_string(v.AsInt64());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "'" + v.AsString() + "'";
    case ValueType::kBool:
      return v.AsBool() ? "TRUE" : "FALSE";
    case ValueType::kTime:
      return "'" + FormatTimePoint(v.AsTime()) + "'";
    case ValueType::kNull:
      break;
  }
  return "NULL";
}

}  // namespace

Result<std::vector<std::string>> ScenarioStatements(Scenario scenario,
                                                    const WorkloadConfig& config) {
  TS_ASSIGN_OR_RETURN(std::vector<PlannedInsert> ops,
                      PlanScenario(scenario, config));
  const std::string relation = ScenarioRelationName(scenario);
  std::vector<std::string> statements;
  statements.reserve(ops.size());
  for (const PlannedInsert& op : ops) {
    std::string s = "INSERT INTO " + relation + " OBJECT " +
                    std::to_string(op.object) + " VALUES (";
    for (size_t i = 0; i < op.attributes.size(); ++i) {
      if (i > 0) s += ", ";
      s += RenderValue(op.attributes.at(i));
    }
    s += ")";
    if (op.valid.is_event()) {
      s += " VALID AT '" + FormatTimePoint(op.valid.at()) + "'";
    } else {
      s += " VALID FROM '" + FormatTimePoint(op.valid.begin()) + "' TO '" +
           FormatTimePoint(op.valid.end()) + "'";
    }
    statements.push_back(std::move(s));
  }
  return statements;
}

}  // namespace tempspec
