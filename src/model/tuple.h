// Tuples: explicit attribute values of an element, checked against a schema.
#ifndef TEMPSPEC_MODEL_TUPLE_H_
#define TEMPSPEC_MODEL_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "model/schema.h"
#include "model/value.h"
#include "util/result.h"

namespace tempspec {

/// \brief A positional list of attribute values conforming to a Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  /// \brief Type-checks the values against the schema (nulls allowed).
  Status Conforms(const Schema& schema) const;

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// \brief Value of the named attribute under the given schema.
  Result<Value> Get(const Schema& schema, const std::string& name) const;

  size_t ByteSize() const;

  std::string ToString() const;

  friend bool operator==(const Tuple&, const Tuple&) = default;

 private:
  std::vector<Value> values_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_MODEL_TUPLE_H_
