#include "util/failpoint.h"

#include <chrono>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace tempspec {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kShortWrite: return "short-write";
    case FaultKind::kCorruptBit: return "corrupt-bit";
    case FaultKind::kDropSync: return "drop-sync";
    case FaultKind::kTransientError: return "transient-error";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

bool FailpointsCompiledIn() {
#ifdef TEMPSPEC_FAILPOINTS
  return true;
#else
  return false;
#endif
}

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmedSite& armed = sites_[site];
  armed.spec = spec;
  armed.hits = 0;
  armed.transients_left = spec.transient_ops;
  armed.fired = false;
  armed.rng.seed(spec.seed);
  crash_rng_.seed(spec.seed ^ 0x9e3779b97f4a7c15ull);
  armed_sites_.store(static_cast<int>(sites_.size()), std::memory_order_relaxed);
}

void FailpointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
  armed_sites_.store(static_cast<int>(sites_.size()), std::memory_order_relaxed);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
  crashed_.store(false, std::memory_order_relaxed);
}

FaultCounters FailpointRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void FailpointRegistry::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = FaultCounters{};
}

Status FailpointRegistry::EnterCrashedLocked() {
  if (!crashed_.load(std::memory_order_relaxed)) {
    crashed_.store(true, std::memory_order_relaxed);
    ++counters_.crashes;
    TS_FLIGHT(FlightCategory::kFault, FlightCode::kCrashLatch, 0, 0, "");
  }
  return Status::IOError("simulated crash (failpoint)");
}

FailpointRegistry::WriteDecision FailpointRegistry::OnWrite(
    std::string_view site, char* buf, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.evaluated;
  if (crashed_.load(std::memory_order_relaxed)) {
    return {0, Status::IOError("simulated crash (failpoint)")};
  }
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return {len, Status::OK()};
  ArmedSite& armed = it->second;
  const uint64_t hit = armed.hits++;
  if (hit < armed.spec.trigger_at) return {len, Status::OK()};

  switch (armed.spec.kind) {
    case FaultKind::kTransientError:
      if (armed.transients_left > 0) {
        --armed.transients_left;
        ++counters_.injected;
        ++counters_.transient_errors;
        TS_FLIGHT(FlightCategory::kFault, FlightCode::kFaultInject,
                  armed.spec.kind, hit, site);
        return {0, Status::IOError("injected transient EIO at '", site, "'")};
      }
      return {len, Status::OK()};
    case FaultKind::kShortWrite: {
      if (armed.fired) return {0, EnterCrashedLocked()};
      armed.fired = true;
      const size_t cut = len == 0 ? 0 : armed.rng() % len;
      ++counters_.injected;
      ++counters_.short_writes;
      TS_FLIGHT(FlightCategory::kFault, FlightCode::kFaultInject,
                armed.spec.kind, hit, site);
      EnterCrashedLocked();
      return {cut, Status::IOError("simulated crash after short write of ",
                                   cut, "/", len, " bytes at '", site, "'")};
    }
    case FaultKind::kCorruptBit: {
      if (armed.fired) return {0, EnterCrashedLocked()};
      armed.fired = true;
      if (len > 0) {
        const size_t bit = armed.rng() % (len * 8);
        buf[bit / 8] = static_cast<char>(buf[bit / 8] ^ (1u << (bit % 8)));
      }
      ++counters_.injected;
      ++counters_.corrupt_writes;
      TS_FLIGHT(FlightCategory::kFault, FlightCode::kFaultInject,
                armed.spec.kind, hit, site);
      EnterCrashedLocked();
      return {len, Status::IOError("simulated crash after corrupt write at '",
                                   site, "'")};
    }
    case FaultKind::kDropSync:
      // A drop-sync spec on a write site has nothing to drop; proceed.
      return {len, Status::OK()};
    case FaultKind::kCrash:
      ++counters_.injected;
      TS_FLIGHT(FlightCategory::kFault, FlightCode::kFaultInject,
                armed.spec.kind, hit, site);
      return {0, EnterCrashedLocked()};
  }
  return {len, Status::OK()};
}

FailpointRegistry::SyncDecision FailpointRegistry::OnSync(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.evaluated;
  if (crashed_.load(std::memory_order_relaxed)) {
    return {false, Status::IOError("simulated crash (failpoint)")};
  }
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return {false, Status::OK()};
  ArmedSite& armed = it->second;
  const uint64_t hit = armed.hits++;
  if (hit < armed.spec.trigger_at) return {false, Status::OK()};

  switch (armed.spec.kind) {
    case FaultKind::kDropSync:
      ++counters_.injected;
      ++counters_.dropped_syncs;
      TS_FLIGHT(FlightCategory::kFault, FlightCode::kFaultInject,
                armed.spec.kind, hit, site);
      return {true, Status::OK()};
    case FaultKind::kTransientError:
      if (armed.transients_left > 0) {
        --armed.transients_left;
        ++counters_.injected;
        ++counters_.transient_errors;
        TS_FLIGHT(FlightCategory::kFault, FlightCode::kFaultInject,
                  armed.spec.kind, hit, site);
        return {false, Status::IOError("injected transient EIO at '", site, "'")};
      }
      return {false, Status::OK()};
    case FaultKind::kShortWrite:
    case FaultKind::kCorruptBit:
    case FaultKind::kCrash:
      ++counters_.injected;
      TS_FLIGHT(FlightCategory::kFault, FlightCode::kFaultInject,
                armed.spec.kind, hit, site);
      return {false, EnterCrashedLocked()};
  }
  return {false, Status::OK()};
}

Status FailpointRegistry::OnRead(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.evaluated;
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IOError("simulated crash (failpoint)");
  }
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return Status::OK();
  ArmedSite& armed = it->second;
  const uint64_t hit = armed.hits++;
  if (hit < armed.spec.trigger_at) return Status::OK();

  switch (armed.spec.kind) {
    case FaultKind::kTransientError:
      if (armed.transients_left > 0) {
        --armed.transients_left;
        ++counters_.injected;
        ++counters_.transient_errors;
        TS_FLIGHT(FlightCategory::kFault, FlightCode::kFaultInject,
                  armed.spec.kind, hit, site);
        return Status::IOError("injected transient EIO at '", site, "'");
      }
      return Status::OK();
    case FaultKind::kShortWrite:
    case FaultKind::kCorruptBit:
    case FaultKind::kDropSync:
      return Status::OK();
    case FaultKind::kCrash:
      ++counters_.injected;
      TS_FLIGHT(FlightCategory::kFault, FlightCode::kFaultInject,
                armed.spec.kind, hit, site);
      return EnterCrashedLocked();
  }
  return Status::OK();
}

uint64_t FailpointRegistry::CrashCut(uint64_t lo, uint64_t hi) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hi <= lo) return lo;
  return lo + crash_rng_() % (hi - lo + 1);
}

void IoRetryBackoff(int attempt) {
  TS_COUNTER_INC("storage.io.retries");
  std::this_thread::sleep_for(std::chrono::microseconds(50) * (1 << attempt));
}

}  // namespace tempspec
