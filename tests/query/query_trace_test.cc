// Trace-span conformance: every query path of the executor — current,
// rollback, timeslice, bitemporal as-of, and valid-range over both event and
// interval relations — must populate an attached TraceContext with its span
// name, plan strategy, work counters, and stage timings; and query_lang's
// EXPLAIN ANALYZE must surface exactly that span as single-line JSON.
#include <gtest/gtest.h>

#include <string>

#include "catalog/catalog.h"
#include "catalog/query_lang.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "testing.h"
#include "timex/calendar.h"
#include "workload/workloads.h"

namespace tempspec {
namespace {

using testing::Civil;
using testing::T;

/// \brief Common populated-span assertions: the executor filled in the span
/// name, chose and recorded a strategy, counted its work, and timed at least
/// one stage.
void ExpectPopulatedSpan(const TraceContext& trace, const std::string& span,
                         uint64_t min_results) {
  EXPECT_TRUE(trace.started());
  EXPECT_EQ(trace.name(), span);
  EXPECT_FALSE(trace.attr("strategy").empty()) << span;
  EXPECT_GT(trace.counter("elements_examined"), 0u) << span;
  EXPECT_GE(trace.counter("results"), min_results) << span;
  EXPECT_GE(trace.counter("morsels_executed"), 1u) << span;
  EXPECT_FALSE(trace.stages().empty()) << span;
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"span\":\"" + span + "\""), std::string::npos) << json;
}

class QueryTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadConfig config;
    config.num_objects = 8;
    config.ops_per_object = 128;
    ASSERT_OK_AND_ASSIGN(scenario_, MakeGeneral(config));
    ASSERT_OK(GenerateGeneral(config, Duration::Hours(2), &scenario_));
  }

  ScenarioRelation scenario_;
};

TEST_F(QueryTraceTest, EveryEventQueryPathPopulatesItsSpan) {
  const Element& probe = scenario_->elements()[100];
  const TimePoint vt = probe.valid.at();
  const TimePoint tt = probe.tt_begin;

  {
    TraceContext trace;
    QueryExecutor exec(*scenario_.relation,
                       ExecutorOptions{.pool = nullptr, .trace = &trace});
    exec.CurrentSet();
    ExpectPopulatedSpan(trace, "query.current", 1);
  }
  {
    TraceContext trace;
    QueryExecutor exec(*scenario_.relation,
                       ExecutorOptions{.pool = nullptr, .trace = &trace});
    exec.RollbackSet(tt);
    ExpectPopulatedSpan(trace, "query.rollback", 1);
  }
  {
    TraceContext trace;
    QueryExecutor exec(*scenario_.relation,
                       ExecutorOptions{.pool = nullptr, .trace = &trace});
    exec.TimesliceSet(vt);
    ExpectPopulatedSpan(trace, "query.timeslice", 0);
    // The planned timeslice records its plan stage and rationale.
    EXPECT_FALSE(trace.attr("plan").empty());
    EXPECT_EQ(trace.stages()[0].name, "plan");
  }
  {
    TraceContext trace;
    QueryExecutor exec(*scenario_.relation,
                       ExecutorOptions{.pool = nullptr, .trace = &trace});
    exec.ValidRangeSet(vt, vt + Duration::Minutes(10));
    ExpectPopulatedSpan(trace, "query.valid_range", 0);
  }
  {
    TraceContext trace;
    QueryExecutor exec(*scenario_.relation,
                       ExecutorOptions{.pool = nullptr, .trace = &trace});
    exec.TimesliceAsOfSet(vt, tt);
    ExpectPopulatedSpan(trace, "query.timeslice_as_of", 1);
  }
}

TEST_F(QueryTraceTest, ParallelExecutionRecordsMorselsAndCpuTime) {
  const TimePoint vt = scenario_->elements()[57].valid.at();
  TraceContext trace;
  ThreadPool pool(4);
  QueryExecutor exec(*scenario_.relation,
                     ExecutorOptions{.pool = &pool,
                                     .morsel_size = 64,
                                     .parallel_cutoff = 1,
                                     .trace = &trace});
  QueryStats stats;
  // Full scan: the planner's index probe would leave too few candidates to
  // fan out, and this test is about the per-morsel accounting.
  const PlanChoice scan{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
  exec.TimesliceSetWith(scan, vt, &stats);
  ExpectPopulatedSpan(trace, "query.timeslice", 0);
  EXPECT_GT(trace.counter("morsels_executed"), 1u);
  EXPECT_EQ(trace.counter("morsels_executed"), stats.morsels_executed);
  EXPECT_EQ(trace.counter("cpu_micros"), stats.cpu_micros);
  EXPECT_EQ(trace.counter("elements_examined"), stats.elements_examined);
}

TEST_F(QueryTraceTest, IntervalRelationValidRangePopulatesSpan) {
  WorkloadConfig config;
  config.num_objects = 4;
  config.ops_per_object = 64;
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeAssignments(config));
  ASSERT_OK(GenerateAssignments(config, &scenario));
  const Element& probe = scenario->elements()[10];
  TraceContext trace;
  QueryExecutor exec(*scenario.relation,
                     ExecutorOptions{.pool = nullptr, .trace = &trace});
  exec.ValidRangeSet(probe.valid.begin(), probe.valid.end());
  ExpectPopulatedSpan(trace, "query.valid_range", 0);
}

TEST_F(QueryTraceTest, RegistryCountsQueriesWhenCompiledIn) {
  QueryExecutor exec(*scenario_.relation, ExecutorOptions{.pool = nullptr});
  const uint64_t before =
      MetricsRegistry::Instance().Scrape().counter("executor.queries");
  exec.CurrentSet();
  exec.TimesliceSet(scenario_->elements()[5].valid.at());
  const uint64_t after =
      MetricsRegistry::Instance().Scrape().counter("executor.queries");
  if (MetricsCompiledIn()) {
    EXPECT_EQ(after, before + 2);
  } else {
    EXPECT_EQ(after, 0u);
    EXPECT_EQ(before, 0u);
  }
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<LogicalClock>(Civil(1992, 2, 3, 10, 0),
                                            Duration::Minutes(10));
    RelationOptions base;
    base.clock = clock_;
    TemporalRelation* rel =
        catalog_
            .CreateRelationFromDdl(
                "CREATE EVENT RELATION samples (sensor INT64 KEY, v DOUBLE) "
                "GRANULARITY 1s WITH DEGENERATE",
                base)
            .ValueOrDie();
    for (int i = 0; i < 8; ++i) {
      const TimePoint now = clock_->Peek();
      rel->InsertEvent(1, now, Tuple{int64_t{1}, 1.0 * i}).status().Check();
    }
  }

  Catalog catalog_;
  std::shared_ptr<LogicalClock> clock_;
};

TEST_F(ExplainAnalyzeTest, ReturnsTraceJsonAndExecutes) {
  ASSERT_OK_AND_ASSIGN(
      QueryOutput out,
      ExecuteQuery(catalog_,
                   "EXPLAIN ANALYZE TIMESLICE samples AT '1992-02-03 10:20:00'"));
  EXPECT_TRUE(out.analyze);
  EXPECT_FALSE(out.explain_only);
  EXPECT_EQ(out.elements.size(), 1u);  // it executed, not just planned
  ASSERT_FALSE(out.trace_json.empty());
  EXPECT_NE(out.trace_json.find("\"span\":\"query.timeslice\""),
            std::string::npos)
      << out.trace_json;
  EXPECT_NE(out.trace_json.find("\"strategy\":"), std::string::npos);
  EXPECT_NE(out.trace_json.find("\"elements_examined\":"), std::string::npos);
  EXPECT_NE(out.trace_json.find("\"stages\":"), std::string::npos);
  EXPECT_EQ(out.trace_json.find('\n'), std::string::npos) << "single line";
  // EXPLAIN ANALYZE names the scan kernel the executor actually ran (this
  // relation is DEGENERATE, so the degenerate columnar kernel) and the
  // measured scan selectivity pair.
  EXPECT_NE(out.trace_json.find("\"kernel\":\"degenerate_columnar\""),
            std::string::npos)
      << out.trace_json;
  EXPECT_NE(out.trace_json.find("\"rows_scanned\":"), std::string::npos);
  EXPECT_NE(out.trace_json.find("\"rows_matched\":"), std::string::npos);
  // The plan description names the kernel too (also on plain EXPLAIN).
  EXPECT_NE(out.plan_description.find("[kernel degenerate_columnar]"),
            std::string::npos)
      << out.plan_description;
  // The rendered output leads with the span.
  EXPECT_NE(out.ToString().find("trace: {"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, CoversEveryVerb) {
  const struct {
    const char* statement;
    const char* span;
  } cases[] = {
      {"EXPLAIN ANALYZE CURRENT samples", "query.current"},
      {"EXPLAIN ANALYZE ROLLBACK samples TO '1992-02-03 10:20:00'",
       "query.rollback"},
      {"EXPLAIN ANALYZE TIMESLICE samples AT '1992-02-03 10:20:00' "
       "AS OF '1992-02-03 10:30:00'",
       "query.timeslice_as_of"},
      {"EXPLAIN ANALYZE RANGE samples FROM '1992-02-03 10:00:00' "
       "TO '1992-02-03 11:00:00'",
       "query.valid_range"},
  };
  for (const auto& c : cases) {
    ASSERT_OK_AND_ASSIGN(QueryOutput out, ExecuteQuery(catalog_, c.statement));
    EXPECT_TRUE(out.analyze) << c.statement;
    EXPECT_NE(out.trace_json.find(std::string("\"span\":\"") + c.span + "\""),
              std::string::npos)
        << c.statement << " -> " << out.trace_json;
  }
}

TEST_F(ExplainAnalyzeTest, PlainExplainDoesNotExecuteOrTraceWork) {
  ASSERT_OK_AND_ASSIGN(
      QueryOutput out,
      ExecuteQuery(catalog_,
                   "EXPLAIN TIMESLICE samples AT '1992-02-03 10:20:00'"));
  EXPECT_TRUE(out.explain_only);
  EXPECT_FALSE(out.analyze);
  EXPECT_TRUE(out.elements.empty());
  EXPECT_TRUE(out.trace_json.empty());
  EXPECT_FALSE(out.plan_description.empty());
}

}  // namespace
}  // namespace tempspec
