#include "spec/lattice.h"

#include <algorithm>
#include <deque>

#include "allen/allen.h"

namespace tempspec {

void SpecLattice::AddNode(const std::string& name) {
  if (node_set_.insert(name).second) node_order_.push_back(name);
}

Status SpecLattice::AddEdge(const std::string& parent, const std::string& child,
                            EdgeKind kind) {
  AddNode(parent);
  AddNode(child);
  if (IsDescendant(child, parent)) {
    return Status::InvalidArgument("edge ", parent, " -> ", child,
                                   " would create a cycle");
  }
  edges_.push_back(Edge{parent, child, kind});
  children_[parent].push_back(child);
  parents_[child].push_back(parent);
  return Status::OK();
}

bool SpecLattice::HasNode(const std::string& name) const {
  return node_set_.count(name) > 0;
}

std::vector<std::string> SpecLattice::ParentsOf(const std::string& name) const {
  auto it = parents_.find(name);
  return it == parents_.end() ? std::vector<std::string>{} : it->second;
}

std::vector<std::string> SpecLattice::ChildrenOf(const std::string& name) const {
  auto it = children_.find(name);
  return it == children_.end() ? std::vector<std::string>{} : it->second;
}

bool SpecLattice::IsDescendant(const std::string& ancestor,
                               const std::string& descendant) const {
  if (ancestor == descendant) return HasNode(ancestor);
  std::deque<std::string> frontier{ancestor};
  std::set<std::string> seen{ancestor};
  while (!frontier.empty()) {
    const std::string cur = frontier.front();
    frontier.pop_front();
    auto it = children_.find(cur);
    if (it == children_.end()) continue;
    for (const auto& next : it->second) {
      if (next == descendant) return true;
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

std::vector<std::string> SpecLattice::AncestorsOf(const std::string& name) const {
  std::set<std::string> anc;
  std::deque<std::string> frontier{name};
  while (!frontier.empty()) {
    const std::string cur = frontier.front();
    frontier.pop_front();
    for (const auto& p : ParentsOf(cur)) {
      if (anc.insert(p).second) frontier.push_back(p);
    }
  }
  std::vector<std::string> out;
  for (const auto& n : TopologicalOrder()) {
    if (anc.count(n)) out.push_back(n);
  }
  return out;
}

std::vector<std::string> SpecLattice::TopologicalOrder() const {
  std::map<std::string, size_t> indegree;
  for (const auto& n : node_order_) indegree[n] = 0;
  for (const auto& e : edges_) indegree[e.child]++;
  std::deque<std::string> ready;
  for (const auto& n : node_order_) {
    if (indegree[n] == 0) ready.push_back(n);
  }
  std::vector<std::string> out;
  while (!ready.empty()) {
    const std::string cur = ready.front();
    ready.pop_front();
    out.push_back(cur);
    auto it = children_.find(cur);
    if (it == children_.end()) continue;
    for (const auto& next : it->second) {
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  return out;
}

Result<size_t> SpecLattice::Distance(const std::string& from,
                                     const std::string& to) const {
  if (!HasNode(from)) return Status::NotFound("no lattice node '", from, "'");
  if (!HasNode(to)) return Status::NotFound("no lattice node '", to, "'");
  if (from == to) return size_t{0};
  std::deque<std::pair<std::string, size_t>> frontier{{from, 0}};
  std::set<std::string> seen{from};
  while (!frontier.empty()) {
    const auto [cur, depth] = frontier.front();
    frontier.pop_front();
    for (const auto& neighbors : {ParentsOf(cur), ChildrenOf(cur)}) {
      for (const auto& next : neighbors) {
        if (next == to) return depth + 1;
        if (seen.insert(next).second) frontier.emplace_back(next, depth + 1);
      }
    }
  }
  return Status::OutOfRange("no path between '", from, "' and '", to, "'");
}

std::vector<std::string> SpecLattice::Roots() const {
  std::vector<std::string> out;
  for (const auto& n : node_order_) {
    if (ParentsOf(n).empty()) out.push_back(n);
  }
  return out;
}

std::vector<std::string> SpecLattice::Leaves() const {
  std::vector<std::string> out;
  for (const auto& n : node_order_) {
    if (ChildrenOf(n).empty()) out.push_back(n);
  }
  return out;
}

std::string SpecLattice::ToString() const {
  std::string out;
  for (const auto& n : TopologicalOrder()) {
    for (const auto& c : ChildrenOf(n)) {
      out += n + " -> " + c + "\n";
    }
  }
  return out;
}

const SpecLattice& SpecLattice::EventTaxonomy() {
  static const SpecLattice* kLattice = [] {
    auto* l = new SpecLattice();
    auto edge = [&](const char* p, const char* c) {
      l->AddEdge(p, c).Check();
    };
    // Figure 2, top to bottom. Every edge is band containment, verified in
    // tests/spec/lattice_test.cc.
    edge("general", "undetermined");
    edge("undetermined", "retroactively bounded");
    edge("undetermined", "predictively bounded");
    edge("retroactively bounded", "predictive");
    edge("retroactively bounded", "strongly bounded");
    edge("predictively bounded", "strongly bounded");
    edge("predictively bounded", "retroactive");
    edge("predictive", "early predictive");
    edge("predictive", "strongly predictively bounded");
    edge("strongly bounded", "strongly predictively bounded");
    edge("strongly bounded", "strongly retroactively bounded");
    edge("retroactive", "strongly retroactively bounded");
    edge("retroactive", "delayed retroactive");
    edge("early predictive", "early strongly predictively bounded");
    edge("strongly predictively bounded", "early strongly predictively bounded");
    edge("strongly predictively bounded", "degenerate");
    edge("strongly retroactively bounded", "degenerate");
    edge("strongly retroactively bounded",
         "delayed strongly retroactively bounded");
    edge("delayed retroactive", "delayed strongly retroactively bounded");
    return l;
  }();
  return *kLattice;
}

const SpecLattice& SpecLattice::InterEventOrderings() {
  static const SpecLattice* kLattice = [] {
    auto* l = new SpecLattice();
    // Figure 3.
    l->AddEdge("general", "globally non-decreasing").Check();
    l->AddEdge("general", "globally non-increasing").Check();
    l->AddEdge("globally non-decreasing", "globally sequential").Check();
    return l;
  }();
  return *kLattice;
}

const SpecLattice& SpecLattice::InterEventRegularity() {
  static const SpecLattice* kLattice = [] {
    auto* l = new SpecLattice();
    // Figure 4. The paper notes that non-strict tt+vt regularity implies
    // temporal regularity (with the common-divisor unit), while the strict
    // variants do not compose the same way; the lattice records the per-type
    // inheritance edges only.
    auto edge = [&](const char* p, const char* c) { l->AddEdge(p, c).Check(); };
    edge("general", "transaction time event regular");
    edge("general", "valid time event regular");
    edge("transaction time event regular", "strict transaction time event regular");
    edge("valid time event regular", "strict valid time event regular");
    edge("transaction time event regular", "temporal event regular");
    edge("valid time event regular", "temporal event regular");
    edge("temporal event regular", "strict temporal event regular");
    edge("strict transaction time event regular", "strict temporal event regular");
    edge("strict valid time event regular", "strict temporal event regular");
    return l;
  }();
  return *kLattice;
}

const SpecLattice& SpecLattice::InterIntervalTaxonomy() {
  static const SpecLattice* kLattice = [] {
    auto* l = new SpecLattice();
    auto derive = [&](const std::string& p, const std::string& c) {
      l->AddEdge(p, c, EdgeKind::kDerivable).Check();
    };

    // Figure 5, generalized: general at the top; the two orderings; each
    // successive-transaction-time-X hangs under the ordering(s) it provably
    // implies (begins non-decreasing / ends non-increasing); globally
    // sequential under st-before per the figure.
    derive("general", "globally non-decreasing");
    derive("general", "globally non-increasing");

    // Which st-X force begins to be non-decreasing / ends to be
    // non-increasing follows from Allen endpoint constraints; the same sets
    // are re-derived independently in tests/spec/interinterval_test.cc.
    const std::set<AllenRelation> kBeginsNonDecreasing = {
        AllenRelation::kBefore,    AllenRelation::kMeets,
        AllenRelation::kOverlaps,  AllenRelation::kStarts,
        AllenRelation::kEquals,    AllenRelation::kStartedBy,
        AllenRelation::kContains,  AllenRelation::kFinishedBy,
    };
    const std::set<AllenRelation> kEndsNonIncreasing = {
        AllenRelation::kEquals,       AllenRelation::kAfter,
        AllenRelation::kMetBy,        AllenRelation::kOverlappedBy,
        AllenRelation::kStartedBy,    AllenRelation::kContains,
        AllenRelation::kFinishedBy,   AllenRelation::kFinishes,
    };

    for (AllenRelation rel : AllAllenRelations()) {
      std::string name = std::string("st-") + AllenRelationToString(rel);
      if (rel == AllenRelation::kMeets) name = "globally contiguous (st-meets)";
      bool attached = false;
      if (kBeginsNonDecreasing.count(rel)) {
        derive("globally non-decreasing", name);
        attached = true;
      }
      if (kEndsNonIncreasing.count(rel)) {
        derive("globally non-increasing", name);
        attached = true;
      }
      if (!attached) derive("general", name);
    }

    // The figure places globally sequential beneath st-before: with the
    // paper's strict reading of `before`, sequential elements' intervals are
    // strictly separated. With our closed (<=) reading a sequential pair may
    // also `meet`, so the edge is recorded as asserted; the derivable edge to
    // non-decreasing holds under both readings.
    l->AddEdge("st-before", "globally sequential", EdgeKind::kAsserted).Check();
    derive("globally non-decreasing", "globally sequential");
    return l;
  }();
  return *kLattice;
}

}  // namespace tempspec
