#include "query/executor.h"

#include <algorithm>

namespace tempspec {

namespace {

void Count(QueryStats* stats, uint64_t examined, uint64_t probes = 0) {
  if (stats == nullptr) return;
  stats->elements_examined += examined;
  stats->index_probes += probes;
}

}  // namespace

bool QueryExecutor::MatchesRange(const Element& e, TimePoint lo,
                                 TimePoint hi) const {
  if (!e.IsCurrent()) return false;
  if (e.valid.is_event()) {
    const TimePoint vt = e.valid.at();
    return lo <= vt && vt < hi;
  }
  return e.valid.begin() < hi && lo < e.valid.end();
}

std::vector<Element> QueryExecutor::Current(QueryStats* stats) const {
  std::vector<Element> out;
  for (const Element& e : relation_.elements()) {
    Count(stats, 1);
    if (e.IsCurrent()) out.push_back(e);
  }
  if (stats) stats->results += out.size();
  return out;
}

std::vector<Element> QueryExecutor::Rollback(TimePoint tt,
                                             QueryStats* stats) const {
  std::vector<Element> out = relation_.StateAt(tt);
  Count(stats, relation_.snapshots() ? out.size() : relation_.size());
  if (stats) stats->results += out.size();
  return out;
}

std::vector<Element> QueryExecutor::Timeslice(TimePoint vt,
                                              QueryStats* stats) const {
  return TimesliceWith(optimizer_.PlanTimeslice(vt), vt, stats);
}

std::vector<Element> QueryExecutor::TimesliceWith(const PlanChoice& plan,
                                                  TimePoint vt,
                                                  QueryStats* stats) const {
  return ValidRangeWith(plan, vt, TimePoint::FromMicros(vt.micros() + 1), stats);
}

std::vector<Element> QueryExecutor::ValidRange(TimePoint lo, TimePoint hi,
                                               QueryStats* stats) const {
  return ValidRangeWith(optimizer_.PlanValidRange(lo, hi), lo, hi, stats);
}

std::vector<Element> QueryExecutor::ValidRangeWith(const PlanChoice& plan,
                                                   TimePoint lo, TimePoint hi,
                                                   QueryStats* stats) const {
  std::vector<Element> out;
  const auto elements = relation_.elements();

  switch (plan.strategy) {
    case ExecutionStrategy::kFullScan: {
      for (const Element& e : elements) {
        Count(stats, 1);
        if (MatchesRange(e, lo, hi)) out.push_back(e);
      }
      break;
    }

    case ExecutionStrategy::kValidIndex: {
      std::vector<uint64_t> positions =
          relation_.valid_index().Overlapping(lo, hi);
      Count(stats, positions.size(), 1);
      std::sort(positions.begin(), positions.end());
      for (uint64_t pos : positions) {
        const Element& e = elements[pos];
        if (MatchesRange(e, lo, hi)) out.push_back(e);
      }
      break;
    }

    case ExecutionStrategy::kRollbackEquivalence:
    case ExecutionStrategy::kTransactionWindow: {
      // The declared specialization guarantees every match was stored inside
      // the transaction-time window; scan only those positions via the
      // append-only transaction index.
      const AppendOnlyIndex& idx = relation_.transaction_index();
      const size_t begin = idx.LowerBound(plan.tt_window.begin());
      const size_t end = plan.tt_window.end().IsMax()
                             ? idx.size()
                             : idx.LowerBound(plan.tt_window.end());
      Count(stats, end > begin ? end - begin : 0, 1);
      for (size_t i = begin; i < end; ++i) {
        const Element& e = elements[idx.ValueAt(i)];
        if (MatchesRange(e, lo, hi)) out.push_back(e);
      }
      break;
    }

    case ExecutionStrategy::kMonotoneBinarySearch: {
      // Valid times are non-decreasing in insertion order: binary search the
      // element array directly.
      auto vt_of = [&](size_t i) { return elements[i].valid.at(); };
      size_t lo_pos = 0, hi_pos = elements.size();
      {
        size_t a = 0, b = elements.size();
        while (a < b) {
          const size_t mid = a + (b - a) / 2;
          if (vt_of(mid) < lo) {
            a = mid + 1;
          } else {
            b = mid;
          }
        }
        lo_pos = a;
      }
      {
        size_t a = lo_pos, b = elements.size();
        while (a < b) {
          const size_t mid = a + (b - a) / 2;
          if (vt_of(mid) < hi) {
            a = mid + 1;
          } else {
            b = mid;
          }
        }
        hi_pos = a;
      }
      Count(stats, hi_pos - lo_pos, 1);
      for (size_t i = lo_pos; i < hi_pos; ++i) {
        if (MatchesRange(elements[i], lo, hi)) out.push_back(elements[i]);
      }
      break;
    }
  }

  if (stats) stats->results += out.size();
  return out;
}

std::vector<Element> QueryExecutor::TimesliceAsOf(TimePoint vt, TimePoint tt,
                                                  QueryStats* stats) const {
  std::vector<Element> out;
  for (const Element& e : relation_.elements()) {
    Count(stats, 1);
    if (!e.ExistsAt(tt)) continue;
    if (e.valid.ValidAt(vt)) out.push_back(e);
  }
  if (stats) stats->results += out.size();
  return out;
}

}  // namespace tempspec
