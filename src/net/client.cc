#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <strings.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <random>

#include "net/socket.h"

namespace tempspec {

namespace {

// Opens a connected blocking TCP socket with the receive timeout applied, or
// -1. Shared by Connect and the short-lived Get connection.
int DialTcp(const std::string& host, uint16_t port, int recv_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  SetNoDelay(fd);
  return fd;
}

bool StartsWith(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

WireOutcome ClassifyHttpCode(int code) {
  if (code == 200) return WireOutcome::kOk;
  if (code == 503) return WireOutcome::kRejected;
  if (code == 504) return WireOutcome::kDeadline;
  if (code >= 400 && code < 500) return WireOutcome::kClientError;
  return WireOutcome::kServerError;
}

// kError payloads start with the canonical status-code name
// (StatusCodeToString) followed by ": <message>".
WireOutcome ClassifyErrorPayload(const std::string& payload) {
  if (StartsWith(payload, "Deadline exceeded")) return WireOutcome::kDeadline;
  if (StartsWith(payload, "Unavailable")) return WireOutcome::kRejected;
  if (StartsWith(payload, "Invalid argument") ||
      StartsWith(payload, "Constraint violation") ||
      StartsWith(payload, "Not found") ||
      StartsWith(payload, "Already exists") ||
      StartsWith(payload, "Out of range")) {
    return WireOutcome::kClientError;
  }
  return WireOutcome::kServerError;
}

}  // namespace

const char* WireOutcomeToString(WireOutcome outcome) {
  switch (outcome) {
    case WireOutcome::kOk:
      return "ok";
    case WireOutcome::kRejected:
      return "rejected";
    case WireOutcome::kDeadline:
      return "deadline";
    case WireOutcome::kClientError:
      return "client_error";
    case WireOutcome::kServerError:
      return "server_error";
    case WireOutcome::kTransport:
      return "transport";
  }
  return "unknown";
}

QueryClient::~QueryClient() { Close(); }

Status QueryClient::Connect(uint16_t port) {
  Close();
  if (port != 0) options_.port = port;
  if (options_.port == 0) {
    return Status::InvalidArgument("client: no port to connect to");
  }
  fd_ = DialTcp(options_.host, options_.port, options_.recv_timeout_ms);
  if (fd_ < 0) {
    return Status::Unavailable("client: connect to " + options_.host + ":" +
                               std::to_string(options_.port) + " failed: " +
                               std::strerror(errno));
  }
  return Status::OK();
}

void QueryClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffered_.clear();
  decoder_ = FrameDecoder();
}

bool QueryClient::SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool QueryClient::Fill(int fd, std::string* buffer) {
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer->append(chunk, static_cast<size_t>(n));
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer closed, receive timeout, or hard error
  }
}

bool QueryClient::ReadHttpResponse(int fd, std::string* buffer, int* code,
                                   std::string* body) {
  size_t header_end;
  while ((header_end = buffer->find("\r\n\r\n")) == std::string::npos) {
    if (!Fill(fd, buffer)) return false;
  }
  const std::string head = buffer->substr(0, header_end);
  if (std::sscanf(head.c_str(), "HTTP/1.1 %d", code) != 1 &&
      std::sscanf(head.c_str(), "HTTP/1.0 %d", code) != 1) {
    return false;
  }
  size_t content_length = 0;
  // Case-insensitive scan for the Content-Length header line.
  size_t line_start = 0;
  while (line_start < head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(line_start, line_end - line_start);
    const char* kName = "content-length:";
    if (line.size() > std::strlen(kName) &&
        strncasecmp(line.c_str(), kName, std::strlen(kName)) == 0) {
      content_length = static_cast<size_t>(
          std::strtoull(line.c_str() + std::strlen(kName), nullptr, 10));
    }
    line_start = line_end + 2;
  }
  const size_t body_start = header_end + 4;
  while (buffer->size() < body_start + content_length) {
    if (!Fill(fd, buffer)) return false;
  }
  *body = buffer->substr(body_start, content_length);
  buffer->erase(0, body_start + content_length);
  return true;
}

void QueryClient::NextTrace() {
  // Uniqueness matters (the ids join client and server observations), wire
  // determinism does not: seed per thread from the OS entropy pool.
  thread_local std::mt19937_64 rng(
      std::mt19937_64(std::random_device{}()));
  trace_hi_ = rng();
  trace_lo_ = rng();
  if (trace_hi_ == 0 && trace_lo_ == 0) trace_lo_ = 1;
  span_id_ = rng();
  if (span_id_ == 0) span_id_ = 1;
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(trace_hi_),
                static_cast<unsigned long long>(trace_lo_));
  last_trace_id_.assign(buf, 32);
}

WireReply QueryClient::Execute(const std::string& statement,
                               uint64_t deadline_ms) {
  if (fd_ < 0) {
    const Status status = Connect();
    if (!status.ok()) {
      return WireReply{WireOutcome::kTransport, 0, status.ToString()};
    }
  }
  if (options_.propagate_trace) NextTrace();
  return options_.protocol == ClientProtocol::kHttp
             ? ExecuteHttp(statement, deadline_ms)
             : ExecuteFrame(statement, deadline_ms);
}

WireReply QueryClient::ExecuteHttp(const std::string& statement,
                                   uint64_t deadline_ms) {
  std::string request = "POST /query HTTP/1.1\r\nHost: " + options_.host +
                        "\r\nContent-Type: text/plain\r\nContent-Length: " +
                        std::to_string(statement.size()) + "\r\n";
  if (deadline_ms > 0) {
    request +=
        "X-Tempspec-Deadline-Ms: " + std::to_string(deadline_ms) + "\r\n";
  }
  if (options_.propagate_trace) {
    char span_hex[17];
    std::snprintf(span_hex, sizeof(span_hex), "%016llx",
                  static_cast<unsigned long long>(span_id_));
    request += "X-Tempspec-Trace: " + last_trace_id_ + "-" +
               std::string(span_hex) + "\r\n";
  }
  request += "\r\n" + statement;
  WireReply reply;
  if (!SendAll(fd_, request)) {
    Close();
    reply.body = "send failed";
    return reply;
  }
  int code = 0;
  std::string body;
  if (!ReadHttpResponse(fd_, &buffered_, &code, &body)) {
    Close();
    reply.body = "read failed";
    return reply;
  }
  reply.outcome = ClassifyHttpCode(code);
  reply.http_code = code;
  reply.body = std::move(body);
  return reply;
}

WireReply QueryClient::ExecuteFrame(const std::string& statement,
                                    uint64_t deadline_ms) {
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.payload = statement;
  if (deadline_ms > 0) {
    frame.flags |= kFrameFlagDeadline;
    frame.deadline_millis = deadline_ms;
  }
  if (options_.propagate_trace) {
    frame.flags |= kFrameFlagTrace;
    frame.trace_hi = trace_hi_;
    frame.trace_lo = trace_lo_;
    frame.span_id = span_id_;
  }
  std::string wire;
  EncodeFrame(frame, &wire);
  WireReply reply;
  if (!SendAll(fd_, wire)) {
    Close();
    reply.body = "send failed";
    return reply;
  }
  while (true) {
    Result<std::optional<Frame>> next = decoder_.Next();
    if (!next.ok()) {
      Close();
      reply.body = "frame decode failed: " + next.status().ToString();
      return reply;
    }
    if (next.ValueOrDie().has_value()) {
      const Frame& got = *next.ValueOrDie();
      switch (got.type) {
        case FrameType::kResult:
          reply.outcome = WireOutcome::kOk;
          break;
        case FrameType::kRejected:
          reply.outcome = WireOutcome::kRejected;
          break;
        case FrameType::kError:
          reply.outcome = ClassifyErrorPayload(got.payload);
          break;
        default:  // kPong etc. — not a valid reply to kQuery
          reply.outcome = WireOutcome::kServerError;
          break;
      }
      reply.body = got.payload;
      return reply;
    }
    std::string bytes;
    if (!Fill(fd_, &bytes)) {
      Close();
      reply.body = "read failed";
      return reply;
    }
    decoder_.Feed(bytes.data(), bytes.size());
  }
}

WireReply QueryClient::ExecuteRetrying(const std::string& statement,
                                       uint64_t deadline_ms, int max_attempts,
                                       int* rejections) {
  WireReply reply;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    reply = Execute(statement, deadline_ms);
    if (reply.outcome != WireOutcome::kRejected) return reply;
    if (rejections != nullptr) ++*rejections;
    // Brief backoff: admission pressure clears in microseconds-to-
    // milliseconds; sleeping 1ms keeps retry storms off the accept queue.
    timespec nap{0, 1 * 1000 * 1000};
    ::nanosleep(&nap, nullptr);
  }
  return reply;
}

Result<std::string> QueryClient::Get(const std::string& target) {
  const int fd = DialTcp(options_.host, options_.port, options_.recv_timeout_ms);
  if (fd < 0) {
    return Status::Unavailable("client: GET connect failed: " +
                               std::string(std::strerror(errno)));
  }
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " +
                              options_.host + "\r\nConnection: close\r\n\r\n";
  std::string buffer;
  int code = 0;
  std::string body;
  const bool ok = SendAll(fd, request) &&
                  ReadHttpResponse(fd, &buffer, &code, &body);
  ::close(fd);
  if (!ok) return Status::Unavailable("client: GET " + target + " failed");
  if (code != 200) {
    return Status::NotFound("client: GET " + target + " -> " +
                            std::to_string(code));
  }
  return body;
}

}  // namespace tempspec
