// E5 — Determined relations need not store valid time-stamps at all
// (Section 3.1): vt = m(e) is recomputable from the transaction stamp.
//
// Measures (a) bytes per element with stored vs computed valid stamps, and
// (b) the read-side cost of recomputing the stamp through each mapping
// family (offset, truncate, next-phase).
#include "bench_common.h"
#include "storage/serde.h"

using namespace tempspec;
using tempspec::bench::Require;

namespace {

std::vector<Element> MakeElements(int64_t n, const MappingFunction& mapping) {
  std::vector<Element> out;
  out.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    Element e;
    e.element_surrogate = i + 1;
    e.object_surrogate = i % 16 + 1;
    e.tt_begin = TimePoint::FromSeconds(1000 + i * 60);
    e.valid = ValidTime::Event(mapping.Apply(e));
    e.attributes = Tuple{static_cast<int64_t>(i % 16), 20.0};
    out.push_back(std::move(e));
  }
  return out;
}

// Element encoding without the (recomputable) valid stamp: what a
// determined-aware storage layout would write.
std::string EncodeWithoutValid(const Element& e) {
  std::string out;
  Encoder enc(&out);
  enc.PutU64(e.element_surrogate);
  enc.PutU64(e.object_surrogate);
  enc.PutTimePoint(e.tt_begin);
  enc.PutTimePoint(e.tt_end);
  EncodeTuple(e.attributes, &enc);
  return out;
}

void BM_Storage_StoredStamps(benchmark::State& state) {
  const auto elements =
      MakeElements(state.range(0), MappingFunction::Offset(Duration::Seconds(-30)));
  size_t bytes = 0;
  for (auto _ : state) {
    bytes = 0;
    for (const Element& e : elements) {
      std::string buf;
      Encoder enc(&buf);
      EncodeElement(e, &enc);
      bytes += buf.size();
      benchmark::DoNotOptimize(buf);
    }
  }
  state.counters["bytes_per_element"] =
      benchmark::Counter(static_cast<double>(bytes) / elements.size());
}

void BM_Storage_ComputedStamps(benchmark::State& state) {
  const auto elements =
      MakeElements(state.range(0), MappingFunction::Offset(Duration::Seconds(-30)));
  size_t bytes = 0;
  for (auto _ : state) {
    bytes = 0;
    for (const Element& e : elements) {
      std::string buf = EncodeWithoutValid(e);
      bytes += buf.size();
      benchmark::DoNotOptimize(buf);
    }
  }
  state.counters["bytes_per_element"] =
      benchmark::Counter(static_cast<double>(bytes) / elements.size());
}

void RunMappingReads(benchmark::State& state, MappingFunction mapping) {
  const auto elements = MakeElements(state.range(0), mapping);
  for (auto _ : state) {
    int64_t acc = 0;
    for (const Element& e : elements) {
      acc += mapping.Apply(e).micros();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * elements.size());
}

void BM_Recompute_OffsetMapping(benchmark::State& state) {
  RunMappingReads(state, MappingFunction::Offset(Duration::Seconds(-30)));
}
void BM_Recompute_TruncateMapping(benchmark::State& state) {
  RunMappingReads(state, MappingFunction::TruncateThenOffset(Granularity::Hour()));
}
void BM_Recompute_NextPhaseMapping(benchmark::State& state) {
  RunMappingReads(state,
                  MappingFunction::NextPhase(Granularity::Day(), Duration::Hours(8)));
}
void BM_Recompute_CalendricOffsetMapping(benchmark::State& state) {
  RunMappingReads(state, MappingFunction::Offset(Duration::Months(-1)));
}

}  // namespace

BENCHMARK(BM_Storage_StoredStamps)->Arg(8192);
BENCHMARK(BM_Storage_ComputedStamps)->Arg(8192);
BENCHMARK(BM_Recompute_OffsetMapping)->Arg(8192);
BENCHMARK(BM_Recompute_TruncateMapping)->Arg(8192);
BENCHMARK(BM_Recompute_NextPhaseMapping)->Arg(8192);
BENCHMARK(BM_Recompute_CalendricOffsetMapping)->Arg(8192);

TEMPSPEC_BENCH_MAIN("e5_determined");
