// Mapping functions for determined temporal relations (Section 3.1).
//
// "A mapping function m for a relation R takes as argument an element e of a
// relation and returns a valid time-stamp, computed using any of the
// attributes of e, excluding vt_e, but including the surrogate and
// transaction time-stamp attributes. A temporal relation R is determined if
// it has a mapping function that correctly computes the valid time-stamps of
// its elements."
//
// The paper's three sample functions are all expressible here:
//   m1(e) = tt_b + Δt                  — "valid after a fixed delay"
//   m2(e) = ⌊tt_b⌋_hrs − Δt?           — "valid from the most recent hour"
//   m3(e) = ⌈tt_b⌉_day + 8 hrs         — "valid from the next closest 8:00 a.m."
#ifndef TEMPSPEC_SPEC_MAPPING_H_
#define TEMPSPEC_SPEC_MAPPING_H_

#include <functional>
#include <memory>
#include <string>

#include "model/element.h"
#include "timex/duration.h"
#include "timex/granularity.h"
#include "timex/time_point.h"

namespace tempspec {

/// \brief Which transaction time of the element the mapping reads.
enum class TransactionAnchor : uint8_t {
  kInsertion,  // tt_b — the default throughout the paper's examples
  kDeletion,   // tt_d
};

const char* TransactionAnchorToString(TransactionAnchor anchor);

/// \brief Reads the anchored transaction time of an element.
inline TimePoint AnchoredTransactionTime(const Element& e, TransactionAnchor a) {
  return a == TransactionAnchor::kInsertion ? e.tt_begin : e.tt_end;
}

/// \brief A declarative valid-time mapping function. Built from a pipeline of
/// primitive steps applied to the anchored transaction time; a custom
/// element-level function hook covers mappings over other attributes or the
/// surrogate.
class MappingFunction {
 public:
  /// \brief m(e) = tt + Δt ("valid after a fixed delay"; Δt may be negative
  /// or calendric).
  static MappingFunction Offset(Duration delta);

  /// \brief m(e) = ⌊tt⌋_g + Δt ("valid from the most recent <granule>").
  static MappingFunction TruncateThenOffset(Granularity g,
                                            Duration delta = Duration::Zero());

  /// \brief m(e) = start of the next granule boundary at phase `phase` at or
  /// after tt ("valid from the next closest 8:00 a.m." = NextPhase(Day, 8h)).
  /// When `strictly_after` is set, a tt already on the boundary maps to the
  /// following one.
  static MappingFunction NextPhase(Granularity g, Duration phase,
                                   bool strictly_after = false);

  /// \brief Arbitrary user mapping over the whole element (minus its valid
  /// time). `name` is used for display.
  static MappingFunction Custom(std::string name,
                                std::function<TimePoint(const Element&)> fn);

  /// \brief Computes the valid time-stamp for an element.
  TimePoint Apply(const Element& e) const;

  /// \brief Convenience for event workloads: applies to a bare transaction
  /// time (only valid for non-custom mappings).
  TimePoint ApplyToTransactionTime(TimePoint tt) const;

  TransactionAnchor anchor() const { return anchor_; }
  MappingFunction WithAnchor(TransactionAnchor anchor) const {
    MappingFunction m = *this;
    m.anchor_ = anchor;
    return m;
  }

  std::string ToString() const;

  /// \brief Canonical DDL spelling ("DETERMINED BY TT PLUS 30s", "DETERMINED
  /// BY FLOOR(1h) PLUS 5min", "DETERMINED BY NEXT(day, 8h)"); empty for
  /// custom mappings, which have no textual form.
  std::string ToDdlClause() const;

 private:
  enum class Kind { kOffset, kTruncate, kNextPhase, kCustom };

  MappingFunction() = default;

  Kind kind_ = Kind::kOffset;
  TransactionAnchor anchor_ = TransactionAnchor::kInsertion;
  Duration delta_;
  Granularity granularity_;
  Duration phase_;
  bool strictly_after_ = false;
  std::string name_;
  std::function<TimePoint(const Element&)> custom_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_SPEC_MAPPING_H_
