// E3 — "In globally sequential relations ... valid time can be approximated
// with transaction time, yielding an append-only relation that can support
// historical (as well as transaction time) queries" (Section 3.2).
//
// Historical (valid-time) queries on a sequential relation: the declared
// ordering makes the element array itself sorted by valid time, so binary
// search replaces the scan / index probe. Sweeps relation size.
#include "bench_common.h"

using namespace tempspec;
using tempspec::bench::FullScanPlan;
using tempspec::bench::Require;

namespace {

// A sequential relation: every event occurs and is stored before the next
// occurs or is stored (interleaved tt/vt frontier).
ScenarioRelation MakeSequential(int64_t total) {
  ScenarioRelation out;
  out.clock = std::make_shared<LogicalClock>(TimePoint::FromSeconds(0),
                                             Duration::Seconds(1));
  RelationOptions options;
  options.schema =
      Require(Schema::Make("audit_log",
                           {AttributeDef{"actor", ValueType::kInt64,
                                         AttributeRole::kTimeInvariantKey}},
                           ValidTimeKind::kEvent, Granularity::Second()));
  options.specializations.AddOrdering(OrderingSpec(OrderingKind::kSequential));
  options.clock = out.clock;
  out.relation = Require(TemporalRelation::Open(std::move(options)));
  Random rng(7);
  int64_t frontier = 0;
  for (int64_t i = 0; i < total; ++i) {
    const int64_t vt = frontier + rng.Uniform(1, 3);
    const int64_t tt = vt + rng.Uniform(0, 2);  // stored right after occurring
    frontier = tt;
    out.clock->SetTo(TimePoint::FromSeconds(tt));
    Require(out.relation
                ->InsertEvent(i % 8, TimePoint::FromSeconds(vt),
                              Tuple{int64_t{i % 8}})
                .status());
  }
  return out;
}

void RunHistoricalQueries(benchmark::State& state, bool use_specialization) {
  ScenarioRelation scenario = MakeSequential(state.range(0));
  QueryExecutor exec(*scenario.relation);
  // Valid-time range queries of fixed 64-second width.
  std::vector<TimePoint> probes;
  for (size_t i = 5; i < scenario->size(); i += 71) {
    probes.push_back(scenario->elements()[i].valid.at());
  }
  QueryStats stats;
  size_t probe = 0;
  for (auto _ : state) {
    const TimePoint lo = probes[probe++ % probes.size()];
    const TimePoint hi = lo + Duration::Seconds(64);
    auto result = use_specialization
                      ? exec.ValidRange(lo, hi, &stats)
                      : exec.ValidRangeWith(FullScanPlan(), lo, hi, &stats);
    benchmark::DoNotOptimize(result);
  }
  state.counters["elements_examined_per_query"] = benchmark::Counter(
      static_cast<double>(stats.elements_examined) / state.iterations());
}

void BM_Historical_Sequential_FullScan(benchmark::State& state) {
  RunHistoricalQueries(state, /*use_specialization=*/false);
}
void BM_Historical_Sequential_BinarySearch(benchmark::State& state) {
  RunHistoricalQueries(state, /*use_specialization=*/true);
}

}  // namespace

BENCHMARK(BM_Historical_Sequential_FullScan)->Range(1024, 65536);
BENCHMARK(BM_Historical_Sequential_BinarySearch)->Range(1024, 65536);

TEMPSPEC_BENCH_MAIN("e3_sequential");
