#include "spec/inference.h"

#include <gtest/gtest.h>

#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::Civil;
using testing::MakeEventElement;
using testing::MakeIntervalElement;
using testing::T;

const Granularity kSec = Granularity::Second();

std::vector<Element> EventElements(
    std::initializer_list<std::pair<int64_t, int64_t>> tt_vt) {
  std::vector<Element> out;
  ElementSurrogate id = 1;
  for (const auto& [tt, vt] : tt_vt) {
    out.push_back(MakeEventElement(T(tt), T(vt), id, (id % 3) + 1));
    ++id;
  }
  return out;
}

TEST(InferenceTest, EmptyExtension) {
  RelationProfile p = InferProfile({}, ValidTimeKind::kEvent, kSec);
  EXPECT_EQ(p.element_count, 0u);
  EXPECT_FALSE(p.event.applicable);
}

TEST(InferenceTest, ClassifiesRetroactiveExtension) {
  auto elements = EventElements({{100, 60}, {200, 190}, {300, 240}});
  RelationProfile p = InferProfile(elements, ValidTimeKind::kEvent, kSec);
  EXPECT_EQ(p.event.classified, EventSpecKind::kDelayedStronglyRetroactivelyBounded);
  EXPECT_EQ(p.event.min_offset_us, -60 * kMicrosPerSecond);
  EXPECT_EQ(p.event.max_offset_us, -10 * kMicrosPerSecond);
  // The inferred band admits every element.
  for (const Element& e : elements) {
    EXPECT_TRUE(p.event.tightest_band.Contains(e.tt_begin, e.valid.at()));
  }
}

TEST(InferenceTest, ClassifiesDegenerateWithinGranularity) {
  std::vector<Element> elements = {
      MakeEventElement(T(10) + Duration::Micros(100), T(10) + Duration::Micros(500), 1),
      MakeEventElement(T(20), T(20) + Duration::Micros(999), 2),
  };
  RelationProfile p = InferProfile(elements, ValidTimeKind::kEvent, kSec);
  EXPECT_TRUE(p.event.degenerate);
  EXPECT_EQ(p.event.classified, EventSpecKind::kDegenerate);
}

TEST(InferenceTest, OrderingDetection) {
  auto nd = EventElements({{1, 10}, {2, 10}, {3, 20}});
  RelationProfile p = InferProfile(nd, ValidTimeKind::kEvent, kSec);
  EXPECT_TRUE(p.global_ordering.non_decreasing);
  EXPECT_FALSE(p.global_ordering.non_increasing);

  auto seq = EventElements({{2, 1}, {4, 3}, {6, 5}});
  p = InferProfile(seq, ValidTimeKind::kEvent, kSec);
  EXPECT_TRUE(p.global_ordering.sequential);
  EXPECT_TRUE(p.global_ordering.non_decreasing);
}

TEST(InferenceTest, PerSurrogateTighterThanGlobal) {
  // Interleaved objects, ordered within each object only.
  std::vector<Element> elements = {
      MakeEventElement(T(1), T(100), 1, 1), MakeEventElement(T(2), T(10), 2, 2),
      MakeEventElement(T(3), T(200), 3, 1), MakeEventElement(T(4), T(20), 4, 2),
  };
  RelationProfile p = InferProfile(elements, ValidTimeKind::kEvent, kSec);
  EXPECT_FALSE(p.global_ordering.non_decreasing);
  EXPECT_TRUE(p.per_surrogate_ordering.non_decreasing);
}

TEST(InferenceTest, RegularityUnits) {
  // tts multiples of 20s, vts multiples of 30s; lockstep offset varies.
  auto elements = EventElements({{0, 0}, {20, 30}, {60, 90}, {80, 120}});
  RelationProfile p = InferProfile(elements, ValidTimeKind::kEvent, kSec);
  EXPECT_EQ(p.regularity.tt_unit_us, 20 * kMicrosPerSecond);
  EXPECT_EQ(p.regularity.vt_unit_us, 30 * kMicrosPerSecond);
  EXPECT_FALSE(p.regularity.temporal_regular);  // offsets differ

  auto lockstep = EventElements({{0, 5}, {20, 25}, {60, 65}});
  p = InferProfile(lockstep, ValidTimeKind::kEvent, kSec);
  EXPECT_TRUE(p.regularity.temporal_regular);
  EXPECT_EQ(p.regularity.temporal_unit_us, 20 * kMicrosPerSecond);
}

TEST(InferenceTest, StrictRegularity) {
  auto strict = EventElements({{0, 1}, {10, 11}, {20, 21}});
  RelationProfile p = InferProfile(strict, ValidTimeKind::kEvent, kSec);
  EXPECT_TRUE(p.regularity.tt_strict);
  EXPECT_TRUE(p.regularity.vt_strict);
  EXPECT_TRUE(p.regularity.temporal_strict);

  auto gapped = EventElements({{0, 1}, {10, 11}, {30, 31}});
  p = InferProfile(gapped, ValidTimeKind::kEvent, kSec);
  EXPECT_FALSE(p.regularity.tt_strict);
  EXPECT_TRUE(p.regularity.temporal_regular);
  EXPECT_FALSE(p.regularity.temporal_strict);
}

TEST(InferenceTest, FitsConstantOffsetMapping) {
  auto elements = EventElements({{100, 110}, {250, 260}, {400, 410}});
  RelationProfile p = InferProfile(elements, ValidTimeKind::kEvent, kSec);
  ASSERT_TRUE(p.event.determined_by.has_value());
  EXPECT_EQ(p.event.determined_by->ApplyToTransactionTime(T(500)), T(510));
}

TEST(InferenceTest, FitsTruncationMapping) {
  // vt = start of the hour containing tt.
  std::vector<Element> elements = {
      MakeEventElement(Civil(1992, 2, 3, 10, 42), Civil(1992, 2, 3, 10, 0), 1),
      MakeEventElement(Civil(1992, 2, 3, 11, 7), Civil(1992, 2, 3, 11, 0), 2),
      MakeEventElement(Civil(1992, 2, 3, 13, 59), Civil(1992, 2, 3, 13, 0), 3),
  };
  RelationProfile p = InferProfile(elements, ValidTimeKind::kEvent, kSec);
  ASSERT_TRUE(p.event.determined_by.has_value());
  EXPECT_EQ(
      p.event.determined_by->ApplyToTransactionTime(Civil(1992, 2, 3, 20, 30)),
      Civil(1992, 2, 3, 20, 0));
}

TEST(InferenceTest, NoMappingForNoisyData) {
  Random rng(5);
  std::vector<Element> elements;
  for (int i = 0; i < 20; ++i) {
    elements.push_back(MakeEventElement(
        T(i * 100), T(i * 100 + rng.Uniform(-50, 50)), i + 1));
  }
  RelationProfile p = InferProfile(elements, ValidTimeKind::kEvent, kSec);
  EXPECT_FALSE(p.event.determined_by.has_value());
}

TEST(InferenceTest, IntervalProfile) {
  std::vector<Element> elements = {
      MakeIntervalElement(T(95), T(100), T(200), 1, 1),
      MakeIntervalElement(T(195), T(200), T(300), 2, 1),
      MakeIntervalElement(T(295), T(300), T(400), 3, 1),
  };
  RelationProfile p = InferProfile(elements, ValidTimeKind::kInterval, kSec);
  EXPECT_TRUE(p.interval.applicable);
  EXPECT_EQ(p.interval.valid_duration_unit_us, 100 * kMicrosPerSecond);
  EXPECT_TRUE(p.interval.valid_strict);
  EXPECT_TRUE(p.interval.contiguous);
  EXPECT_EQ(p.interval.successive.count(AllenRelation::kMeets), 1u);
  // Begin-anchored event profile: stored exactly 5s before each interval
  // starts, so the tightest band is the zero-width [5s, 5s].
  EXPECT_EQ(p.event.classified,
            EventSpecKind::kEarlyStronglyPredictivelyBounded);
  EXPECT_TRUE(p.global_ordering.non_decreasing);
  // Not sequential: each interval is still ongoing when the next is stored.
  EXPECT_FALSE(p.global_ordering.sequential);
}

TEST(InferenceTest, MixedSuccessiveRelationsYieldEmptySet) {
  std::vector<Element> elements = {
      MakeIntervalElement(T(1), T(0), T(10), 1),
      MakeIntervalElement(T(2), T(10), T(20), 2),  // meets
      MakeIntervalElement(T(3), T(15), T(30), 3),  // overlapped... not meets
  };
  RelationProfile p = InferProfile(elements, ValidTimeKind::kInterval, kSec);
  EXPECT_TRUE(p.interval.successive.empty());
  EXPECT_FALSE(p.interval.contiguous);
}

TEST(InferenceTest, InferUnitGcd) {
  std::vector<TimePoint> stamps = {T(0), T(20), T(50)};
  EXPECT_EQ(InferUnit(stamps), 10 * kMicrosPerSecond);
  std::vector<TimePoint> one = {T(7)};
  EXPECT_EQ(InferUnit(one), 0);
}

TEST(InferenceTest, ReportMentionsKeyFindings) {
  auto elements = EventElements({{100, 60}, {200, 190}});
  RelationProfile p = InferProfile(elements, ValidTimeKind::kEvent, kSec);
  const std::string report = p.Report();
  EXPECT_NE(report.find("retroactively bounded"), std::string::npos);
  EXPECT_NE(report.find("ordering"), std::string::npos);
}

TEST(InferenceTest, PerSurrogateRegularityTighterThanGlobal) {
  // Two sensors sampled every 20s each, phase-shifted by 7s: globally the
  // stamps are only 1s-regular, but each life-line is strictly 20s-regular.
  std::vector<Element> elements;
  ElementSurrogate id = 1;
  for (int i = 0; i < 20; ++i) {
    elements.push_back(
        MakeEventElement(T(i * 20), T(i * 20), id, 1));
    ++id;
    elements.push_back(
        MakeEventElement(T(i * 20 + 7), T(i * 20 + 7), id, 2));
    ++id;
  }
  std::sort(elements.begin(), elements.end(),
            [](const Element& a, const Element& b) {
              return a.tt_begin < b.tt_begin;
            });
  RelationProfile p = InferProfile(elements, ValidTimeKind::kEvent, kSec);
  EXPECT_EQ(p.regularity.tt_unit_us, kMicrosPerSecond);  // gcd(20, 7) = 1
  EXPECT_FALSE(p.regularity.tt_strict);
  EXPECT_EQ(p.per_surrogate_regularity.tt_unit_us, 20 * kMicrosPerSecond);
  EXPECT_TRUE(p.per_surrogate_regularity.tt_strict);
  EXPECT_TRUE(p.per_surrogate_regularity.temporal_strict);
}

// Round-trip property: for every scenario band, inference recovers a band
// whose classification matches the generating discipline.
TEST(InferencePropertyTest, RecoversGeneratingBand) {
  Random rng(77);
  struct Case {
    int64_t lo_us, hi_us;
    EventSpecKind expected;
  };
  const Case cases[] = {
      {-90'000'000, -30'000'000, EventSpecKind::kDelayedStronglyRetroactivelyBounded},
      {-90'000'000, 0, EventSpecKind::kStronglyRetroactivelyBounded},
      {-90'000'000, 30'000'000, EventSpecKind::kStronglyBounded},
      {0, 30'000'000, EventSpecKind::kStronglyPredictivelyBounded},
      {30'000'000, 90'000'000, EventSpecKind::kEarlyStronglyPredictivelyBounded},
  };
  for (const auto& c : cases) {
    std::vector<Element> elements;
    for (int i = 0; i < 200; ++i) {
      const int64_t off =
          i == 0 ? c.lo_us : (i == 1 ? c.hi_us : rng.Uniform(c.lo_us, c.hi_us));
      elements.push_back(
          MakeEventElement(T(i * 1000), T(i * 1000) + Duration::Micros(off), i + 1));
    }
    RelationProfile p = InferProfile(elements, ValidTimeKind::kEvent, kSec);
    EXPECT_EQ(p.event.classified, c.expected)
        << "lo=" << c.lo_us << " hi=" << c.hi_us;
    EXPECT_EQ(p.event.min_offset_us, c.lo_us);
    EXPECT_EQ(p.event.max_offset_us, c.hi_us);
  }
}

}  // namespace
}  // namespace tempspec
