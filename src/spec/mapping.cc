#include "spec/mapping.h"

namespace tempspec {

const char* TransactionAnchorToString(TransactionAnchor anchor) {
  return anchor == TransactionAnchor::kInsertion ? "insertion" : "deletion";
}

MappingFunction MappingFunction::Offset(Duration delta) {
  MappingFunction m;
  m.kind_ = Kind::kOffset;
  m.delta_ = delta;
  return m;
}

MappingFunction MappingFunction::TruncateThenOffset(Granularity g, Duration delta) {
  MappingFunction m;
  m.kind_ = Kind::kTruncate;
  m.granularity_ = g;
  m.delta_ = delta;
  return m;
}

MappingFunction MappingFunction::NextPhase(Granularity g, Duration phase,
                                           bool strictly_after) {
  MappingFunction m;
  m.kind_ = Kind::kNextPhase;
  m.granularity_ = g;
  m.phase_ = phase;
  m.strictly_after_ = strictly_after;
  return m;
}

MappingFunction MappingFunction::Custom(std::string name,
                                        std::function<TimePoint(const Element&)> fn) {
  MappingFunction m;
  m.kind_ = Kind::kCustom;
  m.name_ = std::move(name);
  m.custom_ = std::move(fn);
  return m;
}

TimePoint MappingFunction::ApplyToTransactionTime(TimePoint tt) const {
  switch (kind_) {
    case Kind::kOffset:
      return tt + delta_;
    case Kind::kTruncate:
      return granularity_.Truncate(tt) + delta_;
    case Kind::kNextPhase: {
      // Boundaries sit at granule start + phase. Shift so boundaries align
      // with granule starts, take the ceiling, shift back.
      const TimePoint shifted = tt - phase_;
      TimePoint boundary = granularity_.Truncate(shifted);
      bool on_boundary = (boundary + phase_) == tt;
      if ((boundary + phase_) < tt || (on_boundary && strictly_after_)) {
        boundary = granularity_.NextGranule(shifted);
      }
      return boundary + phase_;
    }
    case Kind::kCustom:
      return tt;  // custom mappings require the full element
  }
  return tt;
}

TimePoint MappingFunction::Apply(const Element& e) const {
  if (kind_ == Kind::kCustom) return custom_(e);
  return ApplyToTransactionTime(AnchoredTransactionTime(e, anchor_));
}

std::string MappingFunction::ToDdlClause() const {
  switch (kind_) {
    case Kind::kOffset:
      return "DETERMINED BY TT PLUS " + delta_.ToString();
    case Kind::kTruncate: {
      std::string s = "DETERMINED BY FLOOR(" + granularity_.ToString() + ")";
      if (!delta_.IsZero()) s += " PLUS " + delta_.ToString();
      return s;
    }
    case Kind::kNextPhase:
      return "DETERMINED BY NEXT(" + granularity_.ToString() + ", " +
             phase_.ToString() + ")";
    case Kind::kCustom:
      return "";
  }
  return "";
}

std::string MappingFunction::ToString() const {
  const std::string tt =
      anchor_ == TransactionAnchor::kInsertion ? "tt_b" : "tt_d";
  switch (kind_) {
    case Kind::kOffset:
      return "m(e) = " + tt + " + " + delta_.ToString();
    case Kind::kTruncate: {
      std::string s = "m(e) = floor(" + tt + ", " + granularity_.ToString() + ")";
      if (!delta_.IsZero()) s += " + " + delta_.ToString();
      return s;
    }
    case Kind::kNextPhase:
      return "m(e) = next(" + tt + ", " + granularity_.ToString() + " @ " +
             phase_.ToString() + (strictly_after_ ? ", strict)" : ")");
    case Kind::kCustom:
      return "m(e) = " + name_;
  }
  return "m(e) = ?";
}

}  // namespace tempspec
