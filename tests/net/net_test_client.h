// Minimal blocking TCP client for the network-plane tests: raw sends, HTTP
// POST /query round-trips that keep the connection usable (keep-alive), and
// TSP1 frame send/receive on the same socket. Deliberately independent of
// src/net's connection machinery — the tests exercise the server with an
// implementation that shares none of its parsing code.
#ifndef TEMPSPEC_TESTS_NET_NET_TEST_CLIENT_H_
#define TEMPSPEC_TESTS_NET_NET_TEST_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>

#include "net/frame.h"
#include "util/result.h"

namespace tempspec {
namespace testing {

class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    // Bound every blocking read so a server bug fails the test instead of
    // hanging it.
    timeval tv{/*tv_sec=*/30, /*tv_usec=*/0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~TestClient() { Close(); }

  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  bool connected() const { return connected_; }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads until the peer closes (or the receive timeout fires).
  std::string ReadToEof() {
    std::string out;
    char buf[4096];
    while (true) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  struct HttpReply {
    int code = 0;
    std::string body;
    bool ok = false;
  };

  /// Reads one HTTP/1.1 response (status line, headers, Content-Length-sized
  /// body) without relying on EOF, so keep-alive connections stay usable.
  HttpReply ReadHttpResponse() {
    HttpReply reply;
    while (buffered_.find("\r\n\r\n") == std::string::npos) {
      if (!FillBuffer()) return reply;
    }
    const size_t header_end = buffered_.find("\r\n\r\n");
    const std::string head = buffered_.substr(0, header_end);
    if (std::sscanf(head.c_str(), "HTTP/%*s %d", &reply.code) != 1) {
      return reply;
    }
    size_t content_length = 0;
    {
      std::string lower;
      for (char c : head) lower += static_cast<char>(std::tolower(c));
      const size_t at = lower.find("content-length:");
      if (at != std::string::npos) {
        content_length = std::strtoull(lower.c_str() + at + 15, nullptr, 10);
      }
    }
    const size_t body_start = header_end + 4;
    while (buffered_.size() < body_start + content_length) {
      if (!FillBuffer()) return reply;
    }
    reply.body = buffered_.substr(body_start, content_length);
    buffered_.erase(0, body_start + content_length);
    reply.ok = true;
    return reply;
  }

  HttpReply PostQuery(const std::string& statement,
                      const std::string& extra_headers = "") {
    std::string request =
        "POST /query HTTP/1.1\r\nHost: t\r\n" + extra_headers +
        "Content-Length: " + std::to_string(statement.size()) + "\r\n\r\n" +
        statement;
    if (!Send(request)) return HttpReply{};
    return ReadHttpResponse();
  }

  bool SendFrame(const Frame& frame) {
    std::string wire;
    EncodeFrame(frame, &wire);
    return Send(wire);
  }

  /// Reads one complete frame off the connection.
  Result<Frame> ReadFrame() {
    while (true) {
      decoder_.Feed(buffered_.data(), buffered_.size());
      buffered_.clear();
      Result<std::optional<Frame>> next = decoder_.Next();
      if (!next.ok()) return next.status();
      if (next.ValueOrDie().has_value()) {
        return std::move(*next.ValueOrDie());
      }
      if (!FillBuffer()) {
        return Status::IOError("connection closed before a full frame");
      }
    }
  }

 private:
  bool FillBuffer() {
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n <= 0) return false;
    buffered_.append(buf, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
  std::string buffered_;
  FrameDecoder decoder_;
};

inline Frame QueryFrame(const std::string& statement, uint64_t deadline_ms = 0,
                        bool with_deadline = false) {
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.payload = statement;
  if (with_deadline) {
    frame.flags = kFrameFlagDeadline;
    frame.deadline_millis = deadline_ms;
  }
  return frame;
}

/// One statement's fate over either protocol, normalized so tests can
/// compare HTTP and TSP1 behavior directly.
struct ExecReply {
  /// A definitive reply arrived (transport and protocol both held up).
  bool transport_ok = false;
  /// The statement executed successfully (HTTP 200 / kResult frame).
  bool accepted = false;
  /// HTTP status code; synthesized for frames (200 for kResult, 400 for
  /// kError) so the taxonomy is comparable across protocols.
  int code = 0;
  std::string body;
  /// Admission rejections (503 / kRejected) absorbed by retrying.
  int rejections = 0;
};

/// Executes one statement on the client's connection, retrying admission
/// rejections with a short backoff the way a production client would.
/// `frames` selects TSP1; otherwise HTTP keep-alive.
inline ExecReply ExecuteStatement(TestClient& client,
                                  const std::string& statement, bool frames,
                                  int max_attempts = 200) {
  ExecReply out;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (frames) {
      if (!client.SendFrame(QueryFrame(statement))) return out;
      Result<Frame> reply = client.ReadFrame();
      if (!reply.ok()) return out;
      const Frame& frame = reply.ValueOrDie();
      if (frame.type == FrameType::kRejected) {
        ++out.rejections;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      out.transport_ok = true;
      out.accepted = frame.type == FrameType::kResult;
      out.code = out.accepted ? 200 : 400;
      out.body = frame.payload;
      return out;
    }
    TestClient::HttpReply reply = client.PostQuery(statement);
    if (!reply.ok) return out;
    if (reply.code == 503) {
      ++out.rejections;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    out.transport_ok = true;
    out.accepted = reply.code == 200;
    out.code = reply.code;
    out.body = reply.body;
    return out;
  }
  return out;  // never got past admission control
}

/// Waits (bounded) for a predicate that another thread flips.
template <typename Pred>
bool WaitFor(Pred pred,
             std::chrono::milliseconds limit = std::chrono::seconds(10)) {
  const auto give_up = std::chrono::steady_clock::now() + limit;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace testing
}  // namespace tempspec

#endif  // TEMPSPEC_TESTS_NET_NET_TEST_CLIENT_H_
