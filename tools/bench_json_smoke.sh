#!/usr/bin/env bash
# Smoke check: every bench binary honors `--json` and emits a schema-valid
# BENCH_<id>.json. Runs each bench with a tiny filter/min-time so the whole
# sweep finishes in seconds — this validates the reporting contract, not the
# performance numbers.
#
# Usage: tools/bench_json_smoke.sh [build_dir]   (default: build)
set -u

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
CHECKER="$(dirname "$0")/check_bench_json.py"

if [ ! -d "$BENCH_DIR" ]; then
  echo "no bench dir at $BENCH_DIR (build with the default CMake config first)" >&2
  exit 2
fi

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

# Size knobs honored by individual benches: keep their fixtures tiny here —
# this sweep validates the JSON contract, not the performance numbers (the
# perf-smoke CI job runs bench_p2_kernels at a meaningful size).
export TEMPSPEC_P2_EVENTS="${TEMPSPEC_P2_EVENTS:-4096}"

failures=0
emitted=()
for bench in "$BENCH_DIR"/bench_*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  json="$OUT_DIR/$name.json"
  if [ "$name" = "bench_figures" ]; then
    # Structural checker: no google-benchmark flags, runs everything fast.
    "$bench" --json "$json" > /dev/null 2>&1
  else
    # One repetition of the benchmarks' smallest cases; 0.01s floor keeps
    # even the fsync-bound durability cases to a handful of iterations.
    "$bench" --json "$json" --benchmark_min_time=0.01 \
        --benchmark_repetitions=1 > /dev/null 2>&1
  fi
  status=$?
  if [ $status -ne 0 ]; then
    echo "$name: FAIL: exit status $status"
    failures=$((failures + 1))
    continue
  fi
  if [ ! -s "$json" ]; then
    echo "$name: FAIL: wrote no JSON"
    failures=$((failures + 1))
    continue
  fi
  emitted+=("$json")
done

if [ ${#emitted[@]} -eq 0 ]; then
  echo "no bench binaries found in $BENCH_DIR" >&2
  exit 2
fi

python3 "$CHECKER" "${emitted[@]}" || failures=$((failures + 1))

if [ $failures -ne 0 ]; then
  echo "bench json smoke: $failures failure(s)"
  exit 1
fi
echo "bench json smoke: all ${#emitted[@]} bench binaries emitted valid JSON"
