#include "storage/snapshot.h"

#include <algorithm>
#include <unordered_set>

#include "util/thread_pool.h"

namespace tempspec {

namespace {
// Element copies allocate (tuple values); this morsel size keeps dispatch
// overhead negligible while letting a handful of workers share mid-size
// states.
constexpr size_t kCopyMorsel = 1024;
}  // namespace

void SnapshotManager::Refresh() {
  const auto& entries = store_->entries();
  while (consumed_ < entries.size()) {
    const BacklogEntry& e = entries[consumed_];
    if (e.op == BacklogOpType::kInsert) {
      running_.emplace(e.element.element_surrogate, e.element);
    } else {
      running_.erase(e.target);
    }
    ++consumed_;
    if (consumed_ % interval_ == 0) {
      std::vector<Element> state;
      state.reserve(running_.size());
      for (const auto& [id, element] : running_) state.push_back(element);
      std::sort(state.begin(), state.end(),
                [](const Element& a, const Element& b) {
                  return a.element_surrogate < b.element_surrogate;
                });
      snapshots_.push_back(Snapshot{e.tt, consumed_, std::move(state)});
    }
  }
}

std::vector<Element> SnapshotManager::StateAt(TimePoint tt,
                                              ThreadPool* pool) const {
  // Latest snapshot whose covered transaction time is <= tt. Snapshot
  // positions and transaction times increase together.
  const Snapshot* base = nullptr;
  auto it = std::upper_bound(
      snapshots_.begin(), snapshots_.end(), tt,
      [](TimePoint t, const Snapshot& s) { return t < s.tt; });
  if (it != snapshots_.begin()) base = &*std::prev(it);

  // Differential replay of the suffix: collect inserts still alive at tt as
  // an overlay, deletions of base residents as tombstones. (A deletion whose
  // target was inserted inside the suffix cancels the overlay entry instead.)
  std::unordered_map<ElementSurrogate, const Element*> overlay_map;
  std::unordered_set<ElementSurrogate> tombstones;
  const auto& entries = store_->entries();
  for (size_t i = base ? base->position : 0; i < entries.size(); ++i) {
    const BacklogEntry& e = entries[i];
    if (e.tt > tt) break;
    if (e.op == BacklogOpType::kInsert) {
      overlay_map.emplace(e.element.element_surrogate, &e.element);
    } else if (overlay_map.erase(e.target) == 0) {
      tombstones.insert(e.target);
    }
  }
  std::vector<std::pair<ElementSurrogate, const Element*>> overlay(
      overlay_map.begin(), overlay_map.end());
  std::sort(overlay.begin(), overlay.end());

  // Plan the output: merge the (sorted) base survivors with the (sorted)
  // overlay into a pointer layout. Pointer work only — no element copies yet.
  std::vector<const Element*> layout;
  layout.reserve((base ? base->state.size() : 0) + overlay.size());
  size_t oi = 0;
  if (base != nullptr) {
    for (const Element& e : base->state) {
      if (tombstones.contains(e.element_surrogate)) continue;
      while (oi < overlay.size() &&
             overlay[oi].first < e.element_surrogate) {
        layout.push_back(overlay[oi++].second);
      }
      layout.push_back(&e);
    }
  }
  for (; oi < overlay.size(); ++oi) layout.push_back(overlay[oi].second);

  // Materialize: the element copies dominate (tuple values allocate), so
  // run them morsel-parallel when a pool is available.
  std::vector<Element> out;
  if (pool == nullptr || pool->size() <= 1 || layout.size() < 2 * kCopyMorsel) {
    out.reserve(layout.size());
    for (const Element* e : layout) out.push_back(*e);
    return out;
  }
  out.resize(layout.size());
  pool->ParallelFor(layout.size(), kCopyMorsel,
                    [&](size_t /*morsel*/, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) out[i] = *layout[i];
                    });
  return out;
}

size_t SnapshotManager::cached_elements() const {
  size_t total = running_.size();
  for (const auto& s : snapshots_) total += s.state.size();
  return total;
}

}  // namespace tempspec
