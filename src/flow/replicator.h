// Fact flow between temporal relations.
//
// Section 1 identifies a third shortcoming of the original taxonomy: "in
// application systems with multiple, interconnected temporal relations,
// multiple time dimensions may be associated with facts as they flow from
// one temporal relation to another" (the subject the authors defer to a
// later paper). This module implements the core of that scenario: a
// Replicator copies facts from a source relation into a target relation
// after a bounded propagation delay, and PropagatedBand computes how the
// source's isolated-event specialization *composes* with the delay:
//
//   source:  vt - tt_src ∈ [lo, hi]
//   copy:    tt_dst = tt_src + d,  d ∈ [d_min, d_max]
//   target:  vt - tt_dst ∈ [lo - d_max, hi - d_min]
//
// So e.g. a degenerate sensor feed replicated with a 10..20 s delay is,
// provably, delayed strongly retroactively bounded (10 s, 20 s) downstream —
// the designer can declare (and the engine enforce) the derived type.
#ifndef TEMPSPEC_FLOW_REPLICATOR_H_
#define TEMPSPEC_FLOW_REPLICATOR_H_

#include <unordered_map>

#include "relation/temporal_relation.h"
#include "spec/band.h"
#include "util/random.h"

namespace tempspec {

/// \brief The isolated-event band of the replica, given the source band and
/// the propagation-delay bounds (closed; d_min <= d_max required).
Result<Band> PropagatedBand(const Band& source, Duration min_delay,
                            Duration max_delay);

/// \brief Convenience: the named specialization of the replica derived from
/// a source specialization plus delay bounds.
Result<EventSpecialization> PropagatedSpec(const EventSpecialization& source,
                                           Duration min_delay,
                                           Duration max_delay);

/// \brief Copies operations from a source relation into a target relation
/// with a per-operation propagation delay drawn uniformly from
/// [min_delay, max_delay - 1s] (headroom keeps clock-collision nudges inside
/// declared bounds). Inserts and logical deletions both propagate; the
/// target assigns fresh element surrogates.
class Replicator {
 public:
  /// The target's clock must be the LogicalClock the relation was opened
  /// with; the replicator drives it to place target stamps.
  Replicator(TemporalRelation* source, TemporalRelation* target,
             LogicalClock* target_clock, Duration min_delay, Duration max_delay,
             uint64_t seed = 42)
      : source_(source),
        target_(target),
        target_clock_(target_clock),
        min_delay_(min_delay),
        max_delay_(max_delay),
        rng_(seed) {}

  /// \brief Propagates all source operations not yet replicated. Operations
  /// are applied in target transaction-time order; per-object causality is
  /// preserved (a delete never lands before its insert).
  Status Sync();

  /// \brief Source operations replicated so far.
  size_t replicated() const { return position_; }

  /// \brief Target surrogate an element was replicated to.
  Result<ElementSurrogate> TargetOf(ElementSurrogate source_surrogate) const;

 private:
  TemporalRelation* source_;
  TemporalRelation* target_;
  LogicalClock* target_clock_;
  Duration min_delay_;
  Duration max_delay_;
  Random rng_;
  size_t position_ = 0;
  std::unordered_map<ElementSurrogate, ElementSurrogate> surrogate_map_;
  std::unordered_map<ElementSurrogate, TimePoint> target_insert_tt_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_FLOW_REPLICATOR_H_
