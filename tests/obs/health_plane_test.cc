// Health plane: the metrics history ring (obs/history.h), the SLO watchdog
// (obs/slo.h), and their SHOW HEALTH / SHOW HISTORY query-language surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>

#include "catalog/query_lang.h"
#include "obs/history.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "testing.h"
#include "testing_json.h"

namespace tempspec {
namespace {

using testing::JsonParser;

bool WaitFor(const std::function<bool()>& pred,
             std::chrono::milliseconds limit = std::chrono::seconds(10)) {
  const auto give_up = std::chrono::steady_clock::now() + limit;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// -- MetricsHistory ----------------------------------------------------------

TEST(MetricsHistoryTest, SampleOnceAppendsATimestampedDigest) {
  MetricsHistory history(/*capacity=*/4);
  history.SampleOnce();
  ASSERT_EQ(history.Entries().size(), 1u);
  EXPECT_EQ(history.TotalSamples(), 1u);
  EXPECT_GT(history.Entries()[0].unix_micros, 0u);
#ifdef TEMPSPEC_METRICS
  TS_COUNTER_INC("history_test.pinged");
  history.SampleOnce();
  // Entries() returns the ring by value; copy the element before the
  // temporary vector dies.
  const HistorySample sample = history.Entries().back();
  const auto it = sample.counters.find("history_test.pinged");
  ASSERT_NE(it, sample.counters.end());
  EXPECT_GE(it->second, 1u);
#endif
}

TEST(MetricsHistoryTest, RingEvictsOldestAndCountsTotals) {
  MetricsHistory history(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) history.SampleOnce();
  EXPECT_EQ(history.Entries().size(), 3u);
  EXPECT_EQ(history.TotalSamples(), 5u);
  history.SetCapacity(1);
  EXPECT_EQ(history.Entries().size(), 1u);
}

TEST(MetricsHistoryTest, RenderJsonlEmitsValidLinesNewestLimited) {
  MetricsHistory history(/*capacity=*/8);
  for (int i = 0; i < 4; ++i) history.SampleOnce();
  std::istringstream all(history.RenderJsonl(0));
  std::string line;
  size_t lines = 0;
  while (std::getline(all, line)) {
    ASSERT_OK_AND_ASSIGN(testing::JsonValue v, JsonParser::Parse(line));
    EXPECT_TRUE(v.has("unix_micros")) << line;
    EXPECT_TRUE(v.has("counters")) << line;
    EXPECT_TRUE(v.has("histograms")) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 4u);

  std::istringstream limited(history.RenderJsonl(2));
  lines = 0;
  while (std::getline(limited, line)) ++lines;
  EXPECT_EQ(lines, 2u);
}

TEST(MetricsHistoryTest, SamplerThreadFeedsRingAndHook) {
  MetricsHistory history(/*capacity=*/64);
  std::atomic<int> hook_calls{0};
  history.Start(/*interval_ms=*/2, [&hook_calls] { ++hook_calls; });
  EXPECT_TRUE(history.running());
  EXPECT_EQ(history.interval_ms(), 2u);
  // A second Start while running is a no-op rather than a second thread.
  history.Start(1000);
  EXPECT_EQ(history.interval_ms(), 2u);
  EXPECT_TRUE(WaitFor([&] { return history.TotalSamples() >= 3; }));
  EXPECT_TRUE(WaitFor([&] { return hook_calls.load() >= 3; }));
  history.Stop();
  EXPECT_FALSE(history.running());
  history.Stop();  // idempotent
}

TEST(MetricsHistoryTest, StartWithZeroIntervalIsDisabled) {
  MetricsHistory history;
  history.Start(0);
  EXPECT_FALSE(history.running());
}

TEST(MetricsHistoryTest, ClearResetsRingAndTotals) {
  MetricsHistory history(/*capacity=*/4);
  history.SampleOnce();
  history.Clear();
  EXPECT_TRUE(history.Entries().empty());
  EXPECT_EQ(history.TotalSamples(), 0u);
  EXPECT_EQ(history.RenderJsonl(0), "");
}

// -- SloRegistry -------------------------------------------------------------

class SloRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SloRegistry::Instance().Clear();
    QueryLatencyFamily::Instance().Reset();
  }
  void TearDown() override {
    SloRegistry::Instance().Clear();
    QueryLatencyFamily::Instance().Reset();
  }
};

TEST_F(SloRegistryTest, DeclareFromSpecParsesEntriesAndFlagsBadOnes) {
  EXPECT_TRUE(SloRegistry::Instance().DeclareFromSpec("ledger=12.5,orders=40"));
  const auto objectives = SloRegistry::Instance().Objectives();
  ASSERT_EQ(objectives.size(), 2u);
  EXPECT_DOUBLE_EQ(objectives.at("ledger"), 12.5);
  EXPECT_DOUBLE_EQ(objectives.at("orders"), 40.0);

  EXPECT_FALSE(SloRegistry::Instance().DeclareFromSpec("nodelim"));
  EXPECT_FALSE(SloRegistry::Instance().DeclareFromSpec("=5"));
  EXPECT_FALSE(SloRegistry::Instance().DeclareFromSpec("x="));
  EXPECT_FALSE(SloRegistry::Instance().DeclareFromSpec("x=0"));
  EXPECT_FALSE(SloRegistry::Instance().DeclareFromSpec("x=5junk"));
  // A bad entry does not poison the good ones around it.
  EXPECT_FALSE(SloRegistry::Instance().DeclareFromSpec("good=5,bad"));
  EXPECT_DOUBLE_EQ(SloRegistry::Instance().Objectives().at("good"), 5.0);
}

TEST_F(SloRegistryTest, FastTrafficReadsOk) {
  SloRegistry::Instance().Declare("ledger", /*p99_ms=*/1000);
  for (int i = 0; i < 500; ++i) {
    QueryLatencyFamily::Instance().Observe("ledger", "insert", "http", 100);
  }
  const auto verdicts = SloRegistry::Instance().Evaluate();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].relation, "ledger");
  EXPECT_EQ(verdicts[0].total_count, 500u);
  EXPECT_EQ(verdicts[0].total_violations, 0u);
  EXPECT_TRUE(verdicts[0].total_ok);
  EXPECT_FALSE(verdicts[0].burning);
}

TEST_F(SloRegistryTest, SlowTrafficViolatesAndBurnsThenWindowRecovers) {
  SloRegistry::Instance().Declare("ledger", /*p99_ms=*/1);
  // Every observation sits in a log2 bucket entirely above the 1ms
  // objective, so the lenient watchdog still has to count them all.
  for (int i = 0; i < 100; ++i) {
    QueryLatencyFamily::Instance().Observe("ledger", "row_at_a_time", "http",
                                           1000 * 1000);
  }
  auto verdicts = SloRegistry::Instance().Evaluate();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].total_violations, 100u);
  EXPECT_FALSE(verdicts[0].total_ok);
  EXPECT_EQ(verdicts[0].window_count, 100u);
  EXPECT_GT(verdicts[0].burn_rate, 1.0);
  EXPECT_TRUE(verdicts[0].burning);

  // No new traffic: the next window is clean, so the burn stops while the
  // total verdict keeps the violation on the record.
  verdicts = SloRegistry::Instance().Evaluate();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].total_ok);
  EXPECT_EQ(verdicts[0].window_count, 0u);
  EXPECT_FALSE(verdicts[0].burning);
  EXPECT_EQ(SloRegistry::Instance().Current().size(), 1u);
}

TEST_F(SloRegistryTest, StraddlingBucketCountsAsConforming) {
  // 2000us lands in the [1024, 2047] bucket, which straddles a 1.5ms
  // objective — the watchdog attributes leniently, so these observations
  // are conforming even though each one individually exceeded the target.
  // This is what keeps a server verdict from ever contradicting a passing
  // client-side gate.
  SloRegistry::Instance().Declare("ledger", /*p99_ms=*/1.5);
  for (int i = 0; i < 100; ++i) {
    QueryLatencyFamily::Instance().Observe("ledger", "insert", "http", 2000);
  }
  const auto verdicts = SloRegistry::Instance().Evaluate();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].total_violations, 0u);
  EXPECT_TRUE(verdicts[0].total_ok);
}

TEST_F(SloRegistryTest, UndeclaredRelationsAreNotJudged) {
  SloRegistry::Instance().Declare("ledger", 10);
  QueryLatencyFamily::Instance().Observe("orders", "insert", "http", 50);
  const auto verdicts = SloRegistry::Instance().Evaluate();
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].relation, "ledger");
  EXPECT_EQ(verdicts[0].total_count, 0u);
  EXPECT_TRUE(verdicts[0].total_ok);

  SloRegistry::Instance().Remove("ledger");
  EXPECT_TRUE(SloRegistry::Instance().Evaluate().empty());
}

TEST_F(SloRegistryTest, HealthJsonCarriesVerdictsAndLabeledSeries) {
  SloRegistry::Instance().Declare("ledger", 10);
  QueryLatencyFamily::Instance().Observe("ledger", "row_at_a_time", "tsp1",
                                         250);
  ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                       JsonParser::Parse(SloRegistry::Instance().RenderHealthJson()));
  EXPECT_TRUE(v.has("unix_micros"));
  ASSERT_EQ(v.at("slos").array.size(), 1u);
  const testing::JsonValue& slo = v.at("slos").array[0];
  EXPECT_EQ(slo.at("relation").string, "ledger");
  EXPECT_EQ(slo.at("total").at("verdict").string, "ok");
  EXPECT_EQ(slo.at("window").at("verdict").string, "ok");
  ASSERT_EQ(v.at("series").array.size(), 1u);
  const testing::JsonValue& series = v.at("series").array[0];
  EXPECT_EQ(series.at("relation").string, "ledger");
  EXPECT_EQ(series.at("kind").string, "row_at_a_time");
  EXPECT_EQ(series.at("protocol").string, "tsp1");
  EXPECT_EQ(series.at("count").number, "1");
}

#ifdef TEMPSPEC_METRICS
TEST_F(SloRegistryTest, EvaluatePublishesWatchdogGauges) {
  SloRegistry::Instance().Declare("ledger", /*p99_ms=*/1);
  for (int i = 0; i < 100; ++i) {
    QueryLatencyFamily::Instance().Observe("ledger", "insert", "http",
                                           1000 * 1000);
  }
  SloRegistry::Instance().Evaluate();
  const MetricsSnapshot snapshot = MetricsRegistry::Instance().Scrape();
  EXPECT_EQ(snapshot.gauges.at("tempspec.slo.relations"), 1);
  EXPECT_EQ(snapshot.gauges.at("tempspec.slo.burning"), 1);
  EXPECT_EQ(snapshot.gauges.at("tempspec.slo.ok.ledger"), 0);
  EXPECT_GT(snapshot.gauges.at("tempspec.slo.burn_rate_x100.ledger"), 100);
}
#endif

// -- SHOW HEALTH / SHOW HISTORY ----------------------------------------------

class HealthShowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SloRegistry::Instance().Clear();
    QueryLatencyFamily::Instance().Reset();
    MetricsHistory::Instance().Stop();
    MetricsHistory::Instance().Clear();
  }
  void TearDown() override {
    SloRegistry::Instance().Clear();
    QueryLatencyFamily::Instance().Reset();
    MetricsHistory::Instance().Clear();
  }

  Catalog catalog_;
};

TEST_F(HealthShowTest, ShowHealthRendersVerdictsAndSummary) {
  SloRegistry::Instance().DeclareFromSpec("ledger=10,orders=25");
  QueryLatencyFamily::Instance().Observe("ledger", "insert", "local", 100);
  ASSERT_OK_AND_ASSIGN(QueryOutput out, ExecuteQuery(catalog_, "SHOW HEALTH"));
  const std::string text = out.ToString();
  EXPECT_NE(text.find("\"relation\":\"ledger\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"relation\":\"orders\""), std::string::npos) << text;
  EXPECT_NE(text.find("2 objective(s)"), std::string::npos) << text;
}

TEST_F(HealthShowTest, ShowHistoryHonorsLimit) {
  MetricsHistory::Instance().SetCapacity(8);
  for (int i = 0; i < 3; ++i) MetricsHistory::Instance().SampleOnce();
  ASSERT_OK_AND_ASSIGN(QueryOutput out,
                       ExecuteQuery(catalog_, "SHOW HISTORY LIMIT 2"));
  const std::string text = out.ToString();
  EXPECT_NE(text.find("2 sample(s) shown"), std::string::npos) << text;
  ASSERT_OK_AND_ASSIGN(QueryOutput all, ExecuteQuery(catalog_, "SHOW HISTORY"));
  EXPECT_NE(all.ToString().find("3 sample(s) shown"), std::string::npos)
      << all.ToString();
}

}  // namespace
}  // namespace tempspec
