#include "net/event_loop.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#if defined(__linux__)
#define TEMPSPEC_NET_EPOLL 1
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

namespace tempspec {

namespace {

#ifdef TEMPSPEC_NET_EPOLL
uint32_t ToEpoll(uint32_t interest) {
  uint32_t events = 0;
  if (interest & kEventReadable) events |= EPOLLIN;
  if (interest & kEventWritable) events |= EPOLLOUT;
  return events;
}

uint32_t FromEpoll(uint32_t events) {
  uint32_t out = 0;
  if (events & (EPOLLIN | EPOLLPRI)) out |= kEventReadable;
  if (events & EPOLLOUT) out |= kEventWritable;
  if (events & (EPOLLERR | EPOLLHUP)) out |= kEventError;
  return out;
}
#else
short ToPoll(uint32_t interest) {
  short events = 0;
  if (interest & kEventReadable) events |= POLLIN;
  if (interest & kEventWritable) events |= POLLOUT;
  return events;
}

uint32_t FromPoll(short revents) {
  uint32_t out = 0;
  if (revents & (POLLIN | POLLPRI)) out |= kEventReadable;
  if (revents & POLLOUT) out |= kEventWritable;
  if (revents & (POLLERR | POLLHUP | POLLNVAL)) out |= kEventError;
  return out;
}
#endif

}  // namespace

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() = default;

Status EventLoop::Init() {
#ifdef TEMPSPEC_NET_EPOLL
  backend_fd_.Reset(::epoll_create1(0));
  if (!backend_fd_.valid()) {
    return Status::IOError("epoll_create1(): ", std::strerror(errno));
  }
#endif
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError("pipe(): ", std::strerror(errno));
  }
  wake_read_.Reset(pipe_fds[0]);
  wake_write_.Reset(pipe_fds[1]);
  TS_RETURN_NOT_OK(SetNonBlocking(wake_read_.get()));
  TS_RETURN_NOT_OK(SetNonBlocking(wake_write_.get()));
  return Register(wake_read_.get(), kEventReadable,
                  [this](uint32_t) { DrainWakePipe(); });
}

Status EventLoop::Register(int fd, uint32_t interest, FdCallback callback) {
  TS_RETURN_NOT_OK(BackendAdd(fd, interest));
  callbacks_[fd] = std::move(callback);
  interests_[fd] = interest;
  return Status::OK();
}

Status EventLoop::SetInterest(int fd, uint32_t interest) {
  auto it = interests_.find(fd);
  if (it == interests_.end()) {
    return Status::NotFound("fd ", fd, " is not registered");
  }
  if (it->second == interest) return Status::OK();
  TS_RETURN_NOT_OK(BackendModify(fd, interest));
  it->second = interest;
  return Status::OK();
}

void EventLoop::Deregister(int fd) {
  if (interests_.erase(fd) == 0) return;
  callbacks_.erase(fd);
  BackendRemove(fd);
}

void EventLoop::RunInLoop(Task task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_.push_back(std::move(task));
  }
  Wake();
}

uint64_t EventLoop::AddTimer(std::chrono::milliseconds delay, Task callback) {
  const uint64_t id = next_timer_id_++;
  timers_.push(Timer{std::chrono::steady_clock::now() + delay, id});
  timer_callbacks_[id] = std::move(callback);
  return id;
}

void EventLoop::CancelTimer(uint64_t id) { timer_callbacks_.erase(id); }

void EventLoop::Run() {
  loop_thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  while (!stop_.load(std::memory_order_acquire)) {
    PollOnce(WaitTimeoutMs(/*cap=*/100));
    RunDueTimers();
    RunPendingTasks();
  }
  loop_thread_id_.store(std::thread::id{}, std::memory_order_release);
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Wake() {
  char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
}

void EventLoop::DrainWakePipe() {
  char buf[256];
  while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::RunPendingTasks() {
  std::vector<Task> batch;
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    batch.swap(tasks_);
  }
  for (Task& task : batch) task();
}

void EventLoop::RunDueTimers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.top().when <= now) {
    const uint64_t id = timers_.top().id;
    timers_.pop();
    auto it = timer_callbacks_.find(id);
    if (it == timer_callbacks_.end()) continue;  // cancelled
    Task callback = std::move(it->second);
    timer_callbacks_.erase(it);
    callback();
  }
}

int EventLoop::WaitTimeoutMs(int cap) const {
  if (timers_.empty()) return cap;
  const auto now = std::chrono::steady_clock::now();
  const auto next = timers_.top().when;
  if (next <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(next - now)
          .count() +
      1;
  return static_cast<int>(std::min<long long>(ms, cap));
}

#ifdef TEMPSPEC_NET_EPOLL

Status EventLoop::BackendAdd(int fd, uint32_t interest) {
  epoll_event ev{};
  ev.events = ToEpoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(backend_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(ADD): ", std::strerror(errno));
  }
  return Status::OK();
}

Status EventLoop::BackendModify(int fd, uint32_t interest) {
  epoll_event ev{};
  ev.events = ToEpoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(backend_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(MOD): ", std::strerror(errno));
  }
  return Status::OK();
}

void EventLoop::BackendRemove(int fd) {
  ::epoll_ctl(backend_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::PollOnce(int timeout_ms) {
  epoll_event events[64];
  const int n = ::epoll_wait(backend_fd_.get(), events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    // The callback for an earlier event in this batch may have deregistered
    // this fd; the map lookup is the guard. Invoke a copy: the callback may
    // deregister its own fd, and erasing the map entry mid-call would
    // destroy the executing closure (and the connection it keeps alive).
    auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) continue;
    const uint32_t ready = FromEpoll(events[i].events);
    if (ready != 0) {
      FdCallback callback = it->second;
      callback(ready);
    }
  }
}

#else  // poll(2) backend

Status EventLoop::BackendAdd(int, uint32_t) { return Status::OK(); }
Status EventLoop::BackendModify(int, uint32_t) { return Status::OK(); }
void EventLoop::BackendRemove(int) {}

void EventLoop::PollOnce(int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(interests_.size());
  for (const auto& [fd, interest] : interests_) {
    pfds.push_back(pollfd{fd, ToPoll(interest), 0});
  }
  const int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (n <= 0) return;
  for (const pollfd& pfd : pfds) {
    if (pfd.revents == 0) continue;
    // Copy before invoking: the callback may deregister its own fd (see the
    // epoll backend).
    auto it = callbacks_.find(pfd.fd);
    if (it == callbacks_.end()) continue;
    const uint32_t ready = FromPoll(pfd.revents);
    if (ready != 0) {
      FdCallback callback = it->second;
      callback(ready);
    }
  }
}

#endif  // TEMPSPEC_NET_EPOLL

}  // namespace tempspec
