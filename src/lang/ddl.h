// A definition language for specialized temporal relations.
//
// The paper proposes the taxonomy as design-time vocabulary; this module
// makes the vocabulary concrete as DDL. A statement declares a relation's
// schema, granularity, and specializations using the paper's own terms:
//
//   CREATE EVENT RELATION plant_temperatures (
//       sensor INT64 KEY,
//       celsius DOUBLE
//   ) GRANULARITY 1s
//   WITH DELAYED RETROACTIVE 30s,
//        RETROACTIVELY BOUNDED 120s,
//        NONDECREASING PER SURROGATE,
//        TRANSACTION REGULAR 1min;
//
//   CREATE INTERVAL RELATION assignments (
//       employee INT64 KEY,
//       project STRING
//   ) GRANULARITY 1h
//   WITH VT_BEGIN PREDICTIVE,
//        STRICT VALID INTERVAL REGULAR 1w,
//        CONTIGUOUS PER SURROGATE;
//
// Supported specialization clauses (each maps 1:1 to a Section 3 type):
//   event (optionally prefixed DELETION, and for interval relations VT_BEGIN
//   / VT_END / both implied):
//     RETROACTIVE | DELAYED RETROACTIVE <d> | PREDICTIVE |
//     EARLY PREDICTIVE <d> | RETROACTIVELY BOUNDED <d> |
//     PREDICTIVELY BOUNDED <d> | STRONGLY RETROACTIVELY BOUNDED <d> |
//     DELAYED STRONGLY RETROACTIVELY BOUNDED <d> <d> |
//     STRONGLY PREDICTIVELY BOUNDED <d> |
//     EARLY STRONGLY PREDICTIVELY BOUNDED <d> <d> |
//     STRONGLY BOUNDED <d> <d> | DEGENERATE |
//     DETERMINED BY TT PLUS <d> | DETERMINED BY FLOOR(<gran>) [PLUS <d>] |
//     DETERMINED BY NEXT(<gran>, <d>)
//   inter-event / inter-interval (optionally suffixed PER SURROGATE):
//     NONDECREASING | NONINCREASING | SEQUENTIAL | CONTIGUOUS |
//     SUCCESSIVE [INVERSE] <allen-relation> |
//     [STRICT] TRANSACTION REGULAR <d> | [STRICT] VALID REGULAR <d> |
//     [STRICT] TEMPORAL REGULAR <d> |
//     [STRICT] TRANSACTION INTERVAL REGULAR <d> |
//     [STRICT] VALID INTERVAL REGULAR <d> |
//     [STRICT] TEMPORAL INTERVAL REGULAR <d>
#ifndef TEMPSPEC_LANG_DDL_H_
#define TEMPSPEC_LANG_DDL_H_

#include <string>

#include "model/schema.h"
#include "spec/specialization.h"
#include "util/result.h"

namespace tempspec {

/// \brief Result of parsing a CREATE ... RELATION statement.
struct ParsedRelation {
  SchemaPtr schema;
  SpecializationSet specializations;
};

/// \brief Parses one CREATE [EVENT|INTERVAL] RELATION statement (trailing
/// semicolon optional). The declaration is validated against the schema
/// before returning.
Result<ParsedRelation> ParseCreateRelation(const std::string& statement);

/// \brief Renders a declaration back to canonical DDL (round-trips through
/// ParseCreateRelation up to formatting).
std::string ToDdl(const Schema& schema, const SpecializationSet& specs);

/// \brief Turns an inferred RelationProfile (spec/inference.h) into a
/// suggested CREATE statement for the relation — the textual close of the
/// design loop: inspect undocumented data, receive the DDL that declares
/// (and will thereafter enforce) its observed time semantics. Only
/// exactly-inferred clauses are emitted.
std::string SuggestDdl(const struct RelationProfile& profile,
                       const Schema& schema);

}  // namespace tempspec

#endif  // TEMPSPEC_LANG_DDL_H_
