// Snapshot cache with differential replay.
//
// Rollback on a pure backlog is O(operations before tt). Caching periodic
// materialized states and replaying only the differential suffix is the
// technique of the paper's [JMRS90] reference ("using caching, cache
// indexing, and differential techniques to efficiently support transaction
// time"); bench_e9_rollback measures the effect.
//
// Snapshots are stored as surrogate-sorted element vectors: the differential
// suffix becomes a small overlay (inserts) plus a tombstone set (deletes),
// and materializing the historical state is a merge of two sorted sequences.
// The merge plans the output layout up front (a vector of element pointers),
// then copies the elements — the expensive part, tuple values included —
// morsel-parallel on a ThreadPool when one is supplied. Serial and parallel
// materialization produce byte-identical, surrogate-ordered states.
#ifndef TEMPSPEC_STORAGE_SNAPSHOT_H_
#define TEMPSPEC_STORAGE_SNAPSHOT_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "storage/backlog.h"

namespace tempspec {

class ThreadPool;

/// \brief Periodic materialized states over a BacklogStore.
class SnapshotManager {
 public:
  /// \brief Takes a snapshot every `interval` appended operations.
  SnapshotManager(const BacklogStore* store, size_t interval)
      : store_(store), interval_(interval == 0 ? 1 : interval) {}

  /// \brief Catches up with the store, materializing any snapshots that are
  /// due. Call after appends (any batching is fine).
  void Refresh();

  /// \brief Historical state at `tt`: nearest cached snapshot at or before
  /// `tt`, plus differential replay of the remaining operations. The
  /// returned elements are sorted by element surrogate. With a pool, the
  /// element copies run morsel-parallel (identical output either way).
  std::vector<Element> StateAt(TimePoint tt, ThreadPool* pool = nullptr) const;

  size_t snapshot_count() const { return snapshots_.size(); }

  /// \brief Approximate resident size of the cache, in elements.
  size_t cached_elements() const;

 private:
  struct Snapshot {
    TimePoint tt;                 // transaction time covered
    size_t position;              // operations applied (prefix length)
    std::vector<Element> state;   // alive elements, sorted by surrogate
  };

  const BacklogStore* store_;
  size_t interval_;
  size_t consumed_ = 0;  // operations folded into `running_`
  std::unordered_map<ElementSurrogate, Element> running_;
  std::vector<Snapshot> snapshots_;  // ordered by position
};

}  // namespace tempspec

#endif  // TEMPSPEC_STORAGE_SNAPSHOT_H_
