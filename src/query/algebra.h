// Temporal-algebra operators over element sets.
//
// The paper notes (Section 4) that "specialized temporal relations present
// an opportunity to optimize temporal queries"; these operators are the
// query-side vocabulary the optimizer accelerates: valid-time coalescing,
// temporal (valid-time) join on object surrogates, and restriction/
// projection helpers. All operators are pure: they consume and produce
// element vectors and never touch the store.
#ifndef TEMPSPEC_QUERY_ALGEBRA_H_
#define TEMPSPEC_QUERY_ALGEBRA_H_

#include <functional>
#include <span>
#include <vector>

#include "model/element.h"
#include "util/result.h"

namespace tempspec {

/// \brief Valid-time coalescing: merges value-equivalent interval elements
/// of the same object whose valid intervals overlap or meet, producing one
/// element per maximal covered interval (classic temporal coalescing).
/// Event elements and current/deleted status are preserved as-is; only
/// current elements are merged. Fails on event-stamped input.
Result<std::vector<Element>> Coalesce(std::vector<Element> elements);

/// \brief Valid-time natural join on object surrogate: pairs of current
/// elements (one from each side) describing the same object with
/// intersecting valid time. For interval inputs the result's valid time is
/// the intersection; for event inputs the stamps must be equal.
struct JoinedFact {
  ObjectSurrogate object;
  ValidTime valid;     // the intersection
  Tuple left;          // attribute values from the left element
  Tuple right;         // attribute values from the right element
};
std::vector<JoinedFact> TemporalJoin(std::span<const Element> left,
                                     std::span<const Element> right);

/// \brief Restriction: elements whose attributes satisfy the predicate.
std::vector<Element> Restrict(std::span<const Element> elements,
                              const std::function<bool(const Tuple&)>& predicate);

/// \brief Projection of attribute positions (order preserved; positions must
/// be in range).
Result<std::vector<Element>> Project(std::span<const Element> elements,
                                     const std::vector<size_t>& positions);

/// \brief Per-object valid-time cover: the fraction of [lo, hi) covered by
/// the valid intervals of an object's current elements. A workhorse for
/// lifeline analyses (and a consumer of Coalesce).
Result<double> ValidCoverage(std::span<const Element> elements, TimePoint lo,
                             TimePoint hi);

}  // namespace tempspec

#endif  // TEMPSPEC_QUERY_ALGEBRA_H_
