// Unit tests for TraceContext: span lifecycle, counters/attrs, stage scopes
// (including null-context safety), and the single-line JSON rendering that
// EXPLAIN ANALYZE returns verbatim.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "testing.h"
#include "testing_json.h"

namespace tempspec {
namespace {

TEST(TraceTest, SpanLifecycle) {
  TraceContext ctx;
  EXPECT_FALSE(ctx.started());
  ctx.Begin("query.timeslice");
  EXPECT_TRUE(ctx.started());
  EXPECT_EQ(ctx.name(), "query.timeslice");
  ctx.End();
  const uint64_t wall = ctx.wall_micros();
  ctx.End();  // idempotent: a second End must not extend the span
  EXPECT_EQ(ctx.wall_micros(), wall);
}

TEST(TraceTest, CountersAccumulateAndAttrsLastWriteWins) {
  TraceContext ctx;
  ctx.Begin("span");
  ctx.AddCounter("elements_examined", 10);
  ctx.AddCounter("elements_examined", 5);
  ctx.AddCounter("results", 3);
  EXPECT_EQ(ctx.counter("elements_examined"), 15u);
  EXPECT_EQ(ctx.counter("results"), 3u);
  EXPECT_EQ(ctx.counter("absent"), 0u);
  ctx.SetAttr("strategy", "full_scan");
  ctx.SetAttr("strategy", "valid_index");
  EXPECT_EQ(ctx.attr("strategy"), "valid_index");
  EXPECT_EQ(ctx.attr("absent"), "");
}

TEST(TraceTest, StageScopesRecordInOrder) {
  TraceContext ctx;
  ctx.Begin("span");
  {
    TraceContext::StageScope plan(&ctx, "plan");
  }
  {
    TraceContext::StageScope scan(&ctx, "scan");
  }
  ctx.AddStage("manual", 123);
  ASSERT_EQ(ctx.stages().size(), 3u);
  EXPECT_EQ(ctx.stages()[0].name, "plan");
  EXPECT_EQ(ctx.stages()[1].name, "scan");
  EXPECT_EQ(ctx.stages()[2].name, "manual");
  EXPECT_EQ(ctx.stages()[2].micros, 123u);
}

TEST(TraceTest, NullContextStageScopeIsNoop) {
  // The executor passes nullptr when no trace is attached; the scope must be
  // inert, not crash.
  TraceContext::StageScope scope(nullptr, "scan");
}

TEST(TraceTest, ToJsonShape) {
  TraceContext ctx;
  ctx.Begin("query.rollback");
  ctx.SetAttr("strategy", "full_scan");
  ctx.AddCounter("results", 7);
  ctx.AddStage("scan", 42);
  const std::string json = ctx.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos) << "single line";
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"span\":\"query.rollback\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_micros\":"), std::string::npos);
  EXPECT_NE(json.find("\"attrs\":{\"strategy\":\"full_scan\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\":{\"results\":7}"), std::string::npos);
  EXPECT_NE(json.find("\"stages\":[{\"name\":\"scan\",\"micros\":42}]"),
            std::string::npos);
  // ToJson finalizes a still-open span so the wall time is meaningful.
  EXPECT_GE(ctx.wall_micros(), 0u);
}

TEST(TraceTest, ToJsonRoundTripsHostileNamesAndValues) {
  // Span names, attr keys/values, and stage names all pass through
  // JsonEscape; anything the engine can put in them must survive a parse.
  const std::string nasty =
      "we\"ird\\span\twith\nnewline caf\xC3\xA9 \x01\x1f end";
  TraceContext ctx;
  ctx.Begin(nasty);
  ctx.SetAttr(nasty, nasty);
  ctx.AddCounter("results", 7);
  ctx.AddStage(nasty, 42);
  ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                       testing::JsonParser::Parse(ctx.ToJson()));
  EXPECT_EQ(v.at("span").string, nasty);
  EXPECT_EQ(v.at("attrs").at(nasty).string, nasty);
  EXPECT_EQ(v.at("counters").at("results").number, "7");
  ASSERT_EQ(v.at("stages").array.size(), 1u);
  EXPECT_EQ(v.at("stages").array[0].at("name").string, nasty);
}

TEST(TraceTest, TraceIdsAreProcessUniqueAndNonzero) {
  TraceContext a;
  TraceContext b;
  EXPECT_EQ(a.trace_id(), 0u) << "unassigned before Begin";
  a.Begin("one");
  b.Begin("two");
  EXPECT_NE(a.trace_id(), 0u);
  EXPECT_NE(b.trace_id(), 0u);
  EXPECT_NE(a.trace_id(), b.trace_id());
  ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                       testing::JsonParser::Parse(a.ToJson()));
  EXPECT_EQ(v.at("trace_id").number, std::to_string(a.trace_id()))
      << "the id rides in the span JSON so slowlog entries can join to it";
}

TEST(RetainedTracesTest, RetainsCompletedSpans) {
  RetainedTraces ring(4, 1);
  TraceContext span;
  span.Begin("background.vacuum");
  span.AddCounter("elements_dropped", 3);
  ring.Record(span);  // Record ends a still-open span

  TraceContext never_started;
  ring.Record(never_started);  // no Begin: must be ignored, not retained

  const std::vector<RetainedTrace> entries = ring.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].span, "background.vacuum");
  EXPECT_EQ(entries[0].trace_id, span.trace_id());
  EXPECT_GT(entries[0].unix_micros, 0u);
  ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                       testing::JsonParser::Parse(entries[0].json));
  EXPECT_EQ(v.at("span").string, "background.vacuum");
  EXPECT_EQ(v.at("counters").at("elements_dropped").number, "3");
  EXPECT_EQ(ring.TotalSeen(), 1u);
  EXPECT_EQ(ring.TotalRetained(), 1u);
}

TEST(RetainedTracesTest, CapacityEvictsOldest) {
  RetainedTraces ring(2, 1);
  for (const char* name : {"a", "b", "c"}) {
    TraceContext span;
    span.Begin(name);
    ring.Record(span);
  }
  std::vector<RetainedTrace> entries = ring.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].span, "b");
  EXPECT_EQ(entries[1].span, "c");

  ring.SetCapacity(1);  // shrinking drops the oldest resident span
  entries = ring.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].span, "c");
}

TEST(RetainedTracesTest, SamplerKeepsOneOfEveryN) {
  RetainedTraces ring(8, 2);
  for (int i = 0; i < 4; ++i) {
    TraceContext span;
    span.Begin("s" + std::to_string(i));
    ring.Record(span);
  }
  const std::vector<RetainedTrace> entries = ring.Entries();
  ASSERT_EQ(entries.size(), 2u) << "1 of every 2 spans retained";
  EXPECT_EQ(entries[0].span, "s0");
  EXPECT_EQ(entries[1].span, "s2");
  EXPECT_EQ(ring.TotalSeen(), 4u);
  EXPECT_EQ(ring.TotalRetained(), 2u);

  ring.SetSampleEvery(0);  // 0 disables retention entirely
  TraceContext span;
  span.Begin("dropped");
  ring.Record(span);
  EXPECT_EQ(ring.TotalSeen(), 5u);
  EXPECT_EQ(ring.Entries().size(), 2u);
}

TEST(RetainedTracesTest, ClearResetsRingAndSampler) {
  RetainedTraces ring(8, 2);
  for (int i = 0; i < 3; ++i) {
    TraceContext span;
    span.Begin("x");
    ring.Record(span);
  }
  ring.Clear();
  EXPECT_EQ(ring.Entries().size(), 0u);
  EXPECT_EQ(ring.TotalSeen(), 0u);
  EXPECT_EQ(ring.TotalRetained(), 0u);
  // The sampler phase restarts: the next span is the "first" again.
  TraceContext span;
  span.Begin("fresh");
  ring.Record(span);
  ASSERT_EQ(ring.Entries().size(), 1u);
  EXPECT_EQ(ring.Entries()[0].span, "fresh");
}

}  // namespace
}  // namespace tempspec
