#include "catalog/query_lang.h"

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "testing.h"
#include "timex/calendar.h"

namespace tempspec {
namespace {

using testing::Civil;

class QueryLangTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_shared<LogicalClock>(Civil(1992, 2, 3, 10, 0),
                                            Duration::Minutes(10));
    RelationOptions base;
    base.clock = clock_;
    TemporalRelation* rel =
        catalog_
            .CreateRelationFromDdl(
                "CREATE EVENT RELATION samples (sensor INT64 KEY, v DOUBLE) "
                "GRANULARITY 1s WITH DEGENERATE",
                base)
            .ValueOrDie();
    for (int i = 0; i < 12; ++i) {
      const TimePoint now = clock_->Peek();
      ids_.push_back(
          rel->InsertEvent(1, now, Tuple{int64_t{1}, 1.0 * i}).ValueOrDie());
    }
    rel->LogicalDelete(ids_[0]).Check();
  }

  Catalog catalog_;
  std::shared_ptr<LogicalClock> clock_;
  std::vector<ElementSurrogate> ids_;
};

TEST_F(QueryLangTest, CurrentQuery) {
  ASSERT_OK_AND_ASSIGN(QueryOutput out,
                       ExecuteQuery(catalog_, "CURRENT samples"));
  EXPECT_EQ(out.elements.size(), 11u);
  EXPECT_NE(out.ToString().find("11 element(s)"), std::string::npos);
}

TEST_F(QueryLangTest, TimesliceUsesDegenerateStrategy) {
  // Third sample: valid (and stored) at 10:20.
  ASSERT_OK_AND_ASSIGN(
      QueryOutput out,
      ExecuteQuery(catalog_, "TIMESLICE samples AT '1992-02-03 10:20:00'"));
  EXPECT_EQ(out.elements.size(), 1u);
  EXPECT_NE(out.plan_description.find("rollback equivalence"), std::string::npos);
  EXPECT_LE(out.stats.elements_examined, 2u);
}

TEST_F(QueryLangTest, RollbackQuery) {
  // As stored at 10:20 (three inserts, no deletes yet — the delete happens
  // at the 13th stamp).
  ASSERT_OK_AND_ASSIGN(
      QueryOutput out,
      ExecuteQuery(catalog_, "ROLLBACK samples TO '1992-02-03 10:20:00'"));
  EXPECT_EQ(out.elements.size(), 3u);
}

TEST_F(QueryLangTest, RangeQuery) {
  ASSERT_OK_AND_ASSIGN(QueryOutput out,
                       ExecuteQuery(catalog_,
                                    "RANGE samples FROM '1992-02-03 10:00:00' "
                                    "TO '1992-02-03 10:30:00'"));
  // Samples at 10:00 (deleted), 10:10, 10:20 — current ones only.
  EXPECT_EQ(out.elements.size(), 2u);
  EXPECT_FALSE(ExecuteQuery(catalog_,
                            "RANGE samples FROM '1992-02-03 11:00:00' TO "
                            "'1992-02-03 10:00:00'")
                   .ok());
}

TEST_F(QueryLangTest, BitemporalAsOf) {
  // The 10:00 sample was believed until its deletion (13th stamp, 12:00).
  ASSERT_OK_AND_ASSIGN(
      QueryOutput then,
      ExecuteQuery(catalog_, "TIMESLICE samples AT '1992-02-03 10:00:00' AS OF "
                             "'1992-02-03 10:05:00'"));
  EXPECT_EQ(then.elements.size(), 1u);
  ASSERT_OK_AND_ASSIGN(
      QueryOutput now,
      ExecuteQuery(catalog_, "TIMESLICE samples AT '1992-02-03 10:00:00' AS OF "
                             "'1992-02-03 23:00:00'"));
  EXPECT_EQ(now.elements.size(), 0u);
}

TEST_F(QueryLangTest, ExplainOnly) {
  ASSERT_OK_AND_ASSIGN(
      QueryOutput out,
      ExecuteQuery(catalog_,
                   "EXPLAIN TIMESLICE samples AT '1992-02-03 10:20:00'"));
  EXPECT_TRUE(out.explain_only);
  EXPECT_TRUE(out.elements.empty());
  EXPECT_NE(out.plan_description.find("degenerate"), std::string::npos);
}

TEST_F(QueryLangTest, ShowSlowQueries) {
  SlowQueryLog& log = SlowQueryLog::Instance();
  log.Clear();
  log.SetThresholdMicros(0);  // record every executed statement
  ASSERT_OK(ExecuteQuery(catalog_, "CURRENT samples").status());
  ASSERT_OK(ExecuteQuery(catalog_, "CURRENT samples").status());
  ASSERT_OK_AND_ASSIGN(QueryOutput out,
                       ExecuteQuery(catalog_, "SHOW SLOW QUERIES"));
  EXPECT_NE(out.report.find("threshold 0us"), std::string::npos);
  EXPECT_EQ(out.ToString(), out.report);  // SHOW renders the report verbatim
  if (MetricsCompiledIn()) {
    // Executed statements carry trace spans, so both CURRENTs were retained
    // (the SHOW itself executes no query and is never logged).
    EXPECT_NE(out.report.find("2 slow queries shown"), std::string::npos);
    EXPECT_NE(out.report.find("\"statement\":\"CURRENT samples\""),
              std::string::npos);
    ASSERT_OK_AND_ASSIGN(QueryOutput limited,
                         ExecuteQuery(catalog_, "SHOW SLOW QUERIES LIMIT 1"));
    EXPECT_NE(limited.report.find("1 slow query shown (2 recorded"),
              std::string::npos);
  } else {
    // OFF tree: no spans are attached, so nothing reaches the log.
    EXPECT_NE(out.report.find("0 slow queries shown"), std::string::npos);
  }
  log.Clear();
  log.SetThresholdMicros(10000);
}

TEST_F(QueryLangTest, ShowSpecialization) {
  ASSERT_OK_AND_ASSIGN(QueryOutput out,
                       ExecuteQuery(catalog_, "SHOW SPECIALIZATION samples"));
  EXPECT_NE(out.report.find("relation samples"), std::string::npos);
  EXPECT_NE(out.report.find("declared: degenerate"), std::string::npos);
  EXPECT_NE(out.report.find("figure-1 occupancy"), std::string::npos);
  if (MetricsCompiledIn()) {
    // Every fixture insert was degenerate (vt = clock now), so the monitor
    // saw them all and the relation conforms.
    EXPECT_NE(out.report.find("conforming"), std::string::npos);
  } else {
    EXPECT_NE(out.report.find("observed: (no data)"), std::string::npos);
  }
}

TEST_F(QueryLangTest, ShowFlightRecorder) {
  // A planned query records a plan-choice flight event in an ON tree.
  ASSERT_OK(
      ExecuteQuery(catalog_, "TIMESLICE samples AT '1992-02-03 10:20:00'")
          .status());
  ASSERT_OK_AND_ASSIGN(QueryOutput out,
                       ExecuteQuery(catalog_, "SHOW FLIGHT RECORDER"));
  EXPECT_EQ(out.ToString(), out.report);
  if (FlightRecorderCompiledIn()) {
    EXPECT_NE(out.report.find("event(s) shown ("), std::string::npos);
    EXPECT_NE(out.report.find("ring capacity"), std::string::npos);
    EXPECT_NE(out.report.find("\"code\":\"plan.choice\""), std::string::npos);
    ASSERT_OK_AND_ASSIGN(
        QueryOutput limited,
        ExecuteQuery(catalog_, "SHOW FLIGHT RECORDER LIMIT 1"));
    EXPECT_NE(limited.report.find("1 event(s) shown ("), std::string::npos);
  } else {
    EXPECT_NE(out.report.find("flight recorder compiled out"),
              std::string::npos);
  }
}

TEST_F(QueryLangTest, ShowTraces) {
  ASSERT_OK(ExecuteQuery(catalog_, "CURRENT samples").status());
  ASSERT_OK_AND_ASSIGN(QueryOutput out, ExecuteQuery(catalog_, "SHOW TRACES"));
  EXPECT_EQ(out.ToString(), out.report);
  EXPECT_NE(out.report.find("trace(s) shown ("), std::string::npos);
  EXPECT_NE(out.report.find("sampling 1/"), std::string::npos);
  if (MetricsCompiledIn()) {
    // Metrics trees attach a span to every executed statement, so the
    // CURRENT above was offered to the retained ring (default sampling 1).
    EXPECT_NE(out.report.find("\"span\":\"query."), std::string::npos);
    ASSERT_OK_AND_ASSIGN(QueryOutput limited,
                         ExecuteQuery(catalog_, "SHOW TRACES LIMIT 1"));
    EXPECT_NE(limited.report.find("1 trace(s) shown ("), std::string::npos);
  }
}

TEST_F(QueryLangTest, ShowErrors) {
  EXPECT_FALSE(ExecuteQuery(catalog_, "SHOW").ok());
  EXPECT_FALSE(ExecuteQuery(catalog_, "SHOW NOTHING").ok());
  EXPECT_FALSE(ExecuteQuery(catalog_, "SHOW SLOW").ok());
  EXPECT_FALSE(ExecuteQuery(catalog_, "SHOW SLOW QUERIES LIMIT x").ok());
  EXPECT_FALSE(ExecuteQuery(catalog_, "SHOW SPECIALIZATION nope").ok());
  EXPECT_FALSE(
      ExecuteQuery(catalog_, "SHOW SPECIALIZATION samples extra").ok());
  EXPECT_FALSE(ExecuteQuery(catalog_, "SHOW FLIGHT").ok());
  const Status unknown = ExecuteQuery(catalog_, "SHOW NOTHING").status();
  EXPECT_NE(unknown.message().find("TRACES, HEALTH, or HISTORY"),
            std::string::npos)
      << unknown.message();
}

TEST_F(QueryLangTest, Errors) {
  EXPECT_FALSE(ExecuteQuery(catalog_, "CURRENT nope").ok());
  EXPECT_FALSE(ExecuteQuery(catalog_, "FROBNICATE samples").ok());
  EXPECT_FALSE(ExecuteQuery(catalog_, "TIMESLICE samples AT bare").ok());
  EXPECT_FALSE(ExecuteQuery(catalog_, "TIMESLICE samples AT '1992-13-99'").ok());
  EXPECT_FALSE(
      ExecuteQuery(catalog_, "CURRENT samples trailing garbage").ok());
}

TEST_F(QueryLangTest, InsertEventStatement) {
  // `samples` is degenerate: valid time must match the stamping time, which
  // after SetUp's 13 stamps (12 inserts + 1 delete) is deterministically
  // 12:10.
  ASSERT_OK_AND_ASSIGN(
      QueryOutput out,
      ExecuteQuery(catalog_,
                   "INSERT INTO samples OBJECT 9 VALUES (9, 42.5) "
                   "VALID AT '1992-02-03 12:10:00'"));
  EXPECT_NE(out.report.find("inserted element"), std::string::npos)
      << out.report;
  EXPECT_NE(out.report.find("(object 9) into samples"), std::string::npos);
  // The insert is immediately visible to reads.
  ASSERT_OK_AND_ASSIGN(QueryOutput current,
                       ExecuteQuery(catalog_, "CURRENT samples"));
  EXPECT_EQ(current.elements.size(), 12u);  // 11 from SetUp + this one
}

TEST_F(QueryLangTest, InsertValueTypesRoundTrip) {
  RelationOptions base;
  base.clock = clock_;
  ASSERT_OK(catalog_
                .CreateRelationFromDdl(
                    "CREATE EVENT RELATION typed (id INT64 KEY, label STRING, "
                    "ok BOOL, score DOUBLE) GRANULARITY 1s",
                    base)
                .status());
  ASSERT_OK(ExecuteQuery(catalog_,
                         "INSERT INTO typed OBJECT 1 VALUES "
                         "(7, 'seven', TRUE, -1.5e2) "
                         "VALID AT '1992-02-03 13:00:00'")
                .status());
  ASSERT_OK(ExecuteQuery(catalog_,
                         "INSERT INTO typed OBJECT 2 VALUES "
                         "(8, NULL, FALSE, 0.25) "
                         "VALID AT '1992-02-03 13:00:00'")
                .status());
  ASSERT_OK_AND_ASSIGN(QueryOutput out,
                       ExecuteQuery(catalog_, "CURRENT typed"));
  EXPECT_EQ(out.elements.size(), 2u);
}

TEST_F(QueryLangTest, DeleteStatement) {
  ASSERT_OK_AND_ASSIGN(
      QueryOutput out,
      ExecuteQuery(catalog_,
                   "DELETE FROM samples WHERE ID " + std::to_string(ids_[1])));
  EXPECT_NE(out.report.find("deleted element"), std::string::npos)
      << out.report;
  ASSERT_OK_AND_ASSIGN(QueryOutput current,
                       ExecuteQuery(catalog_, "CURRENT samples"));
  EXPECT_EQ(current.elements.size(), 10u);  // SetUp left 11
  // Deleting an unknown element fails cleanly.
  EXPECT_FALSE(
      ExecuteQuery(catalog_, "DELETE FROM samples WHERE ID 999999").ok());
}

TEST_F(QueryLangTest, WriteStatementErrors) {
  // Wrong arity, type mismatches, bad time literals, unknown relations.
  EXPECT_FALSE(ExecuteQuery(catalog_,
                            "INSERT INTO nope OBJECT 1 VALUES (1, 1.0) "
                            "VALID AT '1992-02-03 13:00:00'")
                   .ok());
  EXPECT_FALSE(ExecuteQuery(catalog_,
                            "INSERT INTO samples OBJECT 1 VALUES (1) "
                            "VALID AT '1992-02-03 13:00:00'")
                   .ok());
  EXPECT_FALSE(ExecuteQuery(catalog_,
                            "INSERT INTO samples OBJECT 1 VALUES (1, 'x') "
                            "VALID AT '1992-02-03 13:00:00'")
                   .ok());
  EXPECT_FALSE(ExecuteQuery(catalog_,
                            "INSERT INTO samples OBJECT 1 VALUES (1, 1.0) "
                            "VALID AT 'not a time'")
                   .ok());
  EXPECT_FALSE(ExecuteQuery(catalog_,
                            "INSERT INTO samples OBJECT 1 VALUES (1, 1.0)")
                   .ok());
  EXPECT_FALSE(ExecuteQuery(catalog_, "DELETE FROM samples WHERE ID x").ok());
  EXPECT_FALSE(ExecuteQuery(catalog_, "DELETE FROM samples").ok());
  // EXPLAIN applies to queries, not writes.
  EXPECT_FALSE(ExecuteQuery(catalog_,
                            "EXPLAIN INSERT INTO samples OBJECT 1 VALUES "
                            "(1, 1.0) VALID AT '1992-02-03 13:00:00'")
                   .ok());
}

TEST_F(QueryLangTest, IsWriteStatementClassification) {
  EXPECT_TRUE(IsWriteStatement("INSERT INTO r OBJECT 1 VALUES (1)"));
  EXPECT_TRUE(IsWriteStatement("  insert into r ..."));
  EXPECT_TRUE(IsWriteStatement("DELETE FROM r WHERE ID 4"));
  EXPECT_TRUE(IsWriteStatement("CREATE EVENT RELATION r (x INT64 KEY)"));
  EXPECT_TRUE(IsWriteStatement("DROP RELATION r"));
  EXPECT_FALSE(IsWriteStatement("CURRENT r"));
  EXPECT_FALSE(IsWriteStatement("TIMESLICE r AT '1992-01-01'"));
  EXPECT_FALSE(IsWriteStatement("SHOW SPECIALIZATION r"));
  EXPECT_FALSE(IsWriteStatement("EXPLAIN CURRENT r"));
  EXPECT_FALSE(IsWriteStatement(""));
  EXPECT_FALSE(IsWriteStatement("   "));
}

}  // namespace
}  // namespace tempspec
