// Deterministic crash-recovery harness for the storage stack.
//
// A crash trial: arm a failpoint (util/failpoint.h) so that a chosen fault
// fires at the trigger'th IO operation, run a seeded workload against a
// durable store until an operation fails ("the crash"), tear the store down
// while the registry is still in the crashed state (the WAL then cuts its
// unsynced tail at a seeded point, modeling page-cache loss), disarm, and
// reopen. Recovery must always succeed, and the recovered operation log must
// be a *prefix* of the acknowledged shadow log, byte-identical entry by
// entry, and at least as long as the durable floor (the last completed
// checkpoint); a crash inside backlog compaction (ReplaceAll) must resolve
// to exactly the old or exactly the new generation. Every trial then keeps
// going: more appends, another checkpoint, a final reopen — so recovery
// states that only break on the *next* checkpoint (e.g. a torn page left in
// the file) are caught too. Sweeping the trigger across every operation
// count turns this into an exhaustive, reproducible crash-point exploration.
//
// Everything here is seeded: same strategy + trigger + seed => same faults,
// same torn bytes, same recovery.
#ifndef TEMPSPEC_TESTS_TESTING_CRASH_H_
#define TEMPSPEC_TESTS_TESTING_CRASH_H_

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/flight_recorder.h"
#include "storage/backlog.h"
#include "testing.h"
#include "testing_json.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace tempspec {
namespace testing {

class CrashTempDir {
 public:
  CrashTempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("tempspec_crash_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~CrashTempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

/// \brief Seeded backlog workload: ~75% inserts (with variable-length
/// payloads, so byte-identity checks cover the encoder), ~25% deletes of a
/// random live element.
inline std::vector<BacklogEntry> MakeCrashWorkload(uint64_t seed, size_t num_ops,
                                                   size_t payload_bytes = 24) {
  Random rng(seed);
  std::vector<BacklogEntry> ops;
  ops.reserve(num_ops);
  std::vector<ElementSurrogate> live;
  ElementSurrogate next = 1;
  for (size_t i = 0; i < num_ops; ++i) {
    const int64_t tt = static_cast<int64_t>(10 * (i + 1));
    BacklogEntry e;
    e.tt = T(tt);
    if (!live.empty() && rng.OneIn(0.25)) {
      const size_t victim = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
      e.op = BacklogOpType::kLogicalDelete;
      e.target = live[victim];
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    } else {
      e.op = BacklogOpType::kInsert;
      e.element = MakeEventElement(T(tt), T(tt - 3), next, next % 5 + 1);
      e.element.attributes =
          Tuple{static_cast<int64_t>(i),
                rng.NextString(static_cast<size_t>(
                    rng.Uniform(0, static_cast<int64_t>(payload_bytes))))};
      live.push_back(next);
      ++next;
    }
    ops.push_back(std::move(e));
  }
  return ops;
}

/// \brief Alive elements after applying the first `prefix` ops, sorted by
/// surrogate (the shadow counterpart of BacklogStore::MaterializeState at
/// TimePoint::Max()).
inline std::vector<Element> MaterializeShadow(const std::vector<BacklogEntry>& ops,
                                              size_t prefix) {
  std::unordered_map<ElementSurrogate, Element> alive;
  for (size_t i = 0; i < prefix && i < ops.size(); ++i) {
    const BacklogEntry& e = ops[i];
    if (e.op == BacklogOpType::kInsert) {
      alive.emplace(e.element.element_surrogate, e.element);
    } else {
      alive.erase(e.target);
    }
  }
  std::vector<Element> out;
  out.reserve(alive.size());
  for (auto& [id, element] : alive) out.push_back(std::move(element));
  std::sort(out.begin(), out.end(), [](const Element& a, const Element& b) {
    return a.element_surrogate < b.element_surrogate;
  });
  return out;
}

/// \brief What vacuuming's backlog compaction boils a history down to: the
/// insert operations of still-alive elements, in original order (deletes and
/// dead elements dropped). Used as the shadow of ReplaceAll in compaction
/// crash trials.
inline std::vector<BacklogEntry> CompactHistory(
    const std::vector<BacklogEntry>& history) {
  std::unordered_set<ElementSurrogate> dead;
  for (const BacklogEntry& e : history) {
    if (e.op == BacklogOpType::kLogicalDelete) dead.insert(e.target);
  }
  std::vector<BacklogEntry> out;
  for (const BacklogEntry& e : history) {
    if (e.op == BacklogOpType::kInsert &&
        dead.count(e.element.element_surrogate) == 0) {
      out.push_back(e);
    }
  }
  return out;
}

inline bool SameStoredElement(const Element& a, const Element& b) {
  return a.element_surrogate == b.element_surrogate &&
         a.object_surrogate == b.object_surrogate && a.tt_begin == b.tt_begin &&
         a.tt_end == b.tt_end && a.valid == b.valid &&
         a.attributes == b.attributes;
}

/// \brief Parses a flight-recorder JSONL dump and asserts the black-box
/// contract: every line is a schema-valid event, seqs strictly increase,
/// this trial's injected fault is on the record, and nothing but fault-plane
/// events follows the crash latch (post-latch, every storage IO fails before
/// its success event is recorded). `flight_start` is the recorder head at
/// trial start, so events of earlier trials still in the ring are ignored
/// where identity matters.
inline void ValidateFlightDump(const std::string& path, const char* site,
                               FaultKind kind, uint64_t flight_start) {
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "cannot open flight dump '" << path << "'";
  std::vector<JsonValue> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = JsonParser::Parse(line);
    ASSERT_TRUE(parsed.ok()) << "flight dump line is not valid JSON ("
                             << parsed.status().ToString() << "): " << line;
    events.push_back(std::move(parsed).ValueOrDie());
  }
  ASSERT_FALSE(events.empty()) << "flight dump is empty after a crash";

  long long prev_seq = -1;
  for (const JsonValue& e : events) {
    ASSERT_TRUE(e.is_object()) << "flight dump line is not an object";
    for (const char* key : {"seq", "nanos", "tid", "arg0", "arg1"}) {
      ASSERT_TRUE(e.has(key) && e.at(key).type == JsonValue::Type::kNumber)
          << "flight event lacks numeric '" << key << "'";
    }
    for (const char* key : {"category", "code", "detail"}) {
      ASSERT_TRUE(e.has(key) && e.at(key).type == JsonValue::Type::kString)
          << "flight event lacks string '" << key << "'";
    }
    const long long seq = std::stoll(e.at("seq").number);
    ASSERT_GT(seq, prev_seq) << "flight dump seqs are not strictly increasing";
    prev_seq = seq;
  }

  // This trial's injected fault must be on the record: site in the detail,
  // fault kind in arg0, and a sequence number from this trial.
  bool saw_inject = false;
  for (const JsonValue& e : events) {
    if (e.at("code").string == "fault.inject" &&
        e.at("detail").string == site &&
        std::stoll(e.at("arg0").number) == static_cast<long long>(kind) &&
        std::stoull(e.at("seq").number) >= flight_start) {
      saw_inject = true;
      break;
    }
  }
  ASSERT_TRUE(saw_inject) << "no fault.inject event for site '" << site
                          << "' kind " << FaultKindToString(kind)
                          << " in the flight dump";

  // Latching faults leave a fault.crash_latch milestone; everything after
  // this trial's latch must be fault-plane (the crashed registry fails
  // every storage IO before its success event records). Latches of earlier
  // trials — legitimately followed by their recovery's storage events —
  // are excluded by the flight_start scope.
  size_t last_latch = events.size();
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].at("code").string == "fault.crash_latch" &&
        std::stoull(events[i].at("seq").number) >= flight_start) {
      last_latch = i;
    }
  }
  const bool latching = kind == FaultKind::kShortWrite ||
                        kind == FaultKind::kCorruptBit ||
                        kind == FaultKind::kCrash;
  if (latching) {
    ASSERT_LT(last_latch, events.size())
        << "latching fault left no fault.crash_latch event in this trial";
  }
  for (size_t i = last_latch == events.size() ? events.size() : last_latch + 1;
       i < events.size(); ++i) {
    ASSERT_EQ(events[i].at("category").string, "fault")
        << "storage event recorded after the crash latch (dump index " << i
        << ", code " << events[i].at("code").string << ")";
  }
}

/// \brief One crash-injection strategy: which site is armed with which
/// fault, under which durability mode, and what the recovery contract is.
struct CrashStrategy {
  const char* name;
  const char* site;
  FaultKind kind;
  SyncMode sync_mode = SyncMode::kEveryN;
  uint32_t sync_every = 8;
  uint32_t transient_ops = 0;      // kTransientError only
  bool drop_wal_sync = false;      // additionally arm wal.sync: drop from op 0
  bool drop_wal_reset = false;     // additionally arm wal.reset: drop from op 0
  /// ReplaceAll (backlog compaction) after every N appends; 0 = never.
  size_t compact_every = 0;
  /// Recovered must equal ALL acknowledged ops (fsync-per-append, no loss
  /// model active). Otherwise only prefix-consistency + the checkpoint
  /// floor are guaranteed.
  bool lossless = false;
  size_t pool_pages = 64;
  size_t payload_bytes = 24;
};

struct TrialOutcome {
  bool crashed = false;
  size_t acked = 0;      // ops acknowledged before the crash
  size_t floor = 0;      // ops covered by the last completed checkpoint
  size_t recovered = 0;  // ops present after recovery
};

/// \brief Runs one seeded crash trial; gtest-fatal on any violated recovery
/// invariant. Call under ASSERT_NO_FATAL_FAILURE with a SCOPED_TRACE naming
/// the trigger.
inline void RunBacklogCrashTrial(const CrashStrategy& strategy, uint64_t trigger,
                                 uint64_t seed, size_t num_ops,
                                 size_t checkpoint_every, TrialOutcome* out) {
  ASSERT_TRUE(FailpointsCompiledIn())
      << "TEMPSPEC_FAILPOINTS is compiled out: this build cannot inject "
         "faults, so the crash suite would pass vacuously. Reconfigure with "
         "-DTEMPSPEC_FAILPOINTS=ON.";
  FailpointRegistry& registry = FailpointRegistry::Instance();
  registry.DisarmAll();
  // Recorder head at trial start: events below this seq belong to earlier
  // trials still sitting in the ring.
  const uint64_t flight_start = FlightRecorder::Instance().head();

  CrashTempDir dir;
  const std::vector<BacklogEntry> ops =
      MakeCrashWorkload(seed, num_ops, strategy.payload_bytes);

  BacklogStore::Options options;
  options.directory = dir.path();
  options.sync_mode = strategy.sync_mode;
  options.sync_every = strategy.sync_every;
  options.buffer_pool_pages = strategy.pool_pages;

  FaultSpec spec;
  spec.kind = strategy.kind;
  spec.trigger_at = trigger;
  spec.transient_ops = strategy.transient_ops == 0 ? 1 : strategy.transient_ops;
  spec.seed = seed ^ (trigger * 0x9e3779b97f4a7c15ull);
  registry.Arm(strategy.site, spec);
  if (strategy.drop_wal_sync) {
    registry.Arm("wal.sync", FaultSpec{FaultKind::kDropSync, 0, 1, seed});
  }
  if (strategy.drop_wal_reset) {
    registry.Arm("wal.reset", FaultSpec{FaultKind::kDropSync, 0, 1, seed});
  }

  *out = TrialOutcome{};
  // The shadow is the acknowledged history of the *current generation*; a
  // successful compaction replaces it wholesale. prev_shadow keeps the
  // pre-compaction generation for trials that crash inside ReplaceAll,
  // where the atomic rename makes either generation a legal outcome.
  std::vector<BacklogEntry> shadow;
  std::vector<BacklogEntry> prev_shadow;
  size_t prev_floor = 0;
  bool compaction_crashed = false;
  {
    auto opened = BacklogStore::Open(options);
    if (!opened.ok()) {
      out->crashed = true;  // fault fired while creating the store
    } else {
      std::unique_ptr<BacklogStore> store = std::move(opened).ValueOrDie();
      size_t appends = 0;
      for (const BacklogEntry& op : ops) {
        const Status st = store->Append(op);
        if (!st.ok()) {
          out->crashed = true;
          break;
        }
        shadow.push_back(op);
        ++appends;
        out->acked = shadow.size();
        if (appends % checkpoint_every == 0) {
          const Status cp = store->Checkpoint();
          if (!cp.ok()) {
            out->crashed = true;
            break;
          }
          out->floor = shadow.size();
        }
        if (strategy.compact_every != 0 &&
            appends % strategy.compact_every == 0) {
          std::vector<BacklogEntry> compacted = CompactHistory(shadow);
          prev_shadow = std::move(shadow);
          prev_floor = out->floor;
          const Status rp = store->ReplaceAll(compacted);
          shadow = std::move(compacted);
          out->acked = shadow.size();
          out->floor = shadow.size();
          if (!rp.ok()) {
            out->crashed = true;
            compaction_crashed = true;
            break;
          }
        }
      }
      // Teardown happens while the registry is still crashed: the WAL
      // destructor applies the seeded machine-crash tail cut.
    }
  }
  registry.DisarmAll();

  // Black-box check: serialize the flight recorder exactly as the fatal-
  // signal handler would, and validate the dump *before* recovery runs (its
  // recovery events would otherwise append beyond the crash tail). Every
  // seeded crash point must yield a schema-valid dump whose last events are
  // consistent with the injected fault.
  if (out->crashed && FlightRecorderCompiledIn()) {
    const std::string dump_path = dir.path() + "/flight.jsonl";
    ASSERT_OK(FlightRecorder::Instance().DumpToFile(dump_path));
    ASSERT_NO_FATAL_FAILURE(
        ValidateFlightDump(dump_path, strategy.site, strategy.kind, flight_start));
  }

  // Recovery must succeed with no faults armed, whatever the crash left.
  auto reopened = BacklogStore::Open(options);
  ASSERT_TRUE(reopened.ok())
      << "recovery failed after '" << strategy.name << "' crash at trigger "
      << trigger << ": " << reopened.status().ToString();
  std::unique_ptr<BacklogStore> store = std::move(reopened).ValueOrDie();
  const std::vector<BacklogEntry>& recovered = store->entries();
  out->recovered = recovered.size();

  // Prefix-consistency: never more than acknowledged, never less than the
  // durable floor, byte-identical entry by entry. A crash *inside*
  // ReplaceAll resolves to whichever side of its atomic rename the crash
  // landed on: exactly the compacted generation, or a prefix of the old one
  // (whose unsynced WAL tail the crash may still have cut).
  const std::vector<BacklogEntry>* against = &shadow;
  size_t floor = out->floor;
  if (compaction_crashed) {
    bool adopted_new = recovered.size() == shadow.size();
    for (size_t i = 0; adopted_new && i < recovered.size(); ++i) {
      adopted_new = recovered[i].Encode() == shadow[i].Encode();
    }
    if (adopted_new) {
      ASSERT_EQ(recovered.size(), shadow.size());
    } else {
      against = &prev_shadow;
      floor = prev_floor;
    }
  }
  ASSERT_LE(recovered.size(), against->size())
      << strategy.name << ": phantom operations after recovery";
  ASSERT_GE(recovered.size(), floor)
      << strategy.name << ": checkpointed operations lost";
  if (strategy.lossless && out->crashed) {
    ASSERT_EQ(recovered.size(), out->acked)
        << strategy.name << ": acknowledged fsync'd operations lost";
  }
  for (size_t i = 0; i < recovered.size(); ++i) {
    ASSERT_EQ(recovered[i].Encode(), (*against)[i].Encode())
        << strategy.name << ": recovered op " << i << " differs";
  }

  // Recovered state must match the shadow model applied to the same prefix.
  std::vector<Element> actual = store->MaterializeState(TimePoint::Max());
  std::sort(actual.begin(), actual.end(), [](const Element& a, const Element& b) {
    return a.element_surrogate < b.element_surrogate;
  });
  const std::vector<Element> expected =
      MaterializeShadow(*against, recovered.size());
  ASSERT_EQ(actual.size(), expected.size()) << strategy.name;
  for (size_t i = 0; i < actual.size(); ++i) {
    ASSERT_TRUE(SameStoredElement(actual[i], expected[i]))
        << strategy.name << ": alive element " << i << " differs";
  }

  // Recovery is idempotent: reopening again yields the same history.
  const size_t first_count = recovered.size();
  store.reset();
  auto again = BacklogStore::Open(options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  std::unique_ptr<BacklogStore> resumed = std::move(again).ValueOrDie();
  ASSERT_EQ(resumed->entries().size(), first_count)
      << strategy.name << ": recovery is not idempotent";

  // Life goes on after recovery: append a continuation workload, checkpoint
  // it, and reopen once more. This is the regression for quarantined torn
  // pages — the post-recovery checkpoint appends its batch on fresh pages
  // *after* whatever the crash damaged, and a recovery scan that had merely
  // stopped at the damage (instead of truncating it off the file) would
  // never reach that durable batch here, silently dropping it.
  constexpr size_t kContinuationOps = 12;
  const std::vector<BacklogEntry> extra = MakeCrashWorkload(
      seed ^ 0x5ca1ab1eull, kContinuationOps, strategy.payload_bytes);
  for (const BacklogEntry& op : extra) {
    ASSERT_OK(resumed->Append(op));
  }
  ASSERT_OK(resumed->Checkpoint());
  resumed.reset();
  auto final_open = BacklogStore::Open(options);
  ASSERT_TRUE(final_open.ok())
      << strategy.name << ": reopen after post-recovery checkpoint failed: "
      << final_open.status().ToString();
  const std::vector<BacklogEntry>& final_entries =
      final_open.ValueOrDie()->entries();
  ASSERT_EQ(final_entries.size(), first_count + extra.size())
      << strategy.name << ": operations appended after recovery were lost";
  for (size_t i = 0; i < final_entries.size(); ++i) {
    const std::string want = i < first_count
                                 ? (*against)[i].Encode()
                                 : extra[i - first_count].Encode();
    ASSERT_EQ(final_entries[i].Encode(), want)
        << strategy.name << ": post-continuation op " << i << " differs";
  }
}

/// \brief Prints the registry's fault counters. Crash tests call this and
/// assert on the totals, so a build whose failpoints never fire fails
/// loudly instead of passing vacuously.
inline FaultCounters PrintFaultSummary(const char* label) {
  const FaultCounters c = FailpointRegistry::Instance().counters();
  std::cout << "[fault-injection] " << label << ": evaluated=" << c.evaluated
            << " injected=" << c.injected << " short_writes=" << c.short_writes
            << " corrupt=" << c.corrupt_writes
            << " dropped_syncs=" << c.dropped_syncs
            << " transient=" << c.transient_errors << " crashes=" << c.crashes
            << std::endl;
  return c;
}

}  // namespace testing
}  // namespace tempspec

#endif  // TEMPSPEC_TESTS_TESTING_CRASH_H_
