#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"

namespace tempspec {

// ---------------------------------------------------------------------------
// WorkerPool

WorkerPool::WorkerPool(size_t threads) {
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { Work(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::Work() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain queued work even during shutdown: an admitted statement's
      // completion must reach its connection, never vanish.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// ---------------------------------------------------------------------------
// NetServer

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool WantsKeepAlive(const HttpRequest& request) {
  const std::string* connection = request.FindHeader("Connection");
  if (request.version == "HTTP/1.1") {
    return connection == nullptr || !EqualsIgnoreCase(*connection, "close");
  }
  return connection != nullptr && EqualsIgnoreCase(*connection, "keep-alive");
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 18) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseHex64(std::string_view s, uint64_t* out) {
  if (s.size() != 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

// X-Tempspec-Trace: "<32 hex trace id>-<16 hex span id>". False on any
// malformation — the caller falls back to a server-generated id; a bad
// trace header must never fail the request itself.
bool ParseTraceHeader(const std::string& header, uint64_t* hi, uint64_t* lo,
                      uint64_t* span) {
  const std::string_view s(header);
  return s.size() == 49 && s[32] == '-' && ParseHex64(s.substr(0, 16), hi) &&
         ParseHex64(s.substr(16, 16), lo) && ParseHex64(s.substr(33, 16), span);
}

uint64_t MicrosBetween(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(b - a).count()));
}

int StatusToHttpCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kDeadlineExceeded: return 504;
    case StatusCode::kUnavailable: return 503;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kNotImplemented: return 404;
    case StatusCode::kInvalidArgument:
    case StatusCode::kConstraintViolation:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange: return 400;
    default: return 500;
  }
}

constexpr char kTextPlain[] = "text/plain; charset=utf-8";

}  // namespace

struct NetServer::Connection {
  Connection(const HttpLimits& limits, size_t max_frame_payload)
      : http(limits), decoder(max_frame_payload) {}

  OwnedFd fd;
  uint64_t id = 0;
  std::string peer;  // "ip:port" of the remote end, for span/slowlog attrs
  enum class Proto { kUnknown, kHttp, kFrame } proto = Proto::kUnknown;
  std::string inbuf;  // raw bytes ahead of the protocol machinery
  HttpParser http;
  FrameDecoder decoder;
  std::string outbuf;
  size_t out_offset = 0;
  uint32_t interest = kEventReadable;
  bool processing = false;  // one statement on the workers for this conn
  bool reading_paused = false;
  bool close_after_flush = false;
  bool closed = false;
  std::shared_ptr<TraceContext> active_trace;  // cancelled on disconnect
  std::chrono::steady_clock::time_point last_activity;
};

NetServer::NetServer(ServerOptions options) : options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

void NetServer::AddHttpHandler(std::string target, HttpHandler handler) {
  http_handlers_[std::move(target)] = std::move(handler);
}

void NetServer::SetHttpFallback(HttpHandler handler) {
  http_fallback_ = std::move(handler);
}

void NetServer::SetStatementHandler(StatementHandler handler) {
  statement_handler_ = std::move(handler);
}

Status NetServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server already running on port ",
                                 bound_port_.load());
  }
  TS_RETURN_NOT_OK(loop_.Init());
  TS_ASSIGN_OR_RETURN(listen_fd_,
                      ListenTcp(options_.bind_address, options_.port,
                                options_.backlog));
  TS_ASSIGN_OR_RETURN(const uint16_t port, LocalPort(listen_fd_.get()));
  TS_RETURN_NOT_OK(loop_.Register(listen_fd_.get(), kEventReadable,
                                  [this](uint32_t) { OnAccept(); }));
  bound_port_.store(port, std::memory_order_release);
  workers_ = std::make_unique<WorkerPool>(
      std::max<size_t>(1, options_.worker_threads));
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] {
    // Pre-Run timer setup happens on the loop thread, honoring the
    // loop-thread-only contract of AddTimer.
    if (options_.idle_timeout_ms > 0) {
      loop_.AddTimer(std::chrono::milliseconds(1000),
                     [this] { SweepIdleConnections(); });
    }
    loop_.Run();
  });
  TS_FLIGHT(FlightCategory::kServer, FlightCode::kServerStart, port, 0, "");
  TS_COUNTER_INC("server.starts");
  return Status::OK();
}

void NetServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Cancel whatever the workers are executing so the drain below is quick.
  loop_.RunInLoop([this] {
    for (auto& [fd, conn] : connections_) {
      if (conn->active_trace != nullptr) conn->active_trace->RequestCancel();
    }
  });
  // Admitted statements finish (cancelled or not) and post their
  // completions; the loop is still alive to run them.
  if (workers_ != nullptr) workers_->Shutdown();
  loop_.Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop thread has exited; connection state is safe to touch here.
  TS_FLIGHT(FlightCategory::kServer, FlightCode::kServerStop,
            accepted_.load(std::memory_order_relaxed), 0, "");
  for (auto& [fd, conn] : connections_) conn->closed = true;
  connections_.clear();
  open_connections_.store(0, std::memory_order_relaxed);
  listen_fd_.Reset();
}

ServerStats NetServer::Stats() const {
  ServerStats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_refused = refused_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.requests_rejected = rejected_.load(std::memory_order_relaxed);
  stats.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.open_connections = open_connections_.load(std::memory_order_relaxed);
  stats.inflight = inflight_published_.load(std::memory_order_relaxed);
  return stats;
}

void NetServer::OnAccept() {
  while (true) {
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    const int cfd = ::accept(listen_fd_.get(),
                             reinterpret_cast<sockaddr*>(&peer_addr),
                             &peer_len);
    if (cfd < 0) break;  // EAGAIN / transient: the loop will call back
    if (connections_.size() >= options_.max_connections) {
      ::close(cfd);
      refused_.fetch_add(1, std::memory_order_relaxed);
      TS_COUNTER_INC("server.connections_refused");
      TS_FLIGHT(FlightCategory::kServer, FlightCode::kServerReject, 0,
                static_cast<int64_t>(connections_.size()), "max_connections");
      continue;
    }
    if (!SetNonBlocking(cfd).ok()) {
      ::close(cfd);
      continue;
    }
    SetNoDelay(cfd);
    auto conn = std::make_shared<Connection>(options_.http_limits,
                                             options_.max_frame_payload_bytes);
    conn->fd.Reset(cfd);
    conn->id = next_connection_id_++;
    if (peer_addr.sin_family == AF_INET) {
      char ip[INET_ADDRSTRLEN] = {};
      if (::inet_ntop(AF_INET, &peer_addr.sin_addr, ip, sizeof(ip)) !=
          nullptr) {
        conn->peer =
            std::string(ip) + ":" + std::to_string(ntohs(peer_addr.sin_port));
      }
    }
    conn->last_activity = std::chrono::steady_clock::now();
    connections_[cfd] = conn;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.store(connections_.size(), std::memory_order_relaxed);
    TS_COUNTER_INC("server.connections_accepted");
    TS_GAUGE_SET("server.open_connections",
                 static_cast<int64_t>(connections_.size()));
    TS_FLIGHT(FlightCategory::kServer, FlightCode::kServerAccept,
              static_cast<int64_t>(conn->id),
              static_cast<int64_t>(connections_.size()), "");
    const Status registered = loop_.Register(
        cfd, kEventReadable,
        [this, conn](uint32_t events) { OnConnectionEvent(conn, events); });
    if (!registered.ok()) CloseConnection(conn);
  }
}

void NetServer::OnConnectionEvent(const std::shared_ptr<Connection>& conn,
                                  uint32_t events) {
  if (conn->closed) return;
  if (events & kEventError) {
    CloseConnection(conn);
    return;
  }
  if (events & kEventWritable) {
    FlushWrites(conn);
    if (conn->closed) return;
  }
  if (events & kEventReadable) {
    char buf[16384];
    while (true) {
      const ssize_t n = ::read(conn->fd.get(), buf, sizeof(buf));
      if (n > 0) {
        conn->inbuf.append(buf, static_cast<size_t>(n));
        conn->last_activity = std::chrono::steady_clock::now();
        if (n < static_cast<ssize_t>(sizeof(buf))) break;  // drained
        continue;
      }
      if (n == 0) {  // peer closed; cancel whatever it was waiting for
        CloseConnection(conn);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConnection(conn);
      return;
    }
    ProcessInput(conn);
    if (conn->closed) return;
  }
  UpdateInterest(conn);
}

void NetServer::ProcessInput(const std::shared_ptr<Connection>& conn) {
  if (conn->closed || conn->processing || conn->close_after_flush) return;
  if (conn->proto == Connection::Proto::kUnknown) {
    if (conn->inbuf.size() < 4) return;
    // The TSP1 magic on the wire ("TSP1") is not a prefix of any HTTP
    // method, so 4 bytes decide the protocol unambiguously.
    static const char kMagicBytes[4] = {0x54, 0x53, 0x50, 0x31};
    conn->proto =
        std::memcmp(conn->inbuf.data(), kMagicBytes, 4) == 0
            ? Connection::Proto::kFrame
            : Connection::Proto::kHttp;
  }
  if (conn->proto == Connection::Proto::kHttp) {
    ProcessHttp(conn);
  } else {
    ProcessFrames(conn);
  }
}

void NetServer::ProcessHttp(const std::shared_ptr<Connection>& conn) {
  while (!conn->closed && !conn->processing && !conn->close_after_flush) {
    if (!conn->inbuf.empty()) {
      const size_t consumed =
          conn->http.Feed(conn->inbuf.data(), conn->inbuf.size());
      conn->inbuf.erase(0, consumed);
    }
    if (conn->http.error()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      TS_COUNTER_INC("server.protocol_errors");
      conn->close_after_flush = true;  // before the send: FlushWrites may
                                       // drain fully inside it and close
      SendHttpResponse(conn, conn->http.error_code(), kTextPlain,
                       conn->http.error_reason() + "\n",
                       /*keep_alive=*/false);
      return;
    }
    if (!conn->http.complete()) return;  // wait for more bytes
    RouteHttpRequest(conn);
    if (conn->processing) return;  // parser resets when the statement lands
    if (!conn->closed) conn->http.Reset();
    if (conn->inbuf.empty()) return;
  }
}

void NetServer::ProcessFrames(const std::shared_ptr<Connection>& conn) {
  if (!conn->inbuf.empty()) {
    conn->decoder.Feed(conn->inbuf.data(), conn->inbuf.size());
    conn->inbuf.clear();
  }
  while (!conn->closed && !conn->processing && !conn->close_after_flush) {
    Result<std::optional<Frame>> next = conn->decoder.Next();
    if (!next.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      TS_COUNTER_INC("server.protocol_errors");
      Frame error;
      error.type = FrameType::kError;
      error.payload = next.status().ToString();
      conn->close_after_flush = true;
      SendFrame(conn, error);
      return;
    }
    if (!next.ValueOrDie().has_value()) return;  // truncated: need bytes
    Frame frame = std::move(*next.ValueOrDie());
    switch (frame.type) {
      case FrameType::kPing: {
        Frame pong;
        pong.type = FrameType::kPong;
        pong.payload = std::move(frame.payload);
        SendFrame(conn, pong);
        continue;
      }
      case FrameType::kQuery: {
        WireTraceInfo wire;
        if (frame.has_trace()) {
          wire.hi = frame.trace_hi;
          wire.lo = frame.trace_lo;
          wire.span = frame.span_id;
          wire.set = true;
        }
        DispatchStatement(conn, std::move(frame.payload),
                          frame.has_deadline() ? frame.deadline_millis : 0,
                          wire, /*is_http=*/false, /*http_keep_alive=*/true);
        continue;
      }
      default: {
        // kResult/kError/kPong/kRejected are server-to-client only.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        TS_COUNTER_INC("server.protocol_errors");
        Frame error;
        error.type = FrameType::kError;
        error.payload = "Invalid argument: client sent a server-only frame type";
        conn->close_after_flush = true;
        SendFrame(conn, error);
        return;
      }
    }
  }
}

void NetServer::RouteHttpRequest(const std::shared_ptr<Connection>& conn) {
  const HttpRequest& request = conn->http.request();
  const bool keep_alive = WantsKeepAlive(request);
  if (request.method == "GET") {
    if (!keep_alive) conn->close_after_flush = true;
    auto it = http_handlers_.find(request.target);
    if (it != http_handlers_.end()) {
      HttpResponse response;
      it->second(request, &response);
      SendHttpResponse(conn, response.code, response.content_type,
                       response.body, keep_alive);
    } else if (request.target == "/query") {
      SendHttpResponse(conn, 405, kTextPlain, "POST a statement to /query\n",
                       keep_alive);
    } else if (http_fallback_) {
      HttpResponse response;
      response.code = 404;
      http_fallback_(request, &response);
      SendHttpResponse(conn, response.code, response.content_type,
                       response.body, keep_alive);
    } else {
      SendHttpResponse(conn, 404, kTextPlain, "not found\n", keep_alive);
    }
    return;
  }
  if (request.method == "POST") {
    if (request.target != "/query" || !statement_handler_) {
      if (!keep_alive) conn->close_after_flush = true;
      SendHttpResponse(conn, 404, kTextPlain,
                       "not found; statements go to POST /query\n",
                       keep_alive);
      return;
    }
    uint64_t deadline_ms = 0;
    if (const std::string* header =
            request.FindHeader("X-Tempspec-Deadline-Ms")) {
      if (!ParseU64(*header, &deadline_ms)) {
        if (!keep_alive) conn->close_after_flush = true;
        SendHttpResponse(conn, 400, kTextPlain,
                         "malformed X-Tempspec-Deadline-Ms\n", keep_alive);
        return;
      }
    }
    // Unlike the deadline header, a malformed trace header is not a 400:
    // the request executes under a server-generated id instead.
    WireTraceInfo wire;
    if (const std::string* header = request.FindHeader("X-Tempspec-Trace")) {
      wire.set = ParseTraceHeader(*header, &wire.hi, &wire.lo, &wire.span);
    }
    DispatchStatement(conn, request.body, deadline_ms, wire, /*is_http=*/true,
                      keep_alive);
    return;
  }
  if (!keep_alive) conn->close_after_flush = true;
  SendHttpResponse(conn, 405, kTextPlain, "method not allowed\n", keep_alive);
}

void NetServer::DispatchStatement(const std::shared_ptr<Connection>& conn,
                                  std::string statement, uint64_t deadline_ms,
                                  const WireTraceInfo& wire, bool is_http,
                                  bool http_keep_alive) {
  if (inflight_ >= options_.max_inflight) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    TS_COUNTER_INC("server.requests_rejected");
    TS_FLIGHT(FlightCategory::kServer, FlightCode::kServerReject,
              static_cast<int64_t>(conn->id),
              static_cast<int64_t>(inflight_), "max_inflight");
    const char* message =
        "overloaded: too many in-flight statements, retry later";
    if (is_http) {
      if (!http_keep_alive) conn->close_after_flush = true;
      SendHttpResponse(conn, 503, kTextPlain, std::string(message) + "\n",
                       http_keep_alive);
    } else {
      Frame rejected;
      rejected.type = FrameType::kRejected;
      rejected.payload = message;
      SendFrame(conn, rejected);
    }
    return;
  }

  ++inflight_;
  inflight_published_.store(inflight_, std::memory_order_relaxed);
  TS_GAUGE_SET("server.inflight", static_cast<int64_t>(inflight_));
  requests_.fetch_add(1, std::memory_order_relaxed);
  TS_COUNTER_INC("server.requests");
  TS_FLIGHT(FlightCategory::kServer, FlightCode::kServerRequest,
            static_cast<int64_t>(conn->id),
            static_cast<int64_t>(statement.size()), "");

  // Deadline policy: a client value is clamped to max_deadline_ms; no value
  // falls back to default_deadline_ms (0 = unlimited). Armed at admission,
  // so time spent queued behind other statements counts against it.
  uint64_t effective_ms = deadline_ms;
  if (effective_ms == 0) {
    effective_ms = options_.default_deadline_ms;
  } else if (options_.max_deadline_ms > 0 &&
             effective_ms > options_.max_deadline_ms) {
    effective_ms = options_.max_deadline_ms;
  }
  // The request span starts at admission, so its wall clock covers queue
  // wait, execution, and the response write — the server-side view of the
  // latency the client observes.
  auto trace = std::make_shared<TraceContext>();
  trace->SetServerOwned(true);
  if (wire.set) trace->SetWireTrace(wire.hi, wire.lo, wire.span);
  trace->Begin("server.request");
  trace->SetAttr("protocol", is_http ? "http" : "tsp1");
  if (!conn->peer.empty()) trace->SetAttr("peer", conn->peer);
  if (effective_ms > 0) {
    trace->ArmDeadlineAfterMicros(effective_ms * 1000);
    TS_FLIGHT(FlightCategory::kServer, FlightCode::kServerDeadline,
              static_cast<int64_t>(conn->id),
              static_cast<int64_t>(effective_ms), "");
  }
  conn->processing = true;
  conn->active_trace = trace;

  StatementHandler handler = statement_handler_;
  const auto admitted = std::chrono::steady_clock::now();
  workers_->Submit([this, conn, trace, handler = std::move(handler),
                    statement = std::move(statement), admitted, is_http,
                    http_keep_alive]() mutable {
    const auto picked_up = std::chrono::steady_clock::now();
    trace->AddStage("queue.wait", MicrosBetween(admitted, picked_up));
    Status status;
    std::string payload;
    if (trace->CancellationRequested()) {
      status = Status::DeadlineExceeded(
          "deadline expired while the statement was queued");
    } else if (!handler) {  // frame clients can reach here with no handler
      status = Status::NotImplemented("no statement handler installed");
    } else {
      Result<std::string> result = handler(statement, trace.get());
      if (result.ok()) {
        payload = std::move(result).ValueOrDie();
      } else {
        status = result.status();
      }
    }
    trace->AddStage("execute",
                    MicrosBetween(picked_up, std::chrono::steady_clock::now()));
    loop_.RunInLoop([this, conn, trace, statement = std::move(statement),
                     status = std::move(status), payload = std::move(payload),
                     is_http, http_keep_alive]() {
      CompleteStatement(conn, trace, statement, status, payload, is_http,
                        http_keep_alive);
    });
  });
}

void NetServer::CompleteStatement(const std::shared_ptr<Connection>& conn,
                                  const std::shared_ptr<TraceContext>& trace,
                                  const std::string& statement,
                                  const Status& status,
                                  const std::string& payload, bool is_http,
                                  bool http_keep_alive) {
  --inflight_;
  inflight_published_.store(inflight_, std::memory_order_relaxed);
  TS_GAUGE_SET("server.inflight", static_cast<int64_t>(inflight_));
  conn->processing = false;
  conn->active_trace.reset();
  if (status.IsDeadlineExceeded()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    TS_COUNTER_INC("server.deadline_exceeded");
  }

  const auto respond_start = std::chrono::steady_clock::now();
  const bool disconnected = conn->closed;  // client went away mid-execution
  if (!disconnected) {
    if (is_http) {
      conn->http.Reset();
      if (!http_keep_alive) conn->close_after_flush = true;
      if (status.ok()) {
        SendHttpResponse(conn, 200, kTextPlain, payload, http_keep_alive);
      } else {
        SendHttpResponse(conn, StatusToHttpCode(status), kTextPlain,
                         status.ToString() + "\n", http_keep_alive);
      }
    } else {
      Frame frame;
      frame.type = status.ok() ? FrameType::kResult : FrameType::kError;
      frame.payload = status.ok() ? payload : status.ToString();
      SendFrame(conn, frame);
    }
  }

  // Finalize and record the server-owned request span — the slowlog and
  // retained-trace entry other planes join by trace id. Recorded even for a
  // disconnected client: the work happened.
  if (trace != nullptr && trace->started()) {
    trace->AddStage(
        "respond",
        MicrosBetween(respond_start, std::chrono::steady_clock::now()));
    trace->SetAttr("outcome",
                   status.ok() ? "ok" : StatusCodeToString(status.code()));
    trace->End();
    TS_METRICS_ONLY({ SlowQueryLog::Instance().Record(*trace, statement); });
    RetainedTraces::Instance().Record(*trace);
  }

  if (disconnected || conn->closed) return;
  ProcessInput(conn);  // pipelined requests buffered during execution
  if (!conn->closed) UpdateInterest(conn);
}

void NetServer::SendHttpResponse(const std::shared_ptr<Connection>& conn,
                                 int code, std::string_view content_type,
                                 std::string_view body, bool keep_alive) {
  if (conn->closed) return;
  conn->outbuf += BuildHttpResponse(code, content_type, body, keep_alive);
  FlushWrites(conn);
  if (!conn->closed) UpdateInterest(conn);
}

void NetServer::SendFrame(const std::shared_ptr<Connection>& conn,
                          const Frame& frame) {
  if (conn->closed) return;
  EncodeFrame(frame, &conn->outbuf);
  FlushWrites(conn);
  if (!conn->closed) UpdateInterest(conn);
}

void NetServer::FlushWrites(const std::shared_ptr<Connection>& conn) {
  while (conn->out_offset < conn->outbuf.size()) {
    const ssize_t n =
        ::write(conn->fd.get(), conn->outbuf.data() + conn->out_offset,
                conn->outbuf.size() - conn->out_offset);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      break;
    }
    CloseConnection(conn);  // EPIPE, ECONNRESET, ...
    return;
  }
  if (conn->out_offset == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_offset = 0;
    if (conn->close_after_flush) CloseConnection(conn);
  } else if (conn->out_offset > 1024 * 1024) {
    conn->outbuf.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
}

void NetServer::UpdateInterest(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  const size_t pending_out = conn->outbuf.size() - conn->out_offset;
  // Write-side backpressure with hysteresis: pause reads at the high
  // watermark, resume at half, so a slow reader oscillates gently instead
  // of toggling epoll per byte.
  if (!conn->reading_paused && pending_out >= options_.write_high_watermark) {
    conn->reading_paused = true;
  } else if (conn->reading_paused &&
             pending_out <= options_.write_high_watermark / 2) {
    conn->reading_paused = false;
  }
  // Input-side bound: while a statement executes, buffer at most one more
  // maximal request's worth of pipelined bytes.
  const size_t input_cap =
      std::max(options_.max_frame_payload_bytes + kFrameHeaderBytes,
               options_.http_limits.max_header_bytes +
                   options_.http_limits.max_request_line_bytes +
                   options_.http_limits.max_body_bytes) +
      4096;
  const bool input_saturated =
      conn->processing &&
      conn->inbuf.size() + conn->decoder.buffered_bytes() >= input_cap;

  uint32_t want = 0;
  if (!conn->reading_paused && !input_saturated && !conn->close_after_flush) {
    want |= kEventReadable;
  }
  if (pending_out > 0) want |= kEventWritable;
  if (want != conn->interest) {
    if (loop_.SetInterest(conn->fd.get(), want).ok()) conn->interest = want;
  }
}

void NetServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  // A disconnect is a cancellation: no one is left to read the answer.
  if (conn->active_trace != nullptr) conn->active_trace->RequestCancel();
  loop_.Deregister(conn->fd.get());
  connections_.erase(conn->fd.get());
  conn->fd.Reset();
  open_connections_.store(connections_.size(), std::memory_order_relaxed);
  TS_GAUGE_SET("server.open_connections",
               static_cast<int64_t>(connections_.size()));
}

void NetServer::SweepIdleConnections() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<std::shared_ptr<Connection>> idle;
  for (const auto& [fd, conn] : connections_) {
    if (conn->processing || conn->outbuf.size() > conn->out_offset) continue;
    if (now - conn->last_activity >= limit) idle.push_back(conn);
  }
  for (const auto& conn : idle) CloseConnection(conn);
  loop_.AddTimer(std::chrono::milliseconds(1000),
                 [this] { SweepIdleConnections(); });
}

}  // namespace tempspec
