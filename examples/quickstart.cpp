// Quickstart: declare a specialized temporal relation, store facts, run the
// three temporal query classes, and see a constraint rejection.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "query/executor.h"
#include "timex/calendar.h"
#include "workload/workloads.h"

using namespace tempspec;

int main() {
  // -- 1. Design: an event relation for chemical-plant temperature samples.
  //
  // Sensor readings reach the database 30..120 seconds after they are taken
  // (transmission delay), so the relation is *delayed retroactive* with a
  // 30s bound and *retroactively bounded* with a 120s bound (Section 3.1 of
  // Jensen & Snodgrass, "Temporal Specialization", ICDE 1992).
  auto schema =
      Schema::Make("plant_temperatures",
                   {AttributeDef{"sensor", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey},
                    AttributeDef{"celsius", ValueType::kDouble,
                                 AttributeRole::kTimeVarying}},
                   ValidTimeKind::kEvent, Granularity::Second())
          .ValueOrDie();

  SpecializationSet specs;
  specs.AddEvent(
      EventSpecialization::DelayedRetroactive(Duration::Seconds(30)).ValueOrDie());
  specs.AddEvent(
      EventSpecialization::RetroactivelyBounded(Duration::Seconds(120)).ValueOrDie());

  Catalog catalog;
  RelationOptions options;
  options.schema = schema;
  options.specializations = specs;
  auto clock = std::make_shared<LogicalClock>(
      FromCivil(CivilDateTime{1992, 2, 3, 8, 0, 0, 0}), Duration::Seconds(15));
  options.clock = clock;
  TemporalRelation* plant = catalog.CreateRelation(std::move(options)).ValueOrDie();

  std::cout << "Declared specializations:\n" << specs.ToString() << "\n";

  // -- 2. Store measurements: each is valid ~60s before it is stored.
  for (int i = 0; i < 8; ++i) {
    const TimePoint now = clock->Peek();
    const TimePoint measured_at = now - Duration::Seconds(60);
    plant->InsertEvent(/*sensor=*/1, measured_at, Tuple{int64_t{1}, 20.0 + i})
        .ValueOrDie();
  }

  // -- 3. The constraint engine enforces the declaration intensionally.
  const TimePoint too_fresh = clock->Peek() - Duration::Seconds(5);
  auto rejected = plant->InsertEvent(1, too_fresh, Tuple{int64_t{1}, 99.0});
  std::cout << "Inserting a 5s-old reading (minimum delay is 30s):\n  "
            << rejected.status().ToString() << "\n\n";

  // -- 4. The three query classes of Section 1.
  QueryExecutor exec(*plant);

  std::cout << "Current query: " << exec.Current().size()
            << " facts currently believed.\n";

  const Element& third = plant->elements()[2];
  QueryStats stats;
  auto slice = exec.Timeslice(third.valid.at(), &stats);
  const PlanChoice plan = exec.optimizer().PlanTimeslice(third.valid.at());
  std::cout << "Historical query (timeslice at " << third.valid.at().ToString()
            << "): " << slice.size() << " fact(s), strategy = "
            << ExecutionStrategyToString(plan.strategy) << ",\n  examined "
            << stats.elements_examined << " of " << plant->size()
            << " elements because: " << plan.rationale << "\n";

  auto past = exec.Rollback(third.tt_begin);
  std::cout << "Rollback query (state as stored at " << third.tt_begin.ToString()
            << "): " << past.size() << " fact(s).\n\n";

  // -- 5. Design-time advice derived from the declaration.
  std::cout << catalog.AdviseFor("plant_temperatures").ValueOrDie().ToString();
  return 0;
}
