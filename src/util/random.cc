#include "util/random.h"

#include <cmath>

namespace tempspec {

int64_t Random::Zipf(int64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse-CDF sampling over the (unnormalized) harmonic weights. n is small
  // in our workloads (object populations), so the O(n) walk is acceptable and
  // keeps the generator allocation-free.
  double norm = 0.0;
  for (int64_t i = 0; i < n; ++i) norm += 1.0 / std::pow(i + 1, theta);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(i + 1, theta);
    if (u <= acc) return i;
  }
  return n - 1;
}

std::string Random::NextString(size_t length) {
  std::string out(length, 'a');
  for (auto& c : out) c = static_cast<char>('a' + Uniform(0, 25));
  return out;
}

}  // namespace tempspec
