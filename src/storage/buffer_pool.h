// Buffer pool: fixed set of in-memory frames over a DiskManager, with LRU
// eviction and pin counting.
#ifndef TEMPSPEC_STORAGE_BUFFER_POOL_H_
#define TEMPSPEC_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/result.h"

namespace tempspec {

/// \brief Handle to a pinned page; unpins on destruction.
class PageGuard;

/// \brief LRU-evicting cache of pages.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity);

  /// \brief Pins a page, reading it from disk on miss. Fails when every
  /// frame is pinned.
  Result<PageGuard> Fetch(PageId id);

  /// \brief Allocates a fresh page on disk and pins it.
  Result<PageGuard> Allocate();

  /// \brief Writes all dirty frames back and fsyncs.
  Status FlushAll();

  // Statistics (monotonic since construction).
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  size_t capacity() const { return capacity_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId id = kInvalidPageId;
    Page page;
    int pin_count = 0;
    bool dirty = false;
    std::list<size_t>::iterator lru_pos;  // valid iff pin_count == 0
    bool in_lru = false;
  };

  Result<size_t> GetFrame(PageId id);
  Result<size_t> FindVictim();
  void Unpin(size_t frame_index, bool dirty);

  DiskManager* disk_;
  size_t capacity_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::unordered_map<PageId, size_t> table_;
  std::list<size_t> lru_;  // front = least recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_index, PageId id)
      : pool_(pool), frame_(frame_index), id_(id) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    id_ = other.id_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  ~PageGuard() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }

  const Page& page() const { return pool_->frames_[frame_]->page; }
  /// \brief Mutable access; marks the frame dirty.
  Page* mutable_page() {
    dirty_ = true;
    return &pool_->frames_[frame_]->page;
  }

  void Release() {
    if (pool_) {
      pool_->Unpin(frame_, dirty_);
      pool_ = nullptr;
    }
  }

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId id_ = kInvalidPageId;
  bool dirty_ = false;
};

}  // namespace tempspec

#endif  // TEMPSPEC_STORAGE_BUFFER_POOL_H_
