#include <gtest/gtest.h>

#include "model/element.h"
#include "model/schema.h"
#include "model/tuple.h"
#include "model/value.h"
#include "testing.h"

namespace tempspec {
namespace {

using testing::T;

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_EQ(Value(7).AsInt64(), 7);  // int promotes to int64
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value(T(9)).AsTime(), T(9));
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value(1.0));  // different types
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "'x'");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

SchemaPtr TestSchema() {
  return Schema::Make(
             "employees",
             {AttributeDef{"ssn", ValueType::kInt64,
                           AttributeRole::kTimeInvariantKey},
              AttributeDef{"race", ValueType::kString,
                           AttributeRole::kTimeInvariant},
              AttributeDef{"salary", ValueType::kDouble,
                           AttributeRole::kTimeVarying},
              AttributeDef{"hired_on", ValueType::kTime,
                           AttributeRole::kUserDefinedTime}},
             ValidTimeKind::kInterval, Granularity::Day())
      .ValueOrDie();
}

TEST(SchemaTest, RolesAndLookup) {
  SchemaPtr s = TestSchema();
  EXPECT_EQ(s->num_attributes(), 4u);
  EXPECT_TRUE(s->IsIntervalRelation());
  ASSERT_OK_AND_ASSIGN(size_t idx, s->IndexOf("salary"));
  EXPECT_EQ(idx, 2u);
  EXPECT_FALSE(s->IndexOf("nope").ok());
  EXPECT_EQ(s->IndicesWithRole(AttributeRole::kTimeInvariantKey),
            std::vector<size_t>{0});
  EXPECT_EQ(s->IndicesWithRole(AttributeRole::kUserDefinedTime),
            std::vector<size_t>{3});
  EXPECT_EQ(s->valid_granularity(), Granularity::Day());
}

TEST(SchemaTest, RejectsBadDefinitions) {
  EXPECT_FALSE(Schema::Make("", {}, ValidTimeKind::kEvent).ok());
  EXPECT_FALSE(Schema::Make("r",
                            {AttributeDef{"a", ValueType::kInt64},
                             AttributeDef{"a", ValueType::kInt64}},
                            ValidTimeKind::kEvent)
                   .ok());
  EXPECT_FALSE(
      Schema::Make("r", {AttributeDef{"", ValueType::kInt64}}, ValidTimeKind::kEvent)
          .ok());
  // User-defined times must be TIME-typed (Section 2).
  EXPECT_FALSE(Schema::Make("r",
                            {AttributeDef{"t", ValueType::kInt64,
                                          AttributeRole::kUserDefinedTime}},
                            ValidTimeKind::kEvent)
                   .ok());
}

TEST(TupleTest, ConformanceChecksTypesAndArity) {
  SchemaPtr s = TestSchema();
  Tuple good{int64_t{123456789}, "unknown", 55000.0, testing::Civil(1990, 6, 1)};
  EXPECT_OK(good.Conforms(*s));

  Tuple with_null{int64_t{1}, Value::Null(), 1.0, Value::Null()};
  EXPECT_OK(with_null.Conforms(*s));

  Tuple wrong_type{int64_t{1}, "x", "not a double", testing::Civil(1990, 6, 1)};
  EXPECT_NOT_OK(wrong_type.Conforms(*s));

  Tuple too_short{int64_t{1}};
  EXPECT_NOT_OK(too_short.Conforms(*s));
}

TEST(TupleTest, GetByName) {
  SchemaPtr s = TestSchema();
  Tuple t{int64_t{9}, "x", 100.0, testing::Civil(1990, 6, 1)};
  ASSERT_OK_AND_ASSIGN(Value v, t.Get(*s, "salary"));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 100.0);
  EXPECT_FALSE(t.Get(*s, "bogus").ok());
}

TEST(ValidTimeTest, EventSemantics) {
  const ValidTime v = ValidTime::Event(T(10));
  EXPECT_TRUE(v.is_event());
  EXPECT_EQ(v.at(), T(10));
  EXPECT_TRUE(v.ValidAt(T(10)));
  EXPECT_FALSE(v.ValidAt(T(11)));
}

TEST(ValidTimeTest, IntervalSemantics) {
  ASSERT_OK_AND_ASSIGN(ValidTime v, ValidTime::Interval(T(10), T(20)));
  EXPECT_TRUE(v.is_interval());
  EXPECT_TRUE(v.ValidAt(T(10)));
  EXPECT_TRUE(v.ValidAt(T(19)));
  EXPECT_FALSE(v.ValidAt(T(20)));
  EXPECT_FALSE(ValidTime::Interval(T(20), T(10)).ok());
}

TEST(ElementTest, ExistenceInterval) {
  Element e = testing::MakeEventElement(T(100), T(90));
  EXPECT_TRUE(e.IsCurrent());
  EXPECT_TRUE(e.ExistsAt(T(100)));
  EXPECT_TRUE(e.ExistsAt(T(1000000)));
  EXPECT_FALSE(e.ExistsAt(T(99)));
  e.tt_end = T(200);
  EXPECT_FALSE(e.IsCurrent());
  EXPECT_TRUE(e.ExistsAt(T(199)));
  EXPECT_FALSE(e.ExistsAt(T(200)));  // half-open existence interval
}

TEST(SurrogateGeneratorTest, MonotoneAndRecoverable) {
  SurrogateGenerator gen;
  const uint64_t a = gen.Next();
  const uint64_t b = gen.Next();
  EXPECT_LT(a, b);
  EXPECT_NE(a, kInvalidElementSurrogate);
  gen.EnsureAbove(1000);
  EXPECT_GT(gen.Next(), 1000u);
  // Zero start is corrected away from the invalid surrogate.
  SurrogateGenerator zero(0);
  EXPECT_NE(zero.Next(), kInvalidElementSurrogate);
}

}  // namespace
}  // namespace tempspec
