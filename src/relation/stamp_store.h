// Columnar stamp store: the structure-of-arrays twin of the element array.
//
// Every execution strategy ultimately evaluates a pair of half-plane tests
// over (tt, vt) per candidate element (Figure 1: each pane IS such a pair).
// Walking std::vector<Element> pays an ~88-byte stride and a Tuple pointer
// chase per row just to read four int64 stamps. The StampStore keeps those
// stamps — and only those — in parallel flat arrays, position-aligned with
// relation.elements(), so a scan kernel touches 8–32 contiguous bytes per
// row and the compiler can auto-vectorize the predicate (see
// query/kernels.h). The store is maintained by TemporalRelation at every
// mutation point (insert, logical delete, recovery replay, vacuum rebuild)
// exactly like the partitions and indexes; it is derived state, never
// persisted.
//
// Event stamps are stored as unit-chronon intervals [at, at+1), mirroring
// how the valid-time interval index stores them: the generic half-open
// interval predicate `vt_start < hi && lo < vt_end` then gives exactly the
// event test `lo <= at && at < hi` with no per-row kind branch.
#ifndef TEMPSPEC_RELATION_STAMP_STORE_H_
#define TEMPSPEC_RELATION_STAMP_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/element.h"
#include "timex/time_point.h"

namespace tempspec {

/// \brief Borrowed raw-pointer view of the stamp columns, for scan kernels.
///
/// Validity matches relation.elements(): any mutation of the relation
/// invalidates the pointers (vectors may reallocate).
struct StampColumns {
  const int64_t* tt_start = nullptr;  // insertion transaction time (micros)
  const int64_t* tt_end = nullptr;    // deletion tt; INT64_MAX while current
  const int64_t* vt_start = nullptr;  // valid begin (event: at)
  const int64_t* vt_end = nullptr;    // valid end (event: at + 1)
  const uint64_t* surrogate = nullptr;  // element surrogates, same order
  size_t size = 0;
};

/// \brief Position-aligned columnar copy of every element's four stamps.
class StampStore {
 public:
  /// \brief Appends the stamps of `e` at the next position. Must be called
  /// in element-position order (the relation appends exactly when it
  /// appends to elements_).
  void Append(const Element& e) {
    tt_start_.push_back(e.tt_begin.micros());
    tt_end_.push_back(e.tt_end.micros());
    vt_start_.push_back(e.valid.begin().micros());
    vt_end_.push_back(e.valid.is_event() ? e.valid.at().micros() + 1
                                         : e.valid.end().micros());
    surrogate_.push_back(e.element_surrogate);
  }

  /// \brief Mirrors a logical deletion: closes the existence interval of the
  /// element at `position`.
  void SetTtEnd(size_t position, TimePoint tt) {
    tt_end_[position] = tt.micros();
  }

  /// \brief Drops all columns (vacuum rebuild).
  void Clear() {
    tt_start_.clear();
    tt_end_.clear();
    vt_start_.clear();
    vt_end_.clear();
    surrogate_.clear();
  }

  size_t size() const { return tt_start_.size(); }

  StampColumns columns() const {
    StampColumns c;
    c.tt_start = tt_start_.data();
    c.tt_end = tt_end_.data();
    c.vt_start = vt_start_.data();
    c.vt_end = vt_end_.data();
    c.surrogate = surrogate_.data();
    c.size = tt_start_.size();
    return c;
  }

 private:
  std::vector<int64_t> tt_start_;
  std::vector<int64_t> tt_end_;
  std::vector<int64_t> vt_start_;
  std::vector<int64_t> vt_end_;
  std::vector<uint64_t> surrogate_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_RELATION_STAMP_STORE_H_
