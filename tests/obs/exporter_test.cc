// Telemetry exporter: Prometheus text rendering and the embedded HTTP
// server. The rendering tests work on hand-built snapshots; the server
// tests bind an ephemeral loopback port and speak minimal HTTP/1.0 over a
// raw socket (no client library, mirroring how the server itself is built).
#include "obs/exporter.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing.h"
#include "testing_json.h"

namespace tempspec {
namespace {

using testing::JsonParser;
using testing::ValidJson;

TEST(SanitizeMetricNameTest, MapsToPrometheusCharset) {
  EXPECT_EQ(SanitizeMetricName("tempspec.storage.wal_syncs"),
            "tempspec_storage_wal_syncs");
  EXPECT_EQ(SanitizeMetricName("already_fine:name"), "already_fine:name");
  EXPECT_EQ(SanitizeMetricName("9starts.with-digit"), "_9starts_with_digit");
  EXPECT_EQ(SanitizeMetricName(""), "_");
  EXPECT_EQ(SanitizeMetricName("sp ace/slash"), "sp_ace_slash");
}

TEST(RenderPrometheusTextTest, CountersAndGauges) {
  MetricsSnapshot snap;
  snap.counters["tempspec.a.hits"] = 42;
  snap.gauges["tempspec.b.depth"] = -7;
  const std::string text = RenderPrometheusText(snap);
  EXPECT_NE(text.find("# HELP tempspec_a_hits "), std::string::npos);
  EXPECT_NE(text.find("# TYPE tempspec_a_hits counter\n"), std::string::npos);
  EXPECT_NE(text.find("tempspec_a_hits 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tempspec_b_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("tempspec_b_depth -7\n"), std::string::npos);
}

TEST(RenderPrometheusTextTest, HistogramBucketsAreCumulativeAndClosed) {
  MetricsSnapshot snap;
  HistogramSnapshot h;
  h.count = 6;
  h.sum = 100;
  // Buckets as the registry snapshot produces them: (index, per-bucket count).
  h.buckets = {{1, 2}, {3, 3}, {5, 1}};
  snap.histograms["tempspec.lat"] = h;
  const std::string text = RenderPrometheusText(snap);
  // Cumulative counts at the log2 upper bounds: 2^1-1=1, 2^3-1=7, 2^5-1=31.
  EXPECT_NE(text.find("tempspec_lat_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("tempspec_lat_bucket{le=\"7\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("tempspec_lat_bucket{le=\"31\"} 6\n"), std::string::npos);
  EXPECT_NE(text.find("tempspec_lat_bucket{le=\"+Inf\"} 6\n"), std::string::npos);
  EXPECT_NE(text.find("tempspec_lat_sum 100\n"), std::string::npos);
  EXPECT_NE(text.find("tempspec_lat_count 6\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tempspec_lat histogram\n"), std::string::npos);
}

TEST(RenderPrometheusTextTest, EveryRegisteredMetricAppears) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  reg.GetCounter("exporter_test.counter").Add(3);
  reg.GetGauge("exporter_test.gauge").Set(11);
  reg.GetHistogram("exporter_test.histogram").Observe(9);
  const MetricsSnapshot snap = reg.Scrape();
  const std::string text = RenderPrometheusText(snap);
  for (const auto& [name, value] : snap.counters) {
    (void)value;
    EXPECT_NE(text.find("# TYPE " + SanitizeMetricName(name) + " counter"),
              std::string::npos)
        << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    (void)value;
    EXPECT_NE(text.find("# TYPE " + SanitizeMetricName(name) + " gauge"),
              std::string::npos)
        << name;
  }
  for (const auto& [name, h] : snap.histograms) {
    (void)h;
    EXPECT_NE(text.find("# TYPE " + SanitizeMetricName(name) + " histogram"),
              std::string::npos)
        << name;
  }
}

// -- HTTP server -------------------------------------------------------------

/// Minimal HTTP GET against 127.0.0.1:port; returns the full response.
std::string HttpGet(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

class ExporterServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ExporterOptions options;
    options.port = 0;  // ephemeral
    exporter_ = std::make_unique<TelemetryExporter>(options);
    ASSERT_OK(exporter_->Start());
    ASSERT_TRUE(exporter_->running());
    ASSERT_NE(exporter_->port(), 0);
  }

  std::unique_ptr<TelemetryExporter> exporter_;
};

TEST_F(ExporterServerTest, HealthzServes) {
  const std::string response = HttpGet(exporter_->port(), "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(Body(response), "ok\n");
}

TEST_F(ExporterServerTest, MetricsServesRegisteredMetricsInPrometheusFormat) {
  MetricsRegistry::Instance().GetCounter("exporter_test.http.hits").Add(5);
  const std::string response = HttpGet(exporter_->port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(Body(response).find("exporter_test_http_hits 5"), std::string::npos);
}

TEST_F(ExporterServerTest, VarzServesValidJson) {
  const std::string response = HttpGet(exporter_->port(), "/varz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  std::string body = Body(response);
  if (!body.empty() && body.back() == '\n') body.pop_back();
  EXPECT_OK(ValidJson(body));
}

TEST_F(ExporterServerTest, VarzCarriesTheBuildConfigStamp) {
  const std::string body = Body(HttpGet(exporter_->port(), "/varz"));
  ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                       JsonParser::Parse(body.substr(0, body.find('\n'))));
  ASSERT_TRUE(v.has("build"));
  const testing::JsonValue& build = v.at("build");
  // The stamp must answer "what tree produced these numbers": every
  // compile-time toggle plus sanitizer and compiler identification.
  for (const char* key :
       {"metrics_enabled", "failpoints_enabled", "flightrecorder_enabled",
        "sanitizers", "compiler"}) {
    EXPECT_TRUE(build.has(key)) << key;
  }
}

TEST_F(ExporterServerTest, DebugEventsServesTheFlightRing) {
  TS_FLIGHT(FlightCategory::kWal, FlightCode::kWalAppend, 1, 2, "exporter");
  const std::string response = HttpGet(exporter_->port(), "/debug/events");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  const std::string body = Body(response);
  if (!FlightRecorderCompiledIn() &&
      FlightRecorder::Instance().head() == 0) {
    EXPECT_TRUE(body.empty()) << "compiled-out ring serves an empty page";
    return;
  }
  // Every line is one parseable flight event.
  size_t start = 0;
  size_t lines = 0;
  while (start < body.size()) {
    const size_t nl = body.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                         JsonParser::Parse(body.substr(start, nl - start)));
    EXPECT_TRUE(v.has("seq"));
    EXPECT_TRUE(v.has("code"));
    start = nl + 1;
    ++lines;
  }
  EXPECT_GE(lines, 1u);
}

TEST_F(ExporterServerTest, DebugTracesServesRetainedSpans) {
  TraceContext span;
  span.Begin("exporter.test.span");
  RetainedTraces::Instance().Record(span);
  const std::string response = HttpGet(exporter_->port(), "/debug/traces");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  const std::string body = Body(response);
  bool found = false;
  size_t start = 0;
  while (start < body.size()) {
    const size_t nl = body.find('\n', start);
    ASSERT_NE(nl, std::string::npos);
    ASSERT_OK_AND_ASSIGN(testing::JsonValue v,
                         JsonParser::Parse(body.substr(start, nl - start)));
    EXPECT_TRUE(v.has("trace_id"));
    EXPECT_TRUE(v.has("unix_micros"));
    ASSERT_TRUE(v.has("trace"));
    if (v.at("trace_id").number == std::to_string(span.trace_id())) {
      EXPECT_EQ(v.at("trace").at("span").string, "exporter.test.span");
      found = true;
    }
    start = nl + 1;
  }
  EXPECT_TRUE(found) << "the span recorded above must be served";
}

TEST_F(ExporterServerTest, UnknownPathIs404AndQueryStringsAreStripped) {
  const std::string response = HttpGet(exporter_->port(), "/nope");
  EXPECT_NE(response.find("404"), std::string::npos);
  // The 404 body doubles as endpoint discovery: all five must be listed.
  const std::string body = Body(response);
  for (const char* endpoint :
       {"/metrics", "/varz", "/healthz", "/debug/events", "/debug/traces"}) {
    EXPECT_NE(body.find(endpoint), std::string::npos) << endpoint;
  }
  EXPECT_NE(HttpGet(exporter_->port(), "/healthz?x=1").find("200 OK"),
            std::string::npos);
}

TEST_F(ExporterServerTest, StopIsIdempotentAndDoublePortBindFails) {
  ExporterOptions clash;
  clash.port = exporter_->port();
  TelemetryExporter second(clash);
  EXPECT_NOT_OK(second.Start());
  exporter_->Stop();
  exporter_->Stop();
  EXPECT_FALSE(exporter_->running());
}

/// Sends raw bytes to the exporter and returns the full response (the
/// malformed-request tests speak broken HTTP on purpose).
std::string RawRequest(uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// The exporter inherits the NetServer request limits: a request line past
// the bound is rejected with 431, not buffered without bound (the old
// serial exporter accepted arbitrarily long request lines).
TEST_F(ExporterServerTest, OversizedRequestLineRejectedWith431) {
  const std::string target = "/" + std::string(10000, 'a');
  const std::string response = RawRequest(
      exporter_->port(), "GET " + target + " HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("431"), std::string::npos) << response;
}

TEST_F(ExporterServerTest, OversizedHeaderBlockRejectedWith431) {
  std::string request = "GET /healthz HTTP/1.0\r\n";
  request += "X-Padding: " + std::string(20000, 'b') + "\r\n\r\n";
  const std::string response = RawRequest(exporter_->port(), request);
  EXPECT_NE(response.find("431"), std::string::npos) << response;
}

TEST_F(ExporterServerTest, MalformedRequestLineRejectedWith400) {
  const std::string response =
      RawRequest(exporter_->port(), "COMPLETE GARBAGE\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
}

TEST_F(ExporterServerTest, UnsupportedHttpVersionRejectedWith505) {
  const std::string response =
      RawRequest(exporter_->port(), "GET /healthz HTTP/2.0\r\n\r\n");
  EXPECT_NE(response.find("505"), std::string::npos) << response;
}

TEST_F(ExporterServerTest, NonGetMethodsRejected) {
  const std::string response = RawRequest(
      exporter_->port(),
      "PUT /metrics HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(response.find("405"), std::string::npos) << response;
}

// The old exporter handled connections serially: an idle client blocked
// every scrape behind it. The event-loop server must answer a scrape while
// another connection sits open and silent.
TEST_F(ExporterServerTest, ScrapesAreNotBlockedByAnIdleConnection) {
  const int idle = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(idle, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(exporter_->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(idle, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // The idle connection sends nothing; the scrape must still answer.
  const std::string response = HttpGet(exporter_->port(), "/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  ::close(idle);
}

TEST(ExporterSnapshotTest, PeriodicWriterAppendsValidJsonLines) {
  const std::string path =
      ::testing::TempDir() + "/tempspec_exporter_snapshot.jsonl";
  std::remove(path.c_str());
  ExporterOptions options;
  options.port = 0;
  options.snapshot_path = path;
  options.snapshot_period_ms = 30;
  {
    TelemetryExporter exporter(options);
    ASSERT_OK(exporter.Start());
    // First snapshot is written on startup; wait for at least one more.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_OK_AND_ASSIGN(testing::JsonValue v, JsonParser::Parse(line));
    EXPECT_TRUE(v.is_object());
    EXPECT_TRUE(v.has("unix_micros"));
    EXPECT_TRUE(v.has("metrics"));
  }
  EXPECT_GE(lines, 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tempspec
