// DDL tour: declare a small application schema entirely in the definition
// language, load it, and let the catalog explain the physical design each
// declaration earns.
#include <iostream>

#include "catalog/catalog.h"
#include "catalog/query_lang.h"
#include "lang/ddl.h"
#include "obs/exporter.h"
#include "query/executor.h"
#include "timex/calendar.h"

using namespace tempspec;

int main() {
  // Headless runs are unchanged; with TEMPSPEC_EXPORTER_PORT set the tour
  // doubles as a live scrape target (CI curls /metrics and /healthz off it).
  auto exporter = TelemetryExporter::MaybeStartFromEnv();

  Catalog catalog;
  auto clock = std::make_shared<LogicalClock>(
      FromCivil(CivilDateTime{1992, 2, 3, 0, 0, 0, 0}), Duration::Seconds(30));
  RelationOptions base;
  base.clock = clock;

  const char* statements[] = {
      R"(CREATE EVENT RELATION reactor_samples (
             sensor INT64 KEY,
             kelvin DOUBLE
         ) GRANULARITY 1s
         WITH DEGENERATE, STRICT TEMPORAL REGULAR 10s)",

      R"(CREATE EVENT RELATION plant_temperatures (
             sensor INT64 KEY,
             celsius DOUBLE
         ) GRANULARITY 1s
         WITH DELAYED RETROACTIVE 30s, RETROACTIVELY BOUNDED 120s)",

      R"(CREATE EVENT RELATION payroll_deposits (
             employee INT64 KEY,
             amount DOUBLE
         ) GRANULARITY 1s
         WITH EARLY STRONGLY PREDICTIVELY BOUNDED 3d 7d, VALID REGULAR 1mo)",

      R"(CREATE INTERVAL RELATION assignments (
             employee INT64 KEY,
             project STRING
         ) GRANULARITY 1h
         WITH VT_BEGIN PREDICTIVE,
              STRICT VALID INTERVAL REGULAR 1w,
              CONTIGUOUS PER SURROGATE)",

      R"(CREATE EVENT RELATION bank_postings (
             account INT64 KEY,
             amount DOUBLE
         ) WITH PREDICTIVE DETERMINED BY NEXT(1day, 8h))",
  };

  for (const char* ddl : statements) {
    auto rel = catalog.CreateRelationFromDdl(ddl, base);
    rel.status().Check();
    std::cout << "Registered " << (*rel)->schema().relation_name() << "\n";
  }

  // A statement the validator rejects: the bands contradict.
  auto bad = catalog.CreateRelationFromDdl(
      "CREATE EVENT RELATION impossible (id INT64 KEY) "
      "WITH RETROACTIVE, EARLY PREDICTIVE 3d",
      base);
  std::cout << "\nContradictory declaration:\n  " << bad.status().ToString()
            << "\n\n";

  // The catalog can render every declaration back to canonical DDL...
  TemporalRelation* payroll = catalog.Get("payroll_deposits").ValueOrDie();
  std::cout << "Canonical DDL round-trip:\n"
            << ToDdl(payroll->schema(), payroll->specializations()) << "\n\n";

  // ...and explain the design implications of each.
  std::cout << catalog.Describe();

  // The determined relation computes its valid times: a posting stored at
  // 14:30 is valid at the next 8:00 a.m., and anything else is rejected.
  TemporalRelation* postings = catalog.Get("bank_postings").ValueOrDie();
  clock->SetTo(FromCivil(CivilDateTime{1992, 2, 3, 14, 30, 0, 0}));
  const TimePoint next8am = FromCivil(CivilDateTime{1992, 2, 4, 8, 0, 0, 0});
  auto ok = postings->InsertEvent(1, next8am, Tuple{int64_t{1}, 250.0});
  std::cout << "Posting valid at next 8:00: "
            << (ok.ok() ? "accepted" : ok.status().ToString()) << "\n";
  clock->SetTo(FromCivil(CivilDateTime{1992, 2, 3, 15, 0, 0, 0}));
  auto wrong = postings->InsertEvent(
      1, FromCivil(CivilDateTime{1992, 2, 4, 9, 0, 0, 0}),
      Tuple{int64_t{1}, 250.0});
  std::cout << "Posting valid at 9:00 instead:\n  " << wrong.status().ToString()
            << "\n\n";

  // Query statements close the loop: ingest a few reactor samples and ask
  // the three query classes in text.
  TemporalRelation* reactor = catalog.Get("reactor_samples").ValueOrDie();
  for (int i = 0; i < 6; ++i) {
    clock->SetTo(FromCivil(CivilDateTime{1992, 2, 5, 0, 0, 0, 0}) +
                 Duration::Seconds(10 * i));
    reactor->InsertEvent(1, clock->Peek(), Tuple{int64_t{1}, 550.0 + i}).status().Check();
  }
  for (const char* q : {
           "CURRENT reactor_samples",
           "EXPLAIN TIMESLICE reactor_samples AT '1992-02-05 00:00:30'",
           "EXPLAIN ANALYZE TIMESLICE reactor_samples AT '1992-02-05 00:00:30'",
           "TIMESLICE reactor_samples AT '1992-02-05 00:00:30'",
           "ROLLBACK reactor_samples TO '1992-02-05 00:00:20'",
           "SHOW SPECIALIZATION reactor_samples",
           "SHOW SLOW QUERIES LIMIT 3",
       }) {
    std::cout << "> " << q << "\n"
              << ExecuteQuery(catalog, q).ValueOrDie().ToString() << "\n";
  }

  // With the exporter up, TEMPSPEC_EXPORTER_LINGER_MS keeps the process
  // alive so an external scraper can read the finished tour's registry.
  TelemetryExporter::LingerFromEnv();
  return 0;
}
