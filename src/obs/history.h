// In-process metrics time series: a bounded ring of periodic registry
// snapshots, so "what did this counter look like over the last ten minutes"
// is answerable from the process itself — no external scraper required.
//
// Each sample compresses one MetricsRegistry scrape to the JSON-friendly
// essentials (counter values, gauge values, histogram count/sum/p50/p99) and
// stamps it with wall-clock time. The ring is served as JSONL by
// /metrics/history and `SHOW HISTORY`, and the optional sampler thread
// doubles as the SLO watchdog's heartbeat (tools/tempspec_serve passes the
// watchdog evaluation as the per-sample hook).
//
// Like the slowlog and retained-trace rings this is mutex-guarded: sampling
// happens every few seconds, never on a query path.
#ifndef TEMPSPEC_OBS_HISTORY_H_
#define TEMPSPEC_OBS_HISTORY_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tempspec {

/// \brief One point-in-time digest of the metrics registry.
struct HistorySample {
  uint64_t unix_micros = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  struct HistogramDigest {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
  };
  std::map<std::string, HistogramDigest> histograms;

  /// \brief Single-line JSON: {"unix_micros":N,"counters":{...},
  /// "gauges":{...},"histograms":{"name":{"count":..,"p99":..},...}}.
  std::string ToJson() const;
};

/// \brief Bounded ring of periodic metrics samples.
class MetricsHistory {
 public:
  /// \brief Process-wide instance (fed by the sampler thread, read by
  /// /metrics/history and SHOW HISTORY). Tests use free instances.
  static MetricsHistory& Instance();

  explicit MetricsHistory(size_t capacity = 120) : capacity_(capacity) {}
  ~MetricsHistory() { Stop(); }

  MetricsHistory(const MetricsHistory&) = delete;
  MetricsHistory& operator=(const MetricsHistory&) = delete;

  /// \brief Ring capacity; shrinking drops the oldest samples.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  /// \brief Takes one sample of the process-wide MetricsRegistry now.
  /// Callable from any thread (tests drive the ring without the sampler).
  void SampleOnce();

  /// \brief Starts the background sampler: one SampleOnce() every
  /// `interval_ms`, plus `on_sample` (when set — the SLO watchdog hook)
  /// after each. No-op when already running or interval_ms is 0.
  void Start(uint64_t interval_ms, std::function<void()> on_sample = {});
  /// \brief Stops and joins the sampler thread. Idempotent.
  void Stop();
  bool running() const;
  uint64_t interval_ms() const;

  /// \brief The retained samples, oldest first.
  std::vector<HistorySample> Entries() const;
  /// \brief Samples ever taken (ring may have dropped the oldest).
  uint64_t TotalSamples() const;

  /// \brief The newest `limit` samples as JSONL, oldest first.
  std::string RenderJsonl(size_t limit) const;

  /// \brief Empties the ring and resets the counter (tests).
  void Clear();

 private:
  void Run();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t capacity_;
  uint64_t interval_ms_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
  uint64_t total_samples_ = 0;
  std::function<void()> on_sample_;
  std::vector<HistorySample> ring_;  // oldest first
  std::thread sampler_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_OBS_HISTORY_H_
