// P3 — Network query plane throughput and latency.
//
// Boots the real stack in-process — QueryService (in-memory) behind a
// NetServer on an ephemeral loopback port — and drives it over TCP like a
// client would, so every number includes the full path: socket, protocol
// parse, admission, worker handoff, statement execution, response encode,
// write-back.
//
//   BinaryQueryPipelined  — the headline: one connection, TEMPSPEC_P3_PIPELINE
//                           CURRENT queries in flight back-to-back
//                           (requests_per_sec counter; the acceptance gate
//                           is >= 10k req/s on the binary protocol).
//   BinaryPingPipelined   — same shape, kPing frames: the wire + event-loop
//                           ceiling with zero execution cost.
//   BinaryQuerySequential — one query per round-trip: per-request latency
//                           (the JSON's median/p99 are the latency numbers).
//   BinaryInsertSequential— the write path end to end (statement parse,
//                           single-writer lock, WAL-less in-memory append).
//   HttpQuerySequential   — the same CURRENT over keep-alive HTTP POST, for
//                           the protocol-overhead comparison.
//
// Knobs: TEMPSPEC_P3_ROWS (relation population, default 16),
// TEMPSPEC_P3_PIPELINE (pipeline depth, default 64).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_common.h"
#include "catalog/query_service.h"
#include "net/frame.h"
#include "net/server.h"

using namespace tempspec;
using tempspec::bench::Require;

namespace {

int64_t EnvOr(const char* name, int64_t fallback) {
  const char* env = std::getenv(name);
  const int64_t parsed = env != nullptr ? std::atoll(env) : 0;
  return parsed > 0 ? parsed : fallback;
}

int64_t Rows() {
  static const int64_t n = EnvOr("TEMPSPEC_P3_ROWS", 16);
  return n;
}

int64_t PipelineDepth() {
  static const int64_t n = EnvOr("TEMPSPEC_P3_PIPELINE", 64);
  return n;
}

// Distinct valid time per insert — i seconds past 1992-02-03 00:00:00,
// wrapping within the day so any iteration count stays a legal timestamp.
std::string ValidAt(int64_t i) {
  const int64_t s = i % 86400;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "'1992-02-03 %02d:%02d:%02d'",
                static_cast<int>(s / 3600), static_cast<int>((s / 60) % 60),
                static_cast<int>(s % 60));
  return buf;
}

/// The in-process server under test, shared by every benchmark.
struct ServerUnderTest {
  QueryService service{QueryServiceOptions{}};
  std::unique_ptr<NetServer> server;

  ServerUnderTest() {
    Require(service.Open());
    Require(service
                .Execute(
                    "CREATE EVENT RELATION bench (sensor INT64 KEY, "
                    "v DOUBLE) GRANULARITY 1s",
                    nullptr)
                .status());
    // The write benchmark appends here, so the read benchmarks' `bench`
    // population stays fixed no matter how many insert iterations ran.
    Require(service
                .Execute(
                    "CREATE EVENT RELATION bench_w (sensor INT64 KEY, "
                    "v DOUBLE) GRANULARITY 1s",
                    nullptr)
                .status());
    for (int64_t i = 0; i < Rows(); ++i) {
      Require(service
                  .Execute("INSERT INTO bench OBJECT 1 VALUES (1, " +
                               std::to_string(i) + ".0) VALID AT " +
                               ValidAt(i),
                           nullptr)
                  .status());
    }
    ServerOptions options;
    options.bind_address = "127.0.0.1";
    options.port = 0;
    options.max_inflight = 8;
    options.worker_threads = 2;
    server = std::make_unique<NetServer>(std::move(options));
    server->SetStatementHandler(
        [this](const std::string& statement, TraceContext* trace) {
          return service.Execute(statement, trace);
        });
    Require(server->Start());
  }
};

ServerUnderTest& Server() {
  static ServerUnderTest* s = new ServerUnderTest();
  return *s;
}

/// Blocking loopback client; dies via Require on any socket error so the
/// bench never times a failure path.
class BenchClient {
 public:
  BenchClient() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    Require(fd_ >= 0 ? Status::OK() : Status::IOError("socket"));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(Server().server->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    Require(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0
                ? Status::OK()
                : Status::IOError("connect"));
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      Require(n > 0 ? Status::OK() : Status::IOError("write"));
      sent += static_cast<size_t>(n);
    }
  }

  /// Reads complete frames until `count` have arrived; every frame must be
  /// the expected type.
  void ExpectFrames(int64_t count, FrameType want) {
    int64_t seen = 0;
    while (seen < count) {
      Result<std::optional<Frame>> next = decoder_.Next();
      Require(next.status());
      if (next.ValueOrDie().has_value()) {
        Require(next.ValueOrDie()->type == want
                    ? Status::OK()
                    : Status::Internal("unexpected frame type ",
                                       static_cast<int>(
                                           next.ValueOrDie()->type)));
        ++seen;
        continue;
      }
      char buf[65536];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      Require(n > 0 ? Status::OK() : Status::IOError("read"));
      decoder_.Feed(buf, static_cast<size_t>(n));
    }
  }

  /// One HTTP POST /query round-trip on the (keep-alive) connection.
  void HttpQuery(const std::string& statement) {
    Send("POST /query HTTP/1.1\r\nHost: b\r\nContent-Length: " +
         std::to_string(statement.size()) + "\r\n\r\n" + statement);
    // Headers, then Content-Length body bytes.
    while (http_buf_.find("\r\n\r\n") == std::string::npos) Fill();
    const size_t header_end = http_buf_.find("\r\n\r\n");
    Require(http_buf_.compare(0, 12, "HTTP/1.1 200") == 0
                ? Status::OK()
                : Status::Internal("http error: ",
                                   http_buf_.substr(0, header_end)));
    const size_t at = http_buf_.find("Content-Length:");
    Require(at != std::string::npos && at < header_end
                ? Status::OK()
                : Status::Internal("no Content-Length"));
    const size_t body = header_end + 4 +
                        static_cast<size_t>(std::atoll(
                            http_buf_.c_str() + at + 15));
    while (http_buf_.size() < body) Fill();
    http_buf_.erase(0, body);
  }

 private:
  void Fill() {
    char buf[65536];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    Require(n > 0 ? Status::OK() : Status::IOError("read"));
    http_buf_.append(buf, static_cast<size_t>(n));
  }

  int fd_ = -1;
  FrameDecoder decoder_;
  std::string http_buf_;
};

std::string EncodedQueryBatch(const std::string& statement, int64_t depth) {
  Frame frame;
  frame.type = FrameType::kQuery;
  frame.payload = statement;
  std::string wire;
  for (int64_t i = 0; i < depth; ++i) EncodeFrame(frame, &wire);
  return wire;
}

void BM_BinaryQueryPipelined(benchmark::State& state) {
  BenchClient client;
  const int64_t depth = PipelineDepth();
  const std::string batch = EncodedQueryBatch("CURRENT bench", depth);
  int64_t requests = 0;
  for (auto _ : state) {
    client.Send(batch);
    client.ExpectFrames(depth, FrameType::kResult);
    requests += depth;
  }
  state.SetItemsProcessed(requests);
  state.counters["requests_per_sec"] =
      benchmark::Counter(static_cast<double>(requests),
                         benchmark::Counter::kIsRate);
  state.counters["pipeline_depth"] = static_cast<double>(depth);
  state.counters["rows"] = static_cast<double>(Rows());
}
BENCHMARK(BM_BinaryQueryPipelined)->Unit(benchmark::kMicrosecond);

void BM_BinaryPingPipelined(benchmark::State& state) {
  BenchClient client;
  const int64_t depth = PipelineDepth();
  Frame ping;
  ping.type = FrameType::kPing;
  ping.payload = "p";
  std::string batch;
  for (int64_t i = 0; i < depth; ++i) EncodeFrame(ping, &batch);
  int64_t requests = 0;
  for (auto _ : state) {
    client.Send(batch);
    client.ExpectFrames(depth, FrameType::kPong);
    requests += depth;
  }
  state.SetItemsProcessed(requests);
  state.counters["requests_per_sec"] =
      benchmark::Counter(static_cast<double>(requests),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BinaryPingPipelined)->Unit(benchmark::kMicrosecond);

void BM_BinaryQuerySequential(benchmark::State& state) {
  BenchClient client;
  const std::string one = EncodedQueryBatch("CURRENT bench", 1);
  int64_t requests = 0;
  for (auto _ : state) {
    client.Send(one);
    client.ExpectFrames(1, FrameType::kResult);
    ++requests;
  }
  state.SetItemsProcessed(requests);
  state.counters["requests_per_sec"] =
      benchmark::Counter(static_cast<double>(requests),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BinaryQuerySequential)->Unit(benchmark::kMicrosecond);

void BM_BinaryInsertSequential(benchmark::State& state) {
  BenchClient client;
  int64_t requests = 0;
  for (auto _ : state) {
    client.Send(EncodedQueryBatch(
        "INSERT INTO bench_w OBJECT 2 VALUES (2, 1.0) VALID AT " +
            ValidAt(requests),
        1));
    client.ExpectFrames(1, FrameType::kResult);
    ++requests;
  }
  state.SetItemsProcessed(requests);
  state.counters["requests_per_sec"] =
      benchmark::Counter(static_cast<double>(requests),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BinaryInsertSequential)->Unit(benchmark::kMicrosecond);

void BM_HttpQuerySequential(benchmark::State& state) {
  BenchClient client;
  int64_t requests = 0;
  for (auto _ : state) {
    client.HttpQuery("CURRENT bench");
    ++requests;
  }
  state.SetItemsProcessed(requests);
  state.counters["requests_per_sec"] =
      benchmark::Counter(static_cast<double>(requests),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HttpQuerySequential)->Unit(benchmark::kMicrosecond);

}  // namespace

TEMPSPEC_BENCH_MAIN("p3_server")
