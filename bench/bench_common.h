// Shared helpers for the experiment benches (EXPERIMENTS.md, E1-E9).
//
// Every bench uses TEMPSPEC_BENCH_MAIN("<id>") instead of BENCHMARK_MAIN():
// it behaves identically until `--json [path]` is passed, in which case the
// per-repetition timings are captured through a reporter shim and written as
// BENCH_<id>.json (see bench_json.h for the schema) next to the console
// output.
#ifndef TEMPSPEC_BENCH_BENCH_COMMON_H_
#define TEMPSPEC_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "percentile.h"
#include "query/executor.h"
#include "spec/inference.h"
#include "workload/workloads.h"

namespace tempspec {
namespace bench {

/// \brief Aborts the benchmark on error — benches must not silently measure
/// failure paths.
inline void Require(const Status& status) { status.Check(); }

template <typename T>
T Require(Result<T> result) {
  result.status().Check();
  return std::move(result).ValueOrDie();
}

/// \brief Workload sized from the benchmark's first range argument
/// (total elements ~= state.range(0)).
inline WorkloadConfig ConfigFor(int64_t total_elements, size_t num_objects = 16) {
  WorkloadConfig config;
  config.num_objects = num_objects;
  config.ops_per_object =
      static_cast<size_t>(total_elements) / (num_objects ? num_objects : 1);
  return config;
}

/// \brief The always-available naive plan.
inline PlanChoice FullScanPlan() {
  return PlanChoice{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
}

/// \brief Publishes accumulated QueryStats as per-iteration counters
/// (examined elements, morsels dispatched, wall vs summed per-morsel time).
inline void ReportQueryStats(benchmark::State& state, const QueryStats& stats) {
  using benchmark::Counter;
  state.counters["examined"] =
      Counter(static_cast<double>(stats.elements_examined),
              Counter::kAvgIterations);
  state.counters["results"] =
      Counter(static_cast<double>(stats.results), Counter::kAvgIterations);
  state.counters["morsels"] = Counter(
      static_cast<double>(stats.morsels_executed), Counter::kAvgIterations);
  state.counters["wall_micros"] = Counter(
      static_cast<double>(stats.wall_micros), Counter::kAvgIterations);
  state.counters["cpu_micros"] = Counter(
      static_cast<double>(stats.cpu_micros), Counter::kAvgIterations);
}

/// \brief Console reporter that also captures per-repetition real times so
/// BenchMain can compute median/p99 per benchmark name.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      Sample& s = samples_[run.benchmark_name()];
      ++s.runs;
      s.iterations += static_cast<uint64_t>(run.iterations);
      // Per-iteration real time in nanoseconds, independent of the
      // benchmark's display time unit.
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      s.real_time_ns.push_back(run.real_accumulated_time / iters * 1e9);
      for (const auto& [name, counter] : run.counters) {
        s.counters[name] = counter.value;
      }
      if (order_.empty() || order_.back() != run.benchmark_name()) {
        bool seen = false;
        for (const auto& n : order_) seen = seen || n == run.benchmark_name();
        if (!seen) order_.push_back(run.benchmark_name());
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<BenchResult> Results() const {
    std::vector<BenchResult> out;
    for (const std::string& name : order_) {
      const Sample& s = samples_.at(name);
      BenchResult r;
      r.name = name;
      r.runs = s.runs;
      r.iterations = s.iterations;
      r.real_time_ns_median = SamplePercentile(s.real_time_ns, 0.5);
      r.real_time_ns_p99 = SamplePercentile(s.real_time_ns, 0.99);
      r.counters = s.counters;
      out.push_back(std::move(r));
    }
    return out;
  }

 private:
  struct Sample {
    uint64_t runs = 0;
    uint64_t iterations = 0;
    std::vector<double> real_time_ns;
    std::map<std::string, double> counters;  // last run's values
  };
  std::map<std::string, Sample> samples_;
  std::vector<std::string> order_;
};

/// \brief BENCHMARK_MAIN() replacement with the `--json` capture mode.
inline int BenchMain(const std::string& id, int argc, char** argv) {
  std::string json_path;
  const bool want_json = ExtractJsonFlag(&argc, argv, id, &json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!want_json) {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return WriteBenchJson(json_path, id, reporter.Results()) ? 0 : 1;
}

}  // namespace bench
}  // namespace tempspec

#define TEMPSPEC_BENCH_MAIN(id)                             \
  int main(int argc, char** argv) {                         \
    return ::tempspec::bench::BenchMain(id, argc, argv);    \
  }

#endif  // TEMPSPEC_BENCH_BENCH_COMMON_H_
