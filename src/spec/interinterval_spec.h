// The inter-interval taxonomy (Section 3.4).
//
// Restrictions on the interrelationship of the valid intervals of distinct
// elements of an interval relation:
//
//   globally sequential:     tt < tt'  =>  max(tt, vt_e) <= min(tt', vt_b')
//                            — each interval occurs and is stored before the
//                            next commences.
//   globally non-decreasing: tt < tt'  =>  vt_b <= vt_b'   (start points)
//   globally non-increasing: tt < tt'  =>  vt_e' <= vt_e   (end points)
//   globally contiguous:     the end of each interval coincides with the
//                            start of the next stored interval
//                            (= successive transaction time MEETS)
//   successive transaction time X, for each of Allen's 13 relations X:
//                            elements adjacent in transaction time have valid
//                            intervals related by X ("st-X"); "sti-X" denotes
//                            successive transaction time inverse X.
//
// All properties may be applied per relation or per partition.
//
// Note on the printed definitions: the scan of the paper garbles the
// endpoint superscripts of non-decreasing/non-increasing; we adopt the
// symmetric reading (starts for non-decreasing, ends for non-increasing),
// which makes the Figure 5 edges provable. Both endpoint choices are
// available via OrderingEndpoint.
#ifndef TEMPSPEC_SPEC_INTERINTERVAL_SPEC_H_
#define TEMPSPEC_SPEC_INTERINTERVAL_SPEC_H_

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "allen/allen.h"
#include "model/element.h"
#include "spec/interevent_spec.h"
#include "util/result.h"

namespace tempspec {

/// \brief A (transaction time, valid interval) stamp of one interval element.
struct IntervalStamp {
  TimePoint tt;
  TimeInterval valid;
  ObjectSurrogate partition = 0;
};

/// \brief Extracts interval stamps (anchored transaction time; open deletion
/// anchors are skipped).
std::vector<IntervalStamp> ExtractIntervalStamps(std::span<const Element> elements,
                                                 TransactionAnchor anchor);

enum class IntervalOrderingKind : uint8_t {
  kNonDecreasing,
  kNonIncreasing,
  kSequential,
};

enum class OrderingEndpoint : uint8_t { kBegin, kEnd };

/// \brief Ordering properties over interval stamps.
class IntervalOrderingSpec {
 public:
  IntervalOrderingSpec(IntervalOrderingKind kind,
                       SpecScope scope = SpecScope::kPerRelation)
      : kind_(kind), scope_(scope) {
    endpoint_ = kind == IntervalOrderingKind::kNonIncreasing
                    ? OrderingEndpoint::kEnd
                    : OrderingEndpoint::kBegin;
  }

  IntervalOrderingSpec WithEndpoint(OrderingEndpoint ep) const {
    IntervalOrderingSpec out = *this;
    out.endpoint_ = ep;
    return out;
  }

  IntervalOrderingKind kind() const { return kind_; }
  SpecScope scope() const { return scope_; }
  OrderingEndpoint endpoint() const { return endpoint_; }

  Status CheckStamps(std::span<const IntervalStamp> stamps) const;

  std::string ToString() const;

 private:
  IntervalOrderingKind kind_;
  SpecScope scope_;
  OrderingEndpoint endpoint_;
};

/// \brief "Successive transaction time X": elements adjacent in transaction
/// time (within the scope group) have valid intervals related by the Allen
/// relation X. Globally contiguous is SuccessiveSpec(kMeets).
class SuccessiveSpec {
 public:
  SuccessiveSpec(AllenRelation relation, SpecScope scope = SpecScope::kPerRelation,
                 bool inverse = false)
      : relation_(inverse ? Inverse(relation) : relation),
        display_inverse_(inverse),
        scope_(scope) {}

  /// \brief The paper's "globally contiguous" (st-meets).
  static SuccessiveSpec Contiguous(SpecScope scope = SpecScope::kPerRelation) {
    return SuccessiveSpec(AllenRelation::kMeets, scope);
  }

  AllenRelation relation() const { return relation_; }
  SpecScope scope() const { return scope_; }

  Status CheckStamps(std::span<const IntervalStamp> stamps) const;

  std::string ToString() const;

 private:
  AllenRelation relation_;
  bool display_inverse_;
  SpecScope scope_;
};

/// \brief Incremental checker for interval orderings and successive-X.
class OnlineIntervalChecker {
 public:
  explicit OnlineIntervalChecker(IntervalOrderingSpec spec)
      : ordering_(spec), has_successive_(false), successive_(AllenRelation::kMeets) {}
  explicit OnlineIntervalChecker(SuccessiveSpec spec)
      : has_successive_(true), successive_(spec) {}

  Status Check(const IntervalStamp& stamp) const;
  void Commit(const IntervalStamp& stamp);
  Status OnInsert(const IntervalStamp& stamp) {
    TS_RETURN_NOT_OK(Check(stamp));
    Commit(stamp);
    return Status::OK();
  }

  void Reset() { states_.clear(); }

 private:
  struct State {
    bool has_prev = false;
    TimeInterval prev_valid;
    TimePoint running_max = TimePoint::Min();  // for sequential
  };

  std::optional<IntervalOrderingSpec> ordering_;
  bool has_successive_;
  SuccessiveSpec successive_;
  std::unordered_map<ObjectSurrogate, State> states_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_SPEC_INTERINTERVAL_SPEC_H_
