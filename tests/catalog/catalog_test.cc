#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "testing.h"

namespace tempspec {
namespace {

using testing::T;

SchemaPtr EventSchema(const std::string& name) {
  return Schema::Make(name,
                      {AttributeDef{"id", ValueType::kInt64,
                                    AttributeRole::kTimeInvariantKey}},
                      ValidTimeKind::kEvent, Granularity::Second())
      .ValueOrDie();
}

RelationOptions Options(const std::string& name, SpecializationSet specs = {}) {
  RelationOptions options;
  options.schema = EventSchema(name);
  options.specializations = std::move(specs);
  options.clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  return options;
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  ASSERT_OK_AND_ASSIGN(TemporalRelation * rel, catalog.CreateRelation(Options("a")));
  ASSERT_NE(rel, nullptr);
  EXPECT_TRUE(catalog.CreateRelation(Options("a")).status().IsAlreadyExists());
  ASSERT_OK_AND_ASSIGN(TemporalRelation * got, catalog.Get("a"));
  EXPECT_EQ(got, rel);
  EXPECT_TRUE(catalog.Get("b").status().IsNotFound());
  EXPECT_EQ(catalog.RelationNames(), std::vector<std::string>{"a"});
  ASSERT_OK(catalog.Drop("a"));
  EXPECT_TRUE(catalog.Get("a").status().IsNotFound());
  EXPECT_TRUE(catalog.Drop("a").IsNotFound());
}

TEST(CatalogTest, CreateFromDdl) {
  Catalog catalog;
  RelationOptions base;
  base.clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  ASSERT_OK_AND_ASSIGN(
      TemporalRelation * rel,
      catalog.CreateRelationFromDdl(
          "CREATE EVENT RELATION feed (id INT64 KEY, v DOUBLE) "
          "GRANULARITY 1s WITH DEGENERATE",
          base));
  EXPECT_EQ(rel->schema().relation_name(), "feed");
  EXPECT_EQ(rel->specializations().event_specs()[0].kind(),
            EventSpecKind::kDegenerate);
  // The registered relation is live: the declaration is enforced.
  EXPECT_FALSE(rel->InsertEvent(1, T(5000), Tuple{int64_t{1}, 0.0}).ok());
  // Bad DDL surfaces as a parse error, nothing registered.
  EXPECT_FALSE(catalog.CreateRelationFromDdl("CREATE NONSENSE", base).ok());
  EXPECT_EQ(catalog.RelationNames().size(), 1u);
}

TEST(CatalogTest, CreateValidatesDeclaration) {
  Catalog catalog;
  SpecializationSet bad;
  bad.AddEvent(EventSpecialization::Retroactive());
  bad.AddEvent(EventSpecialization::EarlyPredictive(Duration::Days(1)).ValueOrDie());
  EXPECT_FALSE(catalog.CreateRelation(Options("bad", std::move(bad))).ok());
}

TEST(AdvisorTest, GeneralRelationGetsGeneralAdvice) {
  SchemaPtr schema = EventSchema("r");
  AdvisorReport report = Advise(*schema, SpecializationSet());
  EXPECT_EQ(report.storage, StorageLayout::kBitemporalBacklog);
  EXPECT_EQ(report.stamps, StampMaterialization::kStore);
  EXPECT_EQ(report.index, IndexAdvice::kIntervalIndex);
  EXPECT_EQ(report.encoding, EncodingAdvice::kRaw);
  EXPECT_EQ(report.timeslice_strategy, ExecutionStrategy::kValidIndex);
}

TEST(AdvisorTest, DegenerateGetsAppendOnlyAndNoStamps) {
  // Section 3.1: degenerate relations are advantageously treated as
  // (append-only) rollback relations.
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Degenerate());
  SchemaPtr schema = EventSchema("r");
  AdvisorReport report = Advise(*schema, specs);
  EXPECT_EQ(report.storage, StorageLayout::kAppendOnlyRollback);
  EXPECT_EQ(report.stamps, StampMaterialization::kComputeOnRead);
  EXPECT_EQ(report.index, IndexAdvice::kNone);
  EXPECT_EQ(report.timeslice_strategy, ExecutionStrategy::kRollbackEquivalence);
}

TEST(AdvisorTest, SequentialGetsAppendOnly) {
  SpecializationSet specs;
  specs.AddOrdering(OrderingSpec(OrderingKind::kSequential));
  SchemaPtr schema = EventSchema("r");
  AdvisorReport report = Advise(*schema, specs);
  EXPECT_EQ(report.storage, StorageLayout::kAppendOnlyRollback);
  EXPECT_EQ(report.timeslice_strategy, ExecutionStrategy::kMonotoneBinarySearch);
}

TEST(AdvisorTest, DeterminedDropsStoredStamps) {
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Retroactive().Determined(
      MappingFunction::TruncateThenOffset(Granularity::Hour())));
  SchemaPtr schema = EventSchema("r");
  AdvisorReport report = Advise(*schema, specs);
  EXPECT_EQ(report.stamps, StampMaterialization::kComputeOnRead);
}

TEST(AdvisorTest, RegularGetsDeltaEncoding) {
  SpecializationSet specs;
  specs.AddRegularity(RegularitySpec::Make(RegularityDimension::kTransactionTime,
                                           Duration::Minutes(1))
                          .ValueOrDie());
  SchemaPtr schema = EventSchema("r");
  AdvisorReport report = Advise(*schema, specs);
  EXPECT_EQ(report.encoding, EncodingAdvice::kDeltaUnit);
}

TEST(AdvisorTest, InheritedPropertiesFollowFigure2) {
  SpecializationSet specs;
  specs.AddEvent(
      EventSpecialization::DelayedRetroactive(Duration::Seconds(30)).ValueOrDie());
  SchemaPtr schema = EventSchema("r");
  AdvisorReport report = Advise(*schema, specs);
  // delayed retroactive inherits retroactive, predictively bounded,
  // undetermined, general (Figure 2 ancestors).
  auto has = [&](const std::string& name) {
    return std::find(report.inherited_properties.begin(),
                     report.inherited_properties.end(),
                     name) != report.inherited_properties.end();
  };
  EXPECT_TRUE(has("retroactive"));
  EXPECT_TRUE(has("predictively bounded"));
  EXPECT_TRUE(has("general"));
  EXPECT_FALSE(has("predictive"));
}

TEST(AdvisorTest, RedundantDeclarationsFlagged) {
  SpecializationSet specs;
  specs.AddEvent(
      EventSpecialization::DelayedRetroactive(Duration::Seconds(30)).ValueOrDie());
  specs.AddEvent(EventSpecialization::Retroactive());  // implied by the above
  SchemaPtr schema = EventSchema("r");
  AdvisorReport report = Advise(*schema, specs);
  ASSERT_EQ(report.redundant_declarations.size(), 1u);
  EXPECT_NE(report.redundant_declarations[0].find("retroactive"),
            std::string::npos);
}

TEST(AdvisorTest, BandedRelationSkipsExtraIndex) {
  SpecializationSet specs;
  specs.AddEvent(
      EventSpecialization::StronglyBounded(Duration::Days(5), Duration::Days(2))
          .ValueOrDie());
  SchemaPtr schema = EventSchema("r");
  AdvisorReport report = Advise(*schema, specs);
  EXPECT_EQ(report.index, IndexAdvice::kNone);
  EXPECT_EQ(report.timeslice_strategy, ExecutionStrategy::kTransactionWindow);
}

TEST(CatalogTest, DescribeIncludesAdvice) {
  Catalog catalog;
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Degenerate());
  ASSERT_OK(catalog.CreateRelation(Options("samples", std::move(specs))).status());
  const std::string description = catalog.Describe();
  EXPECT_NE(description.find("samples"), std::string::npos);
  EXPECT_NE(description.find("degenerate"), std::string::npos);
  EXPECT_NE(description.find("append-only"), std::string::npos);
}

TEST(CatalogTest, SchemasSaveAndLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("tempspec_schemas_" + std::to_string(::getpid()) + ".tsql"))
          .string();
  {
    Catalog catalog;
    SpecializationSet specs;
    specs.AddEvent(
        EventSpecialization::DelayedRetroactive(Duration::Seconds(30)).ValueOrDie());
    specs.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
    ASSERT_OK(catalog.CreateRelation(Options("feed", std::move(specs))).status());
    ASSERT_OK(catalog.CreateRelation(Options("audit")).status());
    ASSERT_OK(catalog.SaveSchemas(path));
  }
  Catalog reloaded;
  RelationOptions base;
  base.clock = std::make_shared<LogicalClock>(T(0), Duration::Seconds(1));
  ASSERT_OK_AND_ASSIGN(size_t n, reloaded.LoadSchemas(path, base));
  EXPECT_EQ(n, 2u);
  ASSERT_OK_AND_ASSIGN(TemporalRelation * feed, reloaded.Get("feed"));
  ASSERT_EQ(feed->specializations().event_specs().size(), 1u);
  EXPECT_EQ(feed->specializations().event_specs()[0].kind(),
            EventSpecKind::kDelayedRetroactive);
  EXPECT_EQ(feed->specializations().orderings().size(), 1u);
  // The reloaded relation enforces the reloaded declaration.
  EXPECT_FALSE(feed->InsertEvent(1, T(100), Tuple{int64_t{1}}).ok());
  std::filesystem::remove(path);
  EXPECT_FALSE(reloaded.LoadSchemas("/nonexistent/file").ok());
}

TEST(CatalogTest, AdviseForRegisteredRelation) {
  Catalog catalog;
  SpecializationSet specs;
  specs.AddOrdering(OrderingSpec(OrderingKind::kSequential));
  ASSERT_OK(catalog.CreateRelation(Options("log", std::move(specs))).status());
  ASSERT_OK_AND_ASSIGN(AdvisorReport report, catalog.AdviseFor("log"));
  EXPECT_EQ(report.storage, StorageLayout::kAppendOnlyRollback);
  EXPECT_FALSE(catalog.AdviseFor("nope").ok());
}

}  // namespace
}  // namespace tempspec
