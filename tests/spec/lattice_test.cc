// Machine-checks Figures 2-5: the lattice structure itself, and — for the
// event taxonomy — that every drawn edge is a *provable* implication (band
// containment with representative bounds).
#include "spec/lattice.h"

#include <gtest/gtest.h>

#include <map>

#include "spec/event_spec.h"
#include "testing.h"

namespace tempspec {
namespace {

TEST(LatticeTest, BasicDagOperations) {
  SpecLattice l;
  ASSERT_OK(l.AddEdge("a", "b"));
  ASSERT_OK(l.AddEdge("b", "c"));
  ASSERT_OK(l.AddEdge("a", "d"));
  EXPECT_TRUE(l.IsDescendant("a", "c"));
  EXPECT_TRUE(l.IsDescendant("a", "a"));
  EXPECT_FALSE(l.IsDescendant("c", "a"));
  EXPECT_FALSE(l.IsDescendant("d", "c"));
  EXPECT_EQ(l.Roots(), std::vector<std::string>{"a"});
  EXPECT_EQ(l.AncestorsOf("c"), (std::vector<std::string>{"a", "b"}));
  // Cycles rejected.
  EXPECT_FALSE(l.AddEdge("c", "a").ok());
}

TEST(LatticeTest, TopologicalOrderRespectsEdges) {
  const SpecLattice& l = SpecLattice::EventTaxonomy();
  const auto order = l.TopologicalOrder();
  EXPECT_EQ(order.size(), l.nodes().size());
  std::map<std::string, size_t> pos;
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& e : l.edges()) {
    EXPECT_LT(pos[e.parent], pos[e.child]) << e.parent << " -> " << e.child;
  }
}

// --- Figure 2 ---------------------------------------------------------------

TEST(Figure2Test, StructureMatchesPaper) {
  const SpecLattice& l = SpecLattice::EventTaxonomy();
  EXPECT_EQ(l.Roots(), std::vector<std::string>{"general"});
  // The figure's leaves.
  const auto leaves = l.Leaves();
  EXPECT_EQ(leaves.size(), 3u);
  EXPECT_NE(std::find(leaves.begin(), leaves.end(),
                      "early strongly predictively bounded"),
            leaves.end());
  EXPECT_NE(std::find(leaves.begin(), leaves.end(), "degenerate"), leaves.end());
  EXPECT_NE(std::find(leaves.begin(), leaves.end(),
                      "delayed strongly retroactively bounded"),
            leaves.end());

  // Spot-check the figure's drawn edges.
  EXPECT_TRUE(l.IsDescendant("general", "degenerate"));
  EXPECT_TRUE(l.IsDescendant("retroactively bounded", "predictive"));
  EXPECT_TRUE(l.IsDescendant("predictively bounded", "retroactive"));
  EXPECT_TRUE(l.IsDescendant("retroactive", "delayed retroactive"));
  EXPECT_TRUE(l.IsDescendant("predictive", "early predictive"));
  EXPECT_TRUE(l.IsDescendant("strongly bounded", "degenerate"));
  // And non-edges.
  EXPECT_FALSE(l.IsDescendant("retroactive", "predictive"));
  EXPECT_FALSE(l.IsDescendant("delayed retroactive", "degenerate"));
  EXPECT_FALSE(l.IsDescendant("early predictive", "degenerate"));
}

// Representative instance of each named node, with bounds chosen so every
// drawn edge must hold as band containment (children use bounds within the
// parents' bounds where the edge semantics require it).
std::map<std::string, EventSpecialization> RepresentativeInstances() {
  const Duration d1 = Duration::Seconds(30);
  const Duration d2 = Duration::Seconds(90);
  std::map<std::string, EventSpecialization> m;
  m.emplace("undetermined", EventSpecialization::General());
  m.emplace("retroactive", EventSpecialization::Retroactive());
  m.emplace("delayed retroactive",
            EventSpecialization::DelayedRetroactive(d1).ValueOrDie());
  m.emplace("predictive", EventSpecialization::Predictive());
  m.emplace("early predictive",
            EventSpecialization::EarlyPredictive(d1).ValueOrDie());
  m.emplace("retroactively bounded",
            EventSpecialization::RetroactivelyBounded(d2).ValueOrDie());
  m.emplace("predictively bounded",
            EventSpecialization::PredictivelyBounded(d2).ValueOrDie());
  m.emplace("strongly retroactively bounded",
            EventSpecialization::StronglyRetroactivelyBounded(d2).ValueOrDie());
  m.emplace(
      "delayed strongly retroactively bounded",
      EventSpecialization::DelayedStronglyRetroactivelyBounded(d1, d2).ValueOrDie());
  m.emplace("strongly predictively bounded",
            EventSpecialization::StronglyPredictivelyBounded(d2).ValueOrDie());
  m.emplace(
      "early strongly predictively bounded",
      EventSpecialization::EarlyStronglyPredictivelyBounded(d1, d2).ValueOrDie());
  m.emplace("strongly bounded",
            EventSpecialization::StronglyBounded(d2, d2).ValueOrDie());
  m.emplace("degenerate", EventSpecialization::Degenerate());
  return m;
}

TEST(Figure2Test, EveryEdgeIsProvableBandContainment) {
  const SpecLattice& l = SpecLattice::EventTaxonomy();
  const auto instances = RepresentativeInstances();
  for (const auto& e : l.edges()) {
    if (e.parent == "general") continue;  // everything implies general
    auto pit = instances.find(e.parent);
    auto cit = instances.find(e.child);
    ASSERT_NE(pit, instances.end()) << e.parent;
    ASSERT_NE(cit, instances.end()) << e.child;
    const auto implies = cit->second.Implies(pit->second);
    ASSERT_TRUE(implies.has_value()) << e.parent << " -> " << e.child;
    EXPECT_TRUE(*implies) << e.parent << " -> " << e.child
                          << ": child band " << cit->second.band().ToString()
                          << " not within parent band "
                          << pit->second.band().ToString();
  }
}

TEST(Figure2Test, NoMissingEdgesAmongRepresentatives) {
  // Completeness of the drawn lattice: whenever one representative instance
  // implies another, the lattice must record reachability. (The converse of
  // the soundness test above.)
  const SpecLattice& l = SpecLattice::EventTaxonomy();
  const auto instances = RepresentativeInstances();
  for (const auto& [child_name, child] : instances) {
    for (const auto& [parent_name, parent] : instances) {
      if (child_name == parent_name) continue;
      const auto implies = child.Implies(parent);
      if (implies.has_value() && *implies &&
          !(parent.Implies(child).value_or(false))) {
        EXPECT_TRUE(l.IsDescendant(parent_name, child_name))
            << child_name << " implies " << parent_name
            << " but the lattice lacks the path";
      }
    }
  }
}

// --- Figures 3 and 4 --------------------------------------------------------

TEST(Figure3Test, StructureMatchesPaper) {
  const SpecLattice& l = SpecLattice::InterEventOrderings();
  EXPECT_EQ(l.Roots(), std::vector<std::string>{"general"});
  EXPECT_TRUE(l.IsDescendant("globally non-decreasing", "globally sequential"));
  EXPECT_FALSE(l.IsDescendant("globally non-increasing", "globally sequential"));
  EXPECT_EQ(l.nodes().size(), 4u);
}

TEST(Figure4Test, StructureMatchesPaper) {
  const SpecLattice& l = SpecLattice::InterEventRegularity();
  EXPECT_TRUE(l.IsDescendant("transaction time event regular",
                             "temporal event regular"));
  EXPECT_TRUE(
      l.IsDescendant("valid time event regular", "temporal event regular"));
  EXPECT_TRUE(l.IsDescendant("transaction time event regular",
                             "strict transaction time event regular"));
  EXPECT_TRUE(l.IsDescendant("temporal event regular",
                             "strict temporal event regular"));
  EXPECT_TRUE(l.IsDescendant("strict valid time event regular",
                             "strict temporal event regular"));
  // Strictness does not cross dimensions.
  EXPECT_FALSE(l.IsDescendant("strict transaction time event regular",
                              "strict valid time event regular"));
  EXPECT_EQ(l.Leaves(), std::vector<std::string>{"strict temporal event regular"});
}

// --- Figure 5 ---------------------------------------------------------------

TEST(Figure5Test, StructureMatchesPaper) {
  const SpecLattice& l = SpecLattice::InterIntervalTaxonomy();
  EXPECT_EQ(l.Roots(), std::vector<std::string>{"general"});
  // 13 st-X nodes + general + 2 orderings + sequential.
  EXPECT_EQ(l.nodes().size(), 17u);
  EXPECT_TRUE(l.HasNode("globally contiguous (st-meets)"));
  EXPECT_TRUE(
      l.IsDescendant("globally non-decreasing", "globally contiguous (st-meets)"));
  EXPECT_TRUE(l.IsDescendant("globally non-increasing", "st-met-by"));
  EXPECT_TRUE(l.IsDescendant("st-before", "globally sequential"));
  EXPECT_TRUE(l.IsDescendant("globally non-decreasing", "st-before"));
  // st-contains forces both orderings.
  EXPECT_TRUE(l.IsDescendant("globally non-decreasing", "st-contains"));
  EXPECT_TRUE(l.IsDescendant("globally non-increasing", "st-contains"));
  // st-during forces neither.
  EXPECT_FALSE(l.IsDescendant("globally non-decreasing", "st-during"));
  EXPECT_FALSE(l.IsDescendant("globally non-increasing", "st-during"));
}

TEST(Figure5Test, AssertedEdgesAreMarked) {
  const SpecLattice& l = SpecLattice::InterIntervalTaxonomy();
  size_t asserted = 0;
  for (const auto& e : l.edges()) {
    if (e.kind == SpecLattice::EdgeKind::kAsserted) {
      ++asserted;
      EXPECT_EQ(e.parent, "st-before");
      EXPECT_EQ(e.child, "globally sequential");
    }
  }
  EXPECT_EQ(asserted, 1u);
}

}  // namespace
}  // namespace tempspec
