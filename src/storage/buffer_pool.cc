#include "storage/buffer_pool.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace tempspec {

BufferPool::BufferPool(DiskManager* disk, size_t capacity)
    : disk_(disk), capacity_(capacity == 0 ? 1 : capacity) {}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  TS_ASSIGN_OR_RETURN(size_t frame, GetFrame(id));
  return PageGuard(this, frame, id);
}

Result<PageGuard> BufferPool::Allocate() {
  TS_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  return Fetch(id);
}

Result<size_t> BufferPool::GetFrame(PageId id) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    ++hits_;
    TS_COUNTER_INC("storage.buffer_pool.hits");
    Frame& f = *frames_[it->second];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return it->second;
  }
  ++misses_;
  TS_COUNTER_INC("storage.buffer_pool.misses");

  size_t index;
  if (frames_.size() < capacity_) {
    frames_.push_back(std::make_unique<Frame>());
    index = frames_.size() - 1;
  } else {
    TS_ASSIGN_OR_RETURN(index, FindVictim());
    Frame& victim = *frames_[index];
    if (victim.dirty) {
      TS_RETURN_NOT_OK(disk_->WritePage(victim.id, victim.page));
    }
    table_.erase(victim.id);
    ++evictions_;
    TS_COUNTER_INC("storage.buffer_pool.evictions");
    TS_FLIGHT(FlightCategory::kBufferPool, FlightCode::kEviction, victim.id,
              victim.dirty ? 1 : 0, "");
  }

  Frame& f = *frames_[index];
  TS_RETURN_NOT_OK(disk_->ReadPage(id, &f.page));
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_lru = false;
  table_[id] = index;
  return index;
}

Result<size_t> BufferPool::FindVictim() {
  if (lru_.empty()) {
    return Status::Internal("buffer pool exhausted: all ", capacity_,
                            " frames are pinned");
  }
  const size_t index = lru_.front();
  lru_.pop_front();
  frames_[index]->in_lru = false;
  return index;
}

void BufferPool::Unpin(size_t frame_index, bool dirty) {
  Frame& f = *frames_[frame_index];
  f.dirty = f.dirty || dirty;
  if (--f.pin_count == 0) {
    lru_.push_back(frame_index);
    f.lru_pos = std::prev(lru_.end());
    f.in_lru = true;
  }
}

Status BufferPool::FlushAll() {
  for (auto& frame : frames_) {
    if (frame->id != kInvalidPageId && frame->dirty) {
      TS_RETURN_NOT_OK(disk_->WritePage(frame->id, frame->page));
      frame->dirty = false;
    }
  }
  return disk_->Sync();
}

}  // namespace tempspec
