// Binary serialization of model objects for the storage layer.
//
// Little-endian, length-prefixed encoding. The format is self-contained per
// record: a decoder never needs the schema to skip a record, only to
// interpret attribute values.
#ifndef TEMPSPEC_STORAGE_SERDE_H_
#define TEMPSPEC_STORAGE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "model/element.h"
#include "util/result.h"

namespace tempspec {

/// \brief Appends fixed-width and length-prefixed fields to a buffer.
class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutString(std::string_view s);  // u32 length prefix
  void PutTimePoint(TimePoint tp) { PutI64(tp.micros()); }

 private:
  std::string* out_;
};

/// \brief Reads fields sequentially; all getters fail cleanly at end of input.
class Decoder {
 public:
  explicit Decoder(std::string_view in) : in_(in) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<TimePoint> GetTimePoint();

  size_t remaining() const { return in_.size(); }
  bool exhausted() const { return in_.empty(); }

 private:
  Status Need(size_t n) const;

  std::string_view in_;
};

/// \brief Serializes a Value (type tag + payload).
void EncodeValue(const Value& v, Encoder* enc);
Result<Value> DecodeValue(Decoder* dec);

/// \brief Serializes a Tuple (count + values).
void EncodeTuple(const Tuple& t, Encoder* enc);
Result<Tuple> DecodeTuple(Decoder* dec);

/// \brief Serializes a full Element.
void EncodeElement(const Element& e, Encoder* enc);
Result<Element> DecodeElement(Decoder* dec);

/// \brief CRC32 (IEEE polynomial) used by the WAL to detect torn writes.
uint32_t Crc32(std::string_view data);

}  // namespace tempspec

#endif  // TEMPSPEC_STORAGE_SERDE_H_
