#include "query/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "obs/metrics.h"
#include "query/kernels.h"

namespace tempspec {

namespace {

void Count(QueryStats* stats, uint64_t examined, uint64_t probes = 0) {
  if (stats == nullptr) return;
  stats->elements_examined += examined;
  stats->index_probes += probes;
}

/// \brief Records the scan kernel a query actually ran (which can differ
/// from the planned one when a columnar precondition fails): trace attribute
/// for EXPLAIN ANALYZE, per-kernel registry counter for /metrics.
void RecordKernel(TraceContext* trace, ScanKernel kernel) {
  const char* token = ScanKernelToToken(kernel);
  if (trace != nullptr) trace->SetAttr("kernel", token);
  TS_METRICS_ONLY({
    MetricsRegistry::Instance()
        .GetCounter(std::string("executor.kernel.") + token)
        .Increment();
  });
}

uint64_t MicrosBetween(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

/// \brief Adds wall-clock time to stats->wall_micros on scope exit.
class StatsTimer {
 public:
  explicit StatsTimer(QueryStats* stats) : stats_(stats) {
    if (stats_) start_ = std::chrono::steady_clock::now();
  }
  ~StatsTimer() {
    if (stats_ == nullptr) return;
    stats_->wall_micros +=
        MicrosBetween(start_, std::chrono::steady_clock::now());
  }

 private:
  QueryStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Per-query observation scope: routes stats, populates the trace
/// span, and publishes registry metrics on exit.
///
/// Declared before the StatsTimer in every entry point, so the timer's
/// destructor finalizes wall_micros before this scope reads the deltas. When
/// the caller passed no QueryStats but a trace is attached (or metrics are
/// compiled in), a scope-local QueryStats collects the counters instead.
class QueryScope {
 public:
  QueryScope(const TemporalRelation& relation, TraceContext* trace,
             const char* span_name, QueryStats* caller_stats)
      : trace_(trace), span_name_(span_name) {
    if (trace_ != nullptr) trace_->Begin(span_name);
    if (caller_stats != nullptr) {
      stats_ = caller_stats;
      baseline_ = *caller_stats;
    } else if (trace_ != nullptr || MetricsCompiledIn()) {
      stats_ = &local_;
    }
    if (stats_ != nullptr) {
      if (const BufferPool* pool = relation.backlog().buffer_pool()) {
        pool_ = pool;
        pages_before_ = pool->hits() + pool->misses();
      }
    }
  }

  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

  /// \brief Stats target for this query: the caller's, a scope-local one
  /// when observation needs counters anyway, or nullptr.
  QueryStats* stats() const { return stats_; }

  /// \brief Records the optimizer's choice for the span and the registry.
  void SetPlan(const PlanChoice& plan) {
    strategy_token_ = ExecutionStrategyToToken(plan.strategy);
    if (trace_ != nullptr) trace_->SetAttr("plan", plan.rationale);
  }
  void SetStrategyToken(const char* token) { strategy_token_ = token; }

  ~QueryScope() {
    if (stats_ == nullptr) return;
    QueryStats d = *stats_;
    d.elements_examined -= baseline_.elements_examined;
    d.index_probes -= baseline_.index_probes;
    d.results -= baseline_.results;
    d.wall_micros -= baseline_.wall_micros;
    d.cpu_micros -= baseline_.cpu_micros;
    d.morsels_executed -= baseline_.morsels_executed;
    d.rows_scanned -= baseline_.rows_scanned;
    d.rows_matched -= baseline_.rows_matched;
    d.scan_aborts -= baseline_.scan_aborts;
    const uint64_t pages_touched =
        pool_ == nullptr ? 0 : pool_->hits() + pool_->misses() - pages_before_;

    if (trace_ != nullptr) {
      if (strategy_token_ != nullptr) {
        trace_->SetAttr("strategy", strategy_token_);
      }
      trace_->AddCounter("elements_examined", d.elements_examined);
      trace_->AddCounter("index_probes", d.index_probes);
      trace_->AddCounter("results", d.results);
      trace_->AddCounter("morsels_executed", d.morsels_executed);
      trace_->AddCounter("cpu_micros", d.cpu_micros);
      trace_->AddCounter("rows_scanned", d.rows_scanned);
      trace_->AddCounter("rows_matched", d.rows_matched);
      trace_->AddCounter("pages_touched", pages_touched);
      if (d.scan_aborts > 0) {
        trace_->AddCounter("scan_aborts", d.scan_aborts);
        trace_->SetAttr("cancelled", "true");
      }
      trace_->End();
    }

    TS_METRICS_ONLY({
      MetricsRegistry& reg = MetricsRegistry::Instance();
      reg.GetCounter(std::string("executor.") + span_name_).Increment();
      if (strategy_token_ != nullptr) {
        reg.GetCounter(std::string("executor.strategy.") + strategy_token_)
            .Increment();
      }
      TS_COUNTER_INC("executor.queries");
      TS_COUNTER_ADD("executor.elements_examined", d.elements_examined);
      TS_COUNTER_ADD("executor.elements_returned", d.results);
      TS_COUNTER_ADD("executor.index_probes", d.index_probes);
      TS_COUNTER_ADD("executor.morsels", d.morsels_executed);
      TS_COUNTER_ADD("executor.rows_scanned", d.rows_scanned);
      TS_COUNTER_ADD("executor.rows_matched", d.rows_matched);
      TS_COUNTER_ADD("executor.scan_aborts", d.scan_aborts);
      TS_HISTOGRAM_OBSERVE("executor.query_wall_micros", d.wall_micros);
    });
  }

 private:
  TraceContext* trace_;
  const char* span_name_;
  const char* strategy_token_ = nullptr;
  QueryStats* stats_ = nullptr;
  QueryStats local_;
  QueryStats baseline_;
  const BufferPool* pool_ = nullptr;
  uint64_t pages_before_ = 0;
};

}  // namespace

template <typename PosAt, typename Pred>
std::vector<uint64_t> QueryExecutor::CollectMatches(size_t count,
                                                    const PosAt& pos_at,
                                                    const Pred& pred,
                                                    QueryStats* stats) const {
  const std::span<const Element> elements = relation_.elements();
  ThreadPool* pool = options_.pool;
  const size_t grain = options_.morsel_size == 0 ? 1 : options_.morsel_size;
  const bool parallel =
      pool != nullptr && pool->size() > 1 && count > grain &&
      optimizer_.ShouldParallelize(count, options_.parallel_cutoff);
  TraceContext* const trace = options_.trace;
  std::vector<uint64_t> out;
  if (!parallel) {
    std::chrono::steady_clock::time_point scan_start;
    if (stats) scan_start = std::chrono::steady_clock::now();
    size_t scanned = count;
    if (trace == nullptr) {
      for (size_t i = 0; i < count; ++i) {
        const uint64_t pos = pos_at(i);
        if (pred(elements[pos])) out.push_back(pos);
      }
    } else {
      // With a trace attached, cancellation is polled once per grain-sized
      // chunk — the serial mirror of the per-morsel checks below, so a
      // deadline stops a long serial scan within one morsel too.
      size_t base = 0;
      for (; base < count; base += grain) {
        if (trace->CancellationRequested()) break;
        const size_t stop = std::min(count, base + grain);
        for (size_t i = base; i < stop; ++i) {
          const uint64_t pos = pos_at(i);
          if (pred(elements[pos])) out.push_back(pos);
        }
      }
      scanned = std::min(base, count);
      if (stats && base < count) {
        stats->scan_aborts += (count - base + grain - 1) / grain;
      }
    }
    if (stats && count > 0) {
      stats->morsels_executed += 1;
      stats->cpu_micros +=
          MicrosBetween(scan_start, std::chrono::steady_clock::now());
      stats->rows_scanned += scanned;
      stats->rows_matched += out.size();
    }
    return out;
  }

  // Morsel-parallel: workers claim contiguous candidate chunks and fill
  // per-morsel buffers; concatenating the buffers in morsel order makes the
  // output identical to the serial loop above. Per-morsel scan durations
  // accumulate into cpu_micros — the summed cross-worker time whose gap to
  // wall_micros is the parallel speedup.
  const size_t morsels = (count + grain - 1) / grain;
  std::vector<std::vector<uint64_t>> parts(morsels);
  std::atomic<uint64_t> cpu_micros{0};
  std::atomic<uint64_t> skipped_rows{0};
  std::atomic<uint64_t> aborts{0};
  pool->ParallelFor(count, grain,
                    [&](size_t morsel, size_t begin, size_t end) {
                      if (trace != nullptr && trace->CancellationRequested()) {
                        aborts.fetch_add(1, std::memory_order_relaxed);
                        skipped_rows.fetch_add(end - begin,
                                               std::memory_order_relaxed);
                        return;
                      }
                      std::chrono::steady_clock::time_point morsel_start;
                      if (stats) morsel_start = std::chrono::steady_clock::now();
                      std::vector<uint64_t>& part = parts[morsel];
                      for (size_t i = begin; i < end; ++i) {
                        const uint64_t pos = pos_at(i);
                        if (pred(elements[pos])) part.push_back(pos);
                      }
                      if (stats) {
                        cpu_micros.fetch_add(
                            MicrosBetween(morsel_start,
                                          std::chrono::steady_clock::now()),
                            std::memory_order_relaxed);
                      }
                    });
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out.reserve(total);
  for (const auto& part : parts) out.insert(out.end(), part.begin(), part.end());
  if (stats) {
    stats->morsels_executed += morsels;
    stats->cpu_micros += cpu_micros.load(std::memory_order_relaxed);
    stats->rows_scanned += count - skipped_rows.load(std::memory_order_relaxed);
    stats->rows_matched += total;
    stats->scan_aborts += aborts.load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<uint64_t> QueryExecutor::CollectColumnar(
    ScanKernel kernel, size_t first, size_t last, int64_t lo_micros,
    int64_t hi_micros, int64_t as_of_micros, QueryStats* stats) const {
  const StampColumns cols = relation_.stamps().columns();
  const size_t count = last - first;
  ThreadPool* pool = options_.pool;
  const size_t grain = options_.morsel_size == 0 ? 1 : options_.morsel_size;
  const bool parallel =
      pool != nullptr && pool->size() > 1 && count > grain &&
      optimizer_.ShouldParallelize(count, options_.parallel_cutoff);
  TraceContext* const trace = options_.trace;
  std::vector<uint64_t> out;
  if (!parallel) {
    std::chrono::steady_clock::time_point scan_start;
    if (stats) scan_start = std::chrono::steady_clock::now();
    size_t scanned = count;
    if (trace == nullptr) {
      KernelScan(kernel, cols, first, last, lo_micros, hi_micros, as_of_micros,
                 &out);
    } else {
      // Chunked kernel invocations concatenate exactly like the per-morsel
      // calls below, buying a cancellation poll per grain rows.
      size_t base = 0;
      for (; base < count; base += grain) {
        if (trace->CancellationRequested()) break;
        const size_t stop = std::min(count, base + grain);
        KernelScan(kernel, cols, first + base, first + stop, lo_micros,
                   hi_micros, as_of_micros, &out);
      }
      scanned = std::min(base, count);
      if (stats && base < count) {
        stats->scan_aborts += (count - base + grain - 1) / grain;
      }
    }
    if (stats && count > 0) {
      stats->morsels_executed += 1;
      stats->cpu_micros +=
          MicrosBetween(scan_start, std::chrono::steady_clock::now());
      stats->rows_scanned += scanned;
      stats->rows_matched += out.size();
    }
    return out;
  }

  // Same morsel decomposition as CollectMatches: each morsel runs the kernel
  // over its contiguous block into a private buffer (the drained selection
  // bitmap), and buffers concatenate in morsel order — byte-identical to the
  // serial kernel at any thread count.
  const size_t morsels = (count + grain - 1) / grain;
  std::vector<std::vector<uint64_t>> parts(morsels);
  std::atomic<uint64_t> cpu_micros{0};
  std::atomic<uint64_t> skipped_rows{0};
  std::atomic<uint64_t> aborts{0};
  pool->ParallelFor(count, grain,
                    [&](size_t morsel, size_t begin, size_t end) {
                      if (trace != nullptr && trace->CancellationRequested()) {
                        aborts.fetch_add(1, std::memory_order_relaxed);
                        skipped_rows.fetch_add(end - begin,
                                               std::memory_order_relaxed);
                        return;
                      }
                      std::chrono::steady_clock::time_point morsel_start;
                      if (stats) morsel_start = std::chrono::steady_clock::now();
                      KernelScan(kernel, cols, first + begin, first + end,
                                 lo_micros, hi_micros, as_of_micros,
                                 &parts[morsel]);
                      if (stats) {
                        cpu_micros.fetch_add(
                            MicrosBetween(morsel_start,
                                          std::chrono::steady_clock::now()),
                            std::memory_order_relaxed);
                      }
                    });
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out.reserve(total);
  for (const auto& part : parts) out.insert(out.end(), part.begin(), part.end());
  if (stats) {
    stats->morsels_executed += morsels;
    stats->cpu_micros += cpu_micros.load(std::memory_order_relaxed);
    stats->rows_scanned += count - skipped_rows.load(std::memory_order_relaxed);
    stats->rows_matched += total;
    stats->scan_aborts += aborts.load(std::memory_order_relaxed);
  }
  return out;
}

ResultSet QueryExecutor::ExecutePlan(const PlanChoice& plan, TimePoint lo,
                                     TimePoint hi,
                                     std::optional<TimePoint> as_of,
                                     QueryStats* stats) const {
  TraceContext::StageScope scan_stage(options_.trace, "scan");
  const std::span<const Element> elements = relation_.elements();
  // Belief filter: current queries require an open existence interval;
  // as-of queries require existence at the given transaction time.
  const auto matches = [lo, hi, as_of](const Element& e) {
    if (as_of.has_value() ? !e.ExistsAt(*as_of) : !e.IsCurrent()) return false;
    if (e.valid.is_event()) {
      const TimePoint vt = e.valid.at();
      return lo <= vt && vt < hi;
    }
    return e.valid.begin() < hi && lo < e.valid.end();
  };

  // Columnar dispatch: a plan that names a kernel runs it over the
  // StampStore, provided the candidate range is contiguous in position
  // space. The columns are position-aligned with elements() by construction;
  // the cheap size check guards that invariant rather than trusting it.
  const int64_t klo = lo.micros();
  const int64_t khi = hi.micros();
  const int64_t kasof = as_of.has_value() ? as_of->micros() : kCurrentAsOf;
  const bool columnar_ready =
      plan.kernel != ScanKernel::kRowAtATime &&
      relation_.stamps().size() == elements.size();
  ScanKernel kernel_used = ScanKernel::kRowAtATime;

  std::vector<uint64_t> positions;
  switch (plan.strategy) {
    case ExecutionStrategy::kFullScan: {
      Count(stats, elements.size());
      if (columnar_ready) {
        // kMonotone assumes its valid-range tests were pre-applied by
        // MonotoneBounds; on an unbounded scan only the generic predicate
        // is complete.
        kernel_used = plan.kernel == ScanKernel::kMonotone
                          ? ScanKernel::kGeneric
                          : plan.kernel;
        positions = CollectColumnar(kernel_used, 0, elements.size(), klo, khi,
                                    kasof, stats);
      } else {
        positions = CollectMatches(
            elements.size(), [](size_t i) { return static_cast<uint64_t>(i); },
            matches, stats);
      }
      break;
    }

    case ExecutionStrategy::kValidIndex: {
      // Overlapping() returns positions already ascending (contract of
      // IntervalIndex), so the probe result needs no per-query sort. Probe
      // results are non-contiguous, so this path stays row-at-a-time.
      std::vector<uint64_t> candidates =
          relation_.valid_index().Overlapping(lo, hi);
      Count(stats, candidates.size(), 1);
      positions = CollectMatches(
          candidates.size(), [&](size_t i) { return candidates[i]; }, matches,
          stats);
      break;
    }

    case ExecutionStrategy::kRollbackEquivalence:
    case ExecutionStrategy::kTransactionWindow: {
      // The declared specialization guarantees every match was stored inside
      // the transaction-time window; scan only those positions via the
      // append-only transaction index (its values are insertion-ordered, so
      // candidate order is position order).
      const AppendOnlyIndex& idx = relation_.transaction_index();
      const size_t begin = idx.LowerBound(plan.tt_window.begin());
      const size_t end = plan.tt_window.end().IsMax()
                             ? idx.size()
                             : idx.LowerBound(plan.tt_window.end());
      const size_t count = end > begin ? end - begin : 0;
      Count(stats, count, 1);
      // The engine appends position j as the j-th index value, so the
      // candidate window is the identity range [begin, end) — which is what
      // makes the columnar kernel applicable. The endpoint check guards that
      // invariant in O(1); any mismatch falls back to the positional walk.
      const bool identity_range =
          count > 0 && idx.ValueAt(begin) == begin &&
          idx.ValueAt(end - 1) == end - 1;
      if (columnar_ready && identity_range) {
        kernel_used = plan.kernel;
        positions =
            CollectColumnar(plan.kernel, begin, end, klo, khi, kasof, stats);
      } else {
        positions = CollectMatches(
            count, [&](size_t i) { return idx.ValueAt(begin + i); }, matches,
            stats);
      }
      break;
    }

    case ExecutionStrategy::kMonotoneBinarySearch: {
      // Valid times are non-decreasing in insertion order: binary search for
      // the matching sub-range, then scan only existence. The search runs on
      // the flat vt_start column when the columnar path is up (identical
      // bounds: for events the column stores valid.at()).
      size_t lo_pos = 0;
      size_t hi_pos = 0;
      if (columnar_ready) {
        const auto bounds = MonotoneBounds(relation_.stamps().columns(), klo, khi);
        lo_pos = bounds.first;
        hi_pos = bounds.second;
      } else {
        auto vt_of = [&](size_t i) { return elements[i].valid.at(); };
        size_t a = 0, b = elements.size();
        while (a < b) {
          const size_t mid = a + (b - a) / 2;
          if (vt_of(mid) < lo) {
            a = mid + 1;
          } else {
            b = mid;
          }
        }
        lo_pos = a;
        a = lo_pos;
        b = elements.size();
        while (a < b) {
          const size_t mid = a + (b - a) / 2;
          if (vt_of(mid) < hi) {
            a = mid + 1;
          } else {
            b = mid;
          }
        }
        hi_pos = a;
      }
      Count(stats, hi_pos - lo_pos, 1);
      if (columnar_ready) {
        kernel_used = ScanKernel::kMonotone;
        positions = CollectColumnar(ScanKernel::kMonotone, lo_pos, hi_pos, klo,
                                    khi, kasof, stats);
      } else {
        positions = CollectMatches(
            hi_pos - lo_pos,
            [lo_pos](size_t i) { return static_cast<uint64_t>(lo_pos + i); },
            matches, stats);
      }
      break;
    }
  }

  RecordKernel(options_.trace, kernel_used);
  if (stats) stats->results += positions.size();
  return ResultSet(elements, std::move(positions));
}

// -- Zero-copy interface ------------------------------------------------------

ResultSet QueryExecutor::CurrentSet(QueryStats* stats) const {
  return ExistenceScan("query.current", kCurrentAsOf, stats);
}

ResultSet QueryExecutor::RollbackSet(TimePoint tt, QueryStats* stats) const {
  return ExistenceScan("query.rollback", tt.micros(), stats);
}

ResultSet QueryExecutor::ExistenceScan(const char* span_name,
                                       int64_t as_of_micros,
                                       QueryStats* stats) const {
  // Current and rollback queries share one shape: a full scan whose
  // predicate reads only the existence columns (no valid-time test at all) —
  // the existence_columnar kernel, with kCurrentAsOf selecting open
  // intervals. The Element walk remains as the guard fallback.
  QueryScope scope(relation_, options_.trace, span_name, stats);
  scope.SetStrategyToken(
      ExecutionStrategyToToken(ExecutionStrategy::kFullScan));
  stats = scope.stats();
  StatsTimer timer(stats);
  TraceContext::StageScope scan_stage(options_.trace, "scan");
  const std::span<const Element> elements = relation_.elements();
  Count(stats, elements.size());
  std::vector<uint64_t> positions;
  if (relation_.stamps().size() == elements.size()) {
    RecordKernel(options_.trace, ScanKernel::kExistence);
    positions = CollectColumnar(ScanKernel::kExistence, 0, elements.size(), 0,
                                0, as_of_micros, stats);
  } else {
    RecordKernel(options_.trace, ScanKernel::kRowAtATime);
    const TimePoint tt = TimePoint::FromMicros(as_of_micros);
    positions = CollectMatches(
        elements.size(), [](size_t i) { return static_cast<uint64_t>(i); },
        [tt, as_of_micros](const Element& e) {
          return as_of_micros == kCurrentAsOf ? e.IsCurrent() : e.ExistsAt(tt);
        },
        stats);
  }
  if (stats) stats->results += positions.size();
  return ResultSet(elements, std::move(positions));
}

ResultSet QueryExecutor::TimesliceSet(TimePoint vt, QueryStats* stats) const {
  PlanChoice plan;
  {
    TraceContext::StageScope plan_stage(options_.trace, "plan");
    plan = optimizer_.PlanTimeslice(vt);
  }
  return TimesliceSetWith(plan, vt, stats);
}

ResultSet QueryExecutor::TimesliceSetWith(const PlanChoice& plan, TimePoint vt,
                                          QueryStats* stats) const {
  QueryScope scope(relation_, options_.trace, "query.timeslice", stats);
  scope.SetPlan(plan);
  stats = scope.stats();
  StatsTimer timer(stats);
  return ExecutePlan(plan, vt, TimePoint::FromMicros(vt.micros() + 1),
                     std::nullopt, stats);
}

ResultSet QueryExecutor::ValidRangeSet(TimePoint lo, TimePoint hi,
                                       QueryStats* stats) const {
  PlanChoice plan;
  {
    TraceContext::StageScope plan_stage(options_.trace, "plan");
    plan = optimizer_.PlanValidRange(lo, hi);
  }
  return ValidRangeSetWith(plan, lo, hi, stats);
}

ResultSet QueryExecutor::ValidRangeSetWith(const PlanChoice& plan, TimePoint lo,
                                           TimePoint hi,
                                           QueryStats* stats) const {
  QueryScope scope(relation_, options_.trace, "query.valid_range", stats);
  scope.SetPlan(plan);
  stats = scope.stats();
  StatsTimer timer(stats);
  return ExecutePlan(plan, lo, hi, std::nullopt, stats);
}

ResultSet QueryExecutor::TimesliceAsOfSet(TimePoint vt, TimePoint tt,
                                          QueryStats* stats) const {
  // The optimizer's strategies bound where matches were *inserted*; logical
  // deletion never moves an insertion, so the same plan applies with the
  // existence filter swapped from IsCurrent() to ExistsAt(tt).
  PlanChoice plan;
  {
    TraceContext::StageScope plan_stage(options_.trace, "plan");
    plan = optimizer_.PlanTimeslice(vt);
  }
  QueryScope scope(relation_, options_.trace, "query.timeslice_as_of", stats);
  scope.SetPlan(plan);
  stats = scope.stats();
  StatsTimer timer(stats);
  return ExecutePlan(plan, vt, TimePoint::FromMicros(vt.micros() + 1), tt,
                     stats);
}

// -- Materializing adapters ---------------------------------------------------

std::vector<Element> QueryExecutor::Current(QueryStats* stats) const {
  return CurrentSet(stats).Materialize(options_.pool);
}

std::vector<Element> QueryExecutor::Rollback(TimePoint tt,
                                             QueryStats* stats) const {
  if (relation_.snapshots() != nullptr) {
    // The snapshot/differential cache replays the backlog in O(suffix); it
    // also reproduces the historical representation (deletion stamps still
    // open at tt), which a position view over the final store cannot.
    QueryScope scope(relation_, options_.trace, "query.rollback", stats);
    scope.SetStrategyToken("snapshot_replay");
    stats = scope.stats();
    StatsTimer timer(stats);
    TraceContext::StageScope scan_stage(options_.trace, "snapshot_replay");
    std::vector<Element> out = relation_.StateAt(tt, options_.pool);
    Count(stats, out.size());
    if (stats) stats->results += out.size();
    return out;
  }
  return RollbackSet(tt, stats).Materialize(options_.pool);
}

std::vector<Element> QueryExecutor::Timeslice(TimePoint vt,
                                              QueryStats* stats) const {
  return TimesliceSet(vt, stats).Materialize(options_.pool);
}

std::vector<Element> QueryExecutor::TimesliceWith(const PlanChoice& plan,
                                                  TimePoint vt,
                                                  QueryStats* stats) const {
  return TimesliceSetWith(plan, vt, stats).Materialize(options_.pool);
}

std::vector<Element> QueryExecutor::ValidRange(TimePoint lo, TimePoint hi,
                                               QueryStats* stats) const {
  return ValidRangeSet(lo, hi, stats).Materialize(options_.pool);
}

std::vector<Element> QueryExecutor::ValidRangeWith(const PlanChoice& plan,
                                                   TimePoint lo, TimePoint hi,
                                                   QueryStats* stats) const {
  return ValidRangeSetWith(plan, lo, hi, stats).Materialize(options_.pool);
}

std::vector<Element> QueryExecutor::TimesliceAsOf(TimePoint vt, TimePoint tt,
                                                  QueryStats* stats) const {
  return TimesliceAsOfSet(vt, tt, stats).Materialize(options_.pool);
}

}  // namespace tempspec
