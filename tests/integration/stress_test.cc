// Larger-scale integration: every scenario workload at tens of thousands of
// elements, with full re-validation, strategy-equivalence sampling, and
// snapshot-consistency checks. Keeps runtime in seconds while exercising
// volumes the unit tests do not.
#include <gtest/gtest.h>

#include "query/executor.h"
#include "spec/inference.h"
#include "testing.h"
#include "workload/workloads.h"

namespace tempspec {
namespace {

WorkloadConfig BigConfig() {
  WorkloadConfig config;
  config.num_objects = 32;
  config.ops_per_object = 512;  // 16 384 elements per scenario
  config.snapshot_interval = 1024;
  return config;
}

void CheckStrategyEquivalence(TemporalRelation* rel, size_t stride) {
  QueryExecutor exec(*rel);
  PlanChoice scan{ExecutionStrategy::kFullScan, TimeInterval::All(), ""};
  for (size_t i = 3; i < rel->size(); i += stride) {
    const Element& probe = rel->elements()[i];
    const TimePoint vt = probe.valid.is_event() ? probe.valid.at()
                                                : probe.valid.begin();
    const auto fast = exec.Timeslice(vt);
    const auto slow = exec.TimesliceWith(scan, vt);
    ASSERT_EQ(fast.size(), slow.size()) << "probe " << i;
  }
}

TEST(StressTest, ProcessMonitoringAtScale) {
  const WorkloadConfig config = BigConfig();
  ASSERT_OK_AND_ASSIGN(
      auto scenario,
      MakeProcessMonitoring(config, Duration::Seconds(30), Duration::Seconds(120),
                            Duration::Minutes(1)));
  ASSERT_OK(GenerateProcessMonitoring(config, Duration::Seconds(30),
                                      Duration::Seconds(120), Duration::Minutes(1),
                                      &scenario));
  ASSERT_EQ(scenario->size(), 16384u);
  ASSERT_OK(scenario->CheckExtension());
  CheckStrategyEquivalence(scenario.relation.get(), 997);
}

TEST(StressTest, DegenerateAtScaleWithSnapshots) {
  const WorkloadConfig config = BigConfig();
  ASSERT_OK_AND_ASSIGN(auto scenario,
                       MakeDegenerateMonitoring(config, Duration::Seconds(10)));
  ASSERT_OK(GenerateDegenerateMonitoring(config, Duration::Seconds(10), &scenario));
  ASSERT_OK(scenario->CheckExtension());
  CheckStrategyEquivalence(scenario.relation.get(), 1499);
  // Snapshot-backed rollback equals a manual scan at sampled stamps.
  ASSERT_NE(scenario->snapshots(), nullptr);
  for (size_t i = 100; i < scenario->size(); i += 3001) {
    const TimePoint tt = scenario->elements()[i].tt_begin;
    size_t expected = 0;
    for (const Element& e : scenario->elements()) {
      if (e.ExistsAt(tt)) ++expected;
    }
    EXPECT_EQ(scenario->StateAt(tt).size(), expected);
  }
}

TEST(StressTest, AssignmentsIntervalChainsAtScale) {
  WorkloadConfig config = BigConfig();
  config.num_objects = 16;
  config.ops_per_object = 1024;
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeAssignments(config));
  ASSERT_OK(GenerateAssignments(config, &scenario));
  ASSERT_EQ(scenario->size(), 16384u);
  ASSERT_OK(scenario->CheckExtension());
  // Every life-line is a gap-free weekly chain.
  for (ObjectSurrogate object : scenario->Objects()) {
    const auto lifeline = scenario->PartitionOf(object);
    ASSERT_EQ(lifeline.size(), 1024u);
    for (size_t i = 1; i < lifeline.size(); ++i) {
      ASSERT_EQ(lifeline[i - 1]->valid.end(), lifeline[i]->valid.begin());
    }
  }
}

TEST(StressTest, InferenceScalesAndStaysExact) {
  const WorkloadConfig config = BigConfig();
  ASSERT_OK_AND_ASSIGN(auto scenario, MakeAccounting(config));
  ASSERT_OK(GenerateAccounting(config, &scenario));
  const RelationProfile profile =
      InferProfile(scenario->elements(), ValidTimeKind::kEvent,
                   scenario->schema().valid_granularity());
  EXPECT_EQ(profile.element_count, 16384u);
  EXPECT_EQ(profile.event.classified, EventSpecKind::kStronglyBounded);
  // The inferred declaration re-admits the whole extension.
  ASSERT_OK_AND_ASSIGN(EventSpecialization inferred,
                       SpecFromProfile(profile.event));
  SpecializationSet specs;
  specs.AddEvent(inferred);
  ConstraintChecker checker(specs, scenario->schema().valid_granularity());
  EXPECT_OK(checker.CheckExtension(scenario->elements()));
}

}  // namespace
}  // namespace tempspec
