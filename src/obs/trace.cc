#include "obs/trace.h"

#include <algorithm>

#include "obs/metrics.h"

namespace tempspec {

namespace {
uint64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
             .count()));
}
}  // namespace

void TraceContext::Begin(std::string name) {
  name_ = std::move(name);
  started_ = true;
  ended_ = false;
  wall_micros_ = 0;
  start_ = std::chrono::steady_clock::now();
}

void TraceContext::End() {
  if (!started_ || ended_) return;
  ended_ = true;
  wall_micros_ = MicrosSince(start_);
}

void TraceContext::SetAttr(const std::string& key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(key, std::move(value));
}

void TraceContext::AddCounter(const std::string& key, uint64_t n) {
  for (auto& [k, v] : counters_) {
    if (k == key) {
      v += n;
      return;
    }
  }
  counters_.emplace_back(key, n);
}

uint64_t TraceContext::counter(const std::string& key) const {
  for (const auto& [k, v] : counters_) {
    if (k == key) return v;
  }
  return 0;
}

const std::string& TraceContext::attr(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return kEmpty;
}

void TraceContext::AddStage(std::string name, uint64_t micros) {
  stages_.push_back(TraceStage{std::move(name), micros});
}

TraceContext::StageScope::StageScope(TraceContext* ctx, std::string name)
    : ctx_(ctx), name_(std::move(name)) {
  if (ctx_ != nullptr) start_ = std::chrono::steady_clock::now();
}

TraceContext::StageScope::~StageScope() {
  if (ctx_ != nullptr) ctx_->AddStage(std::move(name_), MicrosSince(start_));
}

std::string TraceContext::ToJson() const {
  // A span being serialized is done; finalize the clock without forcing
  // every caller to remember End().
  const_cast<TraceContext*>(this)->End();

  std::string out = "{\"span\":\"" + JsonEscape(name_) + "\"";
  out += ",\"wall_micros\":" + std::to_string(wall_micros_);
  out += ",\"attrs\":{";
  bool first = true;
  for (const auto& [k, v] : attrs_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  out += "},\"counters\":{";
  first = true;
  for (const auto& [k, v] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(k) + "\":" + std::to_string(v);
  }
  out += "},\"stages\":[";
  first = true;
  for (const TraceStage& s : stages_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(s.name) +
           "\",\"micros\":" + std::to_string(s.micros) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace tempspec
