// tempspec_simulate: seven-tenant production traffic simulator with SLO
// gates and hostile-scenario harness.
//
// Maps the paper's seven applications onto seven concurrently-driven
// relations of one live tempspec_serve daemon (spawned from --serve-bin),
// mixing HTTP and TSP1 tenants, closed-loop and paced arrival, per-tenant
// deadline budgets and read/write mixes. After the run every tenant's
// client-side ledger is reconciled against the server: CURRENT counts must
// land inside the acked-insert/delete bounds, and (metrics builds, no
// restarts) the scraped server.requests / server.requests_rejected counters
// must match the clients' reply counts exactly, widened only by
// transport-ambiguous sends.
//
// Hostile scenarios behind flags:
//   --scenario-drift         the ledger tenant starts violating its declared
//                            STRONGLY BOUNDED band a third into the run; the
//                            drift monitor must flip SHOW SPECIALIZATION to
//                            DRIFTED and EXPLAIN must fall back to the
//                            row-at-a-time kernel (metrics builds).
//   --scenario-crash         SIGKILL the daemon at peak load halfway
//                            through, restart on the same data dir; tenants
//                            reconnect and every acked write must still be
//                            readable afterwards.
//   --scenario-cold-restart  graceful stop + restart at the end; measures
//                            time from exec to the first successful CURRENT
//                            and re-verifies that no element moved.
//
// Health plane (metrics builds): the daemon is spawned with --slo declaring
// a generous p99 objective for every tenant relation and --history-ms so the
// sampler feeds /metrics/history and the SLO watchdog. The simulator scrapes
// /debug/health mid-run and after the run, cross-checks the server's
// per-relation verdicts against the client-side latency ledgers (a tenant
// whose client p99 is inside the objective must read "ok" server-side), and
// in the drift scenario asserts the {relation=ledger,kind=row_at_a_time}
// labeled series appears only after the optimizer fell back. A post-run
// probe statement also proves the trace join: the control client's
// X-Tempspec-Trace id must show up in the server's /debug/traces retention.
//
// Emits a schema-v2 BENCH_p4_simulator.json (--json) that
// tools/check_bench_json.py validates, with per-tenant latency percentiles
// and reconciliation counters. Exit status is the SLO gate: nonzero on any
// reconciliation failure, failed scenario assertion, or --gate-p99-ms
// violation.
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/percentile.h"
#include "net/client.h"
#include "workload/tenant_driver.h"
#include "workload/workloads.h"

namespace tempspec {
namespace {

struct SimOptions {
  std::string serve_bin;
  std::string data_dir;
  std::string host = "127.0.0.1";
  std::string json_path = "BENCH_p4_simulator.json";
  int duration_s = 30;
  uint64_t seed = 42;
  uint64_t max_ops = 0;  // per tenant; 0 = duration-bound
  bool scenario_drift = false;
  bool scenario_crash = false;
  bool scenario_cold_restart = false;
  double gate_p99_ms = 0;
  int max_inflight = 64;
  int workers = 0;  // 0 = daemon default
  int think_us = 2000;
  uint64_t deadline_ms = 5000;
  /// Health plane: the daemon samples its metrics registry (and re-evaluates
  /// the SLO watchdog) every this many ms; 0 disables the sampler.
  uint64_t history_ms = 250;
  /// Declared per-tenant p99 objective passed to the daemon as --slo. Set
  /// generously above a healthy run's p99 so server and client verdicts must
  /// both read "ok"; 0 disables the declarations and the health assertions.
  double slo_p99_ms = 2000;
  /// Built in SimulateMain from the seven tenant relations ("ledger=2000,...").
  std::string slo_spec;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --serve-bin=PATH --data-dir=DIR [options]\n"
      "  --duration-s=N          run length (default 30)\n"
      "  --seed=N                tenant RNG seed (default 42)\n"
      "  --max-ops=N             per-tenant op cap for deterministic runs\n"
      "  --json=PATH             result file (default BENCH_p4_simulator.json)\n"
      "  --gate-p99-ms=X         fail if any tenant write p99 exceeds X ms\n"
      "  --deadline-ms=N         per-statement deadline budget (default 5000)\n"
      "  --think-us=N            closed-loop think time (default 2000)\n"
      "  --max-inflight=N        daemon admission limit (default 64)\n"
      "  --workers=N             daemon worker threads (default: daemon's)\n"
      "  --history-ms=N          daemon metrics sampling period (default 250,\n"
      "                          0 disables the history ring + SLO watchdog)\n"
      "  --slo-p99-ms=X          declared per-tenant p99 objective (default\n"
      "                          2000; 0 skips SLO declarations)\n"
      "  --scenario-drift        ledger tenant drifts out of its declaration\n"
      "  --scenario-crash        SIGKILL + recovery at peak load\n"
      "  --scenario-cold-restart measure graceful restart-to-first-read\n",
      argv0);
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

bool ParseOptions(int argc, char** argv, SimOptions* options) {
  if (const char* env = std::getenv("TEMPSPEC_SERVE_BIN")) {
    options->serve_bin = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "serve-bin", &v)) {
      options->serve_bin = v;
    } else if (ParseFlag(arg, "data-dir", &v)) {
      options->data_dir = v;
    } else if (ParseFlag(arg, "host", &v)) {
      options->host = v;
    } else if (ParseFlag(arg, "json", &v)) {
      options->json_path = v;
    } else if (ParseFlag(arg, "duration-s", &v)) {
      options->duration_s = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "seed", &v)) {
      options->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "max-ops", &v)) {
      options->max_ops = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "gate-p99-ms", &v)) {
      options->gate_p99_ms = std::atof(v.c_str());
    } else if (ParseFlag(arg, "deadline-ms", &v)) {
      options->deadline_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "think-us", &v)) {
      options->think_us = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "max-inflight", &v)) {
      options->max_inflight = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "workers", &v)) {
      options->workers = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "history-ms", &v)) {
      options->history_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "slo-p99-ms", &v)) {
      options->slo_p99_ms = std::atof(v.c_str());
    } else if (arg == "--scenario-drift") {
      options->scenario_drift = true;
    } else if (arg == "--scenario-crash") {
      options->scenario_crash = true;
    } else if (arg == "--scenario-cold-restart") {
      options->scenario_cold_restart = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (options->serve_bin.empty() || options->data_dir.empty()) {
    Usage(argv[0]);
    return false;
  }
  return true;
}

/// Spawns, kills, and restarts the daemon; publishes its coordinates into
/// the shared SimEndpoint the tenants poll.
class DaemonController {
 public:
  DaemonController(const SimOptions& options, SimEndpoint* endpoint)
      : options_(options), endpoint_(endpoint) {
    portfile_ = options_.data_dir + "/.portfile";
  }

  ~DaemonController() {
    if (pid_ > 0) Kill(SIGKILL);
  }

  bool Start() {
    std::remove(portfile_.c_str());
    endpoint_->port.store(0, std::memory_order_release);
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      const std::string data_arg = "--data-dir=" + options_.data_dir;
      const std::string port_arg = "--portfile=" + portfile_;
      const std::string inflight_arg =
          "--max-inflight=" + std::to_string(options_.max_inflight);
      std::vector<const char*> argv = {options_.serve_bin.c_str(), "--port=0",
                                       data_arg.c_str(), port_arg.c_str(),
                                       inflight_arg.c_str()};
      const std::string workers_arg =
          "--workers=" + std::to_string(options_.workers);
      if (options_.workers > 0) argv.push_back(workers_arg.c_str());
      const std::string history_arg =
          "--history-ms=" + std::to_string(options_.history_ms);
      if (options_.history_ms > 0) argv.push_back(history_arg.c_str());
      const std::string slo_arg = "--slo=" + options_.slo_spec;
      if (!options_.slo_spec.empty()) argv.push_back(slo_arg.c_str());
      argv.push_back(nullptr);
      ::execv(options_.serve_bin.c_str(),
              const_cast<char* const*>(argv.data()));
      _exit(127);
    }
    // Wait for the portfile the daemon writes after binding.
    int port = 0;
    for (int tries = 0; tries < 2000; ++tries) {
      std::ifstream in(portfile_);
      if (in >> port && port > 0) break;
      port = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (port <= 0) return false;
    ++restarts_observed_;
    endpoint_->generation.fetch_add(1, std::memory_order_release);
    endpoint_->port.store(port, std::memory_order_release);
    return true;
  }

  void Kill(int signo) {
    if (pid_ <= 0) return;
    endpoint_->port.store(0, std::memory_order_release);
    ::kill(pid_, signo);
    int wstatus = 0;
    ::waitpid(pid_, &wstatus, 0);
    pid_ = -1;
  }

  uint16_t port() const {
    return static_cast<uint16_t>(endpoint_->port.load());
  }
  /// Start() invocations so far (1 = never restarted).
  int starts() const { return restarts_observed_; }

 private:
  SimOptions options_;
  SimEndpoint* endpoint_;
  std::string portfile_;
  pid_t pid_ = -1;
  int restarts_observed_ = 0;
};

/// Extracts N from a body containing "N element(s)"; -1 when absent.
int64_t ElementCount(const std::string& body) {
  const size_t at = body.find(" element(s)");
  if (at == std::string::npos) return -1;
  size_t start = at;
  while (start > 0 &&
         std::isdigit(static_cast<unsigned char>(body[start - 1]))) {
    --start;
  }
  if (start == at) return -1;
  return std::atoll(body.substr(start, at - start).c_str());
}

/// Parses "<name> <value>" out of a Prometheus scrape; -1 when absent.
int64_t MetricValue(const std::string& scrape, const std::string& name) {
  size_t pos = 0;
  while ((pos = scrape.find(name, pos)) != std::string::npos) {
    const bool line_start = pos == 0 || scrape[pos - 1] == '\n';
    const size_t after = pos + name.size();
    if (line_start && after < scrape.size() && scrape[after] == ' ') {
      return std::atoll(scrape.c_str() + after + 1);
    }
    pos = after;
  }
  return -1;
}

/// Extracts the server's total-window SLO verdict ("ok"/"violated") for one
/// relation out of a /debug/health body; "" when the relation has no
/// declared objective in the scrape.
std::string HealthTotalVerdict(const std::string& health,
                               const std::string& relation) {
  const size_t at = health.find("\"relation\":\"" + relation + "\",\"objective");
  if (at == std::string::npos) return "";
  const size_t total = health.find("\"total\":{", at);
  if (total == std::string::npos) return "";
  const std::string key = "\"verdict\":\"";
  const size_t verdict = health.find(key, total);
  if (verdict == std::string::npos) return "";
  const size_t begin = verdict + key.size();
  const size_t end = health.find('"', begin);
  if (end == std::string::npos) return "";
  return health.substr(begin, end - begin);
}

/// True when the health scrape's labeled-series dump contains a
/// {relation, kind} pair — the drift scenario's attribution check.
bool HealthHasSeries(const std::string& health, const std::string& relation,
                     const std::string& kind) {
  return health.find("\"relation\":\"" + relation + "\",\"kind\":\"" + kind +
                     "\"") != std::string::npos;
}

struct TenantPlan {
  Scenario scenario;
  ClientProtocol protocol;
  double paced_rate_per_s;  // 0 = closed loop
  int reads_per_write;
};

/// The seven paper applications mapped onto protocols and arrival modes:
/// the chatty monitoring feeds run paced over HTTP, the batch-oriented
/// business tenants run closed-loop, and the protocols are split so both
/// wire formats see concurrent production-shaped load.
std::vector<TenantPlan> SevenTenants() {
  return {
      {Scenario::kProcessMonitoring, ClientProtocol::kHttp, 100.0, 3},
      {Scenario::kDegenerateMonitoring, ClientProtocol::kHttp, 0, 3},
      {Scenario::kPayroll, ClientProtocol::kTsp1, 0, 3},
      {Scenario::kAssignments, ClientProtocol::kTsp1, 0, 3},
      {Scenario::kAccounting, ClientProtocol::kHttp, 0, 2},
      {Scenario::kOrders, ClientProtocol::kTsp1, 50.0, 2},
      {Scenario::kArchaeology, ClientProtocol::kHttp, 0, 4},
  };
}

double PercentileUs(const std::vector<double>& ns, double p) {
  return bench::SamplePercentile(ns, p) / 1000.0;
}

}  // namespace

int SimulateMain(int argc, char** argv) {
  SimOptions options;
  if (!ParseOptions(argc, argv, &options)) return 2;
  ::mkdir(options.data_dir.c_str(), 0755);

  // Declare one generous p99 objective per tenant relation; the daemon's
  // watchdog judges them and the post-run check cross-examines its verdicts
  // against the client-side ledgers.
  if (options.slo_p99_ms > 0) {
    for (const TenantPlan& plan : SevenTenants()) {
      if (!options.slo_spec.empty()) options.slo_spec += ',';
      options.slo_spec += std::string(ScenarioRelationName(plan.scenario)) +
                          "=" + std::to_string(options.slo_p99_ms);
    }
  }

  SimEndpoint endpoint;
  endpoint.host = options.host;
  DaemonController daemon(options, &endpoint);
  if (!daemon.Start()) {
    std::fprintf(stderr, "tempspec_simulate: daemon failed to start (%s)\n",
                 options.serve_bin.c_str());
    return 1;
  }
  std::fprintf(stderr, "tempspec_simulate: daemon up on port %u\n",
               daemon.port());

  // Control plane: one HTTP client for DDL, scenario assertions, and the
  // reconciliation reads. Every statement it POSTs is dispatched by the
  // server and therefore counted in server.requests alongside tenant
  // traffic; control_posts tracks that for the metrics reconciliation.
  ClientOptions control_options;
  control_options.host = options.host;
  control_options.port = daemon.port();
  QueryClient control(control_options);
  uint64_t control_posts = 0;
  std::vector<std::string> failures;

  const std::vector<TenantPlan> plans = SevenTenants();
  for (const TenantPlan& plan : plans) {
    const std::string ddl = TenantDriver::CreateStatement(plan.scenario);
    WireReply reply = control.ExecuteRetrying(ddl, options.deadline_ms);
    ++control_posts;
    if (!reply.ok()) {
      std::fprintf(stderr, "tempspec_simulate: DDL failed: %s\n",
                   reply.body.c_str());
      return 1;
    }
  }

  std::vector<std::unique_ptr<TenantDriver>> drivers;
  TenantDriver* ledger_driver = nullptr;
  for (size_t i = 0; i < plans.size(); ++i) {
    TenantOptions tenant;
    tenant.scenario = plans[i].scenario;
    tenant.protocol = plans[i].protocol;
    tenant.seed = options.seed * 7919 + i;
    tenant.deadline_ms = options.deadline_ms;
    tenant.reads_per_write = plans[i].reads_per_write;
    tenant.think_time_us = options.think_us;
    tenant.paced_rate_per_s = plans[i].paced_rate_per_s;
    tenant.max_ops = options.max_ops;
    // In op-capped runs a fast tenant can finish before any wall-clock
    // trigger fires; the drift switch rides the tenant's own op index.
    if (options.scenario_drift && options.max_ops > 0 &&
        plans[i].scenario == Scenario::kAccounting) {
      tenant.drift_after_ops = options.max_ops / 3;
    }
    drivers.push_back(std::make_unique<TenantDriver>(tenant, &endpoint));
    if (plans[i].scenario == Scenario::kAccounting) {
      ledger_driver = drivers.back().get();
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(drivers.size());
  for (auto& driver : drivers) {
    threads.emplace_back([&driver] { driver->Run(); });
  }

  // Timeline: drift starts a third of the way in; the crash lands halfway,
  // at peak load. Progress is wall-clock for duration-bound runs and
  // op-count for --max-ops runs (where the tenants may finish well before
  // the clock would).
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const auto duration = std::chrono::seconds(options.duration_s);
  bool drift_started = false;
  bool drift_verified = false;
  bool drifted_flag = false;
  bool drift_plan_fell_back = false;
  std::string drift_show_body;
  std::string drift_plan_body;
  std::string pre_drift_health;
  std::string mid_health;
  bool crashed = false;
  while (true) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    double progress;
    if (options.max_ops > 0) {
      uint64_t slowest = options.max_ops;
      for (const auto& driver : drivers) {
        slowest = std::min(slowest, driver->ops_completed());
      }
      progress = static_cast<double>(slowest) /
                 static_cast<double>(options.max_ops);
      // Ops mode still respects the wall clock as a hang backstop.
      if (Clock::now() - start > duration + std::chrono::seconds(120)) {
        progress = 1.0;
      }
    } else {
      progress = std::chrono::duration<double>(Clock::now() - start).count() /
                 static_cast<double>(options.duration_s);
    }
    if (options.scenario_drift && !drift_started && options.max_ops == 0 &&
        progress >= 1.0 / 3) {
      // Snapshot the labeled series before the hostile phase: the
      // row-at-a-time fallback series for ledger must be absent here and
      // present after the optimizer stops trusting the declaration.
      if (options.slo_p99_ms > 0) {
        Result<std::string> health = control.Get("/debug/health");
        if (health.ok()) pre_drift_health = health.ValueOrDie();
      }
      std::fprintf(stderr, "tempspec_simulate: starting ledger drift\n");
      ledger_driver->StartDrift();
      drift_started = true;
    }
    // Mid-run health scrape: the watchdog must be publishing verdicts while
    // the tenants are still driving load, not only at quiescence. Retried
    // every tick until it lands (the crash window can make one attempt
    // fail).
    if (options.slo_p99_ms > 0 && mid_health.empty() && progress >= 0.7 &&
        control.connected()) {
      Result<std::string> health = control.Get("/debug/health");
      if (health.ok()) mid_health = health.ValueOrDie();
    }
    // Verify the DRIFTED flip as soon as the engine rejects a drifted
    // write — and before any crash: the monitor is in-memory, and WAL
    // replay only re-observes stored (conforming) writes, so a post-crash
    // check would legitimately read CONFORMING again. The engine's monitor
    // observes the violation before the rejection is sent, so by the time
    // the driver counts it the flip is visible.
    if (options.scenario_drift && !drift_verified &&
        ledger_driver->drift_rejections_observed() > 0) {
      WireReply shown = control.ExecuteRetrying("SHOW SPECIALIZATION ledger",
                                                options.deadline_ms);
      ++control_posts;
      drift_show_body = shown.body;
      drifted_flag =
          shown.ok() && shown.body.find("DRIFTED") != std::string::npos;
      WireReply plan = control.ExecuteRetrying(
          "EXPLAIN TIMESLICE ledger AT '1970-01-01 00:00:00'",
          options.deadline_ms);
      ++control_posts;
      drift_plan_body = plan.body;
      drift_plan_fell_back =
          plan.ok() && plan.body.find("row_at_a_time") != std::string::npos;
      drift_verified = true;
      std::fprintf(stderr,
                   "tempspec_simulate: drift check: drifted_flag=%d "
                   "plan_fell_back=%d\n",
                   drifted_flag ? 1 : 0, drift_plan_fell_back ? 1 : 0);
    }
    if (options.scenario_crash && !crashed && progress >= 0.5) {
      std::fprintf(stderr,
                   "tempspec_simulate: SIGKILL daemon at peak load\n");
      daemon.Kill(SIGKILL);
      crashed = true;
      if (!daemon.Start()) {
        std::fprintf(stderr, "tempspec_simulate: restart failed\n");
        return 1;
      }
      control.Connect(daemon.port());
      std::fprintf(stderr,
                   "tempspec_simulate: daemon recovered on port %u\n",
                   daemon.port());
    }
    if (progress >= 1.0) break;
  }
  endpoint.stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  // --- Post-run verification -------------------------------------------
  if (!control.connected()) control.Connect(daemon.port());

  // Hostile scenario: the drift monitor must have noticed the ledger
  // tenant leaving its declared band, and the optimizer must have stopped
  // trusting the declaration. The actual SHOW/EXPLAIN probes ran mid-flight
  // (see the timeline loop); here we only assert on what they saw. Drift
  // observation lives behind TEMPSPEC_METRICS; a metrics-OFF tree cannot
  // flip, so the flip assertions are compiled out with it.
  if (options.scenario_drift) {
    const uint64_t drift_rejections = ledger_driver->report().drift_rejections;
    if (drift_rejections == 0) {
      failures.push_back(
          "drift scenario ran but no drifted write was rejected");
    }
#ifdef TEMPSPEC_METRICS
    if (!drift_verified) {
      failures.push_back(
          "drift scenario never reached the mid-run DRIFTED check");
    } else {
      if (!drifted_flag) {
        failures.push_back("drift monitor did not flip ledger to DRIFTED: " +
                           drift_show_body);
      }
      if (!drift_plan_fell_back) {
        failures.push_back(
            "optimizer still trusts the drifted ledger declaration: " +
            drift_plan_body);
      }
    }
#else
    std::fprintf(stderr,
                 "tempspec_simulate: metrics compiled out; drift-flip "
                 "assertions skipped\n");
#endif
  }

  // Reconciliation: every acked write must be readable; the live element
  // count must land inside the client-side bounds (exact when nothing was
  // ambiguous).
  std::vector<int64_t> current_counts(drivers.size(), -1);
  for (size_t i = 0; i < drivers.size(); ++i) {
    const TenantReport& report = drivers[i]->report();
    WireReply reply = control.ExecuteRetrying("CURRENT " + report.relation,
                                              options.deadline_ms);
    ++control_posts;
    const int64_t count = reply.ok() ? ElementCount(reply.body) : -1;
    current_counts[i] = count;
    const int64_t lo = static_cast<int64_t>(drivers[i]->MinLiveElements());
    const int64_t hi = static_cast<int64_t>(drivers[i]->MaxLiveElements());
    if (count < lo || count > hi) {
      failures.push_back(report.relation + ": CURRENT returned " +
                         std::to_string(count) + " element(s), acked bounds [" +
                         std::to_string(lo) + ", " + std::to_string(hi) + "]");
    }
  }

#ifdef TEMPSPEC_METRICS
  // Metrics reconciliation: server.requests counts every dispatched
  // statement (admission rejections count in server.requests_rejected
  // instead; the GET scrape itself is not a statement). Counters reset on
  // restart, so this is only exact for an uncrashed daemon.
  if (daemon.starts() == 1) {
    Result<std::string> scrape = control.Get("/metrics");
    if (!scrape.ok()) {
      failures.push_back("scraping /metrics failed: " +
                         scrape.status().ToString());
    } else {
      uint64_t counted = control_posts;
      uint64_t transport_slack = 0;
      uint64_t rejections = 0;
      for (const auto& driver : drivers) {
        counted += driver->report().requests_counted;
        transport_slack += driver->report().transport_errors;
        rejections += driver->report().admission_rejections;
      }
      const int64_t requests =
          MetricValue(scrape.ValueOrDie(), "server_requests");
      // Counters register on first increment: a clean run legitimately has
      // no rejected-requests counter at all.
      int64_t rejected =
          MetricValue(scrape.ValueOrDie(), "server_requests_rejected");
      if (rejected < 0) rejected = 0;
      if (requests < static_cast<int64_t>(counted) ||
          requests > static_cast<int64_t>(counted + transport_slack)) {
        failures.push_back(
            "server_requests=" + std::to_string(requests) +
            " does not reconcile with client replies=" +
            std::to_string(counted) + " (+" +
            std::to_string(transport_slack) + " ambiguous)");
      }
      if (rejected < static_cast<int64_t>(rejections) ||
          rejected > static_cast<int64_t>(rejections + transport_slack)) {
        failures.push_back(
            "server_requests_rejected=" + std::to_string(rejected) +
            " does not reconcile with observed rejections=" +
            std::to_string(rejections));
      }
    }
  }

  // Health-plane reconciliation: the daemon's watchdog judged every declared
  // objective from its own labeled latency series; its verdicts must not
  // contradict the clients' ledgers. The server attributes violations
  // leniently (a histogram bucket straddling the objective counts as
  // conforming), so a tenant whose client-side p99 is inside the objective
  // can never legitimately read "violated" server-side. Restarts reset the
  // series, so like the counter reconciliation this only runs uncrashed.
  uint64_t health_verdicts_agreed = 0;
  bool drift_series_seen = false;
  if (options.slo_p99_ms > 0 && daemon.starts() == 1) {
    if (mid_health.empty()) {
      failures.push_back("health plane: mid-run /debug/health never scraped");
    }
    Result<std::string> health = control.Get("/debug/health");
    if (!health.ok()) {
      failures.push_back("scraping /debug/health failed: " +
                         health.status().ToString());
    } else {
      const std::string& body = health.ValueOrDie();
      for (const auto& driver : drivers) {
        const TenantReport& r = driver->report();
        const std::string verdict = HealthTotalVerdict(body, r.relation);
        if (verdict.empty()) {
          failures.push_back(r.relation +
                             ": declared SLO missing from /debug/health");
          continue;
        }
        const double client_p99_ms =
            std::max(PercentileUs(r.write_latency_ns, 0.99),
                     PercentileUs(r.read_latency_ns, 0.99)) /
            1000.0;
        if (client_p99_ms <= options.slo_p99_ms && verdict != "ok") {
          failures.push_back(
              r.relation + ": server verdict '" + verdict +
              "' but client-side p99 " + std::to_string(client_p99_ms) +
              "ms is inside the " + std::to_string(options.slo_p99_ms) +
              "ms objective");
        } else {
          ++health_verdicts_agreed;
        }
        if (client_p99_ms > options.slo_p99_ms) {
          std::fprintf(stderr,
                       "tempspec_simulate: note: %s client p99 %.2fms exceeds "
                       "the objective (server says '%s')\n",
                       r.relation.c_str(), client_p99_ms, verdict.c_str());
        }
      }
      // Drift attribution: the hostile phase must show up as the ledger
      // relation's row-at-a-time fallback series — present after the run,
      // absent in the pre-drift snapshot (wall-clock runs take one).
      if (options.scenario_drift) {
        drift_series_seen = HealthHasSeries(body, "ledger", "row_at_a_time");
        if (!drift_series_seen) {
          failures.push_back(
              "drift ran but /debug/health shows no "
              "{relation=ledger,kind=row_at_a_time} series");
        }
        // Not a hard failure: some conforming read shapes (index probes)
        // legitimately walk rows, so the fallback series can predate the
        // hostile phase at low volume. The flip is still attributable —
        // post-drift every ledger read lands there.
        if (!pre_drift_health.empty() &&
            HealthHasSeries(pre_drift_health, "ledger", "row_at_a_time")) {
          std::fprintf(stderr,
                       "tempspec_simulate: note: ledger row-at-a-time series "
                       "existed before drift (index-probe reads)\n");
        }
      }
    }
  }
#endif

  // Trace join: execute one more control statement and require its
  // client-generated X-Tempspec-Trace id in the server's trace retention —
  // the end-to-end id is the key that joins client ledgers to server spans.
  {
    WireReply probe = control.ExecuteRetrying(
        "CURRENT " + std::string(ScenarioRelationName(plans[0].scenario)),
        options.deadline_ms);
    ++control_posts;
    if (probe.ok() && !control.last_trace_id().empty()) {
      Result<std::string> traces = control.Get("/debug/traces");
      if (!traces.ok() ||
          traces.ValueOrDie().find(control.last_trace_id()) ==
              std::string::npos) {
        failures.push_back("trace join: client trace id " +
                           control.last_trace_id() +
                           " not found in /debug/traces");
      }
    }
  }

  // Cold restart: graceful stop, restart on the same data dir, measure
  // exec-to-first-successful-read, and verify nothing moved.
  double cold_restart_ns = 0;
  if (options.scenario_cold_restart) {
    daemon.Kill(SIGTERM);
    const Clock::time_point restart_begin = Clock::now();
    if (!daemon.Start()) {
      failures.push_back("cold restart: daemon failed to come back");
    } else {
      control.Connect(daemon.port());
      WireReply first = control.ExecuteRetrying(
          "CURRENT " + std::string(ScenarioRelationName(plans[0].scenario)),
          options.deadline_ms);
      cold_restart_ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               restart_begin)
              .count());
      if (!first.ok()) {
        failures.push_back("cold restart: first read failed: " + first.body);
      }
      for (size_t i = 0; i < drivers.size(); ++i) {
        const std::string rel = drivers[i]->report().relation;
        WireReply reply =
            control.ExecuteRetrying("CURRENT " + rel, options.deadline_ms);
        if (!reply.ok() || ElementCount(reply.body) != current_counts[i]) {
          failures.push_back(rel + ": cold restart changed CURRENT from " +
                             std::to_string(current_counts[i]) + " to " +
                             std::to_string(ElementCount(reply.body)));
        }
      }
    }
  }
  daemon.Kill(SIGTERM);

  // --- Report ----------------------------------------------------------
  std::vector<bench::BenchResult> results;
  double worst_write_p99_ms = 0;
  for (size_t i = 0; i < drivers.size(); ++i) {
    const TenantReport& r = drivers[i]->report();
    bench::BenchResult b;
    b.name = "tenant/" + r.relation;
    b.runs = 1;
    b.iterations = r.acked_inserts + r.acked_deletes + r.reads_ok +
                   r.read_errors + r.constraint_rejections +
                   r.deadline_exceeded + r.server_errors;
    b.real_time_ns_median = bench::SamplePercentile(r.write_latency_ns, 0.5);
    b.real_time_ns_p99 = bench::SamplePercentile(r.write_latency_ns, 0.99);
    b.counters["acked_inserts"] = static_cast<double>(r.acked_inserts);
    b.counters["acked_deletes"] = static_cast<double>(r.acked_deletes);
    b.counters["reads_ok"] = static_cast<double>(r.reads_ok);
    b.counters["read_errors"] = static_cast<double>(r.read_errors);
    b.counters["constraint_rejections"] =
        static_cast<double>(r.constraint_rejections);
    b.counters["drift_rejections"] = static_cast<double>(r.drift_rejections);
    b.counters["admission_rejections"] =
        static_cast<double>(r.admission_rejections);
    b.counters["ambiguous_writes"] =
        static_cast<double>(r.ambiguous_inserts + r.ambiguous_deletes);
    b.counters["deadline_exceeded"] = static_cast<double>(r.deadline_exceeded);
    b.counters["transport_errors"] = static_cast<double>(r.transport_errors);
    b.counters["reconnects"] = static_cast<double>(r.reconnects);
    b.counters["write_p50_us"] = PercentileUs(r.write_latency_ns, 0.5);
    b.counters["write_p95_us"] = PercentileUs(r.write_latency_ns, 0.95);
    b.counters["write_p99_us"] = PercentileUs(r.write_latency_ns, 0.99);
    b.counters["read_p50_us"] = PercentileUs(r.read_latency_ns, 0.5);
    b.counters["read_p95_us"] = PercentileUs(r.read_latency_ns, 0.95);
    b.counters["read_p99_us"] = PercentileUs(r.read_latency_ns, 0.99);
    b.counters["current_count"] = static_cast<double>(current_counts[i]);
    b.counters["reconcile_min"] =
        static_cast<double>(drivers[i]->MinLiveElements());
    b.counters["reconcile_max"] =
        static_cast<double>(drivers[i]->MaxLiveElements());
    results.push_back(std::move(b));
    worst_write_p99_ms =
        std::max(worst_write_p99_ms, PercentileUs(r.write_latency_ns, 0.99) / 1000.0);

    std::fprintf(
        stderr,
        "tenant %-18s %6llu ins %5llu del %6llu reads  p50 %.2fms p99 %.2fms"
        "  rej %llu ambig %llu current %lld\n",
        r.relation.c_str(),
        static_cast<unsigned long long>(r.acked_inserts),
        static_cast<unsigned long long>(r.acked_deletes),
        static_cast<unsigned long long>(r.reads_ok),
        PercentileUs(r.write_latency_ns, 0.5) / 1000.0,
        PercentileUs(r.write_latency_ns, 0.99) / 1000.0,
        static_cast<unsigned long long>(r.admission_rejections),
        static_cast<unsigned long long>(r.ambiguous_inserts +
                                        r.ambiguous_deletes),
        static_cast<long long>(current_counts[i]));
  }

  if (options.scenario_drift) {
    bench::BenchResult b;
    b.name = "scenario/drift";
    b.runs = 1;
    b.iterations = 1;
    b.counters["drift_rejections"] =
        static_cast<double>(ledger_driver->report().drift_rejections);
    b.counters["drifted_flag"] = drifted_flag ? 1 : 0;
    results.push_back(std::move(b));
  }
#ifdef TEMPSPEC_METRICS
  if (options.slo_p99_ms > 0 && daemon.starts() == 1) {
    bench::BenchResult b;
    b.name = "scenario/health";
    b.runs = 1;
    b.iterations = 1;
    b.counters["slo_objectives"] = static_cast<double>(drivers.size());
    b.counters["verdicts_agreed"] = static_cast<double>(health_verdicts_agreed);
    b.counters["drift_series_seen"] = drift_series_seen ? 1 : 0;
    results.push_back(std::move(b));
  }
#endif
  if (options.scenario_crash) {
    bench::BenchResult b;
    b.name = "scenario/crash_recovery";
    b.runs = 1;
    b.iterations = 1;
    b.counters["daemon_starts"] = daemon.starts();
    uint64_t reconnects = 0;
    for (const auto& driver : drivers) {
      reconnects += driver->report().reconnects;
    }
    b.counters["tenant_reconnects"] = static_cast<double>(reconnects);
    results.push_back(std::move(b));
  }
  if (options.scenario_cold_restart) {
    bench::BenchResult b;
    b.name = "scenario/cold_restart";
    b.runs = 1;
    b.iterations = 1;
    b.real_time_ns_median = cold_restart_ns;
    b.real_time_ns_p99 = cold_restart_ns;
    results.push_back(std::move(b));
  }

  if (!bench::WriteBenchJson(options.json_path, "p4_simulator", results)) {
    failures.push_back("could not write " + options.json_path);
  }

  if (options.gate_p99_ms > 0 && worst_write_p99_ms > options.gate_p99_ms) {
    failures.push_back("SLO gate: worst tenant write p99 " +
                       std::to_string(worst_write_p99_ms) + "ms exceeds " +
                       std::to_string(options.gate_p99_ms) + "ms");
  }

  if (!failures.empty()) {
    for (const std::string& f : failures) {
      std::fprintf(stderr, "tempspec_simulate: FAIL: %s\n", f.c_str());
    }
    // Reconciliation evidence: what the server actually said on each error
    // reply, so a failed run reads as a diagnosis, not a count. (Successful
    // runs keep these quiet — the drift scenario's intentional rejections
    // would drown the report.)
    for (const auto& driver : drivers) {
      const TenantReport& r = driver->report();
      for (const std::string& detail : r.error_details) {
        std::fprintf(stderr, "    %s: server said %s\n", r.relation.c_str(),
                     detail.c_str());
      }
    }
    return 1;
  }
  std::fprintf(stderr,
               "tempspec_simulate: OK — %zu tenants reconciled, results in "
               "%s\n",
               drivers.size(), options.json_path.c_str());
  return 0;
}

}  // namespace tempspec

int main(int argc, char** argv) {
  return tempspec::SimulateMain(argc, argv);
}
