#include "catalog/advisor.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "query/optimizer.h"
#include "spec/lattice.h"

namespace tempspec {

namespace {

const char* StorageLayoutToString(StorageLayout s) {
  return s == StorageLayout::kAppendOnlyRollback
             ? "append-only rollback layout"
             : "bitemporal backlog layout";
}

const char* StampMaterializationToString(StampMaterialization s) {
  return s == StampMaterialization::kComputeOnRead
             ? "compute valid time on read (determined; stamp not stored)"
             : "store valid time-stamps";
}

const char* IndexAdviceToString(IndexAdvice a) {
  return a == IndexAdvice::kNone ? "transaction-time index only"
                                 : "valid-time interval index";
}

const char* EncodingAdviceToString(EncodingAdvice a) {
  return a == EncodingAdvice::kDeltaUnit
             ? "delta/unit-multiple time-stamp encoding"
             : "raw chronon time-stamps";
}

}  // namespace

AdvisorReport Advise(const Schema& schema, const SpecializationSet& specs) {
  AdvisorReport report;
  Optimizer optimizer(specs, schema);

  const bool degenerate = optimizer.IsDegenerate();
  const bool monotone = optimizer.ValidTimesMonotone();
  bool sequential = false;
  for (const auto& o : specs.orderings()) {
    sequential = sequential || (o.kind() == OrderingKind::kSequential &&
                                o.scope() == SpecScope::kPerRelation);
  }

  // Storage: Section 3.1 — "a degenerate temporal relation can be
  // advantageously treated as a rollback relation"; Section 3.2 — sequential
  // relations are "append-only relation[s] that can support historical (as
  // well as transaction time) queries".
  if (degenerate || sequential) {
    report.storage = StorageLayout::kAppendOnlyRollback;
    report.notes.push_back(
        degenerate
            ? "degenerate: elements arrive in time-stamp order; the backlog "
              "itself is the relation (asynchronous recording)"
            : "sequential: valid time approximable by transaction time; "
              "historical queries served from the append-only store");
  }

  // Stamps: determined relations need no stored valid time.
  bool determined = false;
  for (const auto& s : specs.event_specs()) determined |= s.IsDetermined();
  for (const auto& a : specs.anchored_specs()) determined |= a.spec().IsDetermined();
  if (determined || degenerate) {
    report.stamps = StampMaterialization::kComputeOnRead;
    report.notes.push_back(
        degenerate && !determined
            ? "degenerate: vt equals tt within the granularity; store tt only"
            : "determined: vt = m(e); recompute via the mapping function");
  }

  // Index.
  if (degenerate || monotone || optimizer.CombinedFixedBand().has_value()) {
    report.index = IndexAdvice::kNone;
  }

  // Encoding: any declared regularity admits unit-multiple encoding.
  if (!specs.regularities().empty() || !specs.interval_regularities().empty()) {
    report.encoding = EncodingAdvice::kDeltaUnit;
    report.notes.push_back(
        "regular: store unit multiples k instead of chronon counts");
  }

  report.timeslice_strategy =
      optimizer.PlanTimeslice(TimePoint::FromMicros(0)).strategy;
  TS_COUNTER_INC("advisor.reports");
  // Advise() is not a hot path, so the runtime-composed name goes through
  // the registry directly instead of a cached-handle macro.
  TS_METRICS_ONLY(MetricsRegistry::Instance()
                      .GetCounter(std::string("advisor.strategy.") +
                                  ExecutionStrategyToToken(
                                      report.timeslice_strategy))
                      .Increment(););

  // Lattice closure: everything the declared event types imply (Figure 2).
  const SpecLattice& lattice = SpecLattice::EventTaxonomy();
  for (const auto& s : specs.event_specs()) {
    const std::string name = EventSpecKindToString(s.kind());
    if (!lattice.HasNode(name)) continue;
    for (const auto& ancestor : lattice.AncestorsOf(name)) {
      if (std::find(report.inherited_properties.begin(),
                    report.inherited_properties.end(),
                    ancestor) == report.inherited_properties.end()) {
        report.inherited_properties.push_back(ancestor);
      }
    }
  }

  // Redundancy: a declared event type implied by another declared one.
  const auto& es = specs.event_specs();
  for (size_t i = 0; i < es.size(); ++i) {
    for (size_t j = 0; j < es.size(); ++j) {
      if (i == j) continue;
      auto implies = es[j].Implies(es[i]);
      if (implies.has_value() && *implies &&
          !(es[i].Implies(es[j]).value_or(false) && j > i)) {
        report.redundant_declarations.push_back(
            es[i].ToString() + "  (implied by " + es[j].ToString() + ")");
        break;
      }
    }
  }

  TS_FLIGHT(FlightCategory::kAdvisor, FlightCode::kAdvisorNote,
            report.notes.size(), report.redundant_declarations.size(),
            ExecutionStrategyToToken(report.timeslice_strategy));
  return report;
}

std::string AdvisorReport::ToString() const {
  std::string out;
  out += "Advisor report\n";
  out += "  storage:   " + std::string(StorageLayoutToString(storage)) + "\n";
  out += "  stamps:    " + std::string(StampMaterializationToString(stamps)) + "\n";
  out += "  index:     " + std::string(IndexAdviceToString(index)) + "\n";
  out += "  encoding:  " + std::string(EncodingAdviceToString(encoding)) + "\n";
  out += "  timeslice: " +
         std::string(ExecutionStrategyToString(timeslice_strategy)) + "\n";
  if (!inherited_properties.empty()) {
    out += "  inherited properties:";
    for (const auto& p : inherited_properties) out += " [" + p + "]";
    out += "\n";
  }
  for (const auto& r : redundant_declarations) {
    out += "  redundant: " + r + "\n";
  }
  for (const auto& n : notes) {
    out += "  note: " + n + "\n";
  }
  return out;
}

}  // namespace tempspec
