// E7 — Specialization inference at design time: cost of profiling an
// extension, and recovery of the generating discipline for every scenario
// workload (the paper's design-methodology use case).
#include "bench_common.h"

using namespace tempspec;
using tempspec::bench::ConfigFor;
using tempspec::bench::Require;

namespace {

void BM_InferProfile_EventRelation(benchmark::State& state) {
  const WorkloadConfig config = ConfigFor(state.range(0));
  auto scenario = Require(MakeProcessMonitoring(
      config, Duration::Seconds(30), Duration::Seconds(120), Duration::Minutes(1)));
  Require(GenerateProcessMonitoring(config, Duration::Seconds(30),
                                    Duration::Seconds(120), Duration::Minutes(1),
                                    &scenario));
  for (auto _ : state) {
    RelationProfile profile =
        InferProfile(scenario->elements(), ValidTimeKind::kEvent,
                     scenario->schema().valid_granularity());
    benchmark::DoNotOptimize(profile);
  }
  state.SetItemsProcessed(state.iterations() * scenario->size());
}

void BM_InferProfile_IntervalRelation(benchmark::State& state) {
  const WorkloadConfig config = ConfigFor(state.range(0));
  auto scenario = Require(MakeAssignments(config));
  Require(GenerateAssignments(config, &scenario));
  for (auto _ : state) {
    RelationProfile profile =
        InferProfile(scenario->elements(), ValidTimeKind::kInterval,
                     scenario->schema().valid_granularity());
    benchmark::DoNotOptimize(profile);
  }
  state.SetItemsProcessed(state.iterations() * scenario->size());
}

void BM_BatchRevalidation(benchmark::State& state) {
  // Cost of CheckExtension: full re-verification of a declared relation
  // (runs on recovery).
  const WorkloadConfig config = ConfigFor(state.range(0));
  auto scenario = Require(MakeProcessMonitoring(
      config, Duration::Seconds(30), Duration::Seconds(120), Duration::Minutes(1)));
  Require(GenerateProcessMonitoring(config, Duration::Seconds(30),
                                    Duration::Seconds(120), Duration::Minutes(1),
                                    &scenario));
  for (auto _ : state) {
    Require(scenario->CheckExtension());
  }
  state.SetItemsProcessed(state.iterations() * scenario->size());
}

// Recovery-rate report: one pass over every scenario, printed as counters
// (1 = the inference engine recovered the scenario's defining property).
void BM_RecoveryMatrix(benchmark::State& state) {
  WorkloadConfig config;
  config.num_objects = 8;
  config.ops_per_object = 128;

  double degenerate_ok = 0, monitoring_ok = 0, payroll_ok = 0, orders_ok = 0,
         archaeology_ok = 0, assignments_ok = 0;
  for (auto _ : state) {
    {
      auto s = Require(MakeDegenerateMonitoring(config, Duration::Seconds(10)));
      Require(GenerateDegenerateMonitoring(config, Duration::Seconds(10), &s));
      auto p = InferProfile(s->elements(), ValidTimeKind::kEvent,
                            s->schema().valid_granularity());
      degenerate_ok = p.event.degenerate && p.regularity.temporal_strict;
    }
    {
      auto s = Require(MakeProcessMonitoring(config, Duration::Seconds(30),
                                             Duration::Seconds(120),
                                             Duration::Minutes(1)));
      Require(GenerateProcessMonitoring(config, Duration::Seconds(30),
                                        Duration::Seconds(120),
                                        Duration::Minutes(1), &s));
      auto p = InferProfile(s->elements(), ValidTimeKind::kEvent,
                            s->schema().valid_granularity());
      monitoring_ok = p.event.classified ==
                      EventSpecKind::kDelayedStronglyRetroactivelyBounded;
    }
    {
      auto s = Require(MakePayroll(config));
      Require(GeneratePayroll(config, &s));
      auto p = InferProfile(s->elements(), ValidTimeKind::kEvent,
                            s->schema().valid_granularity());
      payroll_ok = p.event.classified ==
                   EventSpecKind::kEarlyStronglyPredictivelyBounded;
    }
    {
      auto s = Require(MakeOrders(config));
      Require(GenerateOrders(config, &s));
      auto p = InferProfile(s->elements(), ValidTimeKind::kEvent,
                            s->schema().valid_granularity());
      orders_ok = p.event.max_offset_us <= 30 * kMicrosPerDay;
    }
    {
      auto s = Require(MakeArchaeology(config));
      Require(GenerateArchaeology(config, &s));
      auto p = InferProfile(s->elements(), ValidTimeKind::kInterval,
                            s->schema().valid_granularity());
      archaeology_ok = p.global_ordering.non_increasing &&
                       p.interval.successive.count(AllenRelation::kMetBy) > 0;
    }
    {
      auto s = Require(MakeAssignments(config));
      Require(GenerateAssignments(config, &s));
      auto p = InferProfile(s->elements(), ValidTimeKind::kInterval,
                            s->schema().valid_granularity());
      assignments_ok = p.interval.valid_strict &&
                       p.per_surrogate_ordering.non_decreasing;
    }
  }
  state.counters["recovered_degenerate"] = degenerate_ok;
  state.counters["recovered_monitoring"] = monitoring_ok;
  state.counters["recovered_payroll"] = payroll_ok;
  state.counters["recovered_orders"] = orders_ok;
  state.counters["recovered_archaeology"] = archaeology_ok;
  state.counters["recovered_assignments"] = assignments_ok;
}

}  // namespace

BENCHMARK(BM_InferProfile_EventRelation)->Range(1024, 32768);
BENCHMARK(BM_InferProfile_IntervalRelation)->Range(1024, 16384);
BENCHMARK(BM_BatchRevalidation)->Range(1024, 32768);
BENCHMARK(BM_RecoveryMatrix)->Iterations(1);

TEMPSPEC_BENCH_MAIN("e7_inference");
