// Granularity: the chronon size of a relation's time-stamps.
//
// Section 2: "Each relation may have an individual valid time-stamp
// granularity, or the database system may impose a fixed granularity."
// Section 3.1: degenerate relations require equality "within the selected
// granularity", and valid-time event regularity with unit Δt expresses a
// granularity of Δt.
#ifndef TEMPSPEC_TIMEX_GRANULARITY_H_
#define TEMPSPEC_TIMEX_GRANULARITY_H_

#include <cstdint>
#include <string>

#include "timex/duration.h"
#include "timex/time_point.h"
#include "util/result.h"

namespace tempspec {

/// \brief A partition of the time line into equal granules. Fixed units
/// (micros..weeks) and calendric units (month, year) are supported.
class Granularity {
 public:
  enum class Unit : uint8_t {
    kMicrosecond,
    kMillisecond,
    kSecond,
    kMinute,
    kHour,
    kDay,
    kWeek,   // anchored so granule boundaries fall on Thursdays (epoch day)
    kMonth,  // calendric
    kYear,   // calendric
  };

  constexpr Granularity() : unit_(Unit::kMicrosecond), count_(1) {}
  /// \brief `count` consecutive `unit`s per granule, e.g. (kMinute, 15).
  /// count must be >= 1.
  constexpr Granularity(Unit unit, int32_t count = 1) : unit_(unit), count_(count) {}

  static constexpr Granularity Microsecond() { return {Unit::kMicrosecond}; }
  static constexpr Granularity Millisecond() { return {Unit::kMillisecond}; }
  static constexpr Granularity Second() { return {Unit::kSecond}; }
  static constexpr Granularity Minute() { return {Unit::kMinute}; }
  static constexpr Granularity Hour() { return {Unit::kHour}; }
  static constexpr Granularity Day() { return {Unit::kDay}; }
  static constexpr Granularity Week() { return {Unit::kWeek}; }
  static constexpr Granularity Month() { return {Unit::kMonth}; }
  static constexpr Granularity Year() { return {Unit::kYear}; }

  Unit unit() const { return unit_; }
  int32_t count() const { return count_; }

  bool IsCalendric() const { return unit_ == Unit::kMonth || unit_ == Unit::kYear; }

  /// \brief Start of the granule containing tp (floor). Sentinels map to
  /// themselves.
  TimePoint Truncate(TimePoint tp) const;

  /// \brief Start of the first granule at or after tp (ceiling).
  TimePoint Ceil(TimePoint tp) const;

  /// \brief Start of the granule strictly after the one containing tp.
  TimePoint NextGranule(TimePoint tp) const;

  /// \brief True if both instants fall into the same granule — the paper's
  /// "identical within the selected granularity" (degenerate relations).
  bool Same(TimePoint a, TimePoint b) const { return Truncate(a) == Truncate(b); }

  /// \brief The granule length as a Duration (calendric for month/year).
  Duration AsDuration() const;

  std::string ToString() const;

  friend bool operator==(Granularity a, Granularity b) = default;

 private:
  Unit unit_;
  int32_t count_;
};

Result<Granularity> ParseGranularity(const std::string& text);

}  // namespace tempspec

#endif  // TEMPSPEC_TIMEX_GRANULARITY_H_
