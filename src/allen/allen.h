// Allen's thirteen interval relations [All83], the basis of the
// inter-interval taxonomy (Section 3.4): "there exist a total of thirteen
// possible relationships between two intervals ... before, meets, overlaps,
// during, starts, finishes, equal, and the inverse relationships for all but
// equal."
//
// Intervals here are the library's half-open [begin, end) intervals; the
// relations are expressed purely through endpoint comparisons, so the
// thirteen cases remain exhaustive and mutually exclusive for non-empty
// intervals.
#ifndef TEMPSPEC_ALLEN_ALLEN_H_
#define TEMPSPEC_ALLEN_ALLEN_H_

#include <array>
#include <cstdint>
#include <string>

#include "timex/interval.h"
#include "util/result.h"

namespace tempspec {

enum class AllenRelation : uint8_t {
  kBefore = 0,        // X entirely precedes Y, with a gap
  kMeets = 1,         // X ends exactly where Y begins
  kOverlaps = 2,      // X starts first, they overlap, Y ends last
  kStarts = 3,        // same start, X ends first
  kDuring = 4,        // X strictly inside Y
  kFinishes = 5,      // same end, X starts last
  kEquals = 6,
  kAfter = 7,         // inverse of before
  kMetBy = 8,         // inverse of meets
  kOverlappedBy = 9,  // inverse of overlaps
  kStartedBy = 10,    // inverse of starts
  kContains = 11,     // inverse of during
  kFinishedBy = 12,   // inverse of finishes
};

constexpr size_t kNumAllenRelations = 13;

/// \brief All thirteen relations, in enum order.
const std::array<AllenRelation, kNumAllenRelations>& AllAllenRelations();

/// \brief Canonical lowercase name, e.g. "overlapped-by".
const char* AllenRelationToString(AllenRelation rel);

/// \brief Parses a canonical name (also accepts "inverse before" style
/// aliases used in the paper).
Result<AllenRelation> ParseAllenRelation(const std::string& name);

/// \brief The inverse relation: Inverse(r)(Y, X) iff r(X, Y). Equals is its
/// own inverse.
AllenRelation Inverse(AllenRelation rel);

/// \brief Classifies the relation of non-empty X to non-empty Y. Exactly one
/// relation holds for any such pair.
Result<AllenRelation> Classify(const TimeInterval& x, const TimeInterval& y);

/// \brief True if `rel` holds between X and Y (both non-empty).
bool Holds(AllenRelation rel, const TimeInterval& x, const TimeInterval& y);

}  // namespace tempspec

#endif  // TEMPSPEC_ALLEN_ALLEN_H_
