// E1 — Constraint-enforcement overhead per update (Section 1's premise that
// the extra semantics is cheap enough to capture).
//
// Measures insert throughput of the relation engine with (a) no declared
// specializations, and (b) each category of specialization declared:
// isolated band, degenerate, inter-event ordering, regularity, and the full
// combination. The gap between (a) and each (b) is the intensional
// enforcement cost.
#include "bench_common.h"

using namespace tempspec;
using tempspec::bench::Require;

namespace {

SchemaPtr BenchSchema() {
  static SchemaPtr schema =
      Require(Schema::Make("bench",
                           {AttributeDef{"id", ValueType::kInt64,
                                         AttributeRole::kTimeInvariantKey},
                            AttributeDef{"v", ValueType::kDouble,
                                         AttributeRole::kTimeVarying}},
                           ValidTimeKind::kEvent, Granularity::Second()));
  return schema;
}

void RunInsertLoop(benchmark::State& state, SpecializationSet specs,
                   int64_t offset_us) {
  for (auto _ : state) {
    state.PauseTiming();
    RelationOptions options;
    options.schema = BenchSchema();
    options.specializations = specs;
    auto clock = std::make_shared<LogicalClock>(TimePoint::FromSeconds(1'000'000),
                                                Duration::Seconds(1));
    options.clock = clock;
    auto rel = Require(TemporalRelation::Open(std::move(options)));
    state.ResumeTiming();

    for (int i = 0; i < state.range(0); ++i) {
      const TimePoint tt = clock->Peek();
      Require(rel->InsertEvent(i % 32, tt + Duration::Micros(offset_us),
                               Tuple{int64_t{i % 32}, 1.0})
                  .status());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Insert_NoSpecs(benchmark::State& state) {
  RunInsertLoop(state, SpecializationSet(), -60 * kMicrosPerSecond);
}

void BM_Insert_BandSpec(benchmark::State& state) {
  SpecializationSet specs;
  specs.AddEvent(Require(
      EventSpecialization::DelayedStronglyRetroactivelyBounded(
          Duration::Seconds(30), Duration::Seconds(120))));
  RunInsertLoop(state, std::move(specs), -60 * kMicrosPerSecond);
}

void BM_Insert_CalendricBandSpec(benchmark::State& state) {
  SpecializationSet specs;
  specs.AddEvent(Require(
      EventSpecialization::RetroactivelyBounded(Duration::Months(1))));
  RunInsertLoop(state, std::move(specs), -60 * kMicrosPerSecond);
}

void BM_Insert_Degenerate(benchmark::State& state) {
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Degenerate());
  RunInsertLoop(state, std::move(specs), 0);
}

void BM_Insert_Ordering(benchmark::State& state) {
  SpecializationSet specs;
  specs.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  RunInsertLoop(state, std::move(specs), -60 * kMicrosPerSecond);
}

void BM_Insert_PerSurrogateOrdering(benchmark::State& state) {
  SpecializationSet specs;
  specs.AddOrdering(
      OrderingSpec(OrderingKind::kNonDecreasing, SpecScope::kPerObjectSurrogate));
  RunInsertLoop(state, std::move(specs), -60 * kMicrosPerSecond);
}

void BM_Insert_Regularity(benchmark::State& state) {
  SpecializationSet specs;
  specs.AddRegularity(Require(RegularitySpec::Make(
      RegularityDimension::kTransactionTime, Duration::Seconds(1))));
  RunInsertLoop(state, std::move(specs), -60 * kMicrosPerSecond);
}

void BM_Insert_Determined(benchmark::State& state) {
  SpecializationSet specs;
  specs.AddEvent(EventSpecialization::Retroactive().Determined(
      MappingFunction::Offset(Duration::Seconds(-60))));
  RunInsertLoop(state, std::move(specs), -60 * kMicrosPerSecond);
}

void BM_Insert_FullStack(benchmark::State& state) {
  SpecializationSet specs;
  specs.AddEvent(Require(
      EventSpecialization::DelayedStronglyRetroactivelyBounded(
          Duration::Seconds(30), Duration::Seconds(120))));
  specs.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  specs.AddRegularity(Require(RegularitySpec::Make(
      RegularityDimension::kTransactionTime, Duration::Seconds(1))));
  RunInsertLoop(state, std::move(specs), -60 * kMicrosPerSecond);
}

}  // namespace

BENCHMARK(BM_Insert_NoSpecs)->Arg(4096);
BENCHMARK(BM_Insert_BandSpec)->Arg(4096);
BENCHMARK(BM_Insert_CalendricBandSpec)->Arg(4096);
BENCHMARK(BM_Insert_Degenerate)->Arg(4096);
BENCHMARK(BM_Insert_Ordering)->Arg(4096);
BENCHMARK(BM_Insert_PerSurrogateOrdering)->Arg(4096);
BENCHMARK(BM_Insert_Regularity)->Arg(4096);
BENCHMARK(BM_Insert_Determined)->Arg(4096);
BENCHMARK(BM_Insert_FullStack)->Arg(4096);

TEMPSPEC_BENCH_MAIN("e1_enforcement");
