#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "storage/serde.h"

namespace tempspec {

namespace {
constexpr size_t kRecordHeaderSize = 4 + 4 + 8;  // len, crc, lsn
}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(const std::string& path,
                                                           SyncMode mode,
                                                           uint32_t sync_every) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open WAL '", path, "': ", std::strerror(errno));
  }
  auto wal = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, mode, sync_every == 0 ? 1 : sync_every));
  // Scan once to learn the next LSN (replay discards payloads).
  auto replayed = wal->Replay(
      [](uint64_t, std::string_view) { return Status::OK(); });
  TS_RETURN_NOT_OK(replayed.status());
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> WriteAheadLog::Append(std::string_view payload) {
  const uint64_t lsn = next_lsn_;
  std::string record;
  record.reserve(kRecordHeaderSize + payload.size());
  Encoder enc(&record);
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(Crc32(payload));
  enc.PutU64(lsn);
  record.append(payload.data(), payload.size());

  size_t done = 0;
  while (done < record.size()) {
    ssize_t n = ::write(fd_, record.data() + done, record.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("WAL append failed: ", std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  bytes_written_ += record.size();
  ++next_lsn_;

  if (mode_ == SyncMode::kAlways ||
      (mode_ == SyncMode::kEveryN && ++appends_since_sync_ >= sync_every_)) {
    TS_RETURN_NOT_OK(Sync());
  }
  return lsn;
}

Status WriteAheadLog::Sync() {
  appends_since_sync_ = 0;
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("WAL fsync failed: ", std::strerror(errno));
  }
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Replay(
    const std::function<Status(uint64_t, std::string_view)>& fn) {
  // Read the whole file via a separate descriptor so the append offset is
  // untouched.
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot reopen WAL '", path_, "' for replay");
  }
  std::string content;
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    content.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  uint64_t count = 0;
  size_t pos = 0;
  uint64_t max_lsn_seen = next_lsn_ == 0 ? 0 : next_lsn_ - 1;
  bool any = next_lsn_ > 0;
  while (pos + kRecordHeaderSize <= content.size()) {
    Decoder dec(std::string_view(content).substr(pos, kRecordHeaderSize));
    const uint32_t len = dec.GetU32().ValueOrDie();
    const uint32_t crc = dec.GetU32().ValueOrDie();
    const uint64_t lsn = dec.GetU64().ValueOrDie();
    if (pos + kRecordHeaderSize + len > content.size()) break;  // torn tail
    const std::string_view payload(content.data() + pos + kRecordHeaderSize, len);
    if (Crc32(payload) != crc) break;  // corrupt tail
    TS_RETURN_NOT_OK(fn(lsn, payload));
    if (!any || lsn > max_lsn_seen) {
      max_lsn_seen = lsn;
      any = true;
    }
    ++count;
    pos += kRecordHeaderSize + len;
  }
  if (any) next_lsn_ = max_lsn_seen + 1;
  return count;
}

Status WriteAheadLog::Reset() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("WAL truncate failed: ", std::strerror(errno));
  }
  bytes_written_ = 0;
  return Status::OK();
}

}  // namespace tempspec
