#include <gtest/gtest.h>

#include "testing.h"
#include "timex/clock.h"
#include "timex/duration.h"
#include "timex/granularity.h"
#include "timex/interval.h"
#include "timex/time_point.h"

namespace tempspec {
namespace {

using testing::Civil;
using testing::T;

TEST(TimePointTest, OrderingAndSentinels) {
  EXPECT_LT(T(1), T(2));
  EXPECT_LT(TimePoint::Min(), T(-1000));
  EXPECT_LT(T(1000), TimePoint::Max());
  EXPECT_TRUE(TimePoint::Max().IsMax());
  EXPECT_TRUE(TimePoint::Min().IsMin());
  EXPECT_FALSE(T(0).IsMax());
}

TEST(TimePointTest, Arithmetic) {
  EXPECT_EQ(T(10).MicrosSince(T(4)), 6'000'000);
  EXPECT_EQ(T(4) + Duration::Seconds(6), T(10));
  EXPECT_EQ(T(10) - Duration::Seconds(6), T(4));
  EXPECT_EQ((T(10) - T(4)).micros(), 6'000'000);
}

TEST(DurationTest, Factories) {
  EXPECT_EQ(Duration::Seconds(2).micros(), 2'000'000);
  EXPECT_EQ(Duration::Minutes(1).micros(), 60'000'000);
  EXPECT_EQ(Duration::Hours(1), Duration::Minutes(60));
  EXPECT_EQ(Duration::Days(1), Duration::Hours(24));
  EXPECT_EQ(Duration::Weeks(1), Duration::Days(7));
  EXPECT_EQ(Duration::Years(1), Duration::Months(12));
  EXPECT_TRUE(Duration::Zero().IsZero());
}

TEST(DurationTest, Signs) {
  EXPECT_TRUE(Duration::Seconds(1).IsPositive());
  EXPECT_TRUE(Duration::Seconds(-1).IsNegative());
  EXPECT_TRUE(Duration::Months(1).IsPositive());
  EXPECT_TRUE(Duration::Months(-2).IsNegative());
  EXPECT_FALSE(Duration::Zero().IsPositive());
  EXPECT_FALSE(Duration::Zero().IsNegative());
  // Mixed signs resolved by effect: one month minus one day is positive.
  EXPECT_TRUE((Duration::Months(1) - Duration::Days(1)).IsPositive());
  EXPECT_TRUE((Duration::Days(1) - Duration::Months(1)).IsNegative());
}

TEST(DurationTest, CalendricApplication) {
  EXPECT_EQ(Civil(1992, 1, 31) + Duration::Months(1), Civil(1992, 2, 29));
  EXPECT_EQ(Civil(1992, 1, 31) - Duration::Months(1), Civil(1991, 12, 31));
  // Months apply before the fixed part.
  EXPECT_EQ(Civil(1992, 1, 31) + (Duration::Months(1) + Duration::Days(1)),
            Civil(1992, 3, 1));
}

TEST(DurationTest, SentinelsAbsorb) {
  EXPECT_EQ(TimePoint::Max() + Duration::Days(5), TimePoint::Max());
  EXPECT_EQ(TimePoint::Min() - Duration::Days(5), TimePoint::Min());
}

TEST(DurationTest, ToStringPicksNaturalUnit) {
  EXPECT_EQ(Duration::Seconds(30).ToString(), "30s");
  EXPECT_EQ(Duration::Days(3).ToString(), "3d");
  EXPECT_EQ(Duration::Months(2).ToString(), "2mo");
  EXPECT_EQ(Duration::Zero().ToString(), "0");
  EXPECT_EQ(Duration::Micros(-5).ToString(), "-5us");
}

TEST(DurationTest, ParseSimpleUnits) {
  EXPECT_EQ(Duration::Parse("30s").ValueOrDie(), Duration::Seconds(30));
  EXPECT_EQ(Duration::Parse("5min").ValueOrDie(), Duration::Minutes(5));
  EXPECT_EQ(Duration::Parse("2h").ValueOrDie(), Duration::Hours(2));
  EXPECT_EQ(Duration::Parse("3d").ValueOrDie(), Duration::Days(3));
  EXPECT_EQ(Duration::Parse("1w").ValueOrDie(), Duration::Weeks(1));
  EXPECT_EQ(Duration::Parse("1mo").ValueOrDie(), Duration::Months(1));
  EXPECT_EQ(Duration::Parse("2y").ValueOrDie(), Duration::Years(2));
  EXPECT_EQ(Duration::Parse("250ms").ValueOrDie(), Duration::Millis(250));
  EXPECT_EQ(Duration::Parse("10us").ValueOrDie(), Duration::Micros(10));
}

TEST(DurationTest, ParseCompoundAndSigned) {
  EXPECT_EQ(Duration::Parse("1mo+2d").ValueOrDie(),
            Duration::Months(1) + Duration::Days(2));
  EXPECT_EQ(Duration::Parse("-45s").ValueOrDie(), Duration::Seconds(-45));
  EXPECT_EQ(Duration::Parse("1h+-30min").ValueOrDie(), Duration::Minutes(30));
}

TEST(DurationTest, ParseRoundTripsToString) {
  for (Duration d : {Duration::Seconds(30), Duration::Days(3), Duration::Months(2),
                     Duration::Months(1) + Duration::Days(2),
                     Duration::Micros(-5)}) {
    ASSERT_OK_AND_ASSIGN(Duration back, Duration::Parse(d.ToString()));
    EXPECT_EQ(back, d) << d.ToString();
  }
}

TEST(DurationTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Duration::Parse("").ok());
  EXPECT_FALSE(Duration::Parse("fast").ok());
  EXPECT_FALSE(Duration::Parse("3 parsecs").ok());
  EXPECT_FALSE(Duration::Parse("12").ok());  // bare number: unit required
  EXPECT_FALSE(Duration::Parse("12xx").ok());
}

TEST(GranularityTest, FixedTruncate) {
  const Granularity g = Granularity::Minute();
  EXPECT_EQ(g.Truncate(Civil(1992, 2, 3, 10, 30, 45)), Civil(1992, 2, 3, 10, 30));
  EXPECT_EQ(g.Truncate(Civil(1992, 2, 3, 10, 30)), Civil(1992, 2, 3, 10, 30));
  EXPECT_EQ(g.NextGranule(Civil(1992, 2, 3, 10, 30, 45)),
            Civil(1992, 2, 3, 10, 31));
  EXPECT_EQ(g.Ceil(Civil(1992, 2, 3, 10, 30)), Civil(1992, 2, 3, 10, 30));
  EXPECT_EQ(g.Ceil(Civil(1992, 2, 3, 10, 30, 1)), Civil(1992, 2, 3, 10, 31));
}

TEST(GranularityTest, TruncateNegativeTimes) {
  const Granularity g = Granularity::Second();
  const TimePoint t = Civil(1969, 12, 31, 23, 59, 59) + Duration::Micros(500000);
  EXPECT_EQ(g.Truncate(t), Civil(1969, 12, 31, 23, 59, 59));
}

TEST(GranularityTest, CalendricTruncate) {
  EXPECT_EQ(Granularity::Month().Truncate(Civil(1992, 2, 17, 5)),
            Civil(1992, 2, 1));
  EXPECT_EQ(Granularity::Year().Truncate(Civil(1992, 7, 4)), Civil(1992, 1, 1));
  EXPECT_EQ(Granularity::Month().NextGranule(Civil(1992, 2, 17)),
            Civil(1992, 3, 1));
}

TEST(GranularityTest, MultiUnitGranules) {
  const Granularity quarter(Granularity::Unit::kMonth, 3);
  EXPECT_EQ(quarter.Truncate(Civil(1992, 5, 20)), Civil(1992, 4, 1));
  const Granularity q15(Granularity::Unit::kMinute, 15);
  EXPECT_EQ(q15.Truncate(Civil(1992, 1, 1, 10, 44)), Civil(1992, 1, 1, 10, 30));
}

TEST(GranularityTest, SameWithinGranule) {
  const Granularity g = Granularity::Second();
  EXPECT_TRUE(g.Same(T(5) + Duration::Micros(100), T(5) + Duration::Micros(900)));
  EXPECT_FALSE(g.Same(T(5), T(6)));
}

TEST(GranularityTest, Parse) {
  ASSERT_OK_AND_ASSIGN(Granularity g, ParseGranularity("15min"));
  EXPECT_EQ(g, Granularity(Granularity::Unit::kMinute, 15));
  ASSERT_OK_AND_ASSIGN(Granularity mo, ParseGranularity("month"));
  EXPECT_EQ(mo, Granularity::Month());
  EXPECT_FALSE(ParseGranularity("fortnight").ok());
  EXPECT_FALSE(ParseGranularity("0s").ok());
}

TEST(IntervalTest, ContainsAndOverlap) {
  const TimeInterval iv(T(10), T(20));
  EXPECT_TRUE(iv.Contains(T(10)));
  EXPECT_TRUE(iv.Contains(T(19)));
  EXPECT_FALSE(iv.Contains(T(20)));  // half-open
  EXPECT_FALSE(iv.Contains(T(9)));
  EXPECT_TRUE(iv.Overlaps(TimeInterval(T(19), T(30))));
  EXPECT_FALSE(iv.Overlaps(TimeInterval(T(20), T(30))));  // meets, no overlap
  EXPECT_TRUE(iv.Contains(TimeInterval(T(12), T(18))));
}

TEST(IntervalTest, MakeRejectsInverted) {
  EXPECT_FALSE(TimeInterval::Make(T(20), T(10)).ok());
  EXPECT_TRUE(TimeInterval::Make(T(10), T(10)).ok());  // empty allowed
}

TEST(IntervalTest, Intersect) {
  const TimeInterval a(T(0), T(10));
  const TimeInterval b(T(5), T(15));
  EXPECT_EQ(a.Intersect(b), TimeInterval(T(5), T(10)));
  EXPECT_TRUE(a.Intersect(TimeInterval(T(20), T(30))).IsEmpty());
}

TEST(ClockTest, LogicalClockMonotone) {
  LogicalClock clock(T(100), Duration::Seconds(1));
  EXPECT_EQ(clock.Next(), T(100));
  EXPECT_EQ(clock.Next(), T(101));
  EXPECT_EQ(clock.Last(), T(101));
}

TEST(ClockTest, LogicalClockClampsBackwardJumps) {
  LogicalClock clock(T(100), Duration::Seconds(1));
  clock.Next();  // 100
  clock.SetTo(T(50));
  const TimePoint next = clock.Next();
  EXPECT_GT(next, T(100));  // never goes backwards
}

TEST(ClockTest, LogicalClockAdvance) {
  LogicalClock clock(T(0), Duration::Seconds(1));
  clock.Advance(Duration::Hours(1));
  EXPECT_EQ(clock.Next(), T(3600));
}

TEST(ClockTest, EnsureAfter) {
  LogicalClock clock(T(0), Duration::Seconds(1));
  clock.EnsureAfter(T(500));
  EXPECT_GT(clock.Next(), T(500));
}

TEST(ClockTest, SystemClockStrictlyIncreasing) {
  SystemClock clock;
  TimePoint prev = clock.Next();
  for (int i = 0; i < 1000; ++i) {
    const TimePoint next = clock.Next();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

}  // namespace
}  // namespace tempspec
