#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace tempspec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad ", 42, " thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad 42 thing");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad 42 thing");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_TRUE(Status::ConstraintViolation("x").IsConstraintViolation());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status st = Status::NotFound("missing");
  Status copy = st;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "missing");
  EXPECT_TRUE(st.IsNotFound());  // source unchanged

  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsNotFound());
}

TEST(StatusTest, CopyAssignOkOverError) {
  Status err = Status::Internal("boom");
  err = Status::OK();
  EXPECT_TRUE(err.ok());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 3);
}

Status FailingHelper() { return Status::IOError("disk"); }

Status UsesReturnNotOk() {
  TS_RETURN_NOT_OK(FailingHelper());
  return Status::Internal("unreachable");
}

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk().IsIOError());
}

Result<int> ProducesValue() { return 5; }
Result<int> ProducesError() { return Status::OutOfRange("x"); }

Status UsesAssignOrReturn(int* out) {
  TS_ASSIGN_OR_RETURN(int v, ProducesValue());
  TS_ASSIGN_OR_RETURN(int w, ProducesError());
  *out = v + w;
  return Status::OK();
}

TEST(MacroTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(&out).IsOutOfRange());
  EXPECT_EQ(out, 0);
}

}  // namespace
}  // namespace tempspec
