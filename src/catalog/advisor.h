// The design-time Advisor: from declared specializations to physical design.
//
// This is the paper's motivating use case made concrete: "The additional
// semantics, when captured by an appropriately extended database system, may
// be used for selecting appropriate storage structures, indexing techniques,
// and query processing strategies."
#ifndef TEMPSPEC_CATALOG_ADVISOR_H_
#define TEMPSPEC_CATALOG_ADVISOR_H_

#include <string>
#include <vector>

#include "model/schema.h"
#include "query/plan.h"
#include "spec/specialization.h"

namespace tempspec {

/// \brief Storage layout recommendation.
enum class StorageLayout : uint8_t {
  kAppendOnlyRollback,  // degenerate/sequential: valid order == stamp order
  kBitemporalBacklog,   // the general representation
};

/// \brief Valid-time stamp materialization recommendation.
enum class StampMaterialization : uint8_t {
  kStore,          // store vt per element
  kComputeOnRead,  // determined relation: vt = m(e), omit the stored stamp
};

/// \brief Extra valid-time index recommendation.
enum class IndexAdvice : uint8_t {
  kNone,              // tt index suffices (degenerate / banded / monotone)
  kIntervalIndex,     // general relations
};

/// \brief Time-stamp encoding recommendation.
enum class EncodingAdvice : uint8_t {
  kRaw,
  kDeltaUnit,  // regular relations: store k, not the chronon count
};

/// \brief The Advisor's complete recommendation for one relation.
struct AdvisorReport {
  StorageLayout storage = StorageLayout::kBitemporalBacklog;
  StampMaterialization stamps = StampMaterialization::kStore;
  IndexAdvice index = IndexAdvice::kIntervalIndex;
  EncodingAdvice encoding = EncodingAdvice::kRaw;
  ExecutionStrategy timeslice_strategy = ExecutionStrategy::kFullScan;
  /// All event-taxonomy properties implied by the declared ones (via the
  /// Figure 2 lattice), most general first.
  std::vector<std::string> inherited_properties;
  /// Declared specializations that are implied by other declared ones.
  std::vector<std::string> redundant_declarations;
  std::vector<std::string> notes;

  std::string ToString() const;
};

/// \brief Produces an AdvisorReport for a declared relation design.
AdvisorReport Advise(const Schema& schema, const SpecializationSet& specs);

}  // namespace tempspec

#endif  // TEMPSPEC_CATALOG_ADVISOR_H_
