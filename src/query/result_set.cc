#include "query/result_set.h"

#include "util/thread_pool.h"

namespace tempspec {

namespace {
// Copies are heavier than scans (tuple values allocate); a smaller morsel
// than the scan default keeps all workers busy on mid-size results.
constexpr size_t kMaterializeMorsel = 1024;
}  // namespace

std::vector<Element> ResultSet::Materialize(ThreadPool* pool) const {
  std::vector<Element> out;
  if (pool == nullptr || pool->size() <= 1 ||
      positions_.size() < 2 * kMaterializeMorsel) {
    out.reserve(positions_.size());
    for (uint64_t pos : positions_) out.push_back(base_[pos]);
    return out;
  }
  out.resize(positions_.size());
  pool->ParallelFor(positions_.size(), kMaterializeMorsel,
                    [&](size_t /*morsel*/, size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        out[i] = base_[positions_[i]];
                      }
                    });
  return out;
}

}  // namespace tempspec
