// Write-ahead log: durable, CRC-guarded, append-only record stream.
//
// The backlog store writes every operation here before applying it; recovery
// replays the log. A torn tail (partial record, CRC mismatch) terminates
// replay cleanly — standard crash semantics.
//
// Fault model (exercised by tests/storage/crash_recovery_test.cc through the
// failpoint seam in util/failpoint.h):
//   - Appends and syncs retry transient IO errors with bounded backoff.
//   - The log tracks the byte offset covered by the last successful fsync;
//     in failpoint builds, destroying the log while the registry is in the
//     crashed state cuts the file at a seeded point within the unsynced
//     tail, modeling page-cache loss and torn tails at machine crash.
//   - Reset() truncates, fsyncs the file, and fsyncs the parent directory,
//     so a crash immediately after a checkpoint cannot resurrect stale
//     records (and recovery additionally skips stale LSNs — see backlog.cc).
//   - Every record is stamped with the log's current *epoch* (generation
//     number), covered by the record CRC. Backlog compaction renumbers LSNs
//     from zero under a bumped epoch; if the compaction's Reset() never
//     becomes durable, the stale records it should have discarded still sit
//     in the file with old, higher LSNs. Replay() delivers only records of
//     the current epoch, so those stale records can neither alias a fresh
//     LSN nor trip the recovery gap check.
#ifndef TEMPSPEC_STORAGE_WAL_H_
#define TEMPSPEC_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "util/result.h"

namespace tempspec {

enum class SyncMode : uint8_t {
  kNone,      // rely on the OS page cache (fastest, weakest)
  kEveryN,    // fsync every N appends
  kAlways,    // fsync per append
};

/// \brief Append-only log file with CRC-checked records.
class WriteAheadLog {
 public:
  /// \brief Opens the log. `epoch` selects which generation of records
  /// Replay() delivers (the backlog store passes the epoch recovered from
  /// its page-file header).
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     SyncMode mode = SyncMode::kNone,
                                                     uint32_t sync_every = 64,
                                                     uint64_t epoch = 0);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// \brief Appends a record; returns its LSN (sequential from 0, or from
  /// the value set by SetNextLsn).
  Result<uint64_t> Append(std::string_view payload);

  Status Sync();

  /// \brief Replays all intact records of the current epoch from the
  /// beginning; records of other epochs (a superseded generation whose
  /// Reset never became durable) are skipped. Returns the number of records
  /// delivered.
  Result<uint64_t> Replay(
      const std::function<Status(uint64_t lsn, std::string_view payload)>& fn);

  /// \brief Discards the log contents (after a checkpoint has persisted
  /// everything elsewhere). The truncation is made durable: the file and
  /// its parent directory are fsynced before returning. LSNs continue from
  /// where they were.
  Status Reset();

  /// \brief Pins the next LSN. The backlog store keeps WAL LSNs equal to
  /// global operation indices so recovery can skip records that a completed
  /// checkpoint already persisted.
  void SetNextLsn(uint64_t lsn) { next_lsn_ = lsn; }

  /// \brief Switches to a new generation: subsequent appends are stamped
  /// with `epoch` and replay delivers only that generation. Called by
  /// backlog compaction after it adopts the rewritten page file.
  void SetEpoch(uint64_t epoch) { epoch_ = epoch; }

  uint64_t epoch() const { return epoch_; }
  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t bytes_written() const { return bytes_written_; }
  /// \brief File offset covered by the last successful fsync (bytes at or
  /// beyond this offset may be lost at a machine crash).
  uint64_t synced_bytes() const { return synced_bytes_; }

 private:
  WriteAheadLog(std::string path, int fd, SyncMode mode, uint32_t sync_every)
      : path_(std::move(path)), fd_(fd), mode_(mode), sync_every_(sync_every) {}

  /// \brief One write attempt (may be retried when nothing reached the
  /// file). Sets *wrote_any when any byte was written.
  Status AppendOnce(std::string* record, bool* wrote_any);
  Status SyncOnce();

  std::string path_;
  int fd_;
  SyncMode mode_;
  uint32_t sync_every_;
  uint32_t appends_since_sync_ = 0;
  uint64_t epoch_ = 0;
  uint64_t next_lsn_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t file_size_ = 0;    // current file length in bytes
  uint64_t synced_bytes_ = 0; // durable watermark (<= file_size_)
};

}  // namespace tempspec

#endif  // TEMPSPEC_STORAGE_WAL_H_
