#!/usr/bin/env python3
"""Schema validator for the SLO health plane endpoints.

Usage:
    tools/check_health_json.py --health health.json [more.json ...]
    tools/check_health_json.py --history history.jsonl [more.jsonl ...]
    curl -s localhost:8391/debug/health  | tools/check_health_json.py --health -
    curl -s localhost:8391/metrics/history | tools/check_health_json.py --history -

--health validates a /debug/health body (also what SHOW HEALTH renders
line-by-line before its summary):
  * a single JSON object with integer `unix_micros`, an array `slos`, and
    an array `series`;
  * every slo verdict carries `relation`, a positive `objective_p99_ms`,
    and `total`/`window` objects with non-negative integer `count`,
    `violations` (<= count), `p99_micros`, and a verdict drawn from the
    closed sets {ok, violated} / {ok, burning}; the window additionally
    carries a non-negative `burn_rate`;
  * every labeled series digest carries non-empty `relation`, `kind`,
    `protocol` strings and non-negative `count`, `p50_micros`,
    `p99_micros` with p50 <= p99.

--history validates a /metrics/history body (SHOW HISTORY): JSONL where
every line is an object with integer `unix_micros` and `counters`,
`gauges` (numeric maps), and `histograms` (name -> {count, sum, p50,
p99} digest) objects; `unix_micros` must be non-decreasing down the file
(the ring renders oldest-first).

Optional gates for smoke scripts: `--min-slos N` and `--min-series N`
(health) or `--min-samples N` (history) turn "valid but empty" into a
failure. Exits nonzero on the first violation. Stdlib only.
"""
import argparse
import json
import math
import sys

TOTAL_VERDICTS = ("ok", "violated")
WINDOW_VERDICTS = ("ok", "burning")


class Violation(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Violation(msg)


def as_uint(obj, key, where):
    require(key in obj, f"{where} lacks {key!r}")
    value = obj[key]
    require(isinstance(value, int) and not isinstance(value, bool),
            f"{where}.{key} is not an integer: {value!r}")
    require(value >= 0, f"{where}.{key} is negative: {value}")
    return value


def as_number(obj, key, where):
    require(key in obj, f"{where} lacks {key!r}")
    value = obj[key]
    require(isinstance(value, (int, float)) and not isinstance(value, bool),
            f"{where}.{key} is not a number: {value!r}")
    require(math.isfinite(value), f"{where}.{key} is not finite: {value!r}")
    return value


def as_nonempty_str(obj, key, where):
    require(key in obj, f"{where} lacks {key!r}")
    value = obj[key]
    require(isinstance(value, str) and value,
            f"{where}.{key} is not a non-empty string: {value!r}")
    return value


def check_bucket(obj, key, where, verdicts, windowed):
    require(key in obj and isinstance(obj[key], dict),
            f"{where} lacks a {key!r} object")
    bucket = obj[key]
    where = f"{where}.{key}"
    count = as_uint(bucket, "count", where)
    violations = as_uint(bucket, "violations", where)
    require(violations <= count,
            f"{where}: violations {violations} > count {count}")
    as_uint(bucket, "p99_micros", where)
    if windowed:
        burn = as_number(bucket, "burn_rate", where)
        require(burn >= 0, f"{where}.burn_rate is negative: {burn}")
    verdict = as_nonempty_str(bucket, "verdict", where)
    require(verdict in verdicts,
            f"{where}.verdict {verdict!r} not in {verdicts}")


def check_health(path, text, args):
    try:
        body = json.loads(text)
    except ValueError as e:
        raise Violation(f"not valid JSON: {e}")
    require(isinstance(body, dict), "top level is not an object")
    as_uint(body, "unix_micros", "body")
    require(isinstance(body.get("slos"), list), "body.slos is not an array")
    require(isinstance(body.get("series"), list),
            "body.series is not an array")

    for i, slo in enumerate(body["slos"]):
        where = f"slos[{i}]"
        require(isinstance(slo, dict), f"{where} is not an object")
        as_nonempty_str(slo, "relation", where)
        objective = as_number(slo, "objective_p99_ms", where)
        require(objective > 0,
                f"{where}.objective_p99_ms not positive: {objective}")
        check_bucket(slo, "total", where, TOTAL_VERDICTS, windowed=False)
        check_bucket(slo, "window", where, WINDOW_VERDICTS, windowed=True)

    for i, series in enumerate(body["series"]):
        where = f"series[{i}]"
        require(isinstance(series, dict), f"{where} is not an object")
        as_nonempty_str(series, "relation", where)
        as_nonempty_str(series, "kind", where)
        as_nonempty_str(series, "protocol", where)
        as_uint(series, "count", where)
        p50 = as_uint(series, "p50_micros", where)
        p99 = as_uint(series, "p99_micros", where)
        require(p50 <= p99, f"{where}: p50 {p50} > p99 {p99}")

    require(len(body["slos"]) >= args.min_slos,
            f"only {len(body['slos'])} slo(s), need >= {args.min_slos}")
    require(len(body["series"]) >= args.min_series,
            f"only {len(body['series'])} series, need >= {args.min_series}")
    print(f"{path}: OK ({len(body['slos'])} slo(s), "
          f"{len(body['series'])} series)")


def check_numeric_map(obj, key, where):
    require(key in obj and isinstance(obj[key], dict),
            f"{where} lacks a {key!r} object")
    for name, value in obj[key].items():
        require(isinstance(value, (int, float)) and not isinstance(value, bool),
                f"{where}.{key}[{name!r}] is not a number: {value!r}")


def check_history(path, text, args):
    samples = 0
    prev_micros = -1
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"line {lineno}"
        try:
            sample = json.loads(line)
        except ValueError as e:
            raise Violation(f"{where}: not valid JSON: {e}")
        require(isinstance(sample, dict), f"{where}: not an object")
        micros = as_uint(sample, "unix_micros", where)
        require(micros >= prev_micros,
                f"{where}: unix_micros {micros} decreases (ring must render "
                f"oldest-first)")
        prev_micros = micros
        check_numeric_map(sample, "counters", where)
        check_numeric_map(sample, "gauges", where)
        require(isinstance(sample.get("histograms"), dict),
                f"{where}: lacks a histograms object")
        for name, digest in sample["histograms"].items():
            hwhere = f"{where} histogram {name!r}"
            require(isinstance(digest, dict), f"{hwhere} is not an object")
            for key in ("count", "sum", "p50", "p99"):
                as_uint(digest, key, hwhere)
        samples += 1
    require(samples >= args.min_samples,
            f"only {samples} sample(s), need >= {args.min_samples}")
    print(f"{path}: OK ({samples} history sample(s))")


def check_file(path, args):
    try:
        text = (sys.stdin.read() if path == "-"
                else open(path, "r", encoding="utf-8").read())
    except OSError as e:
        print(f"{path}: FAIL: unreadable: {e}")
        return False
    try:
        if args.health:
            check_health("<stdin>" if path == "-" else path, text, args)
        else:
            check_history("<stdin>" if path == "-" else path, text, args)
        return True
    except Violation as e:
        print(f"{path}: FAIL: {e}")
        return False


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--health", action="store_true",
                      help="validate /debug/health JSON bodies")
    mode.add_argument("--history", action="store_true",
                      help="validate /metrics/history JSONL bodies")
    parser.add_argument("--min-slos", type=int, default=0)
    parser.add_argument("--min-series", type=int, default=0)
    parser.add_argument("--min-samples", type=int, default=0)
    parser.add_argument("files", nargs="+")
    args = parser.parse_args(argv[1:])
    ok = all([check_file(p, args) for p in args.files])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
