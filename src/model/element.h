// Temporal elements — the unit of storage of a temporal relation (Section 2).
//
// An element carries: an element surrogate (system-generated identity used to
// delimit its existence interval in the database), an object surrogate
// (identity of the modeled real-world object; all elements of one object form
// its "life-line"), the transaction times tt_b (insertion) and tt_d (logical
// deletion, open = until-changed), the valid time-stamp (event or interval),
// and the explicit attribute values.
#ifndef TEMPSPEC_MODEL_ELEMENT_H_
#define TEMPSPEC_MODEL_ELEMENT_H_

#include <cstdint>
#include <string>

#include "model/tuple.h"
#include "timex/interval.h"
#include "timex/time_point.h"
#include "util/result.h"

namespace tempspec {

/// \brief System-generated identity of an element. Never reused: a logical
/// delete followed by re-insert yields a fresh surrogate so that tt_b / tt_d
/// points stay unambiguous (Section 2).
using ElementSurrogate = uint64_t;

/// \brief Identity of the modeled real-world object.
using ObjectSurrogate = uint64_t;

constexpr ElementSurrogate kInvalidElementSurrogate = 0;

/// \brief The valid time-stamp of an element: a single instant for event
/// relations, a half-open interval for interval relations.
class ValidTime {
 public:
  ValidTime() : begin_(TimePoint::Min()), end_(TimePoint::Min()), is_event_(true) {}

  static ValidTime Event(TimePoint at) { return ValidTime(at, at, /*event=*/true); }
  static Result<ValidTime> Interval(TimePoint begin, TimePoint end) {
    if (end < begin) {
      return Status::InvalidArgument("valid interval end ", end.ToString(),
                                     " precedes begin ", begin.ToString());
    }
    return ValidTime(begin, end, /*event=*/false);
  }
  static ValidTime IntervalUnchecked(TimePoint begin, TimePoint end) {
    return ValidTime(begin, end, /*event=*/false);
  }

  bool is_event() const { return is_event_; }
  bool is_interval() const { return !is_event_; }

  /// \brief The instant of an event stamp.
  TimePoint at() const { return begin_; }
  /// \brief vt_b of an interval stamp (== at() for events).
  TimePoint begin() const { return begin_; }
  /// \brief vt_e of an interval stamp (== at() for events).
  TimePoint end() const { return end_; }

  TimeInterval AsInterval() const { return TimeInterval(begin_, end_); }

  /// \brief True if the fact was valid at `tp`: events match exactly, interval
  /// stamps use half-open containment.
  bool ValidAt(TimePoint tp) const {
    return is_event_ ? begin_ == tp : (begin_ <= tp && tp < end_);
  }

  std::string ToString() const {
    if (is_event_) return begin_.ToString();
    return "[" + begin_.ToString() + ", " + end_.ToString() + ")";
  }

  friend bool operator==(const ValidTime&, const ValidTime&) = default;

 private:
  ValidTime(TimePoint begin, TimePoint end, bool event)
      : begin_(begin), end_(end), is_event_(event) {}

  TimePoint begin_;
  TimePoint end_;
  bool is_event_;
};

/// \brief A stored temporal element.
struct Element {
  ElementSurrogate element_surrogate = kInvalidElementSurrogate;
  ObjectSurrogate object_surrogate = 0;
  /// Insertion transaction time tt_b.
  TimePoint tt_begin = TimePoint::Min();
  /// Logical-deletion transaction time tt_d; Max() while current.
  TimePoint tt_end = TimePoint::Max();
  ValidTime valid;
  Tuple attributes;

  /// \brief The existence interval [tt_b, tt_d) of the element (Section 2).
  TimeInterval ExistenceInterval() const { return TimeInterval(tt_begin, tt_end); }

  /// \brief True if the element belongs to the historical state at
  /// transaction time `tt`.
  bool ExistsAt(TimePoint tt) const { return tt_begin <= tt && tt < tt_end; }

  /// \brief True if the element has not been logically deleted.
  bool IsCurrent() const { return tt_end.IsMax(); }

  std::string ToString() const;
};

/// \brief Monotone surrogate generators (never yield kInvalidElementSurrogate).
class SurrogateGenerator {
 public:
  explicit SurrogateGenerator(uint64_t start = 1) : next_(start == 0 ? 1 : start) {}
  uint64_t Next() { return next_++; }
  uint64_t Peek() const { return next_; }
  /// \brief Advances past ids already in use (recovery).
  void EnsureAbove(uint64_t used) {
    if (next_ <= used) next_ = used + 1;
  }

 private:
  uint64_t next_;
};

}  // namespace tempspec

#endif  // TEMPSPEC_MODEL_ELEMENT_H_
