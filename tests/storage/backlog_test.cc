#include "storage/backlog.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/serde.h"
#include "storage/snapshot.h"
#include "testing.h"

namespace tempspec {
namespace {

using testing::MakeEventElement;
using testing::T;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("tempspec_backlog_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string path() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

BacklogEntry Insert(int64_t tt, ElementSurrogate id, int64_t vt) {
  BacklogEntry e;
  e.op = BacklogOpType::kInsert;
  e.tt = T(tt);
  e.element = MakeEventElement(T(tt), T(vt), id, id % 4 + 1);
  e.element.attributes = Tuple{static_cast<int64_t>(id)};
  return e;
}

BacklogEntry Delete(int64_t tt, ElementSurrogate target) {
  BacklogEntry e;
  e.op = BacklogOpType::kLogicalDelete;
  e.tt = T(tt);
  e.target = target;
  return e;
}

TEST(BacklogEntryTest, EncodeDecodeRoundTrip) {
  const BacklogEntry ins = Insert(10, 3, 5);
  ASSERT_OK_AND_ASSIGN(BacklogEntry back, BacklogEntry::Decode(ins.Encode()));
  EXPECT_EQ(back.op, BacklogOpType::kInsert);
  EXPECT_EQ(back.tt, T(10));
  EXPECT_EQ(back.element.element_surrogate, 3u);

  const BacklogEntry del = Delete(20, 3);
  ASSERT_OK_AND_ASSIGN(BacklogEntry back2, BacklogEntry::Decode(del.Encode()));
  EXPECT_EQ(back2.op, BacklogOpType::kLogicalDelete);
  EXPECT_EQ(back2.target, 3u);

  EXPECT_TRUE(BacklogEntry::Decode("\x09garbage").status().IsCorruption());
}

TEST(BacklogStoreTest, InMemoryMaterialization) {
  ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open({}));
  EXPECT_FALSE(store->durable());
  ASSERT_OK(store->Append(Insert(10, 1, 5)));
  ASSERT_OK(store->Append(Insert(20, 2, 15)));
  ASSERT_OK(store->Append(Delete(30, 1)));
  ASSERT_OK(store->Append(Insert(40, 3, 35)));

  EXPECT_EQ(store->MaterializeState(T(5)).size(), 0u);
  EXPECT_EQ(store->MaterializeState(T(10)).size(), 1u);
  EXPECT_EQ(store->MaterializeState(T(25)).size(), 2u);
  EXPECT_EQ(store->MaterializeState(T(30)).size(), 1u);  // 1 deleted at 30
  EXPECT_EQ(store->MaterializeState(T(100)).size(), 2u);

  const auto all = store->ReconstructElements();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].tt_end, T(30));  // element 1's existence interval closed
  EXPECT_TRUE(all[1].IsCurrent());
}

TEST(BacklogStoreTest, DurableRecoveryFromWal) {
  TempDir dir;
  BacklogStore::Options options;
  options.directory = dir.path();
  {
    ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
    EXPECT_TRUE(store->durable());
    ASSERT_OK(store->Append(Insert(10, 1, 5)));
    ASSERT_OK(store->Append(Insert(20, 2, 15)));
    ASSERT_OK(store->Append(Delete(30, 1)));
    // No checkpoint: everything lives in the WAL.
  }
  ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
  EXPECT_EQ(store->size(), 3u);
  EXPECT_EQ(store->MaterializeState(T(100)).size(), 1u);
}

TEST(BacklogStoreTest, CheckpointMovesEntriesToPages) {
  TempDir dir;
  BacklogStore::Options options;
  options.directory = dir.path();
  {
    ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(store->Append(Insert(10 + i, i + 1, i)));
    }
    ASSERT_OK(store->Checkpoint());
    EXPECT_EQ(store->persisted_entries(), 100u);
    // Post-checkpoint appends go to the WAL.
    ASSERT_OK(store->Append(Delete(500, 1)));
  }
  ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
  EXPECT_EQ(store->size(), 101u);
  EXPECT_EQ(store->persisted_entries(), 100u);
  EXPECT_EQ(store->MaterializeState(T(1000)).size(), 99u);
  // Entries recovered in order.
  EXPECT_EQ(store->entries().front().tt, T(10));
  EXPECT_EQ(store->entries().back().op, BacklogOpType::kLogicalDelete);
}

TEST(BacklogStoreTest, RepeatedCheckpointsAndReopen) {
  TempDir dir;
  BacklogStore::Options options;
  options.directory = dir.path();
  size_t total = 0;
  for (int round = 0; round < 3; ++round) {
    ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
    ASSERT_EQ(store->size(), total);
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(store->Append(Insert(1000 * round + i, total + i + 1, i)));
    }
    total += 50;
    ASSERT_OK(store->Checkpoint());
  }
  ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
  EXPECT_EQ(store->size(), 150u);
}

TEST(BacklogStoreTest, LargeElementsSpanPages) {
  TempDir dir;
  BacklogStore::Options options;
  options.directory = dir.path();
  {
    ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
    for (int i = 0; i < 20; ++i) {
      BacklogEntry entry = Insert(i + 1, i + 1, i);
      entry.element.attributes = Tuple{std::string(3000, 'x')};  // ~3 KB each
      ASSERT_OK(store->Append(entry));
    }
    ASSERT_OK(store->Checkpoint());
  }
  ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
  ASSERT_EQ(store->size(), 20u);
  EXPECT_EQ(store->entries()[7].element.attributes.at(0).AsString().size(), 3000u);
}

TEST(BacklogStoreTest, RejectsUnknownFormatVersion) {
  TempDir dir;
  BacklogStore::Options options;
  options.directory = dir.path();
  {
    ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
    ASSERT_OK(store->Append(Insert(10, 1, 5)));
    ASSERT_OK(store->Checkpoint());
  }
  // Rewrite the header as an older format version: magic intact, version 1.
  // Reopen must refuse loudly — a silent "recovery" would discard the data,
  // since pre-v3 records carry no CRC prefixes and fail every scan.
  {
    ASSERT_OK_AND_ASSIGN(auto disk,
                         DiskManager::Open(dir.path() + "/backlog.pages"));
    Page page;
    SlottedPage sp(&page);
    sp.Init();
    std::string meta;
    Encoder enc(&meta);
    enc.PutU32(0x544C4B42u);  // backlog magic
    enc.PutU32(1u);           // format version 1
    enc.PutU64(1u);           // v1-style entry count
    ASSERT_OK(sp.Insert(meta).status());
    ASSERT_OK(disk->WritePage(0, page));
    ASSERT_OK(disk->Sync());
  }
  auto reopened = BacklogStore::Open(options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
  EXPECT_NE(reopened.status().ToString().find("version"), std::string::npos)
      << reopened.status().ToString();
}

TEST(BacklogStoreTest, ReplaceAllSurvivesReopenAndBumpsEpoch) {
  TempDir dir;
  BacklogStore::Options options;
  options.directory = dir.path();
  {
    ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(store->Append(Insert(10 + i, i + 1, i)));
    }
    ASSERT_OK(store->Checkpoint());
    ASSERT_OK(store->Append(Delete(100, 1)));
    EXPECT_EQ(store->epoch(), 0u);

    // Compact down to the 19 surviving inserts.
    std::vector<BacklogEntry> compacted;
    for (int i = 1; i < 20; ++i) {
      compacted.push_back(Insert(10 + i, i + 1, i));
    }
    ASSERT_OK(store->ReplaceAll(compacted));
    EXPECT_EQ(store->epoch(), 1u);
    EXPECT_EQ(store->persisted_entries(), 19u);

    // The store stays writable across generations.
    ASSERT_OK(store->Append(Insert(200, 50, 199)));
  }
  ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open(options));
  EXPECT_EQ(store->epoch(), 1u);
  ASSERT_EQ(store->size(), 20u);
  EXPECT_EQ(store->entries().front().element.element_surrogate, 2u);
  EXPECT_EQ(store->entries().back().element.element_surrogate, 50u);
}

TEST(SnapshotManagerTest, StateMatchesNaiveMaterialization) {
  ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open({}));
  SnapshotManager snapshots(store.get(), /*interval=*/10);
  ElementSurrogate next = 1;
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(store->Append(Insert(i * 10, next, i)));
    ++next;
    if (i % 3 == 2) {
      ASSERT_OK(store->Append(Delete(i * 10 + 5, next - 2)));
    }
    snapshots.Refresh();
  }
  EXPECT_GT(snapshots.snapshot_count(), 10u);
  for (int64_t tt : {0, 55, 123, 999, 1995, 100000}) {
    auto expected = store->MaterializeState(T(tt));
    auto actual = snapshots.StateAt(T(tt));
    auto key = [](const Element& e) { return e.element_surrogate; };
    std::sort(expected.begin(), expected.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    std::sort(actual.begin(), actual.end(),
              [&](auto& a, auto& b) { return key(a) < key(b); });
    ASSERT_EQ(actual.size(), expected.size()) << "tt=" << tt;
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].element_surrogate, expected[i].element_surrogate);
    }
  }
}

TEST(SnapshotManagerTest, QueryBeforeAnySnapshot) {
  ASSERT_OK_AND_ASSIGN(auto store, BacklogStore::Open({}));
  SnapshotManager snapshots(store.get(), 1000);  // interval never reached
  ASSERT_OK(store->Append(Insert(10, 1, 5)));
  snapshots.Refresh();
  EXPECT_EQ(snapshots.StateAt(T(5)).size(), 0u);
  EXPECT_EQ(snapshots.StateAt(T(10)).size(), 1u);
}

}  // namespace
}  // namespace tempspec
