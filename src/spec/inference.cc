#include "spec/inference.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <numeric>
#include <sstream>

#include "spec/interinterval_spec.h"

namespace tempspec {

namespace {

EventProfile InferEventProfile(std::span<const EventStamp> stamps,
                               Granularity granularity) {
  EventProfile p;
  if (stamps.empty()) return p;
  p.applicable = true;
  p.degenerate = true;
  int64_t lo = std::numeric_limits<int64_t>::max();
  int64_t hi = std::numeric_limits<int64_t>::min();
  for (const auto& s : stamps) {
    const int64_t off = s.vt.MicrosSince(s.tt);
    lo = std::min(lo, off);
    hi = std::max(hi, off);
    if (!granularity.Same(s.tt, s.vt)) p.degenerate = false;
  }
  p.min_offset_us = lo;
  p.max_offset_us = hi;
  p.tightest_band = Band::Between(Duration::Micros(lo), Duration::Micros(hi));
  p.classified = p.degenerate
                     ? EventSpecKind::kDegenerate
                     : EventSpecialization::ClassifyBand(p.tightest_band);
  p.determined_by = FitMappingFunction(stamps);
  return p;
}

OrderingProfile InferOrdering(std::span<const EventStamp> stamps, SpecScope scope) {
  OrderingProfile p;
  p.non_decreasing =
      OrderingSpec(OrderingKind::kNonDecreasing, scope).CheckStamps(stamps).ok();
  p.non_increasing =
      OrderingSpec(OrderingKind::kNonIncreasing, scope).CheckStamps(stamps).ok();
  p.sequential =
      OrderingSpec(OrderingKind::kSequential, scope).CheckStamps(stamps).ok();
  return p;
}

bool AllAdjacentDiffsEqual(std::span<const TimePoint> sorted, int64_t unit) {
  if (unit == 0) return false;
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (sorted[i + 1].MicrosSince(sorted[i]) != unit) return false;
  }
  return true;
}

RegularityProfile InferRegularity(std::span<const EventStamp> stamps) {
  RegularityProfile p;
  if (stamps.empty()) return p;

  std::vector<TimePoint> tts, vts;
  tts.reserve(stamps.size());
  vts.reserve(stamps.size());
  for (const auto& s : stamps) {
    tts.push_back(s.tt);
    vts.push_back(s.vt);
  }

  p.tt_unit_us = InferUnit(tts);
  p.tt_regular = true;  // congruence always holds for SOME unit (the gcd)
  p.vt_unit_us = InferUnit(vts);
  p.vt_regular = true;

  std::vector<TimePoint> tt_sorted = tts, vt_sorted = vts;
  std::sort(tt_sorted.begin(), tt_sorted.end());
  std::sort(vt_sorted.begin(), vt_sorted.end());
  p.tt_strict = AllAdjacentDiffsEqual(tt_sorted, p.tt_unit_us);
  p.vt_strict = AllAdjacentDiffsEqual(vt_sorted, p.vt_unit_us);

  // Temporal regularity requires a shared multiplier k for both stamps,
  // which forces vt - tt to be constant across elements.
  const int64_t offset0 = stamps.front().vt.MicrosSince(stamps.front().tt);
  p.temporal_regular =
      std::all_of(stamps.begin(), stamps.end(), [&](const EventStamp& s) {
        return s.vt.MicrosSince(s.tt) == offset0;
      });
  if (p.temporal_regular) {
    p.temporal_unit_us = p.tt_unit_us;
    p.temporal_strict = p.tt_strict;
  }
  return p;
}

IntervalProfile InferInterval(std::span<const Element> elements,
                              TransactionAnchor anchor) {
  IntervalProfile p;
  std::vector<IntervalStamp> stamps = ExtractIntervalStamps(elements, anchor);
  if (stamps.empty()) return p;
  p.applicable = true;

  int64_t valid_gcd = 0;
  bool valid_all_equal = true;
  int64_t first_len = stamps.front().valid.end().MicrosSince(
      stamps.front().valid.begin());
  for (const auto& s : stamps) {
    const int64_t len = s.valid.end().MicrosSince(s.valid.begin());
    valid_gcd = std::gcd(valid_gcd, len);
    if (len != first_len) valid_all_equal = false;
  }
  p.valid_duration_unit_us = valid_gcd;
  p.valid_strict = valid_all_equal && first_len > 0;

  int64_t exist_gcd = 0;
  bool exist_all_equal = true;
  std::optional<int64_t> first_exist;
  for (const Element& e : elements) {
    if (e.tt_end.IsMax()) continue;
    const int64_t len = e.tt_end.MicrosSince(e.tt_begin);
    exist_gcd = std::gcd(exist_gcd, len);
    if (!first_exist) first_exist = len;
    if (len != *first_exist) exist_all_equal = false;
  }
  p.existence_duration_unit_us = exist_gcd;
  p.existence_strict = first_exist.has_value() && exist_all_equal && *first_exist > 0;

  // Allen relations of every successive pair, in transaction-time order.
  std::stable_sort(stamps.begin(), stamps.end(),
                   [](const IntervalStamp& a, const IntervalStamp& b) {
                     return a.tt < b.tt;
                   });
  bool first_pair = true;
  for (size_t i = 0; i + 1 < stamps.size(); ++i) {
    auto rel = Classify(stamps[i].valid, stamps[i + 1].valid);
    if (!rel.ok()) {
      p.successive.clear();
      break;
    }
    if (first_pair) {
      p.successive.insert(rel.ValueOrDie());
      first_pair = false;
    } else if (!p.successive.count(rel.ValueOrDie())) {
      // A successive-X property must hold for every pair; intersect.
      p.successive.clear();
      break;
    }
  }
  p.contiguous = p.successive.count(AllenRelation::kMeets) > 0;
  return p;
}

}  // namespace

int64_t InferUnit(std::span<const TimePoint> stamps) {
  if (stamps.size() < 2) return 0;
  int64_t g = 0;
  for (const TimePoint& tp : stamps) {
    g = std::gcd(g, std::llabs(tp.MicrosSince(stamps.front())));
  }
  return g;
}

std::optional<MappingFunction> FitMappingFunction(
    std::span<const EventStamp> stamps) {
  if (stamps.empty()) return std::nullopt;

  auto fits = [&](const MappingFunction& m) {
    return std::all_of(stamps.begin(), stamps.end(), [&](const EventStamp& s) {
      return m.ApplyToTransactionTime(s.tt) == s.vt;
    });
  };

  // Family 1: constant offset m(e) = tt + c.
  const int64_t c = stamps.front().vt.MicrosSince(stamps.front().tt);
  MappingFunction offset = MappingFunction::Offset(Duration::Micros(c));
  if (fits(offset)) return offset;

  // Family 2: truncate to a granule, plus the residual offset of the first
  // stamp ("valid from the most recent hour").
  for (Granularity g : {Granularity::Second(), Granularity::Minute(),
                        Granularity::Hour(), Granularity::Day()}) {
    const int64_t resid =
        stamps.front().vt.MicrosSince(g.Truncate(stamps.front().tt));
    MappingFunction trunc = MappingFunction::TruncateThenOffset(
        g, Duration::Micros(resid));
    if (fits(trunc)) return trunc;
  }

  // Family 3: next granule boundary at a phase ("next closest 8:00 a.m.").
  for (Granularity g : {Granularity::Hour(), Granularity::Day()}) {
    const TimePoint tt0 = stamps.front().tt;
    const TimePoint vt0 = stamps.front().vt;
    if (vt0 < tt0) continue;
    const int64_t phase = vt0.MicrosSince(g.Truncate(vt0));
    MappingFunction next = MappingFunction::NextPhase(g, Duration::Micros(phase));
    if (fits(next)) return next;
  }
  return std::nullopt;
}

Result<EventSpecialization> SpecFromProfile(const EventProfile& profile) {
  if (!profile.applicable) {
    return Status::InvalidArgument("profile has no stamps to declare from");
  }
  Duration lo = Duration::Micros(profile.min_offset_us);
  Duration hi = Duration::Micros(profile.max_offset_us);
  // A zero-width band (constant offset) cannot instantiate the two-bound
  // types, whose Δt_min < Δt_max is strict; widen by one chronon.
  if (profile.min_offset_us == profile.max_offset_us) {
    if (profile.classified == EventSpecKind::kDelayedStronglyRetroactivelyBounded) {
      lo = lo - Duration::Micros(1);
    } else if (profile.classified ==
               EventSpecKind::kEarlyStronglyPredictivelyBounded) {
      hi = hi + Duration::Micros(1);
    }
  }
  Result<EventSpecialization> spec = EventSpecialization::General();
  switch (profile.classified) {
    case EventSpecKind::kGeneral:
      spec = EventSpecialization::General();
      break;
    case EventSpecKind::kRetroactive:
      spec = EventSpecialization::Retroactive();
      break;
    case EventSpecKind::kDelayedRetroactive:
      spec = EventSpecialization::DelayedRetroactive(-hi);
      break;
    case EventSpecKind::kPredictive:
      spec = EventSpecialization::Predictive();
      break;
    case EventSpecKind::kEarlyPredictive:
      spec = EventSpecialization::EarlyPredictive(lo);
      break;
    case EventSpecKind::kRetroactivelyBounded:
      spec = EventSpecialization::RetroactivelyBounded(-lo);
      break;
    case EventSpecKind::kPredictivelyBounded:
      spec = EventSpecialization::PredictivelyBounded(hi);
      break;
    case EventSpecKind::kStronglyRetroactivelyBounded:
      spec = EventSpecialization::StronglyRetroactivelyBounded(-lo);
      break;
    case EventSpecKind::kDelayedStronglyRetroactivelyBounded:
      spec = EventSpecialization::DelayedStronglyRetroactivelyBounded(-hi, -lo);
      break;
    case EventSpecKind::kStronglyPredictivelyBounded:
      spec = EventSpecialization::StronglyPredictivelyBounded(hi);
      break;
    case EventSpecKind::kEarlyStronglyPredictivelyBounded:
      spec = EventSpecialization::EarlyStronglyPredictivelyBounded(lo, hi);
      break;
    case EventSpecKind::kStronglyBounded:
      spec = EventSpecialization::StronglyBounded(-lo, hi);
      break;
    case EventSpecKind::kDegenerate:
      spec = EventSpecialization::Degenerate();
      break;
  }
  TS_RETURN_NOT_OK(spec.status());
  if (profile.determined_by) {
    return spec.ValueOrDie().Determined(*profile.determined_by);
  }
  return spec;
}

RelationProfile InferProfile(std::span<const Element> elements,
                             ValidTimeKind valid_kind, Granularity granularity) {
  RelationProfile profile;
  profile.element_count = elements.size();
  profile.valid_kind = valid_kind;

  constexpr TransactionAnchor kAnchor = TransactionAnchor::kInsertion;

  if (valid_kind == ValidTimeKind::kEvent) {
    std::vector<EventStamp> stamps = ExtractEventStamps(elements, kAnchor);
    profile.event = InferEventProfile(stamps, granularity);
    profile.global_ordering = InferOrdering(stamps, SpecScope::kPerRelation);
    profile.per_surrogate_ordering =
        InferOrdering(stamps, SpecScope::kPerObjectSurrogate);
    profile.regularity = InferRegularity(stamps);

    // Per-surrogate regularity: profile each life-line, summarize with the
    // gcd of units and the conjunction of strictness.
    std::map<ObjectSurrogate, std::vector<EventStamp>> partitions;
    for (const EventStamp& s : stamps) partitions[s.partition].push_back(s);
    RegularityProfile per;
    bool first_partition = true;
    for (const auto& [object, group] : partitions) {
      (void)object;
      const RegularityProfile p = InferRegularity(group);
      if (first_partition) {
        per = p;
        first_partition = false;
        continue;
      }
      per.tt_unit_us = std::gcd(per.tt_unit_us, p.tt_unit_us);
      per.vt_unit_us = std::gcd(per.vt_unit_us, p.vt_unit_us);
      per.tt_strict = per.tt_strict && p.tt_strict &&
                      per.tt_unit_us == p.tt_unit_us;
      per.vt_strict = per.vt_strict && p.vt_strict &&
                      per.vt_unit_us == p.vt_unit_us;
      per.temporal_regular = per.temporal_regular && p.temporal_regular;
      per.temporal_unit_us = std::gcd(per.temporal_unit_us, p.temporal_unit_us);
      per.temporal_strict = per.temporal_strict && p.temporal_strict &&
                            per.temporal_unit_us == p.temporal_unit_us;
    }
    profile.per_surrogate_regularity = per;
  } else {
    std::vector<EventStamp> begins, ends;
    for (const Element& e : elements) {
      begins.push_back(EventStamp{e.tt_begin, e.valid.begin(), e.object_surrogate});
      ends.push_back(EventStamp{e.tt_begin, e.valid.end(), e.object_surrogate});
    }
    profile.event = InferEventProfile(begins, granularity);
    profile.event_end = InferEventProfile(ends, granularity);
    profile.interval = InferInterval(elements, kAnchor);

    std::vector<IntervalStamp> istamps = ExtractIntervalStamps(elements, kAnchor);
    profile.global_ordering.non_decreasing =
        IntervalOrderingSpec(IntervalOrderingKind::kNonDecreasing)
            .CheckStamps(istamps)
            .ok();
    profile.global_ordering.non_increasing =
        IntervalOrderingSpec(IntervalOrderingKind::kNonIncreasing)
            .CheckStamps(istamps)
            .ok();
    profile.global_ordering.sequential =
        IntervalOrderingSpec(IntervalOrderingKind::kSequential)
            .CheckStamps(istamps)
            .ok();
    IntervalOrderingSpec nd(IntervalOrderingKind::kNonDecreasing,
                            SpecScope::kPerObjectSurrogate);
    IntervalOrderingSpec ni(IntervalOrderingKind::kNonIncreasing,
                            SpecScope::kPerObjectSurrogate);
    IntervalOrderingSpec sq(IntervalOrderingKind::kSequential,
                            SpecScope::kPerObjectSurrogate);
    profile.per_surrogate_ordering.non_decreasing = nd.CheckStamps(istamps).ok();
    profile.per_surrogate_ordering.non_increasing = ni.CheckStamps(istamps).ok();
    profile.per_surrogate_ordering.sequential = sq.CheckStamps(istamps).ok();
  }
  return profile;
}

std::string RelationProfile::Report() const {
  std::ostringstream ss;
  ss << "Specialization profile (" << element_count << " elements, "
     << (valid_kind == ValidTimeKind::kEvent ? "event" : "interval")
     << " relation)\n";

  auto describe_event = [&](const char* label, const EventProfile& p) {
    if (!p.applicable) return;
    ss << "  " << label << ": " << EventSpecKindToString(p.classified)
       << ", offsets in " << p.tightest_band.ToString();
    if (p.determined_by) ss << ", determined by " << p.determined_by->ToString();
    ss << "\n";
  };
  describe_event(valid_kind == ValidTimeKind::kEvent ? "event" : "vt_b", event);
  if (valid_kind == ValidTimeKind::kInterval) describe_event("vt_e", event_end);

  auto describe_ordering = [&](const char* label, const OrderingProfile& o) {
    ss << "  " << label << ":";
    if (o.sequential) ss << " sequential";
    if (o.non_decreasing) ss << " non-decreasing";
    if (o.non_increasing) ss << " non-increasing";
    if (!o.sequential && !o.non_decreasing && !o.non_increasing) ss << " general";
    ss << "\n";
  };
  describe_ordering("global ordering", global_ordering);
  describe_ordering("per-surrogate ordering", per_surrogate_ordering);

  if (valid_kind == ValidTimeKind::kEvent) {
    ss << "  regularity: tt unit " << regularity.tt_unit_us << "us"
       << (regularity.tt_strict ? " (strict)" : "") << ", vt unit "
       << regularity.vt_unit_us << "us"
       << (regularity.vt_strict ? " (strict)" : "");
    if (regularity.temporal_regular) {
      ss << ", temporal unit " << regularity.temporal_unit_us << "us"
         << (regularity.temporal_strict ? " (strict)" : "");
    }
    ss << "\n";
  } else if (interval.applicable) {
    ss << "  interval regularity: valid unit " << interval.valid_duration_unit_us
       << "us" << (interval.valid_strict ? " (strict)" : "")
       << ", existence unit " << interval.existence_duration_unit_us << "us"
       << (interval.existence_strict ? " (strict)" : "") << "\n";
    if (!interval.successive.empty()) {
      ss << "  successive transaction time:";
      for (AllenRelation rel : interval.successive) {
        ss << " " << AllenRelationToString(rel);
      }
      ss << "\n";
    }
  }
  return ss.str();
}

void IncrementalEventProfile::Observe(TimePoint tt, TimePoint vt) {
  const int64_t off = vt.MicrosSince(tt);
  if (count_ == 0) {
    min_offset_us_ = off;
    max_offset_us_ = off;
  } else {
    min_offset_us_ = std::min(min_offset_us_, off);
    max_offset_us_ = std::max(max_offset_us_, off);
  }
  if (!granularity_.Same(tt, vt)) degenerate_ = false;
  ++count_;
}

EventProfile IncrementalEventProfile::Profile() const {
  EventProfile p;
  if (count_ == 0) return p;
  p.applicable = true;
  p.min_offset_us = min_offset_us_;
  p.max_offset_us = max_offset_us_;
  p.degenerate = degenerate_;
  p.tightest_band = Band::Between(Duration::Micros(min_offset_us_),
                                  Duration::Micros(max_offset_us_));
  p.classified = p.degenerate
                     ? EventSpecKind::kDegenerate
                     : EventSpecialization::ClassifyBand(p.tightest_band);
  return p;
}

EventSpecKind IncrementalEventProfile::ObservedKind() const {
  return count_ == 0 ? EventSpecKind::kGeneral : Profile().classified;
}

}  // namespace tempspec
