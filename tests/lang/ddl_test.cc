#include "lang/ddl.h"

#include <gtest/gtest.h>

#include "spec/inference.h"
#include "spec/specialization.h"
#include "testing.h"

namespace tempspec {
namespace {

TEST(DdlTest, ParsesEventRelationWithBands) {
  ASSERT_OK_AND_ASSIGN(ParsedRelation parsed, ParseCreateRelation(R"(
      CREATE EVENT RELATION plant_temperatures (
          sensor INT64 KEY,
          celsius DOUBLE
      ) GRANULARITY 1s
      WITH DELAYED RETROACTIVE 30s,
           RETROACTIVELY BOUNDED 120s;
  )"));
  EXPECT_EQ(parsed.schema->relation_name(), "plant_temperatures");
  EXPECT_TRUE(parsed.schema->IsEventRelation());
  EXPECT_EQ(parsed.schema->num_attributes(), 2u);
  EXPECT_EQ(parsed.schema->attribute(0).role, AttributeRole::kTimeInvariantKey);
  EXPECT_EQ(parsed.schema->valid_granularity(), Granularity::Second());
  ASSERT_EQ(parsed.specializations.event_specs().size(), 2u);
  EXPECT_EQ(parsed.specializations.event_specs()[0].kind(),
            EventSpecKind::kDelayedRetroactive);
  EXPECT_EQ(parsed.specializations.event_specs()[1].kind(),
            EventSpecKind::kRetroactivelyBounded);
}

TEST(DdlTest, ParsesAllEventTypes) {
  const struct {
    const char* clause;
    EventSpecKind kind;
  } cases[] = {
      {"RETROACTIVE", EventSpecKind::kRetroactive},
      {"DELAYED RETROACTIVE 30s", EventSpecKind::kDelayedRetroactive},
      {"PREDICTIVE", EventSpecKind::kPredictive},
      {"EARLY PREDICTIVE 3d", EventSpecKind::kEarlyPredictive},
      {"RETROACTIVELY BOUNDED 1mo", EventSpecKind::kRetroactivelyBounded},
      {"PREDICTIVELY BOUNDED 30d", EventSpecKind::kPredictivelyBounded},
      {"STRONGLY RETROACTIVELY BOUNDED 30s",
       EventSpecKind::kStronglyRetroactivelyBounded},
      {"DELAYED STRONGLY RETROACTIVELY BOUNDED 2d 31d",
       EventSpecKind::kDelayedStronglyRetroactivelyBounded},
      {"STRONGLY PREDICTIVELY BOUNDED 7d",
       EventSpecKind::kStronglyPredictivelyBounded},
      {"EARLY STRONGLY PREDICTIVELY BOUNDED 3d 7d",
       EventSpecKind::kEarlyStronglyPredictivelyBounded},
      {"STRONGLY BOUNDED 5d 2d", EventSpecKind::kStronglyBounded},
      {"DEGENERATE", EventSpecKind::kDegenerate},
  };
  for (const auto& c : cases) {
    const std::string ddl =
        std::string("CREATE EVENT RELATION r (id INT64 KEY) WITH ") + c.clause;
    ASSERT_OK_AND_ASSIGN(ParsedRelation parsed, ParseCreateRelation(ddl));
    ASSERT_EQ(parsed.specializations.event_specs().size(), 1u) << c.clause;
    EXPECT_EQ(parsed.specializations.event_specs()[0].kind(), c.kind)
        << c.clause;
  }
}

TEST(DdlTest, ParsesDeletionAnchor) {
  ASSERT_OK_AND_ASSIGN(ParsedRelation parsed,
                       ParseCreateRelation("CREATE EVENT RELATION r (id INT64 "
                                           "KEY) WITH DELETION RETROACTIVE"));
  ASSERT_EQ(parsed.specializations.event_specs().size(), 1u);
  EXPECT_EQ(parsed.specializations.event_specs()[0].anchor(),
            TransactionAnchor::kDeletion);
}

TEST(DdlTest, ParsesDeterminedForms) {
  ASSERT_OK_AND_ASSIGN(
      ParsedRelation offset,
      ParseCreateRelation("CREATE EVENT RELATION r (id INT64 KEY) WITH "
                          "PREDICTIVE DETERMINED BY TT PLUS 30s"));
  ASSERT_TRUE(offset.specializations.event_specs()[0].IsDetermined());

  ASSERT_OK_AND_ASSIGN(
      ParsedRelation floor,
      ParseCreateRelation("CREATE EVENT RELATION r (id INT64 KEY) WITH "
                          "RETROACTIVE DETERMINED BY FLOOR(1h)"));
  const auto& m = floor.specializations.event_specs()[0].mapping();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->ApplyToTransactionTime(testing::Civil(1992, 2, 3, 10, 42)),
            testing::Civil(1992, 2, 3, 10, 0));

  ASSERT_OK_AND_ASSIGN(
      ParsedRelation next,
      ParseCreateRelation("CREATE EVENT RELATION r (id INT64 KEY) WITH "
                          "DETERMINED BY NEXT(1day, 8h)"));
  const auto& nm = next.specializations.event_specs()[0].mapping();
  ASSERT_TRUE(nm.has_value());
  EXPECT_EQ(nm->ApplyToTransactionTime(testing::Civil(1992, 2, 3, 14, 0)),
            testing::Civil(1992, 2, 4, 8, 0));
}

TEST(DdlTest, ParsesOrderingsAndRegularity) {
  ASSERT_OK_AND_ASSIGN(ParsedRelation parsed, ParseCreateRelation(R"(
      CREATE EVENT RELATION r (id INT64 KEY)
      WITH NONDECREASING PER SURROGATE,
           SEQUENTIAL,
           STRICT TEMPORAL REGULAR 10s,
           VALID REGULAR 1mo
  )"));
  ASSERT_EQ(parsed.specializations.orderings().size(), 2u);
  EXPECT_EQ(parsed.specializations.orderings()[0].scope(),
            SpecScope::kPerObjectSurrogate);
  EXPECT_EQ(parsed.specializations.orderings()[1].kind(),
            OrderingKind::kSequential);
  ASSERT_EQ(parsed.specializations.regularities().size(), 2u);
  EXPECT_TRUE(parsed.specializations.regularities()[0].strict());
  EXPECT_EQ(parsed.specializations.regularities()[1].unit(), Duration::Months(1));
}

TEST(DdlTest, ParsesIntervalRelation) {
  ASSERT_OK_AND_ASSIGN(ParsedRelation parsed, ParseCreateRelation(R"(
      CREATE INTERVAL RELATION assignments (
          employee INT64 KEY,
          project STRING
      ) GRANULARITY 1h
      WITH VT_BEGIN PREDICTIVE,
           VT_END RETROACTIVE,
           STRICT VALID INTERVAL REGULAR 1w,
           CONTIGUOUS PER SURROGATE,
           SUCCESSIVE INVERSE MEETS
  )"));
  EXPECT_TRUE(parsed.schema->IsIntervalRelation());
  ASSERT_EQ(parsed.specializations.anchored_specs().size(), 2u);
  EXPECT_EQ(parsed.specializations.anchored_specs()[0].valid_anchor(),
            ValidAnchor::kBegin);
  EXPECT_EQ(parsed.specializations.anchored_specs()[1].valid_anchor(),
            ValidAnchor::kEnd);
  ASSERT_EQ(parsed.specializations.interval_regularities().size(), 1u);
  EXPECT_TRUE(parsed.specializations.interval_regularities()[0].strict());
  ASSERT_EQ(parsed.specializations.successive().size(), 2u);
  EXPECT_EQ(parsed.specializations.successive()[1].relation(),
            AllenRelation::kMetBy);
}

TEST(DdlTest, BareEventTypeOnIntervalRelationAppliesToBothEndpoints) {
  ASSERT_OK_AND_ASSIGN(
      ParsedRelation parsed,
      ParseCreateRelation(
          "CREATE INTERVAL RELATION r (id INT64 KEY) WITH RETROACTIVE"));
  ASSERT_EQ(parsed.specializations.anchored_specs().size(), 1u);
  EXPECT_EQ(parsed.specializations.anchored_specs()[0].valid_anchor(),
            ValidAnchor::kBoth);
}

TEST(DdlTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseCreateRelation("CREATE RELATION r (id INT64)").ok());
  EXPECT_FALSE(ParseCreateRelation("CREATE EVENT RELATION (id INT64)").ok());
  EXPECT_FALSE(
      ParseCreateRelation("CREATE EVENT RELATION r (id WIDGET)").ok());
  EXPECT_FALSE(ParseCreateRelation(
                   "CREATE EVENT RELATION r (id INT64) WITH FROBNICATED")
                   .ok());
  EXPECT_FALSE(ParseCreateRelation(
                   "CREATE EVENT RELATION r (id INT64) WITH DELAYED RETROACTIVE")
                   .ok());  // missing duration
  EXPECT_FALSE(
      ParseCreateRelation(
          "CREATE EVENT RELATION r (id INT64) WITH VT_BEGIN RETROACTIVE")
          .ok());  // VT_ anchors are interval-only
  EXPECT_FALSE(ParseCreateRelation(
                   "CREATE EVENT RELATION r (id INT64) WITH RETROACTIVE extra")
                   .ok());
}

TEST(DdlTest, DeletionAnchorComposesWithDeterminedAndBounds) {
  ASSERT_OK_AND_ASSIGN(
      ParsedRelation parsed,
      ParseCreateRelation("CREATE EVENT RELATION r (id INT64 KEY) WITH "
                          "DELETION DELAYED RETROACTIVE 30s, "
                          "RETROACTIVE DETERMINED BY FLOOR(1min) PLUS 30s"));
  ASSERT_EQ(parsed.specializations.event_specs().size(), 2u);
  EXPECT_EQ(parsed.specializations.event_specs()[0].anchor(),
            TransactionAnchor::kDeletion);
  EXPECT_EQ(parsed.specializations.event_specs()[0].kind(),
            EventSpecKind::kDelayedRetroactive);
  EXPECT_TRUE(parsed.specializations.event_specs()[1].IsDetermined());
  // Round-trips.
  const std::string rendered = ToDdl(*parsed.schema, parsed.specializations);
  ASSERT_OK_AND_ASSIGN(ParsedRelation again, ParseCreateRelation(rendered));
  EXPECT_EQ(ToDdl(*again.schema, again.specializations), rendered);
}

TEST(DdlTest, RejectsContradictoryDeclarations) {
  EXPECT_FALSE(ParseCreateRelation(
                   "CREATE EVENT RELATION r (id INT64 KEY) WITH RETROACTIVE, "
                   "EARLY PREDICTIVE 3d")
                   .ok());
}

TEST(DdlTest, SuggestDdlFromInferredProfile) {
  // Degenerate, strictly 10s-regular data: the suggestion names both.
  std::vector<Element> elements;
  for (int i = 0; i < 30; ++i) {
    elements.push_back(testing::MakeEventElement(
        testing::T(i * 10), testing::T(i * 10), i + 1, i % 3 + 1));
  }
  SchemaPtr schema =
      Schema::Make("feed",
                   {AttributeDef{"id", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey}},
                   ValidTimeKind::kEvent, Granularity::Second())
          .ValueOrDie();
  RelationProfile profile =
      InferProfile(elements, ValidTimeKind::kEvent, Granularity::Second());
  const std::string suggested = SuggestDdl(profile, *schema);
  EXPECT_NE(suggested.find("DEGENERATE"), std::string::npos);
  EXPECT_NE(suggested.find("STRICT TEMPORAL REGULAR 10s"), std::string::npos);
  EXPECT_NE(suggested.find("SEQUENTIAL"), std::string::npos);
  // The suggestion is itself valid DDL that re-admits the data.
  ASSERT_OK_AND_ASSIGN(ParsedRelation parsed, ParseCreateRelation(suggested));
  ConstraintChecker checker(parsed.specializations, Granularity::Second());
  EXPECT_OK(checker.CheckExtension(elements));
}

TEST(DdlTest, SuggestDdlForIntervalChain) {
  std::vector<Element> elements;
  for (int i = 0; i < 10; ++i) {
    elements.push_back(testing::MakeIntervalElement(
        testing::T(i * 100 - 5), testing::T(i * 100), testing::T((i + 1) * 100),
        i + 1, 1));
  }
  SchemaPtr schema =
      Schema::Make("chain",
                   {AttributeDef{"id", ValueType::kInt64,
                                 AttributeRole::kTimeInvariantKey}},
                   ValidTimeKind::kInterval, Granularity::Second())
          .ValueOrDie();
  RelationProfile profile =
      InferProfile(elements, ValidTimeKind::kInterval, Granularity::Second());
  const std::string suggested = SuggestDdl(profile, *schema);
  EXPECT_NE(suggested.find("CONTIGUOUS"), std::string::npos);
  EXPECT_NE(suggested.find("STRICT VALID INTERVAL REGULAR"), std::string::npos);
  ASSERT_OK(ParseCreateRelation(suggested).status());
}

TEST(DdlTest, RoundTripsThroughToDdl) {
  const char* statements[] = {
      "CREATE EVENT RELATION a (id INT64 KEY, v DOUBLE) GRANULARITY 1s WITH "
      "DELAYED STRONGLY RETROACTIVELY BOUNDED 2d 31d, NONDECREASING, STRICT "
      "TRANSACTION REGULAR 10s",
      "CREATE INTERVAL RELATION b (id INT64 KEY) GRANULARITY 1h WITH VT_BEGIN "
      "PREDICTIVE, CONTIGUOUS PER SURROGATE, STRICT VALID INTERVAL REGULAR 7d",
      "CREATE EVENT RELATION c (id INT64 KEY) WITH PREDICTIVE DETERMINED BY "
      "NEXT(1day, 8h), VALID REGULAR 1mo",
  };
  for (const char* stmt : statements) {
    ASSERT_OK_AND_ASSIGN(ParsedRelation first, ParseCreateRelation(stmt));
    const std::string rendered =
        ToDdl(*first.schema, first.specializations);
    ASSERT_OK_AND_ASSIGN(ParsedRelation second, ParseCreateRelation(rendered));
    // Compare by re-rendering: canonical form is a fixed point.
    EXPECT_EQ(ToDdl(*second.schema, second.specializations), rendered) << stmt;
    EXPECT_EQ(second.schema->ToString(), first.schema->ToString());
    EXPECT_EQ(second.specializations.ToString(),
              first.specializations.ToString());
  }
}

}  // namespace
}  // namespace tempspec
