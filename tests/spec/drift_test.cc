// Online specialization-drift monitor (spec/drift.h) against the
// brute-force Figure-1 oracle.
//
// The acceptance property: for every declared EventSpecKind, an ingest
// stream that starts inside the declared region and then escapes it must
// flip the violation counter and move the observed-kind gauge exactly at
// the escaping element — and the pane-occupancy counters must agree with
// the same raw-offset oracle the event_region_property_test uses. The
// compile-out contract is asserted in both directions: a TEMPSPEC_METRICS
// tree publishes per-relation drift metrics, an OFF tree observes nothing
// through the engine path.
#include "spec/drift.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "relation/temporal_relation.h"
#include "spec/enumeration.h"
#include "spec/inference.h"
#include "spec/lattice.h"
#include "testing.h"
#include "testing_spec.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::SpecForKind;
using testing::T;

const Duration kDeltaSmall = Duration::Seconds(30);
const Duration kDeltaLarge = Duration::Seconds(90);

/// \brief Brute-force Figure 1 membership on the raw offset — the same
/// first-principles oracle as event_region_property_test, duplicated here
/// so this suite stays independent of Band::Contains.
bool OracleContains(const Band& band, TimePoint tt, TimePoint vt) {
  const int64_t offset = vt.micros() - tt.micros();
  if (band.lower().has_value()) {
    const int64_t lo = band.lower()->offset.micros();
    if (band.lower()->open ? offset <= lo : offset < lo) return false;
  }
  if (band.upper().has_value()) {
    const int64_t hi = band.upper()->offset.micros();
    if (band.upper()->open ? offset >= hi : offset > hi) return false;
  }
  return true;
}

constexpr int64_t S(int64_t seconds) { return seconds * 1'000'000; }

/// One declared kind's scripted stream: offsets (vt - tt, micros) that stay
/// inside the declared band, then one that escapes it. The inside prefix is
/// chosen so the observed kind CHANGES at the escaping element (shape
/// change), making "the gauge moves exactly there" a sharp assertion.
struct KindPlan {
  EventSpecKind declared;
  std::vector<int64_t> inside;
  int64_t escape;
  EventSpecKind observed_before;  // after the inside prefix
  EventSpecKind observed_after;   // after the escaping element
};

std::vector<KindPlan> Plans() {
  using K = EventSpecKind;
  return {
      {K::kRetroactive, {-S(60), -S(5), 0}, S(10),
       K::kStronglyRetroactivelyBounded, K::kStronglyBounded},
      {K::kDelayedRetroactive, {-S(90), -S(45), -S(30)}, 0,
       K::kDelayedStronglyRetroactivelyBounded,
       K::kStronglyRetroactivelyBounded},
      {K::kPredictive, {0, S(20), S(80)}, -S(10),
       K::kStronglyPredictivelyBounded, K::kStronglyBounded},
      {K::kEarlyPredictive, {S(30), S(60), S(90)}, 0,
       K::kEarlyStronglyPredictivelyBounded, K::kStronglyPredictivelyBounded},
      {K::kRetroactivelyBounded, {0, S(20), S(50)}, -S(60),
       K::kStronglyPredictivelyBounded, K::kStronglyBounded},
      {K::kPredictivelyBounded, {-S(50), -S(10), 0}, S(60),
       K::kStronglyRetroactivelyBounded, K::kStronglyBounded},
      {K::kStronglyRetroactivelyBounded, {-S(30), -S(10), 0}, S(20),
       K::kStronglyRetroactivelyBounded, K::kStronglyBounded},
      {K::kDelayedStronglyRetroactivelyBounded, {-S(90), -S(60), -S(30)}, 0,
       K::kDelayedStronglyRetroactivelyBounded,
       K::kStronglyRetroactivelyBounded},
      {K::kStronglyPredictivelyBounded, {0, S(10), S(30)}, -S(20),
       K::kStronglyPredictivelyBounded, K::kStronglyBounded},
      {K::kEarlyStronglyPredictivelyBounded, {S(30), S(60), S(90)}, 0,
       K::kEarlyStronglyPredictivelyBounded, K::kStronglyPredictivelyBounded},
      {K::kStronglyBounded, {0, S(45), S(90)}, -S(60),
       K::kStronglyPredictivelyBounded, K::kStronglyBounded},
      {K::kDegenerate, {0, 0, 0}, S(5), K::kDegenerate,
       K::kStronglyPredictivelyBounded},
  };
}

SchemaPtr DriftSchema(const std::string& name) {
  return Schema::Make(name,
                      {AttributeDef{"sensor", ValueType::kInt64,
                                    AttributeRole::kTimeInvariantKey},
                       AttributeDef{"value", ValueType::kDouble,
                                    AttributeRole::kTimeVarying}},
                      ValidTimeKind::kEvent, Granularity::Second())
      .ValueOrDie();
}

/// Opens an in-memory event relation declared with `kind`'s representative
/// specialization, on a controllable clock.
Result<std::unique_ptr<TemporalRelation>> OpenDeclared(
    const std::string& name, EventSpecKind kind,
    std::shared_ptr<LogicalClock>* clock_out) {
  RelationOptions options;
  options.schema = DriftSchema(name);
  TS_ASSIGN_OR_RETURN(EventSpecialization spec,
                      SpecForKind(kind, kDeltaSmall, kDeltaLarge));
  options.specializations.AddEvent(spec);
  auto clock = std::make_shared<LogicalClock>(T(100000), Duration::Seconds(10));
  *clock_out = clock;
  options.clock = clock;
  return TemporalRelation::Open(std::move(options));
}

/// Attempts one insert with the given (vt - tt) offset; returns its status.
Status InsertWithOffset(TemporalRelation& rel, LogicalClock& clock,
                        int64_t offset_us) {
  const TimePoint tt = clock.Peek();
  const TimePoint vt = TimePoint::FromMicros(tt.micros() + offset_us);
  return rel.InsertEvent(1, vt, Tuple{int64_t{1}, 1.0}).status();
}

int64_t DriftGauge(const char* what, const std::string& relation) {
  const auto snap = MetricsRegistry::Instance().Scrape();
  const std::string name = std::string("tempspec.drift.") + what + "." + relation;
  auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? -1 : it->second;
}

uint64_t DriftCounter(const char* what, const std::string& relation) {
  return MetricsRegistry::Instance().Scrape().counter(
      std::string("tempspec.drift.") + what + "." + relation);
}

TEST(DriftMonitorTest, EscapeFlipsViolationAndMovesObservedKindExactly) {
  for (const KindPlan& plan : Plans()) {
    const std::string name =
        "drift_k" + std::to_string(static_cast<int>(plan.declared));
    SCOPED_TRACE(EventSpecKindToString(plan.declared));
    std::shared_ptr<LogicalClock> clock;
    ASSERT_OK_AND_ASSIGN(auto rel, OpenDeclared(name, plan.declared, &clock));

    // Sanity: the scripted stream really does stay inside then escape,
    // per the declared band and the raw-offset oracle.
    ASSERT_OK_AND_ASSIGN(EventSpecialization declared_spec,
                         SpecForKind(plan.declared, kDeltaSmall, kDeltaLarge));
    for (int64_t off : plan.inside) {
      ASSERT_TRUE(OracleContains(declared_spec.band(), T(0),
                                 TimePoint::FromMicros(off)));
    }
    ASSERT_FALSE(OracleContains(declared_spec.band(), T(0),
                                TimePoint::FromMicros(plan.escape)));

    // Phase 1: the inside prefix. All accepted; zero violations; the
    // observed kind settles on the plan's pre-escape kind.
    for (int64_t off : plan.inside) {
      ASSERT_OK(InsertWithOffset(*rel, *clock, off));
    }
    DriftReport before = rel->DriftState();
    if (!MetricsCompiledIn()) {
      // OFF tree: the engine path observes nothing — and the checker still
      // enforces, so the escaping insert is rejected without any telemetry.
      EXPECT_EQ(before.observed_count, 0u);
      ASSERT_NOT_OK(InsertWithOffset(*rel, *clock, plan.escape));
      EXPECT_EQ(rel->DriftState().violations, 0u);
      continue;
    }
    EXPECT_EQ(before.observed_count, plan.inside.size());
    EXPECT_EQ(before.violations, 0u);
    EXPECT_TRUE(before.conforming);
    EXPECT_EQ(before.observed, plan.observed_before);
    EXPECT_EQ(DriftGauge("observed_kind", name),
              static_cast<int64_t>(plan.observed_before));
    EXPECT_EQ(DriftCounter("violations", name), 0u);

    // Phase 2: the escaping element. Enforcement rejects it, yet the
    // monitor (which runs before the checker) flips the violation counter
    // and moves the observed-kind gauge — at exactly this element.
    ASSERT_NOT_OK(InsertWithOffset(*rel, *clock, plan.escape));
    DriftReport after = rel->DriftState();
    EXPECT_EQ(after.observed_count, plan.inside.size() + 1);
    EXPECT_EQ(after.violations, 1u);
    EXPECT_FALSE(after.conforming);
    EXPECT_EQ(after.observed, plan.observed_after);
    EXPECT_NE(plan.observed_before, plan.observed_after);  // the gauge MOVED
    EXPECT_EQ(DriftGauge("observed_kind", name),
              static_cast<int64_t>(plan.observed_after));
    EXPECT_EQ(DriftCounter("violations", name), 1u);
    EXPECT_EQ(DriftCounter("observed_stamps", name), plan.inside.size() + 1);
    EXPECT_EQ(static_cast<size_t>(DriftGauge("lattice_distance", name)),
              after.lattice_distance);

    // The element is NOT in the extension (enforcement won) — drift shows
    // what enforcement masks.
    EXPECT_EQ(rel->size(), plan.inside.size());
  }
}

TEST(DriftMonitorTest, PaneOccupancyMatchesBruteForceOracle) {
  if (!MetricsCompiledIn()) GTEST_SKIP() << "drift observation compiled out";
  Random rng(20260805);
  const auto panes = EnumerateEventRegions(kDeltaSmall, kDeltaLarge);
  for (int round = 0; round < 20; ++round) {
    const std::string name = "drift_pane_r" + std::to_string(round);
    std::shared_ptr<LogicalClock> clock;
    // Declared general: every stamp is accepted, so the occupancy test
    // sweeps the full plane without enforcement interference.
    ASSERT_OK_AND_ASSIGN(auto rel,
                         OpenDeclared(name, EventSpecKind::kGeneral, &clock));
    std::vector<uint64_t> expected(panes.size(), 0);
    for (int i = 0; i < 40; ++i) {
      // Whole-second offsets spanning and exceeding the banded range, with
      // boundary hits (the Second granularity keeps the degenerate pane's
      // chronon-equality test aligned with offset == 0).
      static const int64_t kEdges[] = {0, S(30), -S(30), S(90), -S(90)};
      int64_t off;
      switch (rng.Uniform(0, 2)) {
        case 0: off = kEdges[rng.Uniform(0, 4)]; break;
        case 1: off = kEdges[rng.Uniform(0, 4)] + S(rng.OneIn(0.5) ? 1 : -1); break;
        default: off = S(rng.Uniform(-270, 270)); break;
      }
      const TimePoint tt = clock->Peek();
      const TimePoint vt = TimePoint::FromMicros(tt.micros() + off);
      for (size_t p = 0; p < panes.size(); ++p) {
        if (OracleContains(panes[p].band, tt, vt)) ++expected[p];
      }
      ASSERT_OK(rel->InsertEvent(1, vt, Tuple{int64_t{1}, 1.0}).status());
    }
    const DriftReport report = rel->DriftState();
    ASSERT_EQ(report.regions.size(), panes.size());
    for (size_t p = 0; p < panes.size(); ++p) {
      EXPECT_EQ(report.regions[p].count, expected[p])
          << "pane " << panes[p].construction << " ("
          << EventSpecKindToString(panes[p].kind) << ")";
      EXPECT_EQ(report.regions[p].kind, panes[p].kind);
    }
  }
}

TEST(IncrementalEventProfileTest, MatchesBatchInferenceOnRandomStreams) {
  Random rng(4242);
  for (int round = 0; round < 200; ++round) {
    const Granularity g =
        rng.OneIn(0.5) ? Granularity() : Granularity::Second();
    IncrementalEventProfile inc(g);
    std::vector<EventStamp> stamps;
    const int n = static_cast<int>(rng.Uniform(1, 12));
    for (int i = 0; i < n; ++i) {
      const TimePoint tt = T(rng.Uniform(1000, 2000));
      const TimePoint vt =
          TimePoint::FromMicros(tt.micros() + rng.Uniform(-S(120), S(120)));
      stamps.push_back(EventStamp{tt, vt, 1});
      inc.Observe(tt, vt);
    }
    const EventProfile p = inc.Profile();
    // Recompute the batch answer directly from the definitions.
    int64_t lo = stamps[0].vt.MicrosSince(stamps[0].tt), hi = lo;
    bool degenerate = true;
    for (const auto& s : stamps) {
      const int64_t off = s.vt.MicrosSince(s.tt);
      lo = std::min(lo, off);
      hi = std::max(hi, off);
      if (!g.Same(s.tt, s.vt)) degenerate = false;
    }
    EXPECT_TRUE(p.applicable);
    EXPECT_EQ(p.min_offset_us, lo);
    EXPECT_EQ(p.max_offset_us, hi);
    EXPECT_EQ(p.degenerate, degenerate);
    const EventSpecKind want =
        degenerate ? EventSpecKind::kDegenerate
                   : EventSpecialization::ClassifyBand(Band::Between(
                         Duration::Micros(lo), Duration::Micros(hi)));
    EXPECT_EQ(p.classified, want);
    EXPECT_EQ(inc.ObservedKind(), want);
    EXPECT_EQ(inc.count(), static_cast<uint64_t>(n));
  }
}

TEST(IncrementalEventProfileTest, EmptyProfileIsInapplicable) {
  IncrementalEventProfile inc;
  EXPECT_FALSE(inc.Profile().applicable);
  EXPECT_EQ(inc.ObservedKind(), EventSpecKind::kGeneral);
  EXPECT_EQ(inc.count(), 0u);
}

TEST(LatticeDistanceTest, Figure2Distances) {
  const SpecLattice& lattice = SpecLattice::EventTaxonomy();
  ASSERT_OK_AND_ASSIGN(size_t zero, lattice.Distance("general", "general"));
  EXPECT_EQ(zero, 0u);
  ASSERT_OK_AND_ASSIGN(size_t one, lattice.Distance("general", "undetermined"));
  EXPECT_EQ(one, 1u);
  // retroactive -> predictively bounded -> undetermined -> retroactively
  // bounded -> predictive: shortest undirected path has length 4... unless a
  // shorter one exists through strongly bounded: retroactive <- predictively
  // bounded -> strongly bounded <- retroactively bounded -> predictive is
  // also 4; the true shortest is 4.
  ASSERT_OK_AND_ASSIGN(size_t four, lattice.Distance("retroactive", "predictive"));
  EXPECT_EQ(four, 4u);
  // Distance is symmetric.
  ASSERT_OK_AND_ASSIGN(size_t there, lattice.Distance("degenerate", "general"));
  ASSERT_OK_AND_ASSIGN(size_t back, lattice.Distance("general", "degenerate"));
  EXPECT_EQ(there, back);
  EXPECT_NOT_OK(lattice.Distance("general", "no-such-node").status());
  // Every EventSpecKind maps to a node, so the drift helper can never miss.
  for (size_t k = 0; k < kNumEventSpecKinds; ++k) {
    const auto kind = static_cast<EventSpecKind>(k);
    EXPECT_TRUE(lattice.HasNode(EventSpecKindToString(kind)))
        << EventSpecKindToString(kind);
    EXPECT_EQ(EventKindLatticeDistance(kind, kind), 0u);
  }
}

TEST(DriftMetricsComplianceTest, RegistryMatchesCompileFlagBothDirections) {
  const std::string name = "drift_compliance";
  std::shared_ptr<LogicalClock> clock;
  ASSERT_OK_AND_ASSIGN(
      auto rel, OpenDeclared(name, EventSpecKind::kRetroactive, &clock));
  ASSERT_OK(InsertWithOffset(*rel, *clock, -S(5)));
  const auto snap = MetricsRegistry::Instance().Scrape();
  const bool registered =
      snap.gauges.count("tempspec.drift.observed_kind." + name) > 0;
  if (MetricsCompiledIn()) {
    EXPECT_TRUE(registered) << "metrics tree must publish drift gauges";
    EXPECT_EQ(rel->DriftState().observed_count, 1u);
  } else {
    EXPECT_FALSE(registered) << "OFF tree must register nothing";
    EXPECT_EQ(rel->DriftState().observed_count, 0u);
  }
}

}  // namespace
}  // namespace tempspec
