#include "catalog/query_lang.h"

#include <cctype>
#include <chrono>
#include <limits>
#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/history.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "timex/calendar.h"
#include "util/string_util.h"

namespace tempspec {

namespace {

// Minimal word/quoted-literal scanner (the DDL tokenizer does not handle
// quoted time literals).
class QueryCursor {
 public:
  explicit QueryCursor(std::string_view input) : input_(input) {}

  Status SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    return Status::OK();
  }

  bool AtEnd() {
    SkipSpace().Check();
    return pos_ >= input_.size() || input_[pos_] == ';';
  }

  /// Reads the next bare word, upper-cased.
  Result<std::string> Word() {
    SkipSpace().Check();
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a word at '",
                                     std::string(input_.substr(pos_, 10)), "'");
    }
    std::string w(input_.substr(start, pos_ - start));
    for (auto& c : w) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    return w;
  }

  /// Reads the next bare word without upper-casing (relation names).
  Result<std::string> Identifier() {
    SkipSpace().Check();
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a relation name");
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  bool TryWord(const std::string& expected) {
    const size_t saved = pos_;
    auto w = Word();
    if (w.ok() && w.ValueOrDie() == expected) return true;
    pos_ = saved;
    return false;
  }

  Status ExpectWord(const std::string& expected) {
    if (TryWord(expected)) return Status::OK();
    return Status::InvalidArgument("expected ", expected);
  }

  Result<uint64_t> Number() {
    SkipSpace().Check();
    size_t start = pos_;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected a number");
    }
    return static_cast<uint64_t>(
        std::stoull(std::string(input_.substr(start, pos_ - start))));
  }

  /// Reads a single-quoted literal, returning the text between the quotes.
  Result<std::string> QuotedText() {
    SkipSpace().Check();
    if (pos_ >= input_.size() || input_[pos_] != '\'') {
      return Status::InvalidArgument("expected a quoted literal");
    }
    const size_t close = input_.find('\'', pos_ + 1);
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("unterminated quoted literal");
    }
    std::string text(input_.substr(pos_ + 1, close - pos_ - 1));
    pos_ = close + 1;
    return text;
  }

  Result<TimePoint> TimeLiteral() {
    TS_ASSIGN_OR_RETURN(std::string text, QuotedText());
    return ParseTimePoint(text);
  }

  bool TryChar(char c) {
    SkipSpace().Check();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectChar(char c) {
    if (TryChar(c)) return Status::OK();
    return Status::InvalidArgument("expected '", std::string(1, c), "'");
  }

  /// Reads a signed numeric token (digits, sign, '.', exponent characters);
  /// the caller parses it with the type it expects.
  Result<std::string> NumericToken() {
    SkipSpace().Check();
    const size_t start = pos_;
    if (pos_ < input_.size() && (input_[pos_] == '-' || input_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else if ((c == '-' || c == '+') && pos_ > start &&
                 (input_[pos_ - 1] == 'e' || input_[pos_ - 1] == 'E')) {
        ++pos_;  // exponent sign
      } else {
        break;
      }
    }
    if (pos_ == start ||
        (pos_ == start + 1 && !std::isdigit(static_cast<unsigned char>(
                                  input_[start])))) {
      pos_ = start;
      return Status::InvalidArgument("expected a numeric literal");
    }
    return std::string(input_.substr(start, pos_ - start));
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

// SHOW SLOW QUERIES [LIMIT n]: the retained ring, oldest first (LIMIT keeps
// the n most recent), one JSON line per entry plus a summary line.
Result<QueryOutput> ShowSlowQueries(QueryCursor& cur) {
  QueryOutput out;
  size_t limit = std::numeric_limits<size_t>::max();
  if (cur.TryWord("LIMIT")) {
    TS_ASSIGN_OR_RETURN(uint64_t n, cur.Number());
    limit = static_cast<size_t>(n);
  }
  SlowQueryLog& log = SlowQueryLog::Instance();
  std::vector<SlowQueryEntry> entries = log.Entries();
  const size_t begin = entries.size() > limit ? entries.size() - limit : 0;
  std::ostringstream ss;
  for (size_t i = begin; i < entries.size(); ++i) {
    ss << entries[i].ToJson() << "\n";
  }
  ss << (entries.size() - begin) << " slow quer"
     << (entries.size() - begin == 1 ? "y" : "ies") << " shown ("
     << log.TotalRecorded() << " recorded, threshold "
     << log.threshold_micros() << "us)\n";
  out.report = ss.str();
  return out;
}

// SHOW FLIGHT RECORDER [LIMIT n]: the flight-recorder ring, oldest first
// (LIMIT keeps the n most recent), one JSON line per event plus a summary.
Result<QueryOutput> ShowFlightRecorder(QueryCursor& cur) {
  QueryOutput out;
  size_t limit = std::numeric_limits<size_t>::max();
  if (cur.TryWord("LIMIT")) {
    TS_ASSIGN_OR_RETURN(uint64_t n, cur.Number());
    limit = static_cast<size_t>(n);
  }
  std::ostringstream ss;
  if (!FlightRecorderCompiledIn()) {
    ss << "0 event(s) shown (flight recorder compiled out; rebuild with "
          "-DTEMPSPEC_FLIGHTRECORDER=ON)\n";
    out.report = ss.str();
    return out;
  }
  FlightRecorder& recorder = FlightRecorder::Instance();
  std::vector<FlightEvent> events = recorder.Snapshot();
  const size_t begin = events.size() > limit ? events.size() - limit : 0;
  for (size_t i = begin; i < events.size(); ++i) {
    ss << events[i].ToJson() << "\n";
  }
  ss << (events.size() - begin) << " event(s) shown (" << recorder.head()
     << " recorded, ring capacity " << recorder.capacity() << ")\n";
  out.report = ss.str();
  return out;
}

// SHOW TRACES [LIMIT n]: the retained span ring, oldest first (LIMIT keeps
// the n most recent), one JSON line per span plus a summary.
Result<QueryOutput> ShowTraces(QueryCursor& cur) {
  QueryOutput out;
  size_t limit = std::numeric_limits<size_t>::max();
  if (cur.TryWord("LIMIT")) {
    TS_ASSIGN_OR_RETURN(uint64_t n, cur.Number());
    limit = static_cast<size_t>(n);
  }
  RetainedTraces& traces = RetainedTraces::Instance();
  std::vector<RetainedTrace> entries = traces.Entries();
  const size_t begin = entries.size() > limit ? entries.size() - limit : 0;
  std::ostringstream ss;
  for (size_t i = begin; i < entries.size(); ++i) {
    ss << entries[i].json << "\n";
  }
  ss << (entries.size() - begin) << " trace(s) shown ("
     << traces.TotalRetained() << " retained of " << traces.TotalSeen()
     << " seen, ring capacity " << traces.capacity() << ", sampling 1/"
     << traces.sample_every() << ")\n";
  out.report = ss.str();
  return out;
}

// SHOW HEALTH: re-evaluates every declared SLO against the labeled latency
// family, one JSON verdict per objective plus a summary line.
Result<QueryOutput> ShowHealth(QueryCursor&) {
  QueryOutput out;
  const std::vector<SloVerdict> verdicts = SloRegistry::Instance().Evaluate();
  std::ostringstream ss;
  size_t burning = 0;
  size_t violated = 0;
  for (const SloVerdict& v : verdicts) {
    if (v.burning) ++burning;
    if (!v.total_ok) ++violated;
    ss << v.ToJson() << "\n";
  }
  ss << verdicts.size() << " objective(s), " << violated << " violated, "
     << burning << " burning\n";
  out.report = ss.str();
  return out;
}

// SHOW HISTORY [LIMIT n]: the metrics time-series ring, oldest first (LIMIT
// keeps the n most recent samples), one JSON line per sample plus a summary.
Result<QueryOutput> ShowHistory(QueryCursor& cur) {
  QueryOutput out;
  size_t limit = std::numeric_limits<size_t>::max();
  if (cur.TryWord("LIMIT")) {
    TS_ASSIGN_OR_RETURN(uint64_t n, cur.Number());
    limit = static_cast<size_t>(n);
  }
  MetricsHistory& history = MetricsHistory::Instance();
  const size_t retained = history.Entries().size();
  const size_t shown = retained > limit ? limit : retained;
  std::ostringstream ss;
  ss << history.RenderJsonl(shown);
  ss << shown << " sample(s) shown (" << history.TotalSamples()
     << " sampled, ring capacity " << history.capacity() << ", interval "
     << history.interval_ms() << "ms)\n";
  out.report = ss.str();
  return out;
}

// SHOW SPECIALIZATION <relation>: declared vs observed kind, drift state,
// and the Figure-1 pane occupancy histogram.
Result<QueryOutput> ShowSpecialization(const Catalog& catalog,
                                       QueryCursor& cur) {
  TS_ASSIGN_OR_RETURN(std::string name, cur.Identifier());
  TS_ASSIGN_OR_RETURN(TemporalRelation * rel, catalog.Get(name));
  QueryOutput out;
  out.report = rel->DriftState().ToString();
  return out;
}

// One positional value of an INSERT, parsed with the attribute's declared
// type: NULL, TRUE/FALSE, bare numbers, quoted strings, quoted times.
Result<Value> ParseValueLiteral(QueryCursor& cur, const AttributeDef& attr) {
  if (cur.TryWord("NULL")) return Value::Null();
  switch (attr.type) {
    case ValueType::kBool:
      if (cur.TryWord("TRUE")) return Value(true);
      if (cur.TryWord("FALSE")) return Value(false);
      return Status::InvalidArgument("expected TRUE, FALSE, or NULL for '",
                                     attr.name, "'");
    case ValueType::kInt64: {
      TS_ASSIGN_OR_RETURN(std::string tok, cur.NumericToken());
      try {
        return Value(static_cast<int64_t>(std::stoll(tok)));
      } catch (const std::exception&) {
        return Status::InvalidArgument("bad INT64 literal '", tok, "' for '",
                                       attr.name, "'");
      }
    }
    case ValueType::kDouble: {
      TS_ASSIGN_OR_RETURN(std::string tok, cur.NumericToken());
      try {
        return Value(std::stod(tok));
      } catch (const std::exception&) {
        return Status::InvalidArgument("bad DOUBLE literal '", tok, "' for '",
                                       attr.name, "'");
      }
    }
    case ValueType::kString: {
      TS_ASSIGN_OR_RETURN(std::string text, cur.QuotedText());
      return Value(std::move(text));
    }
    case ValueType::kTime: {
      TS_ASSIGN_OR_RETURN(std::string text, cur.QuotedText());
      TS_ASSIGN_OR_RETURN(TimePoint tp, ParseTimePoint(text));
      return Value(tp);
    }
    case ValueType::kNull:
      break;
  }
  return Status::InvalidArgument("attribute '", attr.name,
                                 "' has no parsable type");
}

// INSERT INTO <rel> OBJECT <n> VALUES (...) VALID AT '<t>' | FROM..TO.
Result<QueryOutput> ExecuteInsert(const Catalog& catalog, QueryCursor& cur) {
  TS_RETURN_NOT_OK(cur.ExpectWord("INTO"));
  TS_ASSIGN_OR_RETURN(std::string name, cur.Identifier());
  TS_ASSIGN_OR_RETURN(TemporalRelation * rel, catalog.Get(name));
  const Schema& schema = rel->schema();

  TS_RETURN_NOT_OK(cur.ExpectWord("OBJECT"));
  TS_ASSIGN_OR_RETURN(uint64_t object, cur.Number());
  TS_RETURN_NOT_OK(cur.ExpectWord("VALUES"));
  TS_RETURN_NOT_OK(cur.ExpectChar('('));
  std::vector<Value> values;
  values.reserve(schema.num_attributes());
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) TS_RETURN_NOT_OK(cur.ExpectChar(','));
    TS_ASSIGN_OR_RETURN(Value v, ParseValueLiteral(cur, schema.attribute(i)));
    values.push_back(std::move(v));
  }
  TS_RETURN_NOT_OK(cur.ExpectChar(')'));

  TS_RETURN_NOT_OK(cur.ExpectWord("VALID"));
  Result<ElementSurrogate> inserted = [&]() -> Result<ElementSurrogate> {
    if (schema.IsEventRelation()) {
      TS_RETURN_NOT_OK(cur.ExpectWord("AT"));
      TS_ASSIGN_OR_RETURN(TimePoint vt, cur.TimeLiteral());
      return rel->InsertEvent(object, vt, Tuple(std::move(values)));
    }
    TS_RETURN_NOT_OK(cur.ExpectWord("FROM"));
    TS_ASSIGN_OR_RETURN(TimePoint vt_begin, cur.TimeLiteral());
    TS_RETURN_NOT_OK(cur.ExpectWord("TO"));
    TS_ASSIGN_OR_RETURN(TimePoint vt_end, cur.TimeLiteral());
    return rel->InsertInterval(object, vt_begin, vt_end,
                               Tuple(std::move(values)));
  }();
  TS_ASSIGN_OR_RETURN(ElementSurrogate surrogate, std::move(inserted));
  TS_COUNTER_INC("querylang.inserts");

  QueryOutput out;
  out.relation = name;
  std::ostringstream ss;
  ss << "inserted element " << surrogate << " (object " << object << ") into "
     << name << "\n";
  out.report = ss.str();
  return out;
}

// DELETE FROM <rel> WHERE ID <n>: logical deletion, closing [tt_b, tt_d).
Result<QueryOutput> ExecuteDelete(const Catalog& catalog, QueryCursor& cur) {
  TS_RETURN_NOT_OK(cur.ExpectWord("FROM"));
  TS_ASSIGN_OR_RETURN(std::string name, cur.Identifier());
  TS_ASSIGN_OR_RETURN(TemporalRelation * rel, catalog.Get(name));
  TS_RETURN_NOT_OK(cur.ExpectWord("WHERE"));
  TS_RETURN_NOT_OK(cur.ExpectWord("ID"));
  TS_ASSIGN_OR_RETURN(uint64_t surrogate, cur.Number());
  TS_RETURN_NOT_OK(rel->LogicalDelete(surrogate));
  TS_COUNTER_INC("querylang.deletes");

  QueryOutput out;
  out.relation = name;
  std::ostringstream ss;
  ss << "deleted element " << surrogate << " from " << name << "\n";
  out.report = ss.str();
  return out;
}

#ifdef TEMPSPEC_METRICS
// Records one executed statement into the labeled latency family behind
// tempspec_query_latency{relation,kind,protocol}. The protocol label comes
// from the server-stamped trace attribute; an embedded caller (no server in
// the path) renders as "local".
void ObserveLabeledLatency(const std::string& relation, std::string kind,
                           const TraceContext* trace,
                           std::chrono::steady_clock::time_point start) {
  if (relation.empty() || kind.empty()) return;
  std::string protocol = trace != nullptr ? trace->attr("protocol") : "";
  if (protocol.empty()) protocol = "local";
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  QueryLatencyFamily::Instance().Observe(relation, kind, protocol,
                                         static_cast<uint64_t>(wall.count()));
}
#endif  // TEMPSPEC_METRICS

}  // namespace

Result<QueryOutput> ExecuteQuery(const Catalog& catalog,
                                 const std::string& statement) {
  return ExecuteQuery(catalog, statement, /*trace=*/nullptr);
}

bool IsWriteStatement(const std::string& statement) {
  QueryCursor cur(statement);
  auto verb = cur.Word();
  if (!verb.ok()) return false;
  const std::string& v = verb.ValueOrDie();
  return v == "INSERT" || v == "DELETE" || v == "CREATE" || v == "DROP";
}

Result<QueryOutput> ExecuteQuery(const Catalog& catalog,
                                 const std::string& statement,
                                 TraceContext* external_trace) {
  QueryCursor cur(statement);
  QueryOutput out;
  TS_COUNTER_INC("querylang.statements");
  TS_METRICS_ONLY(const auto query_start = std::chrono::steady_clock::now();)

  TS_ASSIGN_OR_RETURN(std::string verb, cur.Word());
  if (verb == "EXPLAIN") {
    if (cur.TryWord("ANALYZE")) {
      out.analyze = true;  // execute, then report the trace span
    } else {
      out.explain_only = true;
    }
    TS_ASSIGN_OR_RETURN(verb, cur.Word());
  }

  if (verb == "INSERT" || verb == "DELETE") {
    if (out.explain_only || out.analyze) {
      return Status::InvalidArgument("EXPLAIN does not apply to ", verb);
    }
    Result<QueryOutput> written = verb == "INSERT"
                                      ? ExecuteInsert(catalog, cur)
                                      : ExecuteDelete(catalog, cur);
    TS_RETURN_NOT_OK(written.status());
    if (!cur.AtEnd()) {
      return Status::InvalidArgument("trailing tokens after statement");
    }
    TS_METRICS_ONLY(ObserveLabeledLatency(
        written.ValueOrDie().relation, verb == "INSERT" ? "insert" : "delete",
        external_trace, query_start);)
    return written;
  }

  if (verb == "SHOW") {
    TS_ASSIGN_OR_RETURN(std::string what, cur.Word());
    Result<QueryOutput> shown = [&]() -> Result<QueryOutput> {
      if (what == "SLOW") {
        TS_RETURN_NOT_OK(cur.ExpectWord("QUERIES"));
        return ShowSlowQueries(cur);
      }
      if (what == "FLIGHT") {
        TS_RETURN_NOT_OK(cur.ExpectWord("RECORDER"));
        return ShowFlightRecorder(cur);
      }
      if (what == "TRACES") return ShowTraces(cur);
      if (what == "SPECIALIZATION") return ShowSpecialization(catalog, cur);
      if (what == "HEALTH") return ShowHealth(cur);
      if (what == "HISTORY") return ShowHistory(cur);
      return Status::InvalidArgument(
          "unknown SHOW target '", what,
          "' (expected SLOW QUERIES, SPECIALIZATION, FLIGHT RECORDER, "
          "TRACES, HEALTH, or HISTORY)");
    }();
    TS_RETURN_NOT_OK(shown.status());
    if (!cur.AtEnd()) {
      return Status::InvalidArgument("trailing tokens after statement");
    }
    return shown;
  }

  // EXPLAIN ANALYZE attaches a per-query trace span to the executor; in a
  // metrics tree every executed statement carries one so the slow-query log
  // sees it (runtime cost: one span, only on the statement path). A
  // caller-owned trace (the server path) is attached unconditionally so its
  // deadline/cancellation reaches the morsel-boundary polls.
  TraceContext local_trace;
  TraceContext& trace = external_trace != nullptr ? *external_trace
                                                  : local_trace;
  ExecutorOptions exec_options;
  if (external_trace != nullptr && !out.explain_only) {
    exec_options.trace = &trace;
  }
  if (out.analyze) exec_options.trace = &trace;
  TS_METRICS_ONLY(if (!out.explain_only) exec_options.trace = &trace;)

  if (verb == "CURRENT") {
    TS_ASSIGN_OR_RETURN(std::string name, cur.Identifier());
    TS_ASSIGN_OR_RETURN(TemporalRelation * rel, catalog.Get(name));
    out.relation = name;
    QueryExecutor exec(*rel, exec_options);
    if (!out.explain_only) out.elements = exec.Current(&out.stats);
    out.plan_description = "current-state scan";
  } else if (verb == "ROLLBACK") {
    TS_ASSIGN_OR_RETURN(std::string name, cur.Identifier());
    TS_RETURN_NOT_OK(cur.ExpectWord("TO"));
    TS_ASSIGN_OR_RETURN(TimePoint tt, cur.TimeLiteral());
    TS_ASSIGN_OR_RETURN(TemporalRelation * rel, catalog.Get(name));
    out.relation = name;
    QueryExecutor exec(*rel, exec_options);
    if (!out.explain_only) out.elements = exec.Rollback(tt, &out.stats);
    out.plan_description = rel->snapshots() != nullptr
                               ? "snapshot + differential replay"
                               : "existence-interval scan";
  } else if (verb == "TIMESLICE") {
    TS_ASSIGN_OR_RETURN(std::string name, cur.Identifier());
    TS_RETURN_NOT_OK(cur.ExpectWord("AT"));
    TS_ASSIGN_OR_RETURN(TimePoint vt, cur.TimeLiteral());
    TS_ASSIGN_OR_RETURN(TemporalRelation * rel, catalog.Get(name));
    out.relation = name;
    QueryExecutor exec(*rel, exec_options);
    if (cur.TryWord("AS")) {
      TS_RETURN_NOT_OK(cur.ExpectWord("OF"));
      TS_ASSIGN_OR_RETURN(TimePoint tt, cur.TimeLiteral());
      if (!out.explain_only) {
        out.elements = exec.TimesliceAsOf(vt, tt, &out.stats);
      }
      out.plan_description = "bitemporal scan (valid at vt, believed at tt)";
    } else {
      const PlanChoice plan = exec.optimizer().PlanTimeslice(vt);
      if (!out.explain_only) {
        out.elements = exec.TimesliceWith(plan, vt, &out.stats);
      }
      out.plan_description = std::string(ExecutionStrategyToString(plan.strategy)) +
                             " [kernel " + ScanKernelToToken(plan.kernel) +
                             "] — " + plan.rationale;
    }
  } else if (verb == "RANGE") {
    TS_ASSIGN_OR_RETURN(std::string name, cur.Identifier());
    TS_RETURN_NOT_OK(cur.ExpectWord("FROM"));
    TS_ASSIGN_OR_RETURN(TimePoint lo, cur.TimeLiteral());
    TS_RETURN_NOT_OK(cur.ExpectWord("TO"));
    TS_ASSIGN_OR_RETURN(TimePoint hi, cur.TimeLiteral());
    if (!(lo < hi)) {
      return Status::InvalidArgument("RANGE requires FROM < TO");
    }
    TS_ASSIGN_OR_RETURN(TemporalRelation * rel, catalog.Get(name));
    out.relation = name;
    QueryExecutor exec(*rel, exec_options);
    const PlanChoice plan = exec.optimizer().PlanValidRange(lo, hi);
    if (!out.explain_only) {
      out.elements = exec.ValidRangeWith(plan, lo, hi, &out.stats);
    }
    out.plan_description = std::string(ExecutionStrategyToString(plan.strategy)) +
                           " [kernel " + ScanKernelToToken(plan.kernel) +
                           "] — " + plan.rationale;
  } else {
    return Status::InvalidArgument(
        "unknown query verb '", verb,
        "' (expected CURRENT, TIMESLICE, RANGE, ROLLBACK, SHOW, or EXPLAIN)");
  }

  if (!cur.AtEnd()) {
    return Status::InvalidArgument("trailing tokens after statement");
  }
  if (out.analyze) out.trace_json = trace.ToJson();
  // Labeled per-query latency: kind is the scan-kernel token the executor
  // recorded (the per-specialization taxonomy), falling back to the verb.
  TS_METRICS_ONLY(if (!out.explain_only) {
    std::string kind = trace.attr("kernel");
    if (kind.empty()) {
      kind = verb;
      for (char& c : kind) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
    ObserveLabeledLatency(out.relation, std::move(kind), &trace, query_start);
  })
  // Feed the slow-query log and the retained-trace ring — unless the span
  // is server-owned, in which case the server records it at response
  // completion (so its entry covers queue wait and serialization too, and
  // the span is not recorded twice).
  const bool server_records =
      external_trace != nullptr && external_trace->server_owned();
  TS_METRICS_ONLY(if (!server_records && exec_options.trace != nullptr &&
                      trace.started()) {
    SlowQueryLog::Instance().Record(trace, statement);
  })
  if (!server_records && exec_options.trace != nullptr && trace.started()) {
    RetainedTraces::Instance().Record(trace);
  }
  // A cancelled scan abandons morsels, so the collected elements are an
  // arbitrary subset: surface Deadline exceeded rather than a quietly
  // truncated result.
  if (external_trace != nullptr &&
      (out.stats.scan_aborts > 0 || external_trace->CancellationRequested())) {
    return Status::DeadlineExceeded("query cancelled after examining ",
                                    out.stats.elements_examined,
                                    " element(s)");
  }
  return out;
}

std::string QueryOutput::ToString() const {
  if (!report.empty()) return report;
  std::ostringstream ss;
  if (!plan_description.empty()) ss << "plan: " << plan_description << "\n";
  if (explain_only) return ss.str();
  if (analyze) {
    ss << "trace: " << trace_json << "\n";
    ss << elements.size() << " element(s), " << stats.elements_examined
       << " examined\n";
    return ss.str();
  }
  for (const Element& e : elements) {
    ss << "  " << e.ToString() << "\n";
  }
  ss << elements.size() << " element(s), " << stats.elements_examined
     << " examined\n";
  return ss.str();
}

}  // namespace tempspec
