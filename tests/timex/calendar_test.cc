#include "timex/calendar.h"

#include <gtest/gtest.h>

#include "testing.h"

namespace tempspec {
namespace {

using testing::Civil;

TEST(CalendarTest, EpochRoundTrip) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  int32_t y, m, d;
  CivilFromDays(0, &y, &m, &d);
  EXPECT_EQ(y, 1970);
  EXPECT_EQ(m, 1);
  EXPECT_EQ(d, 1);
}

TEST(CalendarTest, KnownDates) {
  // 1992-02-03: the ICDE'92 era.
  EXPECT_EQ(DaysFromCivil(1992, 2, 3), 8068);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
}

class CivilRoundTripTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(CivilRoundTripTest, DaysRoundTrip) {
  const int64_t days = GetParam();
  int32_t y, m, d;
  CivilFromDays(days, &y, &m, &d);
  EXPECT_EQ(DaysFromCivil(y, m, d), days);
  EXPECT_GE(m, 1);
  EXPECT_LE(m, 12);
  EXPECT_GE(d, 1);
  EXPECT_LE(d, DaysInMonth(y, m));
}

INSTANTIATE_TEST_SUITE_P(SweepDays, CivilRoundTripTest,
                         ::testing::Values(-1000000, -100000, -1, 0, 1, 59,
                                           8068, 10957, 11016, 11017, 18262,
                                           100000, 1000000));

TEST(CalendarTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(1992));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(1991));
  EXPECT_EQ(DaysInMonth(1992, 2), 29);
  EXPECT_EQ(DaysInMonth(1991, 2), 28);
  EXPECT_EQ(DaysInMonth(1992, 1), 31);
  EXPECT_EQ(DaysInMonth(1992, 4), 30);
}

TEST(CalendarTest, ToCivilAndBack) {
  const TimePoint tp = Civil(1992, 2, 3, 10, 30, 15) + Duration::Micros(123456);
  const CivilDateTime c = ToCivil(tp);
  EXPECT_EQ(c.year, 1992);
  EXPECT_EQ(c.month, 2);
  EXPECT_EQ(c.day, 3);
  EXPECT_EQ(c.hour, 10);
  EXPECT_EQ(c.minute, 30);
  EXPECT_EQ(c.second, 15);
  EXPECT_EQ(c.micro, 123456);
  EXPECT_EQ(FromCivil(c), tp);
}

TEST(CalendarTest, NegativeTimesDecodeCorrectly) {
  const TimePoint tp = Civil(1969, 12, 31, 23, 59, 59);
  const CivilDateTime c = ToCivil(tp);
  EXPECT_EQ(c.year, 1969);
  EXPECT_EQ(c.month, 12);
  EXPECT_EQ(c.day, 31);
  EXPECT_EQ(c.hour, 23);
}

TEST(CalendarTest, AddMonthsBasic) {
  EXPECT_EQ(AddMonths(Civil(1992, 1, 15), 1), Civil(1992, 2, 15));
  EXPECT_EQ(AddMonths(Civil(1992, 1, 15), 12), Civil(1993, 1, 15));
  EXPECT_EQ(AddMonths(Civil(1992, 1, 15), -1), Civil(1991, 12, 15));
}

TEST(CalendarTest, AddMonthsClampsDayOfMonth) {
  // "a month in the Gregorian calendar contains 28 to 31 days, depending on
  // the date to which the duration is added" (Section 3.1).
  EXPECT_EQ(AddMonths(Civil(1992, 1, 31), 1), Civil(1992, 2, 29));  // leap
  EXPECT_EQ(AddMonths(Civil(1991, 1, 31), 1), Civil(1991, 2, 28));
  EXPECT_EQ(AddMonths(Civil(1992, 3, 31), 1), Civil(1992, 4, 30));
}

TEST(CalendarTest, AddMonthsAcrossYearBoundary) {
  EXPECT_EQ(AddMonths(Civil(1992, 11, 30), 3), Civil(1993, 2, 28));
  EXPECT_EQ(AddMonths(Civil(1992, 2, 29), -2), Civil(1991, 12, 29));
}

TEST(CalendarTest, WholeMonthsBetween) {
  EXPECT_EQ(WholeMonthsBetween(Civil(1992, 1, 1), Civil(1992, 3, 1)), 2);
  EXPECT_EQ(WholeMonthsBetween(Civil(1992, 1, 1), Civil(1992, 2, 29)), 1);
  EXPECT_EQ(WholeMonthsBetween(Civil(1992, 1, 15), Civil(1992, 2, 14)), 0);
  EXPECT_EQ(WholeMonthsBetween(Civil(1992, 3, 1), Civil(1992, 1, 1)), -2);
}

TEST(CalendarTest, ParseFull) {
  ASSERT_OK_AND_ASSIGN(TimePoint tp,
                       ParseTimePoint("1992-02-03 10:30:15.250000"));
  EXPECT_EQ(tp, Civil(1992, 2, 3, 10, 30, 15) + Duration::Micros(250000));
}

TEST(CalendarTest, ParseDateOnly) {
  ASSERT_OK_AND_ASSIGN(TimePoint tp, ParseTimePoint("1992-02-03"));
  EXPECT_EQ(tp, Civil(1992, 2, 3));
}

TEST(CalendarTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseTimePoint("not a date").ok());
  EXPECT_FALSE(ParseTimePoint("1992-13-01").ok());
  EXPECT_FALSE(ParseTimePoint("1992-02-30").ok());
  EXPECT_FALSE(ParseTimePoint("1992-02-03 25:00:00").ok());
}

TEST(CalendarTest, FormatRoundTrip) {
  const TimePoint tp = Civil(1992, 2, 3, 4, 5, 6) + Duration::Micros(7);
  ASSERT_OK_AND_ASSIGN(TimePoint back, ParseTimePoint(FormatTimePoint(tp)));
  EXPECT_EQ(back, tp);
}

TEST(CalendarTest, FormatSentinels) {
  EXPECT_EQ(FormatTimePoint(TimePoint::Min()), "-inf");
  EXPECT_EQ(FormatTimePoint(TimePoint::Max()), "+inf");
}

}  // namespace
}  // namespace tempspec
