#include "query/lifeline.h"

#include <algorithm>

namespace tempspec {

Result<std::vector<LifelineEntry>> AttributeHistory(
    const TemporalRelation& relation, ObjectSurrogate object,
    const std::string& attribute) {
  TS_ASSIGN_OR_RETURN(size_t attr_index, relation.schema().IndexOf(attribute));
  std::vector<const Element*> lifeline = relation.PartitionOf(object);
  if (lifeline.empty()) {
    return Status::NotFound("object #", object, " has no elements in '",
                            relation.schema().relation_name(), "'");
  }
  std::vector<const Element*> current;
  for (const Element* e : lifeline) {
    if (e->IsCurrent()) current.push_back(e);
  }
  std::stable_sort(current.begin(), current.end(),
                   [](const Element* a, const Element* b) {
                     return a->valid.begin() < b->valid.begin();
                   });
  std::vector<LifelineEntry> out;
  for (const Element* e : current) {
    Value v = e->attributes.at(attr_index);
    if (!out.empty() && relation.schema().IsIntervalRelation() &&
        out.back().value == v &&
        out.back().valid.end() == e->valid.begin()) {
      // Merge adjacent equal values (value-equivalent coalescing).
      out.back().valid = ValidTime::IntervalUnchecked(out.back().valid.begin(),
                                                      e->valid.end());
      continue;
    }
    out.push_back(LifelineEntry{e->valid, std::move(v)});
  }
  return out;
}

Result<Value> AttributeAt(const TemporalRelation& relation,
                          ObjectSurrogate object, const std::string& attribute,
                          TimePoint vt) {
  TS_ASSIGN_OR_RETURN(size_t attr_index, relation.schema().IndexOf(attribute));
  for (const Element* e : relation.PartitionOf(object)) {
    if (e->IsCurrent() && e->valid.ValidAt(vt)) {
      return e->attributes.at(attr_index);
    }
  }
  return Status::NotFound("object #", object, " has no current fact valid at ",
                          vt.ToString());
}

}  // namespace tempspec
