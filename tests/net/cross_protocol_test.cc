// Cross-protocol equivalence: the HTTP /query plane and the TSP1 frame
// plane are two encodings of the same service, so the same statement must
// produce the same answer — byte-identical payloads for reads and EXPLAIN,
// and the same outcome taxonomy for every error class (200<->kResult,
// 400<->kError, 503<->kRejected). Also covers the production QueryClient
// (src/net/client.h) the simulator's tenant drivers speak through: its
// WireOutcome classification must agree across protocols too.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "catalog/query_service.h"
#include "net/client.h"
#include "net/net_test_client.h"
#include "net/server.h"
#include "obs/trace.h"
#include "testing.h"
#include "workload/tenant_driver.h"

namespace tempspec {
namespace {

using testing::ExecReply;
using testing::ExecuteStatement;
using testing::TestClient;

class CrossProtocolTest : public ::testing::Test {
 protected:
  void StartServer() {
    service_ = std::make_unique<QueryService>(QueryServiceOptions{});
    ASSERT_OK(service_->Open());
    ServerOptions options;
    options.bind_address = "127.0.0.1";
    options.port = 0;
    options.worker_threads = 2;
    server_ = std::make_unique<NetServer>(std::move(options));
    server_->SetStatementHandler(
        [this](const std::string& statement, TraceContext* trace) {
          return service_->Execute(statement, trace);
        });
    ASSERT_OK(server_->Start());
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  std::unique_ptr<QueryService> service_;
  std::unique_ptr<NetServer> server_;
};

TEST_F(CrossProtocolTest, ReadsAreByteIdenticalAcrossProtocols) {
  StartServer();
  ASSERT_OK(service_
                ->Execute(
                    "CREATE EVENT RELATION xp (sensor INT64 KEY, v DOUBLE) "
                    "GRANULARITY 1s",
                    nullptr)
                .status());
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK(service_
                  ->Execute("INSERT INTO xp OBJECT " + std::to_string(i + 1) +
                                " VALUES (" + std::to_string(i + 1) + ", " +
                                std::to_string(i) +
                                ".5) VALID AT '1970-01-01 00:00:0" +
                                std::to_string(i) + "'",
                            nullptr)
                  .status());
  }

  TestClient http(server_->port());
  TestClient tsp1(server_->port());
  ASSERT_TRUE(http.connected());
  ASSERT_TRUE(tsp1.connected());

  const std::string reads[] = {
      "CURRENT xp",
      "TIMESLICE xp AT '1970-01-01 00:00:03'",
      "TIMESLICE xp AT '1970-01-01 00:00:03' AS OF '1970-01-01 00:00:02'",
      "RANGE xp FROM '1970-01-01 00:00:01' TO '1970-01-01 00:00:04'",
      "SHOW SPECIALIZATION xp",
      "EXPLAIN TIMESLICE xp AT '1970-01-01 00:00:03'",
  };
  for (const std::string& statement : reads) {
    const ExecReply via_http = ExecuteStatement(http, statement,
                                                /*frames=*/false);
    const ExecReply via_tsp1 = ExecuteStatement(tsp1, statement,
                                                /*frames=*/true);
    ASSERT_TRUE(via_http.transport_ok) << statement;
    ASSERT_TRUE(via_tsp1.transport_ok) << statement;
    EXPECT_TRUE(via_http.accepted) << statement << ": " << via_http.body;
    EXPECT_TRUE(via_tsp1.accepted) << statement << ": " << via_tsp1.body;
    EXPECT_EQ(via_http.body, via_tsp1.body)
        << "protocols disagree on '" << statement << "'";
  }
}

TEST_F(CrossProtocolTest, ErrorTaxonomyMatchesAcrossProtocols) {
  StartServer();
  ASSERT_OK(service_
                ->Execute(
                    "CREATE EVENT RELATION xp (sensor INT64 KEY, v DOUBLE) "
                    "GRANULARITY 1d WITH DEGENERATE",
                    nullptr)
                .status());

  TestClient http(server_->port());
  TestClient tsp1(server_->port());
  ASSERT_TRUE(http.connected());
  ASSERT_TRUE(tsp1.connected());

  // Deterministic error payloads: parser and catalog errors mention no
  // relation clock, so the bodies must match byte for byte — modulo the
  // HTTP plane's deliberate trailing newline (curl-friendliness) and its
  // semantic status mapping (Not found rides 404 where TSP1 has only
  // kError). Both are protocol encodings of the same Status.
  const std::string deterministic_errors[] = {
      "FROB THE DATABASE",
      "CURRENT no_such_relation",
      "RANGE xp FROM '1970-01-05 00:00:00' TO '1970-01-02 00:00:00'",
  };
  for (const std::string& statement : deterministic_errors) {
    const ExecReply via_http = ExecuteStatement(http, statement,
                                                /*frames=*/false);
    const ExecReply via_tsp1 = ExecuteStatement(tsp1, statement,
                                                /*frames=*/true);
    ASSERT_TRUE(via_http.transport_ok) << statement;
    ASSERT_TRUE(via_tsp1.transport_ok) << statement;
    EXPECT_FALSE(via_http.accepted) << statement;
    EXPECT_FALSE(via_tsp1.accepted) << statement;
    EXPECT_GE(via_http.code, 400) << statement << ": " << via_http.body;
    EXPECT_LT(via_http.code, 500) << statement << ": " << via_http.body;
    std::string http_body = via_http.body;
    ASSERT_FALSE(http_body.empty()) << statement;
    ASSERT_EQ(http_body.back(), '\n') << statement << ": " << http_body;
    http_body.pop_back();
    EXPECT_EQ(http_body, via_tsp1.body)
        << "protocols disagree on '" << statement << "'";
  }

  // Constraint rejections embed the transaction-time stamp, which ticks on
  // every attempt — assert class equivalence instead of byte equality.
  const std::string drifted =
      "INSERT INTO xp OBJECT 1 VALUES (1, 1.0) VALID AT '1995-06-01 00:00:00'";
  const ExecReply via_http = ExecuteStatement(http, drifted, /*frames=*/false);
  const ExecReply via_tsp1 = ExecuteStatement(tsp1, drifted, /*frames=*/true);
  ASSERT_TRUE(via_http.transport_ok);
  ASSERT_TRUE(via_tsp1.transport_ok);
  EXPECT_EQ(via_http.code, 400) << via_http.body;
  EXPECT_EQ(via_tsp1.code, 400) << via_tsp1.body;
  EXPECT_EQ(via_http.body.rfind("Constraint violation", 0), 0u)
      << via_http.body;
  EXPECT_EQ(via_tsp1.body.rfind("Constraint violation", 0), 0u)
      << via_tsp1.body;
}

TEST_F(CrossProtocolTest, QueryClientClassifiesIdenticallyAcrossProtocols) {
  StartServer();
  ASSERT_OK(service_
                ->Execute(
                    "CREATE EVENT RELATION xp (sensor INT64 KEY, v DOUBLE) "
                    "GRANULARITY 1s",
                    nullptr)
                .status());
  ASSERT_OK(service_
                ->Execute(
                    "INSERT INTO xp OBJECT 1 VALUES (1, 2.5) "
                    "VALID AT '1970-01-01 00:00:00'",
                    nullptr)
                .status());

  for (ClientProtocol protocol :
       {ClientProtocol::kHttp, ClientProtocol::kTsp1}) {
    ClientOptions options;
    options.protocol = protocol;
    QueryClient client(options);
    ASSERT_OK(client.Connect(server_->port()));

    WireReply ok = client.Execute("CURRENT xp");
    EXPECT_EQ(ok.outcome, WireOutcome::kOk)
        << WireOutcomeToString(ok.outcome) << ": " << ok.body;
    EXPECT_NE(ok.body.find("1 element(s)"), std::string::npos) << ok.body;

    WireReply bad = client.Execute("FROB THE DATABASE");
    EXPECT_EQ(bad.outcome, WireOutcome::kClientError)
        << WireOutcomeToString(bad.outcome) << ": " << bad.body;

    WireReply missing = client.Execute("CURRENT no_such_relation");
    EXPECT_EQ(missing.outcome, WireOutcome::kClientError)
        << WireOutcomeToString(missing.outcome) << ": " << missing.body;

    // The connection survives errors: the next statement still executes.
    WireReply again = client.Execute("CURRENT xp");
    EXPECT_EQ(again.outcome, WireOutcome::kOk);
    EXPECT_EQ(again.body, ok.body);
    client.Close();
  }
}

TEST_F(CrossProtocolTest, ClientTraceIdJoinsServerSpansOnBothProtocols) {
  StartServer();
  ASSERT_OK(service_
                ->Execute(
                    "CREATE EVENT RELATION xp (sensor INT64 KEY, v DOUBLE) "
                    "GRANULARITY 1s",
                    nullptr)
                .status());
  RetainedTraces::Instance().Clear();

  for (ClientProtocol protocol :
       {ClientProtocol::kHttp, ClientProtocol::kTsp1}) {
    ClientOptions options;
    options.protocol = protocol;
    QueryClient client(options);
    ASSERT_OK(client.Connect(server_->port()));
    WireReply ok = client.Execute("CURRENT xp");
    ASSERT_EQ(ok.outcome, WireOutcome::kOk) << ok.body;
    const std::string wire_id = client.last_trace_id();
    ASSERT_EQ(wire_id.size(), 32u);

    // The server's request span must be retained under the client's trace
    // id — same join key over both encodings. Retention happens after the
    // response is written, so poll briefly.
    std::string span_json;
    ASSERT_TRUE(testing::WaitFor([&] {
      for (const RetainedTrace& entry : RetainedTraces::Instance().Entries()) {
        if (entry.json.find("\"wire_trace\":\"" + wire_id + "\"") !=
            std::string::npos) {
          span_json = entry.json;
          return true;
        }
      }
      return false;
    })) << "no retained span carries wire trace " << wire_id;

    // The server-owned span carries the request lifecycle and the transport
    // attribution the slowlog needs.
    const char* expected_protocol =
        protocol == ClientProtocol::kHttp ? "\"protocol\":\"http\""
                                          : "\"protocol\":\"tsp1\"";
    EXPECT_NE(span_json.find(expected_protocol), std::string::npos)
        << span_json;
    EXPECT_NE(span_json.find("\"peer\":\"127.0.0.1:"), std::string::npos)
        << span_json;
    for (const char* stage : {"\"queue.wait\"", "\"execute\"", "\"respond\""}) {
      EXPECT_NE(span_json.find(stage), std::string::npos)
          << stage << " missing from " << span_json;
    }
    client.Close();
  }
}

TEST_F(CrossProtocolTest, MalformedTraceHeaderNeverFailsTheRequest) {
  StartServer();
  ASSERT_OK(service_
                ->Execute(
                    "CREATE EVENT RELATION xp (sensor INT64 KEY, v DOUBLE) "
                    "GRANULARITY 1s",
                    nullptr)
                .status());

  TestClient http(server_->port());
  ASSERT_TRUE(http.connected());
  // A propagated trace id is an optimization, never a contract: every
  // malformed shape executes under a server-generated id instead of a 4xx.
  const std::string malformed[] = {
      "X-Tempspec-Trace: nonsense\r\n",
      "X-Tempspec-Trace: \r\n",
      // 31 hex chars before the dash (one short).
      "X-Tempspec-Trace: 0123456789abcdef0123456789abcde-0011223344556677\r\n",
      // Non-hex characters in the trace id.
      "X-Tempspec-Trace: zzzz456789abcdef0123456789abcdef-0011223344556677\r\n",
      // Missing span half.
      "X-Tempspec-Trace: 0123456789abcdef0123456789abcdef\r\n",
  };
  for (const std::string& header : malformed) {
    TestClient::HttpReply reply = http.PostQuery("CURRENT xp", header);
    ASSERT_TRUE(reply.ok) << header;
    EXPECT_EQ(reply.code, 200) << header << ": " << reply.body;
  }
  // No header at all is equally fine.
  TestClient::HttpReply bare = http.PostQuery("CURRENT xp");
  ASSERT_TRUE(bare.ok);
  EXPECT_EQ(bare.code, 200);

  // A well-formed header on the same raw connection is adopted verbatim.
  RetainedTraces::Instance().Clear();
  const std::string wire_id = "0123456789abcdef0123456789abcdef";
  TestClient::HttpReply traced = http.PostQuery(
      "CURRENT xp", "X-Tempspec-Trace: " + wire_id + "-0011223344556677\r\n");
  ASSERT_TRUE(traced.ok);
  EXPECT_EQ(traced.code, 200);
  EXPECT_TRUE(testing::WaitFor([&] {
    for (const RetainedTrace& entry : RetainedTraces::Instance().Entries()) {
      if (entry.json.find("\"wire_trace\":\"" + wire_id + "\"") !=
          std::string::npos) {
        return true;
      }
    }
    return false;
  }));
}

TEST_F(CrossProtocolTest, TenantDriverRetainsTruncatedServerErrorBodies) {
  StartServer();
  ASSERT_OK(
      service_
          ->Execute(TenantDriver::CreateStatement(Scenario::kAccounting),
                    nullptr)
          .status());

  SimEndpoint endpoint;
  endpoint.port.store(static_cast<int>(server_->port()));
  endpoint.generation.store(1);

  TenantOptions options;
  options.scenario = Scenario::kAccounting;
  options.protocol = ClientProtocol::kHttp;
  options.reads_per_write = 0;  // writes only
  options.think_time_us = 0;
  options.max_ops = 12;
  options.drift_after_ops = 1;  // violate the declared band immediately
  TenantDriver driver(options, &endpoint);
  driver.Run();

  const TenantReport& report = driver.report();
  EXPECT_GT(report.drift_rejections, 0u);
  ASSERT_FALSE(report.error_details.empty());
  EXPECT_LE(report.error_details.size(), TenantReport::kMaxErrorDetails);
  for (const std::string& detail : report.error_details) {
    // "<op> <outcome>: <truncated body>", single-line, bounded.
    EXPECT_EQ(detail.rfind("write client_error: ", 0), 0u) << detail;
    EXPECT_NE(detail.find("Constraint violation"), std::string::npos)
        << detail;
    EXPECT_EQ(detail.find('\n'), std::string::npos) << detail;
    EXPECT_LE(detail.size(),
              TenantReport::kErrorDetailBytes + 32)  // + op/outcome prefix
        << detail;
  }
}

}  // namespace
}  // namespace tempspec
