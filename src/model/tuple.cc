#include "model/tuple.h"

namespace tempspec {

Status Tuple::Conforms(const Schema& schema) const {
  if (values_.size() != schema.num_attributes()) {
    return Status::InvalidArgument("tuple has ", values_.size(),
                                   " values but schema '", schema.relation_name(),
                                   "' expects ", schema.num_attributes());
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].is_null()) continue;
    if (values_[i].type() != schema.attribute(i).type) {
      return Status::InvalidArgument(
          "attribute '", schema.attribute(i).name, "' expects ",
          ValueTypeToString(schema.attribute(i).type), " but got ",
          ValueTypeToString(values_[i].type()));
    }
  }
  return Status::OK();
}

Result<Value> Tuple::Get(const Schema& schema, const std::string& name) const {
  TS_ASSIGN_OR_RETURN(size_t i, schema.IndexOf(name));
  if (i >= values_.size()) {
    return Status::Internal("tuple narrower than schema for '", name, "'");
  }
  return values_[i];
}

size_t Tuple::ByteSize() const {
  size_t total = 0;
  for (const auto& v : values_) total += v.ByteSize();
  return total;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace tempspec
