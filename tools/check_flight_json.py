#!/usr/bin/env python3
"""Schema validator for flight-recorder JSONL dumps.

Usage:
    tools/check_flight_json.py [--min-events N] flight.jsonl [more.jsonl ...]

Validates the event schema shared by FlightRecorder::ToJsonl, DumpToFd (the
fatal-signal writer), /debug/events, and SHOW FLIGHT RECORDER: one JSON
object per line with numeric seq/nanos/tid/arg0/arg1 and string
category/code/detail, seq strictly increasing down the file (ring drain
order), and nonempty category/code. --min-events guards against an "empty
but valid" dump where a populated one was expected. Exits nonzero with a
per-file report on the first violation so CI can gate on it. Stdlib only.
"""
import json
import sys

NUMERIC_KEYS = ("seq", "nanos", "tid", "arg0", "arg1")
STRING_KEYS = ("category", "code", "detail")


def fail(path, lineno, msg):
    where = f"{path}:{lineno}" if lineno else path
    print(f"{where}: FAIL: {msg}")
    return False


def check_file(path, min_events):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(path, 0, f"unreadable: {e}")

    prev_seq = None
    events = 0
    for lineno, line in enumerate(lines, start=1):
        if not line:
            return fail(path, lineno, "blank line inside the dump")
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(path, lineno, f"invalid JSON: {e}")
        if not isinstance(event, dict):
            return fail(path, lineno, "event line is not an object")
        for key in NUMERIC_KEYS:
            if key not in event or isinstance(event[key], bool) or \
                    not isinstance(event[key], int):
                return fail(path, lineno, f"missing or non-integer '{key}'")
        for key in STRING_KEYS:
            if not isinstance(event.get(key), str):
                return fail(path, lineno, f"missing or non-string '{key}'")
        if not event["category"] or not event["code"]:
            return fail(path, lineno, "empty category or code")
        if prev_seq is not None and event["seq"] <= prev_seq:
            return fail(path, lineno,
                        f"seq {event['seq']} not above previous {prev_seq}")
        prev_seq = event["seq"]
        events += 1

    if events < min_events:
        return fail(path, 0, f"{events} event(s), expected >= {min_events}")
    print(f"{path}: OK ({events} event(s))")
    return True


def main(argv):
    args = argv[1:]
    min_events = 0
    if args and args[0] == "--min-events":
        if len(args) < 2:
            print(__doc__)
            return 2
        min_events = int(args[1])
        args = args[2:]
    if not args:
        print(__doc__)
        return 2
    ok = all([check_file(p, min_events) for p in args])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
