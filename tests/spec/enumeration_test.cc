// Machine-checks the completeness theorem of Section 3.1 and the content of
// Figure 1: the 0/1/2-line enumeration yields exactly the eleven specialized
// isolated-event relation types plus the general type.
#include "spec/enumeration.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "testing.h"

namespace tempspec {
namespace {

TEST(CompletenessTest, EnumerationYieldsTwelveRegions) {
  const auto regions = EnumerateEventRegions();
  // 1 (zero lines) + 6 (one line) + 5 (two lines) = 12 = Figure 1's panes.
  EXPECT_EQ(regions.size(), 12u);
}

TEST(CompletenessTest, RegionKindsAreExactlyTheTaxonomy) {
  const auto regions = EnumerateEventRegions();
  std::set<EventSpecKind> kinds;
  for (const auto& r : regions) kinds.insert(r.kind);
  // All regions classify to distinct kinds: the enumeration is irredundant.
  EXPECT_EQ(kinds.size(), regions.size());

  // The eleven specialized types of the theorem, plus general. Degenerate is
  // the separate (2)+(2) coincident-line case and is intentionally NOT a
  // region of the enumeration.
  const std::set<EventSpecKind> expected = {
      EventSpecKind::kGeneral,
      EventSpecKind::kEarlyPredictive,
      EventSpecKind::kPredictivelyBounded,
      EventSpecKind::kPredictive,
      EventSpecKind::kRetroactive,
      EventSpecKind::kRetroactivelyBounded,
      EventSpecKind::kDelayedRetroactive,
      EventSpecKind::kEarlyStronglyPredictivelyBounded,
      EventSpecKind::kStronglyPredictivelyBounded,
      EventSpecKind::kStronglyBounded,
      EventSpecKind::kStronglyRetroactivelyBounded,
      EventSpecKind::kDelayedStronglyRetroactivelyBounded,
  };
  EXPECT_EQ(kinds, expected);
  EXPECT_EQ(kinds.count(EventSpecKind::kDegenerate), 0u);
}

TEST(CompletenessTest, OneLineRegionsMatchPaperText) {
  // "With one line, there are two distinct regions for each of the three
  // line-types, resulting in six distinct specialized temporal event
  // relations: early predictive and predictively bounded, predictive and
  // retroactive, and retroactively bounded and delayed retroactive."
  const auto regions = EnumerateEventRegions();
  std::map<std::string, EventSpecKind> by_construction;
  for (const auto& r : regions) by_construction[r.construction] = r.kind;

  EXPECT_EQ(by_construction["one line, kind (1), upper"],
            EventSpecKind::kEarlyPredictive);
  EXPECT_EQ(by_construction["one line, kind (1), lower"],
            EventSpecKind::kPredictivelyBounded);
  EXPECT_EQ(by_construction["one line, kind (2), upper"],
            EventSpecKind::kPredictive);
  EXPECT_EQ(by_construction["one line, kind (2), lower"],
            EventSpecKind::kRetroactive);
  EXPECT_EQ(by_construction["one line, kind (3), upper"],
            EventSpecKind::kRetroactivelyBounded);
  EXPECT_EQ(by_construction["one line, kind (3), lower"],
            EventSpecKind::kDelayedRetroactive);
}

TEST(CompletenessTest, TwoLineRegionsMatchPaperText) {
  // "(1) and (1) (early strongly predictively bounded), (1) and (2)
  // (strongly predictively bounded), (1) and (3) (strongly bounded), (2) and
  // (3) (strongly retroactively bounded), and (3) and (3) (delayed strong[ly]
  // retroactively bounded)."
  const auto regions = EnumerateEventRegions();
  std::map<std::string, EventSpecKind> by_construction;
  for (const auto& r : regions) by_construction[r.construction] = r.kind;

  EXPECT_EQ(by_construction["two lines, kinds (1)+(1)"],
            EventSpecKind::kEarlyStronglyPredictivelyBounded);
  EXPECT_EQ(by_construction["two lines, kinds (2)+(1)"],
            EventSpecKind::kStronglyPredictivelyBounded);
  EXPECT_EQ(by_construction["two lines, kinds (3)+(1)"],
            EventSpecKind::kStronglyBounded);
  EXPECT_EQ(by_construction["two lines, kinds (3)+(2)"],
            EventSpecKind::kStronglyRetroactivelyBounded);
  EXPECT_EQ(by_construction["two lines, kinds (3)+(3)"],
            EventSpecKind::kDelayedStronglyRetroactivelyBounded);
}

TEST(CompletenessTest, ClassificationIsScaleInvariant) {
  // The taxonomy types depend on the signs of the bounds, not their sizes:
  // re-running the enumeration with different Δ values must give the same
  // classification per construction.
  const auto small = EnumerateEventRegions(Duration::Millis(1), Duration::Millis(2));
  const auto large = EnumerateEventRegions(Duration::Days(10), Duration::Days(400));
  ASSERT_EQ(small.size(), large.size());
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].construction, large[i].construction);
    EXPECT_EQ(small[i].kind, large[i].kind) << small[i].construction;
  }
}

TEST(CompletenessTest, RenderedFigureMentionsEveryKind) {
  const std::string fig = RenderFigure1(EnumerateEventRegions());
  EXPECT_NE(fig.find("general"), std::string::npos);
  EXPECT_NE(fig.find("strongly bounded"), std::string::npos);
  EXPECT_NE(fig.find("delayed retroactive"), std::string::npos);
  EXPECT_NE(fig.find("early strongly predictively bounded"), std::string::npos);
}

}  // namespace
}  // namespace tempspec
