// E2 — "a degenerate temporal relation can be advantageously treated as a
// rollback relation due to the fact that relations are append-only and
// elements are entered in time-stamp order" (Section 3.1).
//
// Timeslice latency on a degenerate sensor relation, three ways:
//   baseline  — full scan (no semantics exploited)
//   index     — valid-time interval index (general-relation machinery)
//   rollback  — the degenerate strategy: answer the timeslice as a rollback
//               on the append-only transaction order
// Sweeps the relation size; expect the rollback strategy to be flat while
// the scan grows linearly.
#include "bench_common.h"

using namespace tempspec;
using tempspec::bench::ConfigFor;
using tempspec::bench::FullScanPlan;
using tempspec::bench::Require;

namespace {

struct Fixture {
  ScenarioRelation scenario;
  std::vector<TimePoint> probes;
};

Fixture MakeFixture(int64_t total) {
  Fixture f;
  const WorkloadConfig config = ConfigFor(total);
  f.scenario = Require(MakeDegenerateMonitoring(config, Duration::Seconds(10)));
  Require(GenerateDegenerateMonitoring(config, Duration::Seconds(10),
                                       &f.scenario));
  for (size_t i = 17; i < f.scenario->size(); i += 97) {
    f.probes.push_back(f.scenario->elements()[i].valid.at());
  }
  return f;
}

void RunTimeslices(benchmark::State& state, ExecutionStrategy strategy) {
  Fixture f = MakeFixture(state.range(0));
  QueryExecutor exec(*f.scenario.relation);
  QueryStats stats;
  size_t probe = 0;
  size_t results = 0;
  for (auto _ : state) {
    PlanChoice plan;
    const TimePoint vt = f.probes[probe++ % f.probes.size()];
    switch (strategy) {
      case ExecutionStrategy::kFullScan:
        plan = FullScanPlan();
        break;
      case ExecutionStrategy::kValidIndex:
        plan = PlanChoice{ExecutionStrategy::kValidIndex, TimeInterval::All(), ""};
        break;
      default:
        plan = exec.optimizer().PlanTimeslice(vt);
        break;
    }
    auto result = exec.TimesliceWith(plan, vt, &stats);
    results += result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["elements_examined_per_query"] = benchmark::Counter(
      static_cast<double>(stats.elements_examined) / state.iterations());
  state.counters["results_per_query"] =
      benchmark::Counter(static_cast<double>(results) / state.iterations());
}

void BM_Timeslice_Degenerate_FullScan(benchmark::State& state) {
  RunTimeslices(state, ExecutionStrategy::kFullScan);
}
void BM_Timeslice_Degenerate_ValidIndex(benchmark::State& state) {
  RunTimeslices(state, ExecutionStrategy::kValidIndex);
}
void BM_Timeslice_Degenerate_RollbackEquivalence(benchmark::State& state) {
  RunTimeslices(state, ExecutionStrategy::kRollbackEquivalence);
}

}  // namespace

BENCHMARK(BM_Timeslice_Degenerate_FullScan)->Range(1024, 65536);
BENCHMARK(BM_Timeslice_Degenerate_ValidIndex)->Range(1024, 65536);
BENCHMARK(BM_Timeslice_Degenerate_RollbackEquivalence)->Range(1024, 65536);

TEMPSPEC_BENCH_MAIN("e2_degenerate");
