#include "spec/interinterval_spec.h"

#include <gtest/gtest.h>

#include <set>

#include "spec/lattice.h"
#include "testing.h"
#include "util/random.h"

namespace tempspec {
namespace {

using testing::T;

IntervalStamp IS(int64_t tt, int64_t vb, int64_t ve, ObjectSurrogate part = 0) {
  return IntervalStamp{T(tt), TimeInterval(T(vb), T(ve)), part};
}

// Braced lists cannot bind to std::span directly; materialize a vector.
std::vector<IntervalStamp> V(std::initializer_list<IntervalStamp> stamps) {
  return std::vector<IntervalStamp>(stamps);
}

TEST(IntervalOrderingTest, SequentialWeeklyAssignments) {
  // "If the assignment for the next week is recorded during the weekend then
  // this relation will be per surrogate sequential."
  IntervalOrderingSpec spec(IntervalOrderingKind::kSequential,
                            SpecScope::kPerObjectSurrogate);
  // tt falls between the previous week's end and the next week's start.
  std::vector<IntervalStamp> stamps = {
      IS(95, 100, 200, 1), IS(205, 210, 310, 1), IS(315, 320, 420, 1)};
  EXPECT_OK(spec.CheckStamps(stamps));
  // Recording Thursday (inside the current week) breaks sequentiality...
  stamps.push_back(IS(400, 430, 530, 1));
  EXPECT_NOT_OK(spec.CheckStamps(stamps));
}

TEST(IntervalOrderingTest, NonDecreasingThursdayRecording) {
  // "record each Thursday the next week's assignment ... per surrogate
  // non-decreasing": tt inside the current interval, begins still ascend.
  IntervalOrderingSpec spec(IntervalOrderingKind::kNonDecreasing,
                            SpecScope::kPerObjectSurrogate);
  std::vector<IntervalStamp> stamps = {
      IS(95, 100, 200, 1), IS(150, 200, 300, 1), IS(250, 300, 400, 1)};
  EXPECT_OK(spec.CheckStamps(stamps));
  stamps.push_back(IS(350, 250, 260, 1));
  EXPECT_NOT_OK(spec.CheckStamps(stamps));
}

TEST(IntervalOrderingTest, NonIncreasingOnEnds) {
  IntervalOrderingSpec spec(IntervalOrderingKind::kNonIncreasing);
  EXPECT_OK(spec.CheckStamps(V({IS(1, 80, 100), IS(2, 60, 80), IS(3, 40, 60)})));
  EXPECT_NOT_OK(spec.CheckStamps(V({IS(1, 80, 100), IS(2, 90, 110)})));
}

TEST(SuccessiveTest, ContiguousChain) {
  SuccessiveSpec spec = SuccessiveSpec::Contiguous();
  EXPECT_OK(spec.CheckStamps(V({IS(1, 0, 10), IS(2, 10, 20), IS(3, 20, 30)})));
  EXPECT_NOT_OK(spec.CheckStamps(V({IS(1, 0, 10), IS(2, 11, 20)})));
  EXPECT_NE(spec.ToString().find("contiguous"), std::string::npos);
}

TEST(SuccessiveTest, StOverlapsRequiresOverlapInTTOrder) {
  // "successive transaction time overlaps requires that intervals that are
  // adjacent in transaction time overlap in valid time, ensuring that the
  // next element began before the previous one completed."
  SuccessiveSpec spec(AllenRelation::kOverlaps);
  EXPECT_OK(spec.CheckStamps(V({IS(1, 0, 10), IS(2, 5, 15), IS(3, 12, 22)})));
  EXPECT_NOT_OK(spec.CheckStamps(V({IS(1, 0, 10), IS(2, 10, 20)})));  // meets
}

TEST(SuccessiveTest, InverseMeetsArchaeology) {
  // Excavation: each newly stored stratum ends where the previous began.
  SuccessiveSpec spec(AllenRelation::kMeets, SpecScope::kPerRelation,
                      /*inverse=*/true);
  EXPECT_OK(spec.CheckStamps(V({IS(1, 20, 30), IS(2, 10, 20), IS(3, 0, 10)})));
  EXPECT_NOT_OK(spec.CheckStamps(V({IS(1, 20, 30), IS(2, 5, 15)})));
  EXPECT_NE(spec.ToString().find("sti-meets"), std::string::npos);
}

TEST(SuccessiveTest, AllThirteenRelationsEnforceable) {
  // For each Allen relation X, build a three-element chain related by X and
  // verify st-X accepts it while every other st-Y rejects it.
  const TimeInterval base(T(100), T(200));
  for (AllenRelation rel : AllAllenRelations()) {
    // Construct an interval related to `base` by `rel`.
    // `first` is chosen so that Classify(first, base) == rel.
    TimeInterval first;
    switch (rel) {
      case AllenRelation::kBefore:        first = TimeInterval(T(10), T(50)); break;
      case AllenRelation::kMeets:         first = TimeInterval(T(50), T(100)); break;
      case AllenRelation::kOverlaps:      first = TimeInterval(T(50), T(150)); break;
      case AllenRelation::kStarts:        first = TimeInterval(T(100), T(150)); break;
      case AllenRelation::kDuring:        first = TimeInterval(T(120), T(180)); break;
      case AllenRelation::kFinishes:      first = TimeInterval(T(150), T(200)); break;
      case AllenRelation::kEquals:        first = TimeInterval(T(100), T(200)); break;
      case AllenRelation::kAfter:         first = TimeInterval(T(250), T(300)); break;
      case AllenRelation::kMetBy:         first = TimeInterval(T(200), T(300)); break;
      case AllenRelation::kOverlappedBy:  first = TimeInterval(T(150), T(250)); break;
      case AllenRelation::kStartedBy:     first = TimeInterval(T(100), T(300)); break;
      case AllenRelation::kContains:      first = TimeInterval(T(50), T(300)); break;
      case AllenRelation::kFinishedBy:    first = TimeInterval(T(50), T(200)); break;
    }
    ASSERT_EQ(Classify(first, base).ValueOrDie(), rel)
        << AllenRelationToString(rel);
    std::vector<IntervalStamp> stamps = {IntervalStamp{T(1), first, 0},
                                         IntervalStamp{T(2), base, 0}};
    for (AllenRelation candidate : AllAllenRelations()) {
      const Status st = SuccessiveSpec(candidate).CheckStamps(stamps);
      EXPECT_EQ(st.ok(), candidate == rel)
          << "chain built for " << AllenRelationToString(rel) << ", checking "
          << AllenRelationToString(candidate);
    }
  }
}

TEST(OnlineIntervalTest, MatchesBatch) {
  Random rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<IntervalStamp> stamps;
    for (int i = 0; i < 10; ++i) {
      const int64_t b = rng.Uniform(0, 50);
      stamps.push_back(IS(i, b, b + rng.Uniform(1, 20),
                          static_cast<ObjectSurrogate>(rng.Uniform(1, 3))));
    }
    for (auto kind : {IntervalOrderingKind::kNonDecreasing,
                      IntervalOrderingKind::kNonIncreasing,
                      IntervalOrderingKind::kSequential}) {
      IntervalOrderingSpec spec(kind, SpecScope::kPerObjectSurrogate);
      OnlineIntervalChecker online(spec);
      Status online_status;
      for (const auto& s : stamps) {
        online_status = online.OnInsert(s);
        if (!online_status.ok()) break;
      }
      EXPECT_EQ(online_status.ok(), spec.CheckStamps(stamps).ok())
          << spec.ToString() << " trial " << trial;
    }
    SuccessiveSpec succ(AllenRelation::kOverlaps);
    OnlineIntervalChecker online(succ);
    Status online_status;
    for (const auto& s : stamps) {
      online_status = online.OnInsert(s);
      if (!online_status.ok()) break;
    }
    EXPECT_EQ(online_status.ok(), succ.CheckStamps(stamps).ok());
  }
}

// Re-derives, from random data, which st-X imply begins-non-decreasing and
// which imply ends-non-increasing — and checks the Figure 5 lattice encodes
// exactly those edges.
TEST(Figure5DerivationTest, OrderingImplicationsMatchLattice) {
  Random rng(41);
  std::set<AllenRelation> begins_nd_holds(AllAllenRelations().begin(),
                                          AllAllenRelations().end());
  std::set<AllenRelation> ends_ni_holds(AllAllenRelations().begin(),
                                        AllAllenRelations().end());
  for (int trial = 0; trial < 4000; ++trial) {
    const int64_t xb = rng.Uniform(0, 40);
    const int64_t xe = xb + rng.Uniform(1, 15);
    const int64_t yb = rng.Uniform(0, 40);
    const int64_t ye = yb + rng.Uniform(1, 15);
    const TimeInterval x(T(xb), T(xe)), y(T(yb), T(ye));
    const AllenRelation rel = Classify(x, y).ValueOrDie();
    if (!(xb <= yb)) begins_nd_holds.erase(rel);
    if (!(ye <= xe)) ends_ni_holds.erase(rel);
  }
  const SpecLattice& l = SpecLattice::InterIntervalTaxonomy();
  for (AllenRelation rel : AllAllenRelations()) {
    std::string name = std::string("st-") + AllenRelationToString(rel);
    if (rel == AllenRelation::kMeets) name = "globally contiguous (st-meets)";
    EXPECT_EQ(l.IsDescendant("globally non-decreasing", name),
              begins_nd_holds.count(rel) > 0)
        << name;
    EXPECT_EQ(l.IsDescendant("globally non-increasing", name),
              ends_ni_holds.count(rel) > 0)
        << name;
  }
}

// Sequential interval extensions are non-decreasing (Figure 5's derivable
// edge), on random sequential chains.
TEST(Figure5DerivationTest, SequentialImpliesNonDecreasing) {
  Random rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<IntervalStamp> stamps;
    int64_t frontier = 0;
    for (int i = 0; i < 15; ++i) {
      const int64_t tt = frontier + rng.Uniform(1, 4);
      const int64_t vb = tt + rng.Uniform(0, 4);
      const int64_t ve = vb + rng.Uniform(1, 6);
      stamps.push_back(IS(tt, vb, ve));
      frontier = ve;
    }
    ASSERT_OK(IntervalOrderingSpec(IntervalOrderingKind::kSequential)
                  .CheckStamps(stamps));
    EXPECT_OK(IntervalOrderingSpec(IntervalOrderingKind::kNonDecreasing)
                  .CheckStamps(stamps));
  }
}

}  // namespace
}  // namespace tempspec
