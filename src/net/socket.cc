#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tempspec {

void OwnedFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<OwnedFd> ListenTcp(const std::string& bind_address, uint16_t port,
                          int backlog) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return Status::IOError("socket(): ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bind address '", bind_address,
                                   "' is not an IPv4 address");
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IOError("bind(", bind_address, ":", port,
                           "): ", std::strerror(errno));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::IOError("listen(): ", std::strerror(errno));
  }
  TS_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Status::IOError("getsockname(): ", std::strerror(errno));
  }
  return static_cast<uint16_t>(ntohs(bound.sin_port));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IOError("fcntl(O_NONBLOCK): ", std::strerror(errno));
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace tempspec
