// A1 — Ablations of the engine's design choices.
//
//  (a) Enforcement mechanism: the O(1)-state online checkers vs the naive
//      alternative of re-verifying the whole extension after every insert
//      (what a system without incremental checkers would do).
//  (b) Index for monotone stamps: the general B+tree vs the append-only
//      index the degenerate/sequential specializations license.
//  (c) Interval-index delta buffer: stab cost right after inserts (delta
//      populated) vs after Compact().
#include "bench_common.h"
#include "index/append_index.h"
#include "index/btree.h"
#include "index/interval_index.h"

using namespace tempspec;
using tempspec::bench::Require;

namespace {

Element OrderedElement(int64_t i) {
  Element e;
  e.element_surrogate = static_cast<ElementSurrogate>(i + 1);
  e.object_surrogate = i % 8 + 1;
  e.tt_begin = TimePoint::FromSeconds(1000 + i);
  e.valid = ValidTime::Event(TimePoint::FromSeconds(900 + i));
  return e;
}

SpecializationSet OrderedSpecs() {
  SpecializationSet specs;
  specs.AddOrdering(OrderingSpec(OrderingKind::kNonDecreasing));
  specs.AddEvent(EventSpecialization::Retroactive());
  return specs;
}

void BM_Enforcement_OnlineCheckers(benchmark::State& state) {
  const Granularity gran = Granularity::Second();
  for (auto _ : state) {
    ConstraintChecker checker(OrderedSpecs(), gran);
    for (int64_t i = 0; i < state.range(0); ++i) {
      Require(checker.OnInsert(OrderedElement(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Enforcement_BatchReverify(benchmark::State& state) {
  // The ablated design: no incremental state; after each insert the full
  // extension is re-verified. O(n^2) total.
  const Granularity gran = Granularity::Second();
  ConstraintChecker checker(OrderedSpecs(), gran);
  for (auto _ : state) {
    std::vector<Element> extension;
    extension.reserve(state.range(0));
    for (int64_t i = 0; i < state.range(0); ++i) {
      extension.push_back(OrderedElement(i));
      Require(checker.CheckExtension(extension));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// ---------------------------------------------------------------------------
// (b) B+tree vs append-only index for monotone keys
// ---------------------------------------------------------------------------

void BM_MonotoneIndex_BTree(benchmark::State& state) {
  for (auto _ : state) {
    BTreeIndex index;
    for (int64_t i = 0; i < state.range(0); ++i) {
      index.Insert(1000 + i, static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(index.Range(2000, 2100));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_MonotoneIndex_AppendOnly(benchmark::State& state) {
  for (auto _ : state) {
    AppendOnlyIndex index;
    for (int64_t i = 0; i < state.range(0); ++i) {
      Require(index.Append(TimePoint::FromMicros(1000 + i),
                           static_cast<uint64_t>(i)));
    }
    benchmark::DoNotOptimize(index.Range(TimePoint::FromMicros(2000),
                                         TimePoint::FromMicros(2100)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

// ---------------------------------------------------------------------------
// (c) interval-index delta buffer vs compacted core
// ---------------------------------------------------------------------------

IntervalIndex BuildIntervalIndex(int64_t n, uint64_t seed) {
  Random rng(seed);
  IntervalIndex index;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t b = rng.Uniform(0, 1'000'000);
    index.Insert(TimePoint::FromMicros(b),
                 TimePoint::FromMicros(b + rng.Uniform(1, 10'000)),
                 static_cast<uint64_t>(i));
  }
  return index;
}

void BM_IntervalIndex_StabWithDelta(benchmark::State& state) {
  IntervalIndex index = BuildIntervalIndex(state.range(0), 7);
  Random rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Stab(TimePoint::FromMicros(rng.Uniform(0, 1'000'000))));
  }
  state.counters["delta_size"] =
      benchmark::Counter(static_cast<double>(index.delta_size()));
}

void BM_IntervalIndex_StabCompacted(benchmark::State& state) {
  IntervalIndex index = BuildIntervalIndex(state.range(0), 7);
  index.Compact();
  Random rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.Stab(TimePoint::FromMicros(rng.Uniform(0, 1'000'000))));
  }
  state.counters["delta_size"] =
      benchmark::Counter(static_cast<double>(index.delta_size()));
}

}  // namespace

BENCHMARK(BM_Enforcement_OnlineCheckers)->Arg(1024)->Arg(4096);
BENCHMARK(BM_Enforcement_BatchReverify)->Arg(1024)->Arg(4096);
BENCHMARK(BM_MonotoneIndex_BTree)->Arg(65536);
BENCHMARK(BM_MonotoneIndex_AppendOnly)->Arg(65536);
BENCHMARK(BM_IntervalIndex_StabWithDelta)->Arg(65536);
BENCHMARK(BM_IntervalIndex_StabCompacted)->Arg(65536);

TEMPSPEC_BENCH_MAIN("a1_ablation");
