// Specialization inference: given an extension, recover the tightest
// specializations it satisfies.
//
// The paper positions the taxonomy as a design-time vocabulary: "This
// taxonomy may be employed during database design to specify the particular
// time semantics of temporal relations." This engine closes the loop for
// existing data: it inspects an extension and reports, for every axis of the
// taxonomy, the tightest type the data satisfies — a candidate declaration
// for the designer and the input to the storage/index Advisor.
//
// Inference works over fixed (chronon) offsets; calendric bounds are a
// declaration-side concept.
#ifndef TEMPSPEC_SPEC_INFERENCE_H_
#define TEMPSPEC_SPEC_INFERENCE_H_

#include <optional>
#include <set>
#include <span>
#include <string>

#include "allen/allen.h"
#include "model/element.h"
#include "model/schema.h"
#include "spec/band.h"
#include "spec/event_spec.h"
#include "spec/interevent_spec.h"
#include "spec/mapping.h"

namespace tempspec {

/// \brief Tightest isolated-event characterization of one valid-time anchor.
struct EventProfile {
  bool applicable = false;       // false when there were no stamps to inspect
  int64_t min_offset_us = 0;     // min over elements of vt - tt (microseconds)
  int64_t max_offset_us = 0;
  Band tightest_band;            // [min, max]
  EventSpecKind classified = EventSpecKind::kGeneral;
  bool degenerate = false;       // vt = tt within the granularity, everywhere
  /// Set when a mapping function from the standard families reproduces every
  /// valid time exactly (the relation is determined).
  std::optional<MappingFunction> determined_by;
};

/// \brief Which orderings hold (per Section 3.2 / 3.4 definitions).
struct OrderingProfile {
  bool non_decreasing = false;
  bool non_increasing = false;
  bool sequential = false;
};

/// \brief Inferred event regularity (units in microseconds; 0 = only one
/// distinct stamp, i.e. any unit works).
struct RegularityProfile {
  bool tt_regular = false;
  int64_t tt_unit_us = 0;
  bool tt_strict = false;
  bool vt_regular = false;
  int64_t vt_unit_us = 0;
  bool vt_strict = false;
  bool temporal_regular = false;  // requires tt - vt constant across elements
  int64_t temporal_unit_us = 0;
  bool temporal_strict = false;
};

/// \brief Inferred interval-specific properties.
struct IntervalProfile {
  bool applicable = false;
  int64_t valid_duration_unit_us = 0;  // gcd of valid-interval lengths
  bool valid_strict = false;           // all lengths equal (the unit)
  int64_t existence_duration_unit_us = 0;  // gcd over closed existence intervals
  bool existence_strict = false;
  /// Allen relations holding between every successive pair (empty when fewer
  /// than two stamps).
  std::set<AllenRelation> successive;
  bool contiguous = false;  // successive contains kMeets
};

/// \brief Complete inferred profile of a relation extension.
struct RelationProfile {
  size_t element_count = 0;
  ValidTimeKind valid_kind = ValidTimeKind::kEvent;

  EventProfile event;        // event relations: vt; interval relations: vt_b
  EventProfile event_end;    // interval relations only: vt_e

  OrderingProfile global_ordering;
  OrderingProfile per_surrogate_ordering;
  RegularityProfile regularity;
  /// Per-surrogate regularity (§3: "the application of the specializations
  /// on a per partition basis may in many situations prove to be more
  /// relevant"): every life-line regular on its own; units summarized by
  /// their gcd, strictness by conjunction.
  RegularityProfile per_surrogate_regularity;
  IntervalProfile interval;

  /// \brief Multi-line human-readable report (the design-tool output).
  std::string Report() const;
};

/// \brief Infers the profile of an extension. Uses the insertion transaction
/// time throughout (the paper's default); `granularity` drives the
/// degenerate test.
RelationProfile InferProfile(std::span<const Element> elements,
                             ValidTimeKind valid_kind, Granularity granularity);

/// \brief Streaming counterpart of the batch event-profile inference: feed
/// (tt, vt) stamps one at a time and read back, at any point, the tightest
/// EventSpecKind consistent with everything observed so far. State is three
/// scalars (min/max offset, degenerate flag), so the drift monitor can keep
/// one per relation on the ingest path. Matches InferEventProfile on the
/// same stamp sequence except for `determined_by` (mapping-function fitting
/// needs the full extension and is left to the batch engine).
///
/// Not thread-safe: relations are single-writer; the drift monitor adds its
/// own lock around Observe/Profile.
class IncrementalEventProfile {
 public:
  explicit IncrementalEventProfile(Granularity granularity = Granularity())
      : granularity_(granularity) {}

  /// \brief Folds one stamp into the profile.
  void Observe(TimePoint tt, TimePoint vt);

  /// \brief The profile of everything observed so far (applicable == false
  /// before the first Observe).
  EventProfile Profile() const;

  /// \brief The classified kind alone (kGeneral before the first Observe).
  EventSpecKind ObservedKind() const;

  uint64_t count() const { return count_; }

 private:
  Granularity granularity_;
  uint64_t count_ = 0;
  int64_t min_offset_us_ = 0;
  int64_t max_offset_us_ = 0;
  bool degenerate_ = true;
};

/// \brief Greatest common divisor of the distances of all stamps from the
/// first, in microseconds; 0 when all stamps coincide.
int64_t InferUnit(std::span<const TimePoint> stamps);

/// \brief Materializes an inferred event profile as a declarable
/// specialization instance of its classified kind (bounds taken from the
/// observed offsets; determined mappings carried over). Fails for an empty
/// profile.
Result<EventSpecialization> SpecFromProfile(const EventProfile& profile);

/// \brief Tries the standard mapping-function families (constant offset;
/// truncate-to-{second,minute,hour,day} plus offset) against (tt, vt) pairs.
std::optional<MappingFunction> FitMappingFunction(
    std::span<const EventStamp> stamps);

}  // namespace tempspec

#endif  // TEMPSPEC_SPEC_INFERENCE_H_
