// The inter-event taxonomy (Section 3.2): orderings and regularity.
//
// These properties restrict the interrelationship of the time-stamps of
// *distinct* elements over all possible extensions. Each may be applied
// globally (per relation) or per partition — the distinguished partitioning
// is per object surrogate, but any partitioning qualifies; a relation
// satisfies a property per partition iff every partition satisfies it per
// relation.
//
// Orderings (Figure 3):
//   globally non-decreasing: tt < tt'  =>  vt <= vt'
//   globally non-increasing: tt < tt'  =>  vt >= vt'
//   globally sequential:     tt < tt'  =>  max(tt, vt) <= min(tt', vt')
//
// Regularity (Figure 4), with time unit Δt > 0:
//   transaction time event regular: ∀e,e' ∃k  tt = tt' + kΔt
//   valid time event regular:       ∀e,e' ∃k  vt = vt' + kΔt
//   temporal event regular:         ∀e,e' ∃k  both, with the same k
// plus strict versions where successive elements are spaced exactly Δt.
#ifndef TEMPSPEC_SPEC_INTEREVENT_SPEC_H_
#define TEMPSPEC_SPEC_INTEREVENT_SPEC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/element.h"
#include "spec/mapping.h"
#include "timex/duration.h"
#include "util/result.h"

namespace tempspec {

/// \brief Scope of an inter-element property.
enum class SpecScope : uint8_t {
  kPerRelation,         // "global"
  kPerObjectSurrogate,  // the per-surrogate partitioning of Section 2
};

const char* SpecScopeToString(SpecScope scope);

/// \brief A (transaction time, valid time) stamp pair of one event element.
struct EventStamp {
  TimePoint tt;
  TimePoint vt;
  ObjectSurrogate partition = 0;  // used only by per-partition scopes
};

/// \brief Extracts the event stamps of elements (anchored transaction time;
/// elements with an open deletion anchor are skipped, as the property cannot
/// constrain them yet).
std::vector<EventStamp> ExtractEventStamps(std::span<const Element> elements,
                                           TransactionAnchor anchor);

// ---------------------------------------------------------------------------
// Orderings
// ---------------------------------------------------------------------------

enum class OrderingKind : uint8_t {
  kNonDecreasing,
  kNonIncreasing,
  kSequential,
};

const char* OrderingKindToString(OrderingKind kind);

/// \brief An ordering property instance.
class OrderingSpec {
 public:
  OrderingSpec(OrderingKind kind, SpecScope scope = SpecScope::kPerRelation)
      : kind_(kind), scope_(scope) {}

  OrderingKind kind() const { return kind_; }
  SpecScope scope() const { return scope_; }

  /// \brief Batch check of a full extension.
  Status CheckStamps(std::span<const EventStamp> stamps) const;

  std::string ToString() const;

 private:
  OrderingKind kind_;
  SpecScope scope_;
};

/// \brief Incremental ordering checker: feed stamps in transaction-time
/// order; O(1) state per partition.
class OnlineOrderingChecker {
 public:
  explicit OnlineOrderingChecker(OrderingSpec spec) : spec_(spec) {}

  /// \brief Checks the next stamp without recording it (must have tt greater
  /// than all previously committed stamps in its scope group; the relation's
  /// transaction clock guarantees this).
  Status Check(const EventStamp& stamp) const;

  /// \brief Records an admitted stamp.
  void Commit(const EventStamp& stamp);

  /// \brief Check then commit.
  Status OnInsert(const EventStamp& stamp) {
    TS_RETURN_NOT_OK(Check(stamp));
    Commit(stamp);
    return Status::OK();
  }

  void Reset() { states_.clear(); }

 private:
  struct State {
    bool has_prev = false;
    TimePoint prev_vt;
    TimePoint running_max = TimePoint::Min();  // max(tt, vt) over all stamps
  };

  OrderingSpec spec_;
  std::unordered_map<ObjectSurrogate, State> states_;
};

// ---------------------------------------------------------------------------
// Regularity
// ---------------------------------------------------------------------------

enum class RegularityDimension : uint8_t {
  kTransactionTime,
  kValidTime,
  kTemporal,  // both stamps, with a shared multiplier k
};

const char* RegularityDimensionToString(RegularityDimension dim);

/// \brief A regularity property instance.
class RegularitySpec {
 public:
  static Result<RegularitySpec> Make(RegularityDimension dim, Duration unit,
                                     bool strict = false,
                                     SpecScope scope = SpecScope::kPerRelation);

  RegularityDimension dimension() const { return dim_; }
  Duration unit() const { return unit_; }
  bool strict() const { return strict_; }
  SpecScope scope() const { return scope_; }

  /// \brief Batch check of a full extension.
  Status CheckStamps(std::span<const EventStamp> stamps) const;

  std::string ToString() const;

 private:
  RegularitySpec(RegularityDimension dim, Duration unit, bool strict,
                 SpecScope scope)
      : dim_(dim), unit_(unit), strict_(strict), scope_(scope) {}

  RegularityDimension dim_;
  Duration unit_;
  bool strict_;
  SpecScope scope_;
};

/// \brief Incremental regularity checker; O(1) state per partition.
///
/// For strict valid-time regularity an insert is admissible only if it
/// extends the arithmetic progression of valid times at either end —
/// anything else could never lead to an extension satisfying the intensional
/// definition.
class OnlineRegularityChecker {
 public:
  explicit OnlineRegularityChecker(RegularitySpec spec) : spec_(spec) {}

  Status Check(const EventStamp& stamp) const;
  void Commit(const EventStamp& stamp);
  Status OnInsert(const EventStamp& stamp) {
    TS_RETURN_NOT_OK(Check(stamp));
    Commit(stamp);
    return Status::OK();
  }

  void Reset() { states_.clear(); }

 private:
  struct State {
    bool has_anchor = false;
    TimePoint tt0, vt0;        // congruence anchors (non-strict)
    TimePoint last_tt, last_vt;  // strict tt / strict temporal
    TimePoint min_vt, max_vt;    // strict vt progression ends
  };

  RegularitySpec spec_;
  std::unordered_map<ObjectSurrogate, State> states_;
};

/// \brief True if b = a + k*unit for some integer k (calendric units use
/// calendar arithmetic). unit must be positive.
bool IsCongruent(TimePoint a, TimePoint b, Duration unit);

/// \brief The integer k with b = a + k*unit, when one exists.
std::optional<int64_t> UnitMultiplier(TimePoint a, TimePoint b, Duration unit);

}  // namespace tempspec

#endif  // TEMPSPEC_SPEC_INTEREVENT_SPEC_H_
