// Seeded-determinism property test for the unified scenario surface: the
// simulator's seeded mode gates CI on reproducibility, which only holds if
// the same (scenario, seed, sizes) renders a byte-identical statement
// stream every time, and a different seed actually moves the stochastic
// generators. Covers all seven paper applications plus the general
// baseline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing.h"
#include "workload/tenant_driver.h"
#include "workload/workloads.h"

namespace tempspec {
namespace {

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.num_objects = 4;
  config.ops_per_object = 8;
  config.seed = seed;
  return config;
}

TEST(WorkloadDeterminismTest, SameSeedRendersByteIdenticalStatements) {
  for (Scenario scenario : AllScenarios()) {
    SCOPED_TRACE(ScenarioRelationName(scenario));
    ASSERT_OK_AND_ASSIGN(std::vector<std::string> first,
                         ScenarioStatements(scenario, SmallConfig(1234)));
    ASSERT_OK_AND_ASSIGN(std::vector<std::string> second,
                         ScenarioStatements(scenario, SmallConfig(1234)));
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
  }
}

TEST(WorkloadDeterminismTest, StatementsMatchThePlanOneToOne) {
  for (Scenario scenario : AllScenarios()) {
    SCOPED_TRACE(ScenarioRelationName(scenario));
    const WorkloadConfig config = SmallConfig(99);
    ASSERT_OK_AND_ASSIGN(std::vector<PlannedInsert> plan,
                         PlanScenario(scenario, config));
    ASSERT_OK_AND_ASSIGN(std::vector<std::string> statements,
                         ScenarioStatements(scenario, config));
    ASSERT_EQ(plan.size(), statements.size());
    const std::string prefix =
        std::string("INSERT INTO ") + ScenarioRelationName(scenario) + " ";
    for (const std::string& statement : statements) {
      EXPECT_EQ(statement.rfind(prefix, 0), 0u) << statement;
    }
    // The plan arrives in apply order: transaction time never decreases.
    for (size_t i = 1; i < plan.size(); ++i) {
      EXPECT_LE(plan[i - 1].tt.micros(), plan[i].tt.micros())
          << "plan out of transaction-time order at index " << i;
    }
  }
}

TEST(WorkloadDeterminismTest, DifferentSeedMovesStochasticScenarios) {
  // The monitoring delays, payroll lead times, accounting corrections,
  // order horizons, and baseline offsets are all drawn from the seeded
  // RNG; a new seed must produce a different stream. (The degenerate,
  // assignments, and archaeology scenarios are deliberately seedless —
  // their specializations pin every timestamp.)
  const Scenario stochastic[] = {
      Scenario::kProcessMonitoring, Scenario::kPayroll, Scenario::kAccounting,
      Scenario::kOrders, Scenario::kGeneral,
  };
  for (Scenario scenario : stochastic) {
    SCOPED_TRACE(ScenarioRelationName(scenario));
    ASSERT_OK_AND_ASSIGN(std::vector<std::string> seed_a,
                         ScenarioStatements(scenario, SmallConfig(1)));
    ASSERT_OK_AND_ASSIGN(std::vector<std::string> seed_b,
                         ScenarioStatements(scenario, SmallConfig(2)));
    EXPECT_NE(seed_a, seed_b);
  }
}

TEST(WorkloadDeterminismTest, TenantCreateStatementsAreStable) {
  // The simulator's tenants declare their specializations on the wire; the
  // declaration must name the scenario's relation and stay in sync with
  // the unified naming surface.
  for (Scenario scenario : AllScenarios()) {
    SCOPED_TRACE(ScenarioRelationName(scenario));
    const std::string ddl = TenantDriver::CreateStatement(scenario);
    EXPECT_NE(ddl.find(ScenarioRelationName(scenario)), std::string::npos)
        << ddl;
    EXPECT_EQ(ddl.rfind("CREATE ", 0), 0u) << ddl;
  }
}

}  // namespace
}  // namespace tempspec
